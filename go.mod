module wattdb

go 1.24

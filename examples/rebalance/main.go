// Rebalance: the paper's core scenario as a minimal program. A TPC-C
// cluster on two nodes runs continuous load while 50% of all records are
// migrated onto two freshly booted nodes with physiological partitioning;
// the program prints ownership before/after and the throughput around the
// move.
package main

import (
	"fmt"
	"log"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/tpcc"
)

func main() {
	env := sim.NewEnv(7)
	defer env.Close()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	c := cluster.New(env, cfg)
	c.Nodes[1].HW.ForceActive()

	tcfg := tpcc.DefaultConfig(4)
	tcfg.CustomersPerDistrict = 40
	tcfg.InitialOrdersPerDist = 40
	dep, err := tpcc.Deploy(c.Master, tcfg, table.Physiological, []tpcc.WarehouseRange{
		{FromW: 1, ToW: 2, Owner: c.Nodes[0]},
		{FromW: 3, ToW: 4, Owner: c.Nodes[1]},
	}, c.Nodes)
	if err != nil {
		log.Fatal(err)
	}
	env.Spawn("load", func(p *sim.Proc) {
		if err := dep.Load(p); err != nil {
			log.Fatal(err)
		}
	})
	if err := env.Run(); err != nil {
		log.Fatal(err)
	}

	printOwners := func(when string) {
		tm, _ := c.Master.Table(tpcc.TCustomer)
		fmt.Printf("%s, customer table partition map:\n", when)
		for _, e := range tm.Entries() {
			lo := "-inf"
			if e.Low != nil {
				w, _, _ := keycodec.DecodeInt64(e.Low)
				lo = fmt.Sprint(w)
			}
			hi := "+inf"
			if e.High != nil {
				w, _, _ := keycodec.DecodeInt64(e.High)
				hi = fmt.Sprint(w)
			}
			dual := ""
			if e.OldPart != nil {
				dual = fmt.Sprintf("  (dual pointer: old owner node %d)", e.OldOwner.ID)
			}
			fmt.Printf("  [w %s .. %s) -> node %d%s\n", lo, hi, e.Owner.ID, dual)
		}
	}
	printOwners("before rebalancing")

	// Continuous TPC-C load.
	committed := 0
	var windowCommits [3]int // before / during / after
	phase := 0
	for i := 0; i < 16; i++ {
		cl := tpcc.NewClient(i, c.Master, dep, 50*time.Millisecond, cc.SnapshotIsolation)
		cl.OnResult = func(r tpcc.Result) {
			if r.Committed {
				committed++
				windowCommits[phase]++
			}
		}
		cl.Start()
	}
	// Rebalance: move warehouse 2 from node 0 -> node 2, warehouse 4 from
	// node 1 -> node 3.
	env.Spawn("controller", func(p *sim.Proc) {
		p.Sleep(20 * time.Second)
		phase = 1
		fmt.Printf("\nt=%v: powering nodes 2 and 3 and migrating 50%% of records...\n", p.Now())
		c.Nodes[2].PowerOn(p)
		c.Nodes[3].PowerOn(p)
		start := p.Now()
		for _, tbl := range tpcc.PartitionedTables() {
			if err := c.Master.MigrateRangeFraction(p, tbl,
				keycodec.Int64Key(2), keycodec.Int64Key(3), 0.5, c.Nodes[2]); err != nil {
				log.Fatal(err)
			}
			if err := c.Master.MigrateRangeFraction(p, tbl,
				keycodec.Int64Key(4), nil, 0.5, c.Nodes[3]); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("t=%v: migration done in %v (transactions kept running throughout)\n",
			p.Now(), p.Now()-start)
		phase = 2
	})
	if err := env.RunUntil(60 * time.Second); err != nil {
		log.Fatal(err)
	}

	printOwners("\nafter rebalancing")
	fmt.Printf("\ncommitted transactions: %d total (before move: %d, during: %d, after: %d)\n",
		committed, windowCommits[0], windowCommits[1], windowCommits[2])
	for _, n := range c.Nodes {
		fmt.Printf("node %d: %d partitions, power state %v\n", n.ID, len(n.Parts), n.HW.State())
	}
}

// Energy: demonstrates the paper's motivation — a cluster that adjusts its
// size to the workload to approximate energy proportionality. A day-curve
// of load (quiet, rush hour, quiet) drives the master's threshold policy
// (Sect. 3.4); the program reports power draw, energy, and node count over
// time.
package main

import (
	"fmt"
	"log"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/hw"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/tpcc"
)

func main() {
	env := sim.NewEnv(11)
	defer env.Close()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	c := cluster.New(env, cfg)

	tcfg := tpcc.DefaultConfig(4)
	tcfg.CustomersPerDistrict = 40
	tcfg.InitialOrdersPerDist = 40
	dep, err := tpcc.Deploy(c.Master, tcfg, table.Physiological, []tpcc.WarehouseRange{
		{FromW: 1, ToW: 4, Owner: c.Nodes[0]}, // minimal configuration: one node
	}, c.Nodes)
	if err != nil {
		log.Fatal(err)
	}
	env.Spawn("load", func(p *sim.Proc) {
		if err := dep.Load(p); err != nil {
			log.Fatal(err)
		}
	})
	if err := env.Run(); err != nil {
		log.Fatal(err)
	}

	// Policy: scale out over 80% CPU, in under 25%; redistribution moves
	// the upper half of the busiest node's warehouses.
	policy := cluster.DefaultPolicy()
	policy.Enabled = true
	policy.OnScaleOut = func(p *sim.Proc, n *cluster.DataNode) {
		fmt.Printf("t=%4.0fs: scale-OUT to node %d, moving warehouses 3-4\n", p.Now().Seconds(), n.ID)
		for _, tbl := range tpcc.PartitionedTables() {
			if err := c.Master.MigrateRangeFraction(p, tbl, keycodec.Int64Key(3), nil, 0.5, n); err != nil {
				log.Printf("scale-out move %s: %v", tbl, err)
			}
		}
	}
	policy.OnScaleIn = func(p *sim.Proc, victim *cluster.DataNode) {
		fmt.Printf("t=%4.0fs: scale-IN of node %d, consolidating onto node 0\n", p.Now().Seconds(), victim.ID)
		for _, tbl := range tpcc.PartitionedTables() {
			if err := c.Master.MigrateRange(p, tbl, keycodec.Int64Key(3), nil, c.Nodes[0]); err != nil {
				log.Printf("scale-in move %s: %v", tbl, err)
			}
		}
		// Drop drained ghosts so the victim can power off on a later tick.
	}
	c.Master.StartMonitor(5*time.Second, policy)
	c.Meter.Start()

	// Day curve: load ramps up at t=60s and down at t=240s.
	committed := 0
	clients := make([]*tpcc.Client, 0, 24)
	for i := 0; i < 24; i++ {
		cl := tpcc.NewClient(i, c.Master, dep, 40*time.Millisecond, cc.SnapshotIsolation)
		cl.OnResult = func(r tpcc.Result) {
			if r.Committed {
				committed++
			}
		}
		clients = append(clients, cl)
	}
	env.Spawn("day-curve", func(p *sim.Proc) {
		clients[0].Start() // trickle load overnight
		clients[1].Start()
		p.Sleep(60 * time.Second)
		fmt.Printf("t=%4.0fs: rush hour begins (24 clients)\n", p.Now().Seconds())
		for _, cl := range clients[2:] {
			cl.Start()
		}
		p.Sleep(180 * time.Second)
		fmt.Printf("t=%4.0fs: rush hour ends (back to 2 clients)\n", p.Now().Seconds())
		for _, cl := range clients[2:] {
			cl.Stop()
		}
	})
	// Report power every minute.
	env.Spawn("reporter", func(p *sim.Proc) {
		for {
			p.Sleep(30 * time.Second)
			active := 0
			for _, n := range c.Nodes {
				if n.HW.State() == hw.PowerActive {
					active++
				}
			}
			fmt.Printf("t=%4.0fs: %d active nodes, %6.0f J consumed, %d txns committed\n",
				p.Now().Seconds(), active, c.Meter.EnergyJoules(), committed)
		}
	})

	if err := env.RunUntil(6 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal: %d transactions, %.0f J (%.3f J/txn)\n",
		committed, c.Meter.EnergyJoules(), c.Meter.EnergyJoules()/float64(committed))
}

// Quickstart: build a two-node WattDB cluster, create a table, run
// transactions with snapshot isolation, and read the results back —
// everything on the simulated hardware with a virtual clock.
package main

import (
	"fmt"
	"log"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

func main() {
	env := sim.NewEnv(42)
	defer env.Close()

	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	c := cluster.New(env, cfg)
	c.Nodes[1].HW.ForceActive()

	// An accounts table, range-partitioned across the two nodes at id 500,
	// using the paper's physiological partitioning.
	schema := &table.Schema{
		ID: 1, Name: "accounts", KeyCols: 1,
		Columns: []table.Column{
			{Name: "id", Type: table.ColInt64},
			{Name: "owner", Type: table.ColString},
			{Name: "balance", Type: table.ColFloat64},
		},
	}
	mid, _ := schema.EncodeKeyPrefix1(int64(500))
	if _, err := c.Master.CreateTable(schema, table.Physiological, []cluster.RangeSpec{
		{Low: nil, High: mid, Owner: c.Nodes[0]},
		{Low: mid, High: nil, Owner: c.Nodes[1]},
	}); err != nil {
		log.Fatal(err)
	}

	env.Spawn("app", func(p *sim.Proc) {
		// Insert 1000 accounts in one transaction.
		s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
		for i := 0; i < 1000; i++ {
			row := table.Row{int64(i), fmt.Sprintf("owner-%03d", i), 100.0}
			key, _ := schema.Key(row)
			payload, _ := schema.EncodeRow(row)
			if err := s.Put(p, "accounts", key, payload); err != nil {
				log.Fatal(err)
			}
		}
		if err := s.Commit(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded 1000 accounts at t=%v\n", p.Now())

		// Transfer between accounts on different nodes: a distributed
		// transaction committed with 2PC. Rows round-trip through a reused
		// columnar batch: decode-into, mutate the typed column, encode-from.
		xfer := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
		b := table.NewBatch(schema)
		var payload []byte
		move := func(id int64, delta float64) {
			key, _ := schema.EncodeKeyPrefix1(id)
			raw, ok, err := xfer.Get(p, "accounts", key)
			if err != nil || !ok {
				log.Fatalf("account %d: %v %v", id, ok, err)
			}
			b.Reset()
			if err := schema.AppendDecoded(b, raw); err != nil {
				log.Fatal(err)
			}
			b.SetFloat(2, 0, b.Float(2, 0)+delta)
			payload, _ = schema.AppendEncoded(payload[:0], b, 0)
			if err := xfer.Put(p, "accounts", key, payload); err != nil {
				log.Fatal(err)
			}
		}
		move(42, -25)  // node 0
		move(900, +25) // node 1
		if err := xfer.Commit(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("transferred 25.00 from #42 to #900 (2PC) at t=%v\n", p.Now())

		// Snapshot read: sum all balances; the invariant must hold. The scan
		// decodes every record into the same one-row batch — no boxing.
		r := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[1])
		defer r.Abort(p)
		total := 0.0
		count := 0
		if err := r.Scan(p, "accounts", nil, nil, func(_, raw []byte) bool {
			b.Reset()
			if err := schema.AppendDecoded(b, raw); err != nil {
				log.Fatal(err)
			}
			total += b.Float(2, 0)
			count++
			return true
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scanned %d accounts, total balance %.2f (invariant: 100000.00)\n", count, total)
	})

	if err := env.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation finished at virtual time %v\n", env.Now())
}

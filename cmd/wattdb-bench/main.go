// Command wattdb-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	wattdb-bench -exp fig1|fig2|fig3|fig6|fig7|fig8|all [-preset quick|paper] [-seed N]
//
// Output is the textual equivalent of each figure: the same series/bars the
// paper plots. EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"wattdb/internal/experiments"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment: fig1, fig2, fig3, fig6, fig7, fig8, or all")
	preset := flag.String("preset", "quick", "scale preset: quick or paper")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var pre experiments.Preset
	switch *preset {
	case "quick":
		pre = experiments.Quick()
	case "paper":
		pre = experiments.Paper()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	pre.Seed = *seed

	run := func(name string, fn func() (fmt.Stringer, error)) {
		start := time.Now()
		res, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s completed in %.1fs wall time]\n\n", name, time.Since(start).Seconds())
	}

	all := *exp == "all"
	matched := false
	if all || *exp == "fig1" {
		matched = true
		rows := 20000
		if pre.Name == "quick" {
			rows = 5000
		}
		run("fig1", func() (fmt.Stringer, error) { return experiments.Fig1(rows, pre.Seed) })
	}
	if all || *exp == "fig2" {
		matched = true
		rows, levels := 2000, []int{1, 10, 100, 1000}
		if pre.Name == "quick" {
			rows, levels = 1000, []int{1, 10, 100, 400}
		}
		run("fig2", func() (fmt.Stringer, error) { return experiments.Fig2(rows, levels, pre.Seed) })
	}
	if all || *exp == "fig3" {
		matched = true
		records, ratios := 20000, []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
		if pre.Name == "quick" {
			records, ratios = 5000, []int{0, 25, 50, 75, 100}
		}
		run("fig3", func() (fmt.Stringer, error) { return experiments.Fig3(records, ratios, pre.Seed) })
	}
	if all || *exp == "fig6" {
		matched = true
		run("fig6", func() (fmt.Stringer, error) { return experiments.Fig6(pre) })
	}
	if all || *exp == "fig7" {
		matched = true
		run("fig7", func() (fmt.Stringer, error) { return experiments.Fig7(pre) })
	}
	if all || *exp == "fig8" {
		matched = true
		run("fig8", func() (fmt.Stringer, error) { return experiments.Fig8(pre) })
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// Command wattdb-chaos drives the deterministic fault-injection harness
// (internal/chaos) from the command line:
//
//	wattdb-chaos -seeds 25          # seeds 1..25, schemes rotating per seed
//	wattdb-chaos -seed 7 -scheme logical -v   # reproduce one run exactly
//	wattdb-chaos -tpcc -seeds 10    # TPC-C workload + warehouse-invariant oracle
//
// Every run prints its seed, scheme, and final state hash; a failing seed
// reproduces bit-for-bit with the same flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wattdb/internal/chaos"
	"wattdb/internal/table"
)

func main() {
	seeds := flag.Int("seeds", 0, "run seeds 1..N (schemes rotate per seed)")
	seed := flag.Int64("seed", 1, "single seed to run (ignored when -seeds is set)")
	schemeFlag := flag.String("scheme", "", "partitioning scheme: physical, logical, physiological (default: rotate by seed)")
	keys := flag.Int("keys", 0, "key-space size (default 400)")
	workers := flag.Int("workers", 0, "workload processes (default 4)")
	duration := flag.Duration("duration", 0, "simulated workload window (default 45s)")
	faults := flag.Int("faults", 0, "extra random fault events (default 4)")
	coord := flag.Int("coord", 0, "extra random coordinator power-fails (default 1; every plan also crashes the leader mid-migration)")
	disk := flag.Int("disk", 0, "extra disk-loss + acked-rot fault pairs (default 1; every plan already destroys one disk and bit-rots one flushed frame)")
	ckpt := flag.Int("ckpt", 0, "extra mid-checkpoint crash faults (default 1; every plan already power-fails one node partway through a fuzzy checkpoint)")
	htap := flag.Int("htap", 0, "concurrent HTAP analytics readers running validated scan-aggregate snapshot queries (default 1; -1 disables)")
	tpccMode := flag.Bool("tpcc", false, "run the TPC-C workload with the warehouse-invariant oracle (ignores -keys)")
	verbose := flag.Bool("v", false, "print the fault schedule of every run")
	flag.Parse()

	schemes := []table.Scheme{table.Physical, table.Logical, table.Physiological}
	pick := func(s int64) (table.Scheme, error) {
		switch *schemeFlag {
		case "":
			return schemes[int(s)%len(schemes)], nil
		case "physical":
			return table.Physical, nil
		case "logical":
			return table.Logical, nil
		case "physiological":
			return table.Physiological, nil
		}
		return 0, fmt.Errorf("unknown scheme %q", *schemeFlag)
	}

	var runSeeds []int64
	if *seeds > 0 {
		for s := int64(1); s <= int64(*seeds); s++ {
			runSeeds = append(runSeeds, s)
		}
	} else {
		runSeeds = []int64{*seed}
	}

	failures := 0
	start := time.Now()
	for _, s := range runSeeds {
		scheme, err := pick(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg := chaos.Config{
			Seed:        s,
			Scheme:      scheme,
			Keys:        *keys,
			Workers:     *workers,
			Duration:    *duration,
			Faults:      *faults,
			CoordFaults: *coord,
			DiskFaults:  *disk,
			CkptFaults:  *ckpt,
			HTAP:        *htap,
		}
		run := chaos.Run
		if *tpccMode {
			run = chaos.RunTPCC
		}
		rep, err := run(cfg)
		if err != nil {
			fmt.Printf("seed=%-4d scheme=%-13s ERROR: %v\n", s, scheme, err)
			failures++
			continue
		}
		status := "PASS"
		if !rep.Passed() {
			status = "FAIL"
			failures++
		}
		fmt.Printf("seed=%-4d scheme=%-13s %s hash=%s sim=%5.1fs commits=%d aborts=%d failedOps=%d crashes=%d (torn=%d flips=%d leader=%d disk=%d ckpt=%d) restarts=%d failovers=%d rebuilds=%d scrubs=%d freads=%d ckpts=%d bounded=%d replay=%dB rto=%v htapq=%d htaprows=%d\n",
			s, scheme, status, rep.StateHash, rep.SimTime.Seconds(),
			rep.Commits, rep.Aborts, rep.FailedOps, rep.Crashes, rep.TornCrashes, rep.BitFlips, rep.LeaderCrashes, rep.DiskLosses, rep.CkptCrashes, rep.Restarts, rep.Failovers,
			rep.Rebuilds, rep.ScrubRepairs, rep.FollowerReads, rep.Checkpoints, rep.BoundedRestarts, rep.ReplayBytes, rep.RecoveryTime, rep.AnalyticsQueries, rep.AnalyticsRows)
		if *verbose || !rep.Passed() {
			for _, f := range rep.Faults {
				fmt.Printf("    %s\n", f)
			}
		}
		if !rep.Passed() {
			for _, v := range rep.Violations {
				fmt.Printf("    VIOLATION: %s\n", v)
			}
			repro := fmt.Sprintf("go run ./cmd/wattdb-chaos -seed %d -scheme %s", s, scheme)
			if *tpccMode {
				repro += " -tpcc"
			}
			// Non-default knobs change the fault plan; the repro must carry
			// them or the failing schedule will not regenerate.
			if *keys != 0 {
				repro += fmt.Sprintf(" -keys %d", *keys)
			}
			if *workers != 0 {
				repro += fmt.Sprintf(" -workers %d", *workers)
			}
			if *duration != 0 {
				repro += fmt.Sprintf(" -duration %s", *duration)
			}
			if *faults != 0 {
				repro += fmt.Sprintf(" -faults %d", *faults)
			}
			if *coord != 0 {
				repro += fmt.Sprintf(" -coord %d", *coord)
			}
			if *disk != 0 {
				repro += fmt.Sprintf(" -disk %d", *disk)
			}
			if *ckpt != 0 {
				repro += fmt.Sprintf(" -ckpt %d", *ckpt)
			}
			if *htap != 0 {
				repro += fmt.Sprintf(" -htap %d", *htap)
			}
			fmt.Printf("    reproduce: %s\n", repro)
		}
	}
	fmt.Printf("%d/%d runs passed (%.1fs wall)\n", len(runSeeds)-failures, len(runSeeds), time.Since(start).Seconds())
	if failures > 0 {
		os.Exit(1)
	}
}

// Package wattdb_test hosts the benchmark harness: one testing.B benchmark
// per table/figure of the paper's evaluation. Each benchmark runs the
// corresponding experiment at CI scale and reports the figure's headline
// numbers as custom metrics, so `go test -bench=. -benchmem` regenerates
// the whole evaluation. EXPERIMENTS.md records a reference run and the
// comparison against the paper.
package wattdb_test

import (
	"testing"

	"wattdb/internal/experiments"
	"wattdb/internal/metrics"
)

func quick() experiments.Preset { return experiments.Quick() }

// BenchmarkFig1RecordThroughput regenerates Fig. 1: record throughput under
// five operator placements. Metrics: records/s per configuration.
func BenchmarkFig1RecordThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(5000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.Logf("%-45s %10.0f records/s", row.Config, row.RecordsPerSec)
			}
			local := res.Rows[0].RecordsPerSec
			single := res.Rows[2].RecordsPerSec
			vector := res.Rows[3].RecordsPerSec
			if single > local/10 {
				b.Errorf("single-record remote (%.0f) should collapse vs local (%.0f)", single, local)
			}
			if vector < single*5 {
				b.Errorf("vectorisation (%.0f) should recover most of the loss vs %.0f", vector, single)
			}
			b.ReportMetric(local, "local-rec/s")
			b.ReportMetric(single, "remote1-rec/s")
			b.ReportMetric(vector, "remoteVec-rec/s")
		}
	}
}

// BenchmarkFig2SortOffloading regenerates Fig. 2: scan+sort throughput with
// the sort local vs offloaded, across concurrency levels.
func BenchmarkFig2SortOffloading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(800, []int{1, 10, 100}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.Logf("concurrency %4d: local %.1f qps, offloaded %.1f qps",
					row.Concurrent, row.LocalQPS, row.RemoteQPS)
			}
			lo := res.Rows[0]
			hi := res.Rows[len(res.Rows)-1]
			if lo.RemoteQPS > lo.LocalQPS {
				b.Errorf("at concurrency 1 local (%.1f) should beat offloaded (%.1f)", lo.LocalQPS, lo.RemoteQPS)
			}
			if hi.RemoteQPS < hi.LocalQPS {
				b.Errorf("at concurrency %d offloaded (%.1f) should beat local (%.1f)",
					hi.Concurrent, hi.RemoteQPS, hi.LocalQPS)
			}
			b.ReportMetric(hi.LocalQPS, "local-qps@100")
			b.ReportMetric(hi.RemoteQPS, "offload-qps@100")
		}
	}
}

// BenchmarkFig3MVCCvsLocking regenerates Fig. 3: transaction throughput and
// storage under MVCC vs MGL-RX while 50% of records move.
func BenchmarkFig3MVCCvsLocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(5000, []int{0, 50, 100}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.Logf("update %3d%%: MVCC %.0f TA/min (stor %.0f%%), MGL %.0f TA/min (stor %.0f%%)",
					row.UpdatePct, row.MVCCPerMin, row.MVCCStorage, row.LockingPerMin, row.LockingStorage)
			}
			for _, row := range res.Rows {
				if row.MVCCPerMin <= row.LockingPerMin {
					b.Errorf("MVCC (%.0f) should out-run MGL (%.0f) at %d%% updates",
						row.MVCCPerMin, row.LockingPerMin, row.UpdatePct)
				}
			}
			mid := res.Rows[1] // 50% updates
			if mid.MVCCStorage <= mid.LockingStorage {
				b.Errorf("MVCC storage (%.0f%%) should exceed locking's (%.0f%%) under updates",
					mid.MVCCStorage, mid.LockingStorage)
			}
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.MVCCPerMin/last.LockingPerMin, "mvcc/mgl@100%")
		}
	}
}

func meanQPS(bins []metrics.Bin, fromSec, toSec float64) float64 {
	sum, n := 0.0, 0
	for _, bin := range bins {
		s := bin.Start.Seconds()
		if s >= fromSec && s < toSec {
			sum += bin.Mean
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkFig6Rebalancing regenerates Fig. 6: the TPC-C rebalance under
// all three partitioning schemes.
func BenchmarkFig6Rebalancing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report := func(name string, tl experiments.TimelineResult) (before, during, after float64) {
				before = meanQPS(tl.QPS, -30, 0)
				during = meanQPS(tl.QPS, 0, tl.MigrationTook.Seconds())
				after = meanQPS(tl.QPS, tl.MigrationTook.Seconds()+20, 120)
				b.Logf("%-14s migration %3.0fs, qps before/during/after = %.0f / %.0f / %.0f",
					name, tl.MigrationTook.Seconds(), before, during, after)
				return
			}
			report("physical", res.Physical)
			_, _, logAfter := report("logical", res.Logical)
			_, _, physioAfter := report("physiological", res.Physiological)
			// The paper's headline: physiological migrates fastest.
			if res.Physiological.MigrationTook >= res.Logical.MigrationTook {
				b.Errorf("physiological migration (%v) should beat logical (%v)",
					res.Physiological.MigrationTook, res.Logical.MigrationTook)
			}
			b.ReportMetric(res.Physiological.MigrationTook.Seconds(), "physio-move-s")
			b.ReportMetric(res.Logical.MigrationTook.Seconds(), "logical-move-s")
			b.ReportMetric(physioAfter, "physio-after-qps")
			b.ReportMetric(logAfter, "logical-after-qps")
		}
	}
}

// BenchmarkFig7Breakdown regenerates Fig. 7: the per-component query
// runtime decomposition under rebalancing.
func BenchmarkFig7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			var normal, rebal float64
			for _, d := range res.Normal {
				normal += d.Seconds() * 1000
			}
			for _, d := range res.Rebalance {
				rebal += d.Seconds() * 1000
			}
			if rebal <= normal {
				b.Errorf("rebalancing (%.1f ms) should inflate query runtime vs normal (%.1f ms)", rebal, normal)
			}
			b.ReportMetric(normal, "normal-ms")
			b.ReportMetric(rebal, "rebalance-ms")
		}
	}
}

// BenchmarkFigHTAP regenerates the HTAP interference study: the CH-style
// analytics aggregate co-located with an OLTP home vs offloaded to a spare
// (follower snapshot reads) vs partition-parallel through the exchange. The
// paper's offloading shape must reproduce: offloaded analytics out-runs
// co-located while the OLTP tail improves.
func BenchmarkFigHTAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FigHTAP(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			base := res.Row(experiments.HTAPBaseline)
			co := res.Row(experiments.HTAPColocated)
			off := res.Row(experiments.HTAPOffloaded)
			par := res.Row(experiments.HTAPParallel)
			if off.AnalyticsQPS <= co.AnalyticsQPS {
				b.Errorf("offloaded analytics (%.2f q/s) should beat co-located (%.2f q/s)",
					off.AnalyticsQPS, co.AnalyticsQPS)
			}
			if off.OLTPp99Ms >= co.OLTPp99Ms {
				b.Errorf("offloading should improve OLTP p99 (%.1f ms vs co-located %.1f ms)",
					off.OLTPp99Ms, co.OLTPp99Ms)
			}
			if off.FollowerReads == 0 {
				b.Error("offloaded mode never used a follower snapshot read")
			}
			b.ReportMetric(base.OLTPp99Ms, "base-p99-ms")
			b.ReportMetric(co.OLTPp99Ms, "coloc-p99-ms")
			b.ReportMetric(off.OLTPp99Ms, "offload-p99-ms")
			b.ReportMetric(co.AnalyticsQPS, "coloc-q/s")
			b.ReportMetric(off.AnalyticsQPS, "offload-q/s")
			b.ReportMetric(par.AnalyticsQPS, "parallel-q/s")
		}
	}
}

// BenchmarkFig8Helpers regenerates Fig. 8: physiological rebalancing with
// helper nodes (log shipping + rDMA buffering).
func BenchmarkFig8Helpers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			plainW := meanQPS(res.Plain.Watts, 0, 20)
			helpedW := meanQPS(res.Helped.Watts, 0, 20)
			b.Logf("power during rebalance: plain %.0f W, +helpers %.0f W", plainW, helpedW)
			if helpedW <= plainW {
				b.Errorf("helpers must draw extra power (%.0f vs %.0f W)", helpedW, plainW)
			}
			b.ReportMetric(plainW, "plain-W")
			b.ReportMetric(helpedW, "helped-W")
		}
	}
}

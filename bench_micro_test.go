package wattdb_test

import (
	"fmt"
	"testing"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/buffer"
	"wattdb/internal/cc"
	"wattdb/internal/exec"
	"wattdb/internal/hw"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// Micro-benchmarks for the hot paths underneath every figure benchmark:
// kernel wakeups, buffer-pool hits, batched cursor scans, and the full
// TableScan operator stack. Run with -benchmem: the pool-hit and cursor
// benchmarks must report 0 allocs/op (regression-guarded by
// TestPinHitZeroAlloc and TestCursorNextBatchZeroAlloc in their packages).

// BenchmarkSimWakeup measures one timer wakeup round-trip through the
// kernel: schedule a typed resume event, park, dispatch, hand control back.
func BenchmarkSimWakeup(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	env.Spawn("bench", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	st := env.Stats()
	b.ReportMetric(float64(st.Wakeups)/float64(b.N), "wakeups/op")
}

// benchBackend serves reads/writes from in-memory segments with no
// simulated latency.
type benchBackend struct {
	segs map[storage.SegID]*storage.Segment
}

func (m *benchBackend) ReadPage(p *sim.Proc, id storage.PageID, dst []byte) error {
	copy(dst, m.segs[id.Seg].Page(id.Page))
	return nil
}

func (m *benchBackend) WritePage(p *sim.Proc, id storage.PageID, src []byte) error {
	copy(m.segs[id.Seg].Page(id.Page), src)
	return nil
}

// BenchmarkPoolPinHit measures Pin/Unpin of a resident idle frame — the
// buffer pool's hit path, which must be allocation-free.
func BenchmarkPoolPinHit(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 4096, 8)
	no, _ := seg.AllocPage()
	be := &benchBackend{segs: map[storage.SegID]*storage.Segment{1: seg}}
	pool := buffer.NewPool(env, be, 4096, 8)
	env.Spawn("bench", func(p *sim.Proc) {
		id := storage.PageID{Seg: 1, Page: no}
		f, err := pool.Pin(p, id)
		if err != nil {
			b.Error(err)
			return
		}
		pool.Unpin(f, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := pool.Pin(p, id)
			if err != nil {
				b.Error(err)
				return
			}
			pool.Unpin(g, false)
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCursorScan measures a full key-order scan of a 10k-record tree
// via the batched cursor API (ns/op is per record).
func BenchmarkCursorScan(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 4096, 4096)
	tr := btree.New(btree.MemPager{Seg: seg}, 0, nil)
	const records = 10000
	env.Spawn("bench", func(p *sim.Proc) {
		for i := int64(0); i < records; i++ {
			if _, err := tr.Put(p, keycodec.Int64Key(i), []byte("0123456789abcdef"), 0); err != nil {
				b.Error(err)
				return
			}
		}
		c, err := tr.Seek(p, nil)
		if err != nil {
			b.Error(err)
			return
		}
		out := make([]btree.KV, 64)
		b.ResetTimer()
		scanned := 0
		for scanned < b.N {
			if err := c.SeekTo(p, nil); err != nil {
				b.Error(err)
				return
			}
			for {
				m, err := c.NextBatch(p, out)
				if err != nil {
					b.Error(err)
					return
				}
				if m == 0 {
					break
				}
				scanned += m
			}
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

type benchFactory struct {
	nextID   storage.SegID
	pageSize int
	segPages int
}

func (f *benchFactory) NewSegment(*sim.Proc) (*storage.Segment, error) {
	f.nextID++
	return storage.NewSegment(f.nextID, f.pageSize, f.segPages), nil
}
func (f *benchFactory) Pager(seg *storage.Segment) btree.Pager { return btree.MemPager{Seg: seg} }
func (f *benchFactory) DropSegment(*sim.Proc, storage.SegID)   {}

type benchNullDevice struct{}

func (benchNullDevice) Append(*sim.Proc, int64) {}

// benchLogDevice models a log device with a fixed forced-write latency.
type benchLogDevice struct {
	writes int64
	delay  time.Duration
}

func (d *benchLogDevice) Append(p *sim.Proc, bytes int64) {
	d.writes++
	p.Sleep(d.delay)
}

// BenchmarkGroupCommit measures forced log-device writes under concurrent
// committers against the byte-encoded WAL: TPC-C-style workers each append
// a few DML frames plus a commit record and force the log. Group commit
// must coalesce committers parked behind the same in-flight device write,
// so the forced-writes/commit metric stays well below 1.0 at EQUAL
// durability (every committer still returns only after its LSN is on the
// platter). ns/op is per committed transaction.
func BenchmarkGroupCommit(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	dev := &benchLogDevice{delay: 150 * time.Microsecond}
	l := wal.NewLog(env, dev)
	const workers = 16
	per := b.N/workers + 1
	key := keycodec.Int64Key(42)
	val := []byte("0123456789abcdef0123456789abcdef")
	commits := 0
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		w := w
		env.Spawn("committer", func(p *sim.Proc) {
			p.Sleep(time.Duration(w*37) * time.Microsecond) // desynchronize
			for i := 0; i < per; i++ {
				txn := cc.TxnID(w*per + i + 1)
				l.Append(wal.Record{Type: wal.RecUpdate, Txn: txn, Part: 1, Key: key, After: val})
				l.Append(wal.Record{Type: wal.RecUpdate, Txn: txn, Part: 1, Key: key, After: val})
				lsn := l.Append(wal.Record{Type: wal.RecCommit, Txn: txn})
				l.Flush(p, lsn)
				if l.FlushedLSN() < lsn {
					b.Error("commit acknowledged before its LSN was durable")
					return
				}
				commits++
				p.Sleep(time.Duration(20+w) * time.Microsecond) // think time
			}
		})
	}
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(dev.writes)/float64(commits), "forced-writes/commit")
}

// BenchmarkEncodeKeyPrefix compares the variadic key-prefix encoder (whose
// interface conversions box every int64 argument) against the typed
// 1/2-argument fast paths used by the TPC-C range-bound hot paths. The fast
// paths must report 0 allocs/op.
func BenchmarkEncodeKeyPrefix(b *testing.B) {
	schema := &table.Schema{
		ID: 1, Name: "t", KeyCols: 2,
		Columns: []table.Column{{Name: "w", Type: table.ColInt64}, {Name: "d", Type: table.ColInt64}},
	}
	buf := make([]byte, 0, 16)
	b.Run("variadic2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = schema.AppendKeyPrefix(buf[:0], int64(i), int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = schema.AppendKeyPrefix2(buf[:0], int64(i), int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = schema.AppendKeyPrefix1(buf[:0], int64(i))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = buf
}

// scanWorld builds a single-node 5k-row partition for the operator-stack
// benchmarks.
func scanWorld(b *testing.B) (*sim.Env, *cc.Oracle, *table.Partition, *hw.Node) {
	env := sim.NewEnv(1)
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	n1 := hw.NewNode(env, 1, cal, net)
	n1.ForceActive()
	oracle := cc.NewOracle()
	schema := &table.Schema{
		ID: 1, Name: "t", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColString}},
	}
	deps := table.Deps{
		Env:         env,
		Oracle:      oracle,
		Locks:       cc.NewLockManager(env),
		Log:         wal.NewLog(env, benchNullDevice{}),
		Factory:     &benchFactory{pageSize: 4096, segPages: 256},
		LockTimeout: time.Second,
		PageSize:    4096,
		Compute:     n1.Compute,
		CPUPerOp:    cal.CPUBTreeOp,
		CPUPerTuple: cal.CPUTupleScan,
	}
	part := table.NewPartition(1, schema, table.Physiological, nil, nil, deps)
	const rows = 5000
	env.Spawn("load", func(p *sim.Proc) {
		txn := oracle.Begin(cc.SnapshotIsolation)
		for i := 0; i < rows; i++ {
			key, _ := schema.Key(table.Row{int64(i), "payload"})
			payload, _ := schema.EncodeRow(table.Row{int64(i), "payload"})
			if err := part.Put(p, txn, key, payload); err != nil {
				b.Error(err)
				return
			}
		}
		if err := table.CommitTxn(p, txn, part); err != nil {
			b.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	return env, oracle, part, n1
}

// BenchmarkScanPipeline measures a TableScan -> Project -> Filter pipeline
// over the columnar batch representation, draining a 5k-row partition with
// vector size 64 (ns/op is per scanned row). Must report 0 allocs/op
// (regression-guarded by TestScanPipelineZeroAlloc in internal/exec).
func BenchmarkScanPipeline(b *testing.B) {
	env, oracle, part, node := scanWorld(b)
	defer env.Close()
	const rows = 5000
	env.Spawn("bench", func(p *sim.Proc) {
		txn := oracle.Begin(cc.SnapshotIsolation)
		plan := &exec.Filter{
			Child: &exec.Project{
				Child:     &exec.TableScan{Part: part, Txn: txn, Vector: 64},
				Node:      node,
				Cols:      []int{0},
				CPUPerRow: time.Microsecond,
			},
			Node:      node,
			Pred:      func(bt *table.Batch, i int) bool { return bt.Int(0, i)%2 == 0 },
			CPUPerRow: time.Microsecond,
		}
		if _, err := exec.Drain(p, plan); err != nil { // warm operator state
			b.Error(err)
			return
		}
		b.ResetTimer()
		scanned := 0
		for scanned < b.N {
			if _, err := exec.Drain(p, plan); err != nil {
				b.Error(err)
				return
			}
			scanned += rows
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchSource replays a pre-built batch in vector-sized slices — the join
// benchmarks' input operator. It declares its ordering so merge joins can
// assert sorted inputs.
type benchSource struct {
	data   *table.Batch
	vector int
	ord    []int

	out *table.Batch
	pos int
}

func (s *benchSource) Open(*sim.Proc) error {
	if s.out == nil {
		s.out = table.NewBatch(s.data.Schema)
	}
	s.pos = 0
	return nil
}

func (s *benchSource) Next(*sim.Proc) (*table.Batch, error) {
	if s.pos >= s.data.Len() {
		return nil, nil
	}
	end := s.pos + s.vector
	if end > s.data.Len() {
		end = s.data.Len()
	}
	s.out.Reset()
	for i := s.pos; i < end; i++ {
		s.out.AppendFrom(s.data, i)
	}
	s.pos = end
	return s.out, nil
}

func (s *benchSource) Close(*sim.Proc) {}

func (s *benchSource) Ordering() []int { return s.ord }

// joinInputs builds a 1024-row build/left side and an 8192-row probe/right
// side whose keys all match (8 probe rows per build key), both in key order.
func joinInputs(b *testing.B) (*sim.Env, *hw.Node, *table.Batch, *table.Batch) {
	env := sim.NewEnv(1)
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	node := hw.NewNode(env, 1, cal, net)
	node.ForceActive()
	ls := &table.Schema{
		ID: 1, Name: "L", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "lv", Type: table.ColFloat64}},
	}
	rs := &table.Schema{
		ID: 2, Name: "R", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "rv", Type: table.ColString}},
	}
	const buildN, probeN = 1024, 8192
	left := table.NewBatch(ls)
	for i := 0; i < buildN; i++ {
		if err := left.AppendRow(table.Row{int64(i), float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	right := table.NewBatch(rs)
	for i := 0; i < probeN; i++ {
		if err := right.AppendRow(table.Row{int64(i / (probeN / buildN)), "payload"}); err != nil {
			b.Fatal(err)
		}
	}
	return env, node, left, right
}

// BenchmarkHashJoin measures the vectorized hash join: 1k-row build side,
// 8k-row probe, every probe row matching (ns/op is per joined output row).
// Must report 0 allocs/op in steady state (regression-guarded by
// TestHashJoinProbeZeroAlloc in internal/exec).
func BenchmarkHashJoin(b *testing.B) {
	env, node, left, right := joinInputs(b)
	defer env.Close()
	join := &exec.HashJoin{
		Build:     &benchSource{data: left, vector: 64},
		Probe:     &benchSource{data: right, vector: 64},
		Node:      node,
		BuildKeys: []int{0},
		ProbeKeys: []int{0},
		CPUPerRow: time.Microsecond,
		Vector:    64,
	}
	env.Spawn("bench", func(p *sim.Proc) {
		warm, err := exec.Drain(p, join)
		if err != nil {
			b.Error(err)
			return
		}
		if warm != right.Len() {
			b.Errorf("joined %d rows, want %d", warm, right.Len())
			return
		}
		b.ResetTimer()
		joined := 0
		for joined < b.N {
			n, err := exec.Drain(p, join)
			if err != nil {
				b.Error(err)
				return
			}
			joined += n
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMergeJoin measures the merge join over pre-ordered inputs: same
// shape as BenchmarkHashJoin, with both sides key-sorted and the ordering
// asserted from plan metadata (ns/op is per joined output row). Must report
// 0 allocs/op in steady state (TestMergeJoinZeroAlloc).
func BenchmarkMergeJoin(b *testing.B) {
	env, node, left, right := joinInputs(b)
	defer env.Close()
	join := &exec.MergeJoin{
		Left:      &benchSource{data: left, vector: 64, ord: []int{0}},
		Right:     &benchSource{data: right, vector: 64, ord: []int{0}},
		Node:      node,
		LeftKeys:  []int{0},
		RightKeys: []int{0},
		CPUPerRow: time.Microsecond,
		Vector:    64,
	}
	env.Spawn("bench", func(p *sim.Proc) {
		warm, err := exec.Drain(p, join)
		if err != nil {
			b.Error(err)
			return
		}
		if warm != right.Len() {
			b.Errorf("joined %d rows, want %d", warm, right.Len())
			return
		}
		b.ResetTimer()
		joined := 0
		for joined < b.N {
			n, err := exec.Drain(p, join)
			if err != nil {
				b.Error(err)
				return
			}
			joined += n
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExchangeParallelScan measures the scatter-gather merge: 8k rows
// split over 1/2/4/8 partitions, each on its own node, drained through the
// exchange (ns/op is per merged row). The sim-us/drain metric is the
// virtual time one drain takes — it must shrink as partitions are added
// (the 4-partition >= 2x speedup is regression-guarded by
// TestExchangeParallelScanSpeedup in internal/exec).
func BenchmarkExchangeParallelScan(b *testing.B) {
	const totalRows = 8192
	for _, nparts := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parts-%d", nparts), func(b *testing.B) {
			env := sim.NewEnv(1)
			defer env.Close()
			cal := hw.TestCalibration()
			net := hw.NewNetwork(env, cal)
			oracle := cc.NewOracle()
			schema := &table.Schema{
				ID: 1, Name: "sharded", KeyCols: 1,
				Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColInt64}},
			}
			rowsPer := totalRows / nparts
			var parts []*table.Partition
			for i := 0; i < nparts; i++ {
				node := hw.NewNode(env, i+1, cal, net)
				node.ForceActive()
				deps := table.Deps{
					Env:         env,
					Oracle:      oracle,
					Locks:       cc.NewLockManager(env),
					Log:         wal.NewLog(env, benchNullDevice{}),
					Factory:     &benchFactory{pageSize: 4096, segPages: 256},
					LockTimeout: time.Second,
					PageSize:    4096,
					Compute:     node.Compute,
					CPUPerOp:    cal.CPUBTreeOp,
					CPUPerTuple: cal.CPUTupleScan,
				}
				parts = append(parts, table.NewPartition(table.PartID(i+1), schema, table.Physiological, nil, nil, deps))
			}
			env.Spawn("load", func(p *sim.Proc) {
				for i, part := range parts {
					txn := oracle.Begin(cc.SnapshotIsolation)
					for j := 0; j < rowsPer; j++ {
						k := int64(i*rowsPer + j)
						key, _ := schema.Key(table.Row{k, k * 2})
						payload, _ := schema.EncodeRow(table.Row{k, k * 2})
						if err := part.Put(p, txn, key, payload); err != nil {
							b.Error(err)
							return
						}
					}
					if err := table.CommitTxn(p, txn, part); err != nil {
						b.Error(err)
						return
					}
				}
			})
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
			txn := oracle.Begin(cc.SnapshotIsolation)
			var plans []exec.Operator
			for _, part := range parts {
				plans = append(plans, &exec.TableScan{Part: part, Txn: txn, Vector: 64})
			}
			ex := &exec.Exchange{Plans: plans, Env: env}
			var simPerDrain time.Duration
			env.Spawn("bench", func(p *sim.Proc) {
				warm, err := exec.Drain(p, ex) // warm the free list and workers
				if err != nil {
					b.Error(err)
					return
				}
				if warm != totalRows {
					b.Errorf("drained %d rows, want %d", warm, totalRows)
					return
				}
				b.ResetTimer()
				start := env.Now()
				drained, drains := 0, 0
				for drained < b.N {
					n, err := exec.Drain(p, ex)
					if err != nil {
						b.Error(err)
						return
					}
					drained += n
					drains++
				}
				if drains > 0 {
					simPerDrain = (env.Now() - start) / time.Duration(drains)
				}
			})
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(simPerDrain.Microseconds()), "sim-us/drain")
		})
	}
}

// BenchmarkChangedSince measures the record mover's pre-advance change check
// against a store with many quiescent entries and one commit newer than the
// mover's snapshot — the case that previously fell back to an O(entries)
// walk and is now bounded by the watermark-pruned recent-commit set.
func BenchmarkChangedSince(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	oracle := cc.NewOracle()
	vs := cc.NewVersionStore(env)
	const entries = 50_000
	env.Spawn("setup", func(p *sim.Proc) {
		for i := 0; i < entries; i++ {
			txn := oracle.Begin(cc.SnapshotIsolation)
			key := string(keycodec.Int64Key(int64(i)))
			if err := vs.AcquireWriteIntent(p, txn, key, 0, time.Second); err != nil {
				b.Error(err)
				return
			}
			vs.StagePending(txn, key, false, []byte("v"))
			vs.CommitKey(txn, key, nil, oracle.CommitTS(txn))
			oracle.SettleCommit(txn)
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	// Vacuum: the historical bulk drops out of the recent-commit set.
	vs.GC(oracle.Watermark())
	// The mover's snapshot, then one newer commit to defeat the fast path.
	mover := oracle.Begin(cc.SnapshotIsolation)
	env.Spawn("fresh-commit", func(p *sim.Proc) {
		txn := oracle.Begin(cc.SnapshotIsolation)
		key := string(keycodec.Int64Key(int64(entries)))
		if err := vs.AcquireWriteIntent(p, txn, key, 0, time.Second); err != nil {
			b.Error(err)
			return
		}
		vs.StagePending(txn, key, false, []byte("v"))
		vs.CommitKey(txn, key, nil, oracle.CommitTS(txn))
		oracle.SettleCommit(txn)
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	lo, hi := keycodec.Int64Key(0), keycodec.Int64Key(int64(entries/2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs.ChangedSince(mover, lo, hi, 0) {
			b.Fatal("fresh commit is outside [lo, hi); ChangedSince must be false")
		}
	}
	b.ReportMetric(float64(vs.RecentCommits()), "recent-set")
}

// BenchmarkTableScanBatch measures the full operator stack — TableScan over
// partition, MVCC visibility, batched B*-tree cursor, columnar decode —
// draining a 5k-row partition with vector size 64 (ns/op is per drained
// row).
func BenchmarkTableScanBatch(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	n1 := hw.NewNode(env, 1, cal, net)
	n1.ForceActive()
	oracle := cc.NewOracle()
	schema := &table.Schema{
		ID: 1, Name: "t", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColString}},
	}
	deps := table.Deps{
		Env:         env,
		Oracle:      oracle,
		Locks:       cc.NewLockManager(env),
		Log:         wal.NewLog(env, benchNullDevice{}),
		Factory:     &benchFactory{pageSize: 4096, segPages: 256},
		LockTimeout: time.Second,
		PageSize:    4096,
		Compute:     n1.Compute,
		CPUPerOp:    cal.CPUBTreeOp,
		CPUPerTuple: cal.CPUTupleScan,
	}
	part := table.NewPartition(1, schema, table.Physiological, nil, nil, deps)
	const rows = 5000
	env.Spawn("load", func(p *sim.Proc) {
		txn := oracle.Begin(cc.SnapshotIsolation)
		for i := 0; i < rows; i++ {
			key, _ := schema.Key(table.Row{int64(i), "payload"})
			payload, _ := schema.EncodeRow(table.Row{int64(i), "payload"})
			if err := part.Put(p, txn, key, payload); err != nil {
				b.Error(err)
				return
			}
		}
		if err := table.CommitTxn(p, txn, part); err != nil {
			b.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	env.Spawn("bench", func(p *sim.Proc) {
		b.ResetTimer()
		drained := 0
		for drained < b.N {
			scan := &exec.TableScan{
				Part:   part,
				Txn:    oracle.Begin(cc.SnapshotIsolation),
				Vector: 64,
			}
			n, err := exec.Drain(p, scan)
			if err != nil {
				b.Error(err)
				return
			}
			if n != rows {
				b.Errorf("drained %d rows, want %d", n, rows)
				return
			}
			drained += n
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

package sim

import "testing"

func TestRingFIFOAcrossGrowth(t *testing.T) {
	var r ring[int]
	next := 0
	popped := 0
	// Interleave pushes and pops so head wraps repeatedly while the ring
	// grows through several capacities.
	for round := 0; round < 50; round++ {
		for i := 0; i < round%13+1; i++ {
			r.push(next)
			next++
		}
		for r.len() > round%7 {
			if got := r.pop(); got != popped {
				t.Fatalf("pop = %d, want %d", got, popped)
			}
			popped++
		}
	}
	for r.len() > 0 {
		if got := r.pop(); got != popped {
			t.Fatalf("drain pop = %d, want %d", got, popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d of %d pushed", popped, next)
	}
}

func TestRingPeekAndEmptyPanic(t *testing.T) {
	var r ring[string]
	r.push("a")
	r.push("b")
	if r.peek() != "a" {
		t.Fatalf("peek = %q", r.peek())
	}
	if r.pop() != "a" || r.pop() != "b" {
		t.Fatal("FIFO order broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("pop from empty ring did not panic")
		}
	}()
	r.pop()
}

// TestRingSteadyStateZeroAlloc pins the point of the ring: once grown to
// the high-water mark, push/pop cycles allocate nothing — unlike the
// s = s[1:] slice pop it replaced, which strands its prefix and
// re-allocates when the backing array's tail runs out.
func TestRingSteadyStateZeroAlloc(t *testing.T) {
	var r ring[int]
	for i := 0; i < 16; i++ {
		r.push(i)
	}
	for r.len() > 0 {
		r.pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			r.push(i)
		}
		for r.len() > 0 {
			r.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ring push/pop allocates %v objects/run, want 0", allocs)
	}
}

// TestChanSteadyStateZeroAlloc proves the channel's item buffer stopped
// churning allocations: fill/drain cycles through a small channel reuse the
// ring's backing array. (Before the ring, every pop abandoned the slice's
// front, so the buffer re-allocated each time append ran off the array.)
func TestChanSteadyStateZeroAlloc(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	env.Spawn("cycle", func(p *Proc) {
		ch := NewChan[int](env, 4)
		cycle := func() {
			for round := 0; round < 64; round++ {
				for i := 0; i < 4; i++ {
					ch.Put(p, i)
				}
				for i := 0; i < 4; i++ {
					ch.Get(p)
				}
			}
		}
		cycle()
		if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
			t.Errorf("warm channel fill/drain allocates %v objects/run, want 0", allocs)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

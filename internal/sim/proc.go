package sim

import (
	"fmt"
	"runtime/debug"
	"time"
)

type procState int

const (
	stateRunning procState = iota
	stateBlocked
	stateDone
)

type wakeReason int

const (
	wakeScheduled wakeReason = iota // timer fired / initial start
	wakeSignaled                    // signal, resource grant, queue element
	wakeKilled                      // environment shutting down
)

// killed is the sentinel panic value used to unwind a process goroutine when
// the environment is closed.
type killed struct{}

// Proc is a simulation process. Its methods may only be called by the
// process's own goroutine while it is the running process.
type Proc struct {
	env    *Env
	id     uint64
	name   string
	wake   chan struct{}
	state  procState
	reason wakeReason

	// waiter is the wait-list entry the process is currently parked on,
	// if any. Used to deregister on timeout.
	waiter *waiter

	// Breakdown, when non-nil, accumulates per-category virtual time for
	// this process (used for the paper's Fig. 7 runtime decomposition).
	Breakdown *Breakdown
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

func (p *Proc) run(fn func(p *Proc)) {
	// Wait for the initial resume from the scheduler.
	<-p.wake
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(killed); !ok {
				p.env.fail(p, fmt.Sprintf("%v\n%s", v, debug.Stack()))
			}
		}
		p.state = stateDone
		delete(p.env.procs, p.id)
		p.env.yield <- struct{}{}
	}()
	if p.reason == wakeKilled {
		panic(killed{})
	}
	fn(p)
}

// block suspends the process until something calls resume. It returns the
// reason the process was woken.
func (p *Proc) block() wakeReason {
	p.state = stateBlocked
	p.env.yield <- struct{}{}
	<-p.wake
	p.state = stateRunning
	if p.reason == wakeKilled {
		panic(killed{})
	}
	return p.reason
}

// resume hands control to the process. It must be called from the scheduler
// context (an event callback), never from another process.
func (p *Proc) resume(r wakeReason) {
	p.reason = r
	p.wake <- struct{}{}
	<-p.env.yield
}

// Sleep suspends the process for d of virtual time. The timer is a typed
// kernel event, so sleeping allocates nothing.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleResume(p.env.now+d, p, wakeScheduled)
	p.block()
}

// Yield lets every other event scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Meter starts measuring virtual time against category cat and returns a
// function that stops the measurement. Usage:
//
//	defer p.Meter(CatDiskIO)()
//
// If the process has no Breakdown attached, Meter is a no-op.
func (p *Proc) Meter(cat Category) func() {
	if p.Breakdown == nil {
		return func() {}
	}
	start := p.env.now
	b := p.Breakdown
	return func() { b.Add(cat, p.env.now-start) }
}

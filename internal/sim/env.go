// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives cooperative processes over a virtual clock. Exactly one
// process runs at any instant; a process yields control only at explicit
// blocking points (Sleep, Wait, Acquire, ...). Events scheduled for the same
// virtual time fire in schedule order, so a run with a fixed seed is fully
// reproducible.
//
// All of WattDB's timing — CPU service times, disk I/O, network transfers,
// lock and latch waits — is expressed as virtual-time waits on this kernel,
// while the data structures being exercised (pages, B*-trees, version
// chains) are real.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Spawn, and drive it with
// Run or RunUntil. An Env is not safe for concurrent use from multiple
// OS threads; all interaction must happen from the scheduler goroutine or
// from within a running simulation process.
type Env struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	yield   chan struct{}
	current *Proc
	procs   map[uint64]*Proc
	nextPID uint64
	stopped bool
	failure error

	// Rand is the environment's seeded random source. All stochastic
	// behaviour in a simulation must draw from it to stay reproducible.
	Rand *rand.Rand
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// NewEnv returns a fresh environment whose random source is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[uint64]*Proc),
		Rand:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Schedule registers fn to run at absolute virtual time at (clamped to the
// present). fn runs in the scheduler context and must not block; to do
// blocking work, have fn spawn a process.
func (e *Env) Schedule(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run d from now.
func (e *Env) After(d time.Duration, fn func()) { e.Schedule(e.now+d, fn) }

// Spawn starts a new simulation process executing fn. The process begins at
// the current virtual time, after the spawning process next yields.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextPID++
	p := &Proc{
		env:  e,
		id:   e.nextPID,
		name: name,
		wake: make(chan struct{}),
	}
	e.procs[p.id] = p
	go p.run(fn)
	e.Schedule(e.now, func() { p.resume(wakeScheduled) })
	return p
}

// Run processes events until the queue drains or Stop is called.
// It returns the first process failure, if any.
func (e *Env) Run() error { return e.RunUntil(1<<62 - 1) }

// RunUntil processes all events with timestamp <= deadline, then advances
// the clock to deadline. Processes that are still blocked stay suspended and
// are killed when Close is called.
func (e *Env) RunUntil(deadline time.Duration) error {
	for !e.stopped && e.failure == nil && len(e.events) > 0 {
		ev := e.events[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fn()
	}
	if e.failure == nil && e.now < deadline && deadline < 1<<62-1 {
		e.now = deadline
	}
	return e.failure
}

// Stop halts the scheduler after the currently executing event completes.
func (e *Env) Stop() { e.stopped = true }

// Close kills every live process so their goroutines exit. The environment
// must not be used afterwards.
func (e *Env) Close() {
	for _, p := range e.procs {
		if p.state == stateBlocked {
			p.resume(wakeKilled)
		}
	}
	e.procs = map[uint64]*Proc{}
	e.events = nil
}

// Live reports the number of processes that have been spawned and not yet
// finished.
func (e *Env) Live() int { return len(e.procs) }

func (e *Env) fail(p *Proc, v interface{}) {
	if e.failure == nil {
		e.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, v)
	}
}

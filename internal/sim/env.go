// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives cooperative processes over a virtual clock. Exactly one
// process runs at any instant; a process yields control only at explicit
// blocking points (Sleep, Wait, Acquire, ...). Events scheduled for the same
// virtual time fire in schedule order, so a run with a fixed seed is fully
// reproducible.
//
// All of WattDB's timing — CPU service times, disk I/O, network transfers,
// lock and latch waits — is expressed as virtual-time waits on this kernel,
// while the data structures being exercised (pages, B*-trees, version
// chains) are real.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Spawn, and drive it with
// Run or RunUntil. An Env is not safe for concurrent use from multiple
// OS threads; all interaction must happen from the scheduler goroutine or
// from within a running simulation process.
type Env struct {
	now     time.Duration
	events  []event // binary min-heap ordered by (at, seq)
	seq     uint64
	yield   chan struct{}
	current *Proc
	procs   map[uint64]*Proc
	nextPID uint64
	stopped bool
	failure error

	stats      Stats
	waiterFree *waiter

	// Rand is the environment's seeded random source. All stochastic
	// behaviour in a simulation must draw from it to stay reproducible.
	Rand *rand.Rand
}

// Stats is a snapshot of kernel counters, exposed for observability and
// benchmarking (see Env.Stats).
type Stats struct {
	// Events is the total number of events dispatched.
	Events uint64
	// Wakeups counts events that resumed a parked process directly
	// (the allocation-free fast path: timers, grants, signals).
	Wakeups uint64
	// Callbacks counts events that invoked a scheduled closure.
	Callbacks uint64
	// HeapDepth is the current event-queue length.
	HeapDepth int
	// MaxHeapDepth is the high-water mark of the event queue.
	MaxHeapDepth int
	// WaiterAllocs / WaiterReuses count wait-list entries newly allocated
	// vs. served from the kernel's free list.
	WaiterAllocs uint64
	WaiterReuses uint64
}

// event is one entry of the event queue. The common case — waking a parked
// process — is expressed by a non-nil proc, so dispatching it allocates
// nothing. fn is the fallback for arbitrary scheduled callbacks.
type event struct {
	at     time.Duration
	seq    uint64
	proc   *Proc
	reason wakeReason
	fn     func()
}

func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the event heap. The heap is hand-rolled over the
// slice (rather than container/heap) so no interface boxing occurs on the
// per-event hot path.
func (e *Env) push(ev event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.events[i].before(e.events[parent]) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
	if len(e.events) > e.stats.MaxHeapDepth {
		e.stats.MaxHeapDepth = len(e.events)
	}
}

// pop removes and returns the earliest event. The queue must be non-empty.
func (e *Env) pop() event {
	top := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = event{} // release the closure/proc references
	e.events = e.events[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && e.events[r].before(e.events[l]) {
			c = r
		}
		if !e.events[c].before(e.events[i]) {
			break
		}
		e.events[i], e.events[c] = e.events[c], e.events[i]
		i = c
	}
	return top
}

// NewEnv returns a fresh environment whose random source is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[uint64]*Proc),
		Rand:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Stats returns a snapshot of the kernel's counters.
func (e *Env) Stats() Stats {
	s := e.stats
	s.HeapDepth = len(e.events)
	return s
}

// Schedule registers fn to run at absolute virtual time at (clamped to the
// present). fn runs in the scheduler context and must not block; to do
// blocking work, have fn spawn a process.
func (e *Env) Schedule(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.push(event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run d from now.
func (e *Env) After(d time.Duration, fn func()) { e.Schedule(e.now+d, fn) }

// scheduleResume registers a typed proc-wakeup event: p is resumed with
// reason at time at. Unlike Schedule, no closure is allocated.
func (e *Env) scheduleResume(at time.Duration, p *Proc, reason wakeReason) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.push(event{at: at, seq: e.seq, proc: p, reason: reason})
}

// getWaiter returns a wait-list entry from the free list (or a fresh one),
// initialised to park p.
func (e *Env) getWaiter(p *Proc) *waiter {
	w := e.waiterFree
	if w == nil {
		e.stats.WaiterAllocs++
		return &waiter{p: p}
	}
	e.waiterFree = w.next
	e.stats.WaiterReuses++
	w.p = p
	w.amount = 0
	w.state = waitPending
	w.pinned = false
	w.next = nil
	return w
}

// putWaiter recycles a consumed wait-list entry. Pinned entries (still
// referenced by a timeout callback) are left for the GC.
func (e *Env) putWaiter(w *waiter) {
	if w.pinned {
		return
	}
	w.p = nil
	w.next = e.waiterFree
	e.waiterFree = w
}

// Spawn starts a new simulation process executing fn. The process begins at
// the current virtual time, after the spawning process next yields.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextPID++
	p := &Proc{
		env:  e,
		id:   e.nextPID,
		name: name,
		wake: make(chan struct{}),
	}
	e.procs[p.id] = p
	go p.run(fn)
	e.scheduleResume(e.now, p, wakeScheduled)
	return p
}

// Run processes events until the queue drains or Stop is called.
// It returns the first process failure, if any.
func (e *Env) Run() error { return e.RunUntil(1<<62 - 1) }

// RunUntil processes all events with timestamp <= deadline, then advances
// the clock to deadline. Processes that are still blocked stay suspended and
// are killed when Close is called.
func (e *Env) RunUntil(deadline time.Duration) error {
	for !e.stopped && e.failure == nil && len(e.events) > 0 {
		if e.events[0].at > deadline {
			break
		}
		ev := e.pop()
		e.now = ev.at
		e.stats.Events++
		if ev.proc != nil {
			e.stats.Wakeups++
			ev.proc.resume(ev.reason)
		} else {
			e.stats.Callbacks++
			ev.fn()
		}
	}
	if e.failure == nil && e.now < deadline && deadline < 1<<62-1 {
		e.now = deadline
	}
	return e.failure
}

// Stop halts the scheduler after the currently executing event completes.
func (e *Env) Stop() { e.stopped = true }

// Close kills every live process so their goroutines exit. The environment
// must not be used afterwards.
func (e *Env) Close() {
	for _, p := range e.procs {
		if p.state == stateBlocked {
			p.resume(wakeKilled)
		}
	}
	e.procs = map[uint64]*Proc{}
	e.events = nil
}

// Live reports the number of processes that have been spawned and not yet
// finished.
func (e *Env) Live() int { return len(e.procs) }

func (e *Env) fail(p *Proc, v interface{}) {
	if e.failure == nil {
		e.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, v)
	}
}

package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSignalFireWakesAll(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	sig := NewSignal(env)
	woke := 0
	for i := 0; i < 4; i++ {
		env.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woke++
		})
	}
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(time.Second)
		if sig.Waiting() != 4 {
			t.Errorf("waiting = %d, want 4", sig.Waiting())
		}
		sig.Fire()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	sig := NewSignal(env)
	var timedOut, signaled bool
	env.Spawn("t", func(p *Proc) {
		timedOut = !sig.WaitTimeout(p, time.Second)
	})
	env.Spawn("s", func(p *Proc) {
		signaled = sig.WaitTimeout(p, 10*time.Second)
	})
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		sig.Fire()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("first waiter should have timed out")
	}
	if !signaled {
		t.Fatal("second waiter should have been signaled")
	}
}

func TestResourceFIFOAndContention(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	res := NewResource(env, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Spawn("u", func(p *Proc) {
			res.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Second)
			res.Release(1)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 5*time.Second {
		t.Fatalf("serialised use should take 5s, took %v", env.Now())
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	res := NewResource(env, 2)
	for i := 0; i < 4; i++ {
		env.Spawn("u", func(p *Proc) {
			res.Use(p, 1, func() { p.Sleep(time.Second) })
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 2*time.Second {
		t.Fatalf("2-wide resource should finish 4 jobs in 2s, took %v", env.Now())
	}
}

func TestResourceBusyIntegral(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	res := NewResource(env, 4)
	env.Spawn("u", func(p *Proc) {
		res.Acquire(p, 2)
		p.Sleep(10 * time.Second)
		res.Release(2)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := res.BusyIntegral(); got != 20 {
		t.Fatalf("busy integral = %v, want 20 unit-seconds", got)
	}
}

func TestResourceOverRelease(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	res := NewResource(env, 1)
	env.Spawn("bad", func(p *Proc) { res.Release(1) })
	if err := env.Run(); err == nil {
		t.Fatal("over-release should fail the simulation")
	}
}

func TestChanFIFO(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ch := NewChan[int](env, 2)
	var got []int
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			ch.Put(p, i)
		}
		ch.Close()
	})
	env.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := ch.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
			p.Sleep(time.Millisecond)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestChanBlocksWhenFull(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ch := NewChan[int](env, 1)
	var putDone time.Duration
	env.Spawn("producer", func(p *Proc) {
		ch.Put(p, 1)
		ch.Put(p, 2) // must wait for the consumer
		putDone = p.Now()
	})
	env.Spawn("consumer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		ch.Get(p)
		ch.Get(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != 5*time.Second {
		t.Fatalf("second put completed at %v, want 5s", putDone)
	}
}

func TestChanCloseUnblocksGetters(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ch := NewChan[int](env, 1)
	ok := true
	env.Spawn("consumer", func(p *Proc) {
		_, ok = ch.Get(p)
	})
	env.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Second)
		ch.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("get on closed empty channel should report !ok")
	}
}

// Property: for any set of jobs on a capacity-c resource, total busy
// integral equals the sum of job durations, and the clock never exceeds the
// serial sum.
func TestResourceConservationProperty(t *testing.T) {
	f := func(durs []uint8, capRaw uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 50 {
			durs = durs[:50]
		}
		capacity := int64(capRaw%4) + 1
		env := NewEnv(7)
		defer env.Close()
		res := NewResource(env, capacity)
		var sum time.Duration
		for _, d := range durs {
			d := time.Duration(d) * time.Millisecond
			sum += d
			env.Spawn("job", func(p *Proc) {
				res.Use(p, 1, func() { p.Sleep(d) })
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		busy := time.Duration(res.BusyIntegral() * float64(time.Second))
		if busy < sum-time.Microsecond || busy > sum+time.Microsecond {
			return false
		}
		return env.Now() <= sum && env.Now() >= sum/time.Duration(capacity)-time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package sim

// ring is a growable FIFO ring buffer. The kernel's wait queues and channel
// buffers pop from the front on every grant; a plain slice either
// shift-copies or, via s = s[1:], strands its prefix and re-allocates once
// the backing array's tail is consumed. The ring reuses its backing array
// in steady state: pushes and pops are O(1) and allocation-free once the
// buffer has grown to the high-water mark.
type ring[T any] struct {
	buf  []T
	head int
	size int
}

// len returns the number of queued items.
func (r *ring[T]) len() int { return r.size }

// push appends v at the tail.
func (r *ring[T]) push(v T) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)%len(r.buf)] = v
	r.size++
}

// pop removes and returns the head item; it panics on an empty ring (the
// kernel always guards with len).
func (r *ring[T]) pop() T {
	if r.size == 0 {
		panic("sim: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // drop the reference for GC
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return v
}

// peek returns the head item without removing it.
func (r *ring[T]) peek() T { return r.buf[r.head] }

// grow doubles the backing array, linearising the live items.
func (r *ring[T]) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]T, n)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

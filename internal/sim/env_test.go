package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var woke time.Duration
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
}

func TestEventOrderingSameInstant(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events ran out of order: %v", order)
		}
	}
}

func TestSpawnInterleaving(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var trace []string
	env.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(time.Second)
		trace = append(trace, "a1")
		p.Sleep(2 * time.Second)
		trace = append(trace, "a3")
	})
	env.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(2 * time.Second)
		trace = append(trace, "b2")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a1", "b2", "a3"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	ticks := 0
	env.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := env.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if env.Now() != 10*time.Second {
		t.Fatalf("now = %v, want 10s", env.Now())
	}
}

func TestCloseKillsBlockedProcesses(t *testing.T) {
	env := NewEnv(1)
	cleaned := false
	env.Spawn("immortal", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
	})
	if err := env.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if env.Live() != 1 {
		t.Fatalf("live = %d, want 1", env.Live())
	}
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("live after close = %d, want 0", env.Live())
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
}

func TestPanicPropagatesAsFailure(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	env.Spawn("bad", func(p *Proc) {
		p.Sleep(time.Second)
		panic("boom")
	})
	err := env.Run()
	if err == nil {
		t.Fatal("expected failure from panicking process")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		env := NewEnv(42)
		defer env.Close()
		var out []int64
		for i := 0; i < 5; i++ {
			env.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(time.Duration(env.Rand.Intn(1000)) * time.Millisecond)
					out = append(out, int64(p.Now()))
				}
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestYieldRunsPendingEvents(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	var trace []string
	env.Spawn("a", func(p *Proc) {
		env.Schedule(p.Now(), func() { trace = append(trace, "event") })
		p.Yield()
		trace = append(trace, "after")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != "event" || trace[1] != "after" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestMeterAccumulatesWaits(t *testing.T) {
	env := NewEnv(1)
	defer env.Close()
	b := &Breakdown{}
	env.Spawn("m", func(p *Proc) {
		p.Breakdown = b
		stop := p.Meter(CatDiskIO)
		p.Sleep(3 * time.Second)
		stop()
		stop = p.Meter(CatLocking)
		p.Sleep(time.Second)
		stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Get(CatDiskIO) != 3*time.Second {
		t.Fatalf("disk = %v", b.Get(CatDiskIO))
	}
	if b.Get(CatLocking) != time.Second {
		t.Fatalf("locking = %v", b.Get(CatLocking))
	}
	if b.Total() != 4*time.Second {
		t.Fatalf("total = %v", b.Total())
	}
}

package sim

import "time"

// Category classifies where a transaction's execution time goes. The set
// mirrors the decomposition in the paper's Fig. 7.
type Category int

const (
	CatOther Category = iota
	CatDiskIO
	CatNetworkIO
	CatLocking
	CatLatching
	CatLogging
	CatCPU
	numCategories
)

var categoryNames = [numCategories]string{
	"other", "disk IO", "network IO", "locking", "latching", "logging", "cpu",
}

// String returns the category's display name.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return "unknown"
	}
	return categoryNames[c]
}

// Categories lists all categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Breakdown accumulates virtual time per category.
type Breakdown struct {
	buckets [numCategories]time.Duration
}

// Add accumulates d against cat.
func (b *Breakdown) Add(cat Category, d time.Duration) {
	if cat < 0 || cat >= numCategories {
		cat = CatOther
	}
	b.buckets[cat] += d
}

// Get returns the accumulated time for cat.
func (b *Breakdown) Get(cat Category) time.Duration { return b.buckets[cat] }

// Total returns the sum across all categories.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.buckets {
		t += d
	}
	return t
}

// AddAll merges other into b.
func (b *Breakdown) AddAll(other *Breakdown) {
	for i, d := range other.buckets {
		b.buckets[i] += d
	}
}

// Reset zeroes all buckets.
func (b *Breakdown) Reset() { b.buckets = [numCategories]time.Duration{} }

package sim

import "time"

type waiterState int

const (
	waitPending waiterState = iota
	waitGranted
	waitCancelled
)

// waiter is one wait-list entry. Entries are recycled through the
// environment's free list (getWaiter/putWaiter) so parking on a signal,
// resource, or channel allocates nothing in steady state. An entry that a
// timeout callback still references is pinned and exempt from recycling.
type waiter struct {
	p      *Proc
	amount int64
	state  waiterState
	pinned bool
	next   *waiter // free-list link
}

// Signal is a broadcast condition: Wait parks the calling process until the
// next Fire. Fire wakes every currently parked process. Signals are
// level-free (a Fire with no waiters is lost), like sync.Cond.
type Signal struct {
	env     *Env
	waiters []*waiter
}

// NewSignal returns a Signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait parks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	w := s.env.getWaiter(p)
	s.waiters = append(s.waiters, w)
	p.block()
}

// WaitTimeout parks p until the next Fire or until d elapses. It reports
// whether the signal fired (true) or the wait timed out (false).
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	w := s.env.getWaiter(p)
	w.pinned = true // the timer closure below outlives the wait
	s.waiters = append(s.waiters, w)
	s.env.After(d, func() {
		if w.state == waitPending {
			w.state = waitCancelled
			w.p.resume(wakeScheduled)
		}
	})
	return p.block() == wakeSignaled
}

// Fire wakes every process currently waiting on the signal.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = s.waiters[:0]
	for _, w := range ws {
		if w.state != waitPending {
			continue
		}
		w.state = waitGranted
		s.env.scheduleResume(s.env.now, w.p, wakeSignaled)
		s.env.putWaiter(w)
	}
}

// Waiting reports how many processes are parked on the signal.
func (s *Signal) Waiting() int {
	n := 0
	for _, w := range s.waiters {
		if w.state == waitPending {
			n++
		}
	}
	return n
}

// Resource is a counted resource (semaphore) with a FIFO wait queue (a
// ring buffer, so grants pop without shifting or re-allocating). It models
// servers such as CPU cores, disk arms, and network links. It also
// integrates busy units over time so callers can compute utilisation.
type Resource struct {
	env      *Env
	capacity int64
	inUse    int64
	queue    ring[*waiter]

	lastChange time.Duration
	busyInt    float64 // integral of inUse over time, in unit·seconds
}

// NewResource returns a resource with the given capacity.
func NewResource(env *Env, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, capacity: capacity, lastChange: env.now}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int64 { return r.inUse }

// QueueLen returns the number of processes waiting for units.
func (r *Resource) QueueLen() int { return r.queue.len() }

func (r *Resource) account() {
	now := r.env.now
	r.busyInt += float64(r.inUse) * (now - r.lastChange).Seconds()
	r.lastChange = now
}

// BusyIntegral returns the integral of in-use units over time, in
// unit-seconds, up to the current instant.
func (r *Resource) BusyIntegral() float64 {
	r.account()
	return r.busyInt
}

// Acquire obtains n units for p, waiting in FIFO order if necessary.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 || n > r.capacity {
		panic("sim: invalid acquire amount")
	}
	if r.queue.len() == 0 && r.inUse+n <= r.capacity {
		r.account()
		r.inUse += n
		return
	}
	w := r.env.getWaiter(p)
	w.amount = n
	r.queue.push(w)
	p.block()
}

// TryAcquire obtains n units if immediately available, reporting success.
func (r *Resource) TryAcquire(n int64) bool {
	if r.queue.len() == 0 && r.inUse+n <= r.capacity {
		r.account()
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and grants queued waiters in FIFO order.
func (r *Resource) Release(n int64) {
	r.account()
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource released more than acquired")
	}
	for r.queue.len() > 0 {
		w := r.queue.peek()
		if w.state == waitCancelled {
			r.queue.pop()
			r.env.putWaiter(w)
			continue
		}
		if r.inUse+w.amount > r.capacity {
			break
		}
		r.queue.pop()
		r.account()
		r.inUse += w.amount
		w.state = waitGranted
		r.env.scheduleResume(r.env.now, w.p, wakeSignaled)
		r.env.putWaiter(w)
	}
}

// Use acquires n units, runs the process's own fn, and releases.
func (r *Resource) Use(p *Proc, n int64, fn func()) {
	r.Acquire(p, n)
	defer r.Release(n)
	fn()
}

// Chan is a bounded FIFO channel between simulation processes, analogous to
// a buffered Go channel but operating in virtual time. The item buffer and
// both wait lists are ring buffers: pops reuse the backing arrays instead
// of abandoning their prefixes.
type Chan[T any] struct {
	env      *Env
	capacity int
	items    ring[T]
	getters  ring[*waiter]
	putters  ring[*waiter]
	closed   bool
}

// NewChan returns a channel with the given capacity (0 means rendezvous is
// not supported; use capacity >= 1).
func NewChan[T any](env *Env, capacity int) *Chan[T] {
	if capacity < 1 {
		panic("sim: channel capacity must be >= 1")
	}
	return &Chan[T]{env: env, capacity: capacity}
}

// Len returns the number of buffered items.
func (c *Chan[T]) Len() int { return c.items.len() }

// Put appends v, blocking while the channel is full. It reports false (and
// drops v) if the channel was closed, which lets producers observe
// cancellation even when they were parked mid-Put.
func (c *Chan[T]) Put(p *Proc, v T) bool {
	for c.items.len() >= c.capacity {
		if c.closed {
			return false
		}
		w := c.env.getWaiter(p)
		c.putters.push(w)
		p.block()
	}
	if c.closed {
		return false
	}
	c.items.push(v)
	c.wakeOne(&c.getters)
	return true
}

// Get removes and returns the oldest item, blocking while the channel is
// empty. ok is false when the channel is closed and drained.
func (c *Chan[T]) Get(p *Proc) (v T, ok bool) {
	for c.items.len() == 0 {
		if c.closed {
			return v, false
		}
		w := c.env.getWaiter(p)
		c.getters.push(w)
		p.block()
	}
	v = c.items.pop()
	c.wakeOne(&c.putters)
	return v, true
}

// Close marks the channel closed and wakes all blocked processes.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.wakeAll(&c.getters)
	c.wakeAll(&c.putters)
}

func (c *Chan[T]) wakeOne(list *ring[*waiter]) {
	for list.len() > 0 {
		w := list.pop()
		if w.state != waitPending {
			c.env.putWaiter(w)
			continue
		}
		w.state = waitGranted
		c.env.scheduleResume(c.env.now, w.p, wakeSignaled)
		c.env.putWaiter(w)
		return
	}
}

func (c *Chan[T]) wakeAll(list *ring[*waiter]) {
	for list.len() > 0 {
		w := list.pop()
		if w.state != waitPending {
			c.env.putWaiter(w)
			continue
		}
		w.state = waitGranted
		c.env.scheduleResume(c.env.now, w.p, wakeSignaled)
		c.env.putWaiter(w)
	}
}

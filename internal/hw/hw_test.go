package hw

import (
	"math"
	"testing"
	"time"

	"wattdb/internal/sim"
)

func TestDiskServiceTimes(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	hdd := NewDisk(env, HDD, cal)
	ssd := NewDisk(env, SSD, cal)
	var hddTime, ssdTime time.Duration
	env.Spawn("io", func(p *sim.Proc) {
		start := p.Now()
		hdd.Read(p, 8192)
		hddTime = p.Now() - start
		start = p.Now()
		ssd.Read(p, 8192)
		ssdTime = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if hddTime < cal.HDDLatency {
		t.Fatalf("hdd read %v, want >= %v", hddTime, cal.HDDLatency)
	}
	if ssdTime >= hddTime {
		t.Fatalf("ssd (%v) should be faster than hdd (%v)", ssdTime, hddTime)
	}
}

func TestDiskQueueing(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	ssd := NewDisk(env, SSD, cal)
	done := 0
	for i := 0; i < 10; i++ {
		env.Spawn("io", func(p *sim.Proc) {
			ssd.Read(p, 8192)
			done++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	// 10 serial requests must take 10x one request.
	single := cal.SSDLatency + time.Duration(8192/cal.SSDBandwidth*float64(time.Second))
	if env.Now() < 9*single {
		t.Fatalf("queueing not serialised: total %v, single %v", env.Now(), single)
	}
}

func TestNetworkTransferTimeScalesWithSize(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	net := NewNetwork(env, cal)
	net.AddNode(1)
	net.AddNode(2)
	var small, large time.Duration
	env.Spawn("xfer", func(p *sim.Proc) {
		start := p.Now()
		net.Transfer(p, 1, 2, 100)
		small = p.Now() - start
		start = p.Now()
		net.Transfer(p, 1, 2, 32<<20)
		large = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if small < cal.NetLatency {
		t.Fatalf("small transfer %v < latency", small)
	}
	// 32 MB over ~1 Gb/s should take roughly 280 ms.
	if large < 200*time.Millisecond || large > 500*time.Millisecond {
		t.Fatalf("32 MB transfer took %v, want ~287 ms", large)
	}
}

func TestNetworkLocalTransferIsFree(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	net := NewNetwork(env, DefaultCalibration())
	net.AddNode(1)
	env.Spawn("xfer", func(p *sim.Proc) {
		net.Transfer(p, 1, 1, 1<<30)
		if p.Now() != 0 {
			t.Errorf("local transfer consumed time %v", p.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkUplinkContention(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	net := NewNetwork(env, cal)
	for i := 1; i <= 3; i++ {
		net.AddNode(i)
	}
	var ends []time.Duration
	for i := 0; i < 2; i++ {
		env.Spawn("xfer", func(p *sim.Proc) {
			net.Transfer(p, 1, 2, 10<<20)
			ends = append(ends, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 2 || ends[1] < 2*ends[0]-cal.NetLatency*2-time.Millisecond {
		t.Fatalf("transfers on one uplink should serialise: %v", ends)
	}
}

func TestNodePowerLifecycle(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	net := NewNetwork(env, cal)
	n := NewNode(env, 1, cal, net)
	if n.State() != PowerOff {
		t.Fatalf("new node state = %v, want standby", n.State())
	}
	if got := n.Power(0); got != cal.PowerStandby {
		t.Fatalf("standby power = %v, want %v", got, cal.PowerStandby)
	}
	env.Spawn("op", func(p *sim.Proc) {
		n.PowerOn(p)
		if p.Now() != cal.BootTime {
			t.Errorf("boot finished at %v, want %v", p.Now(), cal.BootTime)
		}
		if n.State() != PowerActive {
			t.Errorf("state after boot = %v", n.State())
		}
		if got := n.Power(1); got != cal.PowerMax {
			t.Errorf("full-load power = %v, want %v", got, cal.PowerMax)
		}
		n.PowerOff(p)
		if n.State() != PowerOff {
			t.Errorf("state after shutdown = %v", n.State())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeComputeQueuesOnCores(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration() // 2 cores
	net := NewNetwork(env, cal)
	n := NewNode(env, 1, cal, net)
	n.ForceActive()
	for i := 0; i < 4; i++ {
		env.Spawn("work", func(p *sim.Proc) {
			n.Compute(p, time.Second)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 2*time.Second {
		t.Fatalf("4 jobs on 2 cores took %v, want 2s", env.Now())
	}
}

func TestCPUUtilizationWindow(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	net := NewNetwork(env, cal)
	n := NewNode(env, 1, cal, net)
	n.ForceActive()
	env.Spawn("work", func(p *sim.Proc) {
		n.Compute(p, 5*time.Second) // one of two cores busy for 5s
	})
	var util float64
	env.Spawn("sample", func(p *sim.Proc) {
		p.Sleep(10 * time.Second)
		util = n.CPUUtilization()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 5 core-seconds / (10s * 2 cores) = 0.25
	if math.Abs(util-0.25) > 0.01 {
		t.Fatalf("utilisation = %v, want 0.25", util)
	}
}

func TestPowerMeterIntegratesEnergy(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	net := NewNetwork(env, cal)
	nodes := []*Node{NewNode(env, 1, cal, net), NewNode(env, 2, cal, net)}
	nodes[0].ForceActive()
	// Node 2 stays in standby.
	meter := NewPowerMeter(env, cal, nodes, time.Second)
	meter.Start()
	if err := env.RunUntil(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Idle active node (22W) + standby (2.5W) + switch (20W) = 44.5 W for 100s.
	want := (cal.PowerIdle + cal.PowerStandby + cal.PowerSwitch) * 100
	got := meter.EnergyJoules()
	if math.Abs(got-want) > want*0.02 {
		t.Fatalf("energy = %v J, want ~%v J", got, want)
	}
}

func TestMinimalClusterPowerMatchesPaper(t *testing.T) {
	// Paper Sect. 3.1: one active node + switch (others standby) ~65 W
	// with 10 nodes total.
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	net := NewNetwork(env, cal)
	var nodes []*Node
	for i := 1; i <= 10; i++ {
		nodes = append(nodes, NewNode(env, i, cal, net))
	}
	nodes[0].ForceActive()
	meter := NewPowerMeter(env, cal, nodes, time.Second)
	var watts float64
	env.Spawn("sample", func(p *sim.Proc) {
		p.Sleep(time.Second)
		watts = meter.Sample()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if watts < 60 || watts > 70 {
		t.Fatalf("minimal cluster power = %v W, want ~65 W", watts)
	}
}

func TestFullClusterPowerMatchesPaper(t *testing.T) {
	// Paper: all 10 nodes at full utilisation ~260-280 W.
	env := sim.NewEnv(1)
	defer env.Close()
	cal := DefaultCalibration()
	net := NewNetwork(env, cal)
	var nodes []*Node
	total := cal.PowerSwitch
	for i := 1; i <= 10; i++ {
		n := NewNode(env, i, cal, net)
		n.ForceActive()
		total += n.Power(1)
		nodes = append(nodes, n)
	}
	_ = nodes
	if total < 260 || total > 290 {
		t.Fatalf("full cluster power = %v W, want 260-280 W", total)
	}
}

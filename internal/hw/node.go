package hw

import (
	"fmt"
	"time"

	"wattdb/internal/sim"
)

// PowerState is a node's position in its power lifecycle.
type PowerState int

const (
	PowerOff PowerState = iota // standby: only wake-on-LAN circuitry live
	PowerBooting
	PowerActive
	PowerShuttingDown
)

// String returns the state's display name.
func (s PowerState) String() string {
	switch s {
	case PowerOff:
		return "standby"
	case PowerBooting:
		return "booting"
	case PowerActive:
		return "active"
	default:
		return "shutting-down"
	}
}

// Node models one wimpy cluster machine: CPU cores, local disks, a network
// link, and a power state. Higher layers (buffer pool, partitions, query
// engine) attach to a Node for their timing.
type Node struct {
	ID    int
	env   *sim.Env
	cal   Calibration
	CPU   *sim.Resource
	Disks []*Disk
	Net   *Network

	state        PowerState
	stateChanged time.Duration
	// Busy-time snapshot bookkeeping for windowed utilisation.
	lastCPUBusy float64
	lastSample  time.Duration
}

// NewNode creates a node with the paper's device complement (1 HDD + 2 SSD)
// attached to net.
func NewNode(env *sim.Env, id int, cal Calibration, net *Network) *Node {
	n := &Node{
		ID:    id,
		env:   env,
		cal:   cal,
		CPU:   sim.NewResource(env, int64(cal.Cores)),
		Net:   net,
		state: PowerOff,
	}
	n.Disks = []*Disk{
		NewDisk(env, HDD, cal),
		NewDisk(env, SSD, cal),
		NewDisk(env, SSD, cal),
	}
	net.AddNode(id)
	return n
}

// Cal returns the node's calibration.
func (n *Node) Cal() Calibration { return n.cal }

// Env returns the simulation environment.
func (n *Node) Env() *sim.Env { return n.env }

// State returns the node's current power state.
func (n *Node) State() PowerState { return n.state }

// LogDisk returns the device used for WAL appends (the HDD, keeping SSDs
// free for data, as in the paper's setup).
func (n *Node) LogDisk() *Disk { return n.Disks[0] }

// DataDisks returns the devices used for segments (the SSDs).
func (n *Node) DataDisks() []*Disk { return n.Disks[1:] }

// Compute occupies one CPU core for d of virtual time, queueing if all
// cores are busy.
func (n *Node) Compute(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	defer p.Meter(sim.CatCPU)()
	n.CPU.Use(p, 1, func() { p.Sleep(d) })
}

// PowerOn boots the node from standby, blocking p for the boot time.
// Booting an already active node is a no-op.
func (n *Node) PowerOn(p *sim.Proc) {
	if n.state == PowerActive {
		return
	}
	if n.state != PowerOff {
		panic(fmt.Sprintf("hw: power on node %d in state %v", n.ID, n.state))
	}
	n.state = PowerBooting
	n.stateChanged = n.env.Now()
	p.Sleep(n.cal.BootTime)
	n.state = PowerActive
	n.stateChanged = n.env.Now()
}

// PowerOff transitions the node to standby, blocking p for the shutdown
// time. The caller must have quiesced the node first.
func (n *Node) PowerOff(p *sim.Proc) {
	if n.state == PowerOff {
		return
	}
	n.state = PowerShuttingDown
	n.stateChanged = n.env.Now()
	p.Sleep(n.cal.ShutdownTime)
	n.state = PowerOff
	n.stateChanged = n.env.Now()
}

// ForceActive marks the node active without simulating the boot delay.
// Used when building initial cluster configurations at t=0.
func (n *Node) ForceActive() {
	n.state = PowerActive
	n.stateChanged = n.env.Now()
}

// ForceOff models an abrupt power failure: the node drops to standby
// instantly, with no orderly shutdown sequence. Volatile state loss is the
// caller's responsibility (see cluster.CrashNode).
func (n *Node) ForceOff() {
	n.state = PowerOff
	n.stateChanged = n.env.Now()
}

// CPUUtilization returns the fraction of core capacity used since the last
// call (a sampling window). The first call measures from node creation.
func (n *Node) CPUUtilization() float64 {
	now := n.env.Now()
	busy := n.CPU.BusyIntegral()
	dt := (now - n.lastSample).Seconds()
	du := busy - n.lastCPUBusy
	n.lastSample = now
	n.lastCPUBusy = busy
	if dt <= 0 {
		return 0
	}
	u := du / (dt * float64(n.cal.Cores))
	if u > 1 {
		u = 1
	}
	return u
}

// PeekCPUUtilization returns utilisation over the window since the last
// CPUUtilization call without resetting the window.
func (n *Node) PeekCPUUtilization() float64 {
	now := n.env.Now()
	busy := n.CPU.BusyIntegral()
	dt := (now - n.lastSample).Seconds()
	if dt <= 0 {
		return 0
	}
	u := (busy - n.lastCPUBusy) / (dt * float64(n.cal.Cores))
	if u > 1 {
		u = 1
	}
	return u
}

// Power returns the node's instantaneous power draw in Watts given a CPU
// utilisation in [0,1]. Standby nodes draw the standby power; booting and
// shutting-down nodes draw full power.
func (n *Node) Power(util float64) float64 {
	switch n.state {
	case PowerOff:
		return n.cal.PowerStandby
	case PowerBooting, PowerShuttingDown:
		return n.cal.PowerMax
	default:
		if util < 0 {
			util = 0
		}
		if util > 1 {
			util = 1
		}
		return n.cal.PowerIdle + (n.cal.PowerMax-n.cal.PowerIdle)*util
	}
}

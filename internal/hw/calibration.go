// Package hw models the cluster hardware of the paper's testbed: wimpy
// Amdahl-balanced nodes (Intel Atom D510, 2 GB DRAM, one HDD and two SSDs)
// joined by a Gigabit Ethernet switch. Service times, bandwidths, and power
// draws are collected in a single Calibration struct so experiments can be
// tuned in one place.
package hw

import "time"

// Calibration holds every hardware cost constant used by the simulation.
type Calibration struct {
	// CPU.
	Cores          int           // cores per node (Atom D510: 2 physical)
	CPUTupleScan   time.Duration // CPU service time to scan one record
	CPUTupleProj   time.Duration // CPU time to project one record
	CPUTupleSort   time.Duration // CPU time per record per merge level in sort
	CPUBTreeOp     time.Duration // CPU time per B-tree node traversal step
	CPUTxnOverhead time.Duration // fixed CPU time per transaction (parse/route)
	CPUPageCopy    time.Duration // CPU time to process one page during bulk copy

	// Network. One switch, full duplex per-node links.
	NetLatency   time.Duration // one-way message latency (software stack + wire)
	NetBandwidth float64       // bytes/second per link (Gigabit Ethernet)
	NetFrameSize int           // bytes of per-message framing overhead

	// Disks.
	HDDLatency   time.Duration // average positioning time per random access
	HDDBandwidth float64       // bytes/second sequential
	SSDLatency   time.Duration // access latency per request
	SSDBandwidth float64       // bytes/second

	// Power (Watts). Levels follow Sect. 3.1 of the paper.
	PowerStandby float64 // node in standby
	PowerIdle    float64 // node active, 0% utilisation
	PowerMax     float64 // node active, 100% utilisation
	PowerSwitch  float64 // interconnect switch, always on

	// Node state transitions.
	BootTime     time.Duration // standby -> active
	ShutdownTime time.Duration // active -> standby

	// Memory: buffer pool frames per node (2 GB / 8 KB in the paper;
	// scaled down by presets).
	BufferFrames int

	// Storage layout.
	PageSize     int // bytes per page
	SegmentPages int // pages per segment (4096 in the paper = 32 MB)
}

// DefaultCalibration models the paper's testbed at full fidelity: 32 MB
// segments and service times calibrated so the micro-benchmarks land near
// the paper's absolute numbers (~40 k records/s local scan, <1 k records/s
// naive remote operators, 22-26 W per node).
func DefaultCalibration() Calibration {
	return Calibration{
		Cores:          2,
		CPUTupleScan:   25 * time.Microsecond,
		CPUTupleProj:   4 * time.Microsecond,
		CPUTupleSort:   3 * time.Microsecond,
		CPUBTreeOp:     2 * time.Microsecond,
		CPUTxnOverhead: 150 * time.Microsecond,
		CPUPageCopy:    10 * time.Microsecond,

		NetLatency:   500 * time.Microsecond,
		NetBandwidth: 117e6, // ~1 Gbit/s minus framing
		NetFrameSize: 64,

		HDDLatency:   7 * time.Millisecond,
		HDDBandwidth: 90e6,
		SSDLatency:   120 * time.Microsecond,
		SSDBandwidth: 230e6,

		PowerStandby: 2.5,
		PowerIdle:    22,
		PowerMax:     26,
		PowerSwitch:  20,

		BootTime:     10 * time.Second,
		ShutdownTime: 3 * time.Second,

		BufferFrames: 16384, // scaled-down DRAM (tests override further)
		PageSize:     8192,
		SegmentPages: 4096,
	}
}

// TestCalibration returns a scaled-down calibration for unit tests: small
// segments and buffers so migrations exercise many segments without large
// allocations.
func TestCalibration() Calibration {
	c := DefaultCalibration()
	c.SegmentPages = 64
	c.BufferFrames = 512
	return c
}

// SegmentBytes returns the size of one segment in bytes.
func (c Calibration) SegmentBytes() int64 {
	return int64(c.PageSize) * int64(c.SegmentPages)
}

package hw

import (
	"time"

	"wattdb/internal/sim"
)

// PowerMeter periodically samples the power draw of a set of nodes plus the
// interconnect switch and integrates total energy, mimicking the external
// power meters of the paper's testbed.
type PowerMeter struct {
	env      *sim.Env
	cal      Calibration
	nodes    []*Node
	interval time.Duration

	// Per-node busy-integral snapshots, independent of other samplers.
	lastBusy []float64
	lastTime time.Duration

	energyJoules float64

	// OnSample, when set, receives every sample (time, total Watts).
	OnSample func(at time.Duration, watts float64)
}

// NewPowerMeter creates a meter over nodes sampling at the given interval.
// Call Start to spawn the sampling process.
func NewPowerMeter(env *sim.Env, cal Calibration, nodes []*Node, interval time.Duration) *PowerMeter {
	return &PowerMeter{
		env:      env,
		cal:      cal,
		nodes:    nodes,
		interval: interval,
		lastBusy: make([]float64, len(nodes)),
		lastTime: env.Now(),
	}
}

// Start spawns the sampling process; it runs until the environment ends.
func (m *PowerMeter) Start() {
	m.env.Spawn("power-meter", func(p *sim.Proc) {
		for {
			p.Sleep(m.interval)
			m.Sample()
		}
	})
}

// Sample takes one measurement now and integrates energy since the last one.
func (m *PowerMeter) Sample() float64 {
	now := m.env.Now()
	dt := (now - m.lastTime).Seconds()
	watts := m.cal.PowerSwitch
	for i, n := range m.nodes {
		busy := n.CPU.BusyIntegral()
		util := 0.0
		if dt > 0 {
			util = (busy - m.lastBusy[i]) / (dt * float64(m.cal.Cores))
		}
		m.lastBusy[i] = busy
		watts += n.Power(util)
	}
	if dt > 0 {
		m.energyJoules += watts * dt
	}
	m.lastTime = now
	if m.OnSample != nil {
		m.OnSample(now, watts)
	}
	return watts
}

// EnergyJoules returns the total energy integrated so far.
func (m *PowerMeter) EnergyJoules() float64 { return m.energyJoules }

package hw

import (
	"time"

	"wattdb/internal/sim"
)

// Network models the cluster interconnect: one switch with a dedicated
// full-duplex link per node. A transfer serialises on the sender's uplink
// for its transmission time and then pays one propagation/stack latency.
// Switch fabric contention is not modelled (the paper's switch is
// non-blocking for 10 GbE-class aggregate traffic).
type Network struct {
	env *sim.Env
	cal Calibration

	// extraDelay is an injected additional one-way latency applied to every
	// transfer while set (fault injection: congestion spike, flaky switch).
	extraDelay time.Duration

	links map[int]*link
}

type link struct {
	tx        *sim.Resource
	bytesSent int64
	messages  int64
}

// NewNetwork returns an empty network; nodes attach via AddNode.
func NewNetwork(env *sim.Env, cal Calibration) *Network {
	return &Network{env: env, cal: cal, links: make(map[int]*link)}
}

// AddNode provisions a link for the node with the given ID.
func (n *Network) AddNode(nodeID int) {
	if _, ok := n.links[nodeID]; !ok {
		n.links[nodeID] = &link{tx: sim.NewResource(n.env, 1)}
	}
}

// TransferTime returns the unloaded wire time for a payload of the given size.
func (n *Network) TransferTime(bytes int64) time.Duration {
	wire := time.Duration(float64(bytes+int64(n.cal.NetFrameSize)) / n.cal.NetBandwidth * float64(time.Second))
	return n.cal.NetLatency + wire
}

// Transfer ships bytes from node from to node to, blocking p for the queueing
// plus wire time. Transfers between a node and itself are free (records move
// through main memory, Sect. 3.3).
func (n *Network) Transfer(p *sim.Proc, from, to int, bytes int64) {
	if from == to {
		return
	}
	defer p.Meter(sim.CatNetworkIO)()
	l, ok := n.links[from]
	if !ok {
		panic("hw: transfer from unknown node")
	}
	if _, ok := n.links[to]; !ok {
		panic("hw: transfer to unknown node")
	}
	wire := time.Duration(float64(bytes+int64(n.cal.NetFrameSize)) / n.cal.NetBandwidth * float64(time.Second))
	l.tx.Use(p, 1, func() { p.Sleep(wire) })
	l.bytesSent += bytes
	l.messages++
	p.Sleep(n.cal.NetLatency + n.extraDelay)
}

// SetExtraDelay injects an additional one-way latency on every transfer
// (0 clears the fault). Used by the chaos harness for delay spikes.
func (n *Network) SetExtraDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.extraDelay = d
}

// ExtraDelay returns the currently injected latency spike.
func (n *Network) ExtraDelay() time.Duration { return n.extraDelay }

// BytesSent returns the cumulative bytes sent by the node's uplink.
func (n *Network) BytesSent(nodeID int) int64 {
	if l, ok := n.links[nodeID]; ok {
		return l.bytesSent
	}
	return 0
}

// Messages returns the cumulative message count sent by the node.
func (n *Network) Messages(nodeID int) int64 {
	if l, ok := n.links[nodeID]; ok {
		return l.messages
	}
	return 0
}

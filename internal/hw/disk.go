package hw

import (
	"time"

	"wattdb/internal/sim"
)

// DiskKind distinguishes the node's storage devices.
type DiskKind int

const (
	HDD DiskKind = iota
	SSD
)

// String returns the kind's display name.
func (k DiskKind) String() string {
	if k == HDD {
		return "hdd"
	}
	return "ssd"
}

// Disk models a single storage device with a FIFO request queue (one arm /
// one channel). Random accesses pay the positioning latency; sequential
// batch transfers pay it once.
type Disk struct {
	Kind      DiskKind
	latency   time.Duration
	bandwidth float64
	arm       *sim.Resource

	// stall is an injected extra service time added to every request while
	// set (fault injection: a degraded device, firmware GC pause, cable
	// fault). Zero means healthy.
	stall time.Duration

	// Stats.
	reads, writes int64
	bytesRead     int64
	bytesWritten  int64
}

// NewDisk returns a disk of the given kind using cal's service times.
func NewDisk(env *sim.Env, kind DiskKind, cal Calibration) *Disk {
	d := &Disk{Kind: kind, arm: sim.NewResource(env, 1)}
	if kind == HDD {
		d.latency, d.bandwidth = cal.HDDLatency, cal.HDDBandwidth
	} else {
		d.latency, d.bandwidth = cal.SSDLatency, cal.SSDBandwidth
	}
	return d
}

func (d *Disk) xferTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / d.bandwidth * float64(time.Second))
}

// SetStall injects an extra per-request service time (0 clears the fault).
// Used by the chaos harness to model write stalls and degraded devices.
func (d *Disk) SetStall(extra time.Duration) {
	if extra < 0 {
		extra = 0
	}
	d.stall = extra
}

// Stall returns the currently injected per-request stall.
func (d *Disk) Stall() time.Duration { return d.stall }

// Read performs one random read of the given size, waiting for the device.
func (d *Disk) Read(p *sim.Proc, bytes int64) {
	defer p.Meter(sim.CatDiskIO)()
	d.arm.Use(p, 1, func() { p.Sleep(d.stall + d.latency + d.xferTime(bytes)) })
	d.reads++
	d.bytesRead += bytes
}

// Write performs one random write of the given size.
func (d *Disk) Write(p *sim.Proc, bytes int64) {
	defer p.Meter(sim.CatDiskIO)()
	d.arm.Use(p, 1, func() { p.Sleep(d.stall + d.latency + d.xferTime(bytes)) })
	d.writes++
	d.bytesWritten += bytes
}

// ReadSeq performs a sequential read of bytes: one positioning latency plus
// a streaming transfer. Used for whole-segment shipping.
func (d *Disk) ReadSeq(p *sim.Proc, bytes int64) {
	defer p.Meter(sim.CatDiskIO)()
	d.arm.Use(p, 1, func() { p.Sleep(d.stall + d.latency + d.xferTime(bytes)) })
	d.reads++
	d.bytesRead += bytes
}

// WriteSeq performs a sequential write.
func (d *Disk) WriteSeq(p *sim.Proc, bytes int64) {
	defer p.Meter(sim.CatDiskIO)()
	d.arm.Use(p, 1, func() { p.Sleep(d.stall + d.latency + d.xferTime(bytes)) })
	d.writes++
	d.bytesWritten += bytes
}

// AppendLog performs a log append: sequential, no positioning cost beyond a
// small rotational component on HDDs.
func (d *Disk) AppendLog(p *sim.Proc, bytes int64) {
	defer p.Meter(sim.CatLogging)()
	lat := d.latency / 4
	d.arm.Use(p, 1, func() { p.Sleep(d.stall + lat + d.xferTime(bytes)) })
	d.writes++
	d.bytesWritten += bytes
}

// Ops returns cumulative read and write request counts.
func (d *Disk) Ops() (reads, writes int64) { return d.reads, d.writes }

// Bytes returns cumulative bytes read and written.
func (d *Disk) Bytes() (read, written int64) { return d.bytesRead, d.bytesWritten }

// BusyIntegral returns accumulated device busy time in seconds.
func (d *Disk) BusyIntegral() float64 { return d.arm.BusyIntegral() }

// QueueLen returns the number of requests waiting for the device.
func (d *Disk) QueueLen() int { return d.arm.QueueLen() }

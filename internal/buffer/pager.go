package buffer

import (
	"wattdb/internal/btree"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// Allocator extends Backend with page allocation, needed by trees that grow.
type Allocator interface {
	// AllocPage allocates a zeroed durable page in seg.
	AllocPage(p *sim.Proc, seg storage.SegID) (storage.PageNo, error)
	// FreePage returns a durable page to seg.
	FreePage(p *sim.Proc, seg storage.SegID, no storage.PageNo) error
}

// SegPager adapts one segment's pages, served through a node's buffer pool,
// to the btree.Pager interface. All tree I/O — buffer hits, misses, disk
// reads, write-backs — is therefore timed against the owning node.
type SegPager struct {
	Pool      *Pool
	Allocator Allocator
	Seg       storage.SegID
}

var _ btree.Pager = SegPager{}

// Read pins the page for reading. The release closure is cached on the
// frame, so a buffer hit performs no allocation.
func (sp SegPager) Read(p *sim.Proc, no storage.PageNo) (storage.Page, btree.Release, error) {
	f, err := sp.Pool.Pin(p, storage.PageID{Seg: sp.Seg, Page: no})
	if err != nil {
		return nil, nil, err
	}
	return f.Data, f.Release(), nil
}

// Write pins the page for modification.
func (sp SegPager) Write(p *sim.Proc, no storage.PageNo) (storage.Page, btree.Release, error) {
	f, err := sp.Pool.Pin(p, storage.PageID{Seg: sp.Seg, Page: no})
	if err != nil {
		return nil, nil, err
	}
	return f.Data, f.ReleaseMod(), nil
}

// Alloc allocates a durable page and pins a zeroed frame for it.
func (sp SegPager) Alloc(p *sim.Proc) (storage.PageNo, storage.Page, btree.Release, error) {
	no, err := sp.Allocator.AllocPage(p, sp.Seg)
	if err != nil {
		return 0, nil, nil, err
	}
	f, err := sp.Pool.PinNew(p, storage.PageID{Seg: sp.Seg, Page: no})
	if err != nil {
		return 0, nil, nil, err
	}
	return no, f.Data, f.ReleaseMod(), nil
}

// Free drops any buffered frame and releases the durable page.
func (sp SegPager) Free(p *sim.Proc, no storage.PageNo) error {
	sp.Pool.Discard(storage.PageID{Seg: sp.Seg, Page: no})
	return sp.Allocator.FreePage(p, sp.Seg, no)
}

// PageSize returns the pool's page size.
func (sp SegPager) PageSize() int { return sp.Pool.pageSize }

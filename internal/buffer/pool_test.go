package buffer

import (
	"fmt"
	"testing"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/hw"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// memBackend serves pages from in-memory segments, optionally charging a
// fixed latency per I/O, and counts operations.
type memBackend struct {
	segs    map[storage.SegID]*storage.Segment
	latency time.Duration
	reads   int
	writes  int
}

func newMemBackend() *memBackend {
	return &memBackend{segs: map[storage.SegID]*storage.Segment{}}
}

func (m *memBackend) addSegment(id storage.SegID, pageSize, pages int) *storage.Segment {
	s := storage.NewSegment(id, pageSize, pages)
	m.segs[id] = s
	return s
}

func (m *memBackend) ReadPage(p *sim.Proc, id storage.PageID, dst []byte) error {
	seg, ok := m.segs[id.Seg]
	if !ok {
		return fmt.Errorf("no segment %d", id.Seg)
	}
	if m.latency > 0 {
		p.Sleep(m.latency)
	}
	m.reads++
	copy(dst, seg.Page(id.Page))
	return nil
}

func (m *memBackend) WritePage(p *sim.Proc, id storage.PageID, src []byte) error {
	seg, ok := m.segs[id.Seg]
	if !ok {
		return fmt.Errorf("no segment %d", id.Seg)
	}
	if m.latency > 0 {
		p.Sleep(m.latency)
	}
	m.writes++
	copy(seg.Page(id.Page), src)
	return nil
}

func (m *memBackend) AllocPage(p *sim.Proc, seg storage.SegID) (storage.PageNo, error) {
	no, ok := m.segs[seg].AllocPage()
	if !ok {
		return 0, btree.ErrSegmentFull
	}
	return no, nil
}

func (m *memBackend) FreePage(p *sim.Proc, seg storage.SegID, no storage.PageNo) error {
	m.segs[seg].FreePage(no)
	return nil
}

func runSim(t *testing.T, fn func(env *sim.Env, p *sim.Proc)) {
	t.Helper()
	env := sim.NewEnv(1)
	defer env.Close()
	env.Spawn("test", func(p *sim.Proc) { fn(env, p) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func preparePage(t *testing.T, be *memBackend, seg storage.SegID, content string) storage.PageNo {
	t.Helper()
	no, ok := be.segs[seg].AllocPage()
	if !ok {
		t.Fatal("alloc failed")
	}
	pg := be.segs[seg].Page(no)
	pg.Init(storage.PageLeaf)
	pg.InsertCellAt(0, []byte(content))
	return no
}

func TestPinHitAvoidsSecondRead(t *testing.T) {
	be := newMemBackend()
	be.addSegment(1, 256, 8)
	no := preparePage(t, be, 1, "hello")
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		id := storage.PageID{Seg: 1, Page: no}
		f1, err := pool.Pin(p, id)
		if err != nil {
			t.Fatal(err)
		}
		if string(f1.Data.Cell(0)) != "hello" {
			t.Fatalf("cell = %q", f1.Data.Cell(0))
		}
		pool.Unpin(f1, false)
		f2, err := pool.Pin(p, id)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f2, false)
		if be.reads != 1 {
			t.Fatalf("reads = %d, want 1", be.reads)
		}
		st := pool.Stats()
		if st.Hits != 1 || st.Misses != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

func TestEvictionWritesBackDirty(t *testing.T) {
	be := newMemBackend()
	seg := be.addSegment(1, 256, 64)
	var nos []storage.PageNo
	for i := 0; i < 20; i++ {
		nos = append(nos, preparePage(t, be, 1, fmt.Sprintf("page-%02d", i)))
	}
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		// Dirty page 0.
		f, err := pool.Pin(p, storage.PageID{Seg: 1, Page: nos[0]})
		if err != nil {
			t.Fatal(err)
		}
		f.Data.ReplaceCellAt(0, []byte("DIRTY!!!"))
		pool.Unpin(f, true)
		// Touch enough pages to force page 0 out.
		for _, no := range nos[1:] {
			g, err := pool.Pin(p, storage.PageID{Seg: 1, Page: no})
			if err != nil {
				t.Fatal(err)
			}
			pool.Unpin(g, false)
		}
		if string(seg.Page(nos[0]).Cell(0)) != "DIRTY!!!" {
			t.Fatal("dirty page not written back on eviction")
		}
		if be.writes == 0 {
			t.Fatal("no write-backs recorded")
		}
	})
}

func TestWALRuleInvokedBeforeFlush(t *testing.T) {
	be := newMemBackend()
	be.addSegment(1, 256, 64)
	var nos []storage.PageNo
	for i := 0; i < 12; i++ {
		nos = append(nos, preparePage(t, be, 1, "x"))
	}
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		var flushedTo uint64
		pool.SetWALFlush(func(_ *sim.Proc, lsn uint64) { flushedTo = lsn })
		f, err := pool.Pin(p, storage.PageID{Seg: 1, Page: nos[0]})
		if err != nil {
			t.Fatal(err)
		}
		f.Data.SetLSN(777)
		pool.Unpin(f, true)
		for _, no := range nos[1:] {
			g, _ := pool.Pin(p, storage.PageID{Seg: 1, Page: no})
			pool.Unpin(g, false)
		}
		if flushedTo != 777 {
			t.Fatalf("WAL flushed to %d, want 777", flushedTo)
		}
	})
}

func TestLatchWaitOnConcurrentFetch(t *testing.T) {
	be := newMemBackend()
	be.addSegment(1, 256, 8)
	no := preparePage(t, be, 1, "slow")
	be.latency = 10 * time.Millisecond
	env := sim.NewEnv(1)
	defer env.Close()
	pool := NewPool(env, be, 256, 8)
	id := storage.PageID{Seg: 1, Page: no}
	done := 0
	for i := 0; i < 3; i++ {
		env.Spawn("reader", func(p *sim.Proc) {
			f, err := pool.Pin(p, id)
			if err != nil {
				t.Error(err)
				return
			}
			pool.Unpin(f, false)
			done++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if be.reads != 1 {
		t.Fatalf("reads = %d, want 1 (latch waiters should reuse the fetch)", be.reads)
	}
	if pool.Stats().LatchWaits != 2 {
		t.Fatalf("latch waits = %d, want 2", pool.Stats().LatchWaits)
	}
}

func TestFlushSegmentMakesDurable(t *testing.T) {
	be := newMemBackend()
	seg := be.addSegment(1, 256, 16)
	no := preparePage(t, be, 1, "before")
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		f, _ := pool.Pin(p, storage.PageID{Seg: 1, Page: no})
		f.Data.ReplaceCellAt(0, []byte("after!"))
		pool.Unpin(f, true)
		if string(seg.Page(no).Cell(0)) != "before" {
			t.Fatal("write-through happened before flush")
		}
		if err := pool.FlushSegment(p, 1); err != nil {
			t.Fatal(err)
		}
		if string(seg.Page(no).Cell(0)) != "after!" {
			t.Fatal("flush did not persist")
		}
		if pool.InUse() != 0 {
			t.Fatalf("frames remain after FlushSegment: %d", pool.InUse())
		}
	})
}

func TestPoolExhaustionErrors(t *testing.T) {
	be := newMemBackend()
	be.addSegment(1, 256, 64)
	var nos []storage.PageNo
	for i := 0; i < 12; i++ {
		nos = append(nos, preparePage(t, be, 1, "x"))
	}
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		var frames []*Frame
		var err error
		for _, no := range nos {
			var f *Frame
			f, err = pool.Pin(p, storage.PageID{Seg: 1, Page: no})
			if err != nil {
				break
			}
			frames = append(frames, f)
		}
		if err == nil {
			t.Fatal("pinning beyond capacity should fail")
		}
		for _, f := range frames {
			pool.Unpin(f, false)
		}
	})
}

func TestBTreeOverBufferPool(t *testing.T) {
	be := newMemBackend()
	be.addSegment(5, 512, 256)
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 512, 32)
		pager := SegPager{Pool: pool, Allocator: be, Seg: 5}
		tr := btree.New(pager, 0, nil)
		const n = 500
		for i := 0; i < n; i++ {
			if _, err := tr.Put(p, keycodec.Int64Key(int64(i)), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Validate(p); err != nil {
			t.Fatal(err)
		}
		if c, _ := tr.Count(p); c != n {
			t.Fatalf("count = %d", c)
		}
		// Everything must survive a full flush + reload through the pool.
		if err := pool.FlushAll(p); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 37 {
			v, ok, err := tr.Get(p, keycodec.Int64Key(int64(i)))
			if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("get %d after flush = %q %v %v", i, v, ok, err)
			}
		}
	})
}

func TestRemoteCacheServesEvictedPages(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	net.AddNode(1)
	net.AddNode(2)
	be := newMemBackend()
	be.addSegment(1, 256, 64)
	var nos []storage.PageNo
	for i := 0; i < 20; i++ {
		nos = append(nos, preparePage(t, be, 1, fmt.Sprintf("pg%d", i)))
	}
	pool := NewPool(env, be, 256, 8)
	remote := NewRemote(net, 1, 2, 64)
	pool.AttachRemote(remote)
	env.Spawn("reader", func(p *sim.Proc) {
		// First pass: fill and overflow the pool, pushing evictees remote.
		for _, no := range nos {
			f, err := pool.Pin(p, storage.PageID{Seg: 1, Page: no})
			if err != nil {
				t.Error(err)
				return
			}
			pool.Unpin(f, false)
		}
		missesBefore := pool.Stats().Misses
		readsBefore := be.reads
		// Second pass over early pages: should hit the remote cache, not disk.
		for _, no := range nos[:6] {
			f, err := pool.Pin(p, storage.PageID{Seg: 1, Page: no})
			if err != nil {
				t.Error(err)
				return
			}
			if string(f.Data.Cell(0)) == "" {
				t.Error("empty page from remote cache")
			}
			pool.Unpin(f, false)
		}
		if pool.Stats().RemoteHits == 0 {
			t.Error("no remote hits")
		}
		if be.reads != readsBefore {
			t.Errorf("disk reads grew by %d despite remote cache", be.reads-readsBefore)
		}
		_ = missesBefore
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteInvalidationOnDirty(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	net.AddNode(1)
	net.AddNode(2)
	be := newMemBackend()
	be.addSegment(1, 256, 8)
	no := preparePage(t, be, 1, "v1")
	pool := NewPool(env, be, 256, 8)
	remote := NewRemote(net, 1, 2, 16)
	pool.AttachRemote(remote)
	env.Spawn("writer", func(p *sim.Proc) {
		id := storage.PageID{Seg: 1, Page: no}
		remote.Store(id, be.segs[1].Page(no)) // simulate an earlier offload
		f, err := pool.Pin(p, id)
		if err != nil {
			t.Error(err)
			return
		}
		f.Data.ReplaceCellAt(0, []byte("v2"))
		pool.Unpin(f, true)
		if remote.Size() != 0 {
			t.Error("stale page left in remote cache after dirtying")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// clockLive counts non-hole entries in the clock ring.
func clockLive(bp *Pool) int {
	n := 0
	for _, f := range bp.clock {
		if f != nil {
			n++
		}
	}
	return n
}

func TestPinFailureUnlinksFrameFromClock(t *testing.T) {
	be := newMemBackend()
	be.addSegment(1, 256, 8)
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		// Backend read failure: segment 99 does not exist.
		if _, err := pool.Pin(p, storage.PageID{Seg: 99, Page: 0}); err == nil {
			t.Fatal("pin of missing segment should fail")
		}
		if pool.InUse() != 0 {
			t.Fatalf("frame map holds %d frames after failed pin", pool.InUse())
		}
		if n := clockLive(pool); n != 0 {
			t.Fatalf("clock ring holds %d frames after failed pin", n)
		}
	})
}

func TestEvictionUnderPinFailureLeavesCleanClock(t *testing.T) {
	// Regression: a frame whose makeRoom fails (pool exhausted) used to stay
	// in the clock ring as a dead entry until the hand happened to pass it.
	be := newMemBackend()
	be.addSegment(1, 256, 64)
	var nos []storage.PageNo
	for i := 0; i < 12; i++ {
		nos = append(nos, preparePage(t, be, 1, "x"))
	}
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		var held []*Frame
		for _, no := range nos[:8] {
			f, err := pool.Pin(p, storage.PageID{Seg: 1, Page: no})
			if err != nil {
				t.Fatal(err)
			}
			held = append(held, f)
		}
		// Every extra pin must fail (all frames pinned) without leaving a
		// dead frame behind in the map or the ring.
		for i := 8; i < 11; i++ {
			if _, err := pool.Pin(p, storage.PageID{Seg: 1, Page: nos[i]}); err == nil {
				t.Fatal("pin beyond capacity should fail")
			}
			if pool.InUse() != 8 {
				t.Fatalf("frame map holds %d frames, want 8", pool.InUse())
			}
			if n := clockLive(pool); n != 8 {
				t.Fatalf("clock ring holds %d live frames, want 8", n)
			}
		}
		// After releasing a pin the pool must recover.
		pool.Unpin(held[0], false)
		f, err := pool.Pin(p, storage.PageID{Seg: 1, Page: nos[11]})
		if err != nil {
			t.Fatalf("pin after unpin: %v", err)
		}
		pool.Unpin(f, false)
		for _, g := range held[1:] {
			pool.Unpin(g, false)
		}
	})
}

func TestEvictedFramesAreRecycled(t *testing.T) {
	be := newMemBackend()
	be.addSegment(1, 256, 64)
	var nos []storage.PageNo
	for i := 0; i < 40; i++ {
		nos = append(nos, preparePage(t, be, 1, "x"))
	}
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		for pass := 0; pass < 3; pass++ {
			for _, no := range nos {
				f, err := pool.Pin(p, storage.PageID{Seg: 1, Page: no})
				if err != nil {
					t.Fatal(err)
				}
				pool.Unpin(f, false)
			}
		}
		st := pool.Stats()
		if st.FrameAllocs > 9 {
			t.Fatalf("allocated %d frames for a capacity-8 pool", st.FrameAllocs)
		}
		if st.FrameReuses == 0 {
			t.Fatal("no frame reuses despite heavy eviction")
		}
	})
}

func TestPinHitZeroAlloc(t *testing.T) {
	be := newMemBackend()
	be.addSegment(1, 256, 8)
	no := preparePage(t, be, 1, "hot")
	runSim(t, func(env *sim.Env, p *sim.Proc) {
		pool := NewPool(env, be, 256, 8)
		id := storage.PageID{Seg: 1, Page: no}
		f, err := pool.Pin(p, id)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f, false)
		// A buffer hit of a resident idle frame never blocks, so it is safe
		// to measure inside the simulation process.
		allocs := testing.AllocsPerRun(100, func() {
			g, err := pool.Pin(p, id)
			if err != nil {
				t.Error(err)
				return
			}
			pool.Unpin(g, false)
		})
		if allocs != 0 {
			t.Fatalf("buffer-hit Pin/Unpin allocates %v objects/op, want 0", allocs)
		}
	})
}

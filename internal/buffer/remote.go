package buffer

import (
	"bytes"

	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// Remote is an rDMA page cache living in a helper node's DRAM. Evicted clean
// pages are offloaded to it; a later miss can then be served over the network
// faster than from a loaded disk ("warm" data, Sect. 5.2). Entries are clean
// by construction, so losing one is always safe.
type Remote struct {
	net      *hw.Network
	selfID   int // node whose pool offloads
	helperID int // node donating DRAM
	capacity int
	pages    map[storage.PageID][]byte
	order    []storage.PageID // FIFO eviction of the cache itself
	hits     int64
	stores   int64
}

// NewRemote creates a remote cache of capacity pages on helper helperID,
// used by node selfID.
func NewRemote(net *hw.Network, selfID, helperID, capacity int) *Remote {
	return &Remote{
		net:      net,
		selfID:   selfID,
		helperID: helperID,
		capacity: capacity,
		pages:    make(map[storage.PageID][]byte, capacity),
	}
}

// Store places a copy of data in the remote cache. The rDMA write is
// asynchronous from the evictor's perspective, so no simulation time is
// charged to the caller.
func (r *Remote) Store(id storage.PageID, data []byte) {
	if _, ok := r.pages[id]; !ok {
		for len(r.pages) >= r.capacity && len(r.order) > 0 {
			old := r.order[0]
			r.order = r.order[1:]
			delete(r.pages, old)
		}
		r.order = append(r.order, id)
	}
	r.pages[id] = bytes.Clone(data)
	r.stores++
}

// Fetch tries to read id from the cache into dst, charging the rDMA network
// round trip to p. It reports whether the page was present. A fetched page
// is invalidated (the pool will re-own it and may dirty it).
func (r *Remote) Fetch(p *sim.Proc, id storage.PageID, dst []byte) bool {
	data, ok := r.pages[id]
	if !ok {
		return false
	}
	r.net.Transfer(p, r.helperID, r.selfID, int64(len(data)))
	copy(dst, data)
	delete(r.pages, id)
	r.hits++
	return true
}

// Invalidate removes id from the cache (called when the page is dirtied).
func (r *Remote) Invalidate(id storage.PageID) { delete(r.pages, id) }

// Size returns the number of cached pages.
func (r *Remote) Size() int { return len(r.pages) }

// HitsStores returns cumulative fetch hits and stores.
func (r *Remote) HitsStores() (hits, stores int64) { return r.hits, r.stores }

// Package buffer implements each node's page buffer: pin/unpin with clock
// eviction, write-back of dirty frames under the WAL rule, latch waits when
// two transactions race on a page being fetched, and an optional remote
// (rDMA) extension used by helper nodes during rebalancing (Sect. 5.2).
package buffer

import (
	"fmt"
	"sort"

	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// Backend supplies durable page bytes. The cluster layer implements it with
// full disk and network timing; tests can use a trivial in-memory version.
type Backend interface {
	// ReadPage copies the durable bytes of id into dst, charging I/O time
	// to p.
	ReadPage(p *sim.Proc, id storage.PageID, dst []byte) error
	// WritePage persists src as the durable bytes of id.
	WritePage(p *sim.Proc, id storage.PageID, src []byte) error
}

type frameState int

const (
	frameIdle frameState = iota
	frameLoading
	frameFlushing
)

// Frame is one buffered page. Frames (and their page buffers) are recycled
// through the pool's free list: eviction pushes the frame there, the next
// miss pops it, so a steady-state miss allocates nothing.
type Frame struct {
	ID    storage.PageID
	Data  storage.Page
	pins  int
	dirty bool
	state frameState
	cond  *sim.Signal
	ref   bool // clock reference bit
	dead  bool

	// recLSN is the page LSN captured when the frame last went clean→dirty:
	// the oldest log record whose effect the durable page image may lack.
	// The fuzzy checkpointer folds the minimum over still-dirty frames into
	// its redo low-water mark; 0 means no logged modification is pending
	// (fresh PinNew pages and structural writes leave it unset, which only
	// makes the checkpoint more conservative).
	recLSN uint64

	// gen increments every time the frame is recycled for a new page, so
	// holders that block (FlushSegment, FlushAll) can detect that the
	// *Frame they remembered now buffers someone else's page.
	gen uint64
	// clockPos is the frame's slot in the clock ring, -1 when unlinked.
	clockPos int
	// release / releaseMod are cached unpin closures handed out by pagers,
	// so a buffer hit costs no closure allocation (see SegPager.Read).
	release    func()
	releaseMod func()
	nextFree   *Frame
	pool       *Pool
}

// Dirty reports whether the frame has unflushed modifications.
func (f *Frame) Dirty() bool { return f.dirty }

// Stats aggregates buffer pool counters.
type Stats struct {
	Hits, Misses, Evictions, Flushes int64
	LatchWaits                       int64
	RemoteHits                       int64
	// FrameAllocs counts frames newly allocated; FrameReuses counts frames
	// (and their page buffers) served from the free list.
	FrameAllocs, FrameReuses int64
}

// Pool is a single node's buffer pool.
type Pool struct {
	env      *sim.Env
	backend  Backend
	pageSize int
	capacity int
	frames   map[storage.PageID]*Frame
	clock    []*Frame // ring with nil holes left by dropped frames
	hand     int
	holes    int
	// ckptHand/ckptSteps drive the fuzzy checkpointer's flush walk: a
	// second clock cursor (independent of the eviction hand) plus the
	// number of ring slots left in the current lap (see FlushDirtyBatch).
	ckptHand  int
	ckptSteps int
	free      *Frame // recycled frames, linked by nextFree
	stats     Stats

	// walFlush, when set, is invoked before a dirty frame is written back
	// so the log is durable up to the page LSN (the WAL rule).
	walFlush func(p *sim.Proc, lsn uint64)

	remote *Remote
}

// NewPool creates a pool of capacity frames of pageSize bytes over backend.
func NewPool(env *sim.Env, backend Backend, pageSize, capacity int) *Pool {
	if capacity < 8 {
		panic("buffer: pool too small")
	}
	return &Pool{
		env:      env,
		backend:  backend,
		pageSize: pageSize,
		capacity: capacity,
		frames:   make(map[storage.PageID]*Frame, capacity),
	}
}

// SetWALFlush installs the WAL-rule hook.
func (bp *Pool) SetWALFlush(fn func(p *sim.Proc, lsn uint64)) { bp.walFlush = fn }

// AttachRemote connects an rDMA page cache (on a helper node). Pass nil to
// detach.
func (bp *Pool) AttachRemote(r *Remote) { bp.remote = r }

// Stats returns a snapshot of the pool's counters.
func (bp *Pool) Stats() Stats { return bp.stats }

// InUse returns the number of resident frames.
func (bp *Pool) InUse() int { return len(bp.frames) }

// getFrame returns a frame for id, zeroed and linked into the frame map and
// clock ring — from the free list when possible, freshly allocated otherwise.
func (bp *Pool) getFrame(id storage.PageID) *Frame {
	f := bp.free
	if f != nil {
		bp.free = f.nextFree
		f.nextFree = nil
		f.ID = id
		f.pins = 0
		f.dirty = false
		f.state = frameIdle
		f.ref = false
		f.dead = false
		f.recLSN = 0
		f.gen++
		clear(f.Data)
		bp.stats.FrameReuses++
	} else {
		f = &Frame{
			ID:   id,
			Data: make([]byte, bp.pageSize),
			cond: sim.NewSignal(bp.env),
			pool: bp,
		}
		f.release = func() { f.pool.Unpin(f, false) }
		f.releaseMod = func() { f.pool.Unpin(f, true) }
		bp.stats.FrameAllocs++
	}
	bp.frames[id] = f
	f.clockPos = len(bp.clock)
	bp.clock = append(bp.clock, f)
	return f
}

// Release returns the cached unpin-clean closure for the frame (no per-pin
// closure allocation). ReleaseMod is the unpin-dirty variant.
func (f *Frame) Release() func()    { return f.release }
func (f *Frame) ReleaseMod() func() { return f.releaseMod }

// Pin fetches page id into the pool and pins it. New pages (not yet durable)
// are pinned with pinNew instead.
func (bp *Pool) Pin(p *sim.Proc, id storage.PageID) (*Frame, error) {
	for {
		f, ok := bp.frames[id]
		if !ok {
			break
		}
		if f.state == frameIdle {
			f.pins++
			f.ref = true
			bp.stats.Hits++
			return f, nil
		}
		// Another transaction is moving this page between buffer and
		// disk: wait on its latch.
		bp.stats.LatchWaits++
		stop := p.Meter(sim.CatLatching)
		f.cond.Wait(p)
		stop()
	}
	f := bp.getFrame(id)
	f.pins = 1
	f.state = frameLoading
	f.ref = true
	if err := bp.makeRoom(p); err != nil {
		f.pins--
		bp.drop(f)
		f.cond.Fire()
		return nil, err
	}
	bp.stats.Misses++
	var err error
	if bp.remote != nil && bp.remote.Fetch(p, id, f.Data) {
		bp.stats.RemoteHits++
	} else {
		err = bp.backend.ReadPage(p, id, f.Data)
	}
	f.state = frameIdle
	f.cond.Fire()
	if err != nil {
		f.pins--
		bp.drop(f)
		return nil, err
	}
	return f, nil
}

// PinNew installs a freshly allocated (zeroed, dirty) page without a backend
// read. The caller must have allocated id in its segment already.
func (bp *Pool) PinNew(p *sim.Proc, id storage.PageID) (*Frame, error) {
	if _, ok := bp.frames[id]; ok {
		return nil, fmt.Errorf("buffer: PinNew of resident page %v", id)
	}
	f := bp.getFrame(id)
	f.pins = 1
	f.dirty = true
	f.ref = true
	if err := bp.makeRoom(p); err != nil {
		// Decrement rather than zero: a concurrent Pin may have taken a
		// hit on this idle frame while makeRoom blocked; drop leaves such
		// a still-pinned frame out of the free list.
		f.pins--
		bp.drop(f)
		f.cond.Fire()
		return nil, err
	}
	return f, nil
}

// Unpin releases one pin; dirty marks the frame modified. Dirtied pages are
// invalidated in the remote cache (its copies are stale).
func (bp *Pool) Unpin(f *Frame, dirty bool) {
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned frame %v", f.ID))
	}
	f.pins--
	if dirty {
		f.dirty = true
		if f.recLSN == 0 {
			f.recLSN = f.Data.LSN()
		}
		if bp.remote != nil {
			bp.remote.Invalidate(f.ID)
		}
	}
}

// Discard drops a frame without flushing, regardless of dirtiness. Used when
// the underlying page is being freed.
func (bp *Pool) Discard(id storage.PageID) {
	if f, ok := bp.frames[id]; ok {
		if f.pins > 0 {
			panic(fmt.Sprintf("buffer: discard of pinned frame %v", id))
		}
		bp.drop(f)
		f.cond.Fire()
	}
	if bp.remote != nil {
		bp.remote.Invalidate(id)
	}
}

// makeRoom evicts frames until the pool is within capacity.
func (bp *Pool) makeRoom(p *sim.Proc) error {
	for len(bp.frames) > bp.capacity {
		victim := bp.pickVictim()
		if victim == nil {
			return fmt.Errorf("buffer: pool exhausted (%d frames, all pinned)", len(bp.frames))
		}
		if err := bp.evict(p, victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictim runs the clock algorithm over unpinned idle frames.
func (bp *Pool) pickVictim() *Frame {
	bp.compactClock()
	n := len(bp.clock)
	for sweep := 0; sweep < 2*n; sweep++ {
		if n == 0 {
			return nil
		}
		f := bp.clock[bp.hand%n]
		bp.hand++
		if f == nil || f.pins > 0 || f.state != frameIdle {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f
	}
	return nil
}

// compactClock squeezes the holes left by dropped frames out of the ring
// once they outnumber the live entries.
func (bp *Pool) compactClock() {
	if bp.holes <= len(bp.clock)/2 || bp.holes == 0 {
		return
	}
	live := bp.clock[:0]
	for _, f := range bp.clock {
		if f != nil {
			f.clockPos = len(live)
			live = append(live, f)
		}
	}
	bp.clock = live
	bp.holes = 0
	bp.hand = 0
}

// evict flushes f if dirty (WAL rule first) and removes it from the pool.
// If a remote cache is attached, the page bytes are offloaded there so a
// later miss can be served over the network instead of from disk.
func (bp *Pool) evict(p *sim.Proc, f *Frame) error {
	bp.stats.Evictions++
	if f.dirty {
		f.state = frameFlushing
		if bp.walFlush != nil {
			bp.walFlush(p, f.Data.LSN())
		}
		if err := bp.backend.WritePage(p, f.ID, f.Data); err != nil {
			f.state = frameIdle
			f.cond.Fire()
			return err
		}
		bp.stats.Flushes++
		f.dirty = false
		f.recLSN = 0
		f.state = frameIdle
	}
	if bp.remote != nil {
		bp.remote.Store(f.ID, f.Data)
	}
	bp.drop(f)
	f.cond.Fire()
	return nil
}

// drop removes f from the frame map and clock ring and recycles it. The
// frame's Signal stays valid, so latch waiters woken by a subsequent Fire
// simply re-check the frame map. A frame that still carries pins (a
// concurrent process pinned it before this drop, e.g. during PinNew's
// makeRoom) is unlinked but NOT recycled: the holder's later Unpin on the
// dead frame is harmless, whereas reusing the frame would corrupt another
// page's pin count.
func (bp *Pool) drop(f *Frame) {
	f.dead = true
	delete(bp.frames, f.ID)
	if f.clockPos >= 0 {
		bp.clock[f.clockPos] = nil
		bp.holes++
		f.clockPos = -1
	}
	if f.pins == 0 {
		f.nextFree = bp.free
		bp.free = f
	}
}

// FlushSegment writes back every dirty frame of seg and drops all of the
// segment's frames from the pool. Called before a segment is shipped so the
// durable bytes are complete ("flushed to disk", Sect. 4.3 Logging).
type flushTarget struct {
	f   *Frame
	gen uint64
}

// sortFlushTargets orders write-backs by page ID: each flush performs
// simulated disk I/O, so the map-iteration order the targets were collected
// in would otherwise leak into the virtual clock.
func sortFlushTargets(ts []flushTarget) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i].f.ID, ts[j].f.ID
		if a.Seg != b.Seg {
			return a.Seg < b.Seg
		}
		return a.Page < b.Page
	})
}

func (bp *Pool) FlushSegment(p *sim.Proc, seg storage.SegID) error {
	var targets []flushTarget
	for id, f := range bp.frames {
		if id.Seg == seg {
			targets = append(targets, flushTarget{f, f.gen})
		}
	}
	sortFlushTargets(targets) // deterministic write-back order
	for _, t := range targets {
		f := t.f
		if f.dead || f.gen != t.gen {
			continue // evicted (and possibly recycled) while we worked
		}
		for f.state != frameIdle {
			f.cond.Wait(p)
			if f.dead || f.gen != t.gen {
				break
			}
		}
		if f.dead || f.gen != t.gen {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("buffer: FlushSegment %d: page %v still pinned", seg, f.ID)
		}
		if err := bp.evict(p, f); err != nil {
			return err
		}
	}
	return nil
}

// FlushAll writes back every dirty unpinned frame (checkpoint helper).
func (bp *Pool) FlushAll(p *sim.Proc) error {
	var targets []flushTarget
	for _, f := range bp.frames {
		if f.dirty {
			targets = append(targets, flushTarget{f, f.gen})
		}
	}
	sortFlushTargets(targets) // deterministic write-back order
	for _, t := range targets {
		f := t.f
		if f.dead || f.gen != t.gen || !f.dirty || f.state != frameIdle || f.pins > 0 {
			continue
		}
		f.state = frameFlushing
		if bp.walFlush != nil {
			bp.walFlush(p, f.Data.LSN())
		}
		if err := bp.backend.WritePage(p, f.ID, f.Data); err != nil {
			return err
		}
		bp.stats.Flushes++
		f.dirty = false
		f.recLSN = 0
		f.state = frameIdle
		f.cond.Fire()
	}
	return nil
}

// FlushDirtyBatch is the fuzzy checkpointer's flush walk: it advances a
// persistent cursor around the clock ring — independent of the eviction
// hand — writing back up to max dirty, unpinned, idle frames in place
// (frames stay resident; only their dirt is shed, under the WAL rule).
// done reports that the cursor completed a full lap of the ring, i.e.
// every frame present when the lap started has been visited once; the
// checkpointer sleeps between batches so foreground traffic runs ahead of
// the walk, and stops at the lap boundary rather than chasing pages the
// workload re-dirties behind it.
func (bp *Pool) FlushDirtyBatch(p *sim.Proc, max int) (flushed int, done bool, err error) {
	bp.compactClock()
	if bp.ckptSteps <= 0 || bp.ckptSteps > len(bp.clock) {
		bp.ckptSteps = len(bp.clock) // start a new lap over the current ring
	}
	for bp.ckptSteps > 0 {
		if len(bp.clock) == 0 {
			bp.ckptSteps = 0
			break
		}
		if flushed >= max {
			return flushed, false, nil
		}
		f := bp.clock[bp.ckptHand%len(bp.clock)]
		bp.ckptHand++
		bp.ckptSteps--
		if f == nil || !f.dirty || f.pins > 0 || f.state != frameIdle {
			continue
		}
		f.state = frameFlushing
		if bp.walFlush != nil {
			bp.walFlush(p, f.Data.LSN())
		}
		werr := bp.backend.WritePage(p, f.ID, f.Data)
		f.state = frameIdle
		f.cond.Fire()
		if werr != nil {
			return flushed, false, werr
		}
		bp.stats.Flushes++
		f.dirty = false
		f.recLSN = 0
		flushed++
	}
	return flushed, true, nil
}

// DirtyRecLSNs returns, per segment, the minimum nonzero recLSN over the
// still-dirty frames: the redo low-water mark contribution of each
// segment's unflushed pages. A pure memory scan — no simulated time is
// charged, and the map-order iteration is safe because min is
// order-independent.
func (bp *Pool) DirtyRecLSNs() map[storage.SegID]uint64 {
	var mins map[storage.SegID]uint64
	for _, f := range bp.frames {
		if !f.dirty || f.recLSN == 0 {
			continue
		}
		if mins == nil {
			mins = make(map[storage.SegID]uint64)
		}
		if cur, ok := mins[f.ID.Seg]; !ok || f.recLSN < cur {
			mins[f.ID.Seg] = f.recLSN
		}
	}
	return mins
}

// DropSegment discards all frames of seg without flushing (used after a
// segment's ownership moved away and old readers drained).
func (bp *Pool) DropSegment(seg storage.SegID) {
	var targets []*Frame
	for id, f := range bp.frames {
		if id.Seg == seg && f.pins == 0 && f.state == frameIdle {
			targets = append(targets, f)
		}
	}
	for _, f := range targets {
		bp.drop(f)
	}
}

// Package metrics provides the measurement plumbing for the experiment
// harness: time-binned series (the x-axis of Figs. 6 and 8), latency
// accumulators, and throughput counters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates (time, value) samples into fixed-width bins relative
// to an origin, averaging samples within a bin. The paper's timeline plots
// use 10-second bins from -180 s to +570 s around the rebalance start.
type Series struct {
	Origin   time.Duration
	BinWidth time.Duration
	sums     map[int]float64
	counts   map[int]int
}

// NewSeries creates a series with the given origin and bin width.
func NewSeries(origin, binWidth time.Duration) *Series {
	return &Series{
		Origin:   origin,
		BinWidth: binWidth,
		sums:     make(map[int]float64),
		counts:   make(map[int]int),
	}
}

// Add records a sample at absolute time at.
func (s *Series) Add(at time.Duration, v float64) {
	bin := int(math.Floor(float64(at-s.Origin) / float64(s.BinWidth)))
	s.sums[bin] += v
	s.counts[bin]++
}

// Bin holds one aggregated point.
type Bin struct {
	Start time.Duration // relative to origin
	Mean  float64
	Count int
	Sum   float64
}

// Bins returns aggregated bins in time order.
func (s *Series) Bins() []Bin {
	idx := make([]int, 0, len(s.sums))
	for b := range s.sums {
		idx = append(idx, b)
	}
	sort.Ints(idx)
	out := make([]Bin, 0, len(idx))
	for _, b := range idx {
		n := s.counts[b]
		out = append(out, Bin{
			Start: time.Duration(b) * s.BinWidth,
			Mean:  s.sums[b] / float64(n),
			Count: n,
			Sum:   s.sums[b],
		})
	}
	return out
}

// RatePerSecond returns bins whose value is Sum scaled to events/second
// (for throughput series where Add is called with weight 1 per event).
func (s *Series) RatePerSecond() []Bin {
	bins := s.Bins()
	for i := range bins {
		bins[i].Mean = bins[i].Sum / s.BinWidth.Seconds()
	}
	return bins
}

// Latencies accumulates durations and reports summary statistics.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// Add records one latency sample.
func (l *Latencies) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latencies) Count() int { return len(l.samples) }

// Mean returns the average latency.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	i := int(math.Ceil(p/100*float64(len(l.samples)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(l.samples) {
		i = len(l.samples) - 1
	}
	return l.samples[i]
}

// FormatBins renders bins as an aligned two-column table for harness output.
func FormatBins(bins []Bin, label string) string {
	out := fmt.Sprintf("%12s  %12s\n", "t(s)", label)
	for _, b := range bins {
		out += fmt.Sprintf("%12.0f  %12.2f\n", b.Start.Seconds(), b.Mean)
	}
	return out
}

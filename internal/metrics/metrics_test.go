package metrics

import (
	"testing"
	"time"
)

func TestSeriesBinsAverageAndOrder(t *testing.T) {
	s := NewSeries(10*time.Second, 5*time.Second)
	s.Add(11*time.Second, 2) // bin 0
	s.Add(14*time.Second, 4) // bin 0
	s.Add(4*time.Second, 7)  // bin -2
	s.Add(21*time.Second, 9) // bin 2
	bins := s.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	if bins[0].Start != -10*time.Second || bins[0].Mean != 7 {
		t.Fatalf("bin0 = %+v", bins[0])
	}
	if bins[1].Start != 0 || bins[1].Mean != 3 || bins[1].Count != 2 {
		t.Fatalf("bin1 = %+v", bins[1])
	}
	if bins[2].Start != 10*time.Second || bins[2].Mean != 9 {
		t.Fatalf("bin2 = %+v", bins[2])
	}
}

func TestSeriesRatePerSecond(t *testing.T) {
	s := NewSeries(0, 10*time.Second)
	for i := 0; i < 50; i++ {
		s.Add(time.Duration(i)*100*time.Millisecond, 1) // 50 events in 5 s
	}
	bins := s.RatePerSecond()
	if len(bins) != 1 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Mean != 5 { // 50 events / 10 s bin
		t.Fatalf("rate = %v, want 5/s", bins[0].Mean)
	}
}

func TestLatenciesStats(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if m := l.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean = %v", m)
	}
	if p := l.Percentile(50); p != 50*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := l.Percentile(99); p != 99*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	if p := l.Percentile(100); p != 100*time.Millisecond {
		t.Fatalf("p100 = %v", p)
	}
}

func TestEmptyLatencies(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Fatal("empty latencies should report zeros")
	}
}

func TestFormatBins(t *testing.T) {
	s := NewSeries(0, time.Second)
	s.Add(500*time.Millisecond, 3)
	out := FormatBins(s.Bins(), "qps")
	if out == "" {
		t.Fatal("empty format output")
	}
}

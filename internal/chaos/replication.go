package chaos

import (
	"fmt"
	"time"

	"wattdb/internal/cluster"
	"wattdb/internal/sim"
)

// Replication background daemons and end-of-run oracles shared by the KV and
// TPC-C harnesses. Both harnesses run the cluster with DataReplicas=2: every
// node's acked history streams to two followers, a destroyed disk rebuilds
// from them, and a background scrubber repairs bit-rotted acked frames.

const (
	shipperInterval  = 20 * time.Millisecond
	scrubberInterval = 1200 * time.Millisecond
)

// spawnReplicationDaemons starts the background shipper (unforced frames ride
// followers' group commits) and the scrubber (CRC-rescan acked history,
// repair from a healthy copy). Both exit once *stop flips, so the end-of-run
// drain terminates.
func spawnReplicationDaemons(env *sim.Env, c *cluster.Cluster, stop *bool) {
	if !c.DataReplicated() {
		return
	}
	env.Spawn("chaos-shipper", func(p *sim.Proc) {
		for !*stop {
			p.Sleep(shipperInterval)
			c.DrainShipQueues(p)
		}
	})
	env.Spawn("chaos-scrubber", func(p *sim.Proc) {
		for !*stop {
			p.Sleep(scrubberInterval)
			c.ScrubPass(p)
		}
	})
}

// finalReplicationSweep runs the end-of-run replication oracles in their own
// process (spawn, then env.Run to completion): after all nodes are back up,
// one delivery pass plus one scrub pass must leave every log fully intact —
// no undecodable acked frame survives (rot not repaired would be a silent
// durability loss), no node is still marked disk-lost, and no log still
// reports lost durable history.
func finalReplicationSweep(env *sim.Env, c *cluster.Cluster, violate func(string)) {
	if !c.DataReplicated() {
		return
	}
	env.Spawn("chaos-replication-sweep", func(p *sim.Proc) {
		c.DrainShipQueues(p)
		c.ScrubPass(p)
		for _, n := range c.Nodes {
			if n.Down() {
				violate(fmt.Sprintf("replication sweep: node %d still down", n.ID))
				continue
			}
			if n.DiskLost() {
				violate(fmt.Sprintf("replication sweep: node %d still marked disk-lost", n.ID))
			}
			if n.Log.LostDurable() {
				violate(fmt.Sprintf("replication sweep: node %d log still reports lost durable history", n.ID))
			}
			if bad := n.Log.CheckFlushed(); len(bad) > 0 {
				violate(fmt.Sprintf("replication sweep: node %d has %d unrepaired acked frames (first LSN %d)",
					n.ID, len(bad), bad[0]))
			}
		}
	})
}

// Package chaos is WattDB's deterministic fault-injection harness. It runs
// a randomized key-value workload against a simulated cluster while a
// seeded fault plan power-fails nodes (including mid-migration, for each of
// the three repartitioning protocols), stalls disks, and spikes network
// latency — then checks the invariants the paper's energy-proportional
// operation depends on:
//
//   - durability: every acknowledged commit is readable after restart;
//   - atomicity: no write of an unacknowledged transaction is ever visible;
//   - snapshot isolation: every read and range scan matches the committed
//     version history at the reader's snapshot;
//   - partition-table consistency: after an interrupted migration no key is
//     unreachable or doubly owned, and the range table stays contiguous;
//   - power accounting: the meter never goes negative, energy is monotone,
//     and standby nodes draw standby watts.
//
// Everything — the workload, the fault schedule, and the engine — runs on
// the sim package's deterministic virtual clock, so one seed produces one
// fault schedule and one final state hash: any failure is reproducible with
// `go run ./cmd/wattdb-chaos -seed N -scheme S` (or `make chaos`).
package chaos

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/hw"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Shorthands for states used across the harness files.
const (
	hwActive   = hw.PowerActive
	hwOff      = hw.PowerOff
	ccSnapshot = cc.SnapshotIsolation
)

// Config parameterizes one chaos run.
type Config struct {
	Seed   int64
	Scheme table.Scheme
	// Nodes is the cluster size; the key space is split across nodes 0 and
	// 1, later nodes are migration targets. Minimum 3.
	Nodes int
	// Keys is the key-space size [0, Keys).
	Keys int
	// Workers is the number of concurrent workload processes.
	Workers int
	// Duration is the simulated workload window; faults land inside it.
	Duration time.Duration
	// Faults is the number of random fault events drawn on top of the
	// always-present crash-during-migration sequence.
	Faults int
	// CoordFaults is the number of random coordinator power-fails drawn on
	// top of the always-present mid-migration coordinator crash. The master
	// runs replicated (two follower replicas) and every run must fail over
	// and keep all invariants.
	CoordFaults int
	// DiskFaults is the number of guaranteed full-disk-loss + acked-history
	// bit-rot pairs in the plan. Every run ships acked history to follower
	// replicas; each disk-loss victim must rebuild all hosted partitions
	// from its replica set, and the scrubber must repair every rot hit.
	DiskFaults int
	// CkptFaults is the number of guaranteed mid-checkpoint power failures
	// in the plan. Every run takes periodic fuzzy checkpoints on all nodes;
	// each of these crashes lands partway through one (including between the
	// begin and end records) and the restart must fall back to the previous
	// complete checkpoint pair.
	CkptFaults int
	// HTAP is the number of concurrent analytics readers running
	// scan-aggregate snapshot queries alongside the OLTP workload while the
	// fault plan executes — the HTAP interference path. Even-numbered
	// readers set the PreferFollower offloading hint so replica snapshot
	// reads are exercised under faults. KV readers validate every observed
	// row against the oracle at their snapshot; TPC-C readers check
	// snapshot-internal warehouse invariants. -1 disables.
	HTAP int
}

func (c Config) withDefaults() Config {
	if c.Nodes < 3 {
		c.Nodes = 4
	}
	if c.Keys <= 0 {
		c.Keys = 400
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 45 * time.Second
	}
	if c.Faults < 0 {
		c.Faults = 0
	} else if c.Faults == 0 {
		c.Faults = 4
	}
	if c.CoordFaults < 0 {
		c.CoordFaults = 0
	} else if c.CoordFaults == 0 {
		c.CoordFaults = 1
	}
	if c.DiskFaults < 0 {
		c.DiskFaults = 0
	} else if c.DiskFaults == 0 {
		c.DiskFaults = 1
	}
	if c.CkptFaults < 0 {
		c.CkptFaults = 0
	} else if c.CkptFaults == 0 {
		c.CkptFaults = 1
	}
	if c.HTAP < 0 {
		c.HTAP = 0
	} else if c.HTAP == 0 {
		c.HTAP = 1
	}
	return c
}

// Report is the outcome of one chaos run.
type Report struct {
	Seed    int64
	Scheme  table.Scheme
	SimTime time.Duration

	Commits   int
	Aborts    int
	FailedOps int // operations rejected by faults (down nodes, conflicts)
	Reads     int
	Scans     int
	Crashes   int
	Restarts  int
	// TornCrashes/BitFlips count the crashes that additionally damaged the
	// log medium (torn final frame / bit-rotted boundary frame); both are
	// included in Crashes.
	TornCrashes int
	BitFlips    int
	// LeaderCrashes counts crashes that hit the acting coordinator;
	// Failovers counts the leader elections the master went through.
	LeaderCrashes int
	Failovers     int
	// Replicated-history counters: DiskLosses counts full log-medium
	// destructions, Rebuilds the restarts that reconstructed a node's
	// history from its replica set, RotInjected the acked-history bit flips
	// landed, ScrubRepairs the frames the scrubber patched back from a
	// healthy copy, FollowerReads the snapshot reads served by replicas.
	DiskLosses    int
	Rebuilds      int
	RotInjected   int
	ScrubRepairs  int
	FollowerReads int
	// Fuzzy-checkpoint / recovery-time counters: Checkpoints is the number
	// of complete fuzzy checkpoints taken across all nodes, CkptCrashes the
	// injected mid-checkpoint power failures, BoundedRestarts the restarts
	// whose replay was bounded by a checkpoint redo point, ReplayBytes the
	// framed log bytes replayed across all restarts, RecoveryTime the summed
	// simulated power-on-to-ready time.
	Checkpoints     int
	CkptCrashes     int
	BoundedRestarts int
	ReplayBytes     int64
	RecoveryTime    time.Duration
	// HTAP analytics counters: AnalyticsQueries is the number of completed
	// scan-aggregate snapshot queries the online readers ran, AnalyticsRows
	// the rows they aggregated.
	AnalyticsQueries int
	AnalyticsRows    int64

	Faults     []string // executed fault schedule, in order
	Violations []string // invariant violations (empty = PASS)

	// StateHash digests the fault schedule, the final table contents, and
	// the commit counts: identical seeds must produce identical hashes.
	StateHash string
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

const maxViolations = 25

type harness struct {
	cfg    Config
	env    *sim.Env
	c      *cluster.Cluster
	master *cluster.Master
	schema *table.Schema
	oracle *oracle

	stop   bool
	stopAt time.Duration

	reads []readObs
	scans []scanObs

	rep *Report
}

func kvKey(k int64) []byte { return keycodec.Int64Key(k) }

func (h *harness) violate(msg string) {
	if len(h.rep.Violations) < maxViolations {
		h.rep.Violations = append(h.rep.Violations, msg)
	}
}

func (h *harness) logFault(format string, args ...interface{}) {
	h.rep.Faults = append(h.rep.Faults,
		fmt.Sprintf("t=%7.3fs  ", h.env.Now().Seconds())+fmt.Sprintf(format, args...))
}

// aliveNode picks a powered-on node for a transaction's home, or nil.
func (h *harness) aliveNode(rng *rand.Rand) *cluster.DataNode {
	var alive []*cluster.DataNode
	for _, n := range h.c.Nodes {
		if !n.Down() && n.HW.State() == hwActive {
			alive = append(alive, n)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	return alive[rng.Intn(len(alive))]
}

// Run executes one chaos run and returns its report. The error return is
// reserved for harness-level failures (a simulation process panicking);
// invariant breaks land in Report.Violations.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	env := sim.NewEnv(cfg.Seed)
	defer env.Close()

	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = cfg.Nodes
	ccfg.MasterReplicas = 2
	ccfg.DataReplicas = 2
	c := cluster.New(env, ccfg)
	for _, n := range c.Nodes[1:] {
		n.HW.ForceActive()
	}

	h := &harness{
		cfg:    cfg,
		env:    env,
		c:      c,
		master: c.Master,
		oracle: newOracle(),
		stopAt: cfg.Duration,
		rep:    &Report{Seed: cfg.Seed, Scheme: cfg.Scheme},
	}
	h.schema = &table.Schema{
		ID: 1, Name: "kv", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColString}},
	}
	mid := kvKey(int64(cfg.Keys / 2))
	if _, err := c.Master.CreateTable(h.schema, cfg.Scheme, []cluster.RangeSpec{
		{Low: nil, High: mid, Owner: c.Nodes[0]},
		{Low: mid, High: nil, Owner: c.Nodes[1]},
	}); err != nil {
		return nil, err
	}
	var loadErr error
	env.Spawn("chaos-load", func(p *sim.Proc) {
		i := 0
		loadErr = c.Master.BulkLoad(p, "kv", func() ([]byte, []byte, bool) {
			if i >= cfg.Keys {
				return nil, nil, false
			}
			k := int64(i)
			val := fmt.Sprintf("init-%d", k)
			row := table.Row{k, val}
			key, _ := h.schema.Key(row)
			payload, _ := h.schema.EncodeRow(row)
			h.oracle.load(k, val)
			i++
			return key, payload, true
		})
	})
	if err := env.Run(); err != nil {
		return h.rep, err
	}
	if loadErr != nil {
		return h.rep, loadErr
	}
	c.SetupReplicationDrain()

	// Workload, analytics readers, fault plan, power sampler, and
	// replication daemons.
	for w := 0; w < cfg.Workers; w++ {
		h.spawnWorker(w)
	}
	for q := 0; q < cfg.HTAP; q++ {
		h.spawnAnalytics(q)
	}
	h.spawnPowerSampler()
	spawnReplicationDaemons(env, c, &h.stop)
	spawnCheckpointers(env, c, &h.stop)
	h.runner().spawnExecutor(buildPlan(cfg))

	if err := env.RunUntil(cfg.Duration); err != nil {
		return h.rep, err
	}
	h.stop = true
	// Drain: workers exit, in-flight migrations finish or abort, pending
	// restarts complete, ghost/old-pointer cleanups run out.
	if err := env.Run(); err != nil {
		return h.rep, err
	}
	for _, n := range c.Nodes {
		if n.Down() {
			// A late crash left the node down past the drain: bring it
			// back for the final verification.
			node := n
			env.Spawn("chaos-final-restart", func(p *sim.Proc) {
				if _, _, err := c.RestartNode(p, node); err != nil {
					h.violate(fmt.Sprintf("final restart of node %d: %v", node.ID, err))
					return
				}
				h.rep.Restarts++
				noteRecovery(h.rep, h.violate, node)
			})
		}
	}
	if err := env.Run(); err != nil {
		return h.rep, err
	}
	finalReplicationSweep(env, c, h.violate)
	if err := env.Run(); err != nil {
		return h.rep, err
	}
	h.rep.Rebuilds, h.rep.ScrubRepairs, h.rep.FollowerReads, h.rep.DiskLosses = c.ReplicationStats()
	for _, n := range c.Nodes {
		h.rep.Checkpoints += n.Checkpoints
	}

	// Coordinator-failover oracles: after the drain the master must be
	// available under some leader, and every recorded commit decision must
	// have been acknowledged by all its participants (the decision map
	// drains to empty — nothing leaks across failovers).
	if c.Master.Fenced() {
		h.violate("coordinator still fenced after drain (no leader elected)")
	}
	if n := c.Master.InDoubtDecisionCount(); n != 0 {
		h.violate(fmt.Sprintf("decision map leak: %d commit decisions never fully acknowledged: %s",
			n, strings.Join(c.Master.OutstandingDecisions(), "; ")))
	}
	h.rep.Failovers = c.Master.Failovers()

	// Final invariant sweep.
	finalState := h.finalCheck()
	validateReads(h.oracle, h.reads, h.scans, h.violate)
	h.checkPartitionTable()
	h.rep.SimTime = env.Now()
	h.rep.StateHash = h.stateHash(finalState)
	return h.rep, nil
}

// spawnWorker starts one workload process: randomized single- and
// multi-key read, write, delete, and scan transactions with unique values,
// feeding the oracle on every acknowledged commit.
func (h *harness) spawnWorker(w int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed*1_000_003 + int64(w)))
	seq := 0
	h.env.Spawn(fmt.Sprintf("chaos-worker-%d", w), func(p *sim.Proc) {
		p.Sleep(time.Duration(w) * 3 * time.Millisecond) // desynchronize
		for !h.stop && p.Now() < h.stopAt {
			home := h.aliveNode(rng)
			if home == nil {
				p.Sleep(50 * time.Millisecond)
				continue
			}
			h.runTxn(p, w, rng, &seq, home)
			p.Sleep(time.Duration(2+rng.Intn(6)) * time.Millisecond)
		}
	})
}

// runTxn executes one randomized transaction.
func (h *harness) runTxn(p *sim.Proc, w int, rng *rand.Rand, seq *int, home *cluster.DataNode) {
	s := h.master.Begin(p, cc.SnapshotIsolation, home)
	kind := rng.Intn(10)
	switch {
	case kind < 5: // write transaction (puts, occasionally deletes)
		nOps := 1 + rng.Intn(3)
		var writes []kvWrite
		for i := 0; i < nOps; i++ {
			k := int64(rng.Intn(h.cfg.Keys))
			if rng.Intn(8) == 0 {
				if err := s.Delete(p, "kv", kvKey(k)); err != nil {
					h.failOp(p, s)
					return
				}
				writes = append(writes, kvWrite{key: k, deleted: true})
				continue
			}
			*seq++
			val := fmt.Sprintf("w%d.%d", w, *seq)
			payload, _ := h.schema.EncodeRow(table.Row{k, val})
			if err := s.Put(p, "kv", kvKey(k), payload); err != nil {
				h.failOp(p, s)
				return
			}
			writes = append(writes, kvWrite{key: k, val: val})
		}
		if rng.Intn(10) == 0 {
			// Deliberate abort: none of these writes may ever surface.
			s.Abort(p)
			h.rep.Aborts++
			return
		}
		if err := s.Commit(p); err != nil {
			s.Abort(p)
			h.rep.Aborts++
			return
		}
		// Acknowledged: record at the engine's commit timestamp before any
		// further blocking call.
		h.oracle.commit(s.Txn.Commit, writes)
		h.rep.Commits++
	case kind < 9: // read transaction
		nOps := 2 + rng.Intn(3)
		for i := 0; i < nOps; i++ {
			k := int64(rng.Intn(h.cfg.Keys))
			v, ok, err := s.Get(p, "kv", kvKey(k))
			if err != nil {
				h.failOp(p, s)
				return
			}
			obs := readObs{at: p.Now(), snap: s.Txn.Begin, key: k, ok: ok}
			if ok {
				row, derr := h.schema.DecodeRow(v)
				if derr != nil {
					h.violate(fmt.Sprintf("read@%v key %d: undecodable payload: %v", p.Now(), k, derr))
					h.failOp(p, s)
					return
				}
				obs.val = row[1].(string)
			}
			h.reads = append(h.reads, obs)
			h.rep.Reads++
		}
		s.Abort(p)
	default: // range scan
		span := int64(10 + rng.Intn(30))
		lo := int64(rng.Intn(h.cfg.Keys))
		hi := lo + span
		if hi > int64(h.cfg.Keys) {
			hi = int64(h.cfg.Keys)
		}
		obs := scanObs{at: p.Now(), snap: s.Txn.Begin, lo: lo, hi: hi}
		err := s.Scan(p, "kv", kvKey(lo), kvKey(hi), func(kb, v []byte) bool {
			k, _, _ := keycodec.DecodeInt64(kb)
			row, derr := h.schema.DecodeRow(v)
			if derr != nil {
				h.violate(fmt.Sprintf("scan@%v key %d: undecodable payload: %v", p.Now(), k, derr))
				return false
			}
			obs.keys = append(obs.keys, k)
			obs.vals = append(obs.vals, row[1].(string))
			return true
		})
		if err != nil {
			h.failOp(p, s)
			return
		}
		h.scans = append(h.scans, obs)
		h.rep.Scans++
		s.Abort(p)
	}
}

// spawnAnalytics starts one HTAP reader: a loop of full-table
// scan-aggregate snapshot queries running concurrently with the OLTP
// workload and the fault plan. Even-numbered readers set the
// PreferFollower offloading hint, so replica snapshot reads are exercised
// while crashes, disk losses, and migrations land. Every observed row is
// recorded as a scan observation and validated against the oracle at the
// reader's snapshot, exactly like the workload's range scans — an
// analytics query that surfaces a torn or stale row is an invariant break,
// wherever it was served from.
func (h *harness) spawnAnalytics(q int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed*2_000_003 + int64(q)))
	h.env.Spawn(fmt.Sprintf("chaos-htap-%d", q), func(p *sim.Proc) {
		p.Sleep(time.Duration(7+5*q) * time.Millisecond) // desynchronize
		for !h.stop && p.Now() < h.stopAt {
			home := h.aliveNode(rng)
			if home == nil {
				p.Sleep(50 * time.Millisecond)
				continue
			}
			s := h.master.Begin(p, cc.SnapshotIsolation, home)
			s.PreferFollower = q%2 == 0
			obs := scanObs{at: p.Now(), snap: s.Txn.Begin, lo: 0, hi: int64(h.cfg.Keys)}
			err := s.Scan(p, "kv", nil, nil, func(kb, v []byte) bool {
				k, _, _ := keycodec.DecodeInt64(kb)
				row, derr := h.schema.DecodeRow(v)
				if derr != nil {
					h.violate(fmt.Sprintf("htap@%v key %d: undecodable payload: %v", p.Now(), k, derr))
					return false
				}
				obs.keys = append(obs.keys, k)
				obs.vals = append(obs.vals, row[1].(string))
				return true
			})
			s.Abort(p)
			if err != nil {
				h.rep.FailedOps++
			} else {
				h.scans = append(h.scans, obs)
				h.rep.AnalyticsQueries++
				h.rep.AnalyticsRows += int64(len(obs.keys))
			}
			p.Sleep(time.Duration(40+rng.Intn(60)) * time.Millisecond)
		}
	})
}

// failOp aborts a transaction that hit a fault (down node, conflict,
// timeout) and counts it; partial observations of the transaction are kept
// only for reads that succeeded, which remain valid snapshot reads.
func (h *harness) failOp(p *sim.Proc, s *cluster.Session) {
	s.Abort(p)
	h.rep.FailedOps++
}

// spawnPowerSampler runs the power-accounting invariant continuously:
// samples are non-negative (at least the always-on switch), energy is
// monotone, and a standby node draws exactly the calibrated standby power.
func (h *harness) spawnPowerSampler() {
	h.env.Spawn("chaos-power", func(p *sim.Proc) {
		lastEnergy := h.c.Meter.EnergyJoules()
		for !h.stop {
			p.Sleep(500 * time.Millisecond)
			watts := h.c.Meter.Sample()
			if watts < h.c.Cal.PowerSwitch {
				h.violate(fmt.Sprintf("power@%v: %.2f W below the always-on switch draw %.2f W",
					p.Now(), watts, h.c.Cal.PowerSwitch))
			}
			if e := h.c.Meter.EnergyJoules(); e < lastEnergy {
				h.violate(fmt.Sprintf("power@%v: energy meter went backwards (%.1f J -> %.1f J)",
					p.Now(), lastEnergy, e))
			} else {
				lastEnergy = e
			}
			for _, n := range h.c.Nodes {
				if n.HW.State() == hwOff && n.HW.Power(0) != h.c.Cal.PowerStandby {
					h.violate(fmt.Sprintf("power@%v: standby node %d draws %.2f W, want %.2f W",
						p.Now(), n.ID, n.HW.Power(0), h.c.Cal.PowerStandby))
				}
			}
		}
	})
}

// finalCheck verifies the cluster's end state against the oracle: a full
// scan must return exactly the oracle's live keys (each once, with its last
// acknowledged value), and every live key must also be point-readable. It
// returns the canonical final-state dump used for the state hash.
func (h *harness) finalCheck() string {
	var dump strings.Builder
	h.env.Spawn("chaos-final-check", func(p *sim.Proc) {
		home := h.c.Nodes[0]
		if home.Down() {
			h.violate("final check: node 0 still down")
			return
		}
		live := h.oracle.liveKeys()
		s := h.master.Begin(p, cc.SnapshotIsolation, home)
		got := make(map[int64]string, len(live))
		var order []int64
		err := s.Scan(p, "kv", nil, nil, func(kb, v []byte) bool {
			k, _, _ := keycodec.DecodeInt64(kb)
			row, derr := h.schema.DecodeRow(v)
			if derr != nil {
				h.violate(fmt.Sprintf("final scan: key %d undecodable: %v", k, derr))
				return false
			}
			if _, dup := got[k]; dup {
				h.violate(fmt.Sprintf("final scan: key %d returned twice (doubly owned)", k))
			}
			got[k] = row[1].(string)
			order = append(order, k)
			return true
		})
		if err != nil {
			h.violate(fmt.Sprintf("final scan failed: %v", err))
		}
		// Durability: every acknowledged write present with its last value.
		for _, k := range live {
			want, _ := h.oracle.current(k)
			val, ok := got[k]
			if !ok {
				h.violate(fmt.Sprintf("durability: key %d (last value %q) lost", k, want))
				continue
			}
			if val != want {
				h.violate(fmt.Sprintf("durability: key %d = %q, oracle says %q", k, val, want))
			}
		}
		// Atomicity/resurrection: nothing beyond the oracle's live set.
		if len(got) != len(live) {
			for _, k := range order {
				if _, ok := h.oracle.current(k); !ok {
					h.violate(fmt.Sprintf("atomicity: key %d visible but never acknowledged live (value %q)", k, got[k]))
				}
			}
		}
		// Reachability via point routing (exercises candidatesFor, not the
		// scan path).
		for _, k := range live {
			v, ok, err := s.Get(p, "kv", kvKey(k))
			if err != nil || !ok {
				h.violate(fmt.Sprintf("reachability: key %d unreadable via Get: ok=%v err=%v", k, ok, err))
				continue
			}
			row, _ := h.schema.DecodeRow(v)
			if want, _ := h.oracle.current(k); row[1].(string) != want {
				h.violate(fmt.Sprintf("reachability: key %d Get = %q, oracle says %q", k, row[1], want))
			}
		}
		s.Abort(p)
		for _, k := range order {
			fmt.Fprintf(&dump, "%d=%s\n", k, got[k])
		}
	})
	if err := h.env.Run(); err != nil {
		h.violate(fmt.Sprintf("final check crashed: %v", err))
	}
	return dump.String()
}

// checkPartitionTable verifies the master's range table is sorted,
// contiguous, and covers the whole key space.
func (h *harness) checkPartitionTable() {
	tm, err := h.master.Table("kv")
	if err != nil {
		h.violate(err.Error())
		return
	}
	entries := tm.Entries()
	if len(entries) == 0 {
		h.violate("partition table empty")
		return
	}
	if entries[0].Low != nil {
		h.violate("partition table: first range does not start at -inf")
	}
	if entries[len(entries)-1].High != nil {
		h.violate("partition table: last range does not end at +inf")
	}
	for i := 1; i < len(entries); i++ {
		if string(entries[i-1].High) != string(entries[i].Low) {
			h.violate(fmt.Sprintf("partition table: gap/overlap between entry %d and %d", i-1, i))
		}
	}
	for i, e := range entries {
		if e.Part == nil || e.Owner == nil {
			h.violate(fmt.Sprintf("partition table: entry %d has nil partition/owner", i))
		}
	}
}

// stateHash digests the run: fault schedule, final contents, commit counts,
// and the virtual clock. Two runs of the same seed must agree byte for
// byte.
func (h *harness) stateHash(finalState string) string {
	d := sha256.New()
	for _, f := range h.rep.Faults {
		fmt.Fprintln(d, f)
	}
	fmt.Fprintf(d, "commits=%d aborts=%d failed=%d failovers=%d now=%d\n",
		h.rep.Commits, h.rep.Aborts, h.rep.FailedOps, h.rep.Failovers, h.env.Now())
	fmt.Fprintf(d, "rebuilds=%d scrubs=%d freads=%d disklosses=%d\n",
		h.rep.Rebuilds, h.rep.ScrubRepairs, h.rep.FollowerReads, h.rep.DiskLosses)
	fmt.Fprintf(d, "ckpts=%d ckptcrashes=%d bounded=%d replaybytes=%d rto=%d\n",
		h.rep.Checkpoints, h.rep.CkptCrashes, h.rep.BoundedRestarts, h.rep.ReplayBytes, h.rep.RecoveryTime)
	fmt.Fprintf(d, "htapq=%d htaprows=%d\n", h.rep.AnalyticsQueries, h.rep.AnalyticsRows)
	d.Write([]byte(finalState))
	return fmt.Sprintf("%x", d.Sum(nil))[:16]
}

// sortInt64s is a tiny helper for deterministic iteration.
func sortInt64s(ks []int64) { sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] }) }

package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"wattdb/internal/table"
)

// TestChaosTPCCSeedsPass runs a short TPC-C chaos scenario for each
// repartitioning scheme and requires every warehouse invariant to hold.
func TestChaosTPCCSeedsPass(t *testing.T) {
	for _, scheme := range []table.Scheme{table.Physical, table.Logical, table.Physiological} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			rep, err := RunTPCC(Config{Seed: 5, Scheme: scheme, Duration: 25 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			logReport(t, rep)
			if !rep.Passed() {
				t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
			}
			if rep.Commits == 0 {
				t.Fatal("no transactions committed under chaos")
			}
			if rep.Crashes == 0 || rep.Restarts == 0 {
				t.Fatalf("plan injected no crash/restart (crashes=%d restarts=%d)", rep.Crashes, rep.Restarts)
			}
		})
	}
}

// TestChaosTPCCDeterministic reruns one TPC-C seed and requires the
// identical fault schedule and final state hash.
func TestChaosTPCCDeterministic(t *testing.T) {
	cfg := Config{Seed: 8, Scheme: table.Physiological, Duration: 20 * time.Second}
	r1, err := RunTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.StateHash != r2.StateHash {
		t.Errorf("state hash differs: %s vs %s", r1.StateHash, r2.StateHash)
	}
	if fmt.Sprint(r1.Faults) != fmt.Sprint(r2.Faults) {
		t.Errorf("fault schedules differ:\nrun1: %v\nrun2: %v", r1.Faults, r2.Faults)
	}
	if r1.Commits != r2.Commits || r1.Aborts != r2.Aborts || r1.SimTime != r2.SimTime {
		t.Errorf("run outcome differs: (%d,%d,%v) vs (%d,%d,%v)",
			r1.Commits, r1.Aborts, r1.SimTime, r2.Commits, r2.Aborts, r2.SimTime)
	}
}

package chaos

import (
	"fmt"
	"sort"
	"time"

	"wattdb/internal/cc"
)

// version is one committed state of a key in the oracle's model.
type version struct {
	ts      cc.Timestamp
	val     string
	deleted bool
}

// kvWrite is one write of an acknowledged transaction.
type kvWrite struct {
	key     int64
	val     string
	deleted bool
}

// oracle is the harness's in-memory model of the database: the full
// committed version history of every key, keyed by the engine's own commit
// timestamps. It is maintained outside the engine (applied the instant a
// commit is acknowledged, before the acknowledging process can block), so
// any divergence between a read and the model is an engine bug, not a
// bookkeeping race.
type oracle struct {
	hist map[int64][]version // ascending commit timestamp
}

func newOracle() *oracle {
	return &oracle{hist: make(map[int64][]version)}
}

// load records the initial bulk-loaded value of a key (commit timestamp 1,
// matching table.EncodeLoadValue).
func (o *oracle) load(key int64, val string) {
	o.hist[key] = append(o.hist[key], version{ts: 1, val: val})
}

// commit applies an acknowledged transaction's writes at its engine-issued
// commit timestamp. Acknowledgments can arrive out of timestamp order (a
// distributed commit acquires its timestamp, then spends I/O installing on
// every participant before acking, while a later-stamped single-node commit
// acks immediately), so versions are inserted in timestamp order.
func (o *oracle) commit(ts cc.Timestamp, writes []kvWrite) {
	for _, w := range writes {
		hs := o.hist[w.key]
		i := len(hs)
		for i > 0 && hs[i-1].ts > ts {
			i--
		}
		hs = append(hs, version{})
		copy(hs[i+1:], hs[i:])
		hs[i] = version{ts: ts, val: w.val, deleted: w.deleted}
		o.hist[w.key] = hs
	}
}

// at returns the version of key visible to a snapshot-isolation reader with
// begin timestamp snap: the newest version with ts <= snap. ok reports
// whether such a version exists and is not a tombstone.
func (o *oracle) at(key int64, snap cc.Timestamp) (version, bool) {
	hs := o.hist[key]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].ts <= snap {
			return hs[i], !hs[i].deleted
		}
	}
	return version{}, false
}

// liveKeys returns the keys whose newest version is not a tombstone, in
// ascending order.
func (o *oracle) liveKeys() []int64 {
	out := make([]int64, 0, len(o.hist))
	for k, hs := range o.hist {
		if len(hs) > 0 && !hs[len(hs)-1].deleted {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// current returns the newest value of key (ok=false if deleted or absent).
func (o *oracle) current(key int64) (string, bool) {
	hs := o.hist[key]
	if len(hs) == 0 || hs[len(hs)-1].deleted {
		return "", false
	}
	return hs[len(hs)-1].val, true
}

// readObs is one point-read observation: what a transaction with snapshot
// snap saw for key. Observations are validated against the oracle at the
// end of the run, when the full commit history is known.
type readObs struct {
	at   time.Duration
	snap cc.Timestamp
	key  int64
	val  string
	ok   bool
}

// scanObs is one completed range-scan observation.
type scanObs struct {
	at     time.Duration
	snap   cc.Timestamp
	lo, hi int64 // [lo, hi)
	keys   []int64
	vals   []string
}

// tsOf locates the commit timestamp of an observed value in a key's
// history (0 if the value was never acknowledged — an atomicity breach).
func (o *oracle) tsOf(key int64, val string) cc.Timestamp {
	for _, v := range o.hist[key] {
		if v.val == val && !v.deleted {
			return v.ts
		}
	}
	return 0
}

// validateReads checks every recorded observation against the oracle and
// reports each divergence through violate.
func validateReads(o *oracle, reads []readObs, scans []scanObs, violate func(string)) {
	for _, r := range reads {
		want, ok := o.at(r.key, r.snap)
		if ok != r.ok {
			violate(fmt.Sprintf("read@%v key %d snap %d: visible=%v, oracle says %v",
				r.at, r.key, r.snap, r.ok, ok))
			continue
		}
		if ok && r.val != want.val {
			violate(fmt.Sprintf("read@%v key %d snap %d: saw %q (ts %d), oracle says %q (ts %d)",
				r.at, r.key, r.snap, r.val, o.tsOf(r.key, r.val), want.val, want.ts))
		}
	}
	for _, s := range scans {
		got := make(map[int64]string, len(s.keys))
		for i, k := range s.keys {
			if _, dup := got[k]; dup {
				violate(fmt.Sprintf("scan@%v [%d,%d) snap %d: key %d returned twice (doubly owned)",
					s.at, s.lo, s.hi, s.snap, k))
			}
			got[k] = s.vals[i]
		}
		for k := s.lo; k < s.hi; k++ {
			want, ok := o.at(k, s.snap)
			val, seen := got[k]
			if ok != seen {
				violate(fmt.Sprintf("scan@%v [%d,%d) snap %d: key %d present=%v, oracle says %v",
					s.at, s.lo, s.hi, s.snap, k, seen, ok))
				continue
			}
			if ok && val != want.val {
				violate(fmt.Sprintf("scan@%v [%d,%d) snap %d: key %d = %q (ts %d), oracle says %q (ts %d)",
					s.at, s.lo, s.hi, s.snap, k, val, o.tsOf(k, val), want.val, want.ts))
			}
		}
		// Iterate the recorded order, not the map: the violation list (and
		// its cap) must be identical across reruns of the same seed.
		for _, k := range s.keys {
			if k < s.lo || k >= s.hi {
				violate(fmt.Sprintf("scan@%v [%d,%d) snap %d: key %d outside requested range",
					s.at, s.lo, s.hi, s.snap, k))
			}
		}
	}
}

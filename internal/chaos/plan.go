package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"wattdb/internal/cluster"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
)

// faultKind enumerates injectable faults.
type faultKind int

const (
	faultCrash       faultKind = iota // power-fail a node, restart it later
	faultCrashTorn                    // power-fail leaving a torn final record on the log tail
	faultCrashFlip                    // power-fail leaving a bit-flipped frame at the flushed boundary
	faultDiskStall                    // extra per-request latency on a disk
	faultNetSpike                     // extra one-way latency on every link
	faultMigrate                      // rebalance a key range onto a target
	faultCrashCoord                   // power-fail whichever node is the acting coordinator
	faultDestroyDisk                  // power-fail a node AND destroy its log medium (rebuild from replicas)
	faultRotAcked                     // flip one bit inside a flushed frame of a live node's log
	faultCkptCrash                    // power-fail a node partway through a fuzzy checkpoint
)

// faultEvent is one scheduled fault.
type faultEvent struct {
	at       time.Duration
	kind     faultKind
	node     int           // crash/stall target
	disk     int           // stall: disk index on the node
	extra    time.Duration // stall/spike magnitude
	dur      time.Duration // stall/spike duration, crash down-time
	loK, hiK int64         // migrate: key range [loK, hiK)
	target   int           // migrate: destination node
	tear     int           // torn/flip crash: tail bytes surviving the interrupted write
	flip     int           // flip crash: bit flipped within the surviving tail bytes
}

// buildPlan derives the fault schedule from the seed alone — never from
// workload state — so the schedule is identical across reruns. Every plan
// contains a migration with a crash of the migration target landing shortly
// after it starts (the hardest window for each repartitioning protocol),
// plus cfg.Faults additional random events.
func buildPlan(cfg Config) []faultEvent {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed_c8a0_5eed_c8a0))
	window := cfg.Duration
	var plan []faultEvent

	// The guaranteed crash-mid-migration sequence: move the third quarter
	// of the key space to the first spare node, then power-fail that target
	// while the move is in flight.
	migAt := window/3 + time.Duration(rng.Int63n(int64(window/6)))
	target := 2 // first node without initial data
	plan = append(plan, faultEvent{
		at:     migAt,
		kind:   faultMigrate,
		loK:    int64(cfg.Keys / 2),
		hiK:    int64(3 * cfg.Keys / 4),
		target: target,
	})
	plan = append(plan, faultEvent{
		at:   migAt + 30*time.Millisecond + time.Duration(rng.Int63n(int64(120*time.Millisecond))),
		kind: faultCrash,
		node: target,
		dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
	})
	// Every plan also power-fails the coordinator while that migration is in
	// flight — the hardest failover window: the leader may die between
	// shipping a migration boundary (or a commit decision) and acting on it,
	// and a follower must take over with the partition table and in-doubt
	// decisions intact.
	plan = append(plan, faultEvent{
		at:   migAt + 40*time.Millisecond + time.Duration(rng.Int63n(int64(150*time.Millisecond))),
		kind: faultCrashCoord,
		dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
	})
	for i := 0; i < cfg.CoordFaults; i++ {
		plan = append(plan, faultEvent{
			at:   window/10 + time.Duration(rng.Int63n(int64(window*8/10))),
			kind: faultCrashCoord,
			dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
		})
	}
	// Every plan also damages the log medium once each way on a data node
	// (the nodes with steady log traffic): a power failure tearing the frame
	// the device was writing, and one leaving a bit-flipped frame at the
	// flushed boundary. Recovery must truncate both tails cleanly.
	plan = append(plan, tornCrashEvents(rng, window, 2)...)
	// And cfg.DiskFaults full-disk-loss + acked-history-rot pairs: the wiped
	// node must rebuild everything from its replica set, and the scrubber
	// must repair the flipped frame from a healthy copy.
	for i := 0; i < cfg.DiskFaults; i++ {
		plan = append(plan, diskFaultEvents(rng, window, cfg.Nodes)...)
	}
	// And cfg.CkptFaults mid-checkpoint power failures: with a checkpointer
	// running on every node, each crash lands at a random step of an
	// in-flight fuzzy checkpoint and the restart must fall back to the
	// previous complete begin/end pair.
	plan = append(plan, ckptCrashEvents(rng, window, cfg.Nodes, cfg.CkptFaults)...)

	for i := 0; i < cfg.Faults; i++ {
		at := window/10 + time.Duration(rng.Int63n(int64(window*8/10)))
		switch rng.Intn(8) {
		case 0:
			plan = append(plan, faultEvent{
				at:   at,
				kind: faultCrash,
				node: rng.Intn(cfg.Nodes),
				dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
			})
		case 4:
			plan = append(plan, tornCrash(rng, at, faultCrashTorn, cfg.Nodes))
		case 5:
			plan = append(plan, tornCrash(rng, at, faultCrashFlip, cfg.Nodes))
		case 1:
			plan = append(plan, faultEvent{
				at:    at,
				kind:  faultDiskStall,
				node:  rng.Intn(cfg.Nodes),
				disk:  rng.Intn(3),
				extra: time.Duration(2+rng.Intn(8)) * time.Millisecond,
				dur:   time.Duration(3+rng.Intn(5)) * time.Second,
			})
		case 2:
			plan = append(plan, faultEvent{
				at:    at,
				kind:  faultNetSpike,
				extra: time.Duration(1+rng.Intn(4)) * time.Millisecond,
				dur:   time.Duration(2+rng.Intn(4)) * time.Second,
			})
		case 3:
			// A second migration over the first quarter, to the last node.
			plan = append(plan, faultEvent{
				at:     at,
				kind:   faultMigrate,
				loK:    0,
				hiK:    int64(cfg.Keys / 4),
				target: cfg.Nodes - 1,
			})
		case 6:
			plan = append(plan, destroyDisk(rng, at, cfg.Nodes))
		case 7:
			plan = append(plan, rotAcked(rng, at, cfg.Nodes))
		}
	}
	// Stable order: by time, with insertion order breaking ties (stability
	// matters — equal-timestamp events must execute in generation order or
	// the schedule would depend on the sort implementation).
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].at < plan[j].at })
	return plan
}

// tornCrash builds one log-medium damage crash at the given time: a power
// failure tearing the frame the log device was writing (partial final
// record), or — for faultCrashFlip — one leaving a byte-complete but
// bit-flipped frame at the flushed boundary. Both harnesses' plan builders
// draw from this single definition so the damage parameter ranges cannot
// drift apart.
func tornCrash(rng *rand.Rand, at time.Duration, kind faultKind, nodes int) faultEvent {
	ev := faultEvent{
		at:   at,
		kind: kind,
		node: rng.Intn(nodes),
		flip: -1,
		dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
	}
	if kind == faultCrashFlip {
		ev.tear = 16 + rng.Intn(256) // often beyond the frame: kept whole, corrupted by the flip
		ev.flip = rng.Intn(1 << 11)
	} else {
		ev.tear = 1 + rng.Intn(96) // strictly partial final frame
	}
	return ev
}

// tornCrashEvents derives the log-medium damage events every plan carries:
// one torn-tail and one bit-flip crash on a node from the first dataNodes
// (the ones with steady log traffic), landing in the middle half of the
// window.
func tornCrashEvents(rng *rand.Rand, window time.Duration, dataNodes int) []faultEvent {
	at := func() time.Duration {
		return window/4 + time.Duration(rng.Int63n(int64(window/2)))
	}
	return []faultEvent{
		tornCrash(rng, at(), faultCrashTorn, dataNodes),
		tornCrash(rng, at(), faultCrashFlip, dataNodes),
	}
}

// destroyDisk builds one full-disk-loss event: power-fail the node, wipe its
// log medium and recovery bases, and restart it after dur — the restart must
// rebuild every hosted partition from the node's replica set.
func destroyDisk(rng *rand.Rand, at time.Duration, nodes int) faultEvent {
	return faultEvent{
		at:   at,
		kind: faultDestroyDisk,
		node: rng.Intn(nodes),
		dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
	}
}

// rotAcked builds one acked-history bit-rot event: flip a bit inside a
// flushed, shippable frame of a live node's log (the scrubber must repair it
// from a healthy copy before — or at latest during — the final sweep). The
// node is drawn from the first two (steady log traffic guarantees a victim
// frame exists).
func rotAcked(rng *rand.Rand, at time.Duration, nodes int) faultEvent {
	pick := nodes
	if pick > 2 {
		pick = 2
	}
	return faultEvent{
		at:   at,
		kind: faultRotAcked,
		node: rng.Intn(pick),
		flip: rng.Intn(1 << 20),
	}
}

// diskFaultEvents derives the guaranteed disk-loss + acked-rot pair every
// plan carries, landing in the middle half of the window.
func diskFaultEvents(rng *rand.Rand, window time.Duration, nodes int) []faultEvent {
	at := func() time.Duration {
		return window/4 + time.Duration(rng.Int63n(int64(window/2)))
	}
	return []faultEvent{
		destroyDisk(rng, at(), nodes),
		rotAcked(rng, at(), nodes),
	}
}

// faultRunner is the workload-agnostic fault executor shared by the KV and
// TPC-C harnesses: it walks the plan on the simulator clock, executing
// crashes (power-fail anywhere, including mid-commit, with a scheduled
// restart), disk stalls, and net spikes itself, and delegating migrations
// to the workload (which knows its tables). Generation counters make
// overlapping faults well-behaved: each injection bumps the device's
// generation, and an expiry timer clears the fault only if no later fault
// has re-armed that device meanwhile.
type faultRunner struct {
	env      *sim.Env
	c        *cluster.Cluster
	rep      *Report
	logFault func(format string, args ...interface{})
	violate  func(string)
	// migrate runs the workload's range migration for ev in its own
	// process and calls done when finished (only one runs at a time).
	migrate func(ev faultEvent, done func())
	// postRestart, when non-nil, runs after every successful node restart.
	postRestart func(p *sim.Proc, n *cluster.DataNode)
}

func (fr *faultRunner) spawnExecutor(plan []faultEvent) {
	migrating := false
	stallGen := make(map[*hw.Disk]int)
	netGen := 0
	fr.env.Spawn("chaos-executor", func(p *sim.Proc) {
		for _, ev := range plan {
			if wait := ev.at - p.Now(); wait > 0 {
				p.Sleep(wait)
			}
			switch ev.kind {
			case faultCrash, faultCrashTorn, faultCrashFlip, faultCrashCoord:
				fr.execCrash(ev)
			case faultDiskStall:
				n := fr.c.Nodes[ev.node]
				d := n.HW.Disks[ev.disk]
				fr.logFault("disk stall: node %d disk %d +%v for %v", ev.node, ev.disk, ev.extra, ev.dur)
				d.SetStall(ev.extra)
				stallGen[d]++
				mine := stallGen[d]
				fr.env.After(ev.dur, func() {
					if stallGen[d] == mine {
						d.SetStall(0)
					}
				})
			case faultNetSpike:
				fr.logFault("net delay spike: +%v for %v", ev.extra, ev.dur)
				fr.c.Net.SetExtraDelay(ev.extra)
				netGen++
				mine := netGen
				fr.env.After(ev.dur, func() {
					if netGen == mine {
						fr.c.Net.SetExtraDelay(0)
					}
				})
			case faultMigrate:
				if migrating {
					fr.logFault("migration [%d,%d) -> node %d skipped (another in flight)", ev.loK, ev.hiK, ev.target)
					continue
				}
				migrating = true
				fr.migrate(ev, func() { migrating = false })
			case faultDestroyDisk:
				fr.execDestroy(ev)
			case faultCkptCrash:
				fr.execCkptCrash(ev)
			case faultRotAcked:
				n := fr.c.Nodes[ev.node]
				if n.Down() {
					fr.logFault("acked-history rot on node %d skipped (down)", ev.node)
					continue
				}
				if lsn := n.Log.FlipFlushedBit(ev.flip, fr.c.RotEligible(n)); lsn != 0 {
					fr.rep.RotInjected++
					fr.logFault("acked-history rot: node %d frame at LSN %d bit-flipped (pick %d)", ev.node, lsn, ev.flip)
				} else {
					fr.logFault("acked-history rot on node %d skipped (no replica-covered frame)", ev.node)
				}
			}
		}
	})
}

// execCrash power-fails a node — at any instant, including mid-commit —
// and schedules its restart. Torn/flip variants additionally damage the log
// medium: part of the frame the device was writing survives on the platter
// (possibly bit-flipped), and the restart must CRC-detect and truncate it
// while every acknowledged commit below the boundary survives.
func (fr *faultRunner) execCrash(ev faultEvent) {
	if ev.kind == faultCrashCoord {
		// Resolve the acting coordinator at execution time — after earlier
		// failovers the leader may be any replica-group member — then crash
		// it like any other power failure.
		ev.node = fr.c.Master.LeaderID()
		ev.kind = faultCrash
	}
	n := fr.c.Nodes[ev.node]
	if n.Down() {
		// Already down: a second crash+restart pair for the same outage
		// would double-count and race the first restart.
		fr.logFault("crash node %d skipped (already down)", ev.node)
		return
	}
	wasLeader := n == fr.c.Master.Node
	switch ev.kind {
	case faultCrashTorn:
		torn := fr.c.CrashNodeTorn(n, ev.tear, -1)
		if torn > 0 { // an empty unflushed tail degrades to a plain crash
			fr.rep.TornCrashes++
		}
		fr.logFault("crash node %d with torn log tail (%d bytes survive; restart after %v)", ev.node, torn, ev.dur)
	case faultCrashFlip:
		torn := fr.c.CrashNodeTorn(n, ev.tear, ev.flip)
		if torn > 0 {
			fr.rep.BitFlips++
		}
		fr.logFault("crash node %d with bit-flipped log tail (%d bytes survive, bit %d; restart after %v)",
			ev.node, torn, ev.flip, ev.dur)
	default:
		fr.c.CrashNode(n)
		fr.logFault("crash node %d (restart after %v)", ev.node, ev.dur)
	}
	fr.rep.Crashes++
	if fr.c.MasterReplicated() && wasLeader {
		fr.rep.LeaderCrashes++
	}
	node := n
	dur := ev.dur
	fr.env.Spawn(fmt.Sprintf("chaos-restart-%d", ev.node), func(p *sim.Proc) {
		p.Sleep(dur)
		redone, undone, err := fr.c.RestartNode(p, node)
		if err != nil {
			fr.violate(fmt.Sprintf("restart of node %d failed: %v", node.ID, err))
			return
		}
		// The restart must leave a fully decodable log: a torn or corrupted
		// (and necessarily unacknowledged) tail is truncated, never patched
		// around or left for the next recovery to trip on.
		it := node.Log.Iter()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		if it.Err() != nil {
			fr.violate(fmt.Sprintf("restart of node %d left a corrupt log tail: %v", node.ID, it.Err()))
		}
		fr.rep.Restarts++
		noteRecovery(fr.rep, fr.violate, node)
		fr.logFault("node %d restarted (replay: %d redone, %d undone, %d bytes from redo %d, %v to ready)",
			node.ID, redone, undone, node.LastRecovery.Bytes, node.LastRecovery.Redo, node.LastRecovery.Elapsed)
		if fr.postRestart != nil {
			fr.postRestart(p, node)
		}
	})
}

// execDestroy power-fails a node AND destroys its log medium — segments and
// recovery base images both — then schedules the restart, which must rebuild
// every hosted partition from the node's replica set. At most one disk loss
// is outstanding at a time: two simultaneously wiped nodes could be each
// other's only replica, leaving no rebuild source (real deployments solve
// this with rack-aware placement; the simulator keeps the invariant by
// serializing the fault).
func (fr *faultRunner) execDestroy(ev faultEvent) {
	if !fr.c.DataReplicated() {
		fr.logFault("disk loss on node %d skipped (data replication off)", ev.node)
		return
	}
	n := fr.c.Nodes[ev.node]
	if n.Down() {
		fr.logFault("disk loss on node %d skipped (already down)", ev.node)
		return
	}
	for _, other := range fr.c.Nodes {
		if other.DiskLost() {
			fr.logFault("disk loss on node %d skipped (node %d still rebuilding)", ev.node, other.ID)
			return
		}
	}
	wasLeader := n == fr.c.Master.Node
	fr.c.DestroyDisk(n)
	fr.logFault("disk loss: node %d log medium and bases destroyed (restart after %v)", ev.node, ev.dur)
	fr.rep.Crashes++
	if fr.c.MasterReplicated() && wasLeader {
		fr.rep.LeaderCrashes++
	}
	node := n
	dur := ev.dur
	fr.env.Spawn(fmt.Sprintf("chaos-rebuild-%d", ev.node), func(p *sim.Proc) {
		p.Sleep(dur)
		redone, undone, err := fr.c.RestartNode(p, node)
		if err != nil {
			fr.violate(fmt.Sprintf("rebuild restart of node %d failed: %v", node.ID, err))
			return
		}
		if node.DiskLost() || node.Log.LostDurable() {
			fr.violate(fmt.Sprintf("node %d still marked disk-lost after rebuild restart", node.ID))
			return
		}
		it := node.Log.Iter()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		if it.Err() != nil {
			fr.violate(fmt.Sprintf("rebuild of node %d left a corrupt log: %v", node.ID, it.Err()))
		}
		fr.rep.Restarts++
		noteRecovery(fr.rep, fr.violate, node)
		fr.logFault("node %d rebuilt from replicas (replay: %d redone, %d undone, %d bytes, %v to ready)",
			node.ID, redone, undone, node.LastRecovery.Bytes, node.LastRecovery.Elapsed)
		if fr.postRestart != nil {
			fr.postRestart(p, node)
		}
	})
}

// runner wires the KV harness into the shared fault executor.
func (h *harness) runner() *faultRunner {
	return &faultRunner{
		env:         h.env,
		c:           h.c,
		rep:         h.rep,
		logFault:    h.logFault,
		violate:     h.violate,
		postRestart: h.postRestartSweep,
		migrate: func(ev faultEvent, done func()) {
			h.env.Spawn("chaos-migrate", func(mp *sim.Proc) {
				h.logFault("migration [%d,%d) -> node %d starting", ev.loK, ev.hiK, ev.target)
				err := h.master.MigrateRange(mp, "kv", kvKey(ev.loK), kvKey(ev.hiK), h.c.Nodes[ev.target])
				if err != nil {
					h.logFault("migration [%d,%d) -> node %d aborted: %v", ev.loK, ev.hiK, ev.target, err)
				} else {
					h.logFault("migration [%d,%d) -> node %d complete", ev.loK, ev.hiK, ev.target)
				}
				done()
			})
		},
	}
}

// postRestartSweep reads every key the oracle knows right after a restart;
// the observations flow into the same end-of-run validation as workload
// reads, so "every acknowledged commit readable after restart" is checked
// at the restart boundary itself, not only at the end.
func (h *harness) postRestartSweep(p *sim.Proc, restarted *cluster.DataNode) {
	s := h.master.Begin(p, ccSnapshot, restarted)
	keys := make([]int64, 0, len(h.oracle.hist))
	for k := range h.oracle.hist {
		keys = append(keys, k)
	}
	sortInt64s(keys)
	for _, k := range keys {
		v, ok, err := s.Get(p, "kv", kvKey(k))
		if err != nil {
			// Another fault window may overlap the sweep; skip silently.
			h.rep.FailedOps++
			continue
		}
		obs := readObs{at: p.Now(), snap: s.Txn.Begin, key: k, ok: ok}
		if ok {
			row, derr := h.schema.DecodeRow(v)
			if derr != nil {
				h.violate(fmt.Sprintf("post-restart sweep: key %d undecodable: %v", k, derr))
				continue
			}
			obs.val = row[1].(string)
		}
		h.reads = append(h.reads, obs)
	}
	s.Abort(p)
}

package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"wattdb/internal/cluster"
	"wattdb/internal/sim"
)

// Fuzzy-checkpoint chaos wiring shared by the KV and TPC-C harnesses. Both
// run a background checkpointer on every node, so restarts replay only the
// delta since the last complete checkpoint; the plan's -ckpt faults
// power-fail a node at a random step of an in-flight checkpoint, and the
// restart oracle asserts the bounded-replay contract on every recovery.

// ckptInterval is the background checkpoint cadence per node.
const ckptInterval = 2 * time.Second

// spawnCheckpointers starts one fuzzy-checkpoint daemon per node. Crashed,
// disk-lost, or down rounds are skipped (CheckpointNode re-checks itself);
// the daemons exit once *stop flips so the end-of-run drain terminates.
func spawnCheckpointers(env *sim.Env, c *cluster.Cluster, stop *bool) {
	for _, n := range c.Nodes {
		n := n
		env.Spawn(fmt.Sprintf("chaos-ckpt-%d", n.ID), func(p *sim.Proc) {
			for !*stop {
				p.Sleep(ckptInterval)
				if n.Down() || n.DiskLost() {
					continue
				}
				if _, err := c.CheckpointNode(p, n, 0); err != nil {
					return // engine failure surfaces through the invariant sweep
				}
			}
		})
	}
}

// noteRecovery folds a completed restart's RecoveryStats into the report and
// checks the bounded-replay oracle: when a complete checkpoint bounded the
// replay, no partition may have applied a record below its recorded redo
// point — restart work is O(delta since checkpoint), not O(retained log).
func noteRecovery(rep *Report, violate func(string), n *cluster.DataNode) {
	lr := n.LastRecovery
	rep.ReplayBytes += lr.Bytes
	rep.RecoveryTime += lr.Elapsed
	if !lr.Checkpointed {
		return
	}
	rep.BoundedRestarts++
	if lr.MinApplied != 0 && lr.MinApplied < lr.Redo {
		violate(fmt.Sprintf(
			"recovery bound: node %d replayed LSN %d below its checkpoint redo point %d",
			n.ID, lr.MinApplied, lr.Redo))
	}
}

// ckptCrash builds one mid-checkpoint power failure: the crash is armed to
// fire after a random number of checkpoint protocol steps (flush batches,
// begin append, redo scan, end append, truncation), so over seeds the plan
// covers every phase of the begin/end pair — including the torn-pair window
// between the two records.
func ckptCrash(rng *rand.Rand, at time.Duration, nodes int) faultEvent {
	return faultEvent{
		at:   at,
		kind: faultCkptCrash,
		node: rng.Intn(nodes),
		tear: rng.Intn(8), // protocol steps before the armed crash fires
		dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
	}
}

// ckptCrashEvents derives the cfg.CkptFaults mid-checkpoint crashes a plan
// carries, landing in the middle half of the window.
func ckptCrashEvents(rng *rand.Rand, window time.Duration, nodes, count int) []faultEvent {
	evs := make([]faultEvent, 0, count)
	for i := 0; i < count; i++ {
		at := window/4 + time.Duration(rng.Int63n(int64(window/2)))
		evs = append(evs, ckptCrash(rng, at, nodes))
	}
	return evs
}

// execCkptCrash power-fails a node mid-checkpoint: it arms the crash
// countdown and drives a checkpoint into it. If the countdown is consumed
// elsewhere (a concurrent daemon checkpoint picks it up) or the checkpoint
// completes before the countdown expires, the event degrades to a plain
// power failure — still a crash, still restarted by this event's pair. A
// node someone else crashed first is left to that fault's restart pair.
func (fr *faultRunner) execCkptCrash(ev faultEvent) {
	n := fr.c.Nodes[ev.node]
	if n.Down() || n.DiskLost() {
		fr.logFault("mid-checkpoint crash on node %d skipped (already down)", ev.node)
		return
	}
	wasLeader := n == fr.c.Master.Node
	fr.c.ArmCheckpointCrash(n, ev.tear)
	fr.logFault("mid-checkpoint crash armed: node %d after %d steps (restart after %v)",
		ev.node, ev.tear, ev.dur)
	node := n
	dur := ev.dur
	fr.env.Spawn(fmt.Sprintf("chaos-ckpt-crash-%d", ev.node), func(p *sim.Proc) {
		fr.c.CheckpointNode(p, node, 0)
		if node.Down() && fr.c.CheckpointCrashArmed(node) {
			// Another fault power-failed the node while our checkpoint was in
			// flight; its crash/restart pair owns the outage.
			fr.c.ArmCheckpointCrash(node, -1)
			fr.logFault("mid-checkpoint crash on node %d absorbed by a concurrent crash", node.ID)
			return
		}
		if !node.Down() {
			fr.c.ArmCheckpointCrash(node, -1)
			fr.c.CrashNode(node)
		}
		fr.rep.Crashes++
		fr.rep.CkptCrashes++
		if fr.c.MasterReplicated() && wasLeader {
			fr.rep.LeaderCrashes++
		}
		p.Sleep(dur)
		redone, undone, err := fr.c.RestartNode(p, node)
		if err != nil {
			fr.violate(fmt.Sprintf("restart of node %d after mid-checkpoint crash failed: %v", node.ID, err))
			return
		}
		it := node.Log.Iter()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		if it.Err() != nil {
			fr.violate(fmt.Sprintf("mid-checkpoint crash on node %d left a corrupt log tail: %v", node.ID, it.Err()))
		}
		fr.rep.Restarts++
		noteRecovery(fr.rep, fr.violate, node)
		fr.logFault("node %d restarted after mid-checkpoint crash (replay: %d redone, %d undone, %d bytes from redo %d, %v to ready)",
			node.ID, redone, undone, node.LastRecovery.Bytes, node.LastRecovery.Redo, node.LastRecovery.Elapsed)
		if fr.postRestart != nil {
			fr.postRestart(p, node)
		}
	})
}

package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"wattdb/internal/table"
)

// TestChaosSeedsPass runs a short chaos scenario for each repartitioning
// scheme and requires every invariant to hold.
func TestChaosSeedsPass(t *testing.T) {
	for _, scheme := range []table.Scheme{table.Physical, table.Logical, table.Physiological} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			rep, err := Run(Config{Seed: 7, Scheme: scheme, Duration: 40 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			logReport(t, rep)
			if !rep.Passed() {
				t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
			}
			if rep.Commits == 0 {
				t.Fatal("no transactions committed under chaos")
			}
			if rep.Crashes == 0 || rep.Restarts == 0 {
				t.Fatalf("plan injected no crash/restart (crashes=%d restarts=%d)", rep.Crashes, rep.Restarts)
			}
		})
	}
}

// TestChaosDeterministic reruns one seed and requires the identical fault
// schedule and final state hash — the property that makes any chaos failure
// a one-line repro.
func TestChaosDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Scheme: table.Physiological, Duration: 30 * time.Second}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.StateHash != r2.StateHash {
		t.Errorf("state hash differs: %s vs %s", r1.StateHash, r2.StateHash)
	}
	if fmt.Sprint(r1.Faults) != fmt.Sprint(r2.Faults) {
		t.Errorf("fault schedules differ:\nrun1: %v\nrun2: %v", r1.Faults, r2.Faults)
	}
	if r1.Commits != r2.Commits || r1.Aborts != r2.Aborts || r1.SimTime != r2.SimTime {
		t.Errorf("run outcome differs: (%d,%d,%v) vs (%d,%d,%v)",
			r1.Commits, r1.Aborts, r1.SimTime, r2.Commits, r2.Aborts, r2.SimTime)
	}
}

// TestChaosDiskLossDeterministic piles full-disk-loss and acked-history-rot
// faults onto one seed and requires (a) a disk actually got destroyed and
// the restart rebuilt the node from its replica set, (b) every invariant
// holds through the rebuild, and (c) two runs agree on the schedule and the
// state hash — rebuild sourcing, scrub repairs, and follower reads replay
// identically (the hash includes all the replication counters).
func TestChaosDiskLossDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Scheme: table.Physiological, Duration: 40 * time.Second, DiskFaults: 3}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logReport(t, r1)
	if !r1.Passed() {
		t.Fatalf("invariant violations:\n%s", strings.Join(r1.Violations, "\n"))
	}
	if r1.DiskLosses == 0 || r1.Rebuilds == 0 {
		t.Fatalf("no disk was lost and rebuilt (diskLosses=%d rebuilds=%d)", r1.DiskLosses, r1.Rebuilds)
	}
	if r1.FollowerReads == 0 {
		t.Fatal("no snapshot read was served by a replica")
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.StateHash != r2.StateHash {
		t.Errorf("state hash differs: %s vs %s", r1.StateHash, r2.StateHash)
	}
	if fmt.Sprint(r1.Faults) != fmt.Sprint(r2.Faults) {
		t.Errorf("fault schedules differ:\nrun1: %v\nrun2: %v", r1.Faults, r2.Faults)
	}
	if r1.DiskLosses != r2.DiskLosses || r1.Rebuilds != r2.Rebuilds ||
		r1.ScrubRepairs != r2.ScrubRepairs || r1.FollowerReads != r2.FollowerReads {
		t.Errorf("replication counters differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			r1.DiskLosses, r1.Rebuilds, r1.ScrubRepairs, r1.FollowerReads,
			r2.DiskLosses, r2.Rebuilds, r2.ScrubRepairs, r2.FollowerReads)
	}
}

// TestChaosCoordFailoverDeterministic piles extra coordinator power-fails
// onto one seed and requires (a) leader crashes and completed failovers
// actually occurred, (b) every invariant still holds through them, and
// (c) two runs agree on the schedule and the state hash — elections,
// catch-up, and post-failover reconciliation replay identically (the hash
// includes the failover count).
func TestChaosCoordFailoverDeterministic(t *testing.T) {
	cfg := Config{Seed: 23, Scheme: table.Physiological, Duration: 40 * time.Second, CoordFaults: 3}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logReport(t, r1)
	if !r1.Passed() {
		t.Fatalf("invariant violations:\n%s", strings.Join(r1.Violations, "\n"))
	}
	if r1.LeaderCrashes == 0 || r1.Failovers == 0 {
		t.Fatalf("coordinator never failed over (leaderCrashes=%d failovers=%d)", r1.LeaderCrashes, r1.Failovers)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.StateHash != r2.StateHash {
		t.Errorf("state hash differs: %s vs %s", r1.StateHash, r2.StateHash)
	}
	if fmt.Sprint(r1.Faults) != fmt.Sprint(r2.Faults) {
		t.Errorf("fault schedules differ:\nrun1: %v\nrun2: %v", r1.Faults, r2.Faults)
	}
	if r1.LeaderCrashes != r2.LeaderCrashes || r1.Failovers != r2.Failovers {
		t.Errorf("failover outcome differs: (%d,%d) vs (%d,%d)",
			r1.LeaderCrashes, r1.Failovers, r2.LeaderCrashes, r2.Failovers)
	}
}

// TestChaosCkptCrashDeterministic piles mid-checkpoint power failures onto
// one seed and requires (a) checkpoints completed and at least one crash
// landed inside the checkpoint protocol, (b) at least one restart was
// bounded by a complete checkpoint (replay from its redo point, not the log
// head), (c) every invariant holds through the torn pairs, and (d) two runs
// agree on the schedule, the recovery counters, and the state hash.
func TestChaosCkptCrashDeterministic(t *testing.T) {
	cfg := Config{Seed: 8, Scheme: table.Physiological, Duration: 40 * time.Second, CkptFaults: 3}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logReport(t, r1)
	if !r1.Passed() {
		t.Fatalf("invariant violations:\n%s", strings.Join(r1.Violations, "\n"))
	}
	if r1.Checkpoints == 0 || r1.CkptCrashes == 0 {
		t.Fatalf("no mid-checkpoint crash landed (checkpoints=%d ckptCrashes=%d)", r1.Checkpoints, r1.CkptCrashes)
	}
	if r1.BoundedRestarts == 0 {
		t.Fatal("no restart was bounded by a complete checkpoint")
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.StateHash != r2.StateHash {
		t.Errorf("state hash differs: %s vs %s", r1.StateHash, r2.StateHash)
	}
	if fmt.Sprint(r1.Faults) != fmt.Sprint(r2.Faults) {
		t.Errorf("fault schedules differ:\nrun1: %v\nrun2: %v", r1.Faults, r2.Faults)
	}
	if r1.Checkpoints != r2.Checkpoints || r1.CkptCrashes != r2.CkptCrashes ||
		r1.BoundedRestarts != r2.BoundedRestarts || r1.ReplayBytes != r2.ReplayBytes {
		t.Errorf("recovery counters differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			r1.Checkpoints, r1.CkptCrashes, r1.BoundedRestarts, r1.ReplayBytes,
			r2.Checkpoints, r2.CkptCrashes, r2.BoundedRestarts, r2.ReplayBytes)
	}
}

func logReport(t *testing.T, rep *Report) {
	t.Helper()
	t.Logf("seed=%d scheme=%s hash=%s commits=%d aborts=%d failedOps=%d reads=%d scans=%d crashes=%d restarts=%d",
		rep.Seed, rep.Scheme, rep.StateHash, rep.Commits, rep.Aborts, rep.FailedOps,
		rep.Reads, rep.Scans, rep.Crashes, rep.Restarts)
	for _, f := range rep.Faults {
		t.Logf("  %s", f)
	}
}

package chaos

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"wattdb/internal/cluster"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/tpcc"
)

// RunTPCC executes one chaos run over the TPC-C workload: clients drive the
// five transactions against a warehouse-partitioned deployment while the
// seeded fault plan power-fails nodes (anywhere, including mid-commit),
// stalls disks, spikes the network, and migrates warehouse ranges between
// nodes. An oracle applies every acknowledged transaction's Effect to an
// in-memory model and checks the TPC-C consistency invariants at the end:
//
//   - W_YTD = 300000 + Σ acknowledged payments, and equals the sum of its
//     districts' D_YTD (cross-row consistency within a warehouse);
//   - D_NEXT_O_ID advanced exactly past the acknowledged NewOrders, whose
//     ORDERS rows exist with their order-line counts — and no others
//     (NewOrder atomicity across partitions: district, orders, new_order,
//     order_line, and possibly remote stock commit or vanish together);
//   - NEW_ORDER holds exactly the undelivered orders (initial + acknowledged
//     NewOrders − acknowledged Deliveries);
//   - every touched STOCK row carries the summed quantities, order counts,
//     and remote counts of the acknowledged order lines that hit it.
//
// The same determinism contract as the KV harness applies: one seed → one
// fault schedule → one state hash.
func RunTPCC(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	env := sim.NewEnv(cfg.Seed)
	defer env.Close()

	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = cfg.Nodes
	ccfg.MasterReplicas = 2
	ccfg.DataReplicas = 2
	c := cluster.New(env, ccfg)
	for _, n := range c.Nodes[1:] {
		n.HW.ForceActive()
	}

	// A trimmed TPC-C keeps the run fast while preserving every access
	// path; four warehouses split two nodes, with spare nodes as migration
	// targets. Districts stay at the spec's 10 because the load's base
	// values encode W_YTD = 10 × D_YTD — the very invariant the oracle
	// checks.
	tcfg := tpcc.Config{
		Warehouses:           4,
		DistrictsPerW:        10,
		CustomersPerDistrict: 30,
		Items:                100,
		InitialOrdersPerDist: 30,
		Seed:                 cfg.Seed,
	}
	h := &tpccHarness{
		cfg:    cfg,
		tcfg:   tcfg,
		env:    env,
		c:      c,
		master: c.Master,
		stopAt: cfg.Duration,
		rep:    &Report{Seed: cfg.Seed, Scheme: cfg.Scheme},
		model:  newTPCCModel(tcfg),
	}
	dep, err := tpcc.Deploy(c.Master, tcfg, cfg.Scheme, []tpcc.WarehouseRange{
		{FromW: 1, ToW: 2, Owner: c.Nodes[0]},
		{FromW: 3, ToW: tcfg.Warehouses, Owner: c.Nodes[1]},
	}, c.Nodes)
	if err != nil {
		return h.rep, err
	}
	dep.RecordEffects = true
	h.dep = dep
	var loadErr error
	env.Spawn("tpcc-chaos-load", func(p *sim.Proc) { loadErr = dep.Load(p) })
	if err := env.Run(); err != nil {
		return h.rep, err
	}
	if loadErr != nil {
		return h.rep, loadErr
	}
	c.SetupReplicationDrain()

	for w := 0; w < cfg.Workers; w++ {
		h.spawnWorker(w)
	}
	for q := 0; q < cfg.HTAP; q++ {
		h.spawnAnalytics(q)
	}
	spawnReplicationDaemons(env, c, &h.stop)
	spawnCheckpointers(env, c, &h.stop)
	h.runner().spawnExecutor(buildTPCCPlan(cfg, tcfg))

	if err := env.RunUntil(cfg.Duration); err != nil {
		return h.rep, err
	}
	h.stop = true
	if err := env.Run(); err != nil {
		return h.rep, err
	}
	for _, n := range c.Nodes {
		if n.Down() {
			node := n
			env.Spawn("tpcc-chaos-final-restart", func(p *sim.Proc) {
				if _, _, err := c.RestartNode(p, node); err != nil {
					h.violate(fmt.Sprintf("final restart of node %d: %v", node.ID, err))
					return
				}
				h.rep.Restarts++
				noteRecovery(h.rep, h.violate, node)
			})
		}
	}
	if err := env.Run(); err != nil {
		return h.rep, err
	}
	finalReplicationSweep(env, c, h.violate)
	if err := env.Run(); err != nil {
		return h.rep, err
	}
	h.rep.Rebuilds, h.rep.ScrubRepairs, h.rep.FollowerReads, h.rep.DiskLosses = c.ReplicationStats()
	for _, n := range c.Nodes {
		h.rep.Checkpoints += n.Checkpoints
	}

	// Coordinator-failover oracles (same contract as the KV harness).
	if c.Master.Fenced() {
		h.violate("coordinator still fenced after drain (no leader elected)")
	}
	if n := c.Master.InDoubtDecisionCount(); n != 0 {
		h.violate(fmt.Sprintf("decision map leak: %d commit decisions never fully acknowledged", n))
	}
	h.rep.Failovers = c.Master.Failovers()

	h.model.settle(h.violate)
	finalState := h.finalCheck()
	for _, name := range tpcc.PartitionedTables() {
		h.checkTableRanges(name)
	}
	h.rep.SimTime = env.Now()
	h.rep.StateHash = h.stateHash(finalState)
	return h.rep, nil
}

type tpccHarness struct {
	cfg    Config
	tcfg   tpcc.Config
	env    *sim.Env
	c      *cluster.Cluster
	master *cluster.Master
	dep    *tpcc.Deployment
	model  *tpccModel

	stop   bool
	stopAt time.Duration
	rep    *Report
}

func (h *tpccHarness) violate(msg string) {
	if len(h.rep.Violations) < maxViolations {
		h.rep.Violations = append(h.rep.Violations, msg)
	}
}

func (h *tpccHarness) logFault(format string, args ...interface{}) {
	h.rep.Faults = append(h.rep.Faults,
		fmt.Sprintf("t=%7.3fs  ", h.env.Now().Seconds())+fmt.Sprintf(format, args...))
}

// homeFor picks the session home for warehouse w: its owning node when
// powered, otherwise any alive node (remote execution pays the network).
func (h *tpccHarness) homeFor(w int, rng *rand.Rand) *cluster.DataNode {
	if tm, err := h.master.Table(tpcc.TWarehouse); err == nil {
		if e, err := tm.Route(keycodec.Int64Key(int64(w))); err == nil {
			if !e.Owner.Down() && e.Owner.HW.State() == hwActive {
				return e.Owner
			}
		}
	}
	var alive []*cluster.DataNode
	for _, n := range h.c.Nodes {
		if !n.Down() && n.HW.State() == hwActive {
			alive = append(alive, n)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	return alive[rng.Intn(len(alive))]
}

func (h *tpccHarness) spawnWorker(w int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed*1_000_003 + int64(w)))
	h.env.Spawn(fmt.Sprintf("tpcc-chaos-worker-%d", w), func(p *sim.Proc) {
		p.Sleep(time.Duration(w) * 3 * time.Millisecond) // desynchronize
		for !h.stop && p.Now() < h.stopAt {
			wh := 1 + rng.Intn(h.tcfg.Warehouses)
			home := h.homeFor(wh, rng)
			if home == nil {
				p.Sleep(50 * time.Millisecond)
				continue
			}
			typ := tpcc.PickTxn(rng)
			sess := h.master.Begin(p, ccSnapshot, home)
			err := h.dep.Exec(p, sess, typ, wh, rng)
			switch {
			case err != nil:
				h.dep.TakeEffect(sess.Txn.ID)
				sess.Abort(p)
				h.rep.FailedOps++
			case typ == tpcc.TxnOrderStatus || typ == tpcc.TxnStockLevel:
				// Read-only: nothing to acknowledge.
				h.dep.TakeEffect(sess.Txn.ID)
				sess.Abort(p)
				h.rep.Reads++
			default:
				if cerr := sess.Commit(p); cerr != nil {
					h.dep.TakeEffect(sess.Txn.ID)
					sess.Abort(p)
					h.rep.Aborts++
					break
				}
				// Acknowledged: fold the effect into the model before any
				// further blocking call.
				h.model.apply(h.dep.TakeEffect(sess.Txn.ID), h.violate)
				h.rep.Commits++
			}
			p.Sleep(time.Duration(2+rng.Intn(6)) * time.Millisecond)
		}
	})
}

// spawnAnalytics starts one HTAP reader over the TPC-C schema: each query
// picks a random district and runs the order/order-line/new-order scans of
// a CH-style aggregate inside one snapshot. The cumulative model cannot
// time-align a mid-run snapshot, so the reader checks the invariants that
// must hold *within* any single snapshot regardless of what has committed:
// every visible order id is below the district's D_NEXT_O_ID, every
// visible order's ORDER_LINE count equals its O_OL_CNT (a torn NewOrder is
// visible otherwise), and every NEW_ORDER entry references a visible
// order. Even-numbered readers set the PreferFollower offloading hint so
// replica snapshot reads run under the fault plan.
func (h *tpccHarness) spawnAnalytics(q int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed*2_000_003 + int64(q)))
	h.env.Spawn(fmt.Sprintf("tpcc-chaos-htap-%d", q), func(p *sim.Proc) {
		p.Sleep(time.Duration(7+5*q) * time.Millisecond) // desynchronize
		for !h.stop && p.Now() < h.stopAt {
			w := 1 + rng.Intn(h.tcfg.Warehouses)
			d := 1 + rng.Intn(h.tcfg.DistrictsPerW)
			home := h.homeFor(w, rng)
			if home == nil {
				p.Sleep(50 * time.Millisecond)
				continue
			}
			s := h.master.Begin(p, ccSnapshot, home)
			s.PreferFollower = q%2 == 0
			if !h.analyticsQuery(p, s, int64(w), int64(d)) {
				h.rep.FailedOps++
			}
			s.Abort(p)
			p.Sleep(time.Duration(40+rng.Intn(60)) * time.Millisecond)
		}
	})
}

// analyticsQuery runs one district's snapshot aggregate and checks its
// internal invariants. It returns false when a fault aborted the query
// (down node, timeout) — invariant breaks go through violate instead.
func (h *tpccHarness) analyticsQuery(p *sim.Proc, s *cluster.Session, w, d int64) bool {
	dS := h.dep.Schemas[tpcc.TDistrict]
	oS := h.dep.Schemas[tpcc.TOrders]
	olS := h.dep.Schemas[tpcc.TOrderLine]
	noS := h.dep.Schemas[tpcc.TNewOrder]

	dKey, err := dS.EncodeKeyPrefix(w, d)
	if err != nil {
		h.violate(fmt.Sprintf("htap: district key [%d,%d]: %v", w, d, err))
		return false
	}
	raw, ok, err := s.Get(p, tpcc.TDistrict, dKey)
	if err != nil || !ok {
		return false
	}
	dRow, derr := dS.DecodeRow(raw)
	if derr != nil {
		h.violate(fmt.Sprintf("htap@%v district[%d,%d]: undecodable row: %v", p.Now(), w, d, derr))
		return false
	}
	nextO := dRow[5].(int64)
	rows := int64(1)

	lo, _ := oS.EncodeKeyPrefix2(w, d)
	hi, _ := oS.EncodeKeyPrefix2(w, d+1)
	olCnt := map[int64]int64{} // visible orders -> O_OL_CNT
	err = s.Scan(p, tpcc.TOrders, lo, hi, func(_, payload []byte) bool {
		row, derr := oS.DecodeRow(payload)
		if derr != nil {
			h.violate(fmt.Sprintf("htap@%v orders[%d,%d]: undecodable row: %v", p.Now(), w, d, derr))
			return false
		}
		o := row[2].(int64)
		if o >= nextO {
			h.violate(fmt.Sprintf("htap@%v orders[%d,%d] snap %d: order %d visible but D_NEXT_O_ID=%d",
				p.Now(), w, d, s.Txn.Begin, o, nextO))
		}
		if _, dup := olCnt[o]; dup {
			h.violate(fmt.Sprintf("htap@%v orders[%d,%d] snap %d: order %d returned twice (doubly owned)",
				p.Now(), w, d, s.Txn.Begin, o))
		}
		olCnt[o] = row[6].(int64)
		rows++
		return true
	})
	if err != nil {
		return false
	}

	olLo, _ := olS.EncodeKeyPrefix2(w, d)
	olHi, _ := olS.EncodeKeyPrefix2(w, d+1)
	lineCount := map[int64]int64{}
	err = s.Scan(p, tpcc.TOrderLine, olLo, olHi, func(_, payload []byte) bool {
		row, derr := olS.DecodeRow(payload)
		if derr != nil {
			h.violate(fmt.Sprintf("htap@%v order_line[%d,%d]: undecodable row: %v", p.Now(), w, d, derr))
			return false
		}
		lineCount[row[2].(int64)]++
		rows++
		return true
	})
	if err != nil {
		return false
	}
	orderIDs := make([]int64, 0, len(olCnt))
	for o := range olCnt {
		orderIDs = append(orderIDs, o)
	}
	sortInt64s(orderIDs)
	for _, o := range orderIDs {
		if got, want := lineCount[o], olCnt[o]; got != want {
			h.violate(fmt.Sprintf("htap@%v order_line[%d,%d] snap %d: order %d has %d lines, O_OL_CNT=%d (torn NewOrder visible)",
				p.Now(), w, d, s.Txn.Begin, o, got, want))
		}
	}
	lineIDs := make([]int64, 0, len(lineCount))
	for o := range lineCount {
		lineIDs = append(lineIDs, o)
	}
	sortInt64s(lineIDs)
	for _, o := range lineIDs {
		if _, ok := olCnt[o]; !ok {
			h.violate(fmt.Sprintf("htap@%v order_line[%d,%d] snap %d: %d lines for order %d with no ORDERS row",
				p.Now(), w, d, s.Txn.Begin, lineCount[o], o))
		}
	}

	noLo, _ := noS.EncodeKeyPrefix2(w, d)
	noHi, _ := noS.EncodeKeyPrefix2(w, d+1)
	err = s.Scan(p, tpcc.TNewOrder, noLo, noHi, func(_, payload []byte) bool {
		row, derr := noS.DecodeRow(payload)
		if derr != nil {
			h.violate(fmt.Sprintf("htap@%v new_order[%d,%d]: undecodable row: %v", p.Now(), w, d, derr))
			return false
		}
		o := row[2].(int64)
		if _, ok := olCnt[o]; !ok {
			h.violate(fmt.Sprintf("htap@%v new_order[%d,%d] snap %d: pending order %d has no ORDERS row",
				p.Now(), w, d, s.Txn.Begin, o))
		}
		rows++
		return true
	})
	if err != nil {
		return false
	}
	h.rep.AnalyticsQueries++
	h.rep.AnalyticsRows += rows
	return true
}

// buildTPCCPlan derives the fault schedule from the seed alone. Every plan
// migrates warehouse 2 off node 0 and power-fails the migration target while
// the move is in flight, plus cfg.Faults random crash/stall/spike/migrate
// events.
func buildTPCCPlan(cfg Config, tcfg tpcc.Config) []faultEvent {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x79cc_c0de_79cc_c0de))
	window := cfg.Duration
	var plan []faultEvent

	migAt := window/3 + time.Duration(rng.Int63n(int64(window/6)))
	target := 2 // first node without initial data
	plan = append(plan, faultEvent{at: migAt, kind: faultMigrate, loK: 2, hiK: 3, target: target})
	plan = append(plan, faultEvent{
		at:   migAt + 30*time.Millisecond + time.Duration(rng.Int63n(int64(120*time.Millisecond))),
		kind: faultCrash,
		node: target,
		dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
	})
	// Every plan also power-fails the coordinator during the migration window
	// plus cfg.CoordFaults more times at random instants (see buildPlan).
	plan = append(plan, faultEvent{
		at:   migAt + 40*time.Millisecond + time.Duration(rng.Int63n(int64(150*time.Millisecond))),
		kind: faultCrashCoord,
		dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
	})
	for i := 0; i < cfg.CoordFaults; i++ {
		plan = append(plan, faultEvent{
			at:   window/10 + time.Duration(rng.Int63n(int64(window*8/10))),
			kind: faultCrashCoord,
			dur:  12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second))),
		})
	}
	// Guaranteed log-medium damage on the warehouse-hosting nodes: one torn
	// final frame, one bit-flipped boundary frame (see tornCrashEvents).
	plan = append(plan, tornCrashEvents(rng, window, 2)...)
	// Guaranteed full-disk-loss + acked-history-rot pairs (see buildPlan).
	for i := 0; i < cfg.DiskFaults; i++ {
		plan = append(plan, diskFaultEvents(rng, window, cfg.Nodes)...)
	}
	// Guaranteed mid-checkpoint power failures (see buildPlan).
	plan = append(plan, ckptCrashEvents(rng, window, cfg.Nodes, cfg.CkptFaults)...)
	for i := 0; i < cfg.Faults; i++ {
		at := window/10 + time.Duration(rng.Int63n(int64(window*8/10)))
		switch rng.Intn(8) {
		case 0:
			plan = append(plan, faultEvent{at: at, kind: faultCrash, node: rng.Intn(cfg.Nodes),
				dur: 12*time.Second + time.Duration(rng.Int63n(int64(10*time.Second)))})
		case 4:
			plan = append(plan, tornCrash(rng, at, faultCrashTorn, cfg.Nodes))
		case 5:
			plan = append(plan, tornCrash(rng, at, faultCrashFlip, cfg.Nodes))
		case 1:
			plan = append(plan, faultEvent{at: at, kind: faultDiskStall, node: rng.Intn(cfg.Nodes),
				disk: rng.Intn(3), extra: time.Duration(2+rng.Intn(8)) * time.Millisecond,
				dur: time.Duration(3+rng.Intn(5)) * time.Second})
		case 2:
			plan = append(plan, faultEvent{at: at, kind: faultNetSpike,
				extra: time.Duration(1+rng.Intn(4)) * time.Millisecond,
				dur:   time.Duration(2+rng.Intn(4)) * time.Second})
		case 3:
			// Move the last warehouse to the last node.
			plan = append(plan, faultEvent{at: at, kind: faultMigrate,
				loK: int64(tcfg.Warehouses), hiK: int64(tcfg.Warehouses) + 1, target: cfg.Nodes - 1})
		case 6:
			plan = append(plan, destroyDisk(rng, at, cfg.Nodes))
		case 7:
			plan = append(plan, rotAcked(rng, at, cfg.Nodes))
		}
	}
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].at < plan[j].at })
	return plan
}

// runner wires the TPC-C harness into the shared fault executor; its
// migrations move the warehouse range of every partitioned table.
func (h *tpccHarness) runner() *faultRunner {
	return &faultRunner{
		env:      h.env,
		c:        h.c,
		rep:      h.rep,
		logFault: h.logFault,
		violate:  h.violate,
		migrate: func(ev faultEvent, done func()) {
			h.env.Spawn("tpcc-chaos-migrate", func(mp *sim.Proc) {
				h.logFault("migration w[%d,%d) -> node %d starting", ev.loK, ev.hiK, ev.target)
				lo, hi := keycodec.Int64Key(ev.loK), keycodec.Int64Key(ev.hiK)
				failed := false
				for _, name := range tpcc.PartitionedTables() {
					if err := h.master.MigrateRange(mp, name, lo, hi, h.c.Nodes[ev.target]); err != nil {
						h.logFault("migration w[%d,%d) table %s aborted: %v", ev.loK, ev.hiK, name, err)
						failed = true
						break
					}
				}
				if !failed {
					h.logFault("migration w[%d,%d) -> node %d complete", ev.loK, ev.hiK, ev.target)
				}
				done()
			})
		},
	}
}

// checkTableRanges verifies a table's partition table is contiguous and
// covers the whole key space.
func (h *tpccHarness) checkTableRanges(name string) {
	tm, err := h.master.Table(name)
	if err != nil {
		h.violate(err.Error())
		return
	}
	entries := tm.Entries()
	if len(entries) == 0 {
		h.violate(fmt.Sprintf("%s: partition table empty", name))
		return
	}
	if entries[0].Low != nil {
		h.violate(fmt.Sprintf("%s: first range does not start at -inf", name))
	}
	if entries[len(entries)-1].High != nil {
		h.violate(fmt.Sprintf("%s: last range does not end at +inf", name))
	}
	for i := 1; i < len(entries); i++ {
		if string(entries[i-1].High) != string(entries[i].Low) {
			h.violate(fmt.Sprintf("%s: gap/overlap between entry %d and %d", name, i-1, i))
		}
	}
}

func (h *tpccHarness) stateHash(finalState string) string {
	d := sha256.New()
	for _, f := range h.rep.Faults {
		fmt.Fprintln(d, f)
	}
	fmt.Fprintf(d, "commits=%d aborts=%d failed=%d failovers=%d now=%d\n",
		h.rep.Commits, h.rep.Aborts, h.rep.FailedOps, h.rep.Failovers, h.env.Now())
	fmt.Fprintf(d, "rebuilds=%d scrubs=%d freads=%d disklosses=%d\n",
		h.rep.Rebuilds, h.rep.ScrubRepairs, h.rep.FollowerReads, h.rep.DiskLosses)
	fmt.Fprintf(d, "ckpts=%d ckptcrashes=%d bounded=%d replaybytes=%d rto=%d\n",
		h.rep.Checkpoints, h.rep.CkptCrashes, h.rep.BoundedRestarts, h.rep.ReplayBytes, h.rep.RecoveryTime)
	fmt.Fprintf(d, "htapq=%d htaprows=%d\n", h.rep.AnalyticsQueries, h.rep.AnalyticsRows)
	d.Write([]byte(finalState))
	return fmt.Sprintf("%x", d.Sum(nil))[:16]
}

// --- Oracle model ------------------------------------------------------------

type distKey struct{ w, d int64 }
type orderKey struct{ w, d, o int64 }
type stockKey struct{ w, i int64 }

type stockState struct {
	ytd    float64
	cnt    int64
	remote int64
}

// tpccModel is the harness's in-memory model of the warehouse invariants,
// fed exclusively by acknowledged transactions' Effects.
type tpccModel struct {
	cfg       tpcc.Config
	wYTD      map[int64]float64
	dYTD      map[distKey]float64
	nextOID   map[distKey]int64
	orders    map[orderKey]int64 // acknowledged NewOrders -> ol count
	newOrders map[orderKey]bool  // undelivered orders
	stock     map[stockKey]*stockState
	// earlyDelivered: orders an acknowledged Delivery removed before the
	// acknowledgment of the NewOrder that created them arrived. Group commit
	// wakes every committer of one flush batch at the same instant, so ack
	// order can invert commit-timestamp order; the engine still serialized
	// them (the Delivery read the committed order). Each entry must be
	// matched by a NewOrder ack before the run ends.
	earlyDelivered map[orderKey]bool
}

func newTPCCModel(cfg tpcc.Config) *tpccModel {
	m := &tpccModel{
		cfg:            cfg,
		wYTD:           map[int64]float64{},
		dYTD:           map[distKey]float64{},
		nextOID:        map[distKey]int64{},
		orders:         map[orderKey]int64{},
		newOrders:      map[orderKey]bool{},
		stock:          map[stockKey]*stockState{},
		earlyDelivered: map[orderKey]bool{},
	}
	O := cfg.InitialOrdersPerDist
	newOrderStart := O - O/3 + 1 // mirror of the generator's undelivered tail
	for w := int64(1); w <= int64(cfg.Warehouses); w++ {
		m.wYTD[w] = 300000.0
		for d := int64(1); d <= int64(cfg.DistrictsPerW); d++ {
			dk := distKey{w, d}
			m.dYTD[dk] = 30000.0
			m.nextOID[dk] = int64(O + 1)
			for o := int64(newOrderStart); o <= int64(O); o++ {
				m.newOrders[orderKey{w, d, o}] = true
			}
		}
	}
	return m
}

func (m *tpccModel) stockAt(k stockKey) *stockState {
	s := m.stock[k]
	if s == nil {
		s = &stockState{}
		m.stock[k] = s
	}
	return s
}

// apply folds one acknowledged transaction into the model.
func (m *tpccModel) apply(eff *tpcc.Effect, violate func(string)) {
	if eff == nil {
		return
	}
	switch eff.Type {
	case tpcc.TxnNewOrder:
		ok := orderKey{eff.W, eff.D, eff.OID}
		if _, dup := m.orders[ok]; dup {
			violate(fmt.Sprintf("oracle: duplicate acknowledged order %v (D_NEXT_O_ID not serialized)", ok))
			return
		}
		m.orders[ok] = eff.OlCnt
		if m.earlyDelivered[ok] {
			// A Delivery of this order acked first (same flush batch); the
			// pending entry was already consumed.
			delete(m.earlyDelivered, ok)
		} else {
			m.newOrders[ok] = true
		}
		dk := distKey{eff.W, eff.D}
		if next := eff.OID + 1; next > m.nextOID[dk] {
			m.nextOID[dk] = next
		}
		for _, l := range eff.Lines {
			s := m.stockAt(stockKey{l.SupplyW, l.Item})
			s.ytd += float64(l.Qty)
			s.cnt++
			if l.SupplyW != eff.W {
				s.remote++
			}
		}
	case tpcc.TxnPayment:
		m.wYTD[eff.W] += eff.Amount
		m.dYTD[distKey{eff.W, eff.D}] += eff.Amount
	case tpcc.TxnDelivery:
		for _, del := range eff.Delivered {
			ok := orderKey{eff.W, del.D, del.OID}
			if !m.newOrders[ok] {
				if _, acked := m.orders[ok]; !acked && del.OID > int64(m.cfg.InitialOrdersPerDist) && !m.earlyDelivered[ok] {
					// The creating NewOrder committed (the Delivery read it)
					// but its ack has not landed yet — remember the debt; the
					// NewOrder ack must settle it before the run ends.
					m.earlyDelivered[ok] = true
					continue
				}
				violate(fmt.Sprintf("oracle: order %v delivered twice or never pending", ok))
				continue
			}
			delete(m.newOrders, ok)
		}
	}
}

// settle reports any delivery debt left at the end of the run: an order a
// Delivery removed whose NewOrder ack never arrived means an unacknowledged
// transaction's effects were read — an atomicity breach.
func (m *tpccModel) settle(violate func(string)) {
	keys := make([]orderKey, 0, len(m.earlyDelivered))
	for ok := range m.earlyDelivered {
		keys = append(keys, ok)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.w != b.w {
			return a.w < b.w
		}
		if a.d != b.d {
			return a.d < b.d
		}
		return a.o < b.o
	})
	for _, ok := range keys {
		violate(fmt.Sprintf("oracle: order %v delivered but its NewOrder was never acknowledged", ok))
	}
}

// approxEqual compares monetary sums: acknowledgment order and commit order
// may differ, so float addition may associate differently.
func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-6*math.Max(1.0, math.Max(math.Abs(a), math.Abs(b)))
}

// finalCheck reads the cluster's end state and verifies every modeled
// invariant. It returns the canonical state dump for the run hash.
func (h *tpccHarness) finalCheck() string {
	var dump strings.Builder
	m := h.model
	h.env.Spawn("tpcc-chaos-final-check", func(p *sim.Proc) {
		home := h.c.Nodes[0]
		if home.Down() {
			h.violate("final check: node 0 still down")
			return
		}
		s := h.master.Begin(p, ccSnapshot, home)
		defer s.Abort(p)
		wS := h.dep.Schemas[tpcc.TWarehouse]
		dS := h.dep.Schemas[tpcc.TDistrict]
		oS := h.dep.Schemas[tpcc.TOrders]
		olS := h.dep.Schemas[tpcc.TOrderLine]
		noS := h.dep.Schemas[tpcc.TNewOrder]
		stS := h.dep.Schemas[tpcc.TStock]

		readRow := func(schema *table.Schema, tbl string, keyVals ...any) (table.Row, bool) {
			key, err := schema.EncodeKeyPrefix(keyVals...)
			if err != nil {
				h.violate(fmt.Sprintf("final: key %s %v: %v", tbl, keyVals, err))
				return nil, false
			}
			raw, ok, err := s.Get(p, tbl, key)
			if err != nil || !ok {
				h.violate(fmt.Sprintf("final: %s %v unreadable: ok=%v err=%v", tbl, keyVals, ok, err))
				return nil, false
			}
			row, derr := schema.DecodeRow(raw)
			if derr != nil {
				h.violate(fmt.Sprintf("final: %s %v undecodable: %v", tbl, keyVals, derr))
				return nil, false
			}
			return row, true
		}

		for w := int64(1); w <= int64(m.cfg.Warehouses); w++ {
			wRow, ok := readRow(wS, tpcc.TWarehouse, w)
			if !ok {
				continue
			}
			wYTD := wRow[3].(float64)
			if !approxEqual(wYTD, m.wYTD[w]) {
				h.violate(fmt.Sprintf("W_YTD[%d] = %.4f, oracle says %.4f (lost or phantom payment)", w, wYTD, m.wYTD[w]))
			}
			fmt.Fprintf(&dump, "w=%d ytd=%.4f\n", w, wYTD)
			dSum := 0.0
			for d := int64(1); d <= int64(m.cfg.DistrictsPerW); d++ {
				dk := distKey{w, d}
				dRow, ok := readRow(dS, tpcc.TDistrict, w, d)
				if !ok {
					continue
				}
				dYTD := dRow[4].(float64)
				dSum += dYTD
				if !approxEqual(dYTD, m.dYTD[dk]) {
					h.violate(fmt.Sprintf("D_YTD[%d,%d] = %.4f, oracle says %.4f", w, d, dYTD, m.dYTD[dk]))
				}
				if next := dRow[5].(int64); next != m.nextOID[dk] {
					h.violate(fmt.Sprintf("D_NEXT_O_ID[%d,%d] = %d, oracle says %d", w, d, next, m.nextOID[dk]))
				}
				h.checkDistrictOrders(p, s, oS, olS, noS, w, d, &dump)
			}
			if !approxEqual(dSum, wYTD) {
				h.violate(fmt.Sprintf("warehouse %d: sum(D_YTD)=%.4f != W_YTD=%.4f", w, dSum, wYTD))
			}
		}
		// Touched stock rows, in deterministic order.
		sks := make([]stockKey, 0, len(m.stock))
		for k := range m.stock {
			sks = append(sks, k)
		}
		sort.Slice(sks, func(i, j int) bool {
			if sks[i].w != sks[j].w {
				return sks[i].w < sks[j].w
			}
			return sks[i].i < sks[j].i
		})
		for _, sk := range sks {
			want := m.stock[sk]
			row, ok := readRow(stS, tpcc.TStock, sk.w, sk.i)
			if !ok {
				continue
			}
			if got := row[3].(float64); !approxEqual(got, want.ytd) {
				h.violate(fmt.Sprintf("S_YTD[%d,%d] = %.4f, oracle says %.4f (order line lost across partitions)",
					sk.w, sk.i, got, want.ytd))
			}
			if got := row[4].(int64); got != want.cnt {
				h.violate(fmt.Sprintf("S_ORDER_CNT[%d,%d] = %d, oracle says %d", sk.w, sk.i, got, want.cnt))
			}
			if got := row[5].(int64); got != want.remote {
				h.violate(fmt.Sprintf("S_REMOTE_CNT[%d,%d] = %d, oracle says %d", sk.w, sk.i, got, want.remote))
			}
			fmt.Fprintf(&dump, "stock=%d,%d ytd=%.1f cnt=%d\n", sk.w, sk.i, want.ytd, want.cnt)
		}
	})
	if err := h.env.Run(); err != nil {
		h.violate(fmt.Sprintf("final check crashed: %v", err))
	}
	return dump.String()
}

// checkDistrictOrders verifies one district's ORDERS / ORDER_LINE /
// NEW_ORDER contents against the model: acknowledged NewOrders (and only
// those) exist beyond the loaded range, each with its full line count, and
// NEW_ORDER holds exactly the undelivered set.
func (h *tpccHarness) checkDistrictOrders(p *sim.Proc, s *cluster.Session,
	oS, olS, noS *table.Schema, w, d int64, dump *strings.Builder) {
	m := h.model
	O := int64(m.cfg.InitialOrdersPerDist)

	lo, _ := oS.EncodeKeyPrefix2(w, d)
	hi, _ := oS.EncodeKeyPrefix2(w, d+1)
	gotOrders := map[int64]int64{} // o -> ol_cnt
	var orderIDs []int64
	err := s.Scan(p, tpcc.TOrders, lo, hi, func(_, payload []byte) bool {
		row, derr := oS.DecodeRow(payload)
		if derr != nil {
			h.violate(fmt.Sprintf("orders[%d,%d]: undecodable row: %v", w, d, derr))
			return false
		}
		o := row[2].(int64)
		if _, dup := gotOrders[o]; dup {
			h.violate(fmt.Sprintf("orders[%d,%d]: order %d returned twice (doubly owned)", w, d, o))
		}
		gotOrders[o] = row[6].(int64)
		orderIDs = append(orderIDs, o)
		return true
	})
	if err != nil {
		h.violate(fmt.Sprintf("orders[%d,%d] scan failed: %v", w, d, err))
		return
	}
	// Loaded orders must all survive; orders beyond them are exactly the
	// acknowledged NewOrders with their line counts.
	for o := int64(1); o <= O; o++ {
		if _, ok := gotOrders[o]; !ok {
			h.violate(fmt.Sprintf("orders[%d,%d]: loaded order %d lost", w, d, o))
		}
	}
	for _, o := range orderIDs {
		if o <= O {
			continue
		}
		want, acked := m.orders[orderKey{w, d, o}]
		if !acked {
			h.violate(fmt.Sprintf("orders[%d,%d]: order %d visible but never acknowledged (NewOrder atomicity)", w, d, o))
			continue
		}
		if gotOrders[o] != want {
			h.violate(fmt.Sprintf("orders[%d,%d]: order %d O_OL_CNT=%d, oracle says %d", w, d, o, gotOrders[o], want))
		}
	}
	acked := make([]int64, 0)
	for ok := range m.orders {
		if ok.w == w && ok.d == d {
			acked = append(acked, ok.o)
		}
	}
	sortInt64s(acked)
	for _, o := range acked {
		if _, ok := gotOrders[o]; !ok {
			h.violate(fmt.Sprintf("orders[%d,%d]: acknowledged order %d lost (durability)", w, d, o))
		}
	}

	// One ORDER_LINE scan per district: count lines per order.
	olLo, _ := olS.EncodeKeyPrefix2(w, d)
	olHi, _ := olS.EncodeKeyPrefix2(w, d+1)
	lineCount := map[int64]int64{}
	err = s.Scan(p, tpcc.TOrderLine, olLo, olHi, func(_, payload []byte) bool {
		row, derr := olS.DecodeRow(payload)
		if derr != nil {
			h.violate(fmt.Sprintf("order_line[%d,%d]: undecodable row: %v", w, d, derr))
			return false
		}
		lineCount[row[2].(int64)]++
		return true
	})
	if err != nil {
		h.violate(fmt.Sprintf("order_line[%d,%d] scan failed: %v", w, d, err))
		return
	}
	for _, o := range acked {
		if got, want := lineCount[o], m.orders[orderKey{w, d, o}]; got != want {
			h.violate(fmt.Sprintf("order_line[%d,%d]: order %d has %d lines, oracle says %d (partial install)",
				w, d, o, got, want))
		}
	}

	// NEW_ORDER must hold exactly the undelivered set.
	noLo, _ := noS.EncodeKeyPrefix2(w, d)
	noHi, _ := noS.EncodeKeyPrefix2(w, d+1)
	gotNO := map[int64]bool{}
	err = s.Scan(p, tpcc.TNewOrder, noLo, noHi, func(_, payload []byte) bool {
		row, derr := noS.DecodeRow(payload)
		if derr != nil {
			h.violate(fmt.Sprintf("new_order[%d,%d]: undecodable row: %v", w, d, derr))
			return false
		}
		o := row[2].(int64)
		if gotNO[o] {
			h.violate(fmt.Sprintf("new_order[%d,%d]: order %d returned twice", w, d, o))
		}
		gotNO[o] = true
		return true
	})
	if err != nil {
		h.violate(fmt.Sprintf("new_order[%d,%d] scan failed: %v", w, d, err))
		return
	}
	wantNO := make([]int64, 0)
	for ok := range m.newOrders {
		if ok.w == w && ok.d == d {
			wantNO = append(wantNO, ok.o)
		}
	}
	sortInt64s(wantNO)
	for _, o := range wantNO {
		if !gotNO[o] {
			h.violate(fmt.Sprintf("new_order[%d,%d]: undelivered order %d missing", w, d, o))
		}
	}
	if len(gotNO) != len(wantNO) {
		got := make([]int64, 0, len(gotNO))
		for o := range gotNO {
			got = append(got, o)
		}
		sortInt64s(got)
		for _, o := range got {
			if !m.newOrders[orderKey{w, d, o}] {
				h.violate(fmt.Sprintf("new_order[%d,%d]: order %d present but delivered or never acknowledged", w, d, o))
			}
		}
	}
	fmt.Fprintf(dump, "d=%d,%d next=%d orders=%d pending=%d\n", w, d, m.nextOID[distKey{w, d}], len(gotOrders), len(gotNO))
}

// Package storage implements the physical layer of WattDB following Fig. 4
// of the paper: fixed-size slotted pages grouped into segments, the unit of
// distribution among nodes. Page bytes are real — records and B*-tree nodes
// are encoded into them — while I/O timing is supplied by internal/hw.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageType tags the content of a page.
type PageType byte

const (
	PageFree PageType = iota
	PageLeaf
	PageInner
	PageMeta
)

// Page header layout (little-endian):
//
//	[0]     type
//	[1]     flags (unused)
//	[2:4]   slot count
//	[4:6]   cellStart: lowest byte offset used by cell data
//	[6:8]   fragmented (reclaimable) bytes
//	[8:12]  right sibling page number + 1 (0 = none)
//	[12:20] page LSN
//	[20:24] reserved
const (
	pageHeaderSize = 24
	slotSize       = 4
)

// Page is a byte-slice view of one slotted page. The slice must have been
// initialised by Init (or come from another Page).
type Page []byte

// Init formats the page with the given type and no slots.
func (p Page) Init(t PageType) {
	for i := range p {
		p[i] = 0
	}
	p[0] = byte(t)
	binary.LittleEndian.PutUint16(p[4:6], uint16(len(p)))
}

// Type returns the page type.
func (p Page) Type() PageType { return PageType(p[0]) }

// NumSlots returns the number of cells on the page.
func (p Page) NumSlots() int { return int(binary.LittleEndian.Uint16(p[2:4])) }

func (p Page) cellStart() int { return int(binary.LittleEndian.Uint16(p[4:6])) }
func (p Page) frag() int      { return int(binary.LittleEndian.Uint16(p[6:8])) }

func (p Page) setNumSlots(n int)  { binary.LittleEndian.PutUint16(p[2:4], uint16(n)) }
func (p Page) setCellStart(o int) { binary.LittleEndian.PutUint16(p[4:6], uint16(o)) }
func (p Page) setFrag(f int)      { binary.LittleEndian.PutUint16(p[6:8], uint16(f)) }

// RightSibling returns the leaf-chain successor page number, ok=false if none.
func (p Page) RightSibling() (PageNo, bool) {
	v := binary.LittleEndian.Uint32(p[8:12])
	if v == 0 {
		return 0, false
	}
	return PageNo(v - 1), true
}

// SetRightSibling links the page to its leaf-chain successor.
func (p Page) SetRightSibling(no PageNo) {
	binary.LittleEndian.PutUint32(p[8:12], uint32(no)+1)
}

// ClearRightSibling removes the leaf-chain link.
func (p Page) ClearRightSibling() { binary.LittleEndian.PutUint32(p[8:12], 0) }

// LSN returns the page LSN (recovery bookkeeping).
func (p Page) LSN() uint64 { return binary.LittleEndian.Uint64(p[12:20]) }

// SetLSN stores the page LSN.
func (p Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p[12:20], lsn) }

func (p Page) slotOff(i int) int { return pageHeaderSize + i*slotSize }

func (p Page) slot(i int) (off, length int) {
	so := p.slotOff(i)
	return int(binary.LittleEndian.Uint16(p[so : so+2])), int(binary.LittleEndian.Uint16(p[so+2 : so+4]))
}

func (p Page) setSlot(i, off, length int) {
	so := p.slotOff(i)
	binary.LittleEndian.PutUint16(p[so:so+2], uint16(off))
	binary.LittleEndian.PutUint16(p[so+2:so+4], uint16(length))
}

// Cell returns the bytes of slot i. The slice aliases the page; callers must
// copy before retaining.
func (p Page) Cell(i int) []byte {
	off, ln := p.slot(i)
	return p[off : off+ln]
}

// FreeSpace returns the bytes available for one new cell plus its slot,
// after compaction.
func (p Page) FreeSpace() int {
	return p.cellStart() - (pageHeaderSize + p.NumSlots()*slotSize) + p.frag()
}

// CanFit reports whether a cell of n bytes fits on the page.
func (p Page) CanFit(n int) bool { return p.FreeSpace() >= n+slotSize }

// InsertCellAt inserts cell at slot index i (shifting later slots up).
// It returns false if the page cannot fit the cell.
func (p Page) InsertCellAt(i int, cell []byte) bool {
	n := p.NumSlots()
	if i < 0 || i > n {
		panic(fmt.Sprintf("storage: insert at slot %d of %d", i, n))
	}
	if !p.CanFit(len(cell)) {
		return false
	}
	contiguous := p.cellStart() - (pageHeaderSize + n*slotSize)
	if contiguous < len(cell)+slotSize {
		p.compact()
	}
	// Shift slot directory entries [i, n) up by one.
	copy(p[p.slotOff(i+1):p.slotOff(n+1)], p[p.slotOff(i):p.slotOff(n)])
	off := p.cellStart() - len(cell)
	copy(p[off:], cell)
	p.setCellStart(off)
	p.setSlot(i, off, len(cell))
	p.setNumSlots(n + 1)
	return true
}

// DeleteCellAt removes slot i, leaving its cell bytes as fragmentation.
func (p Page) DeleteCellAt(i int) {
	n := p.NumSlots()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("storage: delete slot %d of %d", i, n))
	}
	_, ln := p.slot(i)
	copy(p[p.slotOff(i):p.slotOff(n-1)], p[p.slotOff(i+1):p.slotOff(n)])
	p.setNumSlots(n - 1)
	p.setFrag(p.frag() + ln)
}

// ReplaceCellAt replaces the cell at slot i, returning false if the new cell
// cannot fit.
func (p Page) ReplaceCellAt(i int, cell []byte) bool {
	off, ln := p.slot(i)
	if len(cell) <= ln {
		copy(p[off:off+len(cell)], cell)
		p.setSlot(i, off, len(cell))
		p.setFrag(p.frag() + ln - len(cell))
		return true
	}
	// Delete + reinsert at the same index.
	n := p.NumSlots()
	contiguousAfterDelete := p.cellStart() - (pageHeaderSize + (n-1)*slotSize)
	if contiguousAfterDelete+p.frag()+ln < len(cell)+slotSize {
		return false
	}
	p.DeleteCellAt(i)
	if !p.InsertCellAt(i, cell) {
		panic("storage: replace lost cell after space check")
	}
	return true
}

// compact rewrites all cells flush against the page end, clearing
// fragmentation.
func (p Page) compact() {
	n := p.NumSlots()
	cells := make([][]byte, n)
	for i := 0; i < n; i++ {
		c := p.Cell(i)
		cp := make([]byte, len(c))
		copy(cp, c)
		cells[i] = cp
	}
	end := len(p)
	for i := n - 1; i >= 0; i-- {
		end -= len(cells[i])
		copy(p[end:], cells[i])
		p.setSlot(i, end, len(cells[i]))
	}
	p.setCellStart(end)
	p.setFrag(0)
}

// UsedBytes returns the bytes consumed by the header, slots, and live cells.
func (p Page) UsedBytes() int {
	used := pageHeaderSize + p.NumSlots()*slotSize
	for i := 0; i < p.NumSlots(); i++ {
		_, ln := p.slot(i)
		used += ln
	}
	return used
}

package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newPage(t *testing.T, size int) Page {
	t.Helper()
	p := Page(make([]byte, size))
	p.Init(PageLeaf)
	return p
}

func TestPageInsertAndRead(t *testing.T) {
	p := newPage(t, 512)
	if !p.InsertCellAt(0, []byte("hello")) {
		t.Fatal("insert failed")
	}
	if !p.InsertCellAt(1, []byte("world")) {
		t.Fatal("insert failed")
	}
	if !p.InsertCellAt(1, []byte("mid")) {
		t.Fatal("insert failed")
	}
	want := []string{"hello", "mid", "world"}
	if p.NumSlots() != 3 {
		t.Fatalf("slots = %d", p.NumSlots())
	}
	for i, w := range want {
		if string(p.Cell(i)) != w {
			t.Fatalf("cell %d = %q, want %q", i, p.Cell(i), w)
		}
	}
}

func TestPageDeleteShiftsSlots(t *testing.T) {
	p := newPage(t, 512)
	for i := 0; i < 5; i++ {
		p.InsertCellAt(i, []byte{byte('a' + i)})
	}
	p.DeleteCellAt(2) // remove 'c'
	want := "abde"
	if p.NumSlots() != 4 {
		t.Fatalf("slots = %d", p.NumSlots())
	}
	for i := 0; i < 4; i++ {
		if p.Cell(i)[0] != want[i] {
			t.Fatalf("after delete, cell %d = %c, want %c", i, p.Cell(i)[0], want[i])
		}
	}
}

func TestPageFillsAndRejects(t *testing.T) {
	p := newPage(t, 256)
	cell := bytes.Repeat([]byte{0xAB}, 20)
	n := 0
	for p.InsertCellAt(n, cell) {
		n++
	}
	if n == 0 {
		t.Fatal("no cells fit")
	}
	if p.CanFit(len(cell)) {
		t.Fatal("CanFit disagrees with failed insert")
	}
	// All inserted cells intact.
	for i := 0; i < n; i++ {
		if !bytes.Equal(p.Cell(i), cell) {
			t.Fatalf("cell %d corrupted", i)
		}
	}
}

func TestPageCompactionReclaimsFragmentation(t *testing.T) {
	p := newPage(t, 256)
	cell := bytes.Repeat([]byte{1}, 40)
	var n int
	for p.InsertCellAt(n, cell) {
		n++
	}
	// Delete every other cell, then a big cell must fit via compaction.
	deleted := 0
	for i := n - 1; i >= 0; i -= 2 {
		p.DeleteCellAt(i)
		deleted++
	}
	big := bytes.Repeat([]byte{2}, 40*deleted-slotSize)
	if !p.InsertCellAt(0, big) {
		t.Fatalf("compaction failed to reclaim %d bytes (free=%d)", len(big), p.FreeSpace())
	}
	if !bytes.Equal(p.Cell(0), big) {
		t.Fatal("big cell corrupted after compaction")
	}
}

func TestPageReplaceCell(t *testing.T) {
	p := newPage(t, 256)
	p.InsertCellAt(0, []byte("aaaa"))
	p.InsertCellAt(1, []byte("bbbb"))
	if !p.ReplaceCellAt(0, []byte("cc")) { // shrink in place
		t.Fatal("shrink replace failed")
	}
	if string(p.Cell(0)) != "cc" || string(p.Cell(1)) != "bbbb" {
		t.Fatalf("cells = %q, %q", p.Cell(0), p.Cell(1))
	}
	if !p.ReplaceCellAt(0, bytes.Repeat([]byte{7}, 50)) { // grow
		t.Fatal("grow replace failed")
	}
	if len(p.Cell(0)) != 50 || string(p.Cell(1)) != "bbbb" {
		t.Fatal("grow replace corrupted page")
	}
}

func TestPageSiblingAndLSN(t *testing.T) {
	p := newPage(t, 128)
	if _, ok := p.RightSibling(); ok {
		t.Fatal("fresh page has sibling")
	}
	p.SetRightSibling(0) // page number 0 must be representable
	if sib, ok := p.RightSibling(); !ok || sib != 0 {
		t.Fatalf("sibling = %v, %v", sib, ok)
	}
	p.SetRightSibling(77)
	if sib, ok := p.RightSibling(); !ok || sib != 77 {
		t.Fatalf("sibling = %v, %v", sib, ok)
	}
	p.ClearRightSibling()
	if _, ok := p.RightSibling(); ok {
		t.Fatal("sibling not cleared")
	}
	p.SetLSN(1 << 40)
	if p.LSN() != 1<<40 {
		t.Fatalf("lsn = %d", p.LSN())
	}
}

// Property: a page behaves like a slice of cells under random inserts and
// deletes.
func TestPageModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Page(make([]byte, 1024))
		p.Init(PageLeaf)
		var model [][]byte
		for step := 0; step < 200; step++ {
			if rng.Intn(3) != 0 || len(model) == 0 {
				cell := make([]byte, 1+rng.Intn(30))
				rng.Read(cell)
				i := rng.Intn(len(model) + 1)
				ok := p.InsertCellAt(i, cell)
				if ok {
					model = append(model[:i], append([][]byte{cell}, model[i:]...)...)
				}
			} else {
				i := rng.Intn(len(model))
				p.DeleteCellAt(i)
				model = append(model[:i], model[i+1:]...)
			}
			if p.NumSlots() != len(model) {
				return false
			}
		}
		for i, want := range model {
			if !bytes.Equal(p.Cell(i), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentAllocFree(t *testing.T) {
	s := NewSegment(7, 128, 8)
	var nos []PageNo
	for {
		no, ok := s.AllocPage()
		if !ok {
			break
		}
		nos = append(nos, no)
	}
	if len(nos) != 7 { // page 0 reserved
		t.Fatalf("allocated %d pages, want 7", len(nos))
	}
	if !s.Full() {
		t.Fatal("segment should be full")
	}
	s.FreePage(nos[3])
	no, ok := s.AllocPage()
	if !ok || no != nos[3] {
		t.Fatalf("realloc = %v, %v; want %v", no, ok, nos[3])
	}
}

func TestSegmentPageDataPersists(t *testing.T) {
	s := NewSegment(1, 128, 4)
	no, _ := s.AllocPage()
	p := s.Page(no)
	p.Init(PageLeaf)
	p.InsertCellAt(0, []byte("persisted"))
	if string(s.Page(no).Cell(0)) != "persisted" {
		t.Fatal("page data lost")
	}
}

func TestSegmentCloneIsDeep(t *testing.T) {
	s := NewSegment(1, 128, 4)
	no, _ := s.AllocPage()
	p := s.Page(no)
	p.Init(PageLeaf)
	p.InsertCellAt(0, []byte("orig"))
	s.LowKey = []byte{1}
	s.TreeRoot = no

	c := s.Clone(2)
	if c.ID != 2 || c.TreeRoot != no || !bytes.Equal(c.LowKey, []byte{1}) {
		t.Fatal("clone metadata wrong")
	}
	// Mutate the original; the clone must not see it.
	p.ReplaceCellAt(0, []byte("mut!"))
	if string(c.Page(no).Cell(0)) != "orig" {
		t.Fatal("clone shares page bytes with original")
	}
}

func TestSegmentAccounting(t *testing.T) {
	s := NewSegment(1, 256, 16)
	if s.Bytes() != 0 {
		t.Fatalf("empty segment bytes = %d", s.Bytes())
	}
	no, _ := s.AllocPage()
	s.Page(no).Init(PageLeaf)
	if s.Bytes() != 256 {
		t.Fatalf("bytes = %d, want 256", s.Bytes())
	}
	if s.UsedPages() != 1 {
		t.Fatalf("used = %d", s.UsedPages())
	}
}

func TestPageInsertKeepsSortedOrderUsage(t *testing.T) {
	// Exercise the typical B-tree usage pattern: insert keys at their sort
	// position, verify ordering via the slot directory.
	p := newPage(t, 2048)
	keys := rand.New(rand.NewSource(5)).Perm(40)
	var inserted []int
	for _, k := range keys {
		cell := []byte(fmt.Sprintf("%04d", k))
		i := sort.SearchInts(inserted, k)
		if !p.InsertCellAt(i, cell) {
			t.Fatalf("insert %d failed", k)
		}
		inserted = append(inserted[:i], append([]int{k}, inserted[i:]...)...)
	}
	for i := 1; i < p.NumSlots(); i++ {
		if bytes.Compare(p.Cell(i-1), p.Cell(i)) >= 0 {
			t.Fatalf("cells out of order at %d", i)
		}
	}
}

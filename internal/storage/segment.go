package storage

import (
	"bytes"
	"fmt"
)

// SegID identifies a segment cluster-wide. IDs are issued by the master's
// catalog and never reused.
type SegID uint64

// PageNo addresses a page within a segment. All page references inside a
// segment (B*-tree child pointers, leaf chains) are segment-relative, which
// is what makes segments self-contained and freely movable between nodes —
// the core mechanism behind physiological partitioning (Sect. 4.3).
type PageNo uint32

// PageID names a page cluster-wide.
type PageID struct {
	Seg  SegID
	Page PageNo
}

// String formats the page ID for diagnostics.
func (id PageID) String() string { return fmt.Sprintf("%d:%d", id.Seg, id.Page) }

// Segment is the unit of distribution in the storage subsystem: a fixed
// number of consecutively stored pages (4096 × 8 KB = 32 MB in the paper).
// Pages are allocated lazily so sparsely used segments stay cheap.
type Segment struct {
	ID       SegID
	pageSize int
	capacity int
	pages    [][]byte
	free     []PageNo
	next     PageNo

	// TreeRoot is the root page of the segment-local B*-tree (0 = none;
	// page 0 is reserved so 0 can mean "unset").
	TreeRoot PageNo
	// LowKey and HighKey bound the keys stored in the segment when it
	// serves as a physiological mini-partition. HighKey is exclusive;
	// nil HighKey means unbounded.
	LowKey, HighKey []byte
}

// NewSegment creates an empty segment with the given geometry.
func NewSegment(id SegID, pageSize, capacity int) *Segment {
	if capacity < 2 {
		panic("storage: segment needs at least 2 pages")
	}
	return &Segment{
		ID:       id,
		pageSize: pageSize,
		capacity: capacity,
		pages:    make([][]byte, capacity),
		next:     1, // page 0 reserved
	}
}

// PageSize returns the segment's page size in bytes.
func (s *Segment) PageSize() int { return s.pageSize }

// Capacity returns the number of page slots.
func (s *Segment) Capacity() int { return s.capacity }

// UsedPages returns the number of allocated (live) pages.
func (s *Segment) UsedPages() int { return int(s.next) - 1 - len(s.free) }

// Bytes returns the segment's allocated size in bytes, the amount shipped
// when the segment moves between nodes.
func (s *Segment) Bytes() int64 { return int64(s.UsedPages()) * int64(s.pageSize) }

// Full reports whether the segment has no free page slots left.
func (s *Segment) Full() bool { return len(s.free) == 0 && int(s.next) >= s.capacity }

// AllocPage allocates a zeroed page and returns its number, or ok=false if
// the segment is full.
func (s *Segment) AllocPage() (PageNo, bool) {
	if n := len(s.free); n > 0 {
		no := s.free[n-1]
		s.free = s.free[:n-1]
		p := s.pages[no]
		for i := range p {
			p[i] = 0
		}
		return no, true
	}
	if int(s.next) >= s.capacity {
		return 0, false
	}
	no := s.next
	s.next++
	s.pages[no] = make([]byte, s.pageSize)
	return no, true
}

// FreePage returns a page to the segment's freelist.
func (s *Segment) FreePage(no PageNo) {
	if no == 0 || int(no) >= int(s.next) || s.pages[no] == nil {
		panic(fmt.Sprintf("storage: free of invalid page %d", no))
	}
	s.free = append(s.free, no)
}

// Page returns the raw bytes of page no. It panics on unallocated pages:
// that is always an engine bug, not a user error.
func (s *Segment) Page(no PageNo) Page {
	p := s.pages[no]
	if p == nil {
		panic(fmt.Sprintf("storage: access to unallocated page %v:%d", s.ID, no))
	}
	return p
}

// Allocated reports whether page no holds data.
func (s *Segment) Allocated(no PageNo) bool {
	return int(no) < len(s.pages) && s.pages[no] != nil
}

// Clone deep-copies the segment, including page bytes and key bounds. Used
// when a segment is shipped to another node: the receiver gets an
// independent copy while the sender retains the original for in-flight
// readers, exactly as the paper's movement protocol requires.
func (s *Segment) Clone(newID SegID) *Segment {
	c := &Segment{
		ID:       newID,
		pageSize: s.pageSize,
		capacity: s.capacity,
		pages:    make([][]byte, s.capacity),
		free:     append([]PageNo(nil), s.free...),
		next:     s.next,
		TreeRoot: s.TreeRoot,
		LowKey:   bytes.Clone(s.LowKey),
		HighKey:  bytes.Clone(s.HighKey),
	}
	for i, p := range s.pages {
		if p != nil {
			c.pages[i] = bytes.Clone(p)
		}
	}
	return c
}

// UsedBytes sums live cell bytes across allocated pages (storage-footprint
// metric for Fig. 3).
func (s *Segment) UsedBytes() int64 {
	var total int64
	for no := PageNo(1); no < s.next; no++ {
		if s.pages[no] != nil {
			total += int64(Page(s.pages[no]).UsedBytes())
		}
	}
	return total
}

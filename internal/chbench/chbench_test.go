package chbench

import (
	"math"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/exec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/tpcc"
)

// deploy builds a small TPC-C deployment split across two data nodes (plus a
// spare), optionally with data replication so follower snapshot reads can
// serve the analytics scans.
func deploy(t *testing.T, dataReplicas int) (*sim.Env, *cluster.Cluster, *tpcc.Deployment) {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.DataReplicas = dataReplicas
	c := cluster.New(env, cfg)
	for _, n := range c.Nodes[1:] {
		n.HW.ForceActive()
	}
	tcfg := tpcc.DefaultConfig(2)
	tcfg.DistrictsPerW = 4
	tcfg.CustomersPerDistrict = 20
	tcfg.Items = 60
	tcfg.InitialOrdersPerDist = 20
	dep, err := tpcc.Deploy(c.Master, tcfg, table.Physiological, []tpcc.WarehouseRange{
		{FromW: 1, ToW: 1, Owner: c.Nodes[0]},
		{FromW: 2, ToW: 2, Owner: c.Nodes[1]},
	}, c.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("load", func(p *sim.Proc) {
		if err := dep.Load(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dataReplicas > 0 {
		c.SetupReplicationDrain()
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return env, c, dep
}

// refData is the raw deployment content, scanned once per test through a
// plain session — the reference the query plans are checked against.
type refData struct {
	orders, lines, stock []table.Row
}

func loadRef(t *testing.T, p *sim.Proc, c *cluster.Cluster, dep *tpcc.Deployment) *refData {
	t.Helper()
	ref := &refData{}
	s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
	defer s.Abort(p)
	read := func(tbl string, dst *[]table.Row) {
		schema := dep.Schemas[tbl]
		if err := s.Scan(p, tbl, nil, nil, func(_, payload []byte) bool {
			row, err := schema.DecodeRow(payload)
			if err != nil {
				t.Error(err)
				return false
			}
			*dst = append(*dst, row)
			return true
		}); err != nil {
			t.Error(err)
		}
	}
	read(tpcc.TOrders, &ref.orders)
	read(tpcc.TOrderLine, &ref.lines)
	read(tpcc.TStock, &ref.stock)
	return ref
}

type agg struct {
	count int64
	sum   float64
}

// groupsOf renders a [group, count, sum] result set into a comparable map.
func groupsOf(t *testing.T, rows []table.Row) map[any]agg {
	t.Helper()
	out := make(map[any]agg, len(rows))
	for _, r := range rows {
		out[r[0]] = agg{count: r[1].(int64), sum: r[2].(float64)}
	}
	return out
}

func requireGroups(t *testing.T, name string, got, want map[any]agg) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d groups, want %d", name, len(got), len(want))
		return
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing group %v", name, k)
			continue
		}
		if g.count != w.count || math.Abs(g.sum-w.sum) > 1e-6 {
			t.Errorf("%s: group %v = (%d, %f), want (%d, %f)", name, k, g.count, g.sum, w.count, w.sum)
		}
	}
}

// TestQueriesMatchReference runs every query in the suite on a quiescent
// deployment and checks the result sets against aggregates computed from a
// raw scan of the same tables.
func TestQueriesMatchReference(t *testing.T) {
	env, c, dep := deploy(t, 0)
	defer env.Close()
	r := &Runner{Dep: dep, Node: c.Nodes[2].HW, CPUPerRow: 200 * time.Nanosecond, Vector: 32}
	queries := r.Queries()
	byName := map[string]Query{}
	for _, q := range queries {
		byName[q.Name] = q
	}
	if len(queries) < 5 {
		t.Fatalf("suite has %d queries, want at least 5", len(queries))
	}
	env.Spawn("check", func(p *sim.Proc) {
		ref := loadRef(t, p, c, dep)

		run := func(name string) []table.Row {
			q, ok := byName[name]
			if !ok {
				t.Fatalf("no query %q", name)
			}
			sess := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[2])
			defer sess.Abort(p)
			rows, err := exec.Collect(p, q.Plan(sess))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return rows
		}

		// lineitem-agg: count and revenue per ol_number.
		want := map[any]agg{}
		for _, l := range ref.lines {
			a := want[l[3]]
			a.count++
			a.sum += l[7].(float64)
			want[l[3]] = a
		}
		requireGroups(t, "lineitem-agg", groupsOf(t, run("lineitem-agg")), want)

		// carrier-dist: orders and total line count per carrier.
		want = map[any]agg{}
		for _, o := range ref.orders {
			a := want[o[5]]
			a.count++
			a.sum += float64(o[6].(int64))
			want[o[5]] = a
		}
		requireGroups(t, "carrier-dist", groupsOf(t, run("carrier-dist")), want)

		// cust-revenue / carrier-revenue: order_line joined to its order.
		type okey struct{ w, d, o int64 }
		orderOf := map[okey]table.Row{}
		for _, o := range ref.orders {
			orderOf[okey{o[0].(int64), o[1].(int64), o[2].(int64)}] = o
		}
		wantCust, wantCarrier := map[any]agg{}, map[any]agg{}
		for _, l := range ref.lines {
			o, ok := orderOf[okey{l[0].(int64), l[1].(int64), l[2].(int64)}]
			if !ok {
				t.Fatalf("order line %v has no order", l[:4])
			}
			for col, m := range map[int]map[any]agg{3: wantCust, 5: wantCarrier} {
				a := m[o[col]]
				a.count++
				a.sum += l[7].(float64)
				m[o[col]] = a
			}
		}
		requireGroups(t, "cust-revenue", groupsOf(t, run("cust-revenue")), wantCust)
		requireGroups(t, "carrier-revenue", groupsOf(t, run("carrier-revenue")), wantCarrier)

		// item-flow: every line matches exactly one stock row.
		want = map[any]agg{}
		stockKeys := map[[2]int64]bool{}
		for _, s := range ref.stock {
			stockKeys[[2]int64{s[0].(int64), s[1].(int64)}] = true
		}
		for _, l := range ref.lines {
			if !stockKeys[[2]int64{l[5].(int64), l[4].(int64)}] {
				continue
			}
			a := want[l[4]]
			a.count++
			a.sum += float64(l[6].(int64))
			want[l[4]] = a
		}
		requireGroups(t, "item-flow", groupsOf(t, run("item-flow")), want)

		// top-amounts: ten rows, none smaller than the 10th-largest amount.
		amounts := run("top-amounts")
		if len(amounts) != 10 {
			t.Fatalf("top-amounts returned %d rows, want 10", len(amounts))
		}
		var all []float64
		for _, l := range ref.lines {
			all = append(all, l[7].(float64))
		}
		// Selection check: the returned amounts are the 10 largest.
		for i := 1; i < len(amounts); i++ {
			if amounts[i][7].(float64) > amounts[i-1][7].(float64) {
				t.Fatalf("top-amounts not descending at %d", i)
			}
		}
		bigger := 0
		for _, a := range all {
			if a > amounts[9][7].(float64) {
				bigger++
			}
		}
		if bigger > 9 {
			t.Fatalf("top-amounts missed %d larger amounts", bigger-9)
		}

		// top-customers: five rows, descending revenue, matching the
		// reference's best sums.
		top := run("top-customers")
		if len(top) != 5 {
			t.Fatalf("top-customers returned %d rows, want 5", len(top))
		}
		for i, r := range top {
			w := wantCust[r[0]]
			if math.Abs(r[2].(float64)-w.sum) > 1e-6 {
				t.Errorf("top-customers row %d: sum %f, want %f", i, r[2].(float64), w.sum)
			}
		}

		// undelivered: orders with carrier 0 per district.
		wantU := map[any]agg{}
		for _, o := range ref.orders {
			if o[5].(int64) != 0 {
				continue
			}
			a := wantU[o[1]]
			a.count++
			wantU[o[1]] = a
		}
		gotU := map[any]agg{}
		for _, r := range run("undelivered") {
			gotU[r[0]] = agg{count: r[1].(int64)}
		}
		requireGroups(t, "undelivered", gotU, wantU)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelAggMatchesSessionAgg checks the partition-parallel Q1 plan
// (exchange over owner-placed scans, projection pushed below the wire)
// returns the same groups as the session-based plan.
func TestParallelAggMatchesSessionAgg(t *testing.T) {
	env, c, dep := deploy(t, 0)
	defer env.Close()
	r := &Runner{Dep: dep, Node: c.Nodes[2].HW, CPUPerRow: 200 * time.Nanosecond, Vector: 32}
	env.Spawn("check", func(p *sim.Proc) {
		sess := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[2])
		defer sess.Abort(p)
		var sessionRows []table.Row
		for _, q := range r.Queries() {
			if q.Name != "lineitem-agg" {
				continue
			}
			rows, err := exec.Collect(p, q.Plan(sess))
			if err != nil {
				t.Fatal(err)
			}
			sessionRows = rows
		}
		txn := c.Master.Oracle.Begin(cc.SnapshotIsolation)
		plan, err := r.ParallelLineitemAgg(c.Master, txn, c.Nodes[2])
		if err != nil {
			t.Fatal(err)
		}
		parallelRows, err := exec.Collect(p, plan)
		if err != nil {
			t.Fatal(err)
		}
		requireGroups(t, "parallel-lineitem-agg", groupsOf(t, parallelRows), groupsOf(t, sessionRows))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestOffloadedSuiteUsesFollowerReads runs the suite from a spare node on a
// replicated deployment and checks the scans were actually served by
// follower replicas — the offloading path the HTAP figure measures.
func TestOffloadedSuiteUsesFollowerReads(t *testing.T) {
	env, c, dep := deploy(t, 2)
	defer env.Close()
	spare := c.Nodes[3]
	r := &Runner{Dep: dep, Node: spare.HW, CPUPerRow: 200 * time.Nanosecond, Vector: 32}
	env.Spawn("analytics", func(p *sim.Proc) {
		for _, q := range r.Queries() {
			sess := c.Master.Begin(p, cc.SnapshotIsolation, spare)
			if _, err := exec.Collect(p, q.Plan(sess)); err != nil {
				t.Errorf("%s: %v", q.Name, err)
			}
			sess.Abort(p)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if _, _, followerReads, _ := c.ReplicationStats(); followerReads == 0 {
		t.Fatal("offloaded suite never hit a follower replica")
	}
}

// Package chbench is a CH-benCHmark-style analytics workload over the live
// TPC-C schema: a handful of read-only queries — joins of orders,
// order-lines, and stock, group-bys, top-k — built from the vectorised
// executor's operators and run against a snapshot-isolation session while
// OLTP traffic keeps committing. The paper's offloading experiment (Fig. 2)
// needs exactly this shape: the same query suite is cheap to run co-located
// with the OLTP home node, offloaded to a spare node (where PR 7's follower
// snapshot reads keep the scans off the primaries), or partition-parallel
// through the exchange operator.
package chbench

import (
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/exec"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/tpcc"
)

// SessionScan adapts a cluster session range scan to the exec.Operator
// interface. It is the analytics path's table access: Session.Scan routes
// each range entry to its owner — or to a follower replica when the session
// qualifies for snapshot offloading — so the same query plan measures
// co-located and offloaded execution without changes. The scan is blocking:
// Open drains the range into an accumulated batch (columnar decode), Next
// streams it in Vector-sized slices. Output is in key order, declared via
// the Ordered metadata so merge joins can consume scans directly.
type SessionScan struct {
	Sess   *cluster.Session
	Table  string
	Schema *table.Schema
	Lo, Hi []byte
	Vector int

	acc       *table.Batch
	out       *table.Batch
	pos       int
	emit      func(k, payload []byte) bool
	decodeErr error
}

// Open runs the scan and buffers the decoded rows.
func (s *SessionScan) Open(p *sim.Proc) error {
	if s.Vector <= 0 {
		s.Vector = 1
	}
	if s.acc == nil {
		s.acc = table.NewBatch(s.Schema)
		s.out = table.NewBatch(s.Schema)
		s.emit = func(k, payload []byte) bool {
			if err := s.Schema.AppendDecoded(s.acc, payload); err != nil {
				s.decodeErr = err
				return false
			}
			return true
		}
	}
	s.acc.Reset()
	s.pos, s.decodeErr = 0, nil
	if err := s.Sess.Scan(p, s.Table, s.Lo, s.Hi, s.emit); err != nil {
		return err
	}
	return s.decodeErr
}

// Next streams the buffered rows.
func (s *SessionScan) Next(p *sim.Proc) (*table.Batch, error) {
	if s.pos >= s.acc.Len() {
		return nil, nil
	}
	end := s.pos + s.Vector
	if end > s.acc.Len() {
		end = s.acc.Len()
	}
	s.out.Reset()
	for i := s.pos; i < end; i++ {
		s.out.AppendFrom(s.acc, i)
	}
	s.pos = end
	return s.out, nil
}

// Close releases the buffered rows.
func (s *SessionScan) Close(p *sim.Proc) {
	if s.acc != nil {
		s.acc.Reset()
	}
}

// Ordering: session scans deliver rows in primary-key order.
func (s *SessionScan) Ordering() []int {
	ord := make([]int, s.Schema.KeyCols)
	for i := range ord {
		ord[i] = i
	}
	return ord
}

// Runner builds the query suite against one deployment. Node is where the
// query's operators charge their CPU — the analytics home; the placement of
// the underlying reads is the session's business (owner or follower).
type Runner struct {
	Dep       *tpcc.Deployment
	Node      *hw.Node
	CPUPerRow time.Duration
	Vector    int
}

// Query is one named analytics plan, built fresh per session so each
// execution reads its own snapshot.
type Query struct {
	Name string
	Plan func(sess *cluster.Session) exec.Operator
}

func (r *Runner) vector() int {
	if r.Vector > 0 {
		return r.Vector
	}
	return 64
}

func (r *Runner) scan(sess *cluster.Session, tbl string) *SessionScan {
	return &SessionScan{Sess: sess, Table: tbl, Schema: r.Dep.Schemas[tbl], Vector: r.vector()}
}

// Queries returns the CH-style suite. Column indexes reference the TPC-C
// schemas (schema.go); joined schemas are left columns then right columns.
func (r *Runner) Queries() []Query {
	ol := len(r.Dep.Schemas[tpcc.TOrders].Columns) // order_line offset in orders⋈order_line
	sl := len(r.Dep.Schemas[tpcc.TStock].Columns)  // order_line offset in stock⋈order_line
	return []Query{
		// Q1-style: per-line-number count and revenue over all order lines.
		{Name: "lineitem-agg", Plan: func(sess *cluster.Session) exec.Operator {
			return &exec.GroupAgg{
				Child:     r.scan(sess, tpcc.TOrderLine),
				Node:      r.Node,
				GroupCol:  3, // ol_number
				SumCol:    7, // ol_amount
				CPUPerRow: r.CPUPerRow, Vector: r.vector(),
			}
		}},
		// Top-k order lines by amount (sort + limit).
		{Name: "top-amounts", Plan: func(sess *cluster.Session) exec.Operator {
			return &exec.Limit{
				N: 10,
				Child: &exec.Sort{
					Child: r.scan(sess, tpcc.TOrderLine),
					Node:  r.Node,
					Less: func(b *table.Batch, i, j int) bool {
						return b.Float(7, i) > b.Float(7, j) // ol_amount desc
					},
					CPUPerRow: r.CPUPerRow, Vector: r.vector(),
				},
			}
		}},
		// Carrier distribution: orders per carrier, total line count.
		{Name: "carrier-dist", Plan: func(sess *cluster.Session) exec.Operator {
			return &exec.GroupAgg{
				Child:     r.scan(sess, tpcc.TOrders),
				Node:      r.Node,
				GroupCol:  5, // o_carrier_id
				SumCol:    6, // o_ol_cnt
				CPUPerRow: r.CPUPerRow, Vector: r.vector(),
			}
		}},
		// Revenue per customer: orders ⋈ order_line on (w, d, o), hash.
		{Name: "cust-revenue", Plan: func(sess *cluster.Session) exec.Operator {
			return &exec.GroupAgg{
				Child: &exec.HashJoin{
					Build:     r.scan(sess, tpcc.TOrders),
					Probe:     r.scan(sess, tpcc.TOrderLine),
					Node:      r.Node,
					BuildKeys: []int{0, 1, 2},
					ProbeKeys: []int{0, 1, 2},
					CPUPerRow: r.CPUPerRow, Vector: r.vector(),
				},
				Node:      r.Node,
				GroupCol:  3,      // o_c_id
				SumCol:    ol + 7, // ol_amount
				CPUPerRow: r.CPUPerRow, Vector: r.vector(),
			}
		}},
		// Quantity shipped per item: stock ⋈ order_line on supplying
		// warehouse and item, hash.
		{Name: "item-flow", Plan: func(sess *cluster.Session) exec.Operator {
			return &exec.GroupAgg{
				Child: &exec.HashJoin{
					Build:     r.scan(sess, tpcc.TStock),
					Probe:     r.scan(sess, tpcc.TOrderLine),
					Node:      r.Node,
					BuildKeys: []int{0, 1}, // s_w_id, s_i_id
					ProbeKeys: []int{5, 4}, // ol_supply_w_id, ol_i_id
					CPUPerRow: r.CPUPerRow, Vector: r.vector(),
				},
				Node:      r.Node,
				GroupCol:  1,      // s_i_id
				SumCol:    sl + 6, // ol_quantity
				CPUPerRow: r.CPUPerRow, Vector: r.vector(),
			}
		}},
		// Revenue per carrier: orders ⋈ order_line on the shared (w, d, o)
		// key prefix — both scans are key-ordered, so this is the merge
		// join's natural habitat (asserted via the Ordered metadata).
		{Name: "carrier-revenue", Plan: func(sess *cluster.Session) exec.Operator {
			return &exec.GroupAgg{
				Child: &exec.MergeJoin{
					Left:      r.scan(sess, tpcc.TOrders),
					Right:     r.scan(sess, tpcc.TOrderLine),
					Node:      r.Node,
					LeftKeys:  []int{0, 1, 2},
					RightKeys: []int{0, 1, 2},
					CPUPerRow: r.CPUPerRow, Vector: r.vector(),
				},
				Node:      r.Node,
				GroupCol:  5,      // o_carrier_id
				SumCol:    ol + 7, // ol_amount
				CPUPerRow: r.CPUPerRow, Vector: r.vector(),
			}
		}},
		// Top-5 customers by revenue: cust-revenue's aggregate under a
		// descending sort and limit (group schema is [group, count, sum]).
		{Name: "top-customers", Plan: func(sess *cluster.Session) exec.Operator {
			return &exec.Limit{
				N: 5,
				Child: &exec.Sort{
					Child: &exec.GroupAgg{
						Child: &exec.HashJoin{
							Build:     r.scan(sess, tpcc.TOrders),
							Probe:     r.scan(sess, tpcc.TOrderLine),
							Node:      r.Node,
							BuildKeys: []int{0, 1, 2},
							ProbeKeys: []int{0, 1, 2},
							CPUPerRow: r.CPUPerRow, Vector: r.vector(),
						},
						Node:      r.Node,
						GroupCol:  3,
						SumCol:    ol + 7,
						CPUPerRow: r.CPUPerRow, Vector: r.vector(),
					},
					Node: r.Node,
					Less: func(b *table.Batch, i, j int) bool {
						return b.Float(2, i) > b.Float(2, j) // sum desc
					},
					CPUPerRow: r.CPUPerRow, Vector: r.vector(),
				},
			}
		}},
		// Undelivered orders per district (carrier 0 = not yet delivered).
		{Name: "undelivered", Plan: func(sess *cluster.Session) exec.Operator {
			return &exec.GroupAgg{
				Child: &exec.Filter{
					Child:     r.scan(sess, tpcc.TOrders),
					Node:      r.Node,
					Pred:      func(b *table.Batch, i int) bool { return b.Int(5, i) == 0 },
					CPUPerRow: r.CPUPerRow,
				},
				Node:      r.Node,
				GroupCol:  1, // o_d_id
				SumCol:    -1,
				CPUPerRow: r.CPUPerRow, Vector: r.vector(),
			}
		}},
	}
}

// ParallelLineitemAgg is the partition-parallel variant of the Q1-style
// aggregate: an exchange fans the order_line scan over every range entry,
// placed on the owning node, with the projection to (ol_number, ol_amount)
// pushed below the exchange so remote legs ship two columns instead of
// nine; the merged stream aggregates on the gathering node. Unlike the
// session-based suite this binds partitions directly (quiescent placement
// only — see Master.PartitionPlans).
func (r *Runner) ParallelLineitemAgg(m *cluster.Master, txn *cc.Txn, gather *cluster.DataNode) (exec.Operator, error) {
	plans, err := m.PartitionPlans(txn, tpcc.TOrderLine, gather, r.vector(),
		func(scan exec.Operator, owner *cluster.DataNode) exec.Operator {
			return &exec.Project{
				Child:     scan,
				Node:      owner.HW,
				Cols:      []int{3, 7}, // ol_number, ol_amount
				CPUPerRow: r.CPUPerRow,
			}
		})
	if err != nil {
		return nil, err
	}
	return &exec.GroupAgg{
		Child:     &exec.Exchange{Plans: plans, Env: m.Cluster().Env},
		Node:      gather.HW,
		GroupCol:  0,
		SumCol:    1,
		CPUPerRow: r.CPUPerRow, Vector: r.vector(),
	}, nil
}

package cc

import (
	"sort"
	"time"

	"wattdb/internal/sim"
)

// Version is one record state: a commit timestamp plus payload, or a delete
// marker. The newest committed version of a record lives in the partition's
// B*-tree; the VersionStore keeps older versions and uncommitted intents, so
// "readers can still access old versions, even if new transactions changed
// the data" (Sect. 3.5) — crucial while records are on the move.
type Version struct {
	TS      Timestamp
	Deleted bool
	Val     []byte
}

// Bytes returns the version's storage footprint for the Fig. 3 metric.
func (v Version) Bytes() int64 { return int64(len(v.Val)) + 9 }

type mvccEntry struct {
	writer     *Txn
	pending    Version
	hasPending bool
	history    []Version // committed versions, newest first
	lastCommit Timestamp
	released   *sim.Signal
}

// VersionStore holds MVCC state for one partition. All methods must be
// called from simulation processes of the owning node.
type VersionStore struct {
	env     *sim.Env
	entries map[string]*mvccEntry

	// versionBytes tracks retained old-version bytes (Fig. 3's storage
	// overhead line).
	versionBytes int64

	// intentKeys is the set of keys holding an active write intent;
	// maxCommit is the newest commit timestamp installed through this
	// store. Together they let ChangedSince answer its common no-change
	// case without scanning, and keep CommittedPending proportional to the
	// number of in-flight writers rather than the number of entries.
	intentKeys map[string]struct{}
	maxCommit  Timestamp

	// recent maps keys to their last commit timestamp for commits newer
	// than the GC watermark. It bounds ChangedSince's commit check by the
	// number of commits since the last vacuum instead of the number of
	// entries: any key pruned from the set committed at or below the
	// watermark, which no active snapshot (every mover included) predates.
	recent map[string]Timestamp
}

// NewVersionStore returns an empty store.
func NewVersionStore(env *sim.Env) *VersionStore {
	return &VersionStore{
		env:        env,
		entries:    make(map[string]*mvccEntry),
		intentKeys: make(map[string]struct{}),
		recent:     make(map[string]Timestamp),
	}
}

func (vs *VersionStore) entry(key string) *mvccEntry {
	e, ok := vs.entries[key]
	if !ok {
		e = &mvccEntry{released: sim.NewSignal(vs.env)}
		vs.entries[key] = e
	}
	return e
}

// AcquireWriteIntent makes txn the exclusive pending writer of key. leafTS
// is the commit timestamp of the record's current tree version (0 if the
// record does not exist); it feeds the first-committer-wins check. Waiting
// for a competing writer is metered as CatLocking.
func (vs *VersionStore) AcquireWriteIntent(p *sim.Proc, txn *Txn, key string, leafTS Timestamp, timeout time.Duration) error {
	if !txn.Active() {
		return ErrTxnNotActive
	}
	e := vs.entry(key)
	if e.writer == txn {
		return nil
	}
	deadline := vs.env.Now() + timeout
	for e.writer != nil {
		remaining := deadline - vs.env.Now()
		stop := p.Meter(sim.CatLocking)
		ok := remaining > 0 && e.released.WaitTimeout(p, remaining)
		stop()
		if !ok {
			return ErrLockTimeout
		}
		if !txn.Active() {
			return ErrTxnNotActive
		}
	}
	last := e.lastCommit
	if leafTS > last {
		last = leafTS
	}
	if last > txn.Begin {
		// Someone committed this record after we took our snapshot.
		return ErrWriteConflict
	}
	e.writer = txn
	e.hasPending = false
	vs.intentKeys[key] = struct{}{}
	return nil
}

// StagePending records txn's new value for key. txn must hold the write
// intent.
func (vs *VersionStore) StagePending(txn *Txn, key string, deleted bool, val []byte) {
	e := vs.entry(key)
	if e.writer != txn {
		panic("cc: StagePending without write intent")
	}
	e.pending = Version{Deleted: deleted, Val: val}
	e.hasPending = true
}

// ReadVisible resolves the version of key visible to txn. leaf is the
// current tree version (nil if the key is absent from the tree). It returns
// ok=false if no version is visible at txn's snapshot (absent, or a
// visible tombstone).
func (vs *VersionStore) ReadVisible(txn *Txn, key string, leaf *Version) (Version, bool) {
	v, exists := vs.VisibleVersion(txn, key, leaf)
	if !exists || v.Deleted {
		return Version{}, false
	}
	return v, true
}

// VisibleVersion is ReadVisible distinguishing "no version at this
// snapshot" (exists=false) from a visible tombstone (exists=true,
// Deleted=true). Migration routing needs the distinction: a tombstone at a
// range's new location is an authoritative committed state, not a license
// to fall back to the old copy.
func (vs *VersionStore) VisibleVersion(txn *Txn, key string, leaf *Version) (Version, bool) {
	e := vs.entries[key]
	if e != nil && e.writer == txn && e.hasPending {
		// Own uncommitted write.
		return e.pending, true
	}
	if e != nil && e.writer != nil && e.writer != txn && e.hasPending &&
		e.writer.State == TxnCommitted && e.writer.Commit <= txn.Begin {
		// The writer has committed (its timestamp is assigned and below our
		// snapshot) but the tree install is still in flight — this happens
		// while a distributed commit walks its participants. The staged
		// value is the authoritative newest version for this snapshot.
		v := e.pending
		v.TS = e.writer.Commit
		return v, true
	}
	if leaf != nil && leaf.TS <= txn.Begin {
		return *leaf, true
	}
	if e != nil {
		for _, v := range e.history {
			if v.TS <= txn.Begin {
				return v, true
			}
		}
	}
	return Version{}, false
}

// ChangedSince reports whether any key in [lo, hi) (nil bounds are open)
// has a write txn cannot have seen: a foreign write intent still in flight,
// or a commit newer than txn's snapshot. Record movement uses it — in the
// same non-blocking step as the boundary advance — before retargeting a
// migration window: a record that was invisible to the mover's scan
// (tombstoned, not yet staged, or not yet committed) but was (or is being)
// (re-)written at the source would otherwise be stranded there once routing
// points at the destination. Keys compare bytewise (the key codec is
// order-preserving). ownIntents is the number of intents txn itself holds
// in this store (the mover's staged batch): when every live intent is the
// caller's and nothing committed past its snapshot, the store provably
// contains no relevant change and the entry scan is skipped.
func (vs *VersionStore) ChangedSince(txn *Txn, lo, hi []byte, ownIntents int) bool {
	if len(vs.intentKeys) == ownIntents && vs.maxCommit <= txn.Begin {
		return false
	}
	for k := range vs.intentKeys {
		e := vs.entries[k]
		if e == nil || e.writer == nil || e.writer == txn {
			continue
		}
		if lo != nil && k < string(lo) {
			continue
		}
		if hi != nil && k >= string(hi) {
			continue
		}
		return true
	}
	if vs.maxCommit <= txn.Begin {
		return false
	}
	// Commit check over the watermark-pruned recent-commit set: every key
	// whose last commit could postdate txn's snapshot is in it (txn is
	// active, so the GC watermark is at or below txn.Begin and cannot have
	// pruned a relevant commit). The walk is bounded by commits since the
	// last vacuum, not by the store's entry count.
	for k, ts := range vs.recent {
		if ts <= txn.Begin {
			continue
		}
		if lo != nil && k < string(lo) {
			continue
		}
		if hi != nil && k >= string(hi) {
			continue
		}
		return true
	}
	return false
}

// PendingRead is one committed-but-still-installing write visible to a
// snapshot (see CommittedPending).
type PendingRead struct {
	Key string
	Ver Version
}

// CommittedPending returns, sorted by key, the staged writes in [lo, hi)
// (nil bounds open) whose transactions committed at or below txn's snapshot
// but whose tree installs are still in flight. Such writes have no tree
// leaf yet, so a concurrent scan would miss them entirely — a committed
// insert must not be invisible to a snapshot that covers its timestamp.
// Point reads get the same answer through VisibleVersion's
// committed-writer path.
func (vs *VersionStore) CommittedPending(txn *Txn, lo, hi []byte) []PendingRead {
	if len(vs.intentKeys) == 0 {
		return nil // common case: no writer in flight anywhere
	}
	var out []PendingRead
	for k := range vs.intentKeys {
		e := vs.entries[k]
		if e == nil || e.writer == nil || e.writer == txn || !e.hasPending ||
			e.writer.State != TxnCommitted || e.writer.Commit > txn.Begin {
			continue
		}
		if lo != nil && k < string(lo) {
			continue
		}
		if hi != nil && k >= string(hi) {
			continue
		}
		v := e.pending
		v.TS = e.writer.Commit
		out = append(out, PendingRead{Key: k, Ver: v})
	}
	// The common case is empty: keep it allocation-free (sort.Slice boxes
	// its argument even for a nil slice, and scans run per batch on the
	// executor's hot path).
	if len(out) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	}
	return out
}

// StaleLeaf reports whether a caller-held copy of key's tree leaf (commit
// timestamp leafTS) predates a later install. Batched leaf-at-a-time scans
// copy a whole page and then emit from the copy; an install that lands
// between the copy and the emit leaves the copy stale, and the version the
// snapshot must see may live only in the current tree leaf or the history
// entries pushed by the newer installs (never in the stale copy). Callers
// that see true must re-read the current leaf before resolving visibility —
// even when the newest commit is above the reader's snapshot, an
// intermediate visible version may have landed after the copy too.
func (vs *VersionStore) StaleLeaf(key string, leafTS Timestamp) bool {
	e := vs.entries[key]
	return e != nil && e.lastCommit > leafTS
}

// HasIntent reports whether txn holds the write intent on key with a staged
// value (used by scans to include own inserts).
func (vs *VersionStore) HasIntent(txn *Txn, key string) (Version, bool) {
	e := vs.entries[key]
	if e != nil && e.writer == txn && e.hasPending {
		return e.pending, true
	}
	return Version{}, false
}

// BeginCommitKey stamps txn's pending write of key with its commit
// timestamp and returns the version the caller must install in the tree.
// The write intent is NOT released: while the (possibly blocking) tree
// install is in flight, ReadVisible keeps serving the staged value through
// its committed-writer path, so readers whose snapshot covers commitTS
// never fall back to the stale leaf. Call FinishCommitKey after the
// install.
func (vs *VersionStore) BeginCommitKey(txn *Txn, key string, commitTS Timestamp) Version {
	e := vs.entry(key)
	if e.writer != txn || !e.hasPending {
		panic("cc: BeginCommitKey without staged write")
	}
	v := e.pending
	v.TS = commitTS
	return v
}

// FinishCommitKey finalises txn's write of key after the tree install:
// oldLeaf (the version the install replaced, nil if none) is pushed into
// the history so older snapshots can still read it, and the write intent is
// released, waking queued writers — who now see the new leaf.
func (vs *VersionStore) FinishCommitKey(txn *Txn, key string, oldLeaf *Version, commitTS Timestamp) {
	e := vs.entry(key)
	if e.writer != txn || !e.hasPending {
		panic("cc: FinishCommitKey without staged write")
	}
	if oldLeaf != nil && oldLeaf.TS > txn.Begin {
		panic("cc: first-committer-wins violation: overwriting a version newer than the snapshot")
	}
	if oldLeaf != nil {
		e.history = append([]Version{*oldLeaf}, e.history...)
		vs.versionBytes += oldLeaf.Bytes()
	}
	e.lastCommit = commitTS
	e.writer = nil
	e.hasPending = false
	delete(vs.intentKeys, key)
	if commitTS > vs.maxCommit {
		vs.maxCommit = commitTS
	}
	vs.recent[key] = commitTS
	e.released.Fire()
}

// CommitKey is BeginCommitKey+FinishCommitKey in one step, for callers that
// install without blocking (tests, single-site usage).
func (vs *VersionStore) CommitKey(txn *Txn, key string, oldLeaf *Version, commitTS Timestamp) Version {
	v := vs.BeginCommitKey(txn, key, commitTS)
	vs.FinishCommitKey(txn, key, oldLeaf, commitTS)
	return v
}

// AbortKey drops txn's write intent on key.
func (vs *VersionStore) AbortKey(txn *Txn, key string) {
	e, ok := vs.entries[key]
	if !ok || e.writer != txn {
		return
	}
	e.writer = nil
	e.hasPending = false
	delete(vs.intentKeys, key)
	e.released.Fire()
}

// GC discards history versions that no active snapshot can read (all but
// the newest version older than watermark) and returns the bytes freed.
func (vs *VersionStore) GC(watermark Timestamp) int64 {
	var freed int64
	for key, e := range vs.entries {
		if len(e.history) > 0 {
			// Keep versions needed by snapshots >= watermark: drop all
			// versions strictly older than the newest one <= watermark.
			keep := len(e.history)
			for i, v := range e.history {
				if v.TS <= watermark {
					keep = i + 1
					break
				}
			}
			for _, v := range e.history[keep:] {
				freed += v.Bytes()
			}
			e.history = e.history[:keep:keep]
			// The tree's leaf version supersedes any history version
			// fully below the watermark.
			if len(e.history) > 0 && e.lastCommit <= watermark {
				for _, v := range e.history {
					freed += v.Bytes()
				}
				e.history = nil
			}
		}
		// Entries whose last commit is above the watermark must survive even
		// with an empty history: ChangedSince relies on lastCommit to spot
		// writes newer than an active snapshot (e.g. a record mover's).
		if e.writer == nil && len(e.history) == 0 && e.released.Waiting() == 0 &&
			e.lastCommit <= watermark {
			delete(vs.entries, key)
		}
	}
	// Prune the recent-commit set: a commit at or below the watermark
	// predates every active snapshot, so no ChangedSince caller can care.
	// The survivors move to a fresh map — deleting in place would leave the
	// old map's bucket array at its high-water size, and ChangedSince's walk
	// would stay proportional to the busiest interval ever seen instead of
	// the commits since this vacuum.
	if len(vs.recent) > 0 {
		kept := make(map[string]Timestamp)
		for key, ts := range vs.recent {
			if ts > watermark {
				kept[key] = ts
			}
		}
		vs.recent = kept
	}
	// intentKeys empties as writers finish but its buckets do not; rebuild
	// it when quiescent so scans' CommittedPending walks stay small too.
	if len(vs.intentKeys) == 0 {
		vs.intentKeys = make(map[string]struct{})
	}
	vs.versionBytes -= freed
	return freed
}

// RecentCommits reports the size of the watermark-pruned recent-commit set
// (diagnostics and benchmarks).
func (vs *VersionStore) RecentCommits() int { return len(vs.recent) }

// VersionBytes returns retained old-version bytes.
func (vs *VersionStore) VersionBytes() int64 { return vs.versionBytes }

// Entries returns the number of keys with MVCC state.
func (vs *VersionStore) Entries() int { return len(vs.entries) }

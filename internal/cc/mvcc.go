package cc

import (
	"time"

	"wattdb/internal/sim"
)

// Version is one record state: a commit timestamp plus payload, or a delete
// marker. The newest committed version of a record lives in the partition's
// B*-tree; the VersionStore keeps older versions and uncommitted intents, so
// "readers can still access old versions, even if new transactions changed
// the data" (Sect. 3.5) — crucial while records are on the move.
type Version struct {
	TS      Timestamp
	Deleted bool
	Val     []byte
}

// Bytes returns the version's storage footprint for the Fig. 3 metric.
func (v Version) Bytes() int64 { return int64(len(v.Val)) + 9 }

type mvccEntry struct {
	writer     *Txn
	pending    Version
	hasPending bool
	history    []Version // committed versions, newest first
	lastCommit Timestamp
	released   *sim.Signal
}

// VersionStore holds MVCC state for one partition. All methods must be
// called from simulation processes of the owning node.
type VersionStore struct {
	env     *sim.Env
	entries map[string]*mvccEntry

	// versionBytes tracks retained old-version bytes (Fig. 3's storage
	// overhead line).
	versionBytes int64
}

// NewVersionStore returns an empty store.
func NewVersionStore(env *sim.Env) *VersionStore {
	return &VersionStore{env: env, entries: make(map[string]*mvccEntry)}
}

func (vs *VersionStore) entry(key string) *mvccEntry {
	e, ok := vs.entries[key]
	if !ok {
		e = &mvccEntry{released: sim.NewSignal(vs.env)}
		vs.entries[key] = e
	}
	return e
}

// AcquireWriteIntent makes txn the exclusive pending writer of key. leafTS
// is the commit timestamp of the record's current tree version (0 if the
// record does not exist); it feeds the first-committer-wins check. Waiting
// for a competing writer is metered as CatLocking.
func (vs *VersionStore) AcquireWriteIntent(p *sim.Proc, txn *Txn, key string, leafTS Timestamp, timeout time.Duration) error {
	if !txn.Active() {
		return ErrTxnNotActive
	}
	e := vs.entry(key)
	if e.writer == txn {
		return nil
	}
	deadline := vs.env.Now() + timeout
	for e.writer != nil {
		remaining := deadline - vs.env.Now()
		stop := p.Meter(sim.CatLocking)
		ok := remaining > 0 && e.released.WaitTimeout(p, remaining)
		stop()
		if !ok {
			return ErrLockTimeout
		}
		if !txn.Active() {
			return ErrTxnNotActive
		}
	}
	last := e.lastCommit
	if leafTS > last {
		last = leafTS
	}
	if last > txn.Begin {
		// Someone committed this record after we took our snapshot.
		return ErrWriteConflict
	}
	e.writer = txn
	e.hasPending = false
	return nil
}

// StagePending records txn's new value for key. txn must hold the write
// intent.
func (vs *VersionStore) StagePending(txn *Txn, key string, deleted bool, val []byte) {
	e := vs.entry(key)
	if e.writer != txn {
		panic("cc: StagePending without write intent")
	}
	e.pending = Version{Deleted: deleted, Val: val}
	e.hasPending = true
}

// ReadVisible resolves the version of key visible to txn. leaf is the
// current tree version (nil if the key is absent from the tree). It returns
// ok=false if no version is visible at txn's snapshot.
func (vs *VersionStore) ReadVisible(txn *Txn, key string, leaf *Version) (Version, bool) {
	e := vs.entries[key]
	if e != nil && e.writer == txn && e.hasPending {
		// Own uncommitted write.
		if e.pending.Deleted {
			return Version{}, false
		}
		return e.pending, true
	}
	if e != nil && e.writer != nil && e.writer != txn && e.hasPending &&
		e.writer.State == TxnCommitted && e.writer.Commit <= txn.Begin {
		// The writer has committed (its timestamp is assigned and below our
		// snapshot) but the tree install is still in flight — this happens
		// while a distributed commit walks its participants. The staged
		// value is the authoritative newest version for this snapshot.
		if e.pending.Deleted {
			return Version{}, false
		}
		v := e.pending
		v.TS = e.writer.Commit
		return v, true
	}
	if leaf != nil && leaf.TS <= txn.Begin {
		if leaf.Deleted {
			return Version{}, false
		}
		return *leaf, true
	}
	if e != nil {
		for _, v := range e.history {
			if v.TS <= txn.Begin {
				if v.Deleted {
					return Version{}, false
				}
				return v, true
			}
		}
	}
	return Version{}, false
}

// HasIntent reports whether txn holds the write intent on key with a staged
// value (used by scans to include own inserts).
func (vs *VersionStore) HasIntent(txn *Txn, key string) (Version, bool) {
	e := vs.entries[key]
	if e != nil && e.writer == txn && e.hasPending {
		return e.pending, true
	}
	return Version{}, false
}

// CommitKey finalises txn's pending write of key at commitTS. oldLeaf (the
// tree version being replaced, nil if none) is pushed into the history so
// older snapshots can still read it. It returns the version the caller must
// install in the tree.
func (vs *VersionStore) CommitKey(txn *Txn, key string, oldLeaf *Version, commitTS Timestamp) Version {
	e := vs.entry(key)
	if e.writer != txn || !e.hasPending {
		panic("cc: CommitKey without staged write")
	}
	if oldLeaf != nil && oldLeaf.TS > txn.Begin {
		panic("cc: first-committer-wins violation: overwriting a version newer than the snapshot")
	}
	if oldLeaf != nil {
		e.history = append([]Version{*oldLeaf}, e.history...)
		vs.versionBytes += oldLeaf.Bytes()
	}
	v := e.pending
	v.TS = commitTS
	e.lastCommit = commitTS
	e.writer = nil
	e.hasPending = false
	e.released.Fire()
	return v
}

// AbortKey drops txn's write intent on key.
func (vs *VersionStore) AbortKey(txn *Txn, key string) {
	e, ok := vs.entries[key]
	if !ok || e.writer != txn {
		return
	}
	e.writer = nil
	e.hasPending = false
	e.released.Fire()
}

// GC discards history versions that no active snapshot can read (all but
// the newest version older than watermark) and returns the bytes freed.
func (vs *VersionStore) GC(watermark Timestamp) int64 {
	var freed int64
	for key, e := range vs.entries {
		if len(e.history) > 0 {
			// Keep versions needed by snapshots >= watermark: drop all
			// versions strictly older than the newest one <= watermark.
			keep := len(e.history)
			for i, v := range e.history {
				if v.TS <= watermark {
					keep = i + 1
					break
				}
			}
			for _, v := range e.history[keep:] {
				freed += v.Bytes()
			}
			e.history = e.history[:keep:keep]
			// The tree's leaf version supersedes any history version
			// fully below the watermark.
			if len(e.history) > 0 && e.lastCommit <= watermark {
				for _, v := range e.history {
					freed += v.Bytes()
				}
				e.history = nil
			}
		}
		if e.writer == nil && len(e.history) == 0 && e.released.Waiting() == 0 {
			delete(vs.entries, key)
		}
	}
	vs.versionBytes -= freed
	return freed
}

// VersionBytes returns retained old-version bytes.
func (vs *VersionStore) VersionBytes() int64 { return vs.versionBytes }

// Entries returns the number of keys with MVCC state.
func (vs *VersionStore) Entries() int { return len(vs.entries) }

package cc

import (
	"testing"
	"time"

	"wattdb/internal/sim"
)

func TestOracleTimestampsMonotonic(t *testing.T) {
	o := NewOracle()
	t1 := o.Begin(SnapshotIsolation)
	t2 := o.Begin(SnapshotIsolation)
	if t2.Begin <= t1.Begin {
		t.Fatalf("begin timestamps not increasing: %d, %d", t1.Begin, t2.Begin)
	}
	c1 := o.CommitTS(t1)
	if c1 <= t2.Begin {
		t.Fatalf("commit ts %d not after begin %d", c1, t2.Begin)
	}
	if t1.State != TxnCommitted {
		t.Fatal("commit did not set state")
	}
}

func TestOracleWatermark(t *testing.T) {
	o := NewOracle()
	t1 := o.Begin(SnapshotIsolation)
	t2 := o.Begin(SnapshotIsolation)
	if wm := o.Watermark(); wm != t1.Begin {
		t.Fatalf("watermark = %d, want %d", wm, t1.Begin)
	}
	o.CommitTS(t1)
	if wm := o.Watermark(); wm != t2.Begin {
		t.Fatalf("watermark after commit = %d, want %d", wm, t2.Begin)
	}
	o.Abort(t2)
	if o.ActiveCount() != 0 {
		t.Fatal("abort did not deregister")
	}
}

// TestOracleUnsettledCapsSnapshots pins the visibility-before-durability
// guard: a commit timestamp exists from CommitTS, but until SettleCommit (or
// Abort) seals its fate, new snapshots are capped below it — a reader must
// never observe a commit that a crash during the commit force would roll
// back at restart.
func TestOracleUnsettledCapsSnapshots(t *testing.T) {
	o := NewOracle()
	w := o.Begin(SnapshotIsolation)
	cts := o.CommitTS(w)
	if o.UnsettledCount() != 1 {
		t.Fatalf("unsettled = %d, want 1", o.UnsettledCount())
	}
	r := o.Begin(SnapshotIsolation)
	if r.Begin != cts-1 {
		t.Fatalf("capped snapshot = %d, want %d (just below unsettled commit %d)", r.Begin, cts-1, cts)
	}
	if got := o.active[r.ID]; got != r.Begin {
		t.Fatalf("active table holds %d, want the capped begin %d (GC watermark safety)", got, r.Begin)
	}
	o.SettleCommit(w)
	if o.UnsettledCount() != 0 {
		t.Fatal("settle did not deregister")
	}
	late := o.Begin(SnapshotIsolation)
	if late.Begin <= cts {
		t.Fatalf("post-settle snapshot = %d, want > %d", late.Begin, cts)
	}

	// The cap tracks the OLDEST unsettled commit across several, and an
	// abort (fate sealed as rolled back) releases it like a settle.
	w1, w2 := o.Begin(SnapshotIsolation), o.Begin(SnapshotIsolation)
	c1 := o.CommitTS(w1)
	c2 := o.CommitTS(w2)
	if r := o.Begin(SnapshotIsolation); r.Begin != c1-1 {
		t.Fatalf("snapshot = %d, want %d (below oldest of %d, %d)", r.Begin, c1-1, c1, c2)
	}
	o.Abort(w1)
	if r := o.Begin(SnapshotIsolation); r.Begin != c2-1 {
		t.Fatalf("snapshot after abort = %d, want %d", r.Begin, c2-1)
	}
	o.SettleCommit(w2)
	if r := o.Begin(SnapshotIsolation); r.Begin <= c2 {
		t.Fatalf("snapshot after all settled = %d, want > %d", r.Begin, c2)
	}
}

func TestLockCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b LockMode
		want bool
	}{
		{LockIR, LockIR, true}, {LockIR, LockIX, true}, {LockIR, LockR, true}, {LockIR, LockX, false},
		{LockIX, LockIX, true}, {LockIX, LockR, false}, {LockIX, LockX, false},
		{LockR, LockR, true}, {LockR, LockX, false},
		{LockX, LockX, false},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.want {
			t.Errorf("compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := compatible(c.b, c.a); got != c.want {
			t.Errorf("compatible(%v,%v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestSharedLocksCoexistExclusiveWaits(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	lm := NewLockManager(env)
	var xAt time.Duration
	r1, r2 := o.Begin(Locking), o.Begin(Locking)
	w := o.Begin(Locking)
	env.Spawn("r1", func(p *sim.Proc) {
		if err := lm.Lock(p, r1, "k", LockR, time.Minute); err != nil {
			t.Error(err)
		}
		p.Sleep(2 * time.Second)
		lm.ReleaseAll(r1)
	})
	env.Spawn("r2", func(p *sim.Proc) {
		if err := lm.Lock(p, r2, "k", LockR, time.Minute); err != nil {
			t.Error(err)
		}
		p.Sleep(4 * time.Second)
		lm.ReleaseAll(r2)
	})
	env.Spawn("w", func(p *sim.Proc) {
		p.Sleep(time.Second)
		if err := lm.Lock(p, w, "k", LockX, time.Minute); err != nil {
			t.Error(err)
		}
		xAt = p.Now()
		lm.ReleaseAll(w)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if xAt != 4*time.Second {
		t.Fatalf("X granted at %v, want 4s (after both readers)", xAt)
	}
}

func TestLockTimeout(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	lm := NewLockManager(env)
	holder, waiter := o.Begin(Locking), o.Begin(Locking)
	var got error
	env.Spawn("holder", func(p *sim.Proc) {
		lm.Lock(p, holder, "k", LockX, time.Minute)
		p.Sleep(time.Hour)
		lm.ReleaseAll(holder)
	})
	env.Spawn("waiter", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		got = lm.Lock(p, waiter, "k", LockX, time.Second)
	})
	if err := env.RunUntil(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got != ErrLockTimeout {
		t.Fatalf("err = %v, want ErrLockTimeout", got)
	}
}

func TestLockUpgrade(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	lm := NewLockManager(env)
	a, b := o.Begin(Locking), o.Begin(Locking)
	var upgradedAt time.Duration
	env.Spawn("a", func(p *sim.Proc) {
		lm.Lock(p, a, "k", LockR, time.Minute)
		p.Sleep(time.Second)
		// Upgrade R -> X must wait for b's R to go away.
		if err := lm.Lock(p, a, "k", LockX, time.Minute); err != nil {
			t.Error(err)
		}
		upgradedAt = p.Now()
		lm.ReleaseAll(a)
	})
	env.Spawn("b", func(p *sim.Proc) {
		lm.Lock(p, b, "k", LockR, time.Minute)
		p.Sleep(3 * time.Second)
		lm.ReleaseAll(b)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if upgradedAt != 3*time.Second {
		t.Fatalf("upgrade at %v, want 3s", upgradedAt)
	}
}

func TestIntentLocksAllowFineGrainedSharing(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	lm := NewLockManager(env)
	a, b := o.Begin(Locking), o.Begin(Locking)
	ok := true
	env.Spawn("a", func(p *sim.Proc) {
		if err := lm.Lock(p, a, "part", LockIX, time.Second); err != nil {
			ok = false
		}
		if err := lm.Lock(p, a, "part/k1", LockX, time.Second); err != nil {
			ok = false
		}
		p.Sleep(time.Second)
		lm.ReleaseAll(a)
	})
	env.Spawn("b", func(p *sim.Proc) {
		// IX on the same partition is fine; X on a different record too.
		if err := lm.Lock(p, b, "part", LockIX, time.Second); err != nil {
			ok = false
		}
		if err := lm.Lock(p, b, "part/k2", LockX, time.Second); err != nil {
			ok = false
		}
		lm.ReleaseAll(b)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("intent-locked fine-grained access should not conflict")
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	lm := NewLockManager(env)
	a, b := o.Begin(Locking), o.Begin(Locking)
	got := false
	env.Spawn("a", func(p *sim.Proc) {
		lm.Lock(p, a, "k", LockX, time.Minute)
		p.Sleep(time.Second)
		lm.ReleaseAll(a)
	})
	env.Spawn("b", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		if err := lm.Lock(p, b, "k", LockX, time.Minute); err == nil {
			got = true
		}
		lm.ReleaseAll(b)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("waiter never granted after ReleaseAll")
	}
}

func TestMVCCSnapshotReadSeesOldVersion(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	vs := NewVersionStore(env)
	var done bool
	env.Spawn("test", func(p *sim.Proc) {
		reader := o.Begin(SnapshotIsolation)
		writer := o.Begin(SnapshotIsolation)

		// Writer updates key "a" (old leaf was committed at ts 1).
		oldLeaf := &Version{TS: 1, Val: []byte("v1")}
		if err := vs.AcquireWriteIntent(p, writer, "a", oldLeaf.TS, time.Second); err != nil {
			t.Error(err)
		}
		vs.StagePending(writer, "a", false, []byte("v2"))

		// Reader must not see the pending write.
		v, ok := vs.ReadVisible(reader, "a", oldLeaf)
		if !ok || string(v.Val) != "v1" {
			t.Errorf("reader saw %q, want v1", v.Val)
		}
		// Writer sees its own write.
		v, ok = vs.ReadVisible(writer, "a", oldLeaf)
		if !ok || string(v.Val) != "v2" {
			t.Errorf("writer saw %q, want v2", v.Val)
		}

		cts := o.CommitTS(writer)
		newLeaf := vs.CommitKey(writer, "a", oldLeaf, cts)
		o.SettleCommit(writer) // commit record "durable": later snapshots may see it
		if newLeaf.TS != cts || string(newLeaf.Val) != "v2" {
			t.Errorf("committed leaf = %+v", newLeaf)
		}
		// Reader's snapshot predates the commit: still v1, via history.
		v, ok = vs.ReadVisible(reader, "a", &newLeaf)
		if !ok || string(v.Val) != "v1" {
			t.Errorf("after commit, reader saw %q, want v1", v.Val)
		}
		// A new transaction sees v2.
		late := o.Begin(SnapshotIsolation)
		v, ok = vs.ReadVisible(late, "a", &newLeaf)
		if !ok || string(v.Val) != "v2" {
			t.Errorf("late reader saw %q, want v2", v.Val)
		}
		done = true
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test body did not finish")
	}
}

func TestMVCCFirstCommitterWins(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	vs := NewVersionStore(env)
	env.Spawn("test", func(p *sim.Proc) {
		t1 := o.Begin(SnapshotIsolation)
		t2 := o.Begin(SnapshotIsolation)
		leaf := &Version{TS: 1, Val: []byte("v0")}
		if err := vs.AcquireWriteIntent(p, t1, "k", leaf.TS, time.Second); err != nil {
			t.Error(err)
		}
		vs.StagePending(t1, "k", false, []byte("t1"))
		cts := o.CommitTS(t1)
		nl := vs.CommitKey(t1, "k", leaf, cts)
		// t2 began before t1 committed: write must conflict.
		err := vs.AcquireWriteIntent(p, t2, "k", nl.TS, time.Second)
		if err != ErrWriteConflict {
			t.Errorf("err = %v, want ErrWriteConflict", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCWriterWaitsForWriter(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	vs := NewVersionStore(env)
	var secondErr error
	var grantedAt time.Duration
	t1 := o.Begin(SnapshotIsolation)
	env.Spawn("t1", func(p *sim.Proc) {
		vs.AcquireWriteIntent(p, t1, "k", 0, time.Second)
		vs.StagePending(t1, "k", false, []byte("x"))
		p.Sleep(2 * time.Second)
		// Abort: t2 should then acquire without conflict.
		vs.AbortKey(t1, "k")
		o.Abort(t1)
	})
	env.Spawn("t2", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		t2 := o.Begin(SnapshotIsolation)
		secondErr = vs.AcquireWriteIntent(p, t2, "k", 0, time.Minute)
		grantedAt = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if secondErr != nil {
		t.Fatalf("second writer err = %v", secondErr)
	}
	if grantedAt != 2*time.Second {
		t.Fatalf("granted at %v, want 2s", grantedAt)
	}
}

func TestMVCCDeleteVisibility(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	vs := NewVersionStore(env)
	env.Spawn("test", func(p *sim.Proc) {
		oldReader := o.Begin(SnapshotIsolation)
		deleter := o.Begin(SnapshotIsolation)
		leaf := &Version{TS: 1, Val: []byte("alive")}
		vs.AcquireWriteIntent(p, deleter, "k", leaf.TS, time.Second)
		vs.StagePending(deleter, "k", true, nil)
		cts := o.CommitTS(deleter)
		tomb := vs.CommitKey(deleter, "k", leaf, cts)
		o.SettleCommit(deleter)
		if !tomb.Deleted {
			t.Error("committed version should be a tombstone")
		}
		// Old reader still sees the record.
		if v, ok := vs.ReadVisible(oldReader, "k", &tomb); !ok || string(v.Val) != "alive" {
			t.Errorf("old reader = %q, %v", v.Val, ok)
		}
		// New reader does not.
		late := o.Begin(SnapshotIsolation)
		if _, ok := vs.ReadVisible(late, "k", &tomb); ok {
			t.Error("late reader saw deleted record")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCGCFreesOldVersions(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	vs := NewVersionStore(env)
	env.Spawn("test", func(p *sim.Proc) {
		var leaf *Version
		for i := 0; i < 5; i++ {
			w := o.Begin(SnapshotIsolation)
			ts := Timestamp(0)
			if leaf != nil {
				ts = leaf.TS
			}
			if err := vs.AcquireWriteIntent(p, w, "k", ts, time.Second); err != nil {
				t.Fatal(err)
			}
			vs.StagePending(w, "k", false, []byte("version-payload"))
			nl := vs.CommitKey(w, "k", leaf, o.CommitTS(w))
			o.SettleCommit(w)
			leaf = &nl
		}
		if vs.VersionBytes() == 0 {
			t.Fatal("no version bytes retained")
		}
		freed := vs.GC(o.Watermark())
		if freed == 0 {
			t.Fatal("GC freed nothing with no active readers")
		}
		if vs.VersionBytes() != 0 {
			t.Fatalf("version bytes after GC = %d", vs.VersionBytes())
		}
		if vs.Entries() != 0 {
			t.Fatalf("entries after GC = %d", vs.Entries())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCGCKeepsVersionsForActiveSnapshot(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	vs := NewVersionStore(env)
	env.Spawn("test", func(p *sim.Proc) {
		leaf := Version{TS: 1, Val: []byte("v1")}
		reader := o.Begin(SnapshotIsolation) // snapshot before the update
		w := o.Begin(SnapshotIsolation)
		vs.AcquireWriteIntent(p, w, "k", leaf.TS, time.Second)
		vs.StagePending(w, "k", false, []byte("v2"))
		nl := vs.CommitKey(w, "k", &leaf, o.CommitTS(w))
		vs.GC(o.Watermark()) // reader still active: v1 must survive
		if v, ok := vs.ReadVisible(reader, "k", &nl); !ok || string(v.Val) != "v1" {
			t.Errorf("reader lost its version to GC: %q %v", v.Val, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnUndoRunsInReverse(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	txn := o.Begin(SnapshotIsolation)
	var order []int
	txn.PushUndo(func(*sim.Proc) { order = append(order, 1) })
	txn.PushUndo(func(*sim.Proc) { order = append(order, 2) })
	env.Spawn("abort", func(p *sim.Proc) {
		txn.RunUndo(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order = %v", order)
	}
}

// TestChangedSinceRecentCommitSet checks the watermark-pruned recent-commit
// set that bounds ChangedSince's fallback walk: a commit past a snapshot is
// detected inside its key range only, stays detected after unrelated GC, and
// is pruned — with the answer unchanged for live snapshots — once the
// watermark passes it.
func TestChangedSinceRecentCommitSet(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	o := NewOracle()
	vs := NewVersionStore(env)
	commit := func(key string) {
		env.Spawn("w", func(p *sim.Proc) {
			txn := o.Begin(SnapshotIsolation)
			if err := vs.AcquireWriteIntent(p, txn, key, 0, time.Second); err != nil {
				t.Error(err)
				return
			}
			vs.StagePending(txn, key, false, []byte("v"))
			vs.CommitKey(txn, key, nil, o.CommitTS(txn))
			o.SettleCommit(txn)
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	}
	commit("a")
	mover := o.Begin(SnapshotIsolation)
	commit("m")

	if !vs.ChangedSince(mover, []byte("l"), []byte("n"), 0) {
		t.Fatal("commit past the snapshot inside [l, n) not detected")
	}
	if vs.ChangedSince(mover, []byte("b"), []byte("c"), 0) {
		t.Fatal("false positive outside the commit's key range")
	}
	// GC at the current watermark (mover still active): "a" predates every
	// snapshot and is pruned; "m" must survive and still be detected.
	vs.GC(o.Watermark())
	if vs.RecentCommits() != 1 {
		t.Fatalf("recent-commit set = %d after GC, want 1 (only the post-snapshot commit)", vs.RecentCommits())
	}
	if !vs.ChangedSince(mover, nil, nil, 0) {
		t.Fatal("post-snapshot commit lost by GC pruning")
	}
	// Once the mover finishes, the watermark passes "m": the set empties and
	// a fresh snapshot sees no change.
	o.Abort(mover)
	vs.GC(o.Watermark())
	if vs.RecentCommits() != 0 {
		t.Fatalf("recent-commit set = %d after full drain, want 0", vs.RecentCommits())
	}
	fresh := o.Begin(SnapshotIsolation)
	if vs.ChangedSince(fresh, nil, nil, 0) {
		t.Fatal("fresh snapshot sees a change after all commits predate it")
	}
	o.Abort(fresh)
}

// Package cc implements WattDB's concurrency control (Sect. 3.5): a global
// timestamp oracle, snapshot-isolation MVCC with version chains kept while
// records are on the move, and classical multi-granularity locking with RX
// modes (MGL-RX) as the comparison baseline of Fig. 3. System transactions
// for record movement are ordinary transactions flagged as such.
package cc

import (
	"errors"

	"wattdb/internal/sim"
)

// Timestamp orders transactions; issued by the Oracle.
type Timestamp uint64

// TxnID identifies a transaction cluster-wide.
type TxnID uint64

// Mode selects the concurrency control protocol for a transaction.
type Mode int

const (
	// SnapshotIsolation uses MVCC: readers never block, writers use
	// first-committer-wins conflict detection.
	SnapshotIsolation Mode = iota
	// Locking uses MGL-RX: hierarchical read/exclusive locks.
	Locking
)

// TxnState is a transaction's lifecycle position.
type TxnState int

const (
	TxnActive TxnState = iota
	TxnCommitted
	TxnAborted
)

// Common control errors. Executors abort and (optionally) retry on them.
var (
	ErrWriteConflict = errors.New("cc: write-write conflict (first committer wins)")
	ErrLockTimeout   = errors.New("cc: lock wait timeout")
	ErrTxnNotActive  = errors.New("cc: transaction not active")
)

// Txn is one transaction. Engine layers attach undo actions while executing;
// the owning executor drives commit or abort.
type Txn struct {
	ID    TxnID
	Begin Timestamp
	// Commit is set when the transaction commits.
	Commit Timestamp
	Mode   Mode
	State  TxnState
	// System marks a system transaction (record movement housekeeping,
	// Sect. 3.5); it obeys the same protocols but is not counted as user
	// work by the metrics layer.
	System bool
	// Breakdown, when non-nil, receives the Fig. 7 time decomposition of
	// this transaction's execution.
	Breakdown *sim.Breakdown

	// undo actions run in reverse order on abort.
	undo []func(p *sim.Proc)
}

// Active reports whether the transaction can still do work.
func (t *Txn) Active() bool { return t.State == TxnActive }

// PushUndo registers a compensating action for abort.
func (t *Txn) PushUndo(fn func(p *sim.Proc)) { t.undo = append(t.undo, fn) }

// RunUndo executes compensations in reverse order and clears them.
func (t *Txn) RunUndo(p *sim.Proc) {
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i](p)
	}
	t.undo = nil
}

// DropUndo discards compensations (after successful commit).
func (t *Txn) DropUndo() { t.undo = nil }

// Oracle issues timestamps and tracks active transactions so MVCC garbage
// collection knows the oldest snapshot still in use. WattDB hosts it on the
// master node; callers pay any network cost at their layer.
//
// When the master is replicated, the oracle runs under bounded leases: lease
// holds the first timestamp it may NOT issue, granted only after the lease
// record is durable on a follower replica. A new leader resumes at the old
// ceiling, so timestamps issued across a failover never regress or collide
// — the old leader could not have issued anything at or above its lease.
// lease == 0 disables the bound (standalone master).
type Oracle struct {
	next   Timestamp
	nextID TxnID
	active map[TxnID]Timestamp
	// unsettled holds commit timestamps whose durability fate is not yet
	// sealed: CommitTS hands out the timestamp at the commit point, but the
	// commit record (and, under replication, its replica copy) becomes
	// durable later. Until SettleCommit or Abort removes the entry, Begin
	// caps every new snapshot below the oldest unsettled commit — no reader
	// can observe a version that a crash during the commit force would roll
	// back. Readers never block; they just get a slightly older snapshot.
	unsettled map[TxnID]Timestamp
	lease     Timestamp
}

// NewOracle returns an oracle starting at timestamp 1.
func NewOracle() *Oracle {
	return &Oracle{next: 1, active: make(map[TxnID]Timestamp), unsettled: make(map[TxnID]Timestamp)}
}

func (o *Oracle) tick() Timestamp {
	o.next++
	if o.lease > 0 && o.next >= o.lease {
		// The master layer extends the lease with headroom before issuing;
		// reaching the ceiling means a timestamp would escape the replicated
		// bound, which a post-failover leader could then re-issue.
		panic("cc: timestamp issued beyond replicated lease ceiling")
	}
	return o.next
}

// Begin starts a transaction in the given mode. The snapshot is capped just
// below the oldest unsettled commit (if any): a commit timestamp exists from
// the moment CommitTS issues it, but the transaction only becomes recoverable
// once its commit record is forced — handing a newer snapshot to a reader in
// that window would let it observe a commit that a crash then rolls back.
// The capped Begin (not the raw clock) is registered in the active table so
// the GC watermark keeps protecting the versions this snapshot can read.
func (o *Oracle) Begin(mode Mode) *Txn {
	o.nextID++
	begin := o.tick()
	for _, cts := range o.unsettled {
		if cts-1 < begin {
			begin = cts - 1
		}
	}
	t := &Txn{ID: o.nextID, Begin: begin, Mode: mode, State: TxnActive}
	o.active[t.ID] = t.Begin
	return t
}

// CommitTS assigns a commit timestamp to t and marks it committed. The commit
// is born unsettled: until the owning layer seals its durability fate with
// SettleCommit (or rolls it back with Abort), no new snapshot will cover it.
func (o *Oracle) CommitTS(t *Txn) Timestamp {
	t.Commit = o.tick()
	t.State = TxnCommitted
	delete(o.active, t.ID)
	o.unsettled[t.ID] = t.Commit
	return t.Commit
}

// SettleCommit seals t's fate as durably committed: its commit record (and,
// under replication, a replica copy) can no longer be lost to a crash, so new
// snapshots may cover its commit timestamp. Callers invoke it exactly at
// their force point — after the commit-record flush for a standalone commit,
// after the decision record is durable for a distributed one.
func (o *Oracle) SettleCommit(t *Txn) { delete(o.unsettled, t.ID) }

// Leased returns the current lease ceiling (0: unbounded).
func (o *Oracle) Leased() Timestamp { return o.lease }

// Clock returns the last timestamp issued.
func (o *Oracle) Clock() Timestamp { return o.next }

// Remaining returns how many timestamps the current lease still covers.
func (o *Oracle) Remaining() Timestamp {
	if o.lease == 0 {
		return ^Timestamp(0)
	}
	if o.next+1 >= o.lease {
		return 0
	}
	return o.lease - o.next - 1
}

// ExtendLease raises the lease ceiling to ceil (never lowers it). The caller
// must have made the grant durable on a replica first.
func (o *Oracle) ExtendLease(ceil Timestamp) {
	if ceil > o.lease {
		o.lease = ceil
	}
}

// RearmLease sets the lease ceiling to ceil even when that lowers it,
// provided ceil is still above the clock. Setup-only: a durable grant at or
// above the old ceiling must already exist, so shrinking the in-memory
// ceiling merely forces earlier re-grants (tests use it to sweep lease
// boundaries without consuming a full default chunk first).
func (o *Oracle) RearmLease(ceil Timestamp) {
	if ceil > o.next {
		o.lease = ceil
	}
}

// Failover re-seats the oracle on a new leader: the clock resumes at the
// replicated lease ceiling, strictly above anything the old leader could
// have issued. The active-transaction table is kept — survivors of the
// failover still hold their snapshots, so the GC watermark must keep
// honoring them. The new leader holds no usable lease until it replicates
// its own grant (Remaining() == 0 forces that before the next timestamp).
func (o *Oracle) Failover(ceil Timestamp) {
	if ceil == 0 {
		return
	}
	if ceil-1 > o.next {
		o.next = ceil - 1
	}
	o.lease = ceil
}

// Abort marks t aborted and deregisters it. A transaction whose commit never
// settled (the force failed and recovery is guaranteed to roll it back, or it
// is provably gone from every replica) also leaves the unsettled set here:
// its timestamp can never surface, so snapshots stop capping below it.
func (o *Oracle) Abort(t *Txn) {
	t.State = TxnAborted
	delete(o.active, t.ID)
	delete(o.unsettled, t.ID)
}

// Watermark returns the oldest snapshot any transaction — present or future
// — can still hold: the minimum over active begin timestamps AND one below
// every unsettled commit, falling back to the clock. The unsettled bound
// matters because Begin caps new snapshots below the oldest unsettled
// commit: while a commit's durability is in limbo (say, its node is down
// mid-force), the next Begin may be far below the clock, and version GC
// pruning to the active-only minimum would strand that snapshot on
// already-collected history. Versions older than two generations below the
// watermark can never be read again.
func (o *Oracle) Watermark() Timestamp {
	min := o.next
	for _, ts := range o.active {
		if ts < min {
			min = ts
		}
	}
	for _, cts := range o.unsettled {
		if cts-1 < min {
			min = cts - 1
		}
	}
	return min
}

// ActiveCount returns the number of in-flight transactions.
func (o *Oracle) ActiveCount() int { return len(o.active) }

// UnsettledCount returns the number of commits whose durability fate is not
// yet sealed (tests and diagnostics).
func (o *Oracle) UnsettledCount() int { return len(o.unsettled) }

package cc

import (
	"sort"
	"time"

	"wattdb/internal/sim"
)

// LockMode is an MGL-RX lock mode. R(ead)/X(exclusive) locks are taken on
// records; their intention variants IR/IX on coarser granules (partition,
// table) announce finer-grained activity below.
type LockMode int

const (
	LockIR LockMode = iota // intention to read below
	LockIX                 // intention to write below
	LockR                  // shared read
	LockX                  // exclusive
)

// String returns the mode's display name.
func (m LockMode) String() string {
	return [...]string{"IR", "IX", "R", "X"}[m]
}

// compatible reports whether a and b may be held simultaneously by
// different transactions (classical MGL compatibility matrix).
func compatible(a, b LockMode) bool {
	switch a {
	case LockIR:
		return b != LockX
	case LockIX:
		return b == LockIR || b == LockIX
	case LockR:
		return b == LockIR || b == LockR
	default: // LockX
		return false
	}
}

// supremum returns the weakest mode at least as strong as both (upgrade
// target). R+IX jumps to X (no SIX mode, as in the paper's RX scheme).
func supremum(a, b LockMode) LockMode {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == LockIR:
		return b
	case a == LockIX && b == LockR:
		return LockX
	default:
		return LockX
	}
}

type lockReq struct {
	txn  *Txn
	mode LockMode
}

type lockHead struct {
	granted map[TxnID]lockReq
	queue   []*lockReq
	freed   *sim.Signal
}

// LockManager implements MGL-RX over named resources. Lock names encode the
// hierarchy externally (e.g. "part/7" and "part/7/key/x"); the manager
// itself is hierarchy-agnostic.
type LockManager struct {
	env   *sim.Env
	locks map[string]*lockHead
	// Waits counts blocking lock acquisitions (contention metric).
	Waits int64
}

// NewLockManager returns an empty lock table.
func NewLockManager(env *sim.Env) *LockManager {
	return &LockManager{env: env, locks: make(map[string]*lockHead)}
}

func (lm *LockManager) head(name string) *lockHead {
	h, ok := lm.locks[name]
	if !ok {
		h = &lockHead{granted: make(map[TxnID]lockReq), freed: sim.NewSignal(lm.env)}
		lm.locks[name] = h
	}
	return h
}

// grantable reports whether txn may hold mode given current grants
// (ignoring its own) and, for fairness, the wait queue ahead of it.
func (h *lockHead) grantable(txn *Txn, mode LockMode, skipQueue bool) bool {
	for id, g := range h.granted {
		if id == txn.ID {
			continue
		}
		if !compatible(mode, g.mode) {
			return false
		}
	}
	if !skipQueue {
		for _, q := range h.queue {
			if q.txn.ID != txn.ID {
				return false // FIFO: someone is already waiting
			}
		}
	}
	return true
}

// Lock acquires mode on name for txn, waiting up to timeout. Re-acquiring a
// weaker or equal mode is a no-op; a stronger mode upgrades (possibly
// waiting). Lock waits are metered as CatLocking on p.
func (lm *LockManager) Lock(p *sim.Proc, txn *Txn, name string, mode LockMode, timeout time.Duration) error {
	if !txn.Active() {
		return ErrTxnNotActive
	}
	h := lm.head(name)
	if g, ok := h.granted[txn.ID]; ok {
		need := supremum(g.mode, mode)
		if need == g.mode {
			return nil
		}
		mode = need // upgrade
	}
	// Fast path: grant immediately. Upgrades may bypass the queue (they
	// already hold a grant; making them queue behind incompatible waiters
	// deadlocks instantly).
	_, upgrading := h.granted[txn.ID]
	if h.grantable(txn, mode, upgrading) {
		h.granted[txn.ID] = lockReq{txn, mode}
		return nil
	}
	lm.Waits++
	req := &lockReq{txn, mode}
	h.queue = append(h.queue, req)
	stop := p.Meter(sim.CatLocking)
	defer stop()
	deadline := lm.env.Now() + timeout
	for {
		remaining := deadline - lm.env.Now()
		if remaining <= 0 || !h.freed.WaitTimeout(p, remaining) {
			lm.dequeue(h, req)
			return ErrLockTimeout
		}
		if !txn.Active() {
			lm.dequeue(h, req)
			return ErrTxnNotActive
		}
		// Re-check in queue order.
		if len(h.queue) > 0 && h.queue[0] == req && h.grantable(txn, mode, true) {
			h.queue = h.queue[1:]
			h.granted[txn.ID] = lockReq{txn, mode}
			h.freed.Fire() // let the next waiter re-evaluate
			return nil
		}
		if upgrading && h.grantable(txn, mode, true) {
			lm.dequeue(h, req)
			h.granted[txn.ID] = lockReq{txn, mode}
			h.freed.Fire()
			return nil
		}
	}
}

func (lm *LockManager) dequeue(h *lockHead, req *lockReq) {
	for i, q := range h.queue {
		if q == req {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			break
		}
	}
	h.freed.Fire()
}

// Unlock releases txn's lock on name.
func (lm *LockManager) Unlock(txn *Txn, name string) {
	h, ok := lm.locks[name]
	if !ok {
		return
	}
	if _, held := h.granted[txn.ID]; !held {
		return
	}
	delete(h.granted, txn.ID)
	h.freed.Fire()
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(lm.locks, name)
	}
}

// ReleaseAll releases every lock txn holds (commit/abort epilogue). Locks
// are released in name order: each release fires a signal that reschedules
// waiters, so map-iteration order would leak scheduling nondeterminism into
// otherwise identical runs.
func (lm *LockManager) ReleaseAll(txn *Txn) {
	var names []string
	for name, h := range lm.locks {
		if _, held := h.granted[txn.ID]; held {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := lm.locks[name]
		delete(h.granted, txn.ID)
		h.freed.Fire()
		if len(h.granted) == 0 && len(h.queue) == 0 {
			delete(lm.locks, name)
		}
	}
}

// HeldModes returns the modes txn holds, keyed by resource name (testing
// and diagnostics).
func (lm *LockManager) HeldModes(txn *Txn) map[string]LockMode {
	out := make(map[string]LockMode)
	for name, h := range lm.locks {
		if g, ok := h.granted[txn.ID]; ok {
			out[name] = g.mode
		}
	}
	return out
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/keycodec"
	"wattdb/internal/metrics"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/tpcc"
)

// TimelineOpts configure one rebalancing run (the experiment of Sect. 5.1):
// a TPC-C cluster on two nodes is instructed at t=0 to migrate 50% of all
// records to two freshly powered nodes under continuous load.
type TimelineOpts struct {
	Preset  Preset
	Scheme  table.Scheme
	Helpers bool // Fig. 8: power two helper nodes for log shipping + rDMA buffering
	// CollectBreakdown attaches Fig. 7 decompositions to transactions.
	CollectBreakdown bool
}

// TimelineResult carries the four series of Fig. 6 / Fig. 8 plus the Fig. 7
// breakdowns.
type TimelineResult struct {
	Scheme        table.Scheme
	Helpers       bool
	QPS           []metrics.Bin // committed transactions per second
	ResponseMs    []metrics.Bin // mean response time, milliseconds
	Watts         []metrics.Bin // cluster power
	JoulePerQuery []metrics.Bin // energy per committed transaction

	MigrationTook time.Duration
	Commits       int
	Aborts        int

	// KernelStats snapshots the simulation kernel's event counters at the
	// end of the run: two same-seed runs must agree exactly (the
	// determinism guard asserts this).
	KernelStats sim.Stats

	// Mean per-transaction time per category before and during the
	// rebalance (Fig. 7 bars).
	BreakdownNormal map[sim.Category]time.Duration
	BreakdownRebal  map[sim.Category]time.Duration
}

// RunTimeline executes the rebalancing experiment and returns its series.
func RunTimeline(o TimelineOpts) (TimelineResult, error) {
	pre := o.Preset
	env := sim.NewEnv(pre.Seed)
	defer env.Close()

	cfg := cluster.DefaultConfig()
	cfg.Nodes = 6 // 0,1: initial; 2,3: scale-out targets; 4,5: helpers
	cfg.Cal = calibration(pre)
	c := cluster.New(env, cfg)
	c.Nodes[1].HW.ForceActive()

	tcfg := tpcc.Config{
		Warehouses:           pre.Warehouses,
		DistrictsPerW:        pre.DistrictsPerW,
		CustomersPerDistrict: pre.CustomersPerDistrict,
		Items:                pre.Items,
		InitialOrdersPerDist: pre.InitialOrdersPerDist,
		Seed:                 pre.Seed,
	}
	W := pre.Warehouses
	dep, err := tpcc.Deploy(c.Master, tcfg, o.Scheme, []tpcc.WarehouseRange{
		{FromW: 1, ToW: W / 2, Owner: c.Nodes[0]},
		{FromW: W/2 + 1, ToW: W, Owner: c.Nodes[1]},
	}, c.Nodes)
	if err != nil {
		return TimelineResult{}, err
	}
	var loadErr error
	env.Spawn("load", func(p *sim.Proc) { loadErr = dep.Load(p) })
	if err := env.Run(); err != nil {
		return TimelineResult{}, err
	}
	if loadErr != nil {
		return TimelineResult{}, loadErr
	}

	origin := pre.Warmup // rebalance trigger (t=0 of the plots)
	end := origin + pre.Observe

	res := TimelineResult{
		Scheme:          o.Scheme,
		Helpers:         o.Helpers,
		BreakdownNormal: map[sim.Category]time.Duration{},
		BreakdownRebal:  map[sim.Category]time.Duration{},
	}
	qps := metrics.NewSeries(origin, pre.BinSize)
	rt := metrics.NewSeries(origin, pre.BinSize)
	watts := metrics.NewSeries(origin, pre.BinSize)

	var normalN, rebalN int
	migrating := false

	// Clients.
	var clients []*tpcc.Client
	for i := 0; i < pre.Clients; i++ {
		cl := tpcc.NewClient(i, c.Master, dep, pre.Interval, cc.SnapshotIsolation)
		cl.CollectBreakdown = o.CollectBreakdown
		cl.OnResult = func(r tpcc.Result) {
			at := r.Start + r.Latency
			if r.Committed {
				res.Commits++
				qps.Add(at, 1)
				rt.Add(at, float64(r.Latency)/float64(time.Millisecond))
			} else {
				res.Aborts++
			}
			if o.CollectBreakdown && r.Breakdown != nil && r.Committed {
				var into map[sim.Category]time.Duration
				switch {
				case at < origin:
					into = res.BreakdownNormal
					normalN++
				case migrating:
					into = res.BreakdownRebal
					rebalN++
				default:
					return
				}
				categorised := time.Duration(0)
				for _, cat := range sim.Categories() {
					if cat == sim.CatOther || cat == sim.CatCPU {
						continue
					}
					into[cat] += r.Breakdown.Get(cat)
					categorised += r.Breakdown.Get(cat)
				}
				if rest := r.Latency - categorised; rest > 0 {
					into[sim.CatOther] += rest
				}
			}
		}
		clients = append(clients, cl)
		cl.Start()
	}
	// Vacuum daemons on serving nodes.
	for _, n := range c.Nodes[:4] {
		n.StartVacuum(10 * time.Second)
	}
	// Power metering.
	c.Meter.OnSample = func(at time.Duration, w float64) { watts.Add(at, w) }
	c.Meter.Start()

	// Rebalance controller.
	var migErr error
	env.Spawn("controller", func(p *sim.Proc) {
		p.Sleep(origin)
		migrating = true
		start := p.Now()

		// Power the target nodes (and helpers) in parallel.
		ready := sim.NewSignal(env)
		pending := 2
		boot := func(n *cluster.DataNode) {
			env.Spawn("boot", func(bp *sim.Proc) {
				n.PowerOn(bp)
				pending--
				if pending == 0 {
					ready.Fire()
				}
			})
		}
		boot(c.Nodes[2])
		boot(c.Nodes[3])
		if o.Helpers {
			pending += 2
			boot(c.Nodes[4])
			boot(c.Nodes[5])
		}
		for pending > 0 {
			ready.Wait(p)
		}
		if o.Helpers {
			c.Master.AttachHelper(p, c.Nodes[0], c.Nodes[4])
			c.Master.AttachHelper(p, c.Nodes[1], c.Nodes[5])
		}

		// Migrate the upper half of each node's warehouses: 50% of all
		// records, to the two new nodes.
		q1 := keycodec.Int64Key(int64(W/4 + 1))
		q2 := keycodec.Int64Key(int64(W/2 + 1))
		q3 := keycodec.Int64Key(int64(3*W/4 + 1))
		for _, tbl := range tpcc.PartitionedTables() {
			if err := c.Master.MigrateRangeFraction(p, tbl, q1, q2, 0.5, c.Nodes[2]); err != nil {
				migErr = err
				return
			}
			if err := c.Master.MigrateRangeFraction(p, tbl, q3, nil, 0.5, c.Nodes[3]); err != nil {
				migErr = err
				return
			}
		}
		res.MigrationTook = p.Now() - start
		migrating = false

		if o.Helpers {
			// Helpers stay on a while after the move (the paper detaches
			// them around t+370), then are turned off again.
			idle := 370*time.Second - (p.Now() - origin)
			if idle > 0 && pre.Observe > 370*time.Second {
				p.Sleep(idle)
			}
			c.Master.DetachHelper(p, c.Nodes[0])
			c.Master.DetachHelper(p, c.Nodes[1])
			c.Nodes[4].HW.PowerOff(p)
			c.Nodes[5].HW.PowerOff(p)
		}
	})

	if err := env.RunUntil(end); err != nil {
		return res, err
	}
	if migErr != nil {
		return res, migErr
	}
	res.KernelStats = env.Stats()
	for _, cl := range clients {
		cl.Stop()
	}

	trim := func(bins []metrics.Bin) []metrics.Bin {
		out := bins[:0]
		for _, b := range bins {
			if b.Start < pre.Observe { // drop the partial final bin
				out = append(out, b)
			}
		}
		return out
	}
	res.QPS = trim(qps.RatePerSecond())
	res.ResponseMs = trim(rt.Bins())
	res.Watts = trim(watts.Bins())
	// Joule/query: mean watts over committed throughput, bin-aligned.
	rates := map[time.Duration]float64{}
	for _, b := range res.QPS {
		rates[b.Start] = b.Mean
	}
	for _, b := range res.Watts {
		if q, ok := rates[b.Start]; ok && q > 0 {
			res.JoulePerQuery = append(res.JoulePerQuery, metrics.Bin{
				Start: b.Start, Mean: b.Mean / q, Count: b.Count,
			})
		}
	}
	if o.CollectBreakdown {
		norm := func(m map[sim.Category]time.Duration, n int) {
			if n == 0 {
				return
			}
			for cat := range m {
				m[cat] /= time.Duration(n)
			}
		}
		norm(res.BreakdownNormal, normalN)
		norm(res.BreakdownRebal, rebalN)
	}
	return res, nil
}

// MeanOver averages a series' bins whose start lies in [from, to).
func MeanOver(bins []metrics.Bin, from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, b := range bins {
		if b.Start >= from && b.Start < to {
			sum += b.Mean
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormatTimeline renders the four series side by side.
func FormatTimeline(label string, r TimelineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (migration took %.0f s, %d commits, %d aborts)\n",
		label, r.MigrationTook.Seconds(), r.Commits, r.Aborts)
	fmt.Fprintf(&b, "%8s %10s %10s %10s %12s\n", "t(s)", "qps", "rt(ms)", "Watt", "J/query")
	idx := map[time.Duration][4]float64{}
	order := []time.Duration{}
	add := func(bins []metrics.Bin, slot int) {
		for _, bin := range bins {
			v, ok := idx[bin.Start]
			if !ok {
				order = append(order, bin.Start)
			}
			v[slot] = bin.Mean
			idx[bin.Start] = v
		}
	}
	add(r.QPS, 0)
	add(r.ResponseMs, 1)
	add(r.Watts, 2)
	add(r.JoulePerQuery, 3)
	for _, t := range order {
		v := idx[t]
		fmt.Fprintf(&b, "%8.0f %10.1f %10.1f %10.1f %12.3f\n", t.Seconds(), v[0], v[1], v[2], v[3])
	}
	return b.String()
}

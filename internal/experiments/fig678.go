package experiments

import (
	"fmt"
	"strings"
	"time"

	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Fig6Result holds the three schemes' rebalancing timelines.
type Fig6Result struct {
	Physical      TimelineResult
	Logical       TimelineResult
	Physiological TimelineResult
}

// Fig6 reproduces the paper's main experiment: the Sect. 5.1 TPC-C
// rebalance (2 nodes -> 4 nodes, 50% of records moved at t=0) under each of
// the three partitioning schemes, reporting throughput, response time,
// power, and energy per query over time.
func Fig6(pre Preset) (Fig6Result, error) {
	var res Fig6Result
	var err error
	if res.Physical, err = RunTimeline(TimelineOpts{Preset: pre, Scheme: table.Physical}); err != nil {
		return res, fmt.Errorf("fig6 physical: %w", err)
	}
	if res.Logical, err = RunTimeline(TimelineOpts{Preset: pre, Scheme: table.Logical}); err != nil {
		return res, fmt.Errorf("fig6 logical: %w", err)
	}
	if res.Physiological, err = RunTimeline(TimelineOpts{Preset: pre, Scheme: table.Physiological}); err != nil {
		return res, fmt.Errorf("fig6 physiological: %w", err)
	}
	return res, nil
}

// String renders the three timelines.
func (r Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 6 — rebalancing under TPC-C, three partitioning schemes\n\n")
	b.WriteString(FormatTimeline("physical", r.Physical))
	b.WriteString("\n")
	b.WriteString(FormatTimeline("logical", r.Logical))
	b.WriteString("\n")
	b.WriteString(FormatTimeline("physiological", r.Physiological))
	return b.String()
}

// Fig7Result holds the per-component query runtime bars.
type Fig7Result struct {
	Normal    map[sim.Category]time.Duration
	Rebalance map[sim.Category]time.Duration
	Improved  map[sim.Category]time.Duration // rebalancing with helper nodes
}

// Fig7 reproduces the runtime-breakdown study: mean per-transaction time in
// each DBMS component during normal operation, while rebalancing, and while
// rebalancing with helper nodes attached (the "improved" configuration).
// The run uses a deliberately DRAM-starved buffer (a quarter of the
// preset's) so the storage subsystem is the bottleneck, as on the paper's
// 2 GB nodes: that is the regime where log shipping and rDMA buffering
// relieve pressure.
func Fig7(pre Preset) (Fig7Result, error) {
	pre.BufferFrames = 96
	pre.Clients = pre.Clients * 3 / 4
	plain, err := RunTimeline(TimelineOpts{Preset: pre, Scheme: table.Physiological, CollectBreakdown: true})
	if err != nil {
		return Fig7Result{}, fmt.Errorf("fig7 plain: %w", err)
	}
	helped, err := RunTimeline(TimelineOpts{Preset: pre, Scheme: table.Physiological, Helpers: true, CollectBreakdown: true})
	if err != nil {
		return Fig7Result{}, fmt.Errorf("fig7 helpers: %w", err)
	}
	return Fig7Result{
		Normal:    plain.BreakdownNormal,
		Rebalance: plain.BreakdownRebal,
		Improved:  helped.BreakdownRebal,
	}, nil
}

// String renders the three stacked bars.
func (r Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — impact factors on query runtime when rebalancing (ms per txn)\n")
	cats := []sim.Category{sim.CatLogging, sim.CatLatching, sim.CatLocking, sim.CatNetworkIO, sim.CatDiskIO, sim.CatOther}
	fmt.Fprintf(&b, "%-12s %12s %16s %14s\n", "component", "normal", "rebalancing", "improved")
	totals := [3]float64{}
	for _, cat := range cats {
		n := float64(r.Normal[cat]) / float64(time.Millisecond)
		reb := float64(r.Rebalance[cat]) / float64(time.Millisecond)
		imp := float64(r.Improved[cat]) / float64(time.Millisecond)
		totals[0] += n
		totals[1] += reb
		totals[2] += imp
		fmt.Fprintf(&b, "%-12s %12.2f %16.2f %14.2f\n", cat, n, reb, imp)
	}
	fmt.Fprintf(&b, "%-12s %12.2f %16.2f %14.2f\n", "TOTAL", totals[0], totals[1], totals[2])
	return b.String()
}

// Fig8Result compares plain physiological rebalancing with the helper-node
// configuration.
type Fig8Result struct {
	Plain  TimelineResult
	Helped TimelineResult
}

// Fig8 reproduces the final experiment: physiological rebalancing with two
// additional helper nodes powered up at t=0 for log shipping and rDMA
// buffering, traded off against the extra power they draw.
func Fig8(pre Preset) (Fig8Result, error) {
	plain, err := RunTimeline(TimelineOpts{Preset: pre, Scheme: table.Physiological})
	if err != nil {
		return Fig8Result{}, fmt.Errorf("fig8 plain: %w", err)
	}
	helped, err := RunTimeline(TimelineOpts{Preset: pre, Scheme: table.Physiological, Helpers: true})
	if err != nil {
		return Fig8Result{}, fmt.Errorf("fig8 helpers: %w", err)
	}
	return Fig8Result{Plain: plain, Helped: helped}, nil
}

// String renders both timelines.
func (r Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — physiological rebalancing with helper nodes\n\n")
	b.WriteString(FormatTimeline("physiological", r.Plain))
	b.WriteString("\n")
	b.WriteString(FormatTimeline("physiological + helper", r.Helped))
	return b.String()
}

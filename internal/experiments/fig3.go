package experiments

import (
	"fmt"
	"strings"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Fig3Row is one update-ratio point of the MVCC vs MGL-RX comparison.
type Fig3Row struct {
	UpdatePct      int
	MVCCPerMin     float64
	LockingPerMin  float64
	MVCCStorage    float64 // peak storage relative to initial, percent
	LockingStorage float64
}

// Fig3Result holds the sweep.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 reproduces the paper's concurrency-control micro-benchmark:
// transaction throughput and storage consumption under MVCC versus
// multi-granularity RX locking while 50% of a table's records are being
// moved to another partition, across read/update mixes. Expected shape:
// MVCC's advantage grows from ~15% (read-only) to ~90% (all updates), at
// the price of higher storage for retained versions.
func Fig3(records int, ratios []int, seed int64) (Fig3Result, error) {
	run := func(mode cc.Mode, updatePct int) (perMin float64, storagePct float64, err error) {
		env := sim.NewEnv(seed)
		defer env.Close()
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 2
		cfg.Cal.BufferFrames = 1024
		c := cluster.New(env, cfg)
		c.Nodes[1].HW.ForceActive()
		c.Master.MoveMode = mode
		schema := &table.Schema{
			ID: 1, Name: "t", KeyCols: 1,
			Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColString}},
		}
		if _, err := c.Master.CreateTable(schema, table.Logical,
			[]cluster.RangeSpec{{Owner: c.Nodes[0]}}); err != nil {
			return 0, 0, err
		}
		var loadErr error
		env.Spawn("load", func(p *sim.Proc) {
			i := 0
			loadErr = c.Master.BulkLoad(p, "t", func() ([]byte, []byte, bool) {
				if i >= records {
					return nil, nil, false
				}
				row := table.Row{int64(i), "value-value-value-value-value-value"}
				key, _ := schema.Key(row)
				payload, _ := schema.EncodeRow(row)
				i++
				return key, payload, true
			})
		})
		if err := env.Run(); err != nil {
			return 0, 0, err
		}
		if loadErr != nil {
			return 0, 0, loadErr
		}
		tm, _ := c.Master.Table("t")

		storageNow := func() int64 {
			var total int64
			seen := map[*table.Partition]bool{}
			for _, e := range tm.Entries() {
				for _, cand := range []*table.Partition{e.Part, e.OldPart} {
					if cand != nil && !seen[cand] {
						seen[cand] = true
						total += cand.StorageBytes()
					}
				}
			}
			total += c.Nodes[0].Log.RetainedBytes() + c.Nodes[1].Log.RetainedBytes()
			return total
		}
		initial := storageNow()
		peak := initial

		committed := 0
		moveDone := false
		// Clients: 4 workers issuing 4-record transactions, read-only or
		// update per the ratio.
		for w := 0; w < 4; w++ {
			w := w
			env.Spawn(fmt.Sprintf("client-%d", w), func(p *sim.Proc) {
				rng := env.Rand
				for !moveDone {
					s := c.Master.Begin(p, mode, c.Nodes[0])
					update := rng.Intn(100) < updatePct
					ok := true
					for i := 0; i < 4; i++ {
						k := keycodec.Int64Key(int64(rng.Intn(records)))
						if update {
							row := table.Row{int64(0), fmt.Sprintf("updated-by-%d", w)}
							payload, _ := schema.EncodeRow(row)
							if err := s.Put(p, "t", k, payload); err != nil {
								ok = false
								break
							}
						} else {
							if _, _, err := s.Get(p, "t", k); err != nil {
								ok = false
								break
							}
						}
					}
					if ok && s.Commit(p) == nil {
						committed++
					} else {
						s.Abort(p)
						p.Sleep(2 * time.Millisecond)
					}
					p.Sleep(time.Millisecond)
				}
			})
		}
		// Storage sampler.
		env.Spawn("sampler", func(p *sim.Proc) {
			for !moveDone {
				p.Sleep(500 * time.Millisecond)
				if s := storageNow(); s > peak {
					peak = s
				}
			}
		})
		// Housekeeping: vacuum and fuzzy checkpoints as a real deployment
		// would (otherwise both schemes' storage grows without bound). The
		// checkpoint truncates by its redo point — never past a dirty page's
		// recLSN or an in-flight transaction's first record — instead of the
		// raw flush-everything checkpoint LSN.
		for _, n := range []*cluster.DataNode{c.Nodes[0], c.Nodes[1]} {
			n.StartVacuum(2 * time.Second)
			node := n
			env.Spawn("checkpointer", func(p *sim.Proc) {
				for !moveDone {
					p.Sleep(2 * time.Second)
					if _, err := c.CheckpointNode(p, node, 0); err != nil {
						return
					}
				}
			})
		}
		var moveTook time.Duration
		var moveErr error
		env.Spawn("mover", func(p *sim.Proc) {
			start := p.Now()
			mid := keycodec.Int64Key(int64(records / 2))
			moveErr = c.Master.MigrateRange(p, "t", mid, nil, c.Nodes[1])
			moveTook = p.Now() - start
			moveDone = true
		})
		if err := env.RunUntil(30 * time.Minute); err != nil {
			return 0, 0, err
		}
		if moveErr != nil {
			return 0, 0, moveErr
		}
		if s := storageNow(); s > peak {
			peak = s
		}
		perMin = float64(committed) / moveTook.Minutes()
		storagePct = float64(peak) / float64(initial) * 100
		return perMin, storagePct, nil
	}

	var res Fig3Result
	for _, pct := range ratios {
		mvccTA, mvccSt, err := run(cc.SnapshotIsolation, pct)
		if err != nil {
			return res, fmt.Errorf("fig3 mvcc %d%%: %w", pct, err)
		}
		lockTA, lockSt, err := run(cc.Locking, pct)
		if err != nil {
			return res, fmt.Errorf("fig3 locking %d%%: %w", pct, err)
		}
		res.Rows = append(res.Rows, Fig3Row{pct, mvccTA, lockTA, mvccSt, lockSt})
	}
	return res, nil
}

// String formats the sweep like the paper's combined bar/line chart.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — MVCC vs MGL-RX while moving 50%% of records\n")
	fmt.Fprintf(&b, "%8s %14s %14s %12s %14s %16s\n",
		"update%", "MVCC TA/min", "MGL TA/min", "MVCC/MGL", "MVCC stor%", "MGL stor%")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.LockingPerMin > 0 {
			ratio = row.MVCCPerMin / row.LockingPerMin
		}
		fmt.Fprintf(&b, "%8d %14.0f %14.0f %11.2fx %13.1f%% %15.1f%%\n",
			row.UpdatePct, row.MVCCPerMin, row.LockingPerMin, ratio, row.MVCCStorage, row.LockingStorage)
	}
	return b.String()
}

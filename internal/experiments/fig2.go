package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/exec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Fig2Row is one measurement of the offloading experiment: throughput at a
// given concurrency, with the sort local vs offloaded.
type Fig2Row struct {
	Concurrent int
	LocalQPS   float64
	RemoteQPS  float64
}

// Fig2Result holds the sweep.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 reproduces the paper's offloading study: concurrent scan+sort
// queries on one node, versus the sort operator offloaded to a second node.
// At low concurrency local execution wins (no network); as concurrency
// grows, the loaded node's CPU and sort workspace saturate and offloading
// overtakes (Fig. 2's crossover).
func Fig2(rows int, levels []int, seed int64) (Fig2Result, error) {
	run := func(concurrent int, offload bool) (float64, error) {
		env := sim.NewEnv(seed)
		defer env.Close()
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 2
		cfg.Cal.BufferFrames = 8192
		c := cluster.New(env, cfg)
		c.Nodes[1].HW.ForceActive()
		schema := &table.Schema{
			ID: 1, Name: "t", KeyCols: 1,
			Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColString}},
		}
		if _, err := c.Master.CreateTable(schema, table.Physiological,
			[]cluster.RangeSpec{{Owner: c.Nodes[0]}}); err != nil {
			return 0, err
		}
		var loadErr error
		env.Spawn("load", func(p *sim.Proc) {
			i := 0
			loadErr = c.Master.BulkLoad(p, "t", func() ([]byte, []byte, bool) {
				if i >= rows {
					return nil, nil, false
				}
				row := table.Row{int64(i), "payload-payload-payload-payload"}
				key, _ := schema.Key(row)
				payload, _ := schema.EncodeRow(row)
				i++
				return key, payload, true
			})
		})
		if err := env.Run(); err != nil {
			return 0, err
		}
		if loadErr != nil {
			return 0, loadErr
		}
		tm, _ := c.Master.Table("t")
		part := tm.Entries()[0].Part
		cal := c.Cal
		// Per-node sort workspace: enough for ~16 concurrent sorts; beyond
		// that, sorts spill with growing pass counts.
		workspace := [2]*sim.Resource{
			sim.NewResource(env, int64(rows)*50*16),
			sim.NewResource(env, int64(rows)*50*16),
		}
		groups := [2]*exec.SortGroup{{}, {}}

		const measureFor = 30 * time.Second
		done := 0
		stop := false
		for q := 0; q < concurrent; q++ {
			env.Spawn(fmt.Sprintf("query-%d", q), func(p *sim.Proc) {
				for !stop {
					scan := &exec.TableScan{
						Part:   part,
						Txn:    c.Master.Oracle.Begin(cc.SnapshotIsolation),
						Vector: 256,
					}
					var child exec.Operator = scan
					node, nodeID := c.Nodes[0].HW, 0
					if offload {
						child = &exec.Remote{Child: scan, Net: c.Net, ChildNode: 0, ConsumerNode: 1}
						node, nodeID = c.Nodes[1].HW, 1
					}
					plan := &exec.Sort{
						Child:     child,
						Node:      node,
						Less:      func(b *table.Batch, i, j int) bool { return bytes.Compare(b.Bytes(1, i), b.Bytes(1, j)) < 0 },
						CPUPerRow: cal.CPUTupleSort,
						Vector:    256,
						Workspace: workspace[nodeID],
						SpillDisk: c.Nodes[nodeID].HW.LogDisk(), // the HDD
						Group:     groups[nodeID],
					}
					if _, err := exec.Drain(p, plan); err != nil {
						return
					}
					if !stop {
						done++
					}
				}
			})
		}
		env.Spawn("stopper", func(p *sim.Proc) {
			p.Sleep(measureFor)
			stop = true
		})
		if err := env.RunUntil(measureFor + 2*time.Minute); err != nil {
			return 0, err
		}
		return float64(done) / measureFor.Seconds(), nil
	}

	var res Fig2Result
	for _, n := range levels {
		local, err := run(n, false)
		if err != nil {
			return res, err
		}
		remote, err := run(n, true)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Fig2Row{n, local, remote})
	}
	return res, nil
}

// String formats the sweep as the paper's grouped bars.
func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — offloading the sort operator, throughput (queries/s)\n")
	fmt.Fprintf(&b, "%12s %14s %14s\n", "concurrent", "L SORT local", "R SORT remote")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12d %14.2f %14.2f\n", row.Concurrent, row.LocalQPS, row.RemoteQPS)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/chbench"
	"wattdb/internal/cluster"
	"wattdb/internal/exec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/tpcc"
)

// HTAP analytics placements. Baseline runs no analytics at all (the OLTP p99
// reference); the other three run the same Q1-style aggregate continuously
// while TPC-C traffic keeps committing.
const (
	HTAPBaseline  = "oltp-only"
	HTAPColocated = "co-located"
	HTAPOffloaded = "offloaded"
	HTAPParallel  = "parallel"
)

// htapStreams is how many concurrent analytics query loops each mode runs.
const htapStreams = 2

// htapCPUPerRow is the analytics expression cost per row (aggregate
// arithmetic), charged on the node executing the operator.
const htapCPUPerRow = 20 * time.Microsecond

// htapVector is the analytics batch size.
const htapVector = 128

// FigHTAPRow is one placement's measurement: analytics throughput and the
// OLTP tail latency it leaves behind.
type FigHTAPRow struct {
	Mode          string
	AnalyticsQPS  float64
	OLTPp99Ms     float64
	OLTPCommits   int
	FollowerReads int
}

// FigHTAPResult holds the placement sweep.
type FigHTAPResult struct {
	Rows []FigHTAPRow
}

// Row returns the named mode's measurement.
func (r FigHTAPResult) Row(mode string) FigHTAPRow {
	for _, row := range r.Rows {
		if row.Mode == mode {
			return row
		}
	}
	return FigHTAPRow{}
}

// FigHTAP measures the HTAP interference study: TPC-C on two data nodes
// (data-replicated onto the spares) with the CH-style Q1 aggregate running
// co-located with an OLTP home, offloaded to a spare node (where follower
// snapshot reads keep the scans off the primaries), or partition-parallel
// through the exchange. The paper's offloading shape is the acceptance bar:
// offloaded analytics must out-run co-located while OLTP p99 improves,
// because both the operator CPU and (about half of) the scan reads move to
// an idle node.
func FigHTAP(pre Preset) (FigHTAPResult, error) {
	run := func(mode string) (FigHTAPRow, error) {
		env := sim.NewEnv(pre.Seed)
		defer env.Close()
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4 // 0,1: OLTP owners; 2,3: spares holding follower replicas
		cfg.Cal = calibration(pre)
		cfg.DataReplicas = 2
		c := cluster.New(env, cfg)
		for _, n := range c.Nodes[1:] {
			n.HW.ForceActive()
		}

		tcfg := tpcc.Config{
			Warehouses:           pre.Warehouses,
			DistrictsPerW:        pre.DistrictsPerW,
			CustomersPerDistrict: pre.CustomersPerDistrict,
			Items:                pre.Items,
			InitialOrdersPerDist: pre.InitialOrdersPerDist,
			Seed:                 pre.Seed,
		}
		W := pre.Warehouses
		dep, err := tpcc.Deploy(c.Master, tcfg, table.Physiological, []tpcc.WarehouseRange{
			{FromW: 1, ToW: W / 2, Owner: c.Nodes[0]},
			{FromW: W/2 + 1, ToW: W, Owner: c.Nodes[1]},
		}, c.Nodes)
		if err != nil {
			return FigHTAPRow{}, err
		}
		var loadErr error
		env.Spawn("load", func(p *sim.Proc) { loadErr = dep.Load(p) })
		if err := env.Run(); err != nil {
			return FigHTAPRow{}, err
		}
		if loadErr != nil {
			return FigHTAPRow{}, loadErr
		}
		c.SetupReplicationDrain()

		warm := pre.Warmup
		end := warm + pre.Observe
		stop := false

		// OLTP offered load; latencies collected after warmup.
		var latencies []time.Duration
		commits := 0
		for i := 0; i < pre.Clients; i++ {
			cl := tpcc.NewClient(i, c.Master, dep, pre.Interval, cc.SnapshotIsolation)
			cl.OnResult = func(r tpcc.Result) {
				if !r.Committed || r.Start < warm || stop {
					return
				}
				commits++
				latencies = append(latencies, r.Latency)
			}
			cl.Start()
		}

		// Background shipper: queued WAL frames ride to followers so the
		// offloaded scans keep qualifying for follower snapshot reads.
		env.Spawn("shipper", func(p *sim.Proc) {
			for !stop {
				p.Sleep(20 * time.Millisecond)
				c.DrainShipQueues(p)
			}
		})

		// Vacuum keeps the update-heavy tables' version chains pruned, so
		// the analytics scan cost stays proportional to the live row count
		// in every mode (stock is updated in place and never grows).
		for _, n := range c.Nodes {
			n.StartVacuum(10 * time.Second)
		}

		// Analytics streams: the suite's stock-value aggregate — a full
		// scan-and-group over a fixed-size table, so queries do the same
		// work in every mode and throughput differences measure placement,
		// not data growth. Co-located charges the aggregate on an OLTP
		// owner and keeps the default owner/follower read mix; offloaded
		// runs on a spare with the PreferFollower hint; parallel fans the
		// scan over the owners through the exchange.
		queries := 0
		if mode != HTAPBaseline {
			home := c.Nodes[0] // co-located: same node as warehouse 1..W/2 OLTP
			if mode != HTAPColocated {
				home = c.Nodes[2] // spare: follower of both OLTP owners
			}
			stockSchema := dep.Schemas[tpcc.TStock]
			for q := 0; q < htapStreams; q++ {
				env.Spawn(fmt.Sprintf("analytics-%d", q), func(p *sim.Proc) {
					for !stop {
						var err error
						if mode == HTAPParallel {
							txn := c.Master.Oracle.Begin(cc.SnapshotIsolation)
							var ex exec.Operator
							ex, err = c.Master.ParallelScan(txn, tpcc.TStock, home, htapVector,
								func(scan exec.Operator, owner *cluster.DataNode) exec.Operator {
									return &exec.Project{Child: scan, Node: owner.HW,
										Cols: []int{0, 3}, CPUPerRow: htapCPUPerRow}
								})
							if err == nil {
								_, err = exec.Drain(p, &exec.GroupAgg{Child: ex, Node: home.HW,
									GroupCol: 0, SumCol: 1, CPUPerRow: htapCPUPerRow, Vector: htapVector})
							}
						} else {
							sess := c.Master.Begin(p, cc.SnapshotIsolation, home)
							// Offloading hint: serve every eligible scan from
							// follower stores, not just every other one.
							// Co-located keeps the default mix.
							sess.PreferFollower = mode == HTAPOffloaded
							scan := &chbench.SessionScan{Sess: sess, Table: tpcc.TStock,
								Schema: stockSchema, Vector: htapVector}
							_, err = exec.Drain(p, &exec.GroupAgg{Child: scan, Node: home.HW,
								GroupCol: 0, SumCol: 3, CPUPerRow: htapCPUPerRow, Vector: htapVector})
							sess.Abort(p)
						}
						if err == nil && !stop && p.Now() >= warm {
							queries++
						}
					}
				})
			}
		}

		env.Spawn("stopper", func(p *sim.Proc) {
			p.Sleep(end)
			stop = true
		})
		if err := env.RunUntil(end); err != nil {
			return FigHTAPRow{}, err
		}

		row := FigHTAPRow{Mode: mode, OLTPCommits: commits}
		row.AnalyticsQPS = float64(queries) / pre.Observe.Seconds()
		if len(latencies) > 0 {
			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			p99 := latencies[len(latencies)*99/100]
			row.OLTPp99Ms = float64(p99) / float64(time.Millisecond)
		}
		_, _, row.FollowerReads, _ = c.ReplicationStats()
		return row, nil
	}

	var res FigHTAPResult
	for _, mode := range []string{HTAPBaseline, HTAPColocated, HTAPOffloaded, HTAPParallel} {
		row, err := run(mode)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String formats the sweep as the HTAP interference table.
func (r FigHTAPResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HTAP — analytics placement vs OLTP interference\n")
	fmt.Fprintf(&b, "%12s %14s %12s %12s %14s\n", "placement", "analytics q/s", "OLTP p99 ms", "commits", "follower reads")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12s %14.2f %12.1f %12d %14d\n",
			row.Mode, row.AnalyticsQPS, row.OLTPp99Ms, row.OLTPCommits, row.FollowerReads)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/exec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Fig1Row is one bar of the paper's Fig. 1 record-throughput micro-benchmark.
type Fig1Row struct {
	Config        string
	RecordsPerSec float64
}

// Fig1Result holds all five configurations.
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 reproduces the Fig. 1 micro-benchmark: a table scan feeding a
// projection under five operator placements/protocols —
// local scan; local scan+project; remote project with single-record
// next(); remote project over vectorised operators; and vectorised with an
// asynchronous buffering operator. Expected shape: ~40 k / ~34 k / <1 k /
// ~24 k / ~30 k records per second.
func Fig1(rows int, seed int64) (Fig1Result, error) {
	env := sim.NewEnv(seed)
	defer env.Close()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cfg.Cal.BufferFrames = 8192 // table fits: measure the operator path, not cold reads
	c := cluster.New(env, cfg)
	c.Nodes[1].HW.ForceActive()

	schema := &table.Schema{
		ID: 1, Name: "scan_table", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColString}},
	}
	if _, err := c.Master.CreateTable(schema, table.Physiological,
		[]cluster.RangeSpec{{Owner: c.Nodes[0]}}); err != nil {
		return Fig1Result{}, err
	}
	var loadErr error
	env.Spawn("load", func(p *sim.Proc) {
		i := 0
		loadErr = c.Master.BulkLoad(p, "scan_table", func() ([]byte, []byte, bool) {
			if i >= rows {
				return nil, nil, false
			}
			row := table.Row{int64(i), "0123456789012345678901234567890123456789"}
			key, _ := schema.Key(row)
			payload, _ := schema.EncodeRow(row)
			i++
			return key, payload, true
		})
	})
	if err := env.Run(); err != nil {
		return Fig1Result{}, err
	}
	if loadErr != nil {
		return Fig1Result{}, loadErr
	}
	tm, err := c.Master.Table("scan_table")
	if err != nil {
		return Fig1Result{}, err
	}
	entry := tm.Entries()[0]
	cal := c.Cal

	scan := func(vector int) *exec.TableScan {
		return &exec.TableScan{
			Part:   entry.Part,
			Txn:    c.Master.Oracle.Begin(cc.SnapshotIsolation),
			Vector: vector,
		}
	}
	measure := func(name string, mk func() exec.Operator) (Fig1Row, error) {
		// Warm the buffer with one throwaway pass, then measure.
		for pass := 0; pass < 2; pass++ {
			start := env.Now()
			var n int
			var err error
			env.Spawn("q", func(p *sim.Proc) { n, err = exec.Drain(p, mk()) })
			if rerr := env.Run(); rerr != nil {
				return Fig1Row{}, rerr
			}
			if err != nil {
				return Fig1Row{}, err
			}
			if pass == 1 {
				elapsed := env.Now() - start
				return Fig1Row{name, float64(n) / elapsed.Seconds()}, nil
			}
		}
		panic("unreachable")
	}

	const vec = 64
	configs := []struct {
		name string
		mk   func() exec.Operator
	}{
		{"TBSCAN local", func() exec.Operator { return scan(1) }},
		{"L PROJECT + TBSCAN", func() exec.Operator {
			return &exec.Project{Child: scan(1), Node: c.Nodes[0].HW, Cols: []int{1}, CPUPerRow: cal.CPUTupleProj}
		}},
		{"R PROJECT + TBSCAN (single record)", func() exec.Operator {
			return &exec.Project{
				Child:     &exec.Remote{Child: scan(1), Net: c.Net, ChildNode: 0, ConsumerNode: 1},
				Node:      c.Nodes[1].HW,
				Cols:      []int{1},
				CPUPerRow: cal.CPUTupleProj,
			}
		}},
		{"R PROJECT + TBSCAN (vectorized)", func() exec.Operator {
			return &exec.Project{
				Child:     &exec.Remote{Child: scan(vec), Net: c.Net, ChildNode: 0, ConsumerNode: 1},
				Node:      c.Nodes[1].HW,
				Cols:      []int{1},
				CPUPerRow: cal.CPUTupleProj,
			}
		}},
		{"R PROJECT + R BUFFER + TBSCAN (vectorized)", func() exec.Operator {
			return &exec.Project{
				Child: &exec.Buffer{
					Child: &exec.Remote{Child: scan(vec), Net: c.Net, ChildNode: 0, ConsumerNode: 1},
					Env:   env,
					Depth: 8,
				},
				Node:      c.Nodes[1].HW,
				Cols:      []int{1},
				CPUPerRow: cal.CPUTupleProj,
			}
		}},
	}
	var res Fig1Result
	for _, cfg := range configs {
		row, err := measure(cfg.name, cfg.mk)
		if err != nil {
			return res, fmt.Errorf("fig1 %s: %w", cfg.name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String formats the result as the paper's bar values.
func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — record throughput micro-benchmark\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-45s %10.0f records/s\n", row.Config, row.RecordsPerSec)
	}
	return b.String()
}

var _ = time.Second

// Package experiments regenerates every figure of the paper's evaluation:
// the operator micro-benchmarks (Figs. 1 and 2), the MVCC-vs-locking study
// (Fig. 3), the TPC-C rebalancing timelines for the three partitioning
// schemes (Fig. 6), the query runtime breakdown (Fig. 7), and the
// helper-node variant (Fig. 8). Each experiment builds its own simulated
// cluster, runs deterministically, and returns the series the paper plots.
package experiments

import (
	"time"

	"wattdb/internal/hw"
)

// Preset bundles the scale knobs of an experiment run.
type Preset struct {
	Name string

	// TPC-C scale.
	Warehouses           int
	DistrictsPerW        int
	CustomersPerDistrict int
	Items                int
	InitialOrdersPerDist int

	// Offered load: Clients submitting one transaction per Interval.
	Clients  int
	Interval time.Duration

	// Timeline around the rebalance trigger (t=0): observation starts at
	// -Warmup and ends at +Observe.
	Warmup  time.Duration
	Observe time.Duration
	BinSize time.Duration

	// BufferFrames per node (sized so the buffer holds roughly a tenth of
	// the dataset, preserving the paper's DB >> DRAM regime).
	BufferFrames int

	Seed int64
}

// Quick is the CI-scale preset: small dataset, 2-minute simulated window.
// Shapes hold; absolute numbers are proportionally smaller than Paper's.
func Quick() Preset {
	return Preset{
		Name:                 "quick",
		Warehouses:           4,
		DistrictsPerW:        4,
		CustomersPerDistrict: 60,
		Items:                200,
		InitialOrdersPerDist: 60,
		Clients:              32,
		Interval:             100 * time.Millisecond,
		Warmup:               30 * time.Second,
		Observe:              120 * time.Second,
		BinSize:              10 * time.Second,
		BufferFrames:         768,
		Seed:                 1,
	}
}

// Paper approximates the paper's run: the full −180 s..+570 s window and an
// offered load that saturates the initial two nodes near their capacity
// (the paper's testbed sits around 600 qps before rebalancing).
func Paper() Preset {
	return Preset{
		Name:                 "paper",
		Warehouses:           16,
		DistrictsPerW:        10,
		CustomersPerDistrict: 120,
		Items:                500,
		InitialOrdersPerDist: 120,
		Clients:              120,
		Interval:             100 * time.Millisecond,
		Warmup:               180 * time.Second,
		Observe:              570 * time.Second,
		BinSize:              10 * time.Second,
		BufferFrames:         2048,
		Seed:                 1,
	}
}

// calibration returns the hardware constants used by all experiments:
// the paper's node/power model with test-scale segments.
func calibration(pre Preset) hw.Calibration {
	cal := hw.TestCalibration()
	cal.BufferFrames = pre.BufferFrames
	return cal
}

package experiments

import (
	"reflect"
	"testing"

	"wattdb/internal/table"
)

// TestTimelineDeterministic is the determinism guard for the whole
// experiment suite: two same-seed runs of a figure preset must produce
// byte-identical result tables AND identical simulation-kernel statistics
// (event, wakeup, and callback counts). Any map-iteration order or host
// randomness leaking into the virtual clock shows up here as a diff in
// KernelStats long before it visibly distorts a figure.
func TestTimelineDeterministic(t *testing.T) {
	run := func() TimelineResult {
		t.Helper()
		res, err := RunTimeline(TimelineOpts{Preset: tiny(), Scheme: table.Physiological})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run()
	r2 := run()
	if r1.KernelStats != r2.KernelStats {
		t.Errorf("kernel stats differ between same-seed runs:\nrun1: %+v\nrun2: %+v",
			r1.KernelStats, r2.KernelStats)
	}
	if r1.Commits != r2.Commits || r1.Aborts != r2.Aborts || r1.MigrationTook != r2.MigrationTook {
		t.Errorf("run outcome differs: (%d,%d,%v) vs (%d,%d,%v)",
			r1.Commits, r1.Aborts, r1.MigrationTook, r2.Commits, r2.Aborts, r2.MigrationTook)
	}
	if !reflect.DeepEqual(r1.QPS, r2.QPS) || !reflect.DeepEqual(r1.ResponseMs, r2.ResponseMs) ||
		!reflect.DeepEqual(r1.Watts, r2.Watts) || !reflect.DeepEqual(r1.JoulePerQuery, r2.JoulePerQuery) {
		t.Error("result tables differ between same-seed runs")
	}
}

// TestFig1Deterministic pins the operator micro-benchmark: identical seeds
// must reproduce the exact throughput numbers.
func TestFig1Deterministic(t *testing.T) {
	r1, err := Fig1(300, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fig1(300, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("fig1 differs between same-seed runs:\nrun1: %+v\nrun2: %+v", r1, r2)
	}
}

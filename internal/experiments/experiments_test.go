package experiments

import (
	"math"
	"testing"
	"time"

	"wattdb/internal/table"
)

// tiny returns a preset small enough for unit tests: a sub-minute observed
// window over a few hundred records.
func tiny() Preset {
	return Preset{
		Name:                 "tiny",
		Warehouses:           2,
		DistrictsPerW:        2,
		CustomersPerDistrict: 20,
		Items:                50,
		InitialOrdersPerDist: 20,
		Clients:              8,
		Interval:             100 * time.Millisecond,
		Warmup:               10 * time.Second,
		Observe:              60 * time.Second,
		BinSize:              10 * time.Second,
		BufferFrames:         512,
		Seed:                 1,
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// TestFig1Smoke runs the operator micro-benchmark at a tiny scale: all five
// configurations produce positive throughput, and the local scan beats the
// single-record remote plan (the paper's headline collapse).
func TestFig1Smoke(t *testing.T) {
	res, err := Fig1(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("fig1 produced %d rows, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Config == "" || !finite(row.RecordsPerSec) || row.RecordsPerSec <= 0 {
			t.Fatalf("fig1 row malformed: %+v", row)
		}
	}
	local, remoteSingle := res.Rows[0].RecordsPerSec, res.Rows[2].RecordsPerSec
	if local <= remoteSingle {
		t.Fatalf("fig1 shape wrong: local scan %.0f <= single-record remote %.0f", local, remoteSingle)
	}
}

// TestFig3Smoke runs the MVCC-vs-locking study at a tiny scale: both modes
// commit work and report sane storage percentages.
func TestFig3Smoke(t *testing.T) {
	res, err := Fig3(150, []int{0, 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("fig3 produced %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MVCCPerMin <= 0 || row.LockingPerMin <= 0 {
			t.Fatalf("fig3 throughput not positive: %+v", row)
		}
		if !finite(row.MVCCStorage) || !finite(row.LockingStorage) ||
			row.MVCCStorage < 100 || row.LockingStorage < 100 {
			t.Fatalf("fig3 storage percentages malformed: %+v", row)
		}
	}
}

// TestFig6Smoke runs the rebalancing timeline for every scheme at a tiny
// scale: each timeline commits transactions, finishes its migration, and
// produces non-empty, finite series.
func TestFig6Smoke(t *testing.T) {
	res, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range []struct {
		name string
		r    TimelineResult
	}{
		{"physical", res.Physical},
		{"logical", res.Logical},
		{"physiological", res.Physiological},
	} {
		if tl.r.Commits == 0 {
			t.Errorf("%s: no commits", tl.name)
		}
		if tl.r.MigrationTook <= 0 {
			t.Errorf("%s: migration took %v", tl.name, tl.r.MigrationTook)
		}
		if len(tl.r.QPS) == 0 || len(tl.r.Watts) == 0 {
			t.Errorf("%s: empty series (qps=%d watts=%d)", tl.name, len(tl.r.QPS), len(tl.r.Watts))
		}
		for _, b := range tl.r.Watts {
			if !finite(b.Mean) || b.Mean <= 0 {
				t.Errorf("%s: non-positive power sample %+v", tl.name, b)
			}
		}
		for _, b := range tl.r.QPS {
			if !finite(b.Mean) || b.Mean < 0 {
				t.Errorf("%s: malformed qps bin %+v", tl.name, b)
			}
		}
	}
	_ = table.Physical
}

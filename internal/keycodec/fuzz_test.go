package keycodec

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// encodeTuple encodes the composite key (a int64, s string, u uint32).
func encodeTuple(a int64, s string, u uint32) []byte {
	return AppendUint32(AppendString(AppendInt64(nil, a), s), u)
}

// compareTuple compares two tuples field by field, the order the encoding
// must preserve bytewise.
func compareTuple(a1 int64, s1 string, u1 uint32, a2 int64, s2 string, u2 uint32) int {
	switch {
	case a1 < a2:
		return -1
	case a1 > a2:
		return 1
	}
	if c := strings.Compare(s1, s2); c != 0 {
		return c
	}
	switch {
	case u1 < u2:
		return -1
	case u1 > u2:
		return 1
	}
	return 0
}

// FuzzEncodedOrderMatchesDecoded checks the codec's core contract: two
// composite keys compare the same way encoded (bytes.Compare) as decoded
// (field-by-field), and the encoding round-trips exactly. The B*-tree
// relies on this to replace per-field comparisons with single memcmps.
func FuzzEncodedOrderMatchesDecoded(f *testing.F) {
	f.Add(int64(0), "", uint32(0), int64(0), "", uint32(0))
	f.Add(int64(-1), "a", uint32(1), int64(1), "a", uint32(1))
	f.Add(int64(7), "ab", uint32(2), int64(7), "ab\x00", uint32(2))
	f.Add(int64(7), "ab\x00cd", uint32(9), int64(7), "ab\x00ce", uint32(9))
	f.Add(int64(math.MinInt64), "\x00\xff", uint32(0), int64(math.MaxInt64), "\xff\x00", uint32(math.MaxUint32))
	f.Add(int64(42), "prefix", uint32(5), int64(42), "prefixextension", uint32(5))
	f.Fuzz(func(t *testing.T, a1 int64, s1 string, u1 uint32, a2 int64, s2 string, u2 uint32) {
		e1 := encodeTuple(a1, s1, u1)
		e2 := encodeTuple(a2, s2, u2)
		want := compareTuple(a1, s1, u1, a2, s2, u2)
		if got := sign(bytes.Compare(e1, e2)); got != want {
			t.Fatalf("order mismatch: (%d,%q,%d) vs (%d,%q,%d): encoded %d, decoded %d",
				a1, s1, u1, a2, s2, u2, got, want)
		}
		// Round trip.
		da, rest, err := DecodeInt64(e1)
		if err != nil || da != a1 {
			t.Fatalf("int64 round trip: got %d err %v, want %d", da, err, a1)
		}
		ds, rest, err := DecodeString(rest)
		if err != nil || ds != s1 {
			t.Fatalf("string round trip: got %q err %v, want %q", ds, err, s1)
		}
		du, rest, err := DecodeUint32(rest)
		if err != nil || du != u1 {
			t.Fatalf("uint32 round trip: got %d err %v, want %d", du, err, u1)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes after decode", len(rest))
		}
	})
}

// FuzzFloatOrder checks AppendFloat64's total-order property for non-NaN
// values (NaN encodings sort after +Inf by payload, with no decoded-order
// counterpart to compare against).
func FuzzFloatOrder(f *testing.F) {
	f.Add(0.0, -0.0)
	f.Add(-1.5, 1.5)
	f.Add(math.Inf(-1), math.Inf(1))
	f.Add(math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64)
	f.Fuzz(func(t *testing.T, v1, v2 float64) {
		if math.IsNaN(v1) || math.IsNaN(v2) {
			t.Skip("NaN order is payload-defined")
		}
		e1 := AppendFloat64(nil, v1)
		e2 := AppendFloat64(nil, v2)
		want := 0
		switch {
		case v1 < v2:
			want = -1
		case v1 > v2:
			want = 1
		case math.Signbit(v1) && !math.Signbit(v2): // -0.0 < +0.0 in total order
			want = -1
		case !math.Signbit(v1) && math.Signbit(v2):
			want = 1
		}
		if got := sign(bytes.Compare(e1, e2)); got != want {
			t.Fatalf("float order mismatch: %v vs %v: encoded %d, want %d", v1, v2, got, want)
		}
	})
}

// Package keycodec implements an order-preserving binary encoding for
// composite keys: bytes.Compare on two encoded keys yields the same order as
// comparing the original tuples field by field. B*-tree pages store keys in
// this form so comparisons are single memcmp calls.
package keycodec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Field type tags are not stored; both sides of a comparison must encode the
// same field sequence, which the table schema guarantees.

// AppendInt64 appends v in big-endian with the sign bit flipped, preserving
// signed order under bytewise comparison.
func AppendInt64(b []byte, v int64) []byte {
	u := uint64(v) ^ (1 << 63)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], u)
	return append(b, buf[:]...)
}

// AppendUint32 appends v in big-endian.
func AppendUint32(b []byte, v uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return append(b, buf[:]...)
}

// AppendFloat64 appends v such that bytewise order matches numeric order
// (IEEE-754 total order trick; NaNs sort after +Inf).
func AppendFloat64(b []byte, v float64) []byte {
	u := math.Float64bits(v)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], u)
	return append(b, buf[:]...)
}

// AppendString appends s with 0x00 bytes escaped as 0x00 0xFF and a
// 0x00 0x00 terminator, so prefixes sort before extensions and later fields
// cannot bleed into the comparison.
func AppendString(b []byte, s string) []byte { return appendEscaped(b, s) }

func appendEscaped[T ~string | ~[]byte](b []byte, s T) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		b = append(b, c)
		if c == 0x00 {
			b = append(b, 0xFF)
		}
	}
	return append(b, 0x00, 0x00)
}

// AppendBytes is AppendString for a byte-slice source, avoiding the string
// conversion on decode-free hot paths.
func AppendBytes(b []byte, s []byte) []byte { return appendEscaped(b, s) }

// DecodeInt64 reads an int64 encoded by AppendInt64 and returns the value
// and the remaining bytes.
func DecodeInt64(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("keycodec: short int64: %d bytes", len(b))
	}
	u := binary.BigEndian.Uint64(b[:8]) ^ (1 << 63)
	return int64(u), b[8:], nil
}

// DecodeUint32 reads a uint32 encoded by AppendUint32.
func DecodeUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("keycodec: short uint32: %d bytes", len(b))
	}
	return binary.BigEndian.Uint32(b[:4]), b[4:], nil
}

// DecodeString reads a string encoded by AppendString.
func DecodeString(b []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c != 0x00 {
			out = append(out, c)
			continue
		}
		if i+1 >= len(b) {
			return "", nil, fmt.Errorf("keycodec: truncated string escape")
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x00:
			return string(out), b[i+2:], nil
		default:
			return "", nil, fmt.Errorf("keycodec: bad escape byte %#x", b[i+1])
		}
	}
	return "", nil, fmt.Errorf("keycodec: unterminated string")
}

// Int64Key encodes a single int64 key.
func Int64Key(v int64) []byte { return AppendInt64(nil, v) }

// ComposeInt64s encodes a composite key of int64 fields.
func ComposeInt64s(vs ...int64) []byte {
	var b []byte
	for _, v := range vs {
		b = AppendInt64(b, v)
	}
	return b
}

package keycodec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestInt64OrderPreserved(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := Int64Key(a), Int64Key(b)
		return sign(bytes.Compare(ea, eb)) == cmpInt64(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, rest, err := DecodeInt64(Int64Key(v))
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64OrderPreserved(t *testing.T) {
	f := func(a, b float64) bool {
		if a != a || b != b { // skip NaN
			return true
		}
		ea := AppendFloat64(nil, a)
		eb := AppendFloat64(nil, b)
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return sign(bytes.Compare(ea, eb)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringOrderPreserved(t *testing.T) {
	f := func(a, b string) bool {
		ea := AppendString(nil, a)
		eb := AppendString(nil, b)
		return sign(bytes.Compare(ea, eb)) == sign(bytes.Compare([]byte(a), []byte(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTripWithZeros(t *testing.T) {
	cases := []string{"", "a", "a\x00b", "\x00", "\x00\x00", "abc\xff", "\x00\xff\x00"}
	for _, s := range cases {
		enc := AppendString(nil, s)
		got, rest, err := DecodeString(enc)
		if err != nil || got != s || len(rest) != 0 {
			t.Fatalf("round trip %q -> %q (err %v, rest %d)", s, got, err, len(rest))
		}
	}
	f := func(s string) bool {
		got, rest, err := DecodeString(AppendString(nil, s))
		return err == nil && got == s && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeOrdering(t *testing.T) {
	// (1, 2) < (1, 10) < (2, 0): composite comparison is field-wise.
	a := ComposeInt64s(1, 2)
	b := ComposeInt64s(1, 10)
	c := ComposeInt64s(2, 0)
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Fatal("composite keys not ordered field-wise")
	}
}

func TestCompositeStringIntDoesNotBleed(t *testing.T) {
	// "a" + high int must sort before "ab" + low int.
	a := AppendInt64(AppendString(nil, "a"), 1<<60)
	b := AppendInt64(AppendString(nil, "ab"), -(1 << 60))
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("string field bled into following int field")
	}
}

func TestCompositeRoundTrip(t *testing.T) {
	f := func(x int64, s string, y int64) bool {
		enc := AppendInt64(AppendString(AppendInt64(nil, x), s), y)
		gx, rest, err := DecodeInt64(enc)
		if err != nil {
			return false
		}
		gs, rest, err := DecodeString(rest)
		if err != nil {
			return false
		}
		gy, rest, err := DecodeInt64(rest)
		return err == nil && gx == x && gs == s && gy == y && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeInt64([]byte{1, 2}); err == nil {
		t.Fatal("short int64 should error")
	}
	if _, _, err := DecodeUint32([]byte{1}); err == nil {
		t.Fatal("short uint32 should error")
	}
	if _, _, err := DecodeString([]byte("abc")); err == nil {
		t.Fatal("unterminated string should error")
	}
	if _, _, err := DecodeString([]byte{0x00, 0x07}); err == nil {
		t.Fatal("bad escape should error")
	}
}

// Package btree implements the page-based B*-trees at the heart of WattDB's
// physiological partitioning: index-organised tables whose nodes live in
// slotted pages addressed by segment-relative page numbers. A tree confined
// to one segment therefore survives the segment being shipped to another
// node byte-for-byte — the property Sect. 4.3 of the paper relies on.
//
// Trees access pages through the Pager interface, so the same code runs over
// a node's buffer pool (with full I/O timing) or a plain in-memory segment
// in unit tests.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// Release unpins a page obtained from a Pager.
type Release func()

// Pager supplies pages to a tree. Implementations charge simulation time
// for misses; all page references are segment-relative.
type Pager interface {
	// Read pins page no for reading.
	Read(p *sim.Proc, no storage.PageNo) (storage.Page, Release, error)
	// Write pins page no for modification (the frame becomes dirty).
	Write(p *sim.Proc, no storage.PageNo) (storage.Page, Release, error)
	// Alloc creates a zeroed page pinned for modification.
	Alloc(p *sim.Proc) (storage.PageNo, storage.Page, Release, error)
	// Free returns a page to its segment.
	Free(p *sim.Proc, no storage.PageNo) error
	// PageSize returns the page size in bytes.
	PageSize() int
}

// Tree is a B*-tree rooted in a page. The zero root means "empty".
type Tree struct {
	pager Pager
	root  storage.PageNo
	// onRootChange propagates root movement to the owner (segment header).
	onRootChange func(storage.PageNo)
	// gen counts structural changes (splits, frees); cursors use it to
	// detect that their position stack is stale.
	gen uint64
	// writers, when set (Serialize), makes structural mutations mutually
	// exclusive. Needed when the pager can block (buffer misses): two
	// writers interleaving mid-descent would corrupt the tree. Readers
	// never block on it; Get retries on concurrent structural changes.
	writers *sim.Resource
	// surgeries counts multi-step structural mutations whose intermediate
	// states are reachable (a split's left page reformatted before the
	// parent adopts the separator; a freed page still referenced by its
	// parent). gen alone cannot fence a reader that STARTS inside such a
	// window — it adopts the post-bump gen and walks the torn structure —
	// so new positioning (Get descents, cursor seeks) waits on readFence
	// until the surgery completes. Writers never wait on readers, so the
	// fence cannot deadlock.
	surgeries int
	surgDone  *sim.Signal
	// curFree recycles scan cursors (with their stack/scratch/batch
	// buffers) so repeated scans allocate nothing.
	curFree *Cursor
}

// Serialize enables writer mutual exclusion for trees whose pager can block
// (buffered pagers with disk I/O), and arms the reader fence for surgery
// windows. Trees without Serialize use non-blocking pagers, where readers
// and writers cannot interleave.
func (t *Tree) Serialize(env *sim.Env) {
	if t.writers == nil {
		t.writers = sim.NewResource(env, 1)
		t.surgDone = sim.NewSignal(env)
	}
}

// beginSurgery opens a torn-structure window: the gen bump sends every
// already-positioned reader back through a re-seek, and the surgery count
// parks those re-seeks (and fresh ones) on the fence until endSurgery.
func (t *Tree) beginSurgery() {
	t.gen++
	t.surgeries++
}

// endSurgery closes a torn-structure window and releases fenced readers
// once no surgery remains.
func (t *Tree) endSurgery() {
	t.surgeries--
	if t.surgeries == 0 && t.surgDone != nil {
		t.surgDone.Fire()
	}
}

// readFence blocks p while a structural surgery's intermediate state is
// reachable. Surgery completion does not depend on readers, so the wait is
// always bounded.
func (t *Tree) readFence(p *sim.Proc) {
	for t.surgeries > 0 && t.surgDone != nil {
		t.surgDone.Wait(p)
	}
}

// Exclusive runs fn while holding the tree's writer lock (no-op if the tree
// is not serialised). Used by segment splits that must keep writers out
// across multi-step surgery.
func (t *Tree) Exclusive(p *sim.Proc, fn func() error) error {
	if t.writers != nil {
		t.writers.Acquire(p, 1)
		defer t.writers.Release(1)
	}
	return fn()
}

// New opens a tree with the given root (0 = empty). onRootChange, if
// non-nil, is called whenever the root page number changes.
func New(pager Pager, root storage.PageNo, onRootChange func(storage.PageNo)) *Tree {
	return &Tree{pager: pager, root: root, onRootChange: onRootChange}
}

// Root returns the current root page number (0 = empty tree).
func (t *Tree) Root() storage.PageNo { return t.root }

func (t *Tree) setRoot(no storage.PageNo) {
	t.root = no
	if t.onRootChange != nil {
		t.onRootChange(no)
	}
}

// Cell layouts.
//
// Leaf cell:  klen u16 | key | value
// Inner cell: klen u16 | key | child u32
//
// Inner cells are (separator, child) pairs sorted by separator; child covers
// keys >= separator, and the first cell's separator is treated as -infinity
// during descent.

func leafCell(key, val []byte) []byte {
	c := make([]byte, 2+len(key)+len(val))
	binary.LittleEndian.PutUint16(c, uint16(len(key)))
	copy(c[2:], key)
	copy(c[2+len(key):], val)
	return c
}

func innerCell(key []byte, child storage.PageNo) []byte {
	c := make([]byte, 2+len(key)+4)
	binary.LittleEndian.PutUint16(c, uint16(len(key)))
	copy(c[2:], key)
	binary.LittleEndian.PutUint32(c[2+len(key):], uint32(child))
	return c
}

func cellKey(c []byte) []byte {
	kl := binary.LittleEndian.Uint16(c)
	return c[2 : 2+kl]
}

func leafCellValue(c []byte) []byte {
	kl := binary.LittleEndian.Uint16(c)
	return c[2+kl:]
}

func innerCellChild(c []byte) storage.PageNo {
	kl := binary.LittleEndian.Uint16(c)
	return storage.PageNo(binary.LittleEndian.Uint32(c[2+kl:]))
}

// search returns the slot of the first cell with key >= target and whether
// an exact match exists at that slot.
func search(pg storage.Page, key []byte) (int, bool) {
	lo, hi := 0, pg.NumSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(cellKey(pg.Cell(mid)), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < pg.NumSlots() && bytes.Equal(cellKey(pg.Cell(lo)), key) {
		return lo, true
	}
	return lo, false
}

// childSlot returns the slot of the inner cell whose subtree covers key:
// the rightmost cell with separator <= key, clamped to slot 0.
func childSlot(pg storage.Page, key []byte) int {
	i, exact := search(pg, key)
	if exact {
		return i
	}
	if i > 0 {
		i--
	}
	return i
}

// Get returns the value stored under key. If the tree changes structurally
// during the descent (a writer split pages while this reader waited on
// I/O), the lookup restarts: a stale descent could otherwise miss a key
// that moved to a new sibling. Descents wait out in-flight surgery windows
// (readFence) so they never walk a half-split subtree.
func (t *Tree) Get(p *sim.Proc, key []byte) ([]byte, bool, error) {
restart:
	t.readFence(p)
	if t.root == 0 {
		return nil, false, nil
	}
	startGen := t.gen
	no := t.root
	for {
		pg, rel, err := t.pager.Read(p, no)
		if err != nil {
			return nil, false, err
		}
		if t.gen != startGen {
			rel()
			goto restart
		}
		switch pg.Type() {
		case storage.PageInner:
			no = innerCellChild(pg.Cell(childSlot(pg, key)))
			rel()
		case storage.PageLeaf:
			i, exact := search(pg, key)
			if !exact {
				rel()
				if t.gen != startGen {
					goto restart
				}
				return nil, false, nil
			}
			val := bytes.Clone(leafCellValue(pg.Cell(i)))
			rel()
			return val, true, nil
		default:
			rel()
			return nil, false, fmt.Errorf("btree: page %d has type %d", no, pg.Type())
		}
	}
}

// Put inserts or replaces key's value, stamping modified pages with lsn
// (0 = no stamp). It reports whether the key already existed.
func (t *Tree) Put(p *sim.Proc, key, val []byte, lsn uint64) (bool, error) {
	if t.writers != nil {
		t.writers.Acquire(p, 1)
		defer t.writers.Release(1)
	}
	return t.PutLocked(p, key, val, lsn)
}

// PutLocked is Put for callers already inside Exclusive.
func (t *Tree) PutLocked(p *sim.Proc, key, val []byte, lsn uint64) (replaced bool, err error) {
	if len(key) == 0 {
		return false, fmt.Errorf("btree: empty key")
	}
	if max := (t.pager.PageSize() - 64) / 2; 2+len(key)+len(val) > max {
		return false, fmt.Errorf("btree: cell of %d bytes exceeds max %d", 2+len(key)+len(val), max)
	}
	if t.root == 0 {
		no, pg, rel, err := t.pager.Alloc(p)
		if err != nil {
			return false, err
		}
		pg.Init(storage.PageLeaf)
		pg.InsertCellAt(0, leafCell(key, val))
		pg.SetLSN(lsn)
		rel()
		t.setRoot(no)
		t.gen++
		return false, nil
	}
	replaced, sep, newChild, err := t.putInto(p, t.root, key, val, lsn)
	if err != nil {
		return false, err
	}
	if newChild != 0 {
		// Root split: build a new root over the two subtrees. The root
		// page's surgery window (opened by its split) closes once the new
		// root makes both halves reachable.
		no, pg, rel, err := t.pager.Alloc(p)
		if err != nil {
			t.endSurgery()
			return false, err
		}
		pg.Init(storage.PageInner)
		pg.InsertCellAt(0, innerCell([]byte{}, t.root))
		pg.InsertCellAt(1, innerCell(sep, newChild))
		pg.SetLSN(lsn)
		rel()
		t.setRoot(no)
		t.gen++
		t.endSurgery()
	}
	return replaced, nil
}

// putInto inserts below page no. If the page splits, it returns the new
// right sibling and its separator key for the parent to adopt.
func (t *Tree) putInto(p *sim.Proc, no storage.PageNo, key, val []byte, lsn uint64) (replaced bool, sep []byte, newRight storage.PageNo, err error) {
	pg, rel, err := t.pager.Read(p, no)
	if err != nil {
		return false, nil, 0, err
	}
	isLeaf := pg.Type() == storage.PageLeaf
	var child storage.PageNo
	if !isLeaf {
		child = innerCellChild(pg.Cell(childSlot(pg, key)))
	}
	rel()

	if !isLeaf {
		replaced, csep, cnew, err := t.putInto(p, child, key, val, lsn)
		if err != nil || cnew == 0 {
			return replaced, nil, 0, err
		}
		// Child split: adopt (csep, cnew). Re-pin for writing and
		// re-search, since the recursion may have yielded. The child's
		// surgery window stays open across this write pin — readers must
		// not walk the half-split subtree — and closes the moment its
		// separator is reachable from this page (or from the nested split's
		// result, whose own window the next level up closes).
		wpg, wrel, err := t.pager.Write(p, no)
		if err != nil {
			t.endSurgery()
			return replaced, nil, 0, err
		}
		defer wrel()
		cell := innerCell(csep, cnew)
		i, exact := search(wpg, csep)
		if exact {
			t.endSurgery()
			return replaced, nil, 0, fmt.Errorf("btree: duplicate separator %x", csep)
		}
		wpg.SetLSN(lsn)
		if wpg.InsertCellAt(i, cell) {
			t.endSurgery()
			return replaced, nil, 0, nil
		}
		sep, newRight, err = t.split(p, wpg, lsn, cell, i)
		t.endSurgery() // the child's separator now lives in this page or its new sibling
		return replaced, sep, newRight, err
	}

	wpg, wrel, err := t.pager.Write(p, no)
	if err != nil {
		return false, nil, 0, err
	}
	defer wrel()
	i, exact := search(wpg, key)
	wpg.SetLSN(lsn)
	if exact {
		if wpg.ReplaceCellAt(i, leafCell(key, val)) {
			return true, nil, 0, nil
		}
		// No room for the bigger value: delete and fall through to a
		// fresh insert (which may split).
		wpg.DeleteCellAt(i)
		replaced = true
	}
	cell := leafCell(key, val)
	if wpg.InsertCellAt(i, cell) {
		return replaced, nil, 0, nil
	}
	sep, newRight, err = t.split(p, wpg, lsn, cell, i)
	return replaced, sep, newRight, err
}

// split divides full page pg, inserting cell at logical slot i along the
// way. It returns the separator and new right page for the parent. It opens
// a surgery window (left page reformatted, separator not yet adopted) that
// the CALLER must close with endSurgery once the separator is reachable —
// directly after a successful parent insert, or after a nested split
// absorbed the cell.
func (t *Tree) split(p *sim.Proc, pg storage.Page, lsn uint64, cell []byte, i int) ([]byte, storage.PageNo, error) {
	n := pg.NumSlots()
	cells := make([][]byte, 0, n+1)
	for j := 0; j < n; j++ {
		cells = append(cells, bytes.Clone(pg.Cell(j)))
	}
	cells = append(cells[:i], append([][]byte{bytes.Clone(cell)}, cells[i:]...)...)

	// Split at the byte midpoint so variable-length cells balance.
	total := 0
	for _, c := range cells {
		total += len(c) + 4
	}
	splitAt, acc := 0, 0
	for j, c := range cells {
		acc += len(c) + 4
		if acc >= total/2 {
			splitAt = j + 1
			break
		}
	}
	if splitAt <= 0 {
		splitAt = 1
	}
	if splitAt >= len(cells) {
		splitAt = len(cells) - 1
	}

	rightNo, right, rrel, err := t.pager.Alloc(p)
	if err != nil {
		return nil, 0, err // tree untouched (segment full)
	}
	defer rrel()
	right.Init(pg.Type())
	right.SetLSN(lsn)
	for j, c := range cells[splitAt:] {
		if !right.InsertCellAt(j, c) {
			return nil, 0, fmt.Errorf("btree: split overflow on right page")
		}
	}
	// The right page is filled but unreachable; reformatting the left page
	// is the first mutation readers could observe, and from here until the
	// parent adopts the separator the upper half is invisible.
	t.beginSurgery()
	pg.Init(pg.Type()) // reformat left page in place
	pg.SetLSN(lsn)
	for j, c := range cells[:splitAt] {
		if !pg.InsertCellAt(j, c) {
			t.endSurgery()
			return nil, 0, fmt.Errorf("btree: split overflow on left page")
		}
	}
	sep := bytes.Clone(cellKey(right.Cell(0)))
	return sep, rightNo, nil
}

// Delete removes key, reporting whether it existed. Pages that empty out are
// freed; the root collapses as levels empty.
func (t *Tree) Delete(p *sim.Proc, key []byte, lsn uint64) (bool, error) {
	if t.writers != nil {
		t.writers.Acquire(p, 1)
		defer t.writers.Release(1)
	}
	return t.DeleteLocked(p, key, lsn)
}

// DeleteLocked is Delete for callers already inside Exclusive.
func (t *Tree) DeleteLocked(p *sim.Proc, key []byte, lsn uint64) (bool, error) {
	if t.root == 0 {
		return false, nil
	}
	deleted, emptied, err := t.deleteFrom(p, t.root, key, lsn)
	if err != nil {
		return false, err
	}
	if emptied {
		// The emptied root's surgery window (opened in deleteFrom) closes
		// once the root pointer stops referencing the freed page.
		if err := t.pager.Free(p, t.root); err != nil {
			t.endSurgery()
			return false, err
		}
		t.setRoot(0)
		t.gen++
		t.endSurgery()
	} else if deleted {
		if err := t.collapseRoot(p); err != nil {
			return false, err
		}
	}
	return deleted, nil
}

func (t *Tree) deleteFrom(p *sim.Proc, no storage.PageNo, key []byte, lsn uint64) (deleted, emptied bool, err error) {
	pg, rel, err := t.pager.Read(p, no)
	if err != nil {
		return false, false, err
	}
	// Invariant: whenever deleteFrom returns emptied=true, a surgery window
	// is open (begun at the deepest level that emptied) and stays open until
	// an ancestor frees the empty page — an empty inner page, or a freed
	// page still referenced by its parent, must never be walked by readers.
	if pg.Type() == storage.PageLeaf {
		rel()
		wpg, wrel, err := t.pager.Write(p, no)
		if err != nil {
			return false, false, err
		}
		defer wrel()
		i, exact := search(wpg, key)
		if !exact {
			return false, false, nil
		}
		wpg.DeleteCellAt(i)
		wpg.SetLSN(lsn)
		emptied = wpg.NumSlots() == 0
		if emptied {
			t.beginSurgery()
		}
		return true, emptied, nil
	}
	slot := childSlot(pg, key)
	child := innerCellChild(pg.Cell(slot))
	rel()
	deleted, childEmptied, err := t.deleteFrom(p, child, key, lsn)
	if err != nil || !childEmptied {
		return deleted, false, err
	}
	// Child page emptied (its surgery window is open): free it and drop its
	// cell, keeping the window open if this page empties in turn.
	if err := t.pager.Free(p, child); err != nil {
		t.endSurgery()
		return deleted, false, err
	}
	wpg, wrel, err := t.pager.Write(p, no)
	if err != nil {
		t.endSurgery()
		return deleted, false, err
	}
	defer wrel()
	// Re-locate the cell pointing to child (the page may have shifted).
	idx := -1
	for j := 0; j < wpg.NumSlots(); j++ {
		if innerCellChild(wpg.Cell(j)) == child {
			idx = j
			break
		}
	}
	if idx < 0 {
		t.endSurgery()
		return deleted, false, fmt.Errorf("btree: lost child %d during delete", child)
	}
	wpg.DeleteCellAt(idx)
	wpg.SetLSN(lsn)
	emptied = wpg.NumSlots() == 0
	if !emptied {
		t.endSurgery()
	}
	return deleted, emptied, nil
}

// collapseRoot replaces a single-child inner root by its child, repeatedly.
func (t *Tree) collapseRoot(p *sim.Proc) error {
	for t.root != 0 {
		pg, rel, err := t.pager.Read(p, t.root)
		if err != nil {
			return err
		}
		if pg.Type() != storage.PageInner || pg.NumSlots() != 1 {
			rel()
			return nil
		}
		child := innerCellChild(pg.Cell(0))
		rel()
		// Surgery: the root page is freed before the root pointer moves
		// off it; readers must not descend through the recycled page.
		t.beginSurgery()
		if err := t.pager.Free(p, t.root); err != nil {
			t.endSurgery()
			return err
		}
		t.setRoot(child)
		t.gen++
		t.endSurgery()
	}
	return nil
}

package btree

import (
	"bytes"
	"fmt"

	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// BulkLoad builds a tree from records supplied in strictly ascending key
// order by next (which returns ok=false when exhausted). Pages are filled to
// fillFraction (e.g. 0.9) to leave slack for later inserts. The tree must be
// empty. BulkLoad is how data generation and logical record movement build
// their target trees efficiently.
func (t *Tree) BulkLoad(p *sim.Proc, fillFraction float64, next func() (key, val []byte, ok bool)) error {
	if t.root != 0 {
		return fmt.Errorf("btree: bulk load into non-empty tree")
	}
	if fillFraction <= 0 || fillFraction > 1 {
		fillFraction = 0.9
	}
	budget := int(float64(t.pager.PageSize()-64) * fillFraction)

	type entry struct {
		key []byte
		no  storage.PageNo
	}
	var level []entry // (first key, page) of each filled leaf

	var (
		curNo    storage.PageNo
		cur      storage.Page
		curRel   Release
		curBytes int
		firstKey []byte
		lastKey  []byte
	)
	flush := func() {
		if cur != nil {
			curRel()
			level = append(level, entry{firstKey, curNo})
			cur, curRel = nil, nil
		}
	}
	for {
		key, val, ok := next()
		if !ok {
			break
		}
		if lastKey != nil && bytes.Compare(lastKey, key) >= 0 {
			if curRel != nil {
				curRel()
			}
			return fmt.Errorf("btree: bulk load keys not strictly ascending")
		}
		lastKey = bytes.Clone(key)
		cell := leafCell(key, val)
		if cur != nil && curBytes+len(cell)+4 > budget {
			flush()
		}
		if cur == nil {
			var err error
			curNo, cur, curRel, err = t.pager.Alloc(p)
			if err != nil {
				return err
			}
			cur.Init(storage.PageLeaf)
			curBytes = 0
			firstKey = bytes.Clone(key)
		}
		if !cur.InsertCellAt(cur.NumSlots(), cell) {
			flush()
			var err error
			curNo, cur, curRel, err = t.pager.Alloc(p)
			if err != nil {
				return err
			}
			cur.Init(storage.PageLeaf)
			curBytes = 0
			firstKey = bytes.Clone(key)
			if !cur.InsertCellAt(0, cell) {
				curRel()
				return fmt.Errorf("btree: cell of %d bytes does not fit an empty page", len(cell))
			}
		}
		curBytes += len(cell) + 4
	}
	flush()

	if len(level) == 0 {
		return nil // empty input, empty tree
	}

	// Build inner levels bottom-up until one page remains.
	for len(level) > 1 {
		var parents []entry
		var (
			pNo    storage.PageNo
			ppg    storage.Page
			pRel   Release
			pBytes int
			pFirst []byte
		)
		pflush := func() {
			if ppg != nil {
				pRel()
				parents = append(parents, entry{pFirst, pNo})
				ppg, pRel = nil, nil
			}
		}
		for i, e := range level {
			sep := e.key
			if ppg != nil && i > 0 {
				// keep sep as is
			} else if ppg == nil {
				// First cell of a parent acts as -infinity.
			}
			cell := innerCell(sep, e.no)
			if ppg != nil && pBytes+len(cell)+4 > budget {
				pflush()
			}
			if ppg == nil {
				var err error
				pNo, ppg, pRel, err = t.pager.Alloc(p)
				if err != nil {
					return err
				}
				ppg.Init(storage.PageInner)
				pBytes = 0
				pFirst = e.key
			}
			if !ppg.InsertCellAt(ppg.NumSlots(), cell) {
				pRel()
				return fmt.Errorf("btree: inner bulk cell does not fit")
			}
			pBytes += len(cell) + 4
		}
		pflush()
		level = parents
	}
	t.setRoot(level[0].no)
	t.gen++
	return nil
}

package btree

import (
	"bytes"
	"testing"
	"time"

	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// slowPager wraps MemPager with per-operation delays, so readers and
// writers interleave at every page touch like they do behind a buffer pool.
// Writes are much slower than reads: a split's torn window spans a write pin
// of the parent page, so whole read-only scans fit inside it — exactly the
// interleaving the surgery fence exists for.
type slowPager struct {
	mem         MemPager
	read, write time.Duration
}

func (s slowPager) Read(p *sim.Proc, no storage.PageNo) (storage.Page, Release, error) {
	p.Sleep(s.read)
	return s.mem.Read(p, no)
}

func (s slowPager) Write(p *sim.Proc, no storage.PageNo) (storage.Page, Release, error) {
	p.Sleep(s.write)
	return s.mem.Write(p, no)
}

func (s slowPager) Alloc(p *sim.Proc) (storage.PageNo, storage.Page, Release, error) {
	p.Sleep(s.write)
	return s.mem.Alloc(p)
}

func (s slowPager) Free(p *sim.Proc, no storage.PageNo) error {
	p.Sleep(s.write)
	return s.mem.Free(p, no)
}

func (s slowPager) PageSize() int { return s.mem.PageSize() }

// TestConcurrentSplitScanConsistency drives bounded scans (with pooled,
// reused cursors) against a stream of splitting inserts on a blocking pager.
// It pins two invariants the TPC-C chaos oracle caught violations of:
//
//   - a scan must never deliver a key outside [lo, hi) — a pooled cursor
//     whose seek raced a split used to re-anchor on the PREVIOUS scan's last
//     key and walk records far below the new scan's lower bound (observed as
//     a double delivery of an already-delivered order);
//   - a scan must deliver every preloaded key of its range exactly once —
//     a reader that started inside a split's surgery window (left page
//     reformatted, separator not yet adopted) used to miss the moved upper
//     half entirely.
func TestConcurrentSplitScanConsistency(t *testing.T) {
	env := sim.NewEnv(7)
	defer env.Close()
	seg := storage.NewSegment(1, 4096, 4096)
	tr := New(slowPager{mem: MemPager{Seg: seg}, read: 20 * time.Microsecond, write: 2 * time.Millisecond}, 0, nil)
	tr.Serialize(env)

	const keys = 2000
	val := bytes.Repeat([]byte{0xAB}, 40)
	env.Spawn("load", func(p *sim.Proc) {
		for i := int64(0); i < keys; i += 2 {
			if _, err := tr.Put(p, keycodec.Int64Key(i), val, 0); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}

	// Writer: insert the odd keys ascending — every few inserts split a
	// leaf, and inner-page adoptions occasionally split upward.
	stop := false
	env.Spawn("writer", func(p *sim.Proc) {
		for i := int64(1); i < keys; i += 2 {
			if _, err := tr.Put(p, keycodec.Int64Key(i), val, 0); err != nil {
				t.Error(err)
				return
			}
		}
		stop = true
	})
	// Churner: repeatedly fill and empty a key band above the scanned
	// ranges, so pages get freed and their numbers reused while readers'
	// descents are parked in I/O (the free/reuse hazard class).
	env.Spawn("churner", func(p *sim.Proc) {
		for !stop {
			for i := int64(keys + 100); i < keys+160; i++ {
				if _, err := tr.Put(p, keycodec.Int64Key(i), val, 0); err != nil {
					t.Error(err)
					return
				}
			}
			for i := int64(keys + 100); i < keys+160; i++ {
				if _, err := tr.Delete(p, keycodec.Int64Key(i), 0); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})

	// Reader: alternate a low-range and a high-range scan so the pooled
	// cursor's scratch key from one range is stale state for the next.
	scan := func(p *sim.Proc, lo, hi int64) {
		loK, hiK := keycodec.Int64Key(lo), keycodec.Int64Key(hi)
		var last []byte
		seen := map[int64]bool{}
		err := tr.Scan(p, loK, hiK, func(k, _ []byte) bool {
			if bytes.Compare(k, loK) < 0 || bytes.Compare(k, hiK) >= 0 {
				t.Errorf("scan [%d,%d) delivered out-of-range key %x", lo, hi, k)
				return false
			}
			if last != nil && bytes.Compare(k, last) <= 0 {
				t.Errorf("scan [%d,%d) went backwards: %x after %x", lo, hi, k, last)
				return false
			}
			last = append(last[:0], k...)
			kv, _, _ := keycodec.DecodeInt64(k)
			if seen[kv] {
				t.Errorf("scan [%d,%d) delivered key %d twice", lo, hi, kv)
			}
			seen[kv] = true
			return true
		})
		if err != nil {
			t.Error(err)
			return
		}
		// Every preloaded (even) key of the range must be present: a scan
		// that raced a split must not skip the half moved to a new page.
		for k := lo; k < hi; k++ {
			if k%2 == 0 && !seen[k] {
				t.Errorf("scan [%d,%d) missed preloaded key %d", lo, hi, k)
			}
		}
	}
	env.Spawn("reader", func(p *sim.Proc) {
		for !stop {
			scan(p, 100, 160)
			scan(p, keys/2, keys/2+60)
			scan(p, keys-400, keys-340)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// testTree builds an empty tree over a fresh segment, running fn inside a
// simulation process (the pager ignores timing, but the API needs a proc).
func testTree(t *testing.T, pages int, fn func(p *sim.Proc, tr *Tree, seg *storage.Segment)) {
	t.Helper()
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 512, pages)
	tr := New(MemPager{seg}, 0, func(no storage.PageNo) { seg.TreeRoot = no })
	env.Spawn("test", func(p *sim.Proc) { fn(p, tr, seg) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func ik(v int64) []byte  { return keycodec.Int64Key(v) }
func val(v int64) []byte { return []byte(fmt.Sprintf("value-%d", v)) }

func TestPutGetSingle(t *testing.T) {
	testTree(t, 16, func(p *sim.Proc, tr *Tree, seg *storage.Segment) {
		replaced, err := tr.Put(p, ik(42), val(42), 0)
		if err != nil || replaced {
			t.Errorf("put: %v, replaced=%v", err, replaced)
		}
		got, ok, err := tr.Get(p, ik(42))
		if err != nil || !ok || !bytes.Equal(got, val(42)) {
			t.Errorf("get = %q, %v, %v", got, ok, err)
		}
		if _, ok, _ := tr.Get(p, ik(43)); ok {
			t.Error("get of absent key succeeded")
		}
		if seg.TreeRoot != tr.Root() {
			t.Error("root change not propagated to segment")
		}
	})
}

func TestPutReplaces(t *testing.T) {
	testTree(t, 16, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		tr.Put(p, ik(1), []byte("old"), 0)
		replaced, err := tr.Put(p, ik(1), []byte("new-and-much-longer-value"), 0)
		if err != nil || !replaced {
			t.Fatalf("replace: %v, %v", replaced, err)
		}
		got, _, _ := tr.Get(p, ik(1))
		if string(got) != "new-and-much-longer-value" {
			t.Fatalf("got %q", got)
		}
		if n, _ := tr.Count(p); n != 1 {
			t.Fatalf("count = %d", n)
		}
	})
}

func TestManyInsertsSplitAndValidate(t *testing.T) {
	const n = 2000
	testTree(t, 400, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		perm := rand.New(rand.NewSource(7)).Perm(n)
		for _, v := range perm {
			if _, err := tr.Put(p, ik(int64(v)), val(int64(v)), 0); err != nil {
				t.Fatalf("put %d: %v", v, err)
			}
		}
		if err := tr.Validate(p); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			got, ok, err := tr.Get(p, ik(int64(i)))
			if err != nil || !ok || !bytes.Equal(got, val(int64(i))) {
				t.Fatalf("get %d = %q, %v, %v", i, got, ok, err)
			}
		}
		if c, _ := tr.Count(p); c != n {
			t.Fatalf("count = %d, want %d", c, n)
		}
	})
}

func TestScanOrderAndBounds(t *testing.T) {
	testTree(t, 400, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		for _, v := range rand.New(rand.NewSource(3)).Perm(500) {
			tr.Put(p, ik(int64(v)), val(int64(v)), 0)
		}
		var got []int64
		err := tr.Scan(p, ik(100), ik(200), func(k, v []byte) bool {
			d, _, _ := keycodec.DecodeInt64(k)
			got = append(got, d)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("scan returned %d keys, want 100", len(got))
		}
		for i, v := range got {
			if v != int64(100+i) {
				t.Fatalf("scan[%d] = %d", i, v)
			}
		}
	})
}

func TestScanEarlyStop(t *testing.T) {
	testTree(t, 64, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		for i := 0; i < 100; i++ {
			tr.Put(p, ik(int64(i)), val(int64(i)), 0)
		}
		n := 0
		tr.Scan(p, nil, nil, func(_, _ []byte) bool {
			n++
			return n < 10
		})
		if n != 10 {
			t.Fatalf("early stop at %d", n)
		}
	})
}

func TestDeleteAndShrink(t *testing.T) {
	const n = 800
	testTree(t, 400, func(p *sim.Proc, tr *Tree, seg *storage.Segment) {
		for i := 0; i < n; i++ {
			tr.Put(p, ik(int64(i)), val(int64(i)), 0)
		}
		usedBefore := seg.UsedPages()
		// Delete in random order.
		for _, v := range rand.New(rand.NewSource(11)).Perm(n) {
			ok, err := tr.Delete(p, ik(int64(v)), 0)
			if err != nil || !ok {
				t.Fatalf("delete %d: %v %v", v, ok, err)
			}
		}
		if c, _ := tr.Count(p); c != 0 {
			t.Fatalf("count after deleting all = %d", c)
		}
		if tr.Root() != 0 {
			t.Fatalf("root = %d after emptying, want 0", tr.Root())
		}
		if seg.UsedPages() != 0 {
			t.Fatalf("pages leaked: %d used (before: %d)", seg.UsedPages(), usedBefore)
		}
	})
}

func TestDeleteAbsent(t *testing.T) {
	testTree(t, 16, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		tr.Put(p, ik(1), val(1), 0)
		ok, err := tr.Delete(p, ik(99), 0)
		if err != nil || ok {
			t.Fatalf("delete absent = %v, %v", ok, err)
		}
	})
}

func TestSegmentFullSurfaces(t *testing.T) {
	testTree(t, 4, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		var err error
		for i := 0; err == nil && i < 100000; i++ {
			_, err = tr.Put(p, ik(int64(i)), bytes.Repeat([]byte{1}, 100), 0)
		}
		if err != ErrSegmentFull {
			t.Fatalf("err = %v, want ErrSegmentFull", err)
		}
	})
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	const n = 3000
	testTree(t, 600, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		i := 0
		err := tr.BulkLoad(p, 0.9, func() ([]byte, []byte, bool) {
			if i >= n {
				return nil, nil, false
			}
			k, v := ik(int64(i)), val(int64(i))
			i++
			return k, v, true
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(p); err != nil {
			t.Fatal(err)
		}
		if c, _ := tr.Count(p); c != n {
			t.Fatalf("count = %d", c)
		}
		for _, probe := range []int64{0, 1, n / 2, n - 1} {
			got, ok, _ := tr.Get(p, ik(probe))
			if !ok || !bytes.Equal(got, val(probe)) {
				t.Fatalf("get %d after bulk load = %q, %v", probe, got, ok)
			}
		}
		// Bulk-loaded trees must still accept regular inserts.
		if _, err := tr.Put(p, ik(-5), val(-5), 0); err != nil {
			t.Fatal(err)
		}
		if got, ok, _ := tr.Get(p, ik(-5)); !ok || !bytes.Equal(got, val(-5)) {
			t.Fatal("insert after bulk load failed")
		}
	})
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	testTree(t, 16, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		keys := [][]byte{ik(2), ik(1)}
		i := 0
		err := tr.BulkLoad(p, 0.9, func() ([]byte, []byte, bool) {
			if i >= len(keys) {
				return nil, nil, false
			}
			k := keys[i]
			i++
			return k, []byte("v"), true
		})
		if err == nil {
			t.Fatal("unsorted bulk load should fail")
		}
	})
}

func TestCursorSurvivesConcurrentSplit(t *testing.T) {
	// A cursor mid-scan must deliver remaining keys even if another
	// process splits pages between Next calls.
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 512, 800)
	tr := New(MemPager{seg}, 0, nil)
	var scanned []int64
	env.Spawn("writer-then-scan", func(p *sim.Proc) {
		for i := 0; i < 500; i += 5 {
			tr.Put(p, ik(int64(i)), val(int64(i)), 0)
		}
		c, err := tr.Seek(p, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for c.Valid() {
			d, _, _ := keycodec.DecodeInt64(c.Key())
			scanned = append(scanned, d)
			// Interleave inserts that split pages under the cursor.
			if len(scanned)%10 == 0 {
				for j := 0; j < 5; j++ {
					tr.Put(p, ik(int64(1000+len(scanned)*10+j)), bytes.Repeat([]byte{9}, 60), 0)
				}
			}
			if err := c.Next(p); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// All original keys 0,5,...,495 must appear in order.
	want := int64(0)
	for _, k := range scanned {
		if k >= 1000 {
			continue
		}
		if k != want {
			t.Fatalf("scan missed or reordered: got %d, want %d", k, want)
		}
		want += 5
	}
	if want != 500 {
		t.Fatalf("scan ended early at %d", want)
	}
}

// Property test: the tree behaves like a sorted map under arbitrary
// operation sequences.
func TestTreeMatchesModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv(seed)
		defer env.Close()
		seg := storage.NewSegment(1, 512, 2000)
		tr := New(MemPager{seg}, 0, nil)
		model := map[int64]string{}
		okAll := true
		env.Spawn("ops", func(p *sim.Proc) {
			for step := 0; step < 1500; step++ {
				k := int64(rng.Intn(300))
				switch rng.Intn(4) {
				case 0, 1: // put
					v := fmt.Sprintf("v%d-%d", k, step)
					tr.Put(p, ik(k), []byte(v), 0)
					model[k] = v
				case 2: // delete
					gone, _ := tr.Delete(p, ik(k), 0)
					_, had := model[k]
					if gone != had {
						okAll = false
						return
					}
					delete(model, k)
				case 3: // get
					got, ok, _ := tr.Get(p, ik(k))
					want, had := model[k]
					if ok != had || (ok && string(got) != want) {
						okAll = false
						return
					}
				}
			}
			// Final: full scan equals sorted model.
			var wantKeys []int64
			for k := range model {
				wantKeys = append(wantKeys, k)
			}
			sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
			var gotKeys []int64
			tr.Scan(p, nil, nil, func(kb, vb []byte) bool {
				d, _, _ := keycodec.DecodeInt64(kb)
				gotKeys = append(gotKeys, d)
				if string(vb) != model[d] {
					okAll = false
				}
				return true
			})
			if len(gotKeys) != len(wantKeys) {
				okAll = false
				return
			}
			for i := range gotKeys {
				if gotKeys[i] != wantKeys[i] {
					okAll = false
					return
				}
			}
			if err := tr.Validate(p); err != nil {
				okAll = false
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVariableLengthValues(t *testing.T) {
	testTree(t, 800, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		rng := rand.New(rand.NewSource(9))
		want := map[int64][]byte{}
		for i := 0; i < 400; i++ {
			k := int64(i)
			v := make([]byte, 1+rng.Intn(180))
			rng.Read(v)
			tr.Put(p, ik(k), v, 0)
			want[k] = v
		}
		if err := tr.Validate(p); err != nil {
			t.Fatal(err)
		}
		for k, v := range want {
			got, ok, _ := tr.Get(p, ik(k))
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("key %d mismatch", k)
			}
		}
	})
}

func TestOversizeCellRejected(t *testing.T) {
	testTree(t, 16, func(p *sim.Proc, tr *Tree, _ *storage.Segment) {
		_, err := tr.Put(p, ik(1), bytes.Repeat([]byte{1}, 400), 0)
		if err == nil {
			t.Fatal("oversize cell accepted on 512-byte page")
		}
	})
}

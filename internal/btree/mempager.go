package btree

import (
	"errors"

	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// ErrSegmentFull is returned when a page allocation fails because the
// backing segment has no free pages. For physiological partitions this is
// the signal to start a new mini-partition segment.
var ErrSegmentFull = errors.New("btree: segment full")

// MemPager serves a tree directly from a segment's bytes with no buffering
// and no simulated I/O cost. It backs unit tests and zero-cost bulk setup
// (initial data generation happens "before" the measured experiment).
type MemPager struct {
	Seg *storage.Segment
}

var noopRelease Release = func() {}

// Read returns the page bytes; the release is a no-op.
func (m MemPager) Read(_ *sim.Proc, no storage.PageNo) (storage.Page, Release, error) {
	return m.Seg.Page(no), noopRelease, nil
}

// Write returns the page bytes for modification.
func (m MemPager) Write(_ *sim.Proc, no storage.PageNo) (storage.Page, Release, error) {
	return m.Seg.Page(no), noopRelease, nil
}

// Alloc grabs a fresh page from the segment.
func (m MemPager) Alloc(_ *sim.Proc) (storage.PageNo, storage.Page, Release, error) {
	no, ok := m.Seg.AllocPage()
	if !ok {
		return 0, nil, nil, ErrSegmentFull
	}
	return no, m.Seg.Page(no), noopRelease, nil
}

// Free returns a page to the segment.
func (m MemPager) Free(_ *sim.Proc, no storage.PageNo) error {
	m.Seg.FreePage(no)
	return nil
}

// PageSize returns the segment's page size.
func (m MemPager) PageSize() int { return m.Seg.PageSize() }

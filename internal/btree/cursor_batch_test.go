package btree

import (
	"bytes"
	"testing"

	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

func TestNextBatchMatchesScan(t *testing.T) {
	testTree(t, 400, func(p *sim.Proc, tr *Tree, seg *storage.Segment) {
		const n = 500
		for i := int64(0); i < n; i++ {
			if _, err := tr.Put(p, ik(i), val(i), 0); err != nil {
				t.Fatal(err)
			}
		}
		for _, batchSize := range []int{1, 3, 7, 64, 1000} {
			c, err := tr.Seek(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]KV, batchSize)
			var got int64
			for {
				m, err := c.NextBatch(p, out)
				if err != nil {
					t.Fatal(err)
				}
				if m == 0 {
					break
				}
				for i := 0; i < m; i++ {
					if !bytes.Equal(out[i].Key, ik(got)) || !bytes.Equal(out[i].Val, val(got)) {
						t.Fatalf("batch %d: record %d = %x/%q", batchSize, got, out[i].Key, out[i].Val)
					}
					got++
				}
			}
			if got != n {
				t.Fatalf("batch %d: delivered %d records, want %d", batchSize, got, n)
			}
		}
	})
}

func TestNextBatchFromSeekPosition(t *testing.T) {
	testTree(t, 400, func(p *sim.Proc, tr *Tree, seg *storage.Segment) {
		for i := int64(0); i < 200; i++ {
			if _, err := tr.Put(p, ik(i), val(i), 0); err != nil {
				t.Fatal(err)
			}
		}
		c, err := tr.Seek(p, ik(150))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]KV, 16)
		m, err := c.NextBatch(p, out)
		if err != nil || m != 16 {
			t.Fatalf("m=%d err=%v", m, err)
		}
		for i := 0; i < m; i++ {
			if !bytes.Equal(out[i].Key, ik(150+int64(i))) {
				t.Fatalf("record %d = %x", i, out[i].Key)
			}
		}
		// The cursor must be positioned on the record after the batch.
		if !c.Valid() || !bytes.Equal(c.Key(), ik(166)) {
			t.Fatalf("cursor at %x valid=%v, want 166", c.Key(), c.Valid())
		}
	})
}

func TestNextBatchSurvivesConcurrentSplit(t *testing.T) {
	// Mirror of TestCursorSurvivesConcurrentSplit for the batched path: a
	// writer splits pages between batch fetches; every pre-existing even key
	// must still be delivered exactly once.
	env := sim.NewEnv(7)
	defer env.Close()
	seg := storage.NewSegment(1, 512, 800)
	tr := New(MemPager{seg}, 0, nil)
	const n = 300
	env.Spawn("setup", func(p *sim.Proc) {
		for i := int64(0); i < n; i++ {
			if _, err := tr.Put(p, ik(i*2), val(i*2), 0); err != nil {
				t.Error(err)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	var seen []int64
	env.Spawn("scanner", func(p *sim.Proc) {
		c, err := tr.Seek(p, nil)
		if err != nil {
			t.Error(err)
			return
		}
		out := make([]KV, 8)
		for {
			m, err := c.NextBatch(p, out)
			if err != nil {
				t.Error(err)
				return
			}
			if m == 0 {
				return
			}
			for i := 0; i < m; i++ {
				k, _, err := keycodec.DecodeInt64(out[i].Key)
				if err != nil {
					t.Error(err)
					return
				}
				seen = append(seen, k)
			}
			p.Yield() // let the writer interleave between batches
		}
	})
	env.Spawn("writer", func(p *sim.Proc) {
		for i := int64(0); i < n; i++ {
			if _, err := tr.Put(p, ik(i*2+1), val(i*2+1), 0); err != nil {
				t.Error(err)
			}
			p.Yield()
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	var evens []int64
	for _, k := range seen {
		if k%2 == 0 {
			evens = append(evens, k)
		}
	}
	if len(evens) != n {
		t.Fatalf("saw %d even keys, want %d", len(evens), n)
	}
	for i, k := range evens {
		if k != int64(i*2) {
			t.Fatalf("even key %d = %d, want %d", i, k, i*2)
		}
	}
}

func TestCursorNextBatchZeroAlloc(t *testing.T) {
	testTree(t, 400, func(p *sim.Proc, tr *Tree, seg *storage.Segment) {
		for i := int64(0); i < 500; i++ {
			if _, err := tr.Put(p, ik(i), val(i), 0); err != nil {
				t.Fatal(err)
			}
		}
		c, err := tr.Seek(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]KV, 32)
		// Warm the KV backing arrays and the cursor scratch.
		if _, err := c.NextBatch(p, out); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := c.SeekTo(p, nil); err != nil {
				t.Error(err)
				return
			}
			for {
				m, err := c.NextBatch(p, out)
				if err != nil {
					t.Error(err)
					return
				}
				if m == 0 {
					return
				}
			}
		})
		if allocs != 0 {
			t.Fatalf("warm cursor NextBatch scan allocates %v objects/run, want 0", allocs)
		}
	})
}

package btree

import (
	"bytes"
	"fmt"

	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// Cursor iterates a tree in key order. It keeps no pages pinned between
// Next calls; if the tree changes structurally underneath it (another
// transaction splits or frees a page at a blocking point), the cursor
// re-seeks its last key transparently.
type Cursor struct {
	t     *Tree
	stack []cursorLevel
	gen   uint64
	key   []byte
	val   []byte
	valid bool
}

type cursorLevel struct {
	no   storage.PageNo
	slot int
}

// Seek positions a cursor at the first key >= key. A nil key starts at the
// beginning.
func (t *Tree) Seek(p *sim.Proc, key []byte) (*Cursor, error) {
	c := &Cursor{t: t}
	if err := c.seek(p, key); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cursor) seek(p *sim.Proc, key []byte) error {
	c.stack = c.stack[:0]
	c.valid = false
	c.gen = c.t.gen
	if c.t.root == 0 {
		return nil
	}
	no := c.t.root
	for {
		pg, rel, err := c.t.pager.Read(p, no)
		if err != nil {
			return err
		}
		if pg.Type() == storage.PageInner {
			slot := 0
			if key != nil {
				slot = childSlot(pg, key)
			}
			child := innerCellChild(pg.Cell(slot))
			c.stack = append(c.stack, cursorLevel{no, slot})
			rel()
			no = child
			continue
		}
		slot := 0
		if key != nil {
			slot, _ = search(pg, key)
		}
		c.stack = append(c.stack, cursorLevel{no, slot})
		if slot < pg.NumSlots() {
			c.load(pg, slot)
			rel()
			return nil
		}
		rel()
		// Leaf exhausted (or empty): advance to the next leaf.
		return c.advance(p)
	}
}

func (c *Cursor) load(pg storage.Page, slot int) {
	cell := pg.Cell(slot)
	c.key = append(c.key[:0], cellKey(cell)...)
	c.val = append(c.val[:0], leafCellValue(cell)...)
	c.valid = true
}

// Valid reports whether the cursor is positioned on a record.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current key. The slice is reused by Next; copy to retain.
func (c *Cursor) Key() []byte { return c.key }

// Value returns the current value. The slice is reused by Next.
func (c *Cursor) Value() []byte { return c.val }

// Next advances to the following key.
func (c *Cursor) Next(p *sim.Proc) error {
	if !c.valid {
		return nil
	}
	if c.gen != c.t.gen {
		return c.reseekForward(p)
	}
	return c.step(p)
}

// reseekForward rebuilds the cursor position after a structural change and
// moves to the key following the one last returned.
func (c *Cursor) reseekForward(p *sim.Proc) error {
	last := bytes.Clone(c.key)
	if err := c.seek(p, last); err != nil {
		return err
	}
	if c.valid && bytes.Equal(c.key, last) {
		return c.step(p)
	}
	return nil
}

// step moves one slot forward within the current leaf, spilling into the
// next leaf when exhausted.
func (c *Cursor) step(p *sim.Proc) error {
	leaf := &c.stack[len(c.stack)-1]
	pg, rel, err := c.t.pager.Read(p, leaf.no)
	if err != nil {
		return err
	}
	if c.gen != c.t.gen { // page fetch yielded and the tree changed
		rel()
		return c.reseekForward(p)
	}
	leaf.slot++
	if leaf.slot < pg.NumSlots() {
		c.load(pg, leaf.slot)
		rel()
		return nil
	}
	rel()
	return c.advance(p)
}

// advance pops exhausted levels and descends to the leftmost leaf of the
// next subtree.
func (c *Cursor) advance(p *sim.Proc) error {
	c.valid = false
	for len(c.stack) > 1 {
		c.stack = c.stack[:len(c.stack)-1]
		lvl := &c.stack[len(c.stack)-1]
		pg, rel, err := c.t.pager.Read(p, lvl.no)
		if err != nil {
			return err
		}
		if c.gen != c.t.gen {
			rel()
			c.valid = true // restore: c.key still holds the last-returned key
			return c.reseekForward(p)
		}
		lvl.slot++
		if lvl.slot >= pg.NumSlots() {
			rel()
			continue
		}
		no := innerCellChild(pg.Cell(lvl.slot))
		rel()
		// Descend to the leftmost leaf under no.
		for {
			pg, rel, err := c.t.pager.Read(p, no)
			if err != nil {
				return err
			}
			if pg.Type() == storage.PageInner {
				c.stack = append(c.stack, cursorLevel{no, 0})
				child := innerCellChild(pg.Cell(0))
				rel()
				no = child
				continue
			}
			c.stack = append(c.stack, cursorLevel{no, 0})
			if pg.NumSlots() > 0 {
				c.load(pg, 0)
				rel()
				return nil
			}
			rel()
			break // empty leaf: keep popping
		}
	}
	return nil
}

// Scan iterates keys in [lo, hi) (nil bounds are open) and calls fn for each
// record; fn returning false stops the scan. Key and value slices passed to
// fn are only valid during the call.
func (t *Tree) Scan(p *sim.Proc, lo, hi []byte, fn func(key, val []byte) bool) error {
	c, err := t.Seek(p, lo)
	if err != nil {
		return err
	}
	for c.Valid() {
		if hi != nil && bytes.Compare(c.Key(), hi) >= 0 {
			return nil
		}
		if !fn(c.Key(), c.Value()) {
			return nil
		}
		if err := c.Next(p); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records in the tree.
func (t *Tree) Count(p *sim.Proc) (int, error) {
	n := 0
	err := t.Scan(p, nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// MinKey returns the smallest key, ok=false for an empty tree.
func (t *Tree) MinKey(p *sim.Proc) ([]byte, bool, error) {
	c, err := t.Seek(p, nil)
	if err != nil || !c.Valid() {
		return nil, false, err
	}
	return bytes.Clone(c.Key()), true, nil
}

// Validate checks structural invariants: key ordering within and across
// pages, separator coverage, and uniform leaf depth. It returns a
// descriptive error on the first violation.
func (t *Tree) Validate(p *sim.Proc) error {
	if t.root == 0 {
		return nil
	}
	_, _, _, err := t.validatePage(p, t.root, nil, nil, -1, 0)
	return err
}

func (t *Tree) validatePage(p *sim.Proc, no storage.PageNo, lo, hi []byte, wantDepth, depth int) (minKey, maxKey []byte, leafDepth int, err error) {
	pg, rel, err := t.pager.Read(p, no)
	if err != nil {
		return nil, nil, 0, err
	}
	n := pg.NumSlots()
	typ := pg.Type()
	var keys [][]byte
	var children []storage.PageNo
	for i := 0; i < n; i++ {
		cell := pg.Cell(i)
		keys = append(keys, bytes.Clone(cellKey(cell)))
		if typ == storage.PageInner {
			children = append(children, innerCellChild(cell))
		}
	}
	rel()
	for i := 1; i < n; i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			return nil, nil, 0, fmt.Errorf("btree: page %d keys out of order at slot %d", no, i)
		}
	}
	if typ == storage.PageLeaf {
		if n == 0 && no != t.root {
			return nil, nil, 0, fmt.Errorf("btree: empty non-root leaf %d", no)
		}
		for _, k := range keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return nil, nil, 0, fmt.Errorf("btree: leaf %d key below bound", no)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return nil, nil, 0, fmt.Errorf("btree: leaf %d key above bound", no)
			}
		}
		if wantDepth >= 0 && depth != wantDepth {
			return nil, nil, 0, fmt.Errorf("btree: leaf %d at depth %d, want %d", no, depth, wantDepth)
		}
		if n == 0 {
			return nil, nil, depth, nil
		}
		return keys[0], keys[n-1], depth, nil
	}
	if n == 0 {
		return nil, nil, 0, fmt.Errorf("btree: empty inner page %d", no)
	}
	leafDepth = wantDepth
	for i := 0; i < n; i++ {
		clo := lo
		if i > 0 {
			clo = keys[i]
		}
		chi := hi
		if i+1 < n {
			chi = keys[i+1]
		}
		_, _, d, err := t.validatePage(p, children[i], clo, chi, leafDepth, depth+1)
		if err != nil {
			return nil, nil, 0, err
		}
		leafDepth = d
	}
	return keys[0], nil, leafDepth, nil
}

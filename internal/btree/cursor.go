package btree

import (
	"bytes"
	"fmt"

	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// Cursor iterates a tree in key order. It keeps no pages pinned between
// Next calls; if the tree changes structurally underneath it (another
// transaction splits or frees a page at a blocking point), the cursor
// re-seeks its last key transparently.
//
// A cursor's stack, key/value scratch, and batch buffers are all reusable:
// re-Seeking an existing cursor (or obtaining one from the tree's internal
// free list via Scan) iterates without per-record allocation.
type Cursor struct {
	t       *Tree
	stack   []cursorLevel
	gen     uint64
	key     []byte
	val     []byte
	seekBuf []byte
	valid   bool
	// anchored: c.key holds a record this cursor actually delivered, so a
	// structural-change recovery may step past an exact re-match. False
	// between the start of a seek and its first load — there c.key holds the
	// seek TARGET (inclusive), never a stale position. Without this, a
	// pooled cursor whose seek raced a split re-anchored on the previous
	// scan's last key and delivered records far below the new scan's lower
	// bound (found by the TPC-C chaos oracle as a double delivery).
	anchored bool

	next  *Cursor // tree free-list link
	batch []KV    // scratch batch for Tree.Scan
}

type cursorLevel struct {
	no   storage.PageNo
	slot int
}

// KV is one record delivered by Cursor.NextBatch. Key and Val are appended
// into the entry's existing backing arrays, so a reused batch reaches zero
// allocations per scan in steady state.
type KV struct {
	Key []byte
	Val []byte
}

// Seek positions a cursor at the first key >= key. A nil key starts at the
// beginning.
func (t *Tree) Seek(p *sim.Proc, key []byte) (*Cursor, error) {
	c := &Cursor{t: t}
	if err := c.seek(p, key); err != nil {
		return nil, err
	}
	return c, nil
}

// SeekTo repositions an existing cursor at the first key >= key, reusing its
// scratch buffers.
func (c *Cursor) SeekTo(p *sim.Proc, key []byte) error { return c.seek(p, key) }

// getCursor pops a cursor from the tree's free list (or makes one). Cursors
// are returned by putCursor; interleaved scans each pop a distinct cursor,
// so scans that block mid-flight cannot share scratch state.
func (t *Tree) getCursor() *Cursor {
	c := t.curFree
	if c == nil {
		return &Cursor{t: t}
	}
	t.curFree = c.next
	c.next = nil
	c.valid = false
	return c
}

func (t *Tree) putCursor(c *Cursor) {
	c.next = t.curFree
	t.curFree = c
}

func (c *Cursor) seek(p *sim.Proc, key []byte) error {
	// The target is the only valid recovery anchor until the first load:
	// c.key may still hold a stale position (pool reuse, or a spot behind
	// the new target), and advancing from it would violate the seek bound.
	c.key = append(c.key[:0], key...)
	c.anchored = false
restart:
	// Wait out in-flight structural surgery: a seek that starts inside a
	// split's torn window would adopt the post-bump gen and walk the
	// half-mutated structure undetected.
	c.t.readFence(p)
	c.stack = c.stack[:0]
	c.valid = false
	c.gen = c.t.gen
	if c.t.root == 0 {
		return nil
	}
	no := c.t.root
	for {
		pg, rel, err := c.t.pager.Read(p, no)
		if err != nil {
			return err
		}
		if c.gen != c.t.gen {
			// The descent raced a structural change while the page read
			// blocked: the stack may point into pre-split pages, so restart
			// from the (possibly new) root.
			rel()
			goto restart
		}
		if pg.Type() == storage.PageInner {
			slot := 0
			if key != nil {
				slot = childSlot(pg, key)
			}
			child := innerCellChild(pg.Cell(slot))
			c.stack = append(c.stack, cursorLevel{no, slot})
			rel()
			no = child
			continue
		}
		slot := 0
		if key != nil {
			slot, _ = search(pg, key)
		}
		c.stack = append(c.stack, cursorLevel{no, slot})
		if slot < pg.NumSlots() {
			c.load(pg, slot)
			rel()
			return nil
		}
		rel()
		// Leaf exhausted (or empty): advance to the next leaf.
		return c.advance(p)
	}
}

func (c *Cursor) load(pg storage.Page, slot int) {
	cell := pg.Cell(slot)
	c.key = append(c.key[:0], cellKey(cell)...)
	c.val = append(c.val[:0], leafCellValue(cell)...)
	c.valid = true
	c.anchored = true
}

// Valid reports whether the cursor is positioned on a record.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current key. The slice is reused by Next; copy to retain.
func (c *Cursor) Key() []byte { return c.key }

// Value returns the current value. The slice is reused by Next.
func (c *Cursor) Value() []byte { return c.val }

// Next advances to the following key.
func (c *Cursor) Next(p *sim.Proc) error {
	if !c.valid {
		return nil
	}
	if c.gen != c.t.gen {
		return c.reseekForward(p)
	}
	return c.step(p)
}

// reseekForward rebuilds the cursor position after a structural change and
// moves to the key following the one last returned. When the cursor was
// never positioned since its seek began (anchored=false), c.key is the seek
// target itself — re-seek it inclusively: an exact match is an undelivered
// record, not one to step past.
func (c *Cursor) reseekForward(p *sim.Proc) error {
	last := bytes.Clone(c.key)
	delivered := c.anchored
	if err := c.seek(p, last); err != nil {
		return err
	}
	if delivered && c.valid && bytes.Equal(c.key, last) {
		return c.step(p)
	}
	return nil
}

// anchorLeaf re-locates c.key's slot in leaf page pg. Non-structural
// mutations (inserts into or deletes from the same leaf by another process)
// shift slot positions without bumping the tree's gen, so a stored slot can
// drift; re-searching the page recovers it. It returns the slot of the first
// key >= c.key, which may be pg.NumSlots() when the leaf's remaining keys
// are all smaller.
func (c *Cursor) anchorLeaf(pg storage.Page, leaf *cursorLevel) int {
	if leaf.slot < pg.NumSlots() && bytes.Equal(cellKey(pg.Cell(leaf.slot)), c.key) {
		return leaf.slot
	}
	slot, _ := search(pg, c.key)
	return slot
}

// step moves one slot forward within the current leaf, spilling into the
// next leaf when exhausted.
func (c *Cursor) step(p *sim.Proc) error {
	leaf := &c.stack[len(c.stack)-1]
	pg, rel, err := c.t.pager.Read(p, leaf.no)
	if err != nil {
		return err
	}
	if c.gen != c.t.gen { // page fetch yielded and the tree changed
		rel()
		return c.reseekForward(p)
	}
	slot := c.anchorLeaf(pg, leaf)
	if slot < pg.NumSlots() && bytes.Equal(cellKey(pg.Cell(slot)), c.key) {
		slot++ // still present: deliver its successor
	}
	leaf.slot = slot
	if leaf.slot < pg.NumSlots() {
		c.load(pg, leaf.slot)
		rel()
		return nil
	}
	rel()
	return c.advance(p)
}

// advance pops exhausted levels and descends to the leftmost leaf of the
// next subtree.
func (c *Cursor) advance(p *sim.Proc) error {
	c.valid = false
	for len(c.stack) > 1 {
		c.stack = c.stack[:len(c.stack)-1]
		lvl := &c.stack[len(c.stack)-1]
		pg, rel, err := c.t.pager.Read(p, lvl.no)
		if err != nil {
			return err
		}
		if c.gen != c.t.gen {
			rel()
			// c.key holds the recovery anchor: the last-returned key, or —
			// when this advance came from a still-positioning seek — the
			// seek target (anchored=false, re-sought inclusively).
			c.valid = true
			return c.reseekForward(p)
		}
		lvl.slot++
		if lvl.slot >= pg.NumSlots() {
			rel()
			continue
		}
		no := innerCellChild(pg.Cell(lvl.slot))
		rel()
		// Descend to the leftmost leaf under no.
		for {
			pg, rel, err := c.t.pager.Read(p, no)
			if err != nil {
				return err
			}
			if c.gen != c.t.gen {
				// The descent raced a structural change while the read
				// blocked: the page may have been freed and reused for a
				// different key range. Recover from the anchor like the pop
				// loop above.
				rel()
				c.valid = true
				return c.reseekForward(p)
			}
			if pg.Type() == storage.PageInner {
				c.stack = append(c.stack, cursorLevel{no, 0})
				child := innerCellChild(pg.Cell(0))
				rel()
				no = child
				continue
			}
			c.stack = append(c.stack, cursorLevel{no, 0})
			if pg.NumSlots() > 0 {
				c.load(pg, 0)
				rel()
				return nil
			}
			rel()
			break // empty leaf: keep popping
		}
	}
	return nil
}

// NextBatch copies up to len(out) records, starting at the cursor's current
// position, into out — reusing each entry's Key/Val backing arrays — and
// advances the cursor past them. An entire leaf is consumed under a single
// page fetch, which is what lets table scans amortise per-record pager
// costs. It returns the number of records delivered; 0 means the cursor is
// exhausted. After a short (n < len(out)) return the cursor may still be
// valid (e.g. after a concurrent structural change); callers should loop
// until n == 0.
func (c *Cursor) NextBatch(p *sim.Proc, out []KV) (int, error) {
	return c.nextBatch(p, out, nil)
}

// nextBatch is NextBatch with an optional exclusive upper bound: delivery
// stops before the first key >= hi and the cursor stays positioned on it,
// so bounded scans never fetch pages past their range.
func (c *Cursor) nextBatch(p *sim.Proc, out []KV, hi []byte) (int, error) {
	n := 0
	for n < len(out) && c.valid {
		if c.gen != c.t.gen {
			// Stale position stack: re-find the current (undelivered)
			// record. seek mutates c.key, so go through scratch.
			c.seekBuf = append(c.seekBuf[:0], c.key...)
			if err := c.seek(p, c.seekBuf); err != nil {
				return n, err
			}
			continue
		}
		if hi != nil && bytes.Compare(c.key, hi) >= 0 {
			return n, nil
		}
		leaf := &c.stack[len(c.stack)-1]
		pg, rel, err := c.t.pager.Read(p, leaf.no)
		if err != nil {
			return n, err
		}
		if c.gen != c.t.gen { // page fetch yielded and the tree changed
			rel()
			continue
		}
		// Re-anchor against intra-leaf slot drift, then reload the current
		// record: it may have been deleted, in which case its successor
		// (possibly on a later leaf) is the next record to deliver.
		leaf.slot = c.anchorLeaf(pg, leaf)
		if leaf.slot >= pg.NumSlots() {
			rel()
			if err := c.advance(p); err != nil {
				return n, err
			}
			continue
		}
		c.load(pg, leaf.slot)
		if hi != nil && bytes.Compare(c.key, hi) >= 0 {
			rel()
			return n, nil
		}
		// Deliver the current record, then as many successors as fit,
		// all under this one page fetch.
		for {
			out[n].Key = append(out[n].Key[:0], c.key...)
			out[n].Val = append(out[n].Val[:0], c.val...)
			n++
			if leaf.slot+1 >= pg.NumSlots() {
				rel()
				if err := c.advance(p); err != nil {
					return n, err
				}
				break
			}
			leaf.slot++
			c.load(pg, leaf.slot)
			if n == len(out) || (hi != nil && bytes.Compare(c.key, hi) >= 0) {
				// The just-loaded record is the cursor's new position.
				rel()
				return n, nil
			}
		}
	}
	return n, nil
}

// scanBatchSize is the steady-state leaf-at-a-time delivery unit for
// Tree.Scan. Typical leaves hold a few dozen cells, so one full batch
// usually covers a whole leaf.
const scanBatchSize = 64

// Scan iterates keys in [lo, hi) (nil bounds are open) and calls fn for each
// record; fn returning false stops the scan. Key and value slices passed to
// fn are only valid during the call. Records are fetched via NextBatch with
// a pooled cursor, so steady-state scans allocate nothing. The batch ramps
// 1 → 8 → 64 so a consumer that stops after the first record (classic
// single-record volcano plans) pays no prefetch cost, while long scans
// quickly reach whole-leaf fetches.
func (t *Tree) Scan(p *sim.Proc, lo, hi []byte, fn func(key, val []byte) bool) error {
	c := t.getCursor()
	defer t.putCursor(c)
	if err := c.seek(p, lo); err != nil {
		return err
	}
	if c.batch == nil {
		c.batch = make([]KV, scanBatchSize)
	}
	size := 1
	for {
		n, err := c.nextBatch(p, c.batch[:size], hi)
		for i := 0; i < n; i++ {
			if !fn(c.batch[i].Key, c.batch[i].Val) {
				// The consumer stopped; errors from prefetching past its
				// stop point are not its concern.
				return nil
			}
		}
		if err != nil || n == 0 {
			return err
		}
		if size < scanBatchSize {
			size *= 8
			if size > scanBatchSize {
				size = scanBatchSize
			}
		}
	}
}

// Count returns the number of records in the tree.
func (t *Tree) Count(p *sim.Proc) (int, error) {
	n := 0
	err := t.Scan(p, nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// MinKey returns the smallest key, ok=false for an empty tree.
func (t *Tree) MinKey(p *sim.Proc) ([]byte, bool, error) {
	c, err := t.Seek(p, nil)
	if err != nil || !c.Valid() {
		return nil, false, err
	}
	return bytes.Clone(c.Key()), true, nil
}

// Validate checks structural invariants: key ordering within and across
// pages, separator coverage, and uniform leaf depth. It returns a
// descriptive error on the first violation.
func (t *Tree) Validate(p *sim.Proc) error {
	if t.root == 0 {
		return nil
	}
	_, _, _, err := t.validatePage(p, t.root, nil, nil, -1, 0)
	return err
}

func (t *Tree) validatePage(p *sim.Proc, no storage.PageNo, lo, hi []byte, wantDepth, depth int) (minKey, maxKey []byte, leafDepth int, err error) {
	pg, rel, err := t.pager.Read(p, no)
	if err != nil {
		return nil, nil, 0, err
	}
	n := pg.NumSlots()
	typ := pg.Type()
	var keys [][]byte
	var children []storage.PageNo
	for i := 0; i < n; i++ {
		cell := pg.Cell(i)
		keys = append(keys, bytes.Clone(cellKey(cell)))
		if typ == storage.PageInner {
			children = append(children, innerCellChild(cell))
		}
	}
	rel()
	for i := 1; i < n; i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			return nil, nil, 0, fmt.Errorf("btree: page %d keys out of order at slot %d", no, i)
		}
	}
	if typ == storage.PageLeaf {
		if n == 0 && no != t.root {
			return nil, nil, 0, fmt.Errorf("btree: empty non-root leaf %d", no)
		}
		for _, k := range keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return nil, nil, 0, fmt.Errorf("btree: leaf %d key below bound", no)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return nil, nil, 0, fmt.Errorf("btree: leaf %d key above bound", no)
			}
		}
		if wantDepth >= 0 && depth != wantDepth {
			return nil, nil, 0, fmt.Errorf("btree: leaf %d at depth %d, want %d", no, depth, wantDepth)
		}
		if n == 0 {
			return nil, nil, depth, nil
		}
		return keys[0], keys[n-1], depth, nil
	}
	if n == 0 {
		return nil, nil, 0, fmt.Errorf("btree: empty inner page %d", no)
	}
	leafDepth = wantDepth
	for i := 0; i < n; i++ {
		clo := lo
		if i > 0 {
			clo = keys[i]
		}
		chi := hi
		if i+1 < n {
			chi = keys[i+1]
		}
		_, _, d, err := t.validatePage(p, children[i], clo, chi, leafDepth, depth+1)
		if err != nil {
			return nil, nil, 0, err
		}
		leafDepth = d
	}
	return keys[0], nil, leafDepth, nil
}

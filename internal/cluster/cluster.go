// Package cluster assembles WattDB: data nodes (buffer pool, segment
// store, WAL, lock manager) on simulated hardware, a master node holding
// the catalog and global partition table with dual old/new pointers during
// migration (Sect. 4.3 Housekeeping), utilisation monitoring with
// threshold-driven scale-out/scale-in (Sect. 3.4), and the three
// repartitioning protocols of Sect. 4.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/buffer"
	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// Config tunes a cluster.
type Config struct {
	Nodes       int
	Cal         hw.Calibration
	LockTimeout time.Duration
	// VectorSize is the record batch size for remote operators.
	VectorSize int
	// MasterReplicas, when positive, replicates the coordinator state
	// machine to nodes 1..MasterReplicas (see replication.go). Zero keeps
	// the legacy stable-metadata master.
	MasterReplicas int
	// DataReplicas, when positive, ships every node's data WAL frames to
	// that many follower nodes (see datarep.go): forced commits need one
	// durable follower, a wiped disk rebuilds from the replica set, and
	// read-only snapshot reads can be served by followers. Zero keeps the
	// legacy stable-flushed-bytes durability model.
	DataReplicas int
}

// DefaultConfig returns the paper's 10-node cluster with test-scale
// segments.
func DefaultConfig() Config {
	return Config{
		Nodes:       10,
		Cal:         hw.TestCalibration(),
		LockTimeout: 2 * time.Second,
		VectorSize:  256,
	}
}

// segHome records where a segment's durable bytes live.
type segHome struct {
	seg    *storage.Segment
	node   *DataNode
	disk   *hw.Disk
	moving bool // physical relocation in progress: flushes must wait
	moved  *sim.Signal
}

// Cluster owns the hardware, the nodes, and the segment location map.
type Cluster struct {
	Env    *sim.Env
	Cal    hw.Calibration
	Net    *hw.Network
	Nodes  []*DataNode
	Master *Master
	Meter  *hw.PowerMeter

	homes     map[storage.SegID]*segHome
	nextSegID storage.SegID

	// drep is non-nil when data replication is enabled (datarep.go).
	drep *dataRep

	cfg Config
}

// New builds a cluster of cfg.Nodes data nodes. Node 0 hosts the master.
// All nodes start in standby except node 0; activate more with PowerOn or
// the scale-out policy.
func New(env *sim.Env, cfg Config) *Cluster {
	c := &Cluster{
		Env:   env,
		Cal:   cfg.Cal,
		Net:   hw.NewNetwork(env, cfg.Cal),
		homes: make(map[storage.SegID]*segHome),
		cfg:   cfg,
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.Nodes = append(c.Nodes, newDataNode(c, i))
	}
	c.Nodes[0].HW.ForceActive()
	c.Master = newMaster(c)
	if cfg.MasterReplicas > 0 {
		c.EnableMasterReplication(cfg.MasterReplicas)
	}
	if cfg.DataReplicas > 0 {
		c.EnableDataReplication(cfg.DataReplicas)
	}
	var hwNodes []*hw.Node
	for _, n := range c.Nodes {
		hwNodes = append(hwNodes, n.HW)
	}
	c.Meter = hw.NewPowerMeter(env, cfg.Cal, hwNodes, time.Second)
	return c
}

// NextSegID issues a cluster-unique segment ID.
func (c *Cluster) NextSegID() storage.SegID {
	c.nextSegID++
	return c.nextSegID
}

func (c *Cluster) home(id storage.SegID) (*segHome, error) {
	h, ok := c.homes[id]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown segment %d", id)
	}
	return h, nil
}

// registerSegment homes seg on node's given disk.
func (c *Cluster) registerSegment(seg *storage.Segment, node *DataNode, disk *hw.Disk) {
	c.homes[seg.ID] = &segHome{seg: seg, node: node, disk: disk, moved: sim.NewSignal(c.Env)}
}

// dropSegment forgets a segment's storage.
func (c *Cluster) dropSegment(id storage.SegID) { delete(c.homes, id) }

// DataNode is one cluster machine running the WattDB engine: page buffer,
// WAL, lock manager, and the partitions it owns.
type DataNode struct {
	ID      int
	HW      *hw.Node
	Pool    *buffer.Pool
	Log     *wal.Log
	Locks   *cc.LockManager
	cluster *Cluster

	diskRR int // round-robin over data disks for new segments

	// Owned partitions by ID (server-side registry).
	Parts map[table.PartID]*table.Partition

	// helper wiring (Fig. 8): non-nil while log shipping is active.
	shippedFrom wal.Device

	// Crash/restart bookkeeping (see crash.go).
	crashed   bool                        // power-failed, not yet restarted
	lostParts []*table.Partition          // partitions to rebuild on restart, in ID order
	bases     map[table.PartID][]basePair // recovery bases (bulk-load and adopted images)

	// Fuzzy-checkpoint bookkeeping (see checkpoint.go).
	deadBelow    uint64        // restart tail fence: unresolved txns below never resolve
	ckptCrashIn  int           // armed checkpoint-crash countdown (-1: disarmed)
	Checkpoints  int           // completed fuzzy checkpoints (chaos report)
	LastRecovery RecoveryStats // last RestartNode's RTO breakdown

	// Data replication (see datarep.go); nil unless enabled.
	ship     *shipState        // origin role: frames queued for followers
	stores   map[int]*repStore // follower role: replica stores by origin ID
	diskLost bool              // DestroyDisk wiped the durable state; rebuild pending
}

func newDataNode(c *Cluster, id int) *DataNode {
	n := &DataNode{
		ID:          id,
		HW:          hw.NewNode(c.Env, id, c.Cal, c.Net),
		Locks:       cc.NewLockManager(c.Env),
		cluster:     c,
		Parts:       make(map[table.PartID]*table.Partition),
		bases:       make(map[table.PartID][]basePair),
		ckptCrashIn: -1,
	}
	n.Pool = buffer.NewPool(c.Env, (*nodeBackend)(n), c.Cal.PageSize, c.Cal.BufferFrames)
	n.Log = wal.NewLog(c.Env, wal.DiskDevice{Disk: n.HW.LogDisk()})
	n.Pool.SetWALFlush(func(p *sim.Proc, lsn uint64) { n.Log.Flush(p, lsn) })
	return n
}

// Deps builds the table.Deps for partitions owned by this node.
func (n *DataNode) Deps() table.Deps {
	return table.Deps{
		Env:         n.cluster.Env,
		Oracle:      n.cluster.Master.Oracle,
		Locks:       n.Locks,
		Log:         n.Log,
		Factory:     n,
		Compute:     n.HW.Compute,
		CPUPerOp:    n.cluster.Cal.CPUBTreeOp,
		CPUPerTuple: n.cluster.Cal.CPUTupleScan,
		LockTimeout: n.cluster.cfg.LockTimeout,
		PageSize:    n.cluster.Cal.PageSize,
	}
}

// NewSegment implements table.PagerFactory: allocate a segment on one of
// this node's data disks.
func (n *DataNode) NewSegment(p *sim.Proc) (*storage.Segment, error) {
	seg := storage.NewSegment(n.cluster.NextSegID(), n.cluster.Cal.PageSize, n.cluster.Cal.SegmentPages)
	disks := n.HW.DataDisks()
	disk := disks[n.diskRR%len(disks)]
	n.diskRR++
	n.cluster.registerSegment(seg, n, disk)
	return seg, nil
}

// Pager implements table.PagerFactory: buffered access through this node's
// pool.
func (n *DataNode) Pager(seg *storage.Segment) btree.Pager {
	return buffer.SegPager{Pool: n.Pool, Allocator: (*nodeBackend)(n), Seg: seg.ID}
}

// DropSegment implements table.PagerFactory.
func (n *DataNode) DropSegment(p *sim.Proc, id storage.SegID) {
	n.Pool.DropSegment(id)
	n.cluster.dropSegment(id)
}

// AdoptShippedSegment homes an arriving segment locally (physiological
// migration target side).
func (n *DataNode) AdoptShippedSegment(seg *storage.Segment) {
	disks := n.HW.DataDisks()
	disk := disks[n.diskRR%len(disks)]
	n.diskRR++
	n.cluster.registerSegment(seg, n, disk)
}

// nodeBackend implements buffer.Backend and buffer.Allocator with full disk
// and network timing. Reading a page whose segment is homed on another node
// (physical partitioning) costs a request/response round trip plus the
// remote disk access — the latency penalty Sect. 4.1 describes.
type nodeBackend DataNode

func (b *nodeBackend) self() *DataNode { return (*DataNode)(b) }

// ReadPage copies the durable page into dst with timing.
func (b *nodeBackend) ReadPage(p *sim.Proc, id storage.PageID, dst []byte) error {
	h, err := b.cluster.home(id.Seg)
	if err != nil {
		return err
	}
	if h.node != b.self() {
		b.cluster.Net.Transfer(p, b.ID, h.node.ID, 32)
		h.disk.Read(p, int64(len(dst)))
		b.cluster.Net.Transfer(p, h.node.ID, b.ID, int64(len(dst)))
	} else {
		h.disk.Read(p, int64(len(dst)))
	}
	copy(dst, h.seg.Page(id.Page))
	return nil
}

// WritePage persists src with timing; during a physical relocation of the
// segment the flush waits for the move to finish.
func (b *nodeBackend) WritePage(p *sim.Proc, id storage.PageID, src []byte) error {
	h, err := b.cluster.home(id.Seg)
	if err != nil {
		return err
	}
	for h.moving {
		stop := p.Meter(sim.CatLatching)
		h.moved.Wait(p)
		stop()
	}
	if h.node != b.self() {
		b.cluster.Net.Transfer(p, b.ID, h.node.ID, int64(len(src))+32)
		h.disk.Write(p, int64(len(src)))
	} else {
		h.disk.Write(p, int64(len(src)))
	}
	copy(h.seg.Page(id.Page), src)
	return nil
}

// AllocPage allocates a durable page (metadata operation; remote homes pay
// a round trip).
func (b *nodeBackend) AllocPage(p *sim.Proc, segID storage.SegID) (storage.PageNo, error) {
	h, err := b.cluster.home(segID)
	if err != nil {
		return 0, err
	}
	if h.node != b.self() {
		b.cluster.Net.Transfer(p, b.ID, h.node.ID, 32)
		b.cluster.Net.Transfer(p, h.node.ID, b.ID, 32)
	}
	no, ok := h.seg.AllocPage()
	if !ok {
		return 0, btree.ErrSegmentFull
	}
	return no, nil
}

// FreePage returns a durable page.
func (b *nodeBackend) FreePage(p *sim.Proc, segID storage.SegID, no storage.PageNo) error {
	h, err := b.cluster.home(segID)
	if err != nil {
		return err
	}
	h.seg.FreePage(no)
	return nil
}

// StartVacuum spawns a background process that periodically removes
// tombstones and garbage-collects version chains on every partition the
// node owns (a system-transaction housekeeping duty, Sect. 3.5).
func (n *DataNode) StartVacuum(interval time.Duration) {
	n.cluster.Env.Spawn(fmt.Sprintf("vacuum-%d", n.ID), func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			ids := make([]table.PartID, 0, len(n.Parts))
			for id := range n.Parts {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			wm := n.cluster.Master.Oracle.Watermark()
			for _, id := range ids {
				if pt, ok := n.Parts[id]; ok {
					pt.Vacuum(p, wm)
				}
			}
		}
	})
}

// PowerOn boots the node (blocking p for the boot time).
func (n *DataNode) PowerOn(p *sim.Proc) { n.HW.PowerOn(p) }

// PowerOff quiesces and powers the node down. The caller must have moved
// all partitions away first; nodes "still having data on disk must not shut
// down" (Sect. 4).
func (n *DataNode) PowerOff(p *sim.Proc) error {
	// Shed read-only replicas and partitions fully migrated away.
	for id, pt := range n.Parts {
		if pt.Empty() || pt.Replica {
			for _, h := range pt.Segments() {
				n.DropSegment(p, h.Seg.ID)
			}
			delete(n.Parts, id)
		}
	}
	if len(n.Parts) > 0 {
		return fmt.Errorf("cluster: node %d still owns %d partitions", n.ID, len(n.Parts))
	}
	for id, h := range n.cluster.homes {
		if h.node == n {
			return fmt.Errorf("cluster: node %d still stores segment %d", n.ID, id)
		}
	}
	n.HW.PowerOff(p)
	return nil
}

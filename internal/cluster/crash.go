package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"wattdb/internal/btree"
	"wattdb/internal/buffer"
	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// This file implements node power failure and restart as first-class
// cluster operations (previously only scripted inside recovery tests).
//
// Crash model. A power failure destroys everything volatile on the node:
// the buffer pool (dirty pages included), the lock table, MVCC version
// chains and staged writes, and the unflushed tail of the write-ahead log.
// Disk contents survive, but because dirty pages are written back lazily a
// segment's durable image is not structurally consistent at an arbitrary
// instant. Restart therefore rebuilds each partition from its *recovery
// base* — a logical record image captured at the two moments the durable
// state is known consistent (initial bulk load, and segment adoption after
// a flush-then-ship migration, which the paper treats as a checkpoint) —
// and then replays the node's durable WAL over it (REDO winners, UNDO
// losers). The master's catalog and timestamp oracle are modeled as a
// stable metadata service and survive failures of the node hosting them,
// matching the scope of the paper's recovery discussion.
//
// Commit atomicity. A failure is deferred while any transaction involving
// the node sits between its commit point (timestamp assignment) and the
// durable commit record: that window is sub-flush-sized in a real system,
// and modeling it would require in-doubt 2PC resolution, which is out of
// scope. The deferral is deterministic — the crash fires the instant the
// last in-flight commit leaves its critical section — so a run remains
// exactly reproducible from its seed.

// ErrNodeDown reports that an operation needed a power-failed node.
type ErrNodeDown struct{ Node int }

func (e ErrNodeDown) Error() string {
	return fmt.Sprintf("cluster: node %d is down (power failure)", e.Node)
}

// basePair is one record of a partition's recovery base: a key and the
// fully encoded tree value (a committed cc.Version image).
type basePair struct{ key, val []byte }

// Down reports whether the node is power-failed.
func (n *DataNode) Down() bool { return n.crashed }

// CrashPending reports whether a power failure was requested but is being
// deferred past an in-flight commit critical section.
func (n *DataNode) CrashPending() bool { return n.pendingCrash }

// addBase appends a record image to a partition's recovery base.
func (n *DataNode) addBase(id table.PartID, key, val []byte) {
	n.bases[id] = append(n.bases[id], basePair{bytes.Clone(key), bytes.Clone(val)})
}

// beginCommitGuard marks a session entering its commit critical section on
// this node (commit point through durable commit record).
func (n *DataNode) beginCommitGuard() { n.commitGuard++ }

// endCommitGuard leaves the critical section; a power failure requested
// meanwhile fires now.
func (n *DataNode) endCommitGuard() {
	n.commitGuard--
	if n.commitGuard == 0 && n.pendingCrash {
		n.pendingCrash = false
		n.cluster.doCrash(n)
	}
}

// CrashNode power-fails a node instantly (no orderly shutdown). It is safe
// to call from any simulation process or scheduler callback: it never
// blocks. Crashing a node that is already down is a no-op. If a commit is
// mid-installation on the node the failure is deferred until the commit
// record is durable (see the package comment above).
func (c *Cluster) CrashNode(n *DataNode) {
	if n.crashed || n.pendingCrash {
		return
	}
	if n.commitGuard > 0 {
		n.pendingCrash = true
		return
	}
	c.doCrash(n)
}

func (c *Cluster) doCrash(n *DataNode) {
	n.crashed = true
	n.HW.ForceOff()
	n.Log.Crash()
	// Log shipping dies with the node: on restart it logs locally again.
	if n.shippedFrom != nil {
		n.Log.SetDevice(n.shippedFrom)
		n.shippedFrom = nil
	}
	// Every owned partition loses its volatile state. The dead objects stay
	// routable so in-flight transactions fail cleanly with ErrPartitionDown.
	ids := make([]table.PartID, 0, len(n.Parts))
	for id := range n.Parts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pt := n.Parts[id]
		pt.Fail()
		n.lostParts = append(n.lostParts, pt)
	}
	n.Parts = make(map[table.PartID]*table.Partition)
	// DRAM is gone: fresh buffer pool and lock table. Processes parked on
	// the old structures wake via their timeouts and observe dead
	// partitions.
	n.Pool = buffer.NewPool(c.Env, (*nodeBackend)(n), c.Cal.PageSize, c.Cal.BufferFrames)
	n.Pool.SetWALFlush(func(p *sim.Proc, lsn uint64) { n.Log.Flush(p, lsn) })
	n.Locks = cc.NewLockManager(c.Env)
}

// RestartNode boots a crashed node and recovers its partitions: pay the
// boot time, rebuild every lost partition from its recovery base, replay
// the durable WAL (REDO committed work, UNDO losers), then atomically swap
// the rebuilt partitions into the master's partition table and the node's
// registry. It returns the replay counts.
func (c *Cluster) RestartNode(p *sim.Proc, n *DataNode) (redone, undone int, err error) {
	if !n.crashed {
		return 0, 0, fmt.Errorf("cluster: restart of node %d, which is not crashed", n.ID)
	}
	n.HW.PowerOn(p)
	n.Log.Restart()

	// Rebuild replacements. Partition IDs are reused so the WAL's partition
	// references resolve; bounds are the bounds at crash time (adoption had
	// already widened migration targets). AdoptOnly is dropped: the rebuilt
	// partition must accept its base records, and the master routes only
	// the ranges it actually owns.
	replaced := make(map[*table.Partition]*table.Partition, len(n.lostParts))
	targets := make(map[uint64]wal.Target, len(n.lostParts))
	for _, old := range n.lostParts {
		np := table.NewPartition(old.ID, old.Schema, old.Scheme, old.Low, old.High, n.Deps())
		np.Replica = old.Replica
		replaced[old] = np
		targets[uint64(old.ID)] = np
		for _, bp := range n.bases[old.ID] {
			if err := np.RecoveryPut(p, bp.key, bp.val); err != nil {
				return 0, 0, fmt.Errorf("cluster: node %d base replay: %w", n.ID, err)
			}
		}
	}
	// Records for partitions that no longer exist (fully migrated away,
	// dropped replicas) are skipped: their data lives elsewhere now.
	redone, undone, _, err = wal.RecoverPartial(p, n.Log.Records(), targets)
	if err != nil {
		return redone, undone, err
	}

	// Swap-in. No blocking calls below: routing flips from the dead
	// partitions to the recovered ones in one simulation instant.
	c.Master.rebind(replaced)
	for _, old := range n.lostParts {
		np := replaced[old]
		n.Parts[np.ID] = np
		for _, segID := range old.SegIDs() {
			if h, ok := c.homes[segID]; ok && !h.moving {
				c.dropSegment(segID)
			}
		}
	}
	n.lostParts = nil
	n.crashed = false
	return redone, undone, nil
}

// captureAdoptedBase records the image of a freshly adopted segment as part
// of dst's recovery base for the partition. The segment was flushed before
// shipping, so its durable image is consistent right now; the walk uses a
// zero-cost memory pager so the capture cannot be interrupted by another
// failure.
func captureAdoptedBase(p *sim.Proc, dst *DataNode, partID table.PartID, clone *storage.Segment) {
	tree := btree.New(btree.MemPager{Seg: clone}, clone.TreeRoot, nil)
	_ = tree.Scan(p, nil, nil, func(k, v []byte) bool {
		dst.addBase(partID, k, v)
		return true
	})
}

package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"wattdb/internal/btree"
	"wattdb/internal/buffer"
	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// This file implements node power failure and restart as first-class
// cluster operations (previously only scripted inside recovery tests).
//
// Crash model. A power failure destroys everything volatile on the node:
// the buffer pool (dirty pages included), the lock table, MVCC version
// chains and staged writes, and the unflushed tail of the write-ahead log.
// Disk contents survive, but because dirty pages are written back lazily a
// segment's durable image is not structurally consistent at an arbitrary
// instant. Restart therefore rebuilds each partition from its *recovery
// base* — a logical record image captured at the two moments the durable
// state is known consistent (initial bulk load, and segment adoption after
// a flush-then-ship migration, which the paper treats as a checkpoint) —
// and then replays the node's durable WAL over it (REDO winners, UNDO
// losers). The master's catalog, timestamp oracle, and decision map are a
// replicated state machine (see replication.go): crashing the seated
// leader fences the coordinator until a follower replays its shipped
// master WAL and takes over, resuming the oracle above the replicated
// lease ceiling with in-doubt resolution intact.
//
// Commit atomicity. A failure may land at ANY instant of a commit — there
// is no critical-section deferral. Distributed transactions survive because
// every branch is fully durable before the coordinator decides: prepare
// logs the branch's redo images with its vote (one force), the coordinator
// forces a decision record before any participant installs, and RestartNode
// resolves prepared-but-undecided branches against the coordinator —
// rolling forward from the prepare-time log at the decided timestamp, or
// rolling back under presumed abort when no decision exists. Single-node
// transactions need no vote: the commit record is the decision, and a crash
// inside the window rolls them back (the caller never saw an ack).

// ErrNodeDown reports that an operation needed a power-failed node.
type ErrNodeDown struct{ Node int }

func (e ErrNodeDown) Error() string {
	return fmt.Sprintf("cluster: node %d is down (power failure)", e.Node)
}

// basePair is one record of a partition's recovery base: a key and the
// fully encoded tree value (a committed cc.Version image). lsn is the durable
// log position carrying the image — the RecBase append under data
// replication, or the committed record a fuzzy checkpoint refreshed the pair
// from; 0 when the image was never logged (unreplicated bulk load/adoption).
// repairBaseLog re-appends only pairs above the restart's durable boundary.
type basePair struct {
	key, val []byte
	lsn      uint64
}

// Down reports whether the node is power-failed.
func (n *DataNode) Down() bool { return n.crashed }

// addBase appends a record image to a partition's recovery base. Under data
// replication the image is also logged as a RecBase record, so the base rides
// the shipped stream and a replica can rebuild the partition from log frames
// alone (Append encodes immediately; key/val are borrowed).
func (n *DataNode) addBase(id table.PartID, key, val []byte) {
	pair := basePair{key: bytes.Clone(key), val: bytes.Clone(val)}
	if n.cluster.drep != nil {
		pair.lsn = n.Log.Append(wal.Record{Type: wal.RecBase, Part: uint64(id), Key: key, After: val})
	}
	n.bases[id] = append(n.bases[id], pair)
}

// CrashNode power-fails a node instantly (no orderly shutdown) — including
// in the middle of a commit installation. It is safe to call from any
// simulation process or scheduler callback: it never blocks. Crashing a
// node that is already down is a no-op.
func (c *Cluster) CrashNode(n *DataNode) {
	if n.crashed {
		return
	}
	c.doCrash(n, 0, -1)
}

// CrashNodeTorn is CrashNode with log-medium damage: up to tear bytes of
// the record frame the log device was writing when power cut survive on the
// platter (a torn final record), and flip >= 0 additionally flips one bit
// within those surviving bytes. RestartNode's log scan must CRC-detect the
// damage and truncate the tail — acknowledged commits sit below the torn
// region and survive untouched. It returns the torn bytes left behind
// (0 when the log had no unflushed tail, which degrades to a plain crash).
func (c *Cluster) CrashNodeTorn(n *DataNode, tear, flip int) int {
	if n.crashed {
		return 0
	}
	return c.doCrash(n, tear, flip)
}

func (c *Cluster) doCrash(n *DataNode, tear, flip int) int {
	n.crashed = true
	n.HW.ForceOff()
	torn := 0
	if tear > 0 {
		_, torn = n.Log.CrashTorn(tear, flip)
	} else {
		n.Log.Crash()
	}
	// Log shipping dies with the node: on restart it logs locally again.
	if n.shippedFrom != nil {
		n.Log.SetDevice(n.shippedFrom)
		n.shippedFrom = nil
	}
	// Data replication: the ship queue and replica stores die with DRAM;
	// followers and origins mark each other for resync.
	if c.drep != nil {
		c.crashShipState(n)
	}
	// Every owned partition loses its volatile state. The dead objects stay
	// routable so in-flight transactions fail cleanly with ErrPartitionDown.
	ids := make([]table.PartID, 0, len(n.Parts))
	for id := range n.Parts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pt := n.Parts[id]
		pt.Fail()
		n.lostParts = append(n.lostParts, pt)
	}
	n.Parts = make(map[table.PartID]*table.Partition)
	// DRAM is gone: fresh buffer pool and lock table. Processes parked on
	// the old structures wake via their timeouts and observe dead
	// partitions.
	n.Pool = buffer.NewPool(c.Env, (*nodeBackend)(n), c.Cal.PageSize, c.Cal.BufferFrames)
	n.Pool.SetWALFlush(func(p *sim.Proc, lsn uint64) { n.Log.Flush(p, lsn) })
	n.Locks = cc.NewLockManager(c.Env)
	// Replicated coordinator: losing the leader fences the master until a
	// follower is elected; losing a follower drops it from the current set
	// (it rejoins through catch-up on restart).
	if r := c.Master.rep; r != nil {
		if n == c.Master.Node {
			c.Master.leaderDown()
		} else if r.current[n.ID] {
			r.current[n.ID] = false
		}
	}
	return torn
}

// RestartNode boots a crashed node and recovers its partitions: pay the
// boot time, CRC-scan the durable log bytes (truncating any torn or
// bit-rotted tail a power failure left mid-device-write), rebuild every
// lost partition from its recovery base, resolve prepared-but-undecided
// transactions against the coordinator (roll forward from the prepare-time
// log or roll back under presumed abort), replay the durable WAL decoded
// from its segment bytes (REDO committed work, UNDO losers) — each hosted
// partition from its last-checkpoint redo point, in parallel — then
// atomically swap the rebuilt partitions into the master's partition table
// and the node's registry. It returns the replay counts; n.LastRecovery
// records the full RTO breakdown.
func (c *Cluster) RestartNode(p *sim.Proc, n *DataNode) (redone, undone int, err error) {
	if !n.crashed {
		return 0, 0, fmt.Errorf("cluster: restart of node %d, which is not crashed", n.ID)
	}
	started := p.Now()
	n.HW.PowerOn(p)
	// Salvage the damaged log's readable frames before Restart's byte scan
	// truncates at the first bad frame: if the restart turns into a rebuild,
	// the node's own surviving frames merge with the replica copies.
	var sv *ownSalvage
	if c.drep != nil {
		sv = salvageOwnFrames(n)
	}
	n.Log.Restart()
	// Total durable loss — a wiped disk, or bit rot that ate into acked
	// history (Restart found fewer valid frames than were flushed). The log
	// is rebuilt from the replica set before anything reads it: the election
	// below and every recovery pass must see the reconstructed history.
	rebuilt := false
	if c.drep != nil && (n.diskLost || n.Log.LostDurable()) {
		c.rebuildFromReplicas(p, n, sv)
		rebuilt = true
	}
	// The durable boundary as restored from disk (or rebuilt), BEFORE this
	// restart appends anything: base pairs carrying a higher LSN lost their
	// log record with the crash's volatile tail and must be re-logged
	// (repairBaseLog).
	recoverFloor := n.Log.FlushedLSN()
	// The newest complete checkpoint bounds the replay: each hosted
	// partition starts at its recorded redo low-water mark, with everything
	// below covered by the refreshed recovery bases. A rebuilt log holds no
	// checkpoint records (they never ship), so a rebuild falls back to full
	// replay of the reconstructed history — which is exactly right, since
	// the rebuilt bases are the shipped originals, not refreshed ones.
	ck := n.Log.LastCheckpoint()
	// A reviving replica-group member may complete a stalled election: its
	// durable log (just recovered) is valid election input even though the
	// node is still mid-restart.
	if r := c.Master.rep; r != nil && r.member(n.ID) && c.Master.down {
		c.Master.tryElect(n)
	}

	// Rebuild replacements. Partition IDs are reused so the WAL's partition
	// references resolve; bounds are the bounds at crash time (adoption had
	// already widened migration targets). AdoptOnly is dropped: the rebuilt
	// partition must accept its base records, and the master routes only
	// the ranges it actually owns.
	replaced := make(map[*table.Partition]*table.Partition, len(n.lostParts))
	targets := make(map[uint64]wal.Target, len(n.lostParts))
	for _, old := range n.lostParts {
		np := table.NewPartition(old.ID, old.Schema, old.Scheme, old.Low, old.High, n.Deps())
		np.Replica = old.Replica
		replaced[old] = np
		targets[uint64(old.ID)] = np
		for _, bp := range n.bases[old.ID] {
			if err := np.RecoveryPut(p, bp.key, bp.val); err != nil {
				return 0, 0, fmt.Errorf("cluster: node %d base replay: %w", n.ID, err)
			}
		}
	}
	// In-doubt resolution: a transaction with a durable prepare vote but no
	// local commit or abort record was cut down between its vote and its
	// commit record. The analysis pass decodes the durable log from its
	// segment bytes (Restart already truncated any damaged tail), then
	// queries the coordinator for each in-doubt transaction (ascending
	// transaction ID for determinism): a known decision rolls the branch
	// forward at the decided timestamp; an unknown transaction is presumed
	// aborted.
	recs, err := n.Log.Iter().All()
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: node %d log scan: %w", n.ID, err)
	}
	inDoubt, decisions := c.resolveInDoubt(p, n, recs)
	// Replay hosted partitions in parallel: one simulation process per
	// partition over one shared analysis pass, each starting at its
	// checkpoint redo point (0 — the recovery base — when no checkpoint
	// covers it). Records for partitions that no longer exist (fully
	// migrated away, dropped replicas) simply match no replay and are
	// skipped: their data lives elsewhere now. Spawn order, the merge
	// below, and error selection all follow ascending partition ID, so the
	// parallel replay stays deterministic for the chaos state hash.
	a := wal.NewAnalysis(recs, decisions)
	stats := make([]wal.ReplayStats, len(n.lostParts))
	errs := make([]error, len(n.lostParts))
	remaining := len(n.lostParts)
	joined := sim.NewSignal(c.Env)
	var minRedo uint64
	var rst wal.ReplayStats
	for i, old := range n.lostParts {
		i, id, tgt := i, uint64(old.ID), replaced[old]
		var from uint64
		if ck != nil {
			from = ck.PartRedo(id)
		}
		if i == 0 || from < minRedo {
			minRedo = from
		}
		c.Env.Spawn(fmt.Sprintf("recover-%d-%d", n.ID, id), func(rp *sim.Proc) {
			stats[i], errs[i] = a.ReplayPartition(rp, id, from, tgt)
			remaining--
			if remaining == 0 {
				joined.Fire()
			}
		})
	}
	for remaining > 0 {
		joined.Wait(p)
	}
	for i := range stats {
		if errs[i] != nil && err == nil {
			err = errs[i]
		}
		rst.Redone += stats[i].Redone
		rst.Undone += stats[i].Undone
		rst.Bytes += stats[i].Bytes
		if m := stats[i].MinApplied; m != 0 && (rst.MinApplied == 0 || m < rst.MinApplied) {
			rst.MinApplied = m
		}
	}
	redone, undone = rst.Redone, rst.Undone
	if err != nil {
		return redone, undone, err
	}
	c.closeInDoubt(p, n, recs, targets, inDoubt, decisions)

	// Swap-in. No blocking calls below: routing flips from the dead
	// partitions to the recovered ones in one simulation instant.
	// Each recovered partition also gets its snapshot-serving horizon
	// fenced at the current clock: recovery rebuilds only the newest
	// committed image of every key (version chains died with the DRAM, and
	// checkpointed bases fold superseded versions away), so a reader still
	// holding an older snapshot — typically one capped below an unsettled
	// commit that parked across this very outage — must get a retryable
	// ErrSnapshotTooOld here instead of a silently missing version.
	histFloor := c.Master.Oracle.Clock()
	c.Master.rebind(replaced)
	for _, old := range n.lostParts {
		np := replaced[old]
		np.RaiseHistoryFloor(histFloor)
		n.Parts[np.ID] = np
		for _, segID := range old.SegIDs() {
			if h, ok := c.homes[segID]; ok && !h.moving {
				c.dropSegment(segID)
			}
		}
	}
	n.lostParts = nil
	n.crashed = false
	if r := c.Master.rep; r != nil {
		// Drain decisions still charged to this node whose branches its
		// durable log shows resolved — the ack was in flight (or unforced
		// and lost) when a leader died, and the rebuilt decision map still
		// lists them.
		for _, id := range c.Master.outstandingDecisionsFor(n.ID) {
			if branchResolvedIn(recs, id) {
				c.Master.AckInDoubt(id, n.ID)
			}
		}
		// A restarted group member rejoins through full-state catch-up.
		if r.member(n.ID) && !c.Master.down && n != c.Master.Node && !r.current[n.ID] {
			c.Master.catchUp(p, n)
		}
	}
	// Data replication epilogue: restore any base records the crash's lost
	// tail ate, then re-seed this node's replicas of live origins and push
	// resyncs to followers that went stale while it was down. Only then does
	// a rebuilt node shed its disk-lost mark — until its wrapper copies of
	// the streams it follows are re-seeded, it is not stable storage for
	// anyone else's rebuild.
	if c.drep != nil {
		c.repairBaseLog(p, n, recoverFloor)
		c.restartResync(p, n)
		n.diskLost = false
	}
	// Everything below the current tail is settled history: a transaction
	// with records down there and no commit or abort died with the crash and
	// will never resolve. Later checkpoints use this fence so dead losers
	// cannot pin the redo point (and retention) forever.
	n.deadBelow = n.Log.TailLSN()
	n.LastRecovery = RecoveryStats{
		Checkpointed: ck != nil,
		Redo:         minRedo,
		Redone:       redone,
		Undone:       undone,
		Bytes:        rst.Bytes,
		MinApplied:   rst.MinApplied,
		Rebuild:      rebuilt,
		Elapsed:      p.Now() - started,
	}
	return redone, undone, nil
}

// resolveInDoubt scans the durable log for prepared transactions lacking a
// local commit or abort record and queries the coordinator for each
// (ascending transaction ID so the network charges are deterministic). The
// returned decision map feeds the WAL replay; the in-doubt list feeds
// closeInDoubt after the replay succeeded.
func (c *Cluster) resolveInDoubt(p *sim.Proc, n *DataNode, recs []wal.Record) ([]cc.TxnID, map[cc.TxnID]wal.Decision) {
	type txState struct{ prepared, decided bool }
	states := make(map[cc.TxnID]*txState)
	state := func(id cc.TxnID) *txState {
		st, ok := states[id]
		if !ok {
			st = &txState{}
			states[id] = st
		}
		return st
	}
	for i := range recs {
		switch recs[i].Type {
		case wal.RecPrepare:
			state(recs[i].Txn).prepared = true
		case wal.RecCommit, wal.RecAbort:
			state(recs[i].Txn).decided = true
		}
	}
	var inDoubt []cc.TxnID
	for id, st := range states {
		if st.prepared && !st.decided {
			inDoubt = append(inDoubt, id)
		}
	}
	sort.Slice(inDoubt, func(i, j int) bool { return inDoubt[i] < inDoubt[j] })
	decisions := make(map[cc.TxnID]wal.Decision, len(inDoubt))
	if len(inDoubt) > 0 {
		// Under replication an in-doubt query must wait out a coordinator
		// failover and its presumed-abort grace window: a "no decision"
		// answer is only trustworthy once in-flight commits have had time to
		// re-replicate verdicts the dead leader never shipped.
		c.Master.awaitAvailable(p)
	}
	for _, id := range inDoubt {
		if n != c.Master.Node {
			// The coordinator query is a metadata round trip to the master.
			c.Net.Transfer(p, n.ID, c.Master.Node.ID, 32)
			c.Net.Transfer(p, c.Master.Node.ID, n.ID, 32)
		}
		if ts, ok := c.Master.InDoubtDecision(id); ok {
			decisions[id] = wal.Decision{TS: ts}
		}
	}
	return inDoubt, decisions
}

// closeInDoubt makes the in-doubt resolution locally durable, so a later
// crash replays it without the coordinator (whose presumed-abort state may
// have been forgotten by then): a rolled-forward branch re-logs its prepare
// images as ordinary committed DML under its commit record, a rolled-back
// branch logs an abort record, and one force covers everything. Only then
// is the coordinator acked, letting it forget the decision.
func (c *Cluster) closeInDoubt(p *sim.Proc, n *DataNode, recs []wal.Record, targets map[uint64]wal.Target, inDoubt []cc.TxnID, decisions map[cc.TxnID]wal.Decision) {
	var maxLSN uint64
	for _, id := range inDoubt {
		d, committed := decisions[id]
		if !committed {
			maxLSN = n.Log.Append(wal.Record{Txn: id, Type: wal.RecAbort})
			continue
		}
		for i := range recs {
			r := &recs[i]
			if r.Txn != id {
				continue
			}
			if _, known := targets[r.Part]; !known {
				continue // partition migrated away; its data lives elsewhere
			}
			// Append encodes immediately, so the decoded record's slices can
			// be passed straight through without defensive copies.
			switch r.Type {
			case wal.RecPrepDML:
				maxLSN = n.Log.Append(wal.Record{Txn: id, Type: wal.RecUpdate, Part: r.Part,
					Key: r.Key, After: table.EncodeValue(cc.Version{TS: d.TS, Val: r.After})})
			case wal.RecPrepDel:
				maxLSN = n.Log.Append(wal.Record{Txn: id, Type: wal.RecDelete, Part: r.Part,
					Key: r.Key, After: table.EncodeValue(cc.Version{TS: d.TS, Deleted: true})})
			}
		}
		maxLSN = n.Log.Append(wal.Record{Txn: id, Type: wal.RecCommit})
	}
	if maxLSN > 0 {
		n.Log.Flush(p, maxLSN)
	}
	for _, id := range inDoubt {
		c.Master.AckInDoubt(id, n.ID)
	}
}

// captureAdoptedBase records the image of a freshly adopted segment as part
// of dst's recovery base for the partition. The segment was flushed before
// shipping, so its durable image is consistent right now; the walk uses a
// zero-cost memory pager so the capture cannot be interrupted by another
// failure.
func captureAdoptedBase(p *sim.Proc, dst *DataNode, partID table.PartID, clone *storage.Segment) {
	tree := btree.New(btree.MemPager{Seg: clone}, clone.TreeRoot, nil)
	_ = tree.Scan(p, nil, nil, func(k, v []byte) bool {
		dst.addBase(partID, k, v)
		return true
	})
}

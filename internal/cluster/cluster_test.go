package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

func kvSchema() *table.Schema {
	return &table.Schema{
		ID: 1, Name: "kv", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColString}},
	}
}

func ik(v int64) []byte { return keycodec.Int64Key(v) }

type testCluster struct {
	env *sim.Env
	c   *Cluster
	tm  *TableMeta
}

// newTestCluster builds a cluster with `nodes` active nodes and a kv table
// of n rows split across the first two nodes at key n/2.
func newTestCluster(t *testing.T, scheme table.Scheme, nodes, n int) *testCluster {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	c := New(env, cfg)
	for _, node := range c.Nodes[1:] {
		node.HW.ForceActive()
	}
	mid := ik(int64(n / 2))
	tm, err := c.Master.CreateTable(kvSchema(), scheme, []RangeSpec{
		{Low: nil, High: mid, Owner: c.Nodes[0]},
		{Low: mid, High: nil, Owner: c.Nodes[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("load", func(p *sim.Proc) {
		i := 0
		err := c.Master.BulkLoad(p, "kv", func() ([]byte, []byte, bool) {
			if i >= n {
				return nil, nil, false
			}
			row := table.Row{int64(i), fmt.Sprintf("val-%06d", i)}
			key, _ := kvSchema().Key(row)
			payload, _ := kvSchema().EncodeRow(row)
			i++
			return key, payload, true
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return &testCluster{env: env, c: c, tm: tm}
}

func (tc *testCluster) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	tc.env.Spawn("test", fn)
	if err := tc.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionReadsRoutedAcrossNodes(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 1000)
	defer tc.env.Close()
	tc.run(t, func(p *sim.Proc) {
		s := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		for _, k := range []int64{0, 250, 499, 500, 750, 999} {
			v, ok, err := s.Get(p, "kv", ik(k))
			if err != nil || !ok {
				t.Errorf("get %d: %v %v", k, ok, err)
				continue
			}
			row, _ := kvSchema().DecodeRow(v)
			if row[0].(int64) != k {
				t.Errorf("get %d returned row %v", k, row)
			}
		}
		if _, ok, _ := s.Get(p, "kv", ik(12345)); ok {
			t.Error("absent key found")
		}
		s.Abort(p)
	})
}

func TestSessionWriteAndTwoPhaseCommit(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 1000)
	defer tc.env.Close()
	tc.run(t, func(p *sim.Proc) {
		s := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		// Touch partitions on both nodes: forces 2PC.
		row1, _ := kvSchema().EncodeRow(table.Row{int64(10), "updated-10"})
		row2, _ := kvSchema().EncodeRow(table.Row{int64(900), "updated-900"})
		if err := s.Put(p, "kv", ik(10), row1); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(p, "kv", ik(900), row2); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(p); err != nil {
			t.Fatal(err)
		}
		// Both nodes must have prepare/commit durable.
		r := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
		for _, k := range []int64{10, 900} {
			v, ok, _ := r.Get(p, "kv", ik(k))
			row, _ := kvSchema().DecodeRow(v)
			if !ok || row[1].(string) != fmt.Sprintf("updated-%d", k) {
				t.Errorf("k=%d not committed: %v %v", k, ok, row)
			}
		}
		r.Abort(p)
	})
}

func TestSessionAbortLeavesNoTrace(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 100)
	defer tc.env.Close()
	tc.run(t, func(p *sim.Proc) {
		before, _ := tc.c.Master.RecordCount(p, "kv")
		s := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		payload, _ := kvSchema().EncodeRow(table.Row{int64(5000), "ghost"})
		s.Put(p, "kv", ik(5000), payload)
		s.Delete(p, "kv", ik(10))
		s.Abort(p)
		after, _ := tc.c.Master.RecordCount(p, "kv")
		if before != after {
			t.Fatalf("record count changed by aborted txn: %d -> %d", before, after)
		}
	})
}

// migrationInvariants checks that after migrating [lo, hi) to dst: all n
// records remain readable exactly once, writes to moved keys succeed at the
// new owner, and (for ownership-transferring schemes) dst owns the range.
func migrationInvariants(t *testing.T, scheme table.Scheme) {
	const n = 2000
	tc := newTestCluster(t, scheme, 4, n)
	defer tc.env.Close()
	dst := tc.c.Nodes[2]
	tc.run(t, func(p *sim.Proc) {
		// Move the top half of node 0's range (keys n/4..n/2) to node 2.
		lo, hi := ik(int64(n/4)), ik(int64(n/2))
		if err := tc.c.Master.MigrateRange(p, "kv", lo, hi, dst); err != nil {
			t.Fatal(err)
		}
		// Every record still present exactly once.
		s := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		seen := map[int64]int{}
		err := s.Scan(p, "kv", nil, nil, func(k, v []byte) bool {
			d, _, _ := keycodec.DecodeInt64(k)
			seen[d]++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Abort(p)
		if len(seen) != n {
			t.Fatalf("scan saw %d distinct keys, want %d", len(seen), n)
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("key %d seen %d times", k, c)
			}
		}
		// Point reads and writes of moved keys work.
		w := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
		probe := int64(n / 3)
		payload, _ := kvSchema().EncodeRow(table.Row{probe, "post-move"})
		if err := w.Put(p, "kv", ik(probe), payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(p); err != nil {
			t.Fatal(err)
		}
		r := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		v, ok, err := r.Get(p, "kv", ik(probe))
		if err != nil || !ok {
			t.Fatalf("moved key unreadable: %v %v", ok, err)
		}
		row, _ := kvSchema().DecodeRow(v)
		if row[1].(string) != "post-move" {
			t.Fatalf("moved key value = %v", row[1])
		}
		r.Abort(p)

		if scheme != table.Physical {
			e, err := tc.tm.route(ik(probe))
			if err != nil {
				t.Fatal(err)
			}
			if e.Owner != dst {
				t.Fatalf("range owner after %v migration = node %d, want node %d", scheme, e.Owner.ID, dst.ID)
			}
		}
	})
}

func TestPhysiologicalMigrationInvariants(t *testing.T) { migrationInvariants(t, table.Physiological) }
func TestLogicalMigrationInvariants(t *testing.T)       { migrationInvariants(t, table.Logical) }
func TestPhysicalMigrationInvariants(t *testing.T)      { migrationInvariants(t, table.Physical) }

func TestPhysicalMigrationRelocatesBytesNotOwnership(t *testing.T) {
	const n = 1000
	tc := newTestCluster(t, table.Physical, 3, n)
	defer tc.env.Close()
	dst := tc.c.Nodes[2]
	tc.run(t, func(p *sim.Proc) {
		owner0 := tc.tm.entries[0].Owner
		if err := tc.c.Master.MigrateRange(p, "kv", nil, ik(int64(n/2)), dst); err != nil {
			t.Fatal(err)
		}
		// Ownership unchanged; all first-range segments now homed on dst.
		if tc.tm.entries[0].Owner != owner0 {
			t.Fatal("physical migration changed ownership")
		}
		for _, h := range tc.tm.entries[0].Part.Segments() {
			home, err := tc.c.home(h.Seg.ID)
			if err != nil {
				t.Fatal(err)
			}
			if home.node != dst {
				t.Fatalf("segment %d homed on node %d, want %d", h.Seg.ID, home.node.ID, dst.ID)
			}
		}
		// Reads now pay remote access but still work.
		s := tc.c.Master.Begin(p, cc.SnapshotIsolation, owner0)
		if _, ok, err := s.Get(p, "kv", ik(7)); !ok || err != nil {
			t.Fatalf("read after relocation: %v %v", ok, err)
		}
		s.Abort(p)
	})
}

// TestMigrationUnderLoad runs continuous read/write traffic while 50% of
// the data migrates, for each scheme, and checks nothing is lost, duplicated
// or incorrectly versioned.
func TestMigrationUnderLoad(t *testing.T) {
	for _, scheme := range []table.Scheme{table.Physical, table.Logical, table.Physiological} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			const n = 1500
			tc := newTestCluster(t, scheme, 4, n)
			defer tc.env.Close()
			dst := tc.c.Nodes[2]
			master := tc.c.Master

			stop := false
			writes := map[int64]int{} // committed update counters
			commits, aborts := 0, 0
			for w := 0; w < 4; w++ {
				w := w
				tc.env.Spawn(fmt.Sprintf("writer-%d", w), func(p *sim.Proc) {
					rng := tc.env.Rand
					for !stop {
						k := int64(rng.Intn(n))
						s := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[w%2])
						cnt := writes[k] + 1
						payload, _ := kvSchema().EncodeRow(table.Row{k, fmt.Sprintf("gen-%d", cnt)})
						if err := s.Put(p, "kv", ik(k), payload); err != nil {
							s.Abort(p)
							aborts++
							p.Sleep(2 * time.Millisecond)
							continue
						}
						if err := s.Commit(p); err != nil {
							s.Abort(p)
							aborts++
							continue
						}
						writes[k] = cnt
						commits++
						p.Sleep(time.Millisecond)
					}
				})
			}
			tc.env.Spawn("reader", func(p *sim.Proc) {
				rng := tc.env.Rand
				for !stop {
					k := int64(rng.Intn(n))
					s := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
					_, ok, err := s.Get(p, "kv", ik(k))
					if err != nil {
						t.Errorf("read %d: %v", k, err)
					}
					if !ok {
						t.Errorf("read %d: record lost", k)
					}
					s.Abort(p)
					p.Sleep(time.Millisecond)
				}
			})
			tc.env.Spawn("migrate", func(p *sim.Proc) {
				p.Sleep(50 * time.Millisecond)
				if err := master.MigrateRange(p, "kv", ik(int64(n/4)), ik(int64(n/2)), dst); err != nil {
					t.Errorf("migrate: %v", err)
				}
				p.Sleep(200 * time.Millisecond)
				stop = true
			})
			if err := tc.env.RunUntil(5 * time.Minute); err != nil {
				t.Fatal(err)
			}
			stop = true
			if commits == 0 {
				t.Fatal("no transactions committed during migration")
			}

			// Final verification: every key present exactly once with its
			// last committed value.
			tc.run(t, func(p *sim.Proc) {
				s := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
				count := 0
				err := s.Scan(p, "kv", nil, nil, func(k, v []byte) bool {
					d, _, _ := keycodec.DecodeInt64(k)
					row, err := kvSchema().DecodeRow(v)
					if err != nil {
						t.Errorf("decode %d: %v", d, err)
						return false
					}
					want := "val-" + fmt.Sprintf("%06d", d)
					if c := writes[d]; c > 0 {
						want = fmt.Sprintf("gen-%d", c)
					}
					if row[1].(string) != want {
						t.Errorf("key %d = %q, want %q", d, row[1], want)
					}
					count++
					return true
				})
				if err != nil {
					t.Error(err)
				}
				if count != n {
					t.Errorf("final scan: %d records, want %d (commits=%d aborts=%d)", count, n, commits, aborts)
				}
				s.Abort(p)
			})
		})
	}
}

func TestMonitorPolicyScalesOut(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.Nodes = 3
	c := New(env, cfg)
	defer env.Close()
	policy := DefaultPolicy()
	policy.Enabled = true
	scaledTo := -1
	policy.OnScaleOut = func(p *sim.Proc, n *DataNode) { scaledTo = n.ID }
	c.Master.StartMonitor(2*time.Second, policy)
	// Saturate node 0's CPU.
	for i := 0; i < 4; i++ {
		env.Spawn("burn", func(p *sim.Proc) {
			for p.Now() < 30*time.Second {
				c.Nodes[0].HW.Compute(p, 100*time.Millisecond)
			}
		})
	}
	if err := env.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if scaledTo < 0 {
		t.Fatal("policy did not scale out under load")
	}
	if c.Nodes[scaledTo].HW.State() != hw.PowerActive {
		t.Fatal("scaled-out node not active")
	}
	// After the load stops (t=30s) the cluster idles, so the policy must
	// scale the empty node back in (it holds no data).
	if err := env.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[scaledTo].HW.State() != hw.PowerOff {
		t.Fatalf("idle node not scaled in: state %v", c.Nodes[scaledTo].HW.State())
	}
}

func TestHelperAttachShipsLog(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 3, 200)
	defer tc.env.Close()
	busy, helper := tc.c.Nodes[0], tc.c.Nodes[2]
	tc.run(t, func(p *sim.Proc) {
		_, helperWritesBefore := helper.HW.LogDisk().Ops()
		tc.c.Master.AttachHelper(p, busy, helper)
		s := tc.c.Master.Begin(p, cc.SnapshotIsolation, busy)
		payload, _ := kvSchema().EncodeRow(table.Row{int64(3), "shipped"})
		if err := s.Put(p, "kv", ik(3), payload); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(p); err != nil {
			t.Fatal(err)
		}
		if _, w := helper.HW.LogDisk().Ops(); w <= helperWritesBefore {
			t.Fatal("commit did not ship log to helper")
		}
		tc.c.Master.DetachHelper(p, busy)
		_, localBefore := busy.HW.LogDisk().Ops()
		s2 := tc.c.Master.Begin(p, cc.SnapshotIsolation, busy)
		payload2, _ := kvSchema().EncodeRow(table.Row{int64(4), "local"})
		s2.Put(p, "kv", ik(4), payload2)
		if err := s2.Commit(p); err != nil {
			t.Fatal(err)
		}
		if _, w := busy.HW.LogDisk().Ops(); w <= localBefore {
			t.Fatal("detach did not restore local logging")
		}
	})
}

func TestPowerOffRefusesWithData(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 100)
	defer tc.env.Close()
	tc.run(t, func(p *sim.Proc) {
		if err := tc.c.Nodes[1].PowerOff(p); err == nil {
			t.Fatal("node with partitions powered off")
		}
	})
}

func TestScanRangeSpansPartitions(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 1000)
	defer tc.env.Close()
	tc.run(t, func(p *sim.Proc) {
		s := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		var keys []int64
		err := s.Scan(p, "kv", ik(450), ik(550), func(k, _ []byte) bool {
			d, _, _ := keycodec.DecodeInt64(k)
			keys = append(keys, d)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 100 {
			t.Fatalf("scan across boundary returned %d keys", len(keys))
		}
		for i, k := range keys {
			if k != int64(450+i) {
				t.Fatalf("keys out of order at %d: %d", i, k)
			}
		}
		s.Abort(p)
	})
}

func TestDeterministicClusterRuns(t *testing.T) {
	run := func() (int, time.Duration) {
		tc := newTestCluster(t, table.Physiological, 3, 500)
		defer tc.env.Close()
		commits := 0
		stop := false
		tc.env.Spawn("writer", func(p *sim.Proc) {
			for !stop {
				k := int64(tc.env.Rand.Intn(500))
				s := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
				payload, _ := kvSchema().EncodeRow(table.Row{k, "x"})
				if s.Put(p, "kv", ik(k), payload) == nil && s.Commit(p) == nil {
					commits++
				} else {
					s.Abort(p)
				}
				p.Sleep(3 * time.Millisecond)
			}
		})
		tc.env.Spawn("migrate", func(p *sim.Proc) {
			p.Sleep(20 * time.Millisecond)
			tc.c.Master.MigrateRange(p, "kv", ik(100), ik(250), tc.c.Nodes[2])
			stop = true
		})
		if err := tc.env.RunUntil(2 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return commits, tc.env.Now()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("non-deterministic: run1=(%d,%v) run2=(%d,%v)", c1, t1, c2, t2)
	}
}

var _ = bytes.Compare // silence unused import if assertions change

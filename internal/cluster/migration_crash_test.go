package cluster

import (
	"fmt"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// crashDuringMigration is the per-scheme regression: while half the key
// space migrates to a fresh node, the migration target power-fails
// mid-transfer. After the target restarts, every key must be reachable
// exactly once with its last committed value (checked against a
// test-maintained oracle), whether the interrupted move rolled back to the
// source or recovered at the target.
func crashDuringMigration(t *testing.T, scheme table.Scheme) {
	const n = 2000
	tc := newTestCluster(t, scheme, 3, n)
	defer tc.env.Close()
	dst := tc.c.Nodes[2]
	master := tc.c.Master

	oracle := map[int64]string{}
	for i := int64(0); i < n; i++ {
		oracle[i] = fmt.Sprintf("val-%06d", i)
	}

	// Pre-migration updates spread over both source nodes, so recovery has
	// a WAL to replay on top of the bulk-loaded base.
	tc.run(t, func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			k := int64(i * 17 % n)
			s := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[i%2])
			val := fmt.Sprintf("pre-%d", i)
			payload, _ := kvSchema().EncodeRow(table.Row{k, val})
			if err := s.Put(p, "kv", ik(k), payload); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(p); err != nil {
				t.Fatal(err)
			}
			oracle[k] = val
		}
	})

	// Start the migration and power-fail the target while it is running.
	migDone := false
	var migErr error
	tc.env.Spawn("migrate", func(p *sim.Proc) {
		migErr = master.MigrateRange(p, "kv", ik(int64(n/4)), ik(int64(3*n/4)), dst)
		migDone = true
	})
	crashedMidFlight := false
	tc.env.Spawn("crash", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		crashedMidFlight = !migDone
		tc.c.CrashNode(dst)
		p.Sleep(15 * time.Second)
		if _, _, err := tc.c.RestartNode(p, dst); err != nil {
			t.Errorf("restart: %v", err)
		}
	})
	if err := tc.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !crashedMidFlight {
		t.Fatalf("crash landed after the migration completed; widen the window")
	}
	if migErr != nil {
		t.Logf("migration aborted by the crash (expected): %v", migErr)
	}

	// Post-restart invariants: reachability and counts against the oracle.
	tc.run(t, func(p *sim.Proc) {
		s := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		seen := map[int64]int{}
		err := s.Scan(p, "kv", nil, nil, func(k, v []byte) bool {
			d, _, _ := keycodec.DecodeInt64(k)
			seen[d]++
			row, derr := kvSchema().DecodeRow(v)
			if derr != nil {
				t.Errorf("key %d: undecodable: %v", d, derr)
				return false
			}
			if row[1].(string) != oracle[d] {
				t.Errorf("key %d = %q, want %q", d, row[1], oracle[d])
			}
			return true
		})
		if err != nil {
			t.Fatalf("post-restart scan: %v", err)
		}
		if len(seen) != n {
			t.Fatalf("post-restart scan saw %d distinct keys, want %d", len(seen), n)
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("key %d seen %d times after interrupted migration", k, c)
			}
		}
		// Point reads exercise the routing (dual pointers / rolled-back
		// entries) rather than the scan merge.
		for _, k := range []int64{0, n/4 - 1, n / 4, n / 2, 3*n/4 - 1, 3 * n / 4, n - 1} {
			v, ok, err := s.Get(p, "kv", ik(k))
			if err != nil || !ok {
				t.Fatalf("key %d unreachable after restart: ok=%v err=%v", k, ok, err)
			}
			row, _ := kvSchema().DecodeRow(v)
			if row[1].(string) != oracle[k] {
				t.Fatalf("key %d Get = %q, want %q", k, row[1], oracle[k])
			}
		}
		// Writes to the disputed range must land and be readable.
		w := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
		probe := int64(n / 2)
		payload, _ := kvSchema().EncodeRow(table.Row{probe, "post-crash"})
		if err := w.Put(p, "kv", ik(probe), payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(p); err != nil {
			t.Fatal(err)
		}
		s.Abort(p)
		r := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		raw, ok, err := r.Get(p, "kv", ik(probe))
		if err != nil || !ok {
			t.Fatalf("probe write unreadable: ok=%v err=%v", ok, err)
		}
		row, _ := kvSchema().DecodeRow(raw)
		if row[1].(string) != "post-crash" {
			t.Fatalf("probe = %q, want post-crash", row[1])
		}
		r.Abort(p)
	})
}

func TestCrashDuringPhysicalMigration(t *testing.T) { crashDuringMigration(t, table.Physical) }
func TestCrashDuringLogicalMigration(t *testing.T)  { crashDuringMigration(t, table.Logical) }
func TestCrashDuringPhysiologicalMigration(t *testing.T) {
	crashDuringMigration(t, table.Physiological)
}

package cluster

import (
	"bytes"
	"sort"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// Data replication: every node streams its shippable WAL frames (DML,
// commits, prepare images, recovery-base images — see wal.Shippable) to a
// fixed set of follower nodes, which append them wrapped in RecShip records
// to their own logs (durability rides the followers' group commits) and
// apply them to in-memory replica stores. The replicated history serves
// three purposes:
//
//   - Durability beyond one disk: a forced commit is acknowledged only once
//     its frames are durable on at least one follower (forceShip), so a node
//     that loses its entire log medium (DestroyDisk, or bit rot inside acked
//     history detected at Restart) rebuilds every hosted partition from a
//     follower's durable wrapper log (rebuildFromReplicas).
//   - Self-healing: a background scrubber CRC-rescans acked history and
//     patches bit-rotted frames with the byte-identical copy a follower
//     retained (ScrubPass).
//   - Read scaling: read-only snapshot gets/scans below a follower's applied
//     horizon are served from its replica store without touching the origin
//     (session.go followerGet/followerScanPart).
//
// The origin/follower assignment is positional — followersOf(n) is the next
// DataReplicas node IDs cyclically — so every node plays both roles. A
// follower that misses deliveries (it was down, or its own disk was wiped)
// is marked stale and stops counting for durability until a wholesale resync
// (reset wrapper + every retained shippable frame) re-seeds it; resyncs run
// from RestartNode in both directions. The master's records replicate
// through the coordinator's own protocol (replication.go) and are excluded
// from this stream.

// shipRetryDelay paces forceShip's wait for a usable follower (mirrors the
// coordinator's decisionRetryDelay).
const shipRetryDelay = 50 * time.Millisecond

// shipWireOverhead is the per-frame wire framing cost of a shipped frame
// (ship header + request framing), matching the RPC overhead used elsewhere.
const shipWireOverhead = 32

// dataRep is the cluster-wide data-replication state.
type dataRep struct {
	replicas int // followers per origin node

	// inflight: commit timestamps issued whose frames may not yet be
	// replica-durable, keyed by origin node then transaction. A follower
	// read at snapshot >= any inflight timestamp of the origin could miss
	// that transaction's versions, so the read falls back to the origin.
	inflight map[int]map[cc.TxnID]cc.Timestamp

	// Stats (chaos report + state hash).
	Rebuilds      int // partitions-hosting nodes rebuilt from replicas
	ScrubRepairs  int // bit-rotted frames patched from a follower copy
	FollowerReads int // gets/scans served by a replica store
	DiskLosses    int // DestroyDisk invocations
}

func (d *dataRep) addInflight(node int, id cc.TxnID, ts cc.Timestamp) {
	m := d.inflight[node]
	if m == nil {
		m = make(map[cc.TxnID]cc.Timestamp, 4)
		d.inflight[node] = m
	}
	m[id] = ts
}

func (d *dataRep) delInflight(node int, id cc.TxnID) { delete(d.inflight[node], id) }

func (d *dataRep) clearInflight(node int) { delete(d.inflight, node) }

// inflightBelow reports whether the origin has an undelivered commit at or
// below snap — a follower serving that snapshot could miss it.
func (d *dataRep) inflightBelow(node int, snap cc.Timestamp) bool {
	for _, ts := range d.inflight[node] {
		if ts <= snap {
			return true
		}
	}
	return false
}

// ReplicationStats reports the data-replication counters: partitions-hosting
// nodes rebuilt from their replica sets, bit-rotted frames the scrubber
// repaired, reads served by replica stores, and DestroyDisk invocations.
// All zero when data replication is off.
func (c *Cluster) ReplicationStats() (rebuilds, scrubRepairs, followerReads, diskLosses int) {
	if c.drep == nil {
		return 0, 0, 0, 0
	}
	return c.drep.Rebuilds, c.drep.ScrubRepairs, c.drep.FollowerReads, c.drep.DiskLosses
}

// DataReplicated reports whether per-node WAL shipping is enabled.
func (c *Cluster) DataReplicated() bool { return c.drep != nil }

// DiskLost reports whether the node's log medium is destroyed (DestroyDisk)
// and not yet rebuilt.
func (n *DataNode) DiskLost() bool { return n.diskLost }

// shipItem is one queued frame awaiting delivery to followers.
type shipItem struct {
	lsn   uint64
	frame []byte // stable copy (the append hook clones the segment alias)
	// vis is the version timestamp the frame carries (DML installs, base
	// images), or zero for frames without one (commit/abort/prepare
	// records). followerFor's snapshot gate compares it against the
	// reader's snapshot: an undelivered frame whose version timestamp
	// exceeds the snapshot cannot hold anything visible at it.
	vis cc.Timestamp
}

// shipState is a node's origin-side replication state.
type shipState struct {
	queue []shipItem // appended frames not yet delivered to live followers

	// lastShippable is the LSN of the newest shippable frame appended —
	// forceShip's durability target.
	lastShippable uint64

	// stale marks followers that missed deliveries (down, or wiped) and
	// must be wholesale-resynced before they count for anything again.
	stale map[int]bool

	// Per-follower watermarks, all in origin LSNs except wrapLSN:
	sent    map[int]uint64 // newest frame delivered (applied + appended there)
	durable map[int]uint64 // newest frame covered by a flush of the follower's log
	wrapLSN map[int]uint64 // follower-local LSN of the last wrapper appended

	// rebuildGen counts rebuildFromReplicas passes — it is the generation
	// stamped on every shipped frame, so followers' retained wrappers can be
	// told apart across renumberings. rebuiltThrough and rebuiltFromGen
	// describe the last rebuild: frames of generation rebuiltFromGen at or
	// below rebuiltThrough survived into the rebuilt log. A commit waiter
	// parked across the outage uses them to learn its frame's post-recovery
	// fate (forceShipDecided).
	rebuildGen     uint64
	rebuiltThrough uint64
	rebuiltFromGen uint64

	// syncedGen tracks, per follower, the generation current when that
	// follower's replica state was last reset. A resync within the same
	// generation skips the reset: the follower's retained wrappers are
	// byte-identical prefixes of the same numbering, and destroying them
	// would risk trading a complete durable history for a partial one if the
	// resync is cut short.
	syncedGen map[int]uint64

	// draining serializes queue drains (the background shipper vs. forced
	// commits vs. resyncs); contenders wait on drained.
	draining bool
	drained  *sim.Signal
}

// visibleBelow reports whether any queued (undelivered) frame carries a
// version at or below snap — the only frames whose absence from a replica
// store could change what a snapshot read at snap returns. Queued MVCC
// install frames are stamped with their commit timestamp, which the
// monotone oracle issued after every existing snapshot, so live analytics
// snapshots are not blocked by unrelated in-flight write traffic;
// locking-mode eager writes (stamped with the transaction's begin
// timestamp) and mid-run base images keep blocking until delivered.
func (sh *shipState) visibleBelow(snap cc.Timestamp) bool {
	for _, it := range sh.queue {
		if it.vis != 0 && it.vis <= snap {
			return true
		}
	}
	return false
}

// stagedRep is one replicated DML image buffered until its commit arrives.
type stagedRep struct {
	part table.PartID
	key  []byte
	ver  cc.Version
}

// repStore is a follower's in-memory replica of one origin's partitions,
// built by applying the origin's shipped frames in log order. It is wiped by
// a crash (DRAM) and re-seeded by resync.
type repStore struct {
	maxLSN  uint64            // newest applied origin LSN (dedupe; reset clears)
	frames  map[uint64][]byte // raw frame retention: scrub repair + rebuild source
	pending map[cc.TxnID][]stagedRep
	parts   map[table.PartID]*replicaPart
	// floor is the store's snapshot-serving horizon: base-image frames carry
	// only the newest committed version of each key (superseded history is
	// folded away at the origin), so a store seeded from them cannot resolve
	// snapshots below the newest base timestamp it applied. Follower reads
	// below the floor fall back to the owner.
	floor cc.Timestamp
}

func newRepStore() *repStore {
	return &repStore{
		frames:  make(map[uint64][]byte),
		pending: make(map[cc.TxnID][]stagedRep),
		parts:   make(map[table.PartID]*replicaPart),
	}
}

func (st *repStore) part(id table.PartID) *replicaPart {
	rp := st.parts[id]
	if rp == nil {
		rp = &replicaPart{vers: make(map[string][]cc.Version)}
		st.parts[id] = rp
	}
	return rp
}

// applyFrame processes one shipped origin frame: retain the raw bytes, buffer
// DML under its transaction, promote on commit, drop on abort, and install
// base images immediately (they are logged before any DML on their keys).
// The frame must be a stable copy — it is retained verbatim.
func (st *repStore) applyFrame(lsn uint64, frame []byte) {
	if lsn <= st.maxLSN {
		return // duplicate delivery (resync overlap)
	}
	rec, err := wal.DecodeFrame(frame)
	if err != nil {
		return // never shipped: drains and resyncs skip damaged frames
	}
	st.maxLSN = lsn
	st.frames[lsn] = frame
	switch rec.Type {
	case wal.RecBase:
		if v, err := table.DecodeValue(rec.After); err == nil {
			st.part(table.PartID(rec.Part)).install(rec.Key, v)
			if v.TS > st.floor {
				st.floor = v.TS
			}
		}
	case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
		if v, err := table.DecodeValue(rec.After); err == nil {
			st.pending[rec.Txn] = append(st.pending[rec.Txn],
				stagedRep{part: table.PartID(rec.Part), key: rec.Key, ver: v})
		}
	case wal.RecCommit:
		for _, sv := range st.pending[rec.Txn] {
			st.part(sv.part).install(sv.key, sv.ver)
		}
		delete(st.pending, rec.Txn)
	case wal.RecAbort:
		delete(st.pending, rec.Txn)
	}
	// Prepare images (RecPrepDML/RecPrepDel) carry raw payloads without a
	// commit timestamp: they are retained for rebuild (where the normal
	// in-doubt recovery path stamps them) but never installed here — the
	// deciding commit re-ships ordinary DML with the final values.
}

// replicaPart mirrors one partition's full committed version history: a
// sorted key list and per-key newest-first version chains. Nothing is ever
// pruned — old snapshots routed here must resolve exactly as at the origin.
type replicaPart struct {
	keys []string // sorted
	vers map[string][]cc.Version
}

// install adds v as key's version at v.TS (replacing an equal-TS install —
// re-applied history is idempotent).
func (rp *replicaPart) install(key []byte, v cc.Version) {
	ks := string(key)
	vs, known := rp.vers[ks]
	if !known {
		i := sort.SearchStrings(rp.keys, ks)
		rp.keys = append(rp.keys, "")
		copy(rp.keys[i+1:], rp.keys[i:])
		rp.keys[i] = ks
	}
	i := sort.Search(len(vs), func(i int) bool { return vs[i].TS <= v.TS })
	if i < len(vs) && vs[i].TS == v.TS {
		vs[i] = v
	} else {
		vs = append(vs, cc.Version{})
		copy(vs[i+1:], vs[i:])
		vs[i] = v
	}
	rp.vers[ks] = vs
}

// get resolves key at snapshot snap: the newest version with TS <= snap
// (tombstones included — ok distinguishes "no version" from a visible
// tombstone, matching cc.VersionStore.VisibleVersion).
func (rp *replicaPart) get(key []byte, snap cc.Timestamp) (cc.Version, bool) {
	for _, v := range rp.vers[string(key)] {
		if v.TS <= snap {
			return v, true
		}
	}
	return cc.Version{}, false
}

// scan visits live versions of keys in [lo, hi) at snapshot snap, in key
// order; fn returning false stops the scan.
func (rp *replicaPart) scan(lo, hi []byte, snap cc.Timestamp, fn func(k, v []byte) bool) {
	start := 0
	if lo != nil {
		start = sort.SearchStrings(rp.keys, string(lo))
	}
	for _, ks := range rp.keys[start:] {
		if hi != nil && ks >= string(hi) {
			return
		}
		v, ok := rp.get([]byte(ks), snap)
		if !ok || v.Deleted {
			continue
		}
		if !fn([]byte(ks), v.Val) {
			return
		}
	}
}

// EnableDataReplication turns on per-node WAL shipping with the given number
// of followers per node. Setup-only: call before the simulation starts (New
// does, when Config.DataReplicas is positive), so bulk-load base images queue
// from the first append.
func (c *Cluster) EnableDataReplication(replicas int) {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(c.Nodes)-1 {
		replicas = len(c.Nodes) - 1
	}
	c.drep = &dataRep{
		replicas: replicas,
		inflight: make(map[int]map[cc.TxnID]cc.Timestamp),
	}
	for _, n := range c.Nodes {
		node := n
		node.ship = &shipState{
			stale:     make(map[int]bool),
			sent:      make(map[int]uint64),
			durable:   make(map[int]uint64),
			wrapLSN:   make(map[int]uint64),
			syncedGen: make(map[int]uint64),
			drained:   sim.NewSignal(c.Env),
		}
		node.stores = make(map[int]*repStore)
		node.Log.SetAppendHook(func(rec *wal.Record, frame []byte) {
			if !wal.Shippable(rec.Type) {
				return
			}
			sh := node.ship
			sh.lastShippable = rec.LSN
			var vis cc.Timestamp
			switch rec.Type {
			case wal.RecInsert, wal.RecUpdate, wal.RecDelete, wal.RecBase:
				if v, err := table.DecodeValue(rec.After); err == nil {
					vis = v.TS
				}
			}
			sh.queue = append(sh.queue, shipItem{lsn: rec.LSN, frame: bytes.Clone(frame), vis: vis})
			if len(sh.queue) == 1 {
				sh.updatePin(node.Log)
			}
		})
	}
}

// followersOf returns origin id's replica set: the next DataReplicas node
// IDs, cyclically.
func (c *Cluster) followersOf(id int) []*DataNode {
	out := make([]*DataNode, 0, c.drep.replicas)
	for i := 1; i <= c.drep.replicas; i++ {
		out = append(out, c.Nodes[(id+i)%len(c.Nodes)])
	}
	return out
}

// originsOf returns the node IDs that replicate TO node id (the inverse of
// followersOf), ascending.
func (c *Cluster) originsOf(id int) []*DataNode {
	out := make([]*DataNode, 0, c.drep.replicas)
	for i := 1; i <= c.drep.replicas; i++ {
		out = append(out, c.Nodes[(id-i+len(c.Nodes))%len(c.Nodes)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// updatePin advances the log's truncation fence: everything unshipped (or
// everything, while any follower awaits a resync from the retained log) is
// pinned against TruncateBefore.
func (sh *shipState) updatePin(l *wal.Log) {
	for _, s := range sh.stale {
		if s {
			l.PinBefore(1) // a resync re-ships the whole retained log
			return
		}
	}
	if len(sh.queue) > 0 {
		l.PinBefore(sh.queue[0].lsn)
		return
	}
	l.PinBefore(l.TailLSN())
}

// applyToFollower delivers one origin frame to follower f: a RecShip wrapper
// on f's log (Part carries the origin ID) and an immediate replica-store
// apply. frame must be a stable copy.
func (c *Cluster) applyToFollower(f, origin *DataNode, lsn uint64, frame []byte) {
	payload := wal.EncodeShipFrame(nil, &wal.ShipFrame{
		Origin: uint32(origin.ID), LSN: lsn, Gen: origin.ship.rebuildGen, Frame: frame})
	wl := f.Log.Append(wal.Record{Type: wal.RecShip, Part: uint64(origin.ID), After: payload})
	origin.ship.wrapLSN[f.ID] = wl
	st := f.stores[origin.ID]
	if st == nil {
		st = newRepStore()
		f.stores[origin.ID] = st
	}
	st.applyFrame(lsn, frame)
}

// applyReset opens a wholesale resync of origin's stream at follower f: a
// reset wrapper on f's log, and a fresh replica store.
func (c *Cluster) applyReset(f, origin *DataNode) {
	payload := wal.EncodeShipFrame(nil, &wal.ShipFrame{
		Origin: uint32(origin.ID), Gen: origin.ship.rebuildGen, Reset: true})
	wl := f.Log.Append(wal.Record{Type: wal.RecShip, Part: uint64(origin.ID), After: payload})
	origin.ship.wrapLSN[f.ID] = wl
	f.stores[origin.ID] = newRepStore()
}

// acquireDrain serializes queue drains for origin; returns false if origin
// died while waiting.
func (c *Cluster) acquireDrain(p *sim.Proc, origin *DataNode) bool {
	sh := origin.ship
	for sh.draining {
		if origin.crashed {
			return false
		}
		stop := p.Meter(sim.CatLogging)
		sh.drained.Wait(p)
		stop()
	}
	if origin.crashed {
		return false
	}
	sh.draining = true
	return true
}

func (c *Cluster) releaseDrain(origin *DataNode) {
	origin.ship.draining = false
	origin.ship.drained.Fire()
}

// shipQueued delivers origin's queued frames to every live, in-sync
// follower; with forced, each receiving follower's log is flushed through
// the delivered wrappers and the durable watermark advances. Followers that
// cannot receive are marked stale (resync re-seeds them). Returns false only
// when origin died mid-drain.
//
// Only the origin-flushed prefix of the queue ships: a frame the origin has
// not made locally durable could die with its unflushed tail, yet survive in
// a follower's durably-flushed wrapper — a ghost the origin's restart would
// renumber over and a rebuild would resurrect. Holding frames until the
// origin's own flush covers them makes every shipped frame permanent at the
// origin, so followers' retained wrappers never diverge from a restarted
// origin's log.
func (c *Cluster) shipQueued(p *sim.Proc, origin *DataNode, forced bool) bool {
	if !c.acquireDrain(p, origin) {
		return false
	}
	defer c.releaseDrain(origin)
	sh := origin.ship
	flushed := origin.Log.FlushedLSN()
	cut := 0
	for cut < len(sh.queue) && sh.queue[cut].lsn <= flushed {
		cut++
	}
	items := sh.queue[:cut:cut]
	var batchBytes int64
	for _, it := range items {
		batchBytes += int64(len(it.frame)) + shipWireOverhead
	}
	delivered := len(items) == 0
	for _, f := range c.followersOf(origin.ID) {
		if f.crashed || sh.stale[f.ID] {
			if len(items) > 0 {
				sh.stale[f.ID] = true
			}
			continue
		}
		if len(items) > 0 {
			c.Net.Transfer(p, origin.ID, f.ID, batchBytes)
			if origin.crashed {
				return false
			}
			if f.crashed || sh.stale[f.ID] {
				sh.stale[f.ID] = true
				continue
			}
			for _, it := range items {
				if it.lsn <= sh.sent[f.ID] {
					continue
				}
				c.applyToFollower(f, origin, it.lsn, it.frame)
				sh.sent[f.ID] = it.lsn
			}
			delivered = true
		}
		if forced {
			wl := sh.wrapLSN[f.ID]
			if wl > 0 && f.Log.FlushedLSN() < wl {
				f.Log.Flush(p, wl)
				if origin.crashed {
					return false
				}
			}
			if !f.crashed && !sh.stale[f.ID] && f.Log.FlushedLSN() >= wl {
				sh.durable[f.ID] = sh.sent[f.ID]
			}
		}
	}
	if delivered {
		sh.queue = sh.queue[len(items):]
	}
	// Not delivered: every follower is stale or down. The queue is kept —
	// a restarting follower's resync covers only the origin-flushed prefix,
	// so frames still volatile at the origin must stay queued for ordinary
	// delivery once a follower is back in sync.
	sh.updatePin(origin.Log)
	return true
}

// forceShip blocks until every shippable frame origin has appended so far is
// durable on at least one follower — the replication half of a forced
// commit. It retries through follower outages (a restarting follower resyncs
// and satisfies the target); it returns false only when origin itself dies.
func (c *Cluster) forceShip(p *sim.Proc, origin *DataNode) bool {
	sh := origin.ship
	target := sh.lastShippable
	// The caller locally forced its own frames before calling, so they sit at
	// or below the flushed boundary. Anything above it was appended by OTHER
	// in-flight transactions — they have their own waiters, and chasing them
	// would hang this commit on a group-commit flush that may never come
	// (an end-of-workload straggler).
	if fl := origin.Log.FlushedLSN(); fl < target {
		target = fl
	}
	for {
		if origin.crashed {
			return false
		}
		for _, f := range c.followersOf(origin.ID) {
			if !sh.stale[f.ID] && sh.durable[f.ID] >= target {
				return true
			}
		}
		if !c.shipQueued(p, origin, true) {
			return false
		}
		for _, f := range c.followersOf(origin.ID) {
			if !sh.stale[f.ID] && sh.durable[f.ID] >= target {
				return true
			}
		}
		if origin.crashed {
			return false
		}
		c.healStaleFollowers(p, origin)
		if origin.crashed {
			return false
		}
		p.Sleep(shipRetryDelay)
	}
}

// healStaleFollowers resyncs any live-but-stale follower of origin. Restart
// epilogues normally do this, but a resync interrupted by a concurrent crash
// of the counterpart leaves the pair stale with no further trigger once both
// are finally up — a forced commit waiting on replica durability would spin
// forever. The forced-ship retry loops call this so they make progress on
// whatever replica set the crash schedule left them.
func (c *Cluster) healStaleFollowers(p *sim.Proc, origin *DataNode) {
	sh := origin.ship
	for _, f := range c.followersOf(origin.ID) {
		if origin.crashed {
			return
		}
		if !f.crashed && sh.stale[f.ID] {
			c.resyncFollower(p, origin, f)
		}
	}
}

// forceShipDecided is the phase-2 replication wait of a single-node commit
// whose commit record is ALREADY locally durable at LSN target (generation
// gen, captured when the record was appended): the transaction's fate is
// decided on this node's log, so an origin crash must not fail the commit —
// a plain restart replays it and the ack must follow. The waiter parks across
// the outage and resolves to the commit's actual post-recovery fate:
//
//   - origin alive: ship forced until a follower holds the target durably;
//   - origin down: sleep until its restart resyncs a follower (durable
//     watermarks re-anchor at the restored flushed boundary, which covers the
//     locally-durable commit) — then true;
//   - the restart was a rebuild (disk lost, or acked history rotted beyond
//     repair): true iff the commit's frame was inside the replica set's
//     durable prefix of its generation and thus survived into the rebuilt
//     log; otherwise the commit is gone from the origin AND every replica
//     (the rebuilt generation supersedes the stale wrappers), so false is
//     consistent — nothing can surface.
//
// This keeps the harness oracle's strict contract: an error return means the
// transaction is durably absent everywhere, a true return means it is durable
// at the origin and recoverable from the replica set.
func (c *Cluster) forceShipDecided(p *sim.Proc, origin *DataNode, target, gen uint64) bool {
	sh := origin.ship
	for {
		if sh.rebuildGen != gen {
			return sh.rebuiltFromGen == gen && target <= sh.rebuiltThrough
		}
		if !origin.crashed {
			for _, f := range c.followersOf(origin.ID) {
				if !sh.stale[f.ID] && sh.durable[f.ID] >= target {
					return true
				}
			}
			if c.shipQueued(p, origin, true) && sh.rebuildGen == gen {
				for _, f := range c.followersOf(origin.ID) {
					if !sh.stale[f.ID] && sh.durable[f.ID] >= target {
						return true
					}
				}
			}
			if !origin.crashed && sh.rebuildGen == gen {
				c.healStaleFollowers(p, origin)
			}
		}
		p.Sleep(shipRetryDelay)
	}
}

// DrainShipQueues runs one unforced delivery pass over every node (the
// background shipper's body): queued frames ride to followers and their
// wrapper durability rides the followers' group commits.
func (c *Cluster) DrainShipQueues(p *sim.Proc) {
	if c.drep == nil {
		return
	}
	for _, n := range c.Nodes {
		if n.crashed || len(n.ship.queue) == 0 {
			continue
		}
		c.shipQueued(p, n, false)
	}
}

// SetupReplicationDrain ships everything queued during setup (bulk-load base
// images) and marks all logs durable, without charging simulated time — the
// replicated starting state, like BulkLoad itself, exists before the clock
// starts. Call after loading, before traffic.
func (c *Cluster) SetupReplicationDrain() {
	if c.drep == nil {
		return
	}
	for _, n := range c.Nodes {
		n.Log.SetupFlush()
	}
	for _, n := range c.Nodes {
		sh := n.ship
		for _, f := range c.followersOf(n.ID) {
			for _, it := range sh.queue {
				c.applyToFollower(f, n, it.lsn, it.frame)
				sh.sent[f.ID] = it.lsn
			}
		}
		sh.queue = nil
		sh.updatePin(n.Log)
	}
	for _, n := range c.Nodes {
		n.Log.SetupFlush() // the wrappers just appended
	}
	for _, n := range c.Nodes {
		for _, f := range c.followersOf(n.ID) {
			n.ship.durable[f.ID] = n.ship.sent[f.ID]
		}
	}
}

// resyncFollower wholesale-rebuilds follower f's replica of origin: a reset
// wrapper, then every durable shippable frame of origin's log, appended to
// f's log and flushed — after which f is in sync (stale cleared) and counts
// for durability again. Tolerates either side dying mid-resync (stale
// stays set; a later restart retries).
func (c *Cluster) resyncFollower(p *sim.Proc, origin, f *DataNode) {
	if origin.crashed || f.crashed {
		return
	}
	// Heal any rot in the origin's acked history first: the collection below
	// skips undecodable frames, and silently baking that gap into the
	// follower's durable shipped prefix would defeat a later rebuild.
	c.scrubNode(p, origin)
	if origin.crashed || f.crashed {
		return
	}
	if !c.acquireDrain(p, origin) {
		return
	}
	defer c.releaseDrain(origin)
	sh := origin.ship
	flushed := origin.Log.FlushedLSN()
	var frames []shipItem
	var total int64
	origin.Log.VisitFrames(func(rec *wal.Record, frame []byte) bool {
		if rec.LSN > flushed {
			return false
		}
		if !wal.Shippable(rec.Type) {
			return true
		}
		frames = append(frames, shipItem{lsn: rec.LSN, frame: bytes.Clone(frame)})
		total += int64(len(frame)) + shipWireOverhead
		return true
	})
	c.Net.Transfer(p, origin.ID, f.ID, total+shipWireOverhead)
	if origin.crashed || f.crashed {
		return
	}
	// Reset only across a renumbering rebuild: the follower's retained
	// wrappers of an older generation are unrelated records at colliding
	// LSNs and must be superseded. Within one generation the retained
	// wrappers are byte-identical to what ships below, so re-applying over
	// them is idempotent — and skipping the reset means a resync cut short
	// by a crash can only add duplicates, never trade the follower's
	// complete durable history for a partial one.
	if sh.syncedGen[f.ID] != sh.rebuildGen {
		c.applyReset(f, origin)
		sh.syncedGen[f.ID] = sh.rebuildGen
	} else {
		// Same generation: keep the retained wrappers and seed the fresh
		// in-memory store from the follower's own durable copies first (a
		// crashed follower's store died with DRAM; a live stale one may have
		// missed deliveries). Seeding matters since fuzzy checkpoints: the
		// origin's retained log may be truncated below the replica-durable
		// boundary, so the frames collected above cover only the retained
		// suffix — the follower's durable wrappers are the authoritative
		// source for the prefix it already holds.
		st := newRepStore()
		own, _, gen := durableShippedFrames(f, origin.ID)
		if gen == sh.rebuildGen {
			lsns := make([]uint64, 0, len(own))
			for lsn := range own {
				lsns = append(lsns, lsn)
			}
			sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
			for _, lsn := range lsns {
				st.applyFrame(lsn, own[lsn])
			}
		}
		f.stores[origin.ID] = st
	}
	for _, it := range frames {
		c.applyToFollower(f, origin, it.lsn, it.frame)
	}
	sh.sent[f.ID] = flushed
	wl := sh.wrapLSN[f.ID]
	f.Log.Flush(p, wl)
	if origin.crashed {
		return
	}
	if !f.crashed && f.Log.FlushedLSN() >= wl {
		sh.durable[f.ID] = flushed
		sh.stale[f.ID] = false
	}
	// The resynced prefix no longer needs queue delivery to THIS follower —
	// but the queue is shared across the replica set, so only frames every
	// non-stale follower already holds (sent covers them; stale followers
	// re-ship from the retained log) may be dropped. Trimming to this
	// follower's flushed boundary alone would discard frames a sibling
	// synced at an older boundary never received, leaving a permanent gap
	// in its replica store.
	limit := flushed
	for _, g := range c.followersOf(origin.ID) {
		if !sh.stale[g.ID] && sh.sent[g.ID] < limit {
			limit = sh.sent[g.ID]
		}
	}
	q := origin.ship.queue
	keep := 0
	for keep < len(q) && q[keep].lsn <= limit {
		keep++
	}
	origin.ship.queue = q[keep:]
	sh.updatePin(origin.Log)
}

// durableShippedFrames reads follower f's durable wrapper log directly —
// even while f is down; its disk is stable storage — and reconstructs
// origin's shipped stream: raw frames keyed by origin LSN, after processing
// reset markers in log order and keeping only the newest generation present
// (older generations use a numbering the origin has since renumbered over —
// their frames are unrelated records at colliding LSNs). Returns the frames,
// the highest LSN among them, and the generation they belong to. Used by
// rebuildFromReplicas, which must not wait for followers to restart (two
// destroyed nodes could be mutual followers), and by the scrubber.
func durableShippedFrames(f *DataNode, origin int) (map[uint64][]byte, uint64, uint64) {
	frames := make(map[uint64][]byte)
	var max, gen uint64
	flushed := f.Log.FlushedLSN()
	f.Log.VisitFrames(func(rec *wal.Record, frame []byte) bool {
		if rec.LSN > flushed {
			return false
		}
		if rec.Type != wal.RecShip || rec.Part != uint64(origin) {
			return true
		}
		sf, err := wal.DecodeShipFrame(rec.After)
		if err != nil {
			return true
		}
		if sf.Gen < gen {
			return true // stale straggler from before a renumbering
		}
		if sf.Gen > gen || sf.Reset {
			frames = make(map[uint64][]byte)
			max = 0
			gen = sf.Gen
		}
		if sf.Reset {
			return true
		}
		if sf.LSN > max {
			max = sf.LSN
		}
		frames[sf.LSN] = sf.Frame
		return true
	})
	return frames, max, gen
}

// RotEligible returns a predicate over origin n's acked frames marking those
// a chaos bit-rot fault may damage without exceeding the redundancy budget:
// only frames with a durable current-generation copy on a follower whose disk
// medium is intact qualify. In-memory repair sources (the origin's ship
// queue, follower replica stores) are deliberately excluded — a crash
// schedule can erase every one of them before the scrubber runs, and rotting
// a frame whose last durable copy is the origin's own models unrecoverable
// media loss, not repairable decay.
func (c *Cluster) RotEligible(n *DataNode) func(lsn uint64) bool {
	covered := make(map[uint64]bool)
	if c.drep != nil {
		for _, f := range c.followersOf(n.ID) {
			if f.diskLost {
				continue
			}
			frames, _, gen := durableShippedFrames(f, n.ID)
			if gen != n.ship.rebuildGen {
				continue
			}
			for lsn := range frames {
				covered[lsn] = true
			}
		}
	}
	return func(lsn uint64) bool { return covered[lsn] }
}

// durableMasterSeq returns the highest master-state sequence in the durable
// prefix of m's log, tolerating damage: a crashed member's disk is readable
// stable storage, but may still hold the torn tail or rotted frame its own
// restart has not truncated yet, so the scan is per-frame and gated on the
// flushed boundary rather than using the stop-on-error iterator.
func durableMasterSeq(m *DataNode) uint64 {
	var max uint64
	flushed := m.Log.FlushedLSN()
	m.Log.VisitFrames(func(rec *wal.Record, frame []byte) bool {
		if rec.LSN > flushed {
			return false
		}
		switch rec.Type {
		case wal.RecMState, wal.RecMLease, wal.RecMAck:
		case wal.RecDecision:
			if rec.After == nil {
				return true
			}
		default:
			return true
		}
		if rec.Part > max {
			max = rec.Part
		}
		return true
	})
	return max
}

// ownSalvage is the pre-Restart per-frame read of a crashed node's own
// damaged log: every durable frame that still decodes, captured before
// Restart's byte scan truncates at the first damaged frame. Rot on the
// origin and a destroyed follower disk can each eat a DIFFERENT part of the
// replicated history; the origin's own readable frames are the one source
// guaranteed to cover everything it ever acked locally, so a rebuild merges
// them with the best follower copy instead of discarding them.
type ownSalvage struct {
	frames map[uint64][]byte // shippable frames by LSN (current numbering)
	max    uint64
	// Replicated coordinator records (log order) and their highest sequence:
	// a master-group member's own log may hold a longer master history than
	// any other member's (it was the leader), and it reads for free.
	masterRecs []wal.Record
	masterSeq  uint64
}

// salvageOwnFrames reads n's crashed, possibly damaged log frame by frame
// (the in-memory offset map survives the power failure model, mirroring the
// scrubber's CheckFlushed walk) and keeps whatever still decodes inside the
// durable boundary. Must run before Log.Restart — the restart scan
// physically truncates at the first damaged frame, destroying every
// readable frame behind it.
func salvageOwnFrames(n *DataNode) *ownSalvage {
	sv := &ownSalvage{frames: make(map[uint64][]byte)}
	flushed := n.Log.FlushedLSN()
	n.Log.VisitFrames(func(rec *wal.Record, frame []byte) bool {
		if rec.LSN > flushed {
			return false
		}
		switch {
		case wal.Shippable(rec.Type):
			sv.frames[rec.LSN] = bytes.Clone(frame)
			if rec.LSN > sv.max {
				sv.max = rec.LSN
			}
		case rec.Type == wal.RecMState || rec.Type == wal.RecMLease || rec.Type == wal.RecMAck,
			rec.Type == wal.RecDecision && rec.After != nil:
			sv.masterRecs = append(sv.masterRecs, *rec)
			if rec.Part > sv.masterSeq {
				sv.masterSeq = rec.Part
			}
		}
		return true
	})
	return sv
}

// rebuildFromReplicas reconstructs a node's log after total loss of its
// durable state (a wiped disk, or bit rot that ate into acked history): the
// node's own salvaged frames and the follower holding the longest durable
// prefix of the shipped stream together supply the frames, which are
// re-appended — renumbered — to the freshly wiped log, together with the
// coordinator's replicated records when the node is a master-group member
// (those replicate through the master protocol and are absent from the data
// stream, but elections read this node's log). Runs inside RestartNode,
// right after Log.Restart and before any recovery pass; sv is the
// pre-Restart salvage (empty after a wiped disk).
func (c *Cluster) rebuildFromReplicas(p *sim.Proc, n *DataNode, sv *ownSalvage) {
	// Pick the follower with the newest generation, longest durable prefix.
	// Within a generation each follower's durable shipped set is a prefix of
	// the origin's stream (in-order flushed-only delivery, resync on any
	// gap), so the longest prefix of the newest generation covers every
	// frame any forced commit had acked against since the last renumbering.
	var best *DataNode
	var bestFrames map[uint64][]byte
	var bestMax, bestGen uint64
	for _, f := range c.followersOf(n.ID) {
		if f.diskLost {
			continue // wiped too: no stable storage to read
		}
		frames, max, gen := durableShippedFrames(f, n.ID)
		if best == nil || gen > bestGen || (gen == bestGen && max > bestMax) {
			best, bestFrames, bestMax, bestGen = f, frames, max, gen
		}
	}
	// Merge the sources. The salvage (when non-empty) is in the log's current
	// numbering and covers everything this node acked locally — including
	// slices whose only follower copy died with a destroyed disk; the best
	// follower's copy fills the salvage's rot holes and is the sole source
	// after a wiped disk. They merge when the follower holds the current
	// generation (same numbering, byte-identical frames where both present);
	// an older-generation follower copy uses a numbering this log has since
	// renumbered over and cannot extend the salvage.
	curGen := n.ship.rebuildGen
	frames := bestFrames
	rebuiltFromGen, rebuiltThrough := bestGen, bestMax
	var fromBestBytes int64
	if best != nil {
		for _, fr := range bestFrames {
			fromBestBytes += int64(len(fr)) + shipWireOverhead
		}
	}
	if sv != nil && len(sv.frames) > 0 {
		frames = sv.frames
		rebuiltFromGen, rebuiltThrough = curGen, sv.max
		if best != nil && bestGen == curGen {
			fromBestBytes = 0
			for lsn, fr := range bestFrames {
				if _, ok := frames[lsn]; !ok {
					frames[lsn] = fr
					fromBestBytes += int64(len(fr)) + shipWireOverhead
				}
			}
			if bestMax > rebuiltThrough {
				rebuiltThrough = bestMax
			}
		} else {
			best = nil
		}
	}
	// Master-group members additionally restore the replicated coordinator
	// records from the member with the highest durable master sequence, so
	// the election and reconciliation passes below RestartNode see them. A
	// down member's disk is stable storage just like in durableShippedFrames
	// — only a wiped one is unreadable — and every acked forced record is
	// flushed on all current followers, so the best durable prefix available
	// covers everything a coordinator ack promised.
	var masterRecs []wal.Record
	if r := c.Master.rep; r != nil && r.member(n.ID) {
		var src *DataNode
		var bestSeq uint64
		for _, id := range r.group {
			m := c.Nodes[id]
			if m == n || m.diskLost {
				continue
			}
			if s := durableMasterSeq(m); src == nil || s > bestSeq {
				src, bestSeq = m, s
			}
		}
		if sv != nil && len(sv.masterRecs) > 0 && sv.masterSeq >= bestSeq {
			// This node's own salvaged master history is at least as long as
			// any other member's durable prefix — use it, wire-free.
			masterRecs = sv.masterRecs
			src = nil
		}
		if src != nil {
			var total int64
			flushed := src.Log.FlushedLSN()
			src.Log.VisitFrames(func(rec *wal.Record, frame []byte) bool {
				if rec.LSN > flushed {
					return false
				}
				switch rec.Type {
				case wal.RecMState, wal.RecMLease, wal.RecMAck:
				case wal.RecDecision:
					if rec.After == nil {
						return true // coordinator-local form, not the replicated one
					}
				default:
					return true
				}
				masterRecs = append(masterRecs, *rec)
				total += int64(len(frame)) + shipWireOverhead
				return true
			})
			c.Net.Transfer(p, src.ID, n.ID, total)
		}
	}
	n.Log.WipeDisk() // renumber from LSN 1: the shipped stream has gaps
	// forceShip targets are LSNs of the OLD numbering; re-anchor at zero and
	// let the append hook re-advance as frames are re-appended below.
	n.ship.lastShippable = 0
	// Parked commit waiters resolve against the rebuild outcome: frames of
	// generation rebuiltFromGen at or below rebuiltThrough survive (in that
	// generation's numbering); everything else is gone everywhere once the
	// resyncs supersede the stale wrappers.
	n.ship.rebuiltThrough = rebuiltThrough
	n.ship.rebuiltFromGen = rebuiltFromGen
	n.ship.rebuildGen++
	// The recovery bases are re-derived from the rebuilt log alone: the wiped
	// log IS the new base truth, and stale in-memory pairs would re-append as
	// phantom tail bases on the next repairBaseLog pass.
	n.bases = make(map[table.PartID][]basePair)
	for i := range masterRecs {
		n.Log.Append(masterRecs[i])
	}
	if len(frames) > 0 {
		if best != nil && fromBestBytes > 0 {
			// Read the follower's contribution from its disk, ship it over.
			best.HW.LogDisk().ReadSeq(p, fromBestBytes)
			c.Net.Transfer(p, best.ID, n.ID, fromBestBytes)
		}
		lsns := make([]uint64, 0, len(frames))
		for lsn := range frames {
			lsns = append(lsns, lsn)
		}
		sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
		for _, lsn := range lsns {
			rec, err := wal.DecodeFrame(frames[lsn])
			if err != nil {
				continue
			}
			nl := n.Log.Append(rec) // Append renumbers
			if rec.Type == wal.RecBase {
				// A wiped disk also lost the recovery bases; the shipped
				// base images restore them (Append encoded already, so the
				// decoded slices can be retained). The pair carries its
				// renumbered append LSN, so repairBaseLog sees it covered.
				id := table.PartID(rec.Part)
				n.bases[id] = append(n.bases[id], basePair{key: rec.Key, val: rec.After, lsn: nl})
			}
		}
	}
	last := n.Log.TailLSN() - 1
	if last > 0 {
		n.Log.Flush(p, last)
	}
	n.Log.ClearLostDurable()
	// diskLost stays set until RestartNode's resync epilogue finishes: the
	// replica set must be whole again (this node's wrapper copies of the
	// streams it follows re-seeded, its followers re-seeded with the rebuilt
	// stream) before it counts as stable storage for anyone else's rebuild.
	c.drep.Rebuilds++
}

// repairBaseLog re-appends recovery-base records whose original appends were
// lost with the unflushed tail of a crash — possible only in the window
// between a migration's segment adoption and the move's base force. Each pair
// remembers the LSN of the record carrying its image; one at or below the
// restart's restored durable boundary is already covered (its record is
// durable — or was absorbed below a checkpoint's redo point, where the
// refreshed base itself is the durable carrier), while one above it lost its
// append with the volatile tail and re-appends here. (The old prefix-count
// comparison against retained RecBase records broke both under checkpoint
// truncation — recycled records would re-append durable pairs at the tail,
// shadowing newer DML on their keys — and under checkpoint base refresh,
// which grows the in-memory list without logging.) Runs after the recovery
// passes (this restart replayed the bases from memory) and before the
// resyncs (which ship only the durable log).
func (c *Cluster) repairBaseLog(p *sim.Proc, n *DataNode, durable uint64) {
	ids := make([]table.PartID, 0, len(n.bases))
	for id := range n.bases {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var last uint64
	for _, id := range ids {
		bps := n.bases[id]
		for i := range bps {
			if bps[i].lsn <= durable {
				continue
			}
			last = n.Log.Append(wal.Record{Type: wal.RecBase, Part: uint64(id), Key: bps[i].key, After: bps[i].val})
			bps[i].lsn = last
		}
	}
	if last > 0 {
		n.Log.Flush(p, last)
	}
}

// restartResync runs RestartNode's replication epilogue on a freshly revived
// node: drop stale inflight bookkeeping, pull fresh replicas of live origins
// this node follows, and push resyncs to live followers that went stale.
func (c *Cluster) restartResync(p *sim.Proc, n *DataNode) {
	c.drep.clearInflight(n.ID)
	for _, o := range c.originsOf(n.ID) {
		if !o.crashed && o.ship.stale[n.ID] {
			c.resyncFollower(p, o, n)
		}
	}
	for _, f := range c.followersOf(n.ID) {
		if !f.crashed && n.ship.stale[f.ID] {
			c.resyncFollower(p, n, f)
		}
	}
}

// crashShipState is doCrash's replication teardown: the origin-side queue
// dies with DRAM (followers resync on restart), the follower-side stores die
// with DRAM (origins mark this node stale), and any drain parked in a
// transfer is released.
func (c *Cluster) crashShipState(n *DataNode) {
	sh := n.ship
	sh.queue = nil
	sh.draining = false
	sh.drained.Fire()
	// Appends above the flushed boundary died with the crash: they can never
	// become replica-durable, and a forceShip target above the durable tail
	// would wait forever.
	sh.lastShippable = n.Log.FlushedLSN()
	// Followers may hold an unflushed shipped suffix the origin is about to
	// lose — or miss frames whose queue just evaporated. Either way their
	// replicas diverge from the restarted origin's durable log: resync.
	for _, f := range c.followersOf(n.ID) {
		sh.stale[f.ID] = true
	}
	n.stores = make(map[int]*repStore)
	for _, o := range c.originsOf(n.ID) {
		o.ship.stale[n.ID] = true
		o.ship.updatePin(o.Log)
	}
	sh.updatePin(n.Log)
}

// DestroyDisk power-fails a node AND destroys its log medium: segments,
// acked history, wrapper logs of the origins it follows, and the recovery
// bases — everything durable is gone. RestartNode detects the loss and
// rebuilds the node's state from its replica set. A no-op on an
// already-destroyed disk.
func (c *Cluster) DestroyDisk(n *DataNode) {
	if n.diskLost {
		return
	}
	c.CrashNode(n)
	n.Log.WipeDisk()
	n.bases = make(map[table.PartID][]basePair)
	n.diskLost = true
	if c.drep != nil {
		c.drep.DiskLosses++
	}
}

// ScrubPass CRC-rescans every live node's acked history and repairs
// bit-rotted frames from a healthy copy. Returns the number of frames
// repaired this pass.
func (c *Cluster) ScrubPass(p *sim.Proc) int {
	if c.drep == nil {
		return 0
	}
	repaired := 0
	for _, n := range c.Nodes {
		if n.crashed {
			continue
		}
		repaired += c.scrubNode(p, n)
	}
	return repaired
}

// scrubNode repairs every bit-rotted frame of one node's acked history.
// Repair sources, in order: the node's own ship queue (the append-time clone
// is pristine and covers flushed-but-unshipped frames), a live in-sync
// follower's replica store, and finally any follower's durable wrapper log —
// readable even while that follower is down or stale, since its disk is
// stable storage. PatchFrame validates the candidate bytes, so a stale
// wrapper log from before a renumbering rebuild can never patch wrong data.
func (c *Cluster) scrubNode(p *sim.Proc, n *DataNode) int {
	repaired := 0
	for _, lsn := range n.Log.CheckFlushed() {
		var frame []byte
		for _, it := range n.ship.queue {
			if it.lsn == lsn {
				frame = it.frame
				break
			}
		}
		if frame == nil {
			for _, f := range c.followersOf(n.ID) {
				if !f.crashed && !n.ship.stale[f.ID] {
					if st := f.stores[n.ID]; st != nil {
						frame = st.frames[lsn]
					}
				}
				if frame == nil && !f.diskLost {
					// Only the current generation's wrappers may patch: an
					// older generation's frame at the same LSN is a different
					// record that happens to decode (PatchFrame checks CRC
					// and LSN, not identity).
					frames, _, gen := durableShippedFrames(f, n.ID)
					if gen == n.ship.rebuildGen {
						frame = frames[lsn]
					}
				}
				if frame != nil {
					// Request + frame response from the follower's copy.
					c.Net.Transfer(p, n.ID, f.ID, 32)
					c.Net.Transfer(p, f.ID, n.ID, int64(len(frame))+shipWireOverhead)
					break
				}
			}
		}
		if n.crashed {
			break
		}
		if frame != nil && n.Log.PatchFrame(lsn, frame) {
			repaired++
			c.drep.ScrubRepairs++
		}
	}
	return repaired
}

package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// Session executes one transaction. The transaction's logic runs at a home
// node (TPC-C: the node owning the home warehouse); operations on
// partitions owned elsewhere pay request/response network trips, and commit
// runs two-phase when multiple nodes were written.
type Session struct {
	m    *Master
	Txn  *cc.Txn
	Home *DataNode

	// touched: partitions with staged writes, by owning node. Lazily
	// allocated by touch() — read-only transactions never pay for it.
	touched map[*table.Partition]*DataNode
	// lockNodes: nodes whose lock managers hold locks for this txn
	// (locking mode also locks on reads). Lazily allocated by lockNode().
	lockNodes map[*DataNode]bool
	// fenced marks a session refused at Begin because the replicated
	// coordinator was unavailable: its transaction is born aborted and
	// every operation returns ErrMasterDown.
	fenced bool
	// reads counts read operations, alternating them between the owner and
	// an eligible replica under data replication (so both paths stay
	// exercised and the owner keeps roughly half the load).
	reads int

	// PreferFollower is the analytics offloading hint: a read-only snapshot
	// session that sets it skips the owner/replica alternation and serves
	// every eligible read from a follower store, keeping scans off the
	// primaries entirely. Only the load-balancing heuristic is bypassed —
	// all safety gates (snapshot coverage, in-flight commits, sync state)
	// still apply, and ineligible reads fall back to the owner as usual.
	PreferFollower bool
}

// Begin starts a transaction executing at home. The timestamp comes from
// the master's oracle; starting from another node pays the coordination
// round trip. The session's bookkeeping maps are allocated on first write
// or lock, keeping transaction setup map-free (TestSessionSetupAllocs pins
// this).
func (m *Master) Begin(p *sim.Proc, mode cc.Mode, home *DataNode) *Session {
	if m.rep != nil {
		// A fenced coordinator (or one whose lease cannot replicate) admits
		// no new transactions: the session is born aborted and the caller
		// sees ErrMasterDown on every operation — the modeled unavailability
		// window of a master failover.
		if m.down || m.Node.Down() || m.ensureLease(p) != nil {
			return &Session{m: m, Txn: &cc.Txn{Mode: mode, State: cc.TxnAborted}, Home: home, fenced: true}
		}
	}
	if home != m.Node {
		m.cluster.Net.Transfer(p, home.ID, m.Node.ID, 32)
		m.cluster.Net.Transfer(p, m.Node.ID, home.ID, 32)
	}
	txn := m.Oracle.Begin(mode)
	home.HW.Compute(p, m.cluster.Cal.CPUTxnOverhead)
	return &Session{m: m, Txn: txn, Home: home}
}

// touch records a staged write's partition and owning node.
func (s *Session) touch(pt *table.Partition, owner *DataNode) {
	if s.touched == nil {
		s.touched = make(map[*table.Partition]*DataNode, 4)
	}
	s.touched[pt] = owner
}

// lockNode records that node's lock manager holds locks for this txn.
func (s *Session) lockNode(n *DataNode) {
	if s.lockNodes == nil {
		s.lockNodes = make(map[*DataNode]bool, 4)
	}
	s.lockNodes[n] = true
}

// BeginSystem starts a system transaction (record movement housekeeping).
func (m *Master) BeginSystem(p *sim.Proc, mode cc.Mode, home *DataNode) *Session {
	s := m.Begin(p, mode, home)
	s.Txn.System = true
	return s
}

// rpc charges a request/response round trip between home and the operating
// node (free when co-located).
func (s *Session) rpc(p *sim.Proc, owner *DataNode, reqBytes, respBytes int64) {
	if owner == s.Home {
		return
	}
	s.m.cluster.Net.Transfer(p, s.Home.ID, owner.ID, reqBytes+32)
	s.m.cluster.Net.Transfer(p, owner.ID, s.Home.ID, respBytes+32)
}

// followerFor returns a replica node eligible to serve this session's
// snapshot reads of e's partition, or nil to read at the owner. Eligibility
// is a conjunction of safety gates: the store mirrors every committed version
// visible at the session's snapshot only if the owner has nothing queued or
// in flight at or below it and the follower is fully in sync. Every other
// read goes to the owner regardless, so both paths stay exercised.
func (s *Session) followerFor(e *RangeEntry) *DataNode {
	c := s.m.cluster
	if c.drep == nil || s.Txn.Mode != cc.SnapshotIsolation || len(s.touched) != 0 {
		return nil
	}
	s.reads++
	if e.OldPart != nil {
		return nil // a migration is in flight (dual copies)
	}
	if s.reads%2 == 0 && !s.PreferFollower {
		return nil // owner's turn
	}
	origin := e.Owner
	if origin.Down() || origin.ship.visibleBelow(s.Txn.Begin) {
		return nil // an undelivered frame holds a version below the snapshot
	}
	if c.drep.inflightBelow(origin.ID, s.Txn.Begin) {
		return nil // a commit at or below the snapshot is not yet replicated
	}
	for _, f := range c.followersOf(origin.ID) {
		if f.Down() || origin.ship.stale[f.ID] {
			continue
		}
		// A store seeded from base images holds no history below its floor;
		// a snapshot down there must resolve at the owner (which applies its
		// own recovery-horizon fence).
		if st := f.stores[origin.ID]; st != nil && st.parts[e.Part.ID] != nil && st.floor <= s.Txn.Begin {
			return f
		}
	}
	return nil
}

type loc struct {
	part  *table.Partition
	owner *DataNode
}

// candidates returns the partitions to visit, new location first.
func (e *RangeEntry) candidates() []loc {
	out := []loc{{e.Part, e.Owner}}
	if e.OldPart != nil {
		out = append(out, loc{e.OldPart, e.OldOwner})
	}
	return out
}

// candidatesFor orders the locations for a specific key: during a logical
// migration the advancing boundary decides which copy is authoritative
// ("transactions read either copy, but not both", Sect. 4.2).
func (e *RangeEntry) candidatesFor(key []byte) []loc {
	if e.OldPart == nil {
		return []loc{{e.Part, e.Owner}}
	}
	if e.MovedBelow != nil && bytes.Compare(key, e.MovedBelow) >= 0 {
		// Not yet moved: the old location is authoritative.
		return []loc{{e.OldPart, e.OldOwner}, {e.Part, e.Owner}}
	}
	return []loc{{e.Part, e.Owner}, {e.OldPart, e.OldOwner}}
}

// Get reads key from tableName, visiting both locations of an in-flight
// migration if needed.
func (s *Session) Get(p *sim.Proc, tableName string, key []byte) ([]byte, bool, error) {
	if s.fenced {
		return nil, false, ErrMasterDown{}
	}
	tm, err := s.m.Table(tableName)
	if err != nil {
		return nil, false, err
	}
	if tm.Replicated() {
		pt := tm.Replica(s.Home)
		if pt == nil {
			return nil, false, fmt.Errorf("cluster: no %s replica on node %d", tableName, s.Home.ID)
		}
		return pt.Get(p, s.Txn, key)
	}
	e, err := tm.route(key)
	if err != nil {
		return nil, false, err
	}
	// Follower snapshot read: an in-sync replica resolves the key below its
	// applied horizon without touching the owner. Its answer is authoritative
	// either way — the store mirrors the owner's full committed history, so
	// "absent" and a visible tombstone both mean not-found at this snapshot.
	if f := s.followerFor(e); f != nil {
		origin := e.Owner
		s.rpc(p, f, 32, 64)
		// Re-fetch after the blocking trip: a crash or resync may have
		// replaced the store — possibly with one re-seeded from base images
		// whose floor now excludes this snapshot (fall back to the owner).
		if st := f.stores[origin.ID]; st != nil && st.floor <= s.Txn.Begin {
			if rp := st.parts[e.Part.ID]; rp != nil {
				s.m.cluster.drep.FollowerReads++
				v, ok := rp.get(key, s.Txn.Begin)
				if !ok || v.Deleted {
					return nil, false, nil
				}
				return v.Val, true, nil
			}
		}
	}
	for _, c := range e.candidatesFor(key) {
		if s.Txn.Mode == cc.Locking {
			s.lockNode(c.owner)
		}
		s.rpc(p, c.owner, 32, 64)
		v, state, err := c.part.Lookup(p, s.Txn, key)
		if _, notOwned := err.(table.ErrNotOwned); notOwned {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		switch state {
		case table.LookupLive:
			return v, true, nil
		case table.LookupDeleted:
			// A committed tombstone here is authoritative: falling through
			// to the other location would resurrect its stale copy.
			return nil, false, nil
		}
		// Absent: this location knows nothing of the key — the other
		// location of an in-flight migration may still hold it.
	}
	return nil, false, nil
}

// Put writes key in tableName under the session's transaction.
func (s *Session) Put(p *sim.Proc, tableName string, key, payload []byte) error {
	return s.write(p, tableName, key, payload, false)
}

// Delete removes key in tableName.
func (s *Session) Delete(p *sim.Proc, tableName string, key []byte) error {
	return s.write(p, tableName, key, nil, true)
}

func (s *Session) write(p *sim.Proc, tableName string, key, payload []byte, del bool) error {
	if s.fenced {
		return ErrMasterDown{}
	}
	tm, err := s.m.Table(tableName)
	if err != nil {
		return err
	}
	// A migrating range may bounce the write between old and new location
	// while the move completes; retry across both (bounded).
	for attempt := 0; attempt < 8; attempt++ {
		e, err := tm.route(key)
		if err != nil {
			return err
		}
		var lastNotOwned error
		for _, c := range e.candidatesFor(key) {
			s.lockNode(c.owner)
			s.rpc(p, c.owner, int64(len(payload))+32, 32)
			if del {
				err = c.part.Delete(p, s.Txn, key)
			} else {
				err = c.part.Put(p, s.Txn, key, payload)
			}
			if _, notOwned := err.(table.ErrNotOwned); notOwned {
				lastNotOwned = err
				continue
			}
			if err != nil {
				return err
			}
			s.touch(c.part, c.owner)
			return nil
		}
		if lastNotOwned == nil {
			return err
		}
		// Ownership is mid-flight; let the move progress and re-route.
		p.Sleep(s.m.cluster.Cal.NetLatency)
	}
	return table.ErrNotOwned{Part: 0, Key: key}
}

// Scan iterates records of tableName with keys in [lo, hi) visible to the
// session's transaction. During migration, both locations of a range are
// scanned and merged by key (each record is visible in exactly one of them
// for a given snapshot).
func (s *Session) Scan(p *sim.Proc, tableName string, lo, hi []byte, fn func(key, payload []byte) bool) error {
	if s.fenced {
		return ErrMasterDown{}
	}
	tm, err := s.m.Table(tableName)
	if err != nil {
		return err
	}
	if tm.Replicated() {
		pt := tm.Replica(s.Home)
		if pt == nil {
			return fmt.Errorf("cluster: no %s replica on node %d", tableName, s.Home.ID)
		}
		return pt.Scan(p, s.Txn, lo, hi, fn)
	}
	for _, e := range tm.entries {
		if hi != nil && e.Low != nil && bytes.Compare(e.Low, hi) >= 0 {
			break
		}
		if lo != nil && e.High != nil && bytes.Compare(e.High, lo) <= 0 {
			continue
		}
		if s.Txn.Mode == cc.Locking {
			for _, c := range e.candidates() {
				s.lockNode(c.owner)
			}
		}
		// Clamp to the entry's range: a partition may back several
		// entries (after splits), and rows outside the entry's range must
		// be delivered by their own entry exactly once.
		elo, ehi := maxBytes(lo, e.Low), minBytes(hi, e.High)
		stop := false
		if e.OldPart == nil {
			wrapped := func(k, v []byte) bool {
				if !fn(k, v) {
					stop = true
					return false
				}
				return true
			}
			if !s.followerScanPart(p, e, elo, ehi, wrapped) {
				s.rpc(p, e.Owner, 64, 256)
				err = e.Part.Scan(p, s.Txn, elo, ehi, wrapped)
			}
		} else {
			err = s.mergedScan(p, e, elo, ehi, func(k, v []byte) bool {
				if !fn(k, v) {
					stop = true
					return false
				}
				return true
			})
		}
		if _, notOwned := err.(table.ErrNotOwned); notOwned {
			err = nil
		}
		if err != nil || stop {
			return err
		}
	}
	return nil
}

// followerScanPart serves one range entry's scan from an eligible replica
// store; it reports whether the scan was served (false falls back to the
// owner). Tombstones are skipped exactly as the owner's scan would.
func (s *Session) followerScanPart(p *sim.Proc, e *RangeEntry, lo, hi []byte, fn func(k, v []byte) bool) bool {
	f := s.followerFor(e)
	if f == nil {
		return false
	}
	origin := e.Owner
	s.rpc(p, f, 64, 256)
	st := f.stores[origin.ID]
	if st == nil || st.floor > s.Txn.Begin {
		return false // crash or resync replaced the store mid-trip
	}
	rp := st.parts[e.Part.ID]
	if rp == nil {
		return false
	}
	s.m.cluster.drep.FollowerReads++
	rp.scan(lo, hi, s.Txn.Begin, fn)
	return true
}

// mergedScan visits both locations of a migrating range and merges results
// in key order. The new location is authoritative for every key it has a
// committed version for — including tombstones — so the old location only
// contributes keys the new one does not know (not yet moved, or never
// rewritten there). This keeps interrupted migrations sound: a record
// deleted or rewritten at the new location can never resurface from a
// stale copy left at the source.
func (s *Session) mergedScan(p *sim.Proc, e *RangeEntry, lo, hi []byte, fn func(k, v []byte) bool) error {
	type rec struct{ k, v []byte }
	var all []rec
	newSeen := map[string]bool{}
	// Snapshot the entry's pointers before the first blocking call: the
	// old-pointer/ghost cleanup processes null them asynchronously once old
	// snapshots drain, and this scan may be parked in I/O when they fire.
	newPart, newOwner := e.Part, e.Owner
	oldPart, oldOwner := e.OldPart, e.OldOwner
	s.rpc(p, newOwner, 64, 256)
	err := newPart.ScanWithTombstones(p, s.Txn, lo, hi, func(k, v []byte, deleted bool) bool {
		newSeen[string(k)] = true
		if !deleted {
			all = append(all, rec{bytes.Clone(k), bytes.Clone(v)})
		}
		return true
	})
	if _, notOwned := err.(table.ErrNotOwned); err != nil && !notOwned {
		return err
	}
	if oldPart != nil {
		s.rpc(p, oldOwner, 64, 256)
		err = oldPart.Scan(p, s.Txn, lo, hi, func(k, v []byte) bool {
			if !newSeen[string(k)] {
				all = append(all, rec{bytes.Clone(k), bytes.Clone(v)})
			}
			return true
		})
		if _, notOwned := err.(table.ErrNotOwned); err != nil && !notOwned {
			return err
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].k, all[j].k) < 0 })
	for _, r := range all {
		if !fn(r.k, r.v) {
			return nil
		}
	}
	return nil
}

// Commit finishes the transaction: single-node fast path, or two-phase
// commit when multiple nodes hold writes (the master acts as coordinator).
// A power failure may land at any instant of the commit window:
//
//   - Before the coordinator's decision is durable, the transaction aborts
//     (presumed abort): the caller gets an error, no acknowledgment is
//     given, and any branch left prepared on a durable log rolls back on
//     restart because the coordinator has no decision for it.
//   - After the decision is durable, the commit is acknowledged even if
//     participants crash mid-install: each crashed branch is fully durable
//     (prepare-time DML images forced with its vote), and RestartNode rolls
//     it forward from the log at the decided timestamp.
//   - A single-node transaction needs no vote: its commit record is the
//     decision, so a crash inside the window simply loses the unflushed
//     tail and the restart rolls the transaction back — the caller saw an
//     error and never acknowledged.
func (s *Session) Commit(p *sim.Proc) error {
	if !s.Txn.Active() {
		return cc.ErrTxnNotActive
	}
	// A touched partition that power-failed loses the staged writes with
	// its node's DRAM — including the pending bookkeeping, which would
	// otherwise make this transaction look read-only and produce a false
	// acknowledgment. Fail the commit instead (ordered check for
	// deterministic error selection). Read-only transactions skip the
	// whole participant build (no map, no sort boxing) — they still pass
	// the commit point below for their timestamp transition.
	var ordered []*DataNode
	var nodes map[*DataNode][]*table.Partition
	if len(s.touched) > 0 {
		touched := make([]*table.Partition, 0, len(s.touched))
		for pt := range s.touched {
			touched = append(touched, pt)
		}
		sort.Slice(touched, func(i, j int) bool { return touched[i].ID < touched[j].ID })
		for _, pt := range touched {
			if pt.Failed() {
				return table.ErrPartitionDown{Part: pt.ID}
			}
			if s.touched[pt].Down() {
				return ErrNodeDown{s.touched[pt].ID}
			}
		}
		nodes = make(map[*DataNode][]*table.Partition, 4)
		for pt, owner := range s.touched {
			if pt.HasPending(s.Txn) || s.Txn.Mode == cc.Locking {
				nodes[owner] = append(nodes[owner], pt)
			}
		}
		// Deterministic participant and install order: both phases perform
		// network and log I/O, so map-iteration order would perturb the
		// virtual clock between otherwise identical runs.
		ordered = make([]*DataNode, 0, len(nodes))
		for node := range nodes {
			ordered = append(ordered, node)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
		for _, node := range ordered {
			parts := nodes[node]
			sort.Slice(parts, func(i, j int) bool { return parts[i].ID < parts[j].ID })
		}
	}

	distributed := len(ordered) > 1
	if distributed {
		// Phase 1 (node order): prepare every participant. The redo images
		// of the branch's staged writes are logged first, then the prepare
		// vote — one force covers both, so a prepared branch is fully
		// durable before the coordinator may decide. A participant that
		// power-fails before its vote is durable aborts the transaction.
		for _, node := range ordered {
			if node.Down() {
				return ErrNodeDown{node.ID}
			}
			s.rpc(p, node, 32, 32)
			for _, pt := range nodes[node] {
				pt.LogPrepare(s.Txn)
			}
			lsn := node.Log.Append(wal.Record{Txn: s.Txn.ID, Type: wal.RecPrepare})
			node.Log.Flush(p, lsn)
			if node.Down() { // power-failed during the prepare force
				return ErrNodeDown{node.ID}
			}
			// Under data replication a prepared branch must also be durable
			// on a replica before the coordinator may decide: losing the
			// branch's entire disk would otherwise lose a voted prepare.
			if s.m.cluster.drep != nil && !s.m.cluster.forceShip(p, node) {
				return ErrNodeDown{node.ID}
			}
		}
	}
	// Commit point: timestamp from the master's oracle.
	if s.Home != s.m.Node {
		s.m.cluster.Net.Transfer(p, s.Home.ID, s.m.Node.ID, 32)
		s.m.cluster.Net.Transfer(p, s.m.Node.ID, s.Home.ID, 32)
	}
	// Under replication the coordinator must be seated with lease headroom
	// before the commit timestamp exists. Failing here is still the
	// presumed-abort side of the window: nothing is visible, the caller
	// aborts, and prepared branches roll back on restart.
	if err := s.m.commitGate(p); err != nil {
		return err
	}
	commitTS := s.m.Oracle.CommitTS(s.Txn)
	// The commit timestamp exists but its frames are not yet on replicas:
	// register it so follower reads at snapshots covering it fall back to
	// the owner until phase 2 ships everything (deregistered per node below;
	// a participant crash clears its entries wholesale at restart).
	if s.m.cluster.drep != nil {
		for _, node := range ordered {
			s.m.cluster.drep.addInflight(node.ID, s.Txn.ID, commitTS)
		}
	}
	if distributed {
		// The coordinator forces its decision record before any participant
		// installs: from here the transaction commits everywhere, no matter
		// which nodes fail when. That seals the durability fate — prepared
		// branches roll forward from their forced prepare images — so the
		// commit timestamp settles here and new snapshots may cover it.
		s.m.recordDecision(p, s.Txn, commitTS, ordered)
		s.m.Oracle.SettleCommit(s.Txn)
	}

	// Phase 2 / fast path: install writes and force commit records, in
	// deterministic node order. A participant power failure anywhere in
	// here leaves that branch in doubt; its restart queries the coordinator
	// and rolls forward from the prepare-time log. Any other install
	// failure is an engine invariant violation (the movement protocols are
	// responsible for never detaching a range with in-flight writers), so
	// it fails loudly rather than losing updates.
	for _, node := range ordered {
		if node.Down() {
			if distributed {
				continue // in-doubt branch: resolved on restart
			}
			return ErrNodeDown{node.ID}
		}
		s.rpc(p, node, 32, 32)
		var nodeErr error
		for _, pt := range nodes[node] {
			if err := pt.Commit(p, s.Txn, commitTS); err != nil {
				nodeErr = err
				break
			}
		}
		if nodeErr != nil {
			if !isPowerFailure(nodeErr) {
				panic(fmt.Sprintf("cluster: commit installation failed after commit point: txn %d node %d: %v",
					s.Txn.ID, node.ID, nodeErr))
			}
			if distributed {
				continue // the branch died mid-install; roll forward on restart
			}
			// Single node: nothing is durable (the commit record never made
			// it), so the restart rolls the transaction back. Withhold the
			// acknowledgment.
			return nodeErr
		}
		var shipGen uint64
		if s.m.cluster.drep != nil {
			// Captured in the same instant the commit record gets its LSN:
			// the pair identifies the record across any renumbering rebuild.
			shipGen = node.ship.rebuildGen
		}
		commitLSN, durable := appendCommitRecord(p, node, s.Txn)
		if !durable {
			// The power failure caught the commit record above the flushed
			// boundary: it is gone from the platter, so restart recovery is
			// guaranteed to roll this branch back.
			if !distributed {
				return ErrNodeDown{node.ID}
			}
			continue // in-doubt: the decision record drives roll-forward
		}
		// Replication half of the force: the branch's frames (DML + commit)
		// must be durable on a replica before the ack, or a disk loss at
		// this node would lose an acknowledged commit. A distributed branch
		// whose node dies here is in doubt like any other; its inflight
		// entry clears when it restarts. A single-node transaction's commit
		// record is already durable — its fate is decided — so the wait
		// parks across any origin outage and resolves to what recovery
		// actually did: ack if the commit survived (plain restart, or a
		// rebuild whose replica prefix covered it), error only if it is
		// durably gone everywhere.
		if s.m.cluster.drep != nil {
			if distributed {
				if !s.m.cluster.forceShip(p, node) {
					continue
				}
			} else if !s.m.cluster.forceShipDecided(p, node, commitLSN, shipGen) {
				return ErrNodeDown{node.ID}
			}
			s.m.cluster.drep.delInflight(node.ID, s.Txn.ID)
		}
		if distributed {
			s.m.ackDecision(s.Txn.ID, node.ID)
		}
	}
	if !distributed {
		// Single-node fate seals only now: the commit record is durable and,
		// under replication, a replica holds the branch. Settling any earlier
		// would let a snapshot observe a commit that a power failure during
		// the force still rolls back at restart.
		s.m.Oracle.SettleCommit(s.Txn)
	}
	s.releaseLocks()
	s.Txn.DropUndo()
	return nil
}

// isPowerFailure reports whether err is a node/partition power-failure
// error — the only legitimate way a commit installation can fail after the
// commit point.
func isPowerFailure(err error) bool {
	switch err.(type) {
	case table.ErrPartitionDown, ErrNodeDown:
		return true
	}
	return false
}

// Abort rolls the transaction back everywhere it touched. Partitions and
// logs lost to a power failure are skipped (their staged state died with
// the node).
func (s *Session) Abort(p *sim.Proc) {
	if s.Txn.State == cc.TxnAborted {
		return
	}
	// Deterministic order: aborting staged writes fires intent-release
	// signals, which reschedules waiting processes. Read-only transactions
	// skip the whole block (no slice, no sort boxing — the begin/abort
	// cycle stays allocation-minimal, see TestSessionSetupAllocs).
	if len(s.touched) > 0 {
		parts := make([]*table.Partition, 0, len(s.touched))
		for pt := range s.touched {
			parts = append(parts, pt)
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i].ID < parts[j].ID })
		for _, pt := range parts {
			pt.Abort(p, s.Txn)
		}
	}
	s.Txn.RunUndo(p)
	lockNodes := s.lockNodeList()
	for _, node := range lockNodes {
		node.Log.Append(wal.Record{Txn: s.Txn.ID, Type: wal.RecAbort})
	}
	s.m.Oracle.Abort(s.Txn)
	for _, node := range lockNodes {
		node.Locks.ReleaseAll(s.Txn)
	}
}

// lockNodeList returns the nodes holding lock state for this transaction in
// ID order (lock release wakes waiters, so the order must be deterministic).
func (s *Session) lockNodeList() []*DataNode {
	if len(s.lockNodes) == 0 && len(s.touched) == 0 {
		return nil // read-only MVCC transaction: nothing locked anywhere
	}
	seen := make(map[*DataNode]bool, len(s.lockNodes)+len(s.touched))
	out := make([]*DataNode, 0, len(s.lockNodes)+len(s.touched))
	for node := range s.lockNodes {
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	// MVCC writers also took segment IX locks on owners.
	for _, owner := range s.touched {
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Session) releaseLocks() {
	for _, node := range s.lockNodeList() {
		node.Locks.ReleaseAll(s.Txn)
	}
}

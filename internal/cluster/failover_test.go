package cluster

import (
	"fmt"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// failoverWorld is a replicated-coordinator cluster: node 0 is the seated
// leader, nodes 1 and 2 are master replicas, node 3 owns all data. Crashing
// node 0 never touches a data partition, so every observed effect is pure
// coordinator failover.
type failoverWorld struct {
	env  *sim.Env
	c    *Cluster
	data *DataNode
}

func newFailoverWorld(t *testing.T, leaseChunk int) *failoverWorld {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.MasterReplicas = 2
	c := New(env, cfg)
	for _, node := range c.Nodes[1:] {
		node.HW.ForceActive()
	}
	c.Master.SetLeaseChunk(leaseChunk)
	_, err := c.Master.CreateTable(kvSchema(), table.Physiological, []RangeSpec{
		{Low: nil, High: nil, Owner: c.Nodes[3]},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &failoverWorld{env: env, c: c, data: c.Nodes[3]}
}

// runCommits executes total single-partition commits back-to-back on the
// data node, retrying through fenced windows, and returns the acknowledged
// commit timestamps in acknowledgment order.
func (w *failoverWorld) runCommits(t *testing.T, total int) []cc.Timestamp {
	t.Helper()
	var acked []cc.Timestamp
	w.env.Spawn("committer", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			for {
				s := w.c.Master.Begin(p, cc.SnapshotIsolation, w.data)
				row := table.Row{int64(i), fmt.Sprintf("v-%d", i)}
				key, _ := kvSchema().Key(row)
				payload, _ := kvSchema().EncodeRow(row)
				if err := s.Put(p, "kv", key, payload); err != nil {
					s.Abort(p)
					p.Sleep(20 * time.Millisecond)
					continue
				}
				if err := s.Commit(p); err != nil {
					s.Abort(p)
					p.Sleep(20 * time.Millisecond)
					continue
				}
				acked = append(acked, s.Txn.Commit)
				break
			}
		}
	})
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
	return acked
}

// TestFailoverTimestampMonotonic sweeps a leader power failure across the
// whole commit stream — including every point of the small lease window —
// and asserts that acknowledged commit timestamps never regress or repeat
// across the failover: the new leader must resume strictly above the
// replicated lease ceiling, and the ceiling must cover everything the old
// leader acknowledged.
func TestFailoverTimestampMonotonic(t *testing.T) {
	const (
		leaseChunk = 300 // just above leaseHeadroom: frequent lease grants
		commits    = 400 // crosses several lease boundaries
		sweepN     = 16
	)

	// Calibration run, no crash: measure the undisturbed stream's duration
	// so sweep points land inside it.
	base := newFailoverWorld(t, leaseChunk)
	baseTS := base.runCommits(t, commits)
	baseEnd := base.env.Now()
	base.env.Close()
	if len(baseTS) != commits {
		t.Fatalf("calibration: %d of %d commits acked", len(baseTS), commits)
	}

	for i := 0; i < sweepN; i++ {
		crashAt := baseEnd * time.Duration(i+1) / time.Duration(sweepN+1)
		t.Run(fmt.Sprintf("crash@%v", crashAt), func(t *testing.T) {
			w := newFailoverWorld(t, leaseChunk)
			defer w.env.Close()
			leader := w.c.Nodes[0]
			w.env.Spawn("crash-leader", func(p *sim.Proc) {
				p.Sleep(crashAt)
				w.c.CrashNode(leader)
			})
			acked := w.runCommits(t, commits)
			if len(acked) != commits {
				t.Fatalf("%d of %d commits acked", len(acked), commits)
			}
			for j := 1; j < len(acked); j++ {
				if acked[j] <= acked[j-1] {
					t.Fatalf("commit %d ts=%d not above commit %d ts=%d (failover regressed or reissued a timestamp)",
						j, acked[j], j-1, acked[j-1])
				}
			}
			if w.c.Master.Fenced() {
				t.Fatal("coordinator still fenced after the stream drained")
			}
			if got := w.c.Master.Failovers(); got != 1 {
				t.Fatalf("failovers = %d, want 1", got)
			}
			if w.c.Master.LeaderID() == 0 {
				t.Fatal("crashed node 0 still seated as leader")
			}
			if n := w.c.Master.InDoubtDecisionCount(); n != 0 {
				t.Fatalf("decision map leak: %d entries after drain", n)
			}
		})
	}
}

// TestFailoverLeaseExhaustion parks the cluster right before a lease
// boundary, kills the leader, and verifies the next leader's first grant
// starts strictly above the old ceiling even though the old leader had
// consumed almost none of its last lease.
func TestFailoverLeaseExhaustion(t *testing.T) {
	const leaseChunk = 300
	w := newFailoverWorld(t, leaseChunk)
	defer w.env.Close()

	first := w.runCommits(t, 10)
	oldCeil := w.c.Master.Oracle.Leased()
	if oldCeil == 0 {
		t.Fatal("no lease ceiling replicated")
	}
	w.c.CrashNode(w.c.Nodes[0])

	second := w.runCommits(t, 10)
	if len(second) != 10 {
		t.Fatalf("%d of 10 post-failover commits acked", len(second))
	}
	if second[0] <= first[len(first)-1] {
		t.Fatalf("post-failover ts %d not above pre-crash ts %d", second[0], first[len(first)-1])
	}
	if second[0] < oldCeil {
		t.Fatalf("post-failover ts %d below old lease ceiling %d: new leader reused leased range", second[0], oldCeil)
	}
	if newCeil := w.c.Master.Oracle.Leased(); newCeil <= oldCeil {
		t.Fatalf("new leader's lease ceiling %d not above old ceiling %d", newCeil, oldCeil)
	}
}

// TestFailoverDoubleCrash kills the first elected successor too: after the
// original leader rejoined as a follower (catch-up), a second election must
// seat another replica and timestamps must still never regress across
// either handoff. (Without the restart the second leader would have no live
// follower: forced records could never replicate and the coordinator would
// stay correctly write-fenced.)
func TestFailoverDoubleCrash(t *testing.T) {
	const leaseChunk = 300
	w := newFailoverWorld(t, leaseChunk)
	defer w.env.Close()

	var all []cc.Timestamp
	all = append(all, w.runCommits(t, 20)...)
	w.c.CrashNode(w.c.Nodes[0])
	all = append(all, w.runCommits(t, 20)...)
	w.env.Spawn("restart-0", func(p *sim.Proc) {
		if _, _, err := w.c.RestartNode(p, w.c.Nodes[0]); err != nil {
			t.Errorf("restart node 0: %v", err)
		}
	})
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
	w.c.CrashNode(w.c.Master.Node) // whoever got elected
	all = append(all, w.runCommits(t, 20)...)

	if len(all) != 60 {
		t.Fatalf("%d of 60 commits acked", len(all))
	}
	for j := 1; j < len(all); j++ {
		if all[j] <= all[j-1] {
			t.Fatalf("ts %d at commit %d not above predecessor %d", all[j], j, all[j-1])
		}
	}
	if got := w.c.Master.Failovers(); got != 2 {
		t.Fatalf("failovers = %d, want 2", got)
	}
}

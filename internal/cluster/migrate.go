package cluster

import (
	"bytes"
	"fmt"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// MigrateRange rebalances all records of tableName with keys in [lo, hi)
// onto dst, using the protocol matching the table's partitioning scheme:
//
//   - Physical (Sect. 4.1): relocate the durable segments of the covering
//     partitions to dst's disks; ownership stays put.
//   - Logical (Sect. 4.2): move records with delete/insert transactions
//     into a partition on dst; key ranges change.
//   - Physiological (Sect. 4.3): ship whole mini-partition segments and
//     transfer ownership as each one arrives.
//
// The call blocks p for the duration of the move.
func (m *Master) MigrateRange(p *sim.Proc, tableName string, lo, hi []byte, dst *DataNode) error {
	return m.MigrateRangeFraction(p, tableName, lo, hi, 1.0, dst)
}

// MigrateRangeFraction is MigrateRange with an explicit record fraction for
// the physical scheme: physical partitioning has no key-to-segment mapping
// (the logical layer is oblivious of segment placement), so "move the
// records of [lo, hi)" can only be approximated by moving the corresponding
// fraction of each covering partition's segments. The logical and
// physiological protocols target the exact key range and ignore frac.
func (m *Master) MigrateRangeFraction(p *sim.Proc, tableName string, lo, hi []byte, frac float64, dst *DataNode) error {
	tm, err := m.Table(tableName)
	if err != nil {
		return err
	}
	switch tm.Scheme {
	case table.Physical:
		return m.migratePhysical(p, tm, lo, hi, frac, dst)
	case table.Logical:
		return m.migrateLogical(p, tm, lo, hi, dst)
	case table.Physiological:
		return m.migratePhysiological(p, tm, lo, hi, dst)
	}
	return fmt.Errorf("cluster: unknown scheme %v", tm.Scheme)
}

// overlapping returns entries intersecting [lo, hi).
func (tm *TableMeta) overlapping(lo, hi []byte) []*RangeEntry {
	var out []*RangeEntry
	for _, e := range tm.entries {
		if hi != nil && e.Low != nil && bytes.Compare(e.Low, hi) >= 0 {
			continue
		}
		if lo != nil && e.High != nil && bytes.Compare(e.High, lo) <= 0 {
			continue
		}
		out = append(out, e)
	}
	return out
}

// --- Physical partitioning -------------------------------------------------

// migratePhysical relocates the durable bytes of every segment of the
// covered partitions to dst. Only a lightweight flush freeze is needed: the
// logical layer, ownership, and access paths are untouched — which is also
// why query processing gains nothing (Sect. 5.2).
func (m *Master) migratePhysical(p *sim.Proc, tm *TableMeta, lo, hi []byte, frac float64, dst *DataNode) error {
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	for _, e := range tm.overlapping(lo, hi) {
		if e.Owner == dst {
			continue
		}
		if err := migrationAlive(e.Owner, dst); err != nil {
			return err
		}
		segs := e.Part.Segments()
		k := int(float64(len(segs))*frac + 0.5)
		if k > len(segs) {
			k = len(segs)
		}
		for _, h := range segs[len(segs)-k:] {
			if err := m.relocateSegment(p, e.Owner, h, dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// relocateSegment moves one segment's durable bytes between nodes' disks.
// A power failure of any involved node aborts the relocation cleanly: the
// durable bytes stay at the source (the pointer swap is the last step) and
// blocked flushers are released.
func (m *Master) relocateSegment(p *sim.Proc, owner *DataNode, h *table.SegHandle, dst *DataNode) error {
	home, err := m.cluster.home(h.Seg.ID)
	if err != nil {
		return err
	}
	if home.node == dst {
		return nil
	}
	if err := migrationAlive(owner, home.node, dst); err != nil {
		return err
	}
	// Make the durable image current, then freeze flushes for the copy.
	if err := owner.Pool.FlushSegment(p, h.Seg.ID); err != nil {
		return err
	}
	home.moving = true
	abort := func() error {
		home.moving = false
		home.moved.Fire() // release flushers queued behind the move
		return migrationAlive(owner, home.node, dst)
	}
	// Sequential read at the source disk, wire transfer, sequential write
	// at the destination: segment movement "copies data almost at raw disk
	// speed".
	bytes := h.Seg.Bytes()
	home.disk.ReadSeq(p, bytes)
	if migrationAlive(owner, home.node, dst) != nil {
		return abort()
	}
	m.cluster.Net.Transfer(p, home.node.ID, dst.ID, bytes)
	disks := dst.HW.DataDisks()
	newDisk := disks[dst.diskRR%len(disks)]
	dst.diskRR++
	newDisk.WriteSeq(p, bytes)
	if migrationAlive(owner, home.node, dst) != nil {
		return abort()
	}
	home.node = dst
	home.disk = newDisk
	home.moving = false
	home.moved.Fire()
	return nil
}

// migrationAlive fails with ErrNodeDown if any node involved in a move has
// power-failed; the movement protocols check it at every step boundary.
func migrationAlive(nodes ...*DataNode) error {
	for _, n := range nodes {
		if n.Down() {
			return ErrNodeDown{n.ID}
		}
	}
	return nil
}

// --- Logical partitioning ---------------------------------------------------

// logicalBatch is the number of records per movement transaction.
const logicalBatch = 64

// migrateLogical moves records of [lo, hi) into a (possibly new) partition
// on dst using system transactions that delete at the source and insert at
// the destination. The master entry carries dual pointers; an advancing
// boundary retargets writers batch by batch.
func (m *Master) migrateLogical(p *sim.Proc, tm *TableMeta, lo, hi []byte, dst *DataNode) error {
	for _, e := range tm.overlapping(lo, hi) {
		if e.Owner == dst {
			continue
		}
		if e.OldPart != nil {
			// The entry still carries dual pointers from an earlier move
			// (in flight, suspended by a crash, or waiting for old snapshots
			// to drain). replaceEntry keeps only one OldPart generation, so
			// re-migrating now would drop the old-location fallback and
			// strand records readers can still only find there — skip the
			// entry until the cleanup retires the old pointer
			// (TestRemigrateWithLiveDualPointersSkipped pins this).
			continue
		}
		if err := migrationAlive(e.Owner, dst); err != nil {
			return err
		}
		clampLo := maxBytes(lo, e.Low)
		clampHi := minBytes(hi, e.High)
		if err := m.moveRecordRange(p, tm, e, clampLo, clampHi, dst); err != nil {
			return err
		}
	}
	return nil
}

func (m *Master) moveRecordRange(p *sim.Proc, tm *TableMeta, e *RangeEntry, lo, hi []byte, dst *DataNode) error {
	src := e.Part
	srcOwner := e.Owner
	// Build the destination partition and install dual pointers: the moved
	// sub-range becomes its own entry pointing at dst (new) and src (old).
	m.nextPartID++
	dstPart := table.NewPartition(m.nextPartID, tm.Schema, tm.Scheme, lo, hi, dst.Deps())
	dst.Parts[dstPart.ID] = dstPart

	boundary := lo
	if boundary == nil {
		boundary = []byte{} // -inf, but non-nil: nothing moved yet
	}
	moved := &RangeEntry{Low: lo, High: hi, Part: dstPart, Owner: dst,
		OldPart: src, OldOwner: srcOwner, MovedBelow: boundary}
	var news []*RangeEntry
	if e.Low == nil && lo != nil || (e.Low != nil && lo != nil && bytes.Compare(e.Low, lo) < 0) {
		news = append(news, &RangeEntry{Low: e.Low, High: lo, Part: src, Owner: srcOwner})
	}
	news = append(news, moved)
	if hi != nil && (e.High == nil || bytes.Compare(hi, e.High) < 0) {
		news = append(news, &RangeEntry{Low: hi, High: e.High, Part: src, Owner: srcOwner})
	}
	tm.replaceEntry(e, news...)
	// Replicate the dual-pointer install before moving anything. The
	// boundary still equals lo, so the old location stays authoritative for
	// every key: losing the leader here merely suspends a move that has not
	// moved a record yet.
	epoch := m.epoch
	if !m.shipTable(p, tm.Schema.Name, true) {
		return ErrMasterDown{}
	}

	// Move batches of records with system transactions. Records are
	// removed from the source (tombstones keep old snapshots working) and
	// inserted at the destination; both sides commit atomically via 2PC.
	// The batch size adapts: conflicts with user transactions shrink it
	// (down to single records, which always make progress against hot
	// rows); successes grow it back.
	cursor := lo
	batchSize := logicalBatch
	recovering := false // re-covering a window after a failed batch commit
	for {
		// A power failure of either side suspends the move: the advancing
		// boundary and the dual pointers stay in place, so routing remains
		// correct (moved keys at the destination, the rest at the source)
		// whether or not the move is ever resumed.
		if err := migrationAlive(srcOwner, dst); err != nil {
			return err
		}
		// A coordinator failover orphans this migration: the new leader
		// rebuilt the partition table from replicated snapshots, so the
		// entry objects held here are stale.
		if err := m.coordCheck(epoch); err != nil {
			return err
		}
		type rec struct{ k, v []byte }
		var batch []rec
		sess := m.BeginSystem(p, m.MoveMode, srcOwner)
		err := src.Scan(p, sess.Txn, cursor, hi, func(k, v []byte) bool {
			batch = append(batch, rec{bytes.Clone(k), bytes.Clone(v)})
			return len(batch) < batchSize
		})
		if err != nil {
			sess.Abort(p)
			return err
		}
		if len(batch) == 0 {
			if src.ChangedSince(sess.Txn, cursor, hi) {
				// A write invisible to this scan is in flight or freshly
				// committed in the remaining window: declaring the move
				// complete now would strand it at the source — the same
				// hazard the per-batch boundary advance guards against.
				sess.Abort(p)
				p.Sleep(2 * time.Millisecond)
				continue
			}
			sess.Abort(p)
			break
		}
		ok := true
		for _, r := range batch {
			if err := src.Delete(p, sess.Txn, r.k); err != nil {
				ok = false
				err2 := retryConflict(p, err)
				if err2 != nil {
					sess.Abort(p)
					return err2
				}
				break
			}
			sess.touch(src, srcOwner)
			// When re-covering a window after a failed batch commit, the
			// destination may already hold a version — live or tombstone —
			// from a writer routed there while the boundary was advanced.
			// That version is newer than the source copy by construction:
			// keep it and only retire the stale source record. (Outside
			// recovery the destination provably has nothing above the
			// boundary, so the lookup is skipped.)
			if recovering {
				if _, state, err := dstPart.Lookup(p, sess.Txn, r.k); err == nil && state != table.LookupAbsent {
					continue
				}
			}
			// Ship the record and insert at the destination.
			m.cluster.Net.Transfer(p, srcOwner.ID, dst.ID, int64(len(r.k)+len(r.v))+16)
			if err := dstPart.Put(p, sess.Txn, r.k, r.v); err != nil {
				ok = false
				if err2 := retryConflict(p, err); err2 != nil {
					sess.Abort(p)
					return err2
				}
				break
			}
			sess.touch(dstPart, dst)
		}
		if !ok {
			sess.Abort(p)
			if batchSize > 1 {
				batchSize /= 2
			}
			continue // retry the same cursor window with a smaller batch
		}
		last := batch[len(batch)-1].k
		boundary := nextKey(last)
		// Replicate the advanced boundary BEFORE installing it: a boundary
		// that routes writers to the destination must survive a leader
		// failover, or acknowledged destination writes would be shadowed by
		// old-first routing under the new leader. The converse order —
		// replicated ahead of installed — is read-safe (destination-first
		// routing falls back to the source for keys not yet moved). The
		// snapshot is built with the boundary temporarily set so the shipped
		// record carries it; the durable install happens only in the
		// non-blocking check-and-advance pair below.
		if m.rep != nil {
			if prev := moved.MovedBelow; prev == nil || bytes.Compare(boundary, prev) > 0 {
				moved.MovedBelow = boundary
				rec := m.tableRecord(tm.Schema.Name)
				moved.MovedBelow = prev
				if !m.logMaster(p, rec, true) {
					sess.Abort(p)
					return ErrMasterDown{}
				}
			}
		}
		// A key of this window may carry a write the scan could not see: a
		// still-staged foreign intent, or a commit newer than the scan's
		// snapshot (e.g. a tombstoned record re-inserted concurrently).
		// Advancing the boundary would strand that record at the source
		// while routing points at the destination — so back off and redo
		// the window with a fresh snapshot. The check and the advance are
		// both non-blocking, so no writer can slip between them (later
		// writers route by the advanced boundary).
		if src.ChangedSince(sess.Txn, cursor, boundary) {
			sess.Abort(p)
			p.Sleep(2 * time.Millisecond)
			continue
		}
		// Advance the routing boundary before committing: writers that
		// lose a conflict against this batch must retry at the new
		// location, never resurrect the record at the source. The advance
		// is monotonic — a smaller batch re-covering a window after a
		// failed commit must not regress the boundary below keys already
		// routed (and possibly written and acknowledged) at the
		// destination.
		if moved.MovedBelow == nil || bytes.Compare(boundary, moved.MovedBelow) > 0 {
			moved.MovedBelow = boundary
		}
		if err := sess.Commit(p); err != nil {
			// The batch failed (a participant power-failed mid-commit), but
			// the boundary must NOT roll back: a concurrent writer may have
			// committed — and been acknowledged — at the destination while
			// the window pointed there, and re-routing to the source would
			// shadow that write. The cursor does not advance either: on a
			// retryable failure the same window is re-covered (the
			// destination-version check above keeps re-moving idempotent),
			// and on a node failure the caller aborts the migration with
			// the un-moved records still served through the old-location
			// fallback of the dual pointers.
			sess.Abort(p)
			if err2 := retryConflict(p, err); err2 != nil {
				return err2
			}
			if batchSize > 1 {
				batchSize /= 2
			}
			recovering = true
			continue
		}
		cursor = boundary
		recovering = false
		if batchSize < logicalBatch {
			batchSize *= 2
		}
	}
	// All records moved: the old pointer stays until old snapshots drain,
	// then the source's tombstoned range is vacuumed. Clearing the boundary
	// is safe to do before the ship: every record sits at the destination,
	// and if the ship fails a failover resurrects the last boundary, under
	// which unmoved-looking keys simply fall back through the source's
	// Absent answers to the destination copy.
	moved.MovedBelow = nil
	if !m.shipTable(p, tm.Schema.Name, true) {
		return ErrMasterDown{}
	}
	m.scheduleOldPointerCleanup(tm, moved)
	return nil
}

// retryConflict converts transient movement conflicts (a user transaction
// holding a record) into a brief backoff; other errors pass through.
func retryConflict(p *sim.Proc, err error) error {
	switch err {
	case cc.ErrWriteConflict, cc.ErrLockTimeout:
		p.Sleep(10 * time.Millisecond)
		return nil
	}
	return err
}

// scheduleOldPointerCleanup drops the dual pointer and vacuums the source
// once every snapshot that could see the old copies has finished.
func (m *Master) scheduleOldPointerCleanup(tm *TableMeta, e *RangeEntry) {
	horizon := m.Oracle.Begin(cc.SnapshotIsolation)
	m.Oracle.Abort(horizon) // only needed its timestamp
	m.cluster.Env.Spawn("old-pointer-cleanup", func(p *sim.Proc) {
		// With no transaction active the watermark equals the oracle's
		// clock, which can sit exactly at the horizon forever on a
		// quiesced cluster — and any future snapshot begins above it, so
		// the old copies are unreachable either way.
		for m.Oracle.ActiveCount() > 0 && m.Oracle.Watermark() <= horizon.Begin {
			p.Sleep(time.Second)
		}
		// Read the source through the entry at fire time: a source-node
		// restart rebinds e.OldPart to the recovered partition, and the
		// dead object must not be the one vacuumed.
		src := e.OldPart
		e.OldPart = nil
		e.OldOwner = nil
		if m.rep != nil {
			// A failover since scheduling rebuilt the partition table; the
			// captured entry is stale then, so retire the old pointer on the
			// current entry too and replicate the retirement (unforced: a
			// lost cleanup snapshot only resurrects a read-safe dual
			// pointer).
			m.clearOldPointer(tm.Schema.Name, e.Low, e.High)
			if !m.down {
				m.shipTable(p, tm.Schema.Name, false)
			}
		}
		if src != nil {
			src.Vacuum(p, m.Oracle.Watermark())
		}
	})
}

// --- Physiological partitioning ---------------------------------------------

// migratePhysiological ships whole mini-partitions (segments) of [lo, hi)
// to dst, following the Sect. 4.3 repartitioning protocol step by step.
func (m *Master) migratePhysiological(p *sim.Proc, tm *TableMeta, lo, hi []byte, dst *DataNode) error {
	for _, e := range tm.overlapping(lo, hi) {
		if e.Owner == dst {
			continue
		}
		if e.OldPart != nil {
			// Live dual pointers from an earlier move: re-migrating would
			// drop the old-location fallback (see migrateLogical).
			continue
		}
		if err := migrationAlive(e.Owner, dst); err != nil {
			return err
		}
		srcPart := e.Part
		// Segments straddling the migration boundary are split at the
		// exact key first, so the moved range is precise. Raced splits
		// (concurrent overflow splits) re-resolve and retry.
		for _, bound := range [][]byte{lo, hi} {
			if bound == nil {
				continue
			}
			for {
				h := srcPart.SegmentContaining(bound)
				if h == nil || bytes.Compare(h.Low, bound) >= 0 {
					break
				}
				err := srcPart.SplitSegmentAt(p, h, bound)
				if err == table.ErrSplitRaced {
					continue
				}
				if err != nil {
					return err
				}
			}
		}
		// One destination partition adopts every mini-partition moved from
		// this source partition; its bounds widen per adopted segment.
		m.nextPartID++
		dstPart := table.NewPartition(m.nextPartID, tm.Schema, tm.Scheme,
			maxBytes(lo, e.Low), minBytes(hi, e.High), dst.Deps())
		dstPart.AdoptOnly = true
		dst.Parts[dstPart.ID] = dstPart
		for {
			if err := migrationAlive(e.Owner, dst); err != nil {
				return err
			}
			// Pick the next mini-partition fully inside [lo, hi).
			var target *table.SegHandle
			for _, h := range srcPart.Segments() {
				inLo := lo == nil || bytes.Compare(h.Low, lo) >= 0
				inHi := hi == nil || (h.High != nil && bytes.Compare(h.High, hi) <= 0)
				if inLo && inHi {
					target = h
					break
				}
			}
			if target == nil {
				break
			}
			// Re-route: earlier moves already re-split the partition table.
			cur, err := tm.route(target.Low)
			if err != nil {
				return err
			}
			if cur.Part != srcPart {
				return fmt.Errorf("cluster: entry for %x no longer points at source partition", target.Low)
			}
			if err := m.moveSegment(p, tm, cur, target, dstPart, dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// moveSegment transfers one mini-partition from e.Part to a partition on
// dst, implementing the paper's movement protocol:
//
//  1. read-lock the mini-partition on the source, waiting for writers,
//  2. mark the move on the master (dual pointers), replicate it,
//  3. checkpoint + flush so no UNDO/REDO must ship,
//  4. copy the segment to the target node,
//  5. adopt it into the target's partition tree, update the master,
//  6. unlock; the source keeps a ghost until old readers drain.
//
// The lock precedes the dual-pointer install: replicating the install to
// master followers blocks, and a writer racing that window could
// overflow-split the mini-partition after the master captured its bounds,
// stranding the split-off tail at the source behind a dual pointer that is
// later dropped.
func (m *Master) moveSegment(p *sim.Proc, tm *TableMeta, e *RangeEntry, h *table.SegHandle, dstPart *table.Partition, dst *DataNode) error {
	src := e.Part
	srcOwner := e.Owner

	// (1) Read lock on the mini-partition: waits for in-flight writers and
	// holds off new ones (they queue, then get redirected on retry). Taken
	// before the master entry is touched, so a lock failure needs no
	// unwinding.
	mover := m.BeginSystem(p, m.MoveMode, srcOwner)
	lockName := src.MovementLockName()
	if err := srcOwner.Locks.Lock(p, mover.Txn, lockName, cc.LockR, 30*time.Second); err != nil {
		srcOwner.Locks.ReleaseAll(mover.Txn)
		mover.Abort(p)
		return err
	}
	if err := migrationAlive(srcOwner, dst); err != nil {
		srcOwner.Locks.ReleaseAll(mover.Txn)
		mover.Abort(p)
		return err
	}

	// (2) Master: split the entry so the moving range has dual pointers.
	// The segment's bounds are read under the lock — no concurrent split
	// can narrow them between capture and detach.
	moved := &RangeEntry{Low: h.Low, High: h.High, Part: dstPart, Owner: dst, OldPart: src, OldOwner: srcOwner}
	var news []*RangeEntry
	if e.Low == nil && h.Low != nil || (e.Low != nil && h.Low != nil && bytes.Compare(e.Low, h.Low) < 0) {
		news = append(news, &RangeEntry{Low: e.Low, High: h.Low, Part: src, Owner: srcOwner})
	} else if e.Low == nil && h.Low == nil {
		// moving the first segment of an unbounded-low partition
	}
	news = append(news, moved)
	if h.High != nil && (e.High == nil || bytes.Compare(h.High, e.High) < 0) {
		news = append(news, &RangeEntry{Low: h.High, High: e.High, Part: src, Owner: srcOwner})
	}
	tm.replaceEntry(e, news...)
	e = moved

	// abortMove unwinds a failed move before the target took over: the
	// master entry reverts to the source (which still holds the records),
	// the movement lock is released, and any half-shipped clone is dropped.
	// After a source power failure the entry still reverts to the source:
	// its restart rebuilds the records there. The revert re-resolves the
	// partition through the node's live registry — a mover parked in a long
	// lock wait can outlive a full source crash+restart cycle, and writing
	// the captured pre-crash object back would resurrect a dead pointer the
	// restart's rebind already replaced.
	abortMove := func(mover *Session, clone *storage.Segment, cause error) error {
		cur := src
		if np, ok := srcOwner.Parts[src.ID]; ok {
			cur = np
		}
		moved.Part = cur
		moved.Owner = srcOwner
		moved.OldPart = nil
		moved.OldOwner = nil
		if clone != nil {
			m.cluster.dropSegment(clone.ID)
		}
		srcOwner.Locks.ReleaseAll(mover.Txn)
		mover.Abort(p)
		// Replicate the revert unforced; losing it resurrects read-safe
		// dual pointers, nothing worse.
		if m.rep != nil && !m.down {
			m.shipTable(p, tm.Schema.Name, false)
		}
		return cause
	}

	// Replicate the dual-pointer install. Failing here unwinds the move —
	// the suspended dual pointers would be read-safe (the adopt-only
	// destination answers ErrNotOwned until a segment arrives and every
	// access falls back to the source), but the held movement lock must
	// not outlive the move attempt.
	if !m.shipTable(p, tm.Schema.Name, true) {
		return abortMove(mover, nil, ErrMasterDown{})
	}
	if err := migrationAlive(srcOwner, dst); err != nil {
		return abortMove(mover, nil, err)
	}

	// (3) Movement acts as a checkpoint: commit records are durable and
	// the segment's pages are flushed, so "additional logging is not
	// required".
	srcOwner.Log.Checkpoint(p)
	srcOwner.Log.Append(wal.Record{Txn: mover.Txn.ID, Type: wal.RecSegMove, Part: uint64(src.ID)})
	if err := srcOwner.Pool.FlushSegment(p, h.Seg.ID); err != nil {
		return abortMove(mover, nil, err)
	}
	if err := migrationAlive(srcOwner, dst); err != nil {
		return abortMove(mover, nil, err)
	}

	// (4) Ship the segment: sequential read, wire, sequential write.
	home, err := m.cluster.home(h.Seg.ID)
	if err != nil {
		return abortMove(mover, nil, err)
	}
	size := h.Seg.Bytes()
	home.disk.ReadSeq(p, size)
	m.cluster.Net.Transfer(p, srcOwner.ID, dst.ID, size)
	if err := migrationAlive(srcOwner, dst); err != nil {
		return abortMove(mover, nil, err)
	}
	clone := h.Seg.Clone(m.cluster.NextSegID())
	dst.AdoptShippedSegment(clone)
	destHome, _ := m.cluster.home(clone.ID)
	destHome.disk.WriteSeq(p, size)
	if err := migrationAlive(srcOwner, dst); err != nil {
		return abortMove(mover, clone, err)
	}

	// (5) Target adopts the mini-partition; the master entry already
	// points at it, so new transactions route there now. The adopted image
	// becomes part of the target's recovery base (the flush in step 3 made
	// it consistent), mirroring the checkpoint role movement plays for
	// logging. Adoption, base capture, and the source-side detach below are
	// free of blocking calls, so no failure can interleave with them.
	if _, err := dstPart.AdoptSegment(clone); err != nil {
		return abortMove(mover, clone, err)
	}
	captureAdoptedBase(p, dst, dstPart.ID, clone)

	// (6) Source detaches the segment but keeps it as a ghost for old
	// readers; unlock so queued writers retry (and get redirected). The
	// adoption above was the point of no return: on a detach failure the
	// move rolls FORWARD — routing stays at the destination (which holds
	// the records and has them in its recovery base), the source keeps its
	// now-shadowed copy behind the old pointer, and the error surfaces
	// without reverting the entry.
	moveTS := m.Oracle.Watermark() // snapshots begun before now may still read the ghost
	horizon := m.Oracle.Begin(cc.SnapshotIsolation)
	m.Oracle.Abort(horizon)
	if err := src.DetachSegment(h, horizon.Begin); err != nil {
		srcOwner.Locks.ReleaseAll(mover.Txn)
		mover.Abort(p)
		return err
	}
	_ = moveTS
	srcOwner.Locks.ReleaseAll(mover.Txn)
	m.Oracle.Abort(mover.Txn)

	// Replicate the adopted history before the dual pointer can drop: the
	// destination now owns the range, so a later disk loss there must be
	// recoverable from its replica set — force the adopted base records
	// durable locally, then ship them to a replica. A destination failure
	// here still rolls the move forward: its restart repairs the base log
	// and resyncs its followers.
	if m.cluster.drep != nil && !dst.Down() {
		if last := dst.Log.TailLSN() - 1; last > dst.Log.FlushedLSN() {
			dst.Log.Flush(p, last)
		}
		if !dst.Down() {
			m.cluster.forceShip(p, dst)
		}
	}

	// Drop the ghost and the dual pointer once old snapshots drained; the
	// old log records for the moved range become obsolete with the
	// checkpoint already taken.
	segID := h.Seg.ID
	m.cluster.Env.Spawn("ghost-drop", func(gp *sim.Proc) {
		// See old-pointer-cleanup: an idle oracle pins the watermark at the
		// horizon, and no future snapshot can need the ghost.
		for m.Oracle.ActiveCount() > 0 && m.Oracle.Watermark() <= horizon.Begin {
			gp.Sleep(time.Second)
		}
		e.OldPart = nil
		e.OldOwner = nil
		if m.rep != nil {
			m.clearOldPointer(tm.Schema.Name, e.Low, e.High)
			if !m.down {
				m.shipTable(gp, tm.Schema.Name, false)
			}
		}
		src.DropGhost(gp, segID)
	})
	// The adopted segment is at the destination and the source keeps only a
	// ghost: replicate the post-adoption state (unforced; a failover that
	// misses it re-serves through the step-1 dual pointers, whose fallback
	// still answers every key).
	if m.rep != nil && !m.down {
		m.shipTable(p, tm.Schema.Name, false)
	}
	return nil
}

func maxBytes(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) >= 0 {
		return a
	}
	return b
}

func minBytes(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) <= 0 {
		return a
	}
	return b
}

// nextKey returns the immediate successor of k in byte order.
func nextKey(k []byte) []byte {
	out := make([]byte, len(k)+1)
	copy(out, k)
	return out
}

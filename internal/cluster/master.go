package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// Master is the cluster coordinator (Sect. 3.2): catalog, global partition
// table, timestamp oracle, and client endpoint. It runs on node 0, which
// also serves data ("the smallest configuration of WattDB is a single
// server hosting all DBMS functions").
type Master struct {
	cluster *Cluster
	Node    *DataNode
	Oracle  *cc.Oracle

	tables     map[string]*TableMeta
	nextPartID table.PartID

	// decisions holds the coordinator's commit verdicts for distributed
	// transactions whose participants may still be in doubt (presumed
	// abort: only commit decisions are recorded; an unknown transaction is
	// aborted). An entry is forgotten once every participant has a durable
	// commit record or has resolved its branch after a restart. Like the
	// catalog and the oracle, the map is modeled as stable metadata — the
	// decision record appended to the master's log prices the force.
	decisions map[cc.TxnID]*txnDecision

	// MoveMode is the concurrency control mode used by record-movement
	// system transactions (Fig. 3 compares both).
	MoveMode cc.Mode

	// Replication state (nil: the legacy stable-metadata master). See
	// replication.go.
	rep        *masterRep
	down       bool          // leader power-failed, no successor seated yet
	epoch      uint64        // bumped on every fence and every election
	graceUntil time.Duration // presumed-abort grace deadline after election
	failovers  int
	leaseChunk int
	// schemas remembers every schema ever created: replicated snapshots
	// carry table names, not schema definitions, and a new leader
	// reconstructs TableMeta objects from this registry.
	schemas map[string]*table.Schema
}

// txnDecision is one remembered commit verdict: the commit timestamp and
// the participants whose commit records are not yet known durable.
type txnDecision struct {
	ts          cc.Timestamp
	outstanding map[int]bool // node IDs still owing a durable commit record
}

// TableMeta is the master's view of one table.
type TableMeta struct {
	Schema  *table.Schema
	Scheme  table.Scheme
	entries []*RangeEntry
	// replicas, when non-nil, marks a read-only replicated table (e.g.
	// TPC-C ITEM): every node holds a full copy and reads go to the local
	// one.
	replicas map[*DataNode]*table.Partition
}

// Replicated reports whether the table is a read-only replicated table.
func (tm *TableMeta) Replicated() bool { return tm.replicas != nil }

// Replica returns the node-local copy of a replicated table.
func (tm *TableMeta) Replica(n *DataNode) *table.Partition { return tm.replicas[n] }

// CreateReplicatedTable registers a read-only table fully copied to every
// node (reads are always node-local; writes are rejected by sessions).
func (m *Master) CreateReplicatedTable(schema *table.Schema, nodes []*DataNode) (*TableMeta, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if _, dup := m.tables[schema.Name]; dup {
		return nil, fmt.Errorf("cluster: table %s exists", schema.Name)
	}
	tm := &TableMeta{Schema: schema, Scheme: table.Physiological, replicas: map[*DataNode]*table.Partition{}}
	for _, n := range nodes {
		m.nextPartID++
		pt := table.NewPartition(m.nextPartID, schema, table.Physiological, nil, nil, n.Deps())
		pt.Replica = true
		n.Parts[pt.ID] = pt
		tm.replicas[n] = pt
	}
	m.tables[schema.Name] = tm
	m.schemas[schema.Name] = schema
	m.shipTable(nil, schema.Name, true)
	return tm, nil
}

// BulkLoadReplicated feeds the same sorted stream into every replica. The
// stream function is called once per replica, so it must be restartable.
func (m *Master) BulkLoadReplicated(p *sim.Proc, tableName string, stream func() func() (key, payload []byte, ok bool)) error {
	tm, err := m.Table(tableName)
	if err != nil {
		return err
	}
	if tm.replicas == nil {
		return fmt.Errorf("cluster: table %s is not replicated", tableName)
	}
	// Deterministic node order: loading allocates segment IDs.
	nodes := make([]*DataNode, 0, len(tm.replicas))
	for n := range tm.replicas {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		pt := tm.replicas[n]
		owner := n
		next := stream()
		err := pt.BulkLoad(p, 0.7, func() ([]byte, []byte, bool) {
			k, v, ok := next()
			if !ok {
				return nil, nil, false
			}
			lv := table.EncodeLoadValue(1, v)
			owner.addBase(pt.ID, k, lv)
			return k, lv, true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RangeEntry maps a primary-key range to its owning partition. During
// migration both the new and the old location are kept ("the master keeps
// two pointers, indicating both the new and old partition location, and
// queries are advised to visit both", Sect. 4.3).
type RangeEntry struct {
	Low, High []byte // High exclusive; nil = unbounded
	Part      *table.Partition
	Owner     *DataNode
	OldPart   *table.Partition
	OldOwner  *DataNode
	// MovedBelow is the logical-migration progress boundary: keys below it
	// have moved to the new location, keys at or above still live at the
	// old one. nil means the boundary does not apply (move complete, or a
	// segment-wise move where ErrNotOwned drives the fallback).
	MovedBelow []byte
}

func (e *RangeEntry) contains(key []byte) bool {
	if bytes.Compare(key, e.Low) < 0 && e.Low != nil {
		return false
	}
	return e.High == nil || bytes.Compare(key, e.High) < 0
}

func newMaster(c *Cluster) *Master {
	return &Master{
		cluster:    c,
		Node:       c.Nodes[0],
		Oracle:     cc.NewOracle(),
		tables:     make(map[string]*TableMeta),
		decisions:  make(map[cc.TxnID]*txnDecision),
		leaseChunk: defaultLeaseChunk,
		schemas:    make(map[string]*table.Schema),
	}
}

// recordDecision durably records the coordinator's commit verdict for a
// distributed transaction before any participant installs: a decision
// record is forced to the master's log and the verdict is remembered for
// in-doubt resolution. From this moment the transaction commits everywhere
// — a participant crash leaves a branch that RestartNode rolls forward.
//
// Under replication the decision must also reach a follower before any
// participant is acknowledged, and the transaction is already past its
// commit point (readers may have seen its versions), so there is no abort
// path: the session blocks here, retrying — across a leader failover if
// need be — until some leader holds the decision replicated. The map entry
// is installed before the first attempt (a participant restarting
// mid-replication must be told commit, which is safe exactly because this
// loop guarantees the verdict eventually replicates) and re-installed after
// (a failover during the loop rebuilt the map without it).
func (m *Master) recordDecision(p *sim.Proc, txn *cc.Txn, commitTS cc.Timestamp, participants []*DataNode) {
	out := make(map[int]bool, len(participants))
	nodes := make([]int, 0, len(participants))
	for _, n := range participants {
		out[n.ID] = true
		nodes = append(nodes, n.ID)
	}
	sort.Ints(nodes)
	d := &txnDecision{ts: commitTS, outstanding: out}
	if m.rep == nil {
		lsn := m.Node.Log.Append(wal.Record{Txn: txn.ID, Type: wal.RecDecision, TS: commitTS})
		m.Node.Log.Flush(p, lsn)
		m.decisions[txn.ID] = d
		return
	}
	rec := wal.Record{Txn: txn.ID, Type: wal.RecDecision, TS: commitTS,
		After: wal.EncodeMasterParticipants(nil, nodes)}
	m.decisions[txn.ID] = d
	for {
		if !m.down && !m.Node.Down() && m.logMaster(p, rec, true) {
			break
		}
		p.Sleep(decisionRetryDelay)
	}
	// Elections during the loop keep this very object in the map (electFrom
	// never replaces a known decision), so acks that landed meanwhile are
	// reflected in d.outstanding. Re-install only while branches remain —
	// a fully drained decision must stay forgotten.
	if len(d.outstanding) > 0 {
		m.decisions[txn.ID] = d
	}
}

// ackDecision notes that node holds a durable commit record (or has rolled
// its branch forward after a restart) for the decided transaction; once no
// participant is outstanding the verdict is forgotten (presumed abort lets
// the coordinator drop resolved transactions).
func (m *Master) ackDecision(id cc.TxnID, node int) {
	d, ok := m.decisions[id]
	if !ok {
		return
	}
	delete(d.outstanding, node)
	if len(d.outstanding) == 0 {
		delete(m.decisions, id)
	}
	// Replicate the ack unforced: the bytes ride along with the followers'
	// next group commit. A lost ack merely resurrects the decision entry at
	// the next election, and reconciliation re-drains it from the
	// participant's durable log. The !down guard keeps election replay
	// (electFrom applies RecMAck through this path) from re-logging.
	if m.rep != nil && !m.down {
		m.logMaster(nil, wal.Record{Txn: id, Type: wal.RecMAck,
			After: wal.EncodeMasterAck(nil, node)}, false)
	}
}

// InDoubtDecision answers a restarting participant's query for a prepared
// but locally undecided transaction: ok=true with the commit timestamp when
// the coordinator decided commit, ok=false otherwise — the participant must
// presume abort. The caller acknowledges resolution via AckInDoubt once its
// branch is durably closed.
func (m *Master) InDoubtDecision(id cc.TxnID) (cc.Timestamp, bool) {
	if d, ok := m.decisions[id]; ok {
		return d.ts, true
	}
	return 0, false
}

// AckInDoubt closes a restarting participant's branch of a decided
// transaction (see ackDecision).
func (m *Master) AckInDoubt(id cc.TxnID, node int) { m.ackDecision(id, node) }

// InDoubtDecisionCount reports the number of remembered commit verdicts
// (diagnostics and tests).
func (m *Master) InDoubtDecisionCount() int { return len(m.decisions) }

// OutstandingDecisions describes every remembered commit verdict and the
// participants still charged with it (diagnostics: a non-empty result after
// a full drain means an ack path leaked).
func (m *Master) OutstandingDecisions() []string {
	ids := make([]cc.TxnID, 0, len(m.decisions))
	for id := range m.decisions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		d := m.decisions[id]
		nodes := make([]int, 0, len(d.outstanding))
		for n := range d.outstanding {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		out = append(out, fmt.Sprintf("txn=%d ts=%d outstanding=%v", id, d.ts, nodes))
	}
	return out
}

// RangeSpec declares one initial partition of a table.
type RangeSpec struct {
	Low, High []byte
	Owner     *DataNode
}

// CreateTable registers a table split into the given ranges. Ranges must be
// sorted and contiguous.
func (m *Master) CreateTable(schema *table.Schema, scheme table.Scheme, ranges []RangeSpec) (*TableMeta, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if _, dup := m.tables[schema.Name]; dup {
		return nil, fmt.Errorf("cluster: table %s exists", schema.Name)
	}
	if len(ranges) == 0 {
		return nil, fmt.Errorf("cluster: table %s needs at least one range", schema.Name)
	}
	tm := &TableMeta{Schema: schema, Scheme: scheme}
	for i, r := range ranges {
		if i > 0 && !bytes.Equal(ranges[i-1].High, r.Low) {
			return nil, fmt.Errorf("cluster: ranges of %s not contiguous at %d", schema.Name, i)
		}
		m.nextPartID++
		pt := table.NewPartition(m.nextPartID, schema, scheme, r.Low, r.High, r.Owner.Deps())
		r.Owner.Parts[pt.ID] = pt
		tm.entries = append(tm.entries, &RangeEntry{Low: r.Low, High: r.High, Part: pt, Owner: r.Owner})
	}
	m.tables[schema.Name] = tm
	m.schemas[schema.Name] = schema
	m.shipTable(nil, schema.Name, true)
	return tm, nil
}

// Table returns a table's metadata.
func (m *Master) Table(name string) (*TableMeta, error) {
	tm, ok := m.tables[name]
	if !ok {
		return nil, fmt.Errorf("cluster: no table %s", name)
	}
	return tm, nil
}

// Entries returns the partition table of a table (diagnostics, migration).
func (tm *TableMeta) Entries() []*RangeEntry { return tm.entries }

// Route returns the entry covering key.
func (tm *TableMeta) Route(key []byte) (*RangeEntry, error) { return tm.route(key) }

// Cluster returns the cluster the master coordinates.
func (m *Master) Cluster() *Cluster { return m.cluster }

// route finds the entry covering key.
func (tm *TableMeta) route(key []byte) (*RangeEntry, error) {
	i := sort.Search(len(tm.entries), func(i int) bool {
		return bytes.Compare(tm.entries[i].Low, key) > 0
	})
	if i > 0 {
		i--
	}
	e := tm.entries[i]
	if !e.contains(key) {
		return nil, fmt.Errorf("cluster: key %x outside table %s ranges", key, tm.Schema.Name)
	}
	return e, nil
}

// replaceEntry substitutes old with news (splitting a range during
// migration), keeping order. The slice is rebuilt copy-on-write: sessions
// parked mid-scan hold the old slice header, and splicing the backing
// array in place would shift entries under them — duplicating or skipping
// ranges when they resume. Their stale snapshot stays internally
// consistent (the replaced entry keeps serving reads at their older
// timestamps through ghosts and dual pointers).
func (tm *TableMeta) replaceEntry(old *RangeEntry, news ...*RangeEntry) {
	for i, e := range tm.entries {
		if e == old {
			out := make([]*RangeEntry, 0, len(tm.entries)+len(news)-1)
			out = append(out, tm.entries[:i]...)
			out = append(out, news...)
			out = append(out, tm.entries[i+1:]...)
			tm.entries = out
			return
		}
	}
}

// BulkLoad feeds a strictly ascending key stream into a table's partitions
// (experiment setup; charges no simulation time).
func (m *Master) BulkLoad(p *sim.Proc, tableName string, next func() (key, payload []byte, ok bool)) error {
	tm, err := m.Table(tableName)
	if err != nil {
		return err
	}
	var pendingK, pendingV []byte
	exhausted := false
	pull := func() ([]byte, []byte, bool) {
		if pendingK != nil {
			k, v := pendingK, pendingV
			pendingK, pendingV = nil, nil
			return k, v, true
		}
		if exhausted {
			return nil, nil, false
		}
		k, v, ok := next()
		if !ok {
			exhausted = true
		}
		return k, v, ok
	}
	for _, e := range tm.entries {
		e := e
		err := e.Part.BulkLoad(p, 0.7, func() ([]byte, []byte, bool) {
			k, v, ok := pull()
			if !ok {
				return nil, nil, false
			}
			if e.High != nil && bytes.Compare(k, e.High) >= 0 {
				pendingK, pendingV = k, v // belongs to a later range
				return nil, nil, false
			}
			lv := table.EncodeLoadValue(1, v)
			// The loaded image doubles as the partition's recovery base:
			// bulk loading bypasses the WAL, so a restart cannot re-derive
			// these records from log replay alone.
			e.Owner.addBase(e.Part.ID, k, lv)
			return k, lv, true
		})
		if err != nil {
			return err
		}
	}
	if pendingK != nil || !exhausted {
		return fmt.Errorf("cluster: bulk load rows beyond table %s ranges", tableName)
	}
	return nil
}

// TableOwners lists the distinct nodes owning live partitions of the table.
func (tm *TableMeta) TableOwners() []*DataNode {
	seen := map[*DataNode]bool{}
	var out []*DataNode
	for _, e := range tm.entries {
		if !seen[e.Owner] {
			seen[e.Owner] = true
			out = append(out, e.Owner)
		}
	}
	return out
}

// RecordCount sums visible records across a table's partitions (testing).
func (m *Master) RecordCount(p *sim.Proc, tableName string) (int, error) {
	tm, err := m.Table(tableName)
	if err != nil {
		return 0, err
	}
	total := 0
	counted := map[*table.Partition]bool{}
	for _, e := range tm.entries {
		if counted[e.Part] {
			continue
		}
		counted[e.Part] = true
		n, err := e.Part.RecordCount(p)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// appendCommitRecord writes and flushes a commit record on node's log. It
// returns the record's LSN and whether it is actually durable. Durability is
// judged by the flushed boundary alone, not by whether the node is still up:
// a power failure keeps everything at or below FlushedLSN on the platter, so
// a record the group commit covered before the cut WILL be replayed by
// restart recovery — reporting it non-durable would acknowledge an abort for
// a transaction that then resurfaces. Only a record the crash caught above
// the boundary is genuinely gone (restart rolls its transaction back).
func appendCommitRecord(p *sim.Proc, node *DataNode, txn *cc.Txn) (uint64, bool) {
	lsn := node.Log.Append(wal.Record{Txn: txn.ID, Type: wal.RecCommit})
	node.Log.Flush(p, lsn)
	return lsn, node.Log.FlushedLSN() >= lsn
}

// rebind re-points every catalog reference at a restarted node's recovered
// partitions (keyed by the dead partition objects they replace). Pure
// pointer swaps: no simulation time passes, so routing flips atomically.
func (m *Master) rebind(replaced map[*table.Partition]*table.Partition) {
	for _, tm := range m.tables {
		for _, e := range tm.entries {
			if np, ok := replaced[e.Part]; ok {
				e.Part = np
			}
			if np, ok := replaced[e.OldPart]; ok {
				e.OldPart = np
			}
		}
		for node, pt := range tm.replicas {
			if np, ok := replaced[pt]; ok {
				tm.replicas[node] = np
			}
		}
	}
}

package cluster

import (
	"time"

	"wattdb/internal/buffer"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/wal"
)

// Policy holds the threshold rules of Sect. 3.4: CPU utilisation above the
// upper bound triggers scale-out, below the lower bound scale-in.
type Policy struct {
	HighCPU float64 // paper: 0.8
	LowCPU  float64
	Enabled bool
	// OnScaleOut/OnScaleIn, when set, perform the data redistribution for
	// a policy decision (the experiment harness wires these to
	// MigrateRange calls appropriate for its tables).
	OnScaleOut func(p *sim.Proc, newNode *DataNode)
	OnScaleIn  func(p *sim.Proc, victim *DataNode)
}

// DefaultPolicy returns the paper's thresholds.
func DefaultPolicy() *Policy { return &Policy{HighCPU: 0.8, LowCPU: 0.25} }

// Monitor collects per-node utilisation every interval, as the nodes'
// reports to the master ("the nodes send their monitoring data every few
// seconds to the master node").
type Monitor struct {
	master   *Master
	interval time.Duration
	policy   *Policy

	lastUtil   map[int]float64
	inDecision bool

	// OnSample, when set, receives every collected sample.
	OnSample func(at time.Duration, util map[int]float64)
}

// StartMonitor spawns the monitoring process on the master.
func (m *Master) StartMonitor(interval time.Duration, policy *Policy) *Monitor {
	mon := &Monitor{master: m, interval: interval, policy: policy, lastUtil: map[int]float64{}}
	m.cluster.Env.Spawn("monitor", func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			mon.tick(p)
		}
	})
	return mon
}

func (mon *Monitor) tick(p *sim.Proc) {
	m := mon.master
	util := make(map[int]float64)
	for _, n := range m.cluster.Nodes {
		if n.HW.State() != hw.PowerActive {
			continue
		}
		// The report message itself crosses the network.
		if n != m.Node {
			m.cluster.Net.Transfer(p, n.ID, m.Node.ID, 128)
		}
		util[n.ID] = n.HW.CPUUtilization()
	}
	mon.lastUtil = util
	if mon.OnSample != nil {
		mon.OnSample(p.Now(), util)
	}
	if mon.policy == nil || !mon.policy.Enabled || mon.inDecision {
		return
	}
	var sum float64
	for _, u := range util {
		sum += u
	}
	avg := sum / float64(len(util))
	switch {
	case avg > mon.policy.HighCPU:
		if standby := m.cluster.StandbyNode(); standby != nil {
			mon.inDecision = true
			m.cluster.Env.Spawn("scale-out", func(sp *sim.Proc) {
				defer func() { mon.inDecision = false }()
				standby.PowerOn(sp)
				if mon.policy.OnScaleOut != nil {
					mon.policy.OnScaleOut(sp, standby)
				}
			})
		}
	case avg < mon.policy.LowCPU && len(util) > 1:
		victim := mon.idlestNode(util)
		if victim != nil && victim != m.Node {
			mon.inDecision = true
			m.cluster.Env.Spawn("scale-in", func(sp *sim.Proc) {
				defer func() { mon.inDecision = false }()
				if mon.policy.OnScaleIn != nil {
					mon.policy.OnScaleIn(sp, victim)
				}
				victim.PowerOff(sp) // fails (and is skipped) if data remains
			})
		}
	}
}

func (mon *Monitor) idlestNode(util map[int]float64) *DataNode {
	var victim *DataNode
	best := 2.0
	for id, u := range util {
		n := mon.master.cluster.Nodes[id]
		if n == mon.master.Node {
			continue
		}
		if u < best {
			best = u
			victim = n
		}
	}
	return victim
}

// LastUtil returns the most recent utilisation report.
func (mon *Monitor) LastUtil() map[int]float64 { return mon.lastUtil }

// StandbyNode returns a powered-off node, or nil.
func (c *Cluster) StandbyNode() *DataNode {
	for _, n := range c.Nodes {
		if n.HW.State() == hw.PowerOff {
			return n
		}
	}
	return nil
}

// ActiveNodes returns the currently active nodes.
func (c *Cluster) ActiveNodes() []*DataNode {
	var out []*DataNode
	for _, n := range c.Nodes {
		if n.HW.State() == hw.PowerActive {
			out = append(out, n)
		}
	}
	return out
}

// AttachHelper wires helper to relieve busy during rebalancing (Sect. 5.2):
// busy's log is shipped to the helper's disk and the helper's DRAM becomes
// an rDMA page cache for busy's evictions.
func (m *Master) AttachHelper(p *sim.Proc, busy, helper *DataNode) {
	busy.Log.Flush(p, busy.Log.TailLSN()-1)
	busy.shippedFrom = wal.DiskDevice{Disk: busy.HW.LogDisk()}
	busy.Log.SetDevice(wal.ShippedDevice{
		Net:  m.cluster.Net,
		From: busy.ID,
		To:   helper.ID,
		Disk: helper.HW.LogDisk(),
	})
	remote := buffer.NewRemote(m.cluster.Net, busy.ID, helper.ID, m.cluster.Cal.BufferFrames)
	busy.Pool.AttachRemote(remote)
}

// DetachHelper restores busy's local logging and drops the remote cache.
func (m *Master) DetachHelper(p *sim.Proc, busy *DataNode) {
	busy.Log.Flush(p, busy.Log.TailLSN()-1)
	if busy.shippedFrom != nil {
		busy.Log.SetDevice(busy.shippedFrom)
		busy.shippedFrom = nil
	}
	busy.Pool.AttachRemote(nil)
}

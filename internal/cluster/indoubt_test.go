package cluster

import (
	"fmt"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// indoubtWorld is one commit-window crash scenario: a three-node cluster
// (node 0 hosts the master and no data) with a kv table split between node 1
// and node 2, and one distributed transaction updating a key on each.
type indoubtWorld struct {
	env    *sim.Env
	c      *Cluster
	n1, n2 *DataNode
}

const (
	idKeys   = 100
	idLeft   = int64(10) // key on node 1's half
	idRight  = int64(90) // key on node 2's half
	idOldVal = "val-%06d"
)

func newIndoubtWorld(t *testing.T) *indoubtWorld {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.Nodes = 3
	c := New(env, cfg)
	for _, node := range c.Nodes[1:] {
		node.HW.ForceActive()
	}
	mid := ik(int64(idKeys / 2))
	_, err := c.Master.CreateTable(kvSchema(), table.Physiological, []RangeSpec{
		{Low: nil, High: mid, Owner: c.Nodes[1]},
		{Low: mid, High: nil, Owner: c.Nodes[2]},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("load", func(p *sim.Proc) {
		i := 0
		err := c.Master.BulkLoad(p, "kv", func() ([]byte, []byte, bool) {
			if i >= idKeys {
				return nil, nil, false
			}
			row := table.Row{int64(i), fmt.Sprintf(idOldVal, i)}
			key, _ := kvSchema().Key(row)
			payload, _ := kvSchema().EncodeRow(row)
			i++
			return key, payload, true
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return &indoubtWorld{env: env, c: c, n1: c.Nodes[1], n2: c.Nodes[2]}
}

// runCommit executes the distributed update (both keys -> "new") starting at
// a fixed virtual time and returns whether it was acknowledged.
func (w *indoubtWorld) runCommit(t *testing.T) (acked bool) {
	t.Helper()
	w.env.Spawn("commit", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // fixed start so crash times align across runs
		s := w.c.Master.Begin(p, cc.SnapshotIsolation, w.n1)
		p1, _ := kvSchema().EncodeRow(table.Row{idLeft, "new"})
		p2, _ := kvSchema().EncodeRow(table.Row{idRight, "new"})
		if err := s.Put(p, "kv", ik(idLeft), p1); err != nil {
			t.Errorf("put left: %v", err)
			return
		}
		if err := s.Put(p, "kv", ik(idRight), p2); err != nil {
			t.Errorf("put right: %v", err)
			return
		}
		if err := s.Commit(p); err != nil {
			s.Abort(p)
			return
		}
		acked = true
	})
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
	return acked
}

// commitWindow measures the virtual-time span of the distributed commit
// (from the last Put returning to Commit returning) on an undisturbed run.
// The simulation is deterministic, so the same span holds for every
// identically prepared cluster.
func commitWindow(t *testing.T) (start, end time.Duration) {
	t.Helper()
	w := newIndoubtWorld(t)
	defer w.env.Close()
	w.env.Spawn("measure", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		s := w.c.Master.Begin(p, cc.SnapshotIsolation, w.n1)
		p1, _ := kvSchema().EncodeRow(table.Row{idLeft, "new"})
		p2, _ := kvSchema().EncodeRow(table.Row{idRight, "new"})
		if err := s.Put(p, "kv", ik(idLeft), p1); err != nil {
			t.Errorf("put left: %v", err)
			return
		}
		if err := s.Put(p, "kv", ik(idRight), p2); err != nil {
			t.Errorf("put right: %v", err)
			return
		}
		start = p.Now()
		if err := s.Commit(p); err != nil {
			t.Errorf("undisturbed commit failed: %v", err)
		}
		end = p.Now()
	})
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
	if end <= start {
		t.Fatalf("degenerate commit window [%v, %v]", start, end)
	}
	return start, end
}

// hasInDoubtTrace reports whether the node's durable log holds a prepare
// vote for some transaction with no commit or abort record — the state the
// restart must resolve against the coordinator. The trace is decoded from
// the log's physical bytes, like the restart's own analysis pass.
func hasInDoubtTrace(n *DataNode) bool {
	prepared := map[cc.TxnID]bool{}
	decided := map[cc.TxnID]bool{}
	it := n.Log.Iter()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		switch r.Type {
		case wal.RecPrepare:
			prepared[r.Txn] = true
		case wal.RecCommit, wal.RecAbort:
			decided[r.Txn] = true
		}
	}
	for id := range prepared {
		if !decided[id] {
			return true
		}
	}
	return false
}

// TestCommitCrashAnywhere sweeps a power failure of each participant across
// the entire distributed-commit window — prepare forces, decision, installs,
// commit-record forces — and checks the outcome of every landing point:
// an acknowledged commit is fully durable on both nodes after restart, an
// unacknowledged one leaves no trace. The sweep must observe an in-doubt
// branch resolved in both directions (roll-forward of a decided commit and
// presumed-abort rollback of an undecided prepare).
func TestCommitCrashAnywhere(t *testing.T) {
	start, end := commitWindow(t)
	span := end - start
	const steps = 30
	rollForward, rollBack, ackedRuns, abortedRuns := 0, 0, 0, 0

	for _, victim := range []int{1, 2} {
		for i := 0; i <= steps; i++ {
			crashAt := start + span*time.Duration(i)/steps
			w := newIndoubtWorld(t)
			target := w.c.Nodes[victim]
			other := w.n2
			if victim == 2 {
				other = w.n1
			}
			w.env.After(crashAt, func() { w.c.CrashNode(target) })
			acked := w.runCommit(t)

			if acked {
				ackedRuns++
				if target.Down() {
					rollForward++ // branch left in doubt, must roll forward
				}
			} else {
				abortedRuns++
				// Kill the surviving participant before its abort record is
				// forced: its durable log then holds a prepare vote with no
				// local decision — the presumed-abort direction.
				if !other.Down() {
					w.c.CrashNode(other)
				}
				if hasInDoubtTrace(other) {
					rollBack++
				}
			}
			// Restart everything and verify the end state.
			w.env.Spawn("restart", func(p *sim.Proc) {
				p.Sleep(100 * time.Millisecond)
				for _, n := range w.c.Nodes {
					if n.Down() {
						if _, _, err := w.c.RestartNode(p, n); err != nil {
							t.Errorf("crashAt=%v victim=%d: restart node %d: %v", crashAt, victim, n.ID, err)
						}
					}
				}
				s := w.c.Master.Begin(p, cc.SnapshotIsolation, w.c.Nodes[0])
				for _, k := range []int64{idLeft, idRight} {
					v, ok, err := s.Get(p, "kv", ik(k))
					if err != nil || !ok {
						t.Errorf("crashAt=%v victim=%d: key %d unreadable after restart: %v %v", crashAt, victim, k, ok, err)
						continue
					}
					row, _ := kvSchema().DecodeRow(v)
					want := fmt.Sprintf(idOldVal, k)
					if acked {
						want = "new"
					}
					if row[1].(string) != want {
						t.Errorf("crashAt=%v victim=%d acked=%v: key %d = %q, want %q",
							crashAt, victim, acked, k, row[1], want)
					}
				}
				s.Abort(p)
			})
			if err := w.env.Run(); err != nil {
				t.Fatal(err)
			}
			if n := w.c.Master.InDoubtDecisionCount(); n != 0 {
				t.Errorf("crashAt=%v victim=%d: %d unresolved coordinator decisions after restarts", crashAt, victim, n)
			}
			w.env.Close()
		}
	}
	t.Logf("sweep: %d acked, %d aborted, %d in-doubt roll-forward, %d in-doubt roll-back",
		ackedRuns, abortedRuns, rollForward, rollBack)
	if ackedRuns == 0 || abortedRuns == 0 {
		t.Fatalf("sweep did not cover both outcomes (acked=%d aborted=%d)", ackedRuns, abortedRuns)
	}
	if rollForward == 0 {
		t.Fatal("no crash landed between decision and commit record (in-doubt roll-forward unexercised)")
	}
	if rollBack == 0 {
		t.Fatal("no prepared-but-undecided branch observed (presumed-abort rollback unexercised)")
	}
}

// TestInDoubtRollForward pins the roll-forward direction: a participant
// power-fails after the coordinator's decision is durable but before its own
// commit record is, the commit is acknowledged, and the restart installs the
// branch from its prepare-time log at the decided timestamp.
func TestInDoubtRollForward(t *testing.T) {
	start, end := commitWindow(t)
	// Land just before the end of the window: past the decision, inside the
	// installs / commit-record force of the second participant.
	crashAt := end - (end-start)/20
	w := newIndoubtWorld(t)
	defer w.env.Close()
	w.env.After(crashAt, func() { w.c.CrashNode(w.n2) })
	acked := w.runCommit(t)
	if !acked {
		t.Fatalf("commit at crashAt=%v not acknowledged (window [%v, %v])", crashAt, start, end)
	}
	if !w.n2.Down() {
		t.Skip("crash landed after the participant finished (window shifted); sweep test covers this")
	}
	// The branch is in doubt on durable storage and decided at the master.
	if !hasInDoubtTrace(w.n2) {
		t.Fatal("crashed participant has no prepared-but-undecided trace in its durable log")
	}
	if w.c.Master.InDoubtDecisionCount() == 0 {
		t.Fatal("coordinator forgot the decision while a branch is still in doubt")
	}
	w.env.Spawn("restart", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		if _, _, err := w.c.RestartNode(p, w.n2); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		// Both halves must hold the committed values; old snapshots must not.
		old := w.c.Master.Oracle.Begin(cc.SnapshotIsolation) // begun after commit: sees it
		s := w.c.Master.Begin(p, cc.SnapshotIsolation, w.c.Nodes[0])
		for _, k := range []int64{idLeft, idRight} {
			v, ok, err := s.Get(p, "kv", ik(k))
			if err != nil || !ok {
				t.Errorf("key %d after roll-forward: %v %v", k, ok, err)
				continue
			}
			row, _ := kvSchema().DecodeRow(v)
			if row[1].(string) != "new" {
				t.Errorf("key %d = %q after roll-forward, want %q", k, row[1], "new")
			}
		}
		s.Abort(p)
		w.c.Master.Oracle.Abort(old)
	})
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
	if n := w.c.Master.InDoubtDecisionCount(); n != 0 {
		t.Fatalf("%d coordinator decisions outstanding after resolution", n)
	}
}

// TestInDoubtRollbackPresumedAbort pins the rollback direction: a
// participant holds a durable prepare vote for a transaction the coordinator
// never decided (a later participant failed prepare, so the commit was
// refused), crashes, and its restart must roll the branch back — and close
// it locally so a second restart needs no coordinator either.
func TestInDoubtRollbackPresumedAbort(t *testing.T) {
	start, end := commitWindow(t)
	// Land early in the window: inside the second participant's prepare
	// force, after the first participant's vote is durable.
	crashAt := start + (end-start)/4
	w := newIndoubtWorld(t)
	defer w.env.Close()
	w.env.After(crashAt, func() { w.c.CrashNode(w.n2) })
	acked := w.runCommit(t)
	if acked {
		t.Skip("crash landed after the decision (window shifted); sweep test covers this")
	}
	// node1 voted; its abort record is still volatile. Power-fail it.
	if w.n1.Down() {
		t.Fatal("unexpected: home participant already down")
	}
	w.c.CrashNode(w.n1)
	if !hasInDoubtTrace(w.n1) {
		t.Skip("first participant's vote was not durable yet; sweep test covers this")
	}
	w.env.Spawn("restart", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		for _, n := range []*DataNode{w.n1, w.n2} {
			if n.Down() {
				if _, _, err := w.c.RestartNode(p, n); err != nil {
					t.Errorf("restart node %d: %v", n.ID, err)
				}
			}
		}
		s := w.c.Master.Begin(p, cc.SnapshotIsolation, w.c.Nodes[0])
		for _, k := range []int64{idLeft, idRight} {
			v, ok, err := s.Get(p, "kv", ik(k))
			if err != nil || !ok {
				t.Errorf("key %d after rollback: %v %v", k, ok, err)
				continue
			}
			row, _ := kvSchema().DecodeRow(v)
			if want := fmt.Sprintf(idOldVal, k); row[1].(string) != want {
				t.Errorf("key %d = %q after presumed abort, want %q", k, row[1], want)
			}
		}
		s.Abort(p)
	})
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
	// The resolution was logged locally: the branch is no longer in doubt.
	if hasInDoubtTrace(w.n1) {
		t.Fatal("rollback not closed in the durable log (second restart would query the coordinator again)")
	}
}

package cluster

import (
	"fmt"

	"wattdb/internal/cc"
	"wattdb/internal/exec"
)

// PartitionPlans is the planner helper behind partition-parallel queries: it
// enumerates tableName's range entries and returns one scan subplan per
// entry, placed on the entry's owning node. Each subplan scans exactly its
// entry's [Low, High) bounds — after splits several entries can share one
// backing partition, and the bounds keep parallel workers from double-
// scanning it. wrap, when non-nil, pushes per-partition work (Filter,
// Project) below the exchange edge: it receives the bare scan and the
// owning node and returns the subplan to ship — operators built there
// should charge their CPU on owner.HW, so pushed-down work runs where the
// data lives. Subplans whose owner differs from gather are wrapped in an
// exec.Remote edge pricing the wire bytes into the gathering node.
//
// Replicated tables (e.g. TPC-C ITEM) yield a single local subplan over
// gather's replica — there is nothing to parallelise.
//
// The returned plans bind the current range entries' partitions directly;
// they are snapshots of the placement, not of the routing, so a concurrent
// MigrateRange can move records out from under a subplan. Run
// partition-parallel plans on quiescent placement (experiments, analytics
// windows); the chaos harness's HTAP readers go through Session reads,
// which tolerate migration.
func (m *Master) PartitionPlans(txn *cc.Txn, tableName string, gather *DataNode, vector int, wrap func(scan exec.Operator, owner *DataNode) exec.Operator) ([]exec.Operator, error) {
	tm, err := m.Table(tableName)
	if err != nil {
		return nil, err
	}
	if tm.Replicated() {
		part := tm.Replica(gather)
		if part == nil {
			return nil, fmt.Errorf("cluster: node %d holds no replica of %s", gather.ID, tableName)
		}
		var op exec.Operator = &exec.TableScan{Part: part, Txn: txn, Vector: vector}
		if wrap != nil {
			op = wrap(op, gather)
		}
		return []exec.Operator{op}, nil
	}
	var plans []exec.Operator
	for _, e := range tm.Entries() {
		var op exec.Operator = &exec.TableScan{Part: e.Part, Txn: txn, Lo: e.Low, Hi: e.High, Vector: vector}
		owner := e.Owner
		if wrap != nil {
			op = wrap(op, owner)
		}
		if owner != gather {
			op = &exec.Remote{Child: op, Net: m.cluster.Net, ChildNode: owner.ID, ConsumerNode: gather.ID}
		}
		plans = append(plans, op)
	}
	return plans, nil
}

// ParallelScan builds the full scatter-gather plan for tableName: one
// node-placed subplan per range entry (see PartitionPlans) merged by an
// exec.Exchange gathering on gather.
func (m *Master) ParallelScan(txn *cc.Txn, tableName string, gather *DataNode, vector int, wrap func(scan exec.Operator, owner *DataNode) exec.Operator) (*exec.Exchange, error) {
	plans, err := m.PartitionPlans(txn, tableName, gather, vector, wrap)
	if err != nil {
		return nil, err
	}
	return &exec.Exchange{Plans: plans, Env: m.cluster.Env}, nil
}

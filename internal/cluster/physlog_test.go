package cluster

import (
	"fmt"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// TestCrashTornTailRecovered power-fails a node while its log tail holds
// unflushed bytes, leaving medium damage behind — a torn final frame, and a
// byte-complete frame with a flipped bit. RestartNode must CRC-detect the
// damage, truncate at the last valid record boundary, and recover every
// acknowledged commit; the surviving log must decode cleanly end to end.
func TestCrashTornTailRecovered(t *testing.T) {
	for _, tcase := range []struct {
		name string
		tear int
		flip int
	}{
		{"torn", 13, -1},
		{"bit-flip", 1 << 20, 7}, // tear beyond the frame: keeps it whole, flip corrupts it
	} {
		t.Run(tcase.name, func(t *testing.T) {
			tc := newTestCluster(t, table.Physiological, 2, 400)
			defer tc.env.Close()
			node := tc.c.Nodes[0]
			master := tc.c.Master

			expected := map[int64]string{}
			tc.run(t, func(p *sim.Proc) {
				for i := 0; i < 40; i++ {
					k := int64(i * 3 % 200) // keys on node 0's half
					s := master.Begin(p, cc.SnapshotIsolation, node)
					val := fmt.Sprintf("committed-%d", i)
					payload, _ := kvSchema().EncodeRow(table.Row{k, val})
					if err := s.Put(p, "kv", ik(k), payload); err != nil {
						t.Fatal(err)
					}
					if err := s.Commit(p); err != nil {
						t.Fatal(err)
					}
					expected[k] = val
				}
				// Leave an unflushed record on the log tail (an abort record
				// is appended without a force), then cut power with medium
				// damage in that region.
				s := master.Begin(p, cc.SnapshotIsolation, node)
				payload, _ := kvSchema().EncodeRow(table.Row{int64(7), "UNACKED"})
				if err := s.Put(p, "kv", ik(7), payload); err != nil {
					t.Fatal(err)
				}
				s.Abort(p)
				torn := tc.c.CrashNodeTorn(node, tcase.tear, tcase.flip)
				if torn == 0 {
					t.Fatal("crash left no torn bytes (no unflushed tail?)")
				}

				before := node.Log.TornDiscards
				if _, _, err := tc.c.RestartNode(p, node); err != nil {
					t.Fatalf("restart over damaged log tail: %v", err)
				}
				if node.Log.TornDiscards-before != int64(torn) {
					t.Fatalf("restart discarded %d tail bytes, want %d",
						node.Log.TornDiscards-before, torn)
				}
				if _, err := node.Log.Iter().All(); err != nil {
					t.Fatalf("log not cleanly truncated: %v", err)
				}

				r := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
				for k, want := range expected {
					v, ok, err := r.Get(p, "kv", ik(k))
					if err != nil || !ok {
						t.Fatalf("key %d after torn-tail restart: ok=%v err=%v", k, ok, err)
					}
					row, _ := kvSchema().DecodeRow(v)
					if row[1].(string) != want {
						t.Fatalf("key %d = %q after restart, want %q", k, row[1], want)
					}
				}
				r.Abort(p)
			})
		})
	}
}

// TestSessionSetupAllocs pins the transaction-setup hot path: Begin must
// not allocate the session bookkeeping maps (they are lazy, built on first
// write or lock), so a read-only begin/abort cycle costs exactly the Txn
// and Session objects.
func TestSessionSetupAllocs(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 100)
	defer tc.env.Close()
	master := tc.c.Master
	tc.run(t, func(p *sim.Proc) {
		// Warm up oracle map buckets and kernel pools.
		for i := 0; i < 16; i++ {
			master.Begin(p, cc.SnapshotIsolation, master.Node).Abort(p)
		}
		allocs := testing.AllocsPerRun(100, func() {
			s := master.Begin(p, cc.SnapshotIsolation, master.Node)
			s.Abort(p)
		})
		// One *cc.Txn + one *Session; the touched/lockNodes maps and the
		// lock-release bookkeeping must contribute nothing.
		if allocs > 2 {
			t.Fatalf("read-only begin/abort allocates %.1f objects, want <= 2", allocs)
		}
		// The commit path of a read-only transaction must be equally lean:
		// no participant map, no sort boxing.
		allocs = testing.AllocsPerRun(100, func() {
			s := master.Begin(p, cc.SnapshotIsolation, master.Node)
			if err := s.Commit(p); err != nil {
				t.Error(err)
			}
		})
		if allocs > 2 {
			t.Fatalf("read-only begin/commit allocates %.1f objects, want <= 2", allocs)
		}
	})
}

// TestRemigrateWithLiveDualPointersSkipped pins the single-OldPart-generation
// constraint of replaceEntry: while an entry still carries dual pointers
// from an earlier move (old snapshots keep the old location readable), a new
// migration of the same range must be skipped — replacing the entry would
// drop the old-location fallback. Once the old pointer drains, the range
// moves normally.
func TestRemigrateWithLiveDualPointersSkipped(t *testing.T) {
	tc := newTestCluster(t, table.Logical, 4, 200)
	defer tc.env.Close()
	master := tc.c.Master
	tc.run(t, func(p *sim.Proc) {
		// Pin the watermark so the old-pointer cleanup cannot fire.
		oldReader := master.Oracle.Begin(cc.SnapshotIsolation)

		if err := master.MigrateRange(p, "kv", ik(0), ik(50), tc.c.Nodes[2]); err != nil {
			t.Fatalf("first migration: %v", err)
		}
		e, err := tc.tm.Route(ik(10))
		if err != nil {
			t.Fatal(err)
		}
		if e.Owner != tc.c.Nodes[2] || e.OldPart == nil {
			t.Fatalf("after move: owner=node %d, OldPart=%v — want node 2 with live dual pointers",
				e.Owner.ID, e.OldPart != nil)
		}
		firstPart, oldPart := e.Part, e.OldPart

		// Re-migrating the range while the dual pointers live must leave the
		// entry untouched (the fallback survives), not silently drop it.
		if err := master.MigrateRange(p, "kv", ik(0), ik(50), tc.c.Nodes[3]); err != nil {
			t.Fatalf("re-migration: %v", err)
		}
		if e.Part != firstPart || e.OldPart != oldPart || e.Owner != tc.c.Nodes[2] {
			t.Fatal("re-migration with live dual pointers replaced the entry")
		}
		// Both generations stay readable: a fresh snapshot reads the moved
		// copy, the pinned old snapshot still reads through the fallback.
		s := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		v, ok, err := s.Get(p, "kv", ik(10))
		if err != nil || !ok {
			t.Fatalf("moved key unreadable: ok=%v err=%v", ok, err)
		}
		if row, _ := kvSchema().DecodeRow(v); row[1].(string) != "val-000010" {
			t.Fatalf("moved key = %q", row[1])
		}
		s.Abort(p)

		// Drain the old snapshot; the cleanup retires the old pointer and
		// the range becomes movable again.
		master.Oracle.Abort(oldReader)
		for i := 0; i < 10 && e.OldPart != nil; i++ {
			p.Sleep(2 * time.Second)
		}
		if e.OldPart != nil {
			t.Fatal("old pointer never drained")
		}
		if err := master.MigrateRange(p, "kv", ik(0), ik(50), tc.c.Nodes[3]); err != nil {
			t.Fatalf("migration after drain: %v", err)
		}
		if e2, _ := tc.tm.Route(ik(10)); e2.Owner != tc.c.Nodes[3] {
			t.Fatalf("range did not move after the old pointer drained (owner=node %d)", e2.Owner.ID)
		}
	})
}

package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// Coordinator replication. With MasterReplicas > 0 the master stops being a
// stable-metadata fiction: every coordinator mutation — catalog creation,
// partition-table updates (including migration boundary advances), timestamp
// leases, and commit decisions — is encoded as a master-state record,
// appended to the leader's WAL, and synchronously shipped to the follower
// replicas before it takes effect. A leader power failure fences the
// coordinator, a follower replays its shipped log and takes over, and the
// timestamp oracle resumes strictly above the replicated lease ceiling.
//
// Ack rule. Nothing is acknowledged on leader durability alone: a forced
// master record counts as replicated only when at least one follower holds
// it durably. A commit decision that cannot be replicated is retried —
// across the failover if need be — so "ack iff decision durable" survives
// the leader dying between the decision force and the participant acks.
//
// Sequence numbers. Master records carry a monotonically increasing
// sequence in the Part field (replicas replay in sequence order, not local
// LSN order — catch-up snapshots interleave with live ships). Elections
// leave a gap above the highest replayed sequence so a record shipped by
// the dying leader, racing the election onto one follower, sorts strictly
// before everything the new leader writes.

const (
	// electionDelay models failure detection: how long after the leader's
	// power failure a follower takes over.
	electionDelay = 150 * time.Millisecond
	// decisionRetryDelay paces a committing session's replication retries
	// while the coordinator is fenced.
	decisionRetryDelay = 50 * time.Millisecond
	// coordWaitDelay paces restart-time coordinator queries against a
	// fenced master.
	coordWaitDelay = 250 * time.Millisecond
	// failoverGrace is the presumed-abort grace window after an election:
	// in-doubt queries for unknown transactions wait it out, giving
	// in-flight commits time to re-replicate decisions the old leader
	// forced but never shipped. Far larger than a retry round-trip, far
	// smaller than a restart delay.
	failoverGrace = 2 * time.Second
	// reconcileDelay is how long after an election the new leader waits
	// before probing participants of rebuilt decisions.
	reconcileDelay = 500 * time.Millisecond
	// seqEpochGap is the sequence headroom an election leaves for records
	// the dying leader may still land on a follower.
	seqEpochGap = 1024
	// leaseHeadroom triggers a lease extension when fewer timestamps
	// remain; it must cover the handful of raw oracle calls (migration
	// horizons) that bypass the master's lease check.
	leaseHeadroom = 256
	// defaultLeaseChunk is how many timestamps one lease grant covers.
	defaultLeaseChunk = 8192
)

// ErrMasterDown reports that the coordinator is unavailable: the leader
// power-failed and no follower has completed failover yet, or a mutation
// could not be replicated to any follower.
type ErrMasterDown struct{}

func (ErrMasterDown) Error() string {
	return "cluster: coordinator unavailable (awaiting master failover)"
}

// masterRep is the replication state of the coordinator role.
type masterRep struct {
	group []int // replica-set node IDs, ascending; the leader is one of them
	// current marks group members holding every replicated record; only
	// they can receive ships, count toward durability, or win the fast
	// election path. A crashed or ship-failed member drops out until the
	// leader re-ships the full state (catchUp).
	current map[int]bool
	seq     uint64 // last master-state sequence number issued
}

func (r *masterRep) member(id int) bool {
	for _, g := range r.group {
		if g == id {
			return true
		}
	}
	return false
}

// EnableMasterReplication turns the coordinator into a replicated state
// machine with the given number of follower replicas (nodes 1..replicas;
// they are forced active — a replica must keep power). Setup-only: call
// before the simulation starts and before tables are created, so the
// bootstrap records replicate without charging virtual time.
func (c *Cluster) EnableMasterReplication(replicas int) {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(c.Nodes)-1 {
		replicas = len(c.Nodes) - 1
	}
	m := c.Master
	r := &masterRep{current: make(map[int]bool)}
	for id := 0; id <= replicas; id++ {
		r.group = append(r.group, id)
		r.current[id] = true
		c.Nodes[id].HW.ForceActive()
	}
	m.rep = r
	if err := m.ensureLease(nil); err != nil {
		panic(fmt.Sprintf("cluster: bootstrap lease replication failed: %v", err))
	}
}

// MasterReplicated reports whether coordinator replication is enabled.
func (c *Cluster) MasterReplicated() bool { return c.Master.rep != nil }

// Fenced reports whether the coordinator is currently unavailable (leader
// down, failover pending).
func (m *Master) Fenced() bool { return m.rep != nil && m.down }

// Failovers returns how many leader elections have completed.
func (m *Master) Failovers() int { return m.failovers }

// LeaderID returns the node currently seated as coordinator.
func (m *Master) LeaderID() int { return m.Node.ID }

// SetLeaseChunk overrides the lease grant size and re-arms the in-memory
// lease to one fresh chunk (tests sweep failovers across lease boundaries
// with small chunks; the bootstrap grant would otherwise defer the first
// boundary by defaultLeaseChunk timestamps). Lowering only the in-memory
// ceiling is safe: the durable bootstrap grant stays higher, so a failover
// resuming at the highest replicated ceiling is still strictly above
// anything this leader could have issued.
func (m *Master) SetLeaseChunk(n int) {
	if n <= 0 {
		return
	}
	m.leaseChunk = n
	if m.rep != nil {
		m.Oracle.RearmLease(m.Oracle.Clock() + 1 + cc.Timestamp(n))
	}
}

// logMaster appends rec to the leader's WAL and ships it to every current
// follower, assigning the next state-machine sequence number. With force,
// each follower's log is flushed and the leader's own log is forced too; the
// record counts as replicated (return true) only if at least one follower
// holds it durably. Without force the append is best-effort: the bytes ride
// along with the follower's next group commit (a prefix-ordered log flush
// covers them), and loss is tolerated because unforced records are
// resurrection-safe (acks re-derive from participant logs, cleanup snapshots
// merely retire read-safe dual pointers).
//
// p == nil is the setup path (cluster construction, table creation): no
// simulation process exists yet, so transfers charge nothing and forces use
// SetupFlush. A leader epoch change while a blocking call was in flight
// aborts the ship — the caller is working for a coordinator seat that has
// been re-elected.
func (m *Master) logMaster(p *sim.Proc, rec wal.Record, force bool) bool {
	r := m.rep
	epoch := m.epoch
	r.seq++
	rec.Part = r.seq
	leader := m.Node
	lsn := leader.Log.Append(rec)
	durable := 0
	for _, id := range r.group {
		n := m.cluster.Nodes[id]
		if n == leader || n.Down() || !r.current[id] {
			continue
		}
		if p != nil {
			m.cluster.Net.Transfer(p, leader.ID, n.ID, rec.FrameSize())
			if m.epoch != epoch {
				return false
			}
			if n.Down() {
				continue
			}
		}
		flsn := n.Log.Append(rec)
		if !force {
			durable++
			continue
		}
		if p != nil {
			n.Log.Flush(p, flsn)
			if m.epoch != epoch {
				return false
			}
		} else {
			n.Log.SetupFlush()
		}
		if !n.Down() && n.Log.FlushedLSN() >= flsn {
			durable++
		} else {
			r.current[id] = false
		}
	}
	if force {
		if p != nil {
			leader.Log.Flush(p, lsn)
			if m.epoch != epoch {
				return false
			}
		} else {
			leader.Log.SetupFlush()
		}
	}
	return durable >= 1
}

// ensureLease keeps the oracle's replicated lease ahead of consumption:
// when fewer than leaseHeadroom timestamps remain, a new ceiling is forced
// to the followers before the in-memory lease extends. The headroom absorbs
// the few raw oracle calls (migration snapshot horizons) that cannot reach
// this check.
func (m *Master) ensureLease(p *sim.Proc) error {
	if m.rep == nil {
		return nil
	}
	o := m.Oracle
	// An unleased oracle (Leased() == 0) reports unbounded headroom; it
	// still needs its first grant, or the ceiling never exists and failover
	// has no replicated bound to resume above.
	if o.Leased() != 0 && o.Remaining() > leaseHeadroom {
		return nil
	}
	ceil := o.Leased()
	if c := o.Clock() + 1; c > ceil {
		ceil = c
	}
	ceil += cc.Timestamp(m.leaseChunk)
	if !m.logMaster(p, wal.Record{Type: wal.RecMLease, TS: ceil}, true) {
		return ErrMasterDown{}
	}
	o.ExtendLease(ceil)
	return nil
}

// commitGate is checked before a commit timestamp is issued: the coordinator
// must be seated and hold lease headroom. Failing here is safe — nothing of
// the transaction is visible yet, so the caller aborts cleanly.
func (m *Master) commitGate(p *sim.Proc) error {
	if m.rep == nil {
		return nil
	}
	if m.down || m.Node.Down() {
		return ErrMasterDown{}
	}
	return m.ensureLease(p)
}

// coordCheck guards long-running coordinator work (migrations): it fails
// when the master is fenced or when a failover re-seated the coordinator
// since the caller captured epoch — the caller's entry pointers are stale.
func (m *Master) coordCheck(epoch uint64) error {
	if m.rep == nil {
		return nil
	}
	if m.down {
		return ErrMasterDown{}
	}
	if m.epoch != epoch {
		return fmt.Errorf("cluster: coordinator failover fenced this operation")
	}
	return nil
}

// tableRecord builds the replicated snapshot record of one table's current
// coordinator state (catalog entry + full partition table).
func (m *Master) tableRecord(name string) wal.Record {
	tm := m.tables[name]
	st := &wal.MasterTable{Name: name, Scheme: byte(tm.Scheme),
		Replicated: tm.replicas != nil, NextPartID: uint64(m.nextPartID)}
	if tm.replicas != nil {
		nodes := make([]*DataNode, 0, len(tm.replicas))
		for n := range tm.replicas {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, n := range nodes {
			st.Entries = append(st.Entries, wal.MasterEntry{
				PartID: uint64(tm.replicas[n].ID), OwnerID: uint32(n.ID)})
		}
	} else {
		for _, e := range tm.entries {
			me := wal.MasterEntry{PartID: uint64(e.Part.ID), OwnerID: uint32(e.Owner.ID),
				Low: e.Low, High: e.High, MovedBelow: e.MovedBelow}
			if e.OldPart != nil {
				me.HasOld = true
				me.OldPartID = uint64(e.OldPart.ID)
				me.OldOwnerID = uint32(e.OldOwner.ID)
			}
			st.Entries = append(st.Entries, me)
		}
	}
	return wal.Record{Type: wal.RecMState, After: wal.EncodeMasterTable(nil, st)}
}

// shipTable replicates a table's current snapshot. No-op without
// replication; returns false when a forced ship reached no follower.
func (m *Master) shipTable(p *sim.Proc, name string, force bool) bool {
	if m.rep == nil {
		return true
	}
	return m.logMaster(p, m.tableRecord(name), force)
}

// clearOldPointer retires the old-location pointer of the current entry
// covering exactly [low, high). The asynchronous cleanup processes capture
// entry objects when scheduled, but a failover in between replaces the whole
// partition table — the retirement must land on whatever entry routing uses
// now, or the rebuilt old pointer would outlive the vacuumed source.
func (m *Master) clearOldPointer(name string, low, high []byte) {
	tm, ok := m.tables[name]
	if !ok {
		return
	}
	for _, e := range tm.entries {
		if bytes.Equal(e.Low, low) && bytes.Equal(e.High, high) {
			e.OldPart = nil
			e.OldOwner = nil
		}
	}
}

// findPart resolves a partition ID on this node: the live registry first,
// then the crash registry (a rebuilt master entry may point at a dead
// partition object — exactly what rebind re-points on restart).
func (n *DataNode) findPart(id table.PartID) *table.Partition {
	if pt, ok := n.Parts[id]; ok {
		return pt
	}
	for _, pt := range n.lostParts {
		if pt.ID == id {
			return pt
		}
	}
	return nil
}

// applyTableState installs a replayed table snapshot into the catalog,
// resolving partition IDs against the nodes' registries.
func (m *Master) applyTableState(st *wal.MasterTable) {
	schema, ok := m.schemas[st.Name]
	if !ok {
		return // table unknown to this process image (never created here)
	}
	tm := &TableMeta{Schema: schema, Scheme: table.Scheme(st.Scheme)}
	if st.Replicated {
		tm.replicas = make(map[*DataNode]*table.Partition)
		for i := range st.Entries {
			e := &st.Entries[i]
			n := m.cluster.Nodes[e.OwnerID]
			if pt := n.findPart(table.PartID(e.PartID)); pt != nil {
				tm.replicas[n] = pt
			}
		}
	} else {
		for i := range st.Entries {
			se := &st.Entries[i]
			owner := m.cluster.Nodes[se.OwnerID]
			re := &RangeEntry{Low: se.Low, High: se.High,
				Part: owner.findPart(table.PartID(se.PartID)), Owner: owner,
				MovedBelow: se.MovedBelow}
			if re.Part == nil {
				panic(fmt.Sprintf("cluster: replicated entry of %s names partition %d absent from node %d",
					st.Name, se.PartID, se.OwnerID))
			}
			if se.HasOld {
				oldOwner := m.cluster.Nodes[se.OldOwnerID]
				if pt := oldOwner.findPart(table.PartID(se.OldPartID)); pt != nil {
					re.OldPart = pt
					re.OldOwner = oldOwner
				}
			}
			tm.entries = append(tm.entries, re)
		}
	}
	m.tables[st.Name] = tm
	if table.PartID(st.NextPartID) > m.nextPartID {
		m.nextPartID = table.PartID(st.NextPartID)
	}
}

// leaderDown fences the coordinator the instant its node power-fails and
// schedules the election. Non-blocking (doCrash must not block). The epoch
// bump immediately invalidates in-flight ships and migrations working for
// the dead seat.
func (m *Master) leaderDown() {
	if m.down {
		return
	}
	m.down = true
	m.epoch++
	m.cluster.Env.Spawn("master-election", func(p *sim.Proc) {
		p.Sleep(electionDelay)
		if m.down {
			m.tryElect(nil)
		}
	})
}

// tryElect seats a new leader if a safe candidate exists. reviving, when
// non-nil, is a group member currently inside RestartNode (its crashed flag
// still set, its durable log already recovered) — it counts as live.
// Preference order: the lowest-ID live current follower (guaranteed to hold
// every replicated record, appended synchronously and — for forced records
// — flushed). With no current follower alive, a strict majority of the
// replica group may elect the live member with the highest durable
// sequence: every acknowledged record is durable on at least one follower,
// members only rejoin through full-state catch-up, so durable sequence
// order implies state completeness. Without a majority the coordinator
// stays fenced. Non-blocking; charges nothing (like restart-time log
// analysis).
func (m *Master) tryElect(reviving *DataNode) {
	r := m.rep
	if r == nil || !m.down {
		return
	}
	alive := func(n *DataNode) bool { return n == reviving || !n.Down() }
	for _, id := range r.group {
		if n := m.cluster.Nodes[id]; r.current[id] && alive(n) {
			m.electFrom(n)
			return
		}
	}
	var live []*DataNode
	for _, id := range r.group {
		if n := m.cluster.Nodes[id]; alive(n) {
			live = append(live, n)
		}
	}
	if len(live)*2 <= len(r.group) {
		return // no majority: stay fenced until more replicas restart
	}
	best, bestSeq := live[0], maxMasterSeq(live[0])
	for _, n := range live[1:] {
		if s := maxMasterSeq(n); s > bestSeq {
			best, bestSeq = n, s
		}
	}
	m.electFrom(best)
}

// maxMasterSeq returns the highest master-state sequence in n's log
// (election comparison; a crashed candidate has been through Log.Restart,
// so the scan covers exactly its durable records). The scan is per-frame
// so a rotted acked data frame the scrubber has not reached yet cannot
// hide the master records appended after it.
func maxMasterSeq(n *DataNode) uint64 {
	var max uint64
	n.Log.VisitFrames(func(rec *wal.Record, frame []byte) bool {
		switch rec.Type {
		case wal.RecMState, wal.RecMLease, wal.RecMAck:
		case wal.RecDecision:
			if rec.After == nil {
				return true
			}
		default:
			return true
		}
		if rec.Part > max {
			max = rec.Part
		}
		return true
	})
	return max
}

// electFrom rebuilds the coordinator state machine from candidate's log and
// seats it as leader, in place: the Master object and its Oracle pointer
// stay stable (sessions, node dependencies, and harnesses hold them). The
// catalog and partition tables are replayed from the replicated snapshots
// in sequence order, the decision map from decision/ack records, and the
// oracle resumes at the replicated lease ceiling — strictly above anything
// the old leader issued. Non-blocking: routing flips in one instant.
func (m *Master) electFrom(candidate *DataNode) {
	r := m.rep
	var recs []wal.Record
	// Per-frame scan: a live candidate may carry a bit-rotted acked data
	// frame the scrubber has not repaired yet; the master records past it
	// must still be replayed.
	candidate.Log.VisitFrames(func(rec *wal.Record, frame []byte) bool {
		switch rec.Type {
		case wal.RecMState, wal.RecMLease, wal.RecMAck:
			recs = append(recs, *rec)
		case wal.RecDecision:
			if rec.After != nil { // replicated decisions carry participants
				recs = append(recs, *rec)
			}
		}
		return true
	})
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Part < recs[j].Part })
	m.tables = make(map[string]*TableMeta)
	// The decision map is NOT reset: every in-memory ack corresponds to a
	// participant branch durably closed (commit record or roll-forward
	// flushed), so existing entries are strictly fresher than the log's, and
	// entries the dead leader installed but never replicated must survive —
	// their commit sessions are still blocked in the replication retry loop
	// and restarting participants must be told to roll forward, not to
	// presume abort. Replay below only adds decisions this Master never saw.
	var lease cc.Timestamp
	var maxSeq uint64
	for i := range recs {
		rec := &recs[i]
		if rec.Part > maxSeq {
			maxSeq = rec.Part
		}
		switch rec.Type {
		case wal.RecMState:
			if st, err := wal.DecodeMasterTable(rec.After); err == nil {
				m.applyTableState(st)
			}
		case wal.RecMLease:
			if rec.TS > lease {
				lease = rec.TS
			}
		case wal.RecDecision:
			if _, known := m.decisions[rec.Txn]; known {
				// Keep the live object: blocked commit sessions and past acks
				// reference it, and its outstanding set already reflects
				// branch closures the log has not recorded.
				continue
			}
			nodes, err := wal.DecodeMasterParticipants(rec.After)
			if err != nil {
				continue
			}
			out := make(map[int]bool, len(nodes))
			for _, id := range nodes {
				out[id] = true
			}
			m.decisions[rec.Txn] = &txnDecision{ts: rec.TS, outstanding: out}
		case wal.RecMAck:
			if node, err := wal.DecodeMasterAck(rec.After); err == nil {
				m.ackDecision(rec.Txn, node)
			}
		}
	}
	r.seq = maxSeq + seqEpochGap
	// Live current followers hold everything the candidate holds (ships
	// append to all of them synchronously); down members must catch up.
	cur := map[int]bool{candidate.ID: true}
	for _, id := range r.group {
		if r.current[id] && !m.cluster.Nodes[id].Down() {
			cur[id] = true
		}
	}
	r.current = cur
	m.Node = candidate
	m.Oracle.Failover(lease)
	m.down = false
	m.epoch++
	m.failovers++
	m.graceUntil = m.cluster.Env.Now() + failoverGrace
	m.reconcile()
}

// awaitAvailable blocks restart-time coordinator queries until the master
// is seated and the post-election presumed-abort grace has passed — a
// participant must not be told "no decision" while an in-flight commit is
// still re-replicating a verdict the dead leader forced but never shipped.
func (m *Master) awaitAvailable(p *sim.Proc) {
	if m.rep == nil {
		return
	}
	for {
		if m.down {
			p.Sleep(coordWaitDelay)
			continue
		}
		if now := m.cluster.Env.Now(); now < m.graceUntil {
			p.Sleep(m.graceUntil - now)
			continue
		}
		return
	}
}

// reconcile probes, shortly after an election, the live participants of
// every rebuilt decision: a branch whose durable log already shows a commit
// or abort record (or no prepare at all) is acked, draining entries whose
// original acks were in flight — or unforced and lost — when the old leader
// died. Participants still down resolve at their own restart. Deterministic
// order throughout (sorted transactions, sorted nodes).
func (m *Master) reconcile() {
	epoch := m.epoch
	m.cluster.Env.Spawn("master-reconcile", func(p *sim.Proc) {
		p.Sleep(reconcileDelay)
		if m.rep == nil || m.down || m.epoch != epoch {
			return
		}
		ids := make([]cc.TxnID, 0, len(m.decisions))
		for id := range m.decisions {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			d, ok := m.decisions[id]
			if !ok {
				continue
			}
			nodes := make([]int, 0, len(d.outstanding))
			for nid := range d.outstanding {
				nodes = append(nodes, nid)
			}
			sort.Ints(nodes)
			for _, nid := range nodes {
				n := m.cluster.Nodes[nid]
				if n.Down() {
					continue // its own restart resolves the branch
				}
				if n != m.Node {
					m.cluster.Net.Transfer(p, m.Node.ID, n.ID, 32)
					m.cluster.Net.Transfer(p, n.ID, m.Node.ID, 32)
				}
				if m.epoch != epoch {
					return
				}
				recs, err := n.Log.Iter().All()
				if err == nil && branchResolvedIn(recs, id) {
					m.ackDecision(id, nid)
				}
			}
		}
	})
}

// branchResolvedIn reports whether a participant's durable log shows txn's
// branch decided (commit or abort record), or never prepared at all —
// either way the coordinator need not remember the verdict for that node.
func branchResolvedIn(recs []wal.Record, txn cc.TxnID) bool {
	prepared, decided := false, false
	for i := range recs {
		if recs[i].Txn != txn {
			continue
		}
		switch recs[i].Type {
		case wal.RecPrepare:
			prepared = true
		case wal.RecCommit, wal.RecAbort:
			decided = true
		}
	}
	return decided || !prepared
}

// outstandingDecisionsFor lists the decided transactions still awaiting an
// ack from node, ascending.
func (m *Master) outstandingDecisionsFor(node int) []cc.TxnID {
	var out []cc.TxnID
	for id, d := range m.decisions {
		if d.outstanding[node] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// catchUp re-ships the full coordinator state to a stale follower: fresh
// snapshot records under new sequence numbers, appended to the leader's log
// too (a future election must see them on whichever replica serves it).
// The follower is marked current the instant the appends land — log flushes
// are prefix-ordered, so any later forced record makes this prefix durable
// before it can count as replicated.
func (m *Master) catchUp(p *sim.Proc, n *DataNode) {
	r := m.rep
	if r == nil || n == m.Node {
		return
	}
	epoch := m.epoch
	names := make([]string, 0, len(m.tables))
	for name := range m.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	recs := make([]wal.Record, 0, len(names)+len(m.decisions)+1)
	for _, name := range names {
		recs = append(recs, m.tableRecord(name))
	}
	ids := make([]cc.TxnID, 0, len(m.decisions))
	for id := range m.decisions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d := m.decisions[id]
		nodes := make([]int, 0, len(d.outstanding))
		for nid := range d.outstanding {
			nodes = append(nodes, nid)
		}
		sort.Ints(nodes)
		recs = append(recs, wal.Record{Txn: id, Type: wal.RecDecision, TS: d.ts,
			After: wal.EncodeMasterParticipants(nil, nodes)})
	}
	recs = append(recs, wal.Record{Type: wal.RecMLease, TS: m.Oracle.Leased()})
	leader := m.Node
	var leaderLSN, followerLSN uint64
	var bytes int64
	for i := range recs {
		r.seq++
		recs[i].Part = r.seq
		leaderLSN = leader.Log.Append(recs[i])
		followerLSN = n.Log.Append(recs[i])
		bytes += recs[i].FrameSize()
	}
	r.current[n.ID] = true
	m.cluster.Net.Transfer(p, leader.ID, n.ID, bytes)
	if m.epoch != epoch || n.Down() {
		return
	}
	n.Log.Flush(p, followerLSN)
	if m.epoch != epoch || leader.Down() {
		return
	}
	leader.Log.Flush(p, leaderLSN)
}

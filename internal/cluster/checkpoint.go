package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// Fuzzy checkpoints (ROADMAP item 3): bound restart replay to the delta
// since the last checkpoint instead of the full retained history, so a node
// can leave and rejoin the cluster quickly (the gate on the autoscaler's
// fast drain/return).
//
// A checkpoint is fuzzy — foreground traffic keeps running throughout:
//
//  1. Flush walk: a second clock-ring cursor writes dirty frames back in
//     small batches (buffer.FlushDirtyBatch), sleeping between batches.
//  2. Begin record: RecCkptBegin marks the analysis instant.
//  3. Atomic scan (one simulation instant, no time charged): derive each
//     hosted partition's redo low-water mark — the minimum of the begin
//     LSN, the recLSNs of its still-dirty pages, and the first LSNs of
//     unresolved transactions touching it — and refresh the partition
//     recovery bases with the latest committed image of every key whose
//     image falls below that mark. The refresh only adds already-durable
//     committed information to the (durably modeled) base store, so a crash
//     at any step leaves restart correct: replay from the previous
//     checkpoint re-applies the refreshed keys' source records last in LSN
//     order and converges to the same values.
//  4. End record: RecCkptEnd carries the encoded redo table; the checkpoint
//     counts only once this record is durable (wal.LastCheckpoint ignores
//     torn or unmatched pairs, falling back to the previous complete one).
//  5. Truncation: recycle log segments below the minimum of the global redo
//     point and the retention floors (master-state replay, follower
//     wrappers, replica durability); the log's own PinBefore fence guards
//     unshipped frames on top of that.
//
// Restart then replays each hosted partition from its recorded redo point,
// in parallel — one simulation process per partition over a shared analysis
// pass (wal.Analysis) — and reports the replay work (RecoveryStats) so the
// chaos oracle can assert the O(delta-since-checkpoint) bound.

// ckptBatchPause is the sleep between flush-walk batches, letting foreground
// traffic run ahead of the checkpointer.
const ckptBatchPause = 10 * time.Millisecond

// defaultCkptBatch is the flush-walk batch size when the caller passes none.
const defaultCkptBatch = 16

// CheckpointStats reports one fuzzy checkpoint's work.
type CheckpointStats struct {
	Flushed   int    // dirty frames written back by the flush walk
	Redo      uint64 // global redo point recorded in the end record
	EndLSN    uint64 // LSN of the durable end record (0: checkpoint aborted)
	Truncated uint64 // truncation point handed to TruncateBefore
}

// RecoveryStats describes a node's last RestartNode pass — the chaos
// harness's RTO probe.
type RecoveryStats struct {
	Checkpointed   bool   // a complete checkpoint bounded the replay
	Redo           uint64 // lowest replay start point across hosted partitions
	Redone, Undone int
	Bytes          int64         // framed bytes of every record applied
	MinApplied     uint64        // lowest LSN any partition replay touched (0: none)
	Rebuild        bool          // log was rebuilt from replicas (full replay)
	Elapsed        time.Duration // simulated time from power-on to ready
}

// ArmCheckpointCrash schedules a power failure afterSteps protocol steps into
// node n's next CheckpointNode run (0 crashes at the very first step). The
// chaos -ckpt fault and the mid-checkpoint sweep tests use it to land crashes
// at every phase of the flush-walk/begin/scan/end protocol.
func (c *Cluster) ArmCheckpointCrash(n *DataNode, afterSteps int) {
	n.ckptCrashIn = afterSteps
}

// CheckpointCrashArmed reports whether an ArmCheckpointCrash countdown is
// still pending on n; the countdown clears when the armed crash fires.
func (c *Cluster) CheckpointCrashArmed(n *DataNode) bool { return n.ckptCrashIn >= 0 }

// ckptStep is one instrumented step of the checkpoint protocol: it fires the
// armed crash when its countdown expires and reports whether the checkpoint
// may continue.
func (c *Cluster) ckptStep(n *DataNode) bool {
	if n.crashed || n.Log.Down() {
		return false
	}
	if n.ckptCrashIn == 0 {
		n.ckptCrashIn = -1
		c.CrashNode(n)
		return false
	}
	if n.ckptCrashIn > 0 {
		n.ckptCrashIn--
	}
	return true
}

// CheckpointNode takes one fuzzy checkpoint on n: flush walk, begin record,
// atomic redo scan with base refresh, end record, redo-point-aware log
// truncation. A node that crashes (or is armed to crash) mid-checkpoint
// simply aborts — the torn pair is invisible to wal.LastCheckpoint and the
// next restart falls back to the previous complete checkpoint. Returns the
// work done; a nil error with EndLSN 0 means the checkpoint did not complete.
func (c *Cluster) CheckpointNode(p *sim.Proc, n *DataNode, batch int) (CheckpointStats, error) {
	var st CheckpointStats
	if n.crashed || n.diskLost || n.Log.Down() {
		return st, nil
	}
	if batch <= 0 {
		batch = defaultCkptBatch
	}
	if !c.ckptStep(n) { // step: before the flush walk
		return st, nil
	}
	for {
		flushed, done, err := n.Pool.FlushDirtyBatch(p, batch)
		st.Flushed += flushed
		if err != nil {
			if n.crashed {
				return st, nil
			}
			return st, fmt.Errorf("cluster: checkpoint flush walk on node %d: %w", n.ID, err)
		}
		if !c.ckptStep(n) { // step: after each flush batch
			return st, nil
		}
		if done {
			break
		}
		p.Sleep(ckptBatchPause)
		if n.crashed || n.Log.Down() {
			return st, nil
		}
	}
	begin := n.Log.Append(wal.Record{Type: wal.RecCkptBegin})
	if !c.ckptStep(n) { // step: begin appended
		return st, nil
	}
	ck, floor := c.ckptScan(n, begin)
	if ck == nil {
		return st, nil
	}
	if !c.ckptStep(n) { // step: scan done, bases refreshed, end not yet appended
		return st, nil
	}
	end := n.Log.Append(wal.Record{Type: wal.RecCkptEnd, Part: begin,
		After: wal.EncodeCheckpoint(nil, ck)})
	if !c.ckptStep(n) { // step: end appended but volatile
		return st, nil
	}
	n.Log.Flush(p, end)
	if n.crashed || n.Log.Down() || n.Log.FlushedLSN() < end {
		return st, nil
	}
	st.Redo, st.EndLSN = ck.Redo, end
	if !c.ckptStep(n) { // step: checkpoint durable, truncation pending
		return st, nil
	}
	st.Truncated = floor
	n.Log.TruncateBefore(floor)
	n.Checkpoints++
	return st, nil
}

// StartCheckpointer spawns n's background checkpoint daemon, taking one fuzzy
// checkpoint every interval (crashed or rebuild-pending rounds are skipped).
func (c *Cluster) StartCheckpointer(n *DataNode, interval time.Duration, batch int) {
	c.Env.Spawn(fmt.Sprintf("ckpt-%d", n.ID), func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			if n.crashed || n.diskLost || n.Log.Down() {
				continue
			}
			if _, err := c.CheckpointNode(p, n, batch); err != nil {
				return // backend failure: stop checkpointing, never crash the sim
			}
		}
	})
}

// ckptScan is the checkpoint's analysis instant: one pass over the retained
// log and the buffer pool's dirty-page table, charging no simulated time.
// It returns the encoded-payload checkpoint and the truncation floor, or nil
// when the log is unreadable (a concurrent crash).
func (c *Cluster) ckptScan(n *DataNode, begin uint64) (*wal.Checkpoint, uint64) {
	recs, err := n.Log.Iter().All()
	if err != nil {
		return nil, 0
	}

	// Transaction table. A transaction with records but no commit or abort is
	// in flight and pins the redo point at its first LSN — unless its first
	// record predates the last restart (deadBelow): such a transaction died
	// with a crash, its effects were never replayed into the fresh partitions,
	// and it will never resolve, so it must not pin retention forever.
	type txState struct {
		first    uint64
		parts    map[uint64]bool
		resolved bool
	}
	txns := make(map[cc.TxnID]*txState)
	committed := make(map[cc.TxnID]bool)
	for i := range recs {
		r := &recs[i]
		if r.Txn == 0 {
			continue
		}
		switch r.Type {
		case wal.RecUpdate, wal.RecInsert, wal.RecDelete,
			wal.RecPrepare, wal.RecPrepDML, wal.RecPrepDel:
			st := txns[r.Txn]
			if st == nil {
				st = &txState{first: r.LSN, parts: make(map[uint64]bool)}
				txns[r.Txn] = st
			}
			if r.Type != wal.RecPrepare {
				st.parts[r.Part] = true
			}
		case wal.RecCommit, wal.RecAbort:
			if st := txns[r.Txn]; st != nil {
				st.resolved = true
			}
			if r.Type == wal.RecCommit {
				committed[r.Txn] = true
			}
		}
	}
	inflight := make([]cc.TxnID, 0, len(txns))
	for id, st := range txns {
		if !st.resolved && st.first >= n.deadBelow {
			inflight = append(inflight, id)
		}
	}
	sort.Slice(inflight, func(i, j int) bool { return inflight[i] < inflight[j] })
	partTxnMin := make(map[uint64]uint64) // partition -> min in-flight first LSN
	for _, id := range inflight {
		st := txns[id]
		for part := range st.parts {
			if cur, ok := partTxnMin[part]; !ok || st.first < cur {
				partTxnMin[part] = st.first
			}
		}
	}

	// Per-partition redo low-water marks over the hosted set.
	dirty := n.Pool.DirtyRecLSNs()
	ids := make([]table.PartID, 0, len(n.Parts))
	for id := range n.Parts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ck := &wal.Checkpoint{Begin: begin, Redo: begin}
	redoOf := make(map[uint64]uint64, len(ids))
	for _, id := range ids {
		redo := begin
		for _, seg := range n.Parts[id].SegIDs() {
			if m, ok := dirty[seg]; ok && m < redo {
				redo = m
			}
		}
		if m, ok := partTxnMin[uint64(id)]; ok && m < redo {
			redo = m
		}
		ck.Parts = append(ck.Parts, wal.CkptPart{ID: uint64(id), Redo: redo})
		redoOf[uint64(id)] = redo
		if redo < ck.Redo {
			ck.Redo = redo
		}
	}
	for _, id := range inflight {
		ck.Txns = append(ck.Txns, wal.CkptTxn{Txn: id, First: txns[id].first})
		// An in-flight transaction pins the GLOBAL redo point even when it
		// touched no hosted partition (a bare prepare vote): its records —
		// the prepare in particular — must survive truncation for in-doubt
		// detection at the next restart.
		if f := txns[id].first; f < ck.Redo {
			ck.Redo = f
		}
	}

	c.refreshBases(n, recs, committed, redoOf)

	// Truncation floor: global redo capped by the retention floors.
	floor := ck.Redo
	if mf := masterRetentionFloor(recs); mf < floor {
		floor = mf
	}
	if wf := wrapperRetentionFloor(recs); wf < floor {
		floor = wf
	}
	if c.drep != nil {
		if df := c.replicaDurableFloor(n); df < floor {
			floor = df
		}
	}
	return ck, floor
}

// refreshBases folds the latest committed image of every key whose newest
// record falls below its partition's redo point into the in-memory recovery
// base (modeled durable, like the bulk-load and adoption images), so replay
// can skip everything below the redo point. Images come from committed DML
// and RecBase records; prepare-time images are excluded — a resolved in-doubt
// branch re-logs its roll-forward as ordinary committed DML (closeInDoubt),
// and an unresolved one pins the redo point above itself.
func (c *Cluster) refreshBases(n *DataNode, recs []wal.Record, committed map[cc.TxnID]bool, redoOf map[uint64]uint64) {
	type img struct {
		lsn uint64
		val []byte
	}
	latest := make(map[uint64]map[string]img)
	note := func(part uint64, key []byte, lsn uint64, val []byte) {
		if _, hosted := redoOf[part]; !hosted {
			return
		}
		m := latest[part]
		if m == nil {
			m = make(map[string]img)
			latest[part] = m
		}
		m[string(key)] = img{lsn: lsn, val: val} // forward scan: later wins
	}
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case wal.RecBase:
			note(r.Part, r.Key, r.LSN, r.After)
		case wal.RecUpdate, wal.RecInsert, wal.RecDelete:
			if committed[r.Txn] {
				note(r.Part, r.Key, r.LSN, r.After)
			}
		}
	}
	parts := make([]uint64, 0, len(latest))
	for part := range latest {
		parts = append(parts, part)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, part := range parts {
		redo := redoOf[part]
		id := table.PartID(part)
		pairs := n.bases[id]
		// Index by key of LAST occurrence — restart applies pairs in order,
		// so the final pair for a key is the one that wins.
		idx := make(map[string]int, len(pairs))
		for i := range pairs {
			idx[string(pairs[i].key)] = i
		}
		keys := make([]string, 0, len(latest[part]))
		for k := range latest[part] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			im := latest[part][k]
			if im.lsn >= redo {
				continue // replay from the redo point still covers this key
			}
			if j, ok := idx[k]; ok {
				if pairs[j].lsn < im.lsn {
					pairs[j].val = bytes.Clone(im.val)
					pairs[j].lsn = im.lsn
				}
				continue
			}
			pairs = append(pairs, basePair{key: []byte(k), val: bytes.Clone(im.val), lsn: im.lsn})
			idx[k] = len(pairs) - 1
		}
		n.bases[id] = pairs
	}
}

// noFloor means "no retention requirement" for the floor helpers below.
const noFloor = ^uint64(0)

// masterRetentionFloor returns the lowest LSN the replicated-coordinator
// election replay still needs from this log: the newest catalog snapshot per
// table (older RecMState records are superseded — electFrom applies them in
// sequence order and later snapshots replace earlier ones wholesale), the
// newest timestamp lease (only the highest ceiling matters), and every
// replicated decision some participant has not acked in the retained log
// (a fully acked decision is drained on replay; its leftover ack records are
// no-ops against an unknown transaction).
func masterRetentionFloor(recs []wal.Record) uint64 {
	stateLSN := make(map[string]uint64)
	var leaseLSN, leaseSeq uint64
	type dec struct {
		lsn     uint64
		waiting map[int]bool
	}
	decs := make(map[cc.TxnID]*dec)
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case wal.RecMState:
			if t, err := wal.DecodeMasterTable(r.After); err == nil {
				stateLSN[t.Name] = r.LSN
			}
		case wal.RecMLease:
			if r.Part >= leaseSeq {
				leaseSeq, leaseLSN = r.Part, r.LSN
			}
		case wal.RecDecision:
			if r.After == nil {
				continue // coordinator-local form: verdicts live in stable metadata
			}
			nodes, err := wal.DecodeMasterParticipants(r.After)
			if err != nil {
				continue
			}
			w := make(map[int]bool, len(nodes))
			for _, nd := range nodes {
				w[nd] = true
			}
			decs[r.Txn] = &dec{lsn: r.LSN, waiting: w}
		case wal.RecMAck:
			if d := decs[r.Txn]; d != nil {
				if nd, err := wal.DecodeMasterAck(r.After); err == nil {
					delete(d.waiting, nd)
				}
			}
		}
	}
	floor := uint64(noFloor)
	for _, lsn := range stateLSN {
		if lsn < floor {
			floor = lsn
		}
	}
	if leaseLSN > 0 && leaseLSN < floor {
		floor = leaseLSN
	}
	for _, d := range decs {
		if len(d.waiting) > 0 && d.lsn < floor {
			floor = d.lsn
		}
	}
	return floor
}

// wrapperRetentionFloor returns the lowest retained RecShip wrapper LSN: in
// the follower role this log IS some origin's rebuild source, and its full
// wrapper history must outlive any local checkpoint. (This conservatively
// blocks most recycling on nodes that follow a busy origin — the RTO bound
// comes from redo-point replay skipping, not from physical recycling, which
// fig3's housekeeping demonstrates on unreplicated configurations.)
func wrapperRetentionFloor(recs []wal.Record) uint64 {
	for i := range recs {
		if recs[i].Type == wal.RecShip {
			return recs[i].LSN // records arrive in LSN order: first is lowest
		}
	}
	return noFloor
}

// replicaDurableFloor returns the lowest LSN the origin must retain for its
// follower resyncs: one past the weakest follower's replica-durable
// watermark. Frames below every follower's durable watermark are permanent on
// each of their wrapper logs (the same-generation resync path seeds from
// those), but a frame above any follower's watermark may still have to be
// re-shipped to it from this log. A stale follower resyncs from the whole
// retained log, so it floors retention completely (the ship pin does too —
// this keeps the checkpoint honest even about the request it hands down).
func (c *Cluster) replicaDurableFloor(n *DataNode) uint64 {
	sh := n.ship
	floor := uint64(noFloor)
	for _, f := range c.followersOf(n.ID) {
		d := sh.durable[f.ID]
		if sh.stale[f.ID] {
			d = 0
		}
		if d+1 < floor {
			floor = d + 1
		}
	}
	return floor
}

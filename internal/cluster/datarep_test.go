package cluster

import (
	"fmt"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// newRepCluster is newTestCluster with per-node WAL shipping enabled: every
// node's data frames replicate to its two cyclic followers.
func newRepCluster(t *testing.T, scheme table.Scheme, nodes, n int) *testCluster {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.DataReplicas = 2
	c := New(env, cfg)
	for _, node := range c.Nodes[1:] {
		node.HW.ForceActive()
	}
	mid := ik(int64(n / 2))
	tm, err := c.Master.CreateTable(kvSchema(), scheme, []RangeSpec{
		{Low: nil, High: mid, Owner: c.Nodes[0]},
		{Low: mid, High: nil, Owner: c.Nodes[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("load", func(p *sim.Proc) {
		i := 0
		err := c.Master.BulkLoad(p, "kv", func() ([]byte, []byte, bool) {
			if i >= n {
				return nil, nil, false
			}
			row := table.Row{int64(i), fmt.Sprintf("val-%06d", i)}
			key, _ := kvSchema().Key(row)
			payload, _ := kvSchema().EncodeRow(row)
			i++
			return key, payload, true
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return &testCluster{env: env, c: c, tm: tm}
}

func (tc *testCluster) put(t *testing.T, p *sim.Proc, home *DataNode, k int64, val string) {
	t.Helper()
	s := tc.c.Master.Begin(p, cc.SnapshotIsolation, home)
	payload, _ := kvSchema().EncodeRow(table.Row{k, val})
	if err := s.Put(p, "kv", ik(k), payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(p); err != nil {
		t.Fatal(err)
	}
}

func (tc *testCluster) verifyOracle(t *testing.T, oracle map[int64]string) {
	t.Helper()
	tc.run(t, func(p *sim.Proc) {
		s := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[0])
		seen := map[int64]int{}
		err := s.Scan(p, "kv", nil, nil, func(k, v []byte) bool {
			d, _, _ := keycodec.DecodeInt64(k)
			seen[d]++
			row, derr := kvSchema().DecodeRow(v)
			if derr != nil {
				t.Errorf("key %d: undecodable: %v", d, derr)
				return false
			}
			if row[1].(string) != oracle[d] {
				t.Errorf("key %d = %q, want %q", d, row[1], oracle[d])
			}
			return true
		})
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if len(seen) != len(oracle) {
			t.Fatalf("scan saw %d distinct keys, want %d", len(seen), len(oracle))
		}
		for k, c := range seen {
			if c != 1 {
				t.Errorf("key %d seen %d times", k, c)
			}
		}
		s.Abort(p) // release the snapshot: ghost-drop waits on the watermark
	})
}

// TestRebuildAfterDiskLoss is the full-disk-loss regression: a node loses
// its log medium AND its recovery bases, so restart has nothing local to
// recover from — every hosted partition must come back from the replica
// set's base images plus shipped log, with every acked commit intact.
func TestRebuildAfterDiskLoss(t *testing.T) {
	const n = 1000
	tc := newRepCluster(t, table.Physiological, 4, n)
	defer tc.env.Close()
	victim := tc.c.Nodes[1]

	oracle := map[int64]string{}
	for i := int64(0); i < n; i++ {
		oracle[i] = fmt.Sprintf("val-%06d", i)
	}
	tc.run(t, func(p *sim.Proc) {
		// Updates on both halves: the victim's partition gets history the
		// bulk-loaded base image does not contain.
		for i := 0; i < 100; i++ {
			k := int64((i*37 + n/2) % n)
			val := fmt.Sprintf("post-%d", i)
			tc.put(t, p, tc.c.Nodes[i%2], k, val)
			oracle[k] = val
		}
	})

	tc.c.DestroyDisk(victim)
	tc.run(t, func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		if _, _, err := tc.c.RestartNode(p, victim); err != nil {
			t.Fatalf("restart after disk loss: %v", err)
		}
	})

	rebuilds, _, _, diskLosses := tc.c.ReplicationStats()
	if diskLosses != 1 || rebuilds != 1 {
		t.Fatalf("diskLosses=%d rebuilds=%d, want 1/1", diskLosses, rebuilds)
	}
	tc.verifyOracle(t, oracle)

	// The rebuilt node must be writable again — and the new history must
	// itself replicate (a second loss of the same disk is survivable).
	tc.run(t, func(p *sim.Proc) {
		tc.put(t, p, tc.c.Nodes[0], int64(n/2+3), "after-rebuild")
		oracle[int64(n/2+3)] = "after-rebuild"
	})
	tc.c.DestroyDisk(victim)
	tc.run(t, func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		if _, _, err := tc.c.RestartNode(p, victim); err != nil {
			t.Fatalf("second restart after disk loss: %v", err)
		}
	})
	tc.verifyOracle(t, oracle)
}

// TestFollowerReadStalenessBound pins the safety gates of follower snapshot
// reads: a replica serves a read only when its applied history provably
// covers the snapshot — any commit at or below the snapshot that is not yet
// replica-durable forces the read back to the owner, and either path returns
// the same committed value.
func TestFollowerReadStalenessBound(t *testing.T) {
	const n = 100
	tc := newRepCluster(t, table.Physiological, 4, n)
	defer tc.env.Close()

	tc.run(t, func(p *sim.Proc) {
		tc.put(t, p, tc.c.Nodes[1], 10, "fresh")

		readKey := func() string {
			s := tc.c.Master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
			v, ok, err := s.Get(p, "kv", ik(10))
			if err != nil || !ok {
				t.Fatalf("get: ok=%v err=%v", ok, err)
			}
			row, _ := kvSchema().DecodeRow(v)
			s.Abort(p)
			return row[1].(string)
		}

		_, _, before, _ := tc.c.ReplicationStats()
		if got := readKey(); got != "fresh" {
			t.Fatalf("read %q, want %q", got, "fresh")
		}
		_, _, after, _ := tc.c.ReplicationStats()
		if after != before+1 {
			t.Fatalf("followerReads %d -> %d: first session read did not hit a replica", before, after)
		}

		// An acked-but-not-yet-replicated commit at the owner makes every
		// snapshot covering it unservable from a follower: the read must
		// fall back to the owner (and still see the committed value).
		tc.c.drep.addInflight(0, cc.TxnID(1<<30), 1)
		if got := readKey(); got != "fresh" {
			t.Fatalf("owner fallback read %q, want %q", got, "fresh")
		}
		_, _, blocked, _ := tc.c.ReplicationStats()
		if blocked != after {
			t.Fatalf("followerReads advanced to %d during an inflight commit below the snapshot", blocked)
		}

		// The commit replicates; followers are safe again.
		tc.c.drep.delInflight(0, cc.TxnID(1<<30))
		if got := readKey(); got != "fresh" {
			t.Fatalf("read %q, want %q", got, "fresh")
		}
		_, _, again, _ := tc.c.ReplicationStats()
		if again != blocked+1 {
			t.Fatalf("followerReads %d -> %d: replica did not resume serving", blocked, again)
		}
	})
}

// TestForcedCommitHealsStaleFollowers pins the forceShip retry loop's heal
// path: a crash schedule can interrupt a restart-epilogue resync (the
// counterpart dies mid-transfer) and leave EVERY follower of an origin live
// but stale once all nodes are finally up — with no restart pending, nothing
// retries the resync. A forced commit on that origin must then heal the
// replica set itself (healStaleFollowers) rather than spin forever waiting
// for a durable follower that can never appear: stale followers are skipped
// by queue delivery, so without the heal the retry loop is a livelock.
func TestForcedCommitHealsStaleFollowers(t *testing.T) {
	const n = 200
	tc := newRepCluster(t, table.Physiological, 4, n)
	defer tc.env.Close()
	origin := tc.c.Nodes[0]

	tc.run(t, func(p *sim.Proc) {
		tc.put(t, p, origin, 1, "before")
	})

	// Reproduce the interrupted-resync end state directly (the schedule that
	// creates it needs a crash landing inside each resync's network transfer;
	// the state is what matters): every follower live but stale, its replica
	// store gone, and no restart left to trigger a resync.
	for _, f := range tc.c.followersOf(origin.ID) {
		origin.ship.stale[f.ID] = true
		f.stores[origin.ID] = newRepStore()
	}

	committed := false
	tc.env.Spawn("commit", func(p *sim.Proc) {
		tc.put(t, p, origin, 2, "after")
		committed = true
	})
	// Bounded run: if the heal path regresses, the commit spins in forceShip
	// forever — fail loudly at the deadline instead of hanging the test.
	if err := tc.env.RunUntil(tc.env.Now() + time.Hour); err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("forced commit still spinning after 1h of sim time: stale followers were never healed")
	}

	sh := origin.ship
	for _, f := range tc.c.followersOf(origin.ID) {
		if sh.stale[f.ID] {
			t.Errorf("follower %d still stale after the forced commit", f.ID)
		}
		if sh.durable[f.ID] < sh.lastShippable {
			t.Errorf("follower %d durable=%d < lastShippable=%d", f.ID, sh.durable[f.ID], sh.lastShippable)
		}
		if st := f.stores[origin.ID]; st == nil || len(st.frames) == 0 {
			t.Errorf("follower %d replica store not re-seeded by the heal", f.ID)
		}
	}
}

// TestDiskLossDuringMigration is the migration half of the disk-loss
// regression: the destination of an in-flight range move loses its entire
// disk mid-transfer, restarts, and every key must still be reachable exactly
// once with its last committed value. A second loss AFTER a completed move
// then proves the moved history itself got replicated at the destination —
// the dual pointer must not drop the source until the destination's replica
// set covers the moved frames.
func TestDiskLossDuringMigration(t *testing.T) {
	const n = 2000
	tc := newRepCluster(t, table.Physiological, 4, n)
	defer tc.env.Close()
	dst := tc.c.Nodes[2]
	master := tc.c.Master

	oracle := map[int64]string{}
	for i := int64(0); i < n; i++ {
		oracle[i] = fmt.Sprintf("val-%06d", i)
	}
	tc.run(t, func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			k := int64(i * 17 % n)
			val := fmt.Sprintf("pre-%d", i)
			tc.put(t, p, tc.c.Nodes[i%2], k, val)
			oracle[k] = val
		}
	})

	migDone := false
	var migErr error
	tc.env.Spawn("migrate", func(p *sim.Proc) {
		migErr = master.MigrateRange(p, "kv", ik(int64(n/4)), ik(int64(3*n/4)), dst)
		migDone = true
	})
	crashedMidFlight := false
	tc.env.Spawn("destroy", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		crashedMidFlight = !migDone
		tc.c.DestroyDisk(dst)
		p.Sleep(15 * time.Second)
		if _, _, err := tc.c.RestartNode(p, dst); err != nil {
			t.Errorf("restart: %v", err)
		}
	})
	if err := tc.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !crashedMidFlight {
		t.Fatalf("disk loss landed after the migration completed; widen the window")
	}
	if migErr != nil {
		t.Logf("migration aborted by the disk loss (expected): %v", migErr)
	}
	tc.verifyOracle(t, oracle)

	// Run the move to completion, then destroy the destination again: the
	// moved range now lives ONLY at the destination, so surviving this loss
	// requires its history to be on the destination's replica set.
	tc.run(t, func(p *sim.Proc) {
		if err := master.MigrateRange(p, "kv", ik(int64(n/4)), ik(int64(3*n/4)), dst); err != nil {
			t.Fatalf("second migration: %v", err)
		}
	})
	tc.c.DestroyDisk(dst)
	tc.run(t, func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		if _, _, err := tc.c.RestartNode(p, dst); err != nil {
			t.Fatalf("restart after post-move disk loss: %v", err)
		}
	})
	tc.verifyOracle(t, oracle)

	// Post-rebuild writes to the moved range land at the destination.
	tc.run(t, func(p *sim.Proc) {
		tc.put(t, p, tc.c.Nodes[0], int64(n/2), "moved-then-rebuilt")
		oracle[int64(n/2)] = "moved-then-rebuilt"
	})
	tc.verifyOracle(t, oracle)
}

package cluster

import (
	"fmt"
	"testing"

	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// TestCheckpointPowerFailSweep power-fails a node at every instrumented step
// of the fuzzy checkpoint protocol in turn — before the flush walk, after
// each flush batch, after the begin record, after the redo scan, with the
// end record appended but volatile, and with the pair durable but truncation
// pending. After each crash the node restarts and every acknowledged write
// must read back; a torn begin/end pair must be invisible, so the restart
// falls back to the last complete checkpoint (bounded replay). The sweep
// ends when a round's checkpoint completes without reaching the armed step.
func TestCheckpointPowerFailSweep(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 400)
	defer tc.env.Close()
	node := tc.c.Nodes[0]
	master := tc.c.Master

	expected := map[int64]string{}
	commit := func(p *sim.Proc, k int64, val string) {
		s := master.Begin(p, cc.SnapshotIsolation, node)
		payload, _ := kvSchema().EncodeRow(table.Row{k, val})
		if err := s.Put(p, "kv", ik(k), payload); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(p); err != nil {
			t.Fatal(err)
		}
		expected[k] = val
	}
	verify := func(p *sim.Proc, round int) {
		s := master.Begin(p, cc.SnapshotIsolation, node)
		defer s.Abort(p)
		for k, want := range expected {
			raw, ok, err := s.Get(p, "kv", ik(k))
			if err != nil {
				t.Fatalf("round %d: key %d: %v", round, k, err)
			}
			if !ok {
				t.Fatalf("round %d: committed key %d lost", round, k)
			}
			row, _ := kvSchema().DecodeRow(raw)
			if got := row[1].(string); got != want {
				t.Fatalf("round %d: key %d = %q, want %q", round, k, got, want)
			}
		}
	}

	// A first complete checkpoint for the crashed rounds to fall back to.
	tc.run(t, func(p *sim.Proc) {
		for i := int64(0); i < 20; i++ {
			commit(p, i*3%200, fmt.Sprintf("base-%d", i))
		}
		st, err := tc.c.CheckpointNode(p, node, 4)
		if err != nil {
			t.Fatal(err)
		}
		if st.EndLSN == 0 {
			t.Fatal("initial checkpoint did not complete")
		}
	})
	ck0 := node.Log.LastCheckpoint()
	if ck0 == nil {
		t.Fatal("complete checkpoint invisible to LastCheckpoint")
	}

	completed := false
	for step := 0; step < 64 && !completed; step++ {
		step := step
		tc.run(t, func(p *sim.Proc) {
			// Fresh dirty state and log delta for this round's checkpoint.
			for i := int64(0); i < 10; i++ {
				k := (int64(step)*10 + i) * 3 % 200
				commit(p, k, fmt.Sprintf("round-%d-%d", step, i))
			}
			tc.c.ArmCheckpointCrash(node, step)
			if _, err := tc.c.CheckpointNode(p, node, 4); err != nil {
				t.Fatal(err)
			}
			if !node.Down() {
				// The protocol finished before the countdown: sweep complete.
				tc.c.ArmCheckpointCrash(node, -1)
				completed = true
				verify(p, step)
				return
			}
			if _, _, err := tc.c.RestartNode(p, node); err != nil {
				t.Fatalf("step %d: restart: %v", step, err)
			}
			// The crashed round's pair is torn (or, for the late steps,
			// already durable): restart must have used a complete
			// checkpoint either way, never a half-written one.
			if ck := node.Log.LastCheckpoint(); ck == nil || ck.Begin < ck0.Begin {
				t.Fatalf("step %d: checkpoint regressed: %+v (had begin %d)", step, ck, ck0.Begin)
			}
			if !node.LastRecovery.Checkpointed {
				t.Fatalf("step %d: restart ignored the complete checkpoint", step)
			}
			if node.LastRecovery.Redo == 0 {
				t.Fatalf("step %d: replay started at the log head despite a checkpoint", step)
			}
			verify(p, step)
		})
	}
	if !completed {
		t.Fatal("sweep never reached a completed checkpoint (protocol grew beyond 64 steps?)")
	}
}

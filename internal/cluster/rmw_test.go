package cluster

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// TestReadModifyWriteDuringMigration hammers a small set of counters with
// read-modify-write transactions (the TPC-C Payment pattern) while a range
// migrates, and verifies that the sum of all counters equals the number of
// committed increments — the strongest lost-update/duplicate detector.
func TestReadModifyWriteDuringMigration(t *testing.T) {
	for _, scheme := range []table.Scheme{table.Logical, table.Physiological} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			const n = 40 // small, hot key set
			env := sim.NewEnv(3)
			defer env.Close()
			cfg := DefaultConfig()
			cfg.Nodes = 3
			c := New(env, cfg)
			for _, node := range c.Nodes[1:] {
				node.HW.ForceActive()
			}
			schema := &table.Schema{
				ID: 1, Name: "ctr", KeyCols: 1,
				Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColInt64}},
			}
			if _, err := c.Master.CreateTable(schema, scheme, []RangeSpec{
				{Low: nil, High: ik(int64(n / 2)), Owner: c.Nodes[0]},
				{Low: ik(int64(n / 2)), High: nil, Owner: c.Nodes[1]},
			}); err != nil {
				t.Fatal(err)
			}
			env.Spawn("load", func(p *sim.Proc) {
				i := 0
				c.Master.BulkLoad(p, "ctr", func() ([]byte, []byte, bool) {
					if i >= n {
						return nil, nil, false
					}
					payload, _ := schema.EncodeRow(table.Row{int64(i), int64(0)})
					key := ik(int64(i))
					i++
					return key, payload, true
				})
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}

			stop := false
			commits := 0
			for w := 0; w < 6; w++ {
				w := w
				env.Spawn(fmt.Sprintf("rmw-%d", w), func(p *sim.Proc) {
					rng := env.Rand
					for !stop {
						k := ik(int64(rng.Intn(n)))
						s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[w%2])
						raw, ok, err := s.Get(p, "ctr", k)
						if err != nil || !ok {
							s.Abort(p)
							t.Errorf("get: %v %v", ok, err)
							return
						}
						row, _ := schema.DecodeRow(raw)
						row[1] = row[1].(int64) + 1
						payload, _ := schema.EncodeRow(row)
						if err := s.Put(p, "ctr", k, payload); err != nil {
							s.Abort(p)
							p.Sleep(time.Millisecond)
							continue
						}
						if err := s.Commit(p); err != nil {
							s.Abort(p)
							continue
						}
						commits++
						p.Sleep(500 * time.Microsecond)
					}
				})
			}
			env.Spawn("migrate", func(p *sim.Proc) {
				p.Sleep(30 * time.Millisecond)
				if err := c.Master.MigrateRange(p, "ctr", ik(int64(n/4)), ik(int64(3*n/4)), c.Nodes[2]); err != nil {
					t.Errorf("migrate: %v", err)
				}
				p.Sleep(100 * time.Millisecond)
				stop = true
			})
			if err := env.RunUntil(5 * time.Minute); err != nil {
				t.Fatal(err)
			}

			env.Spawn("verify", func(p *sim.Proc) {
				s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
				defer s.Abort(p)
				var total int64
				rows := 0
				err := s.Scan(p, "ctr", nil, nil, func(_, payload []byte) bool {
					row, derr := schema.DecodeRow(payload)
					if derr != nil {
						t.Error(derr)
						return false
					}
					total += row[1].(int64)
					rows++
					return true
				})
				if err != nil {
					t.Error(err)
				}
				if rows != n {
					t.Errorf("rows = %d, want %d", rows, n)
				}
				if total != int64(commits) {
					t.Errorf("counter sum = %d, committed increments = %d (lost %d)",
						total, commits, int64(commits)-total)
				}
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

var _ = binary.LittleEndian
var _ = keycodec.Int64Key

package cluster

import (
	"errors"
	"fmt"
	"testing"

	"wattdb/internal/cc"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// TestNodeCrashRecovery simulates a node failure after a burst of committed
// (and one uncommitted) transactions: the node's volatile state is discarded
// and its partitions are rebuilt from the write-ahead log. Every committed
// write must reappear; the in-flight transaction must not.
func TestNodeCrashRecovery(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 400)
	defer tc.env.Close()
	node := tc.c.Nodes[0]
	master := tc.c.Master

	expected := map[int64]string{}
	tc.run(t, func(p *sim.Proc) {
		// Committed updates.
		for i := 0; i < 60; i++ {
			k := int64(i * 3 % 200) // keys on node 0's half
			s := master.Begin(p, cc.SnapshotIsolation, node)
			val := fmt.Sprintf("committed-%d", i)
			payload, _ := kvSchema().EncodeRow(table.Row{k, val})
			if err := s.Put(p, "kv", ik(k), payload); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(p); err != nil {
				t.Fatal(err)
			}
			expected[k] = val
		}
		// One transaction that never commits (its effects must be lost or
		// rolled back by recovery).
		loser := master.Begin(p, cc.SnapshotIsolation, node)
		payload, _ := kvSchema().EncodeRow(table.Row{int64(7), "UNCOMMITTED"})
		if err := loser.Put(p, "kv", ik(7), payload); err != nil {
			t.Fatal(err)
		}
		// Crash: the node loses everything volatile. Rebuild each
		// partition from scratch and replay the log.
		recovered := map[uint64]wal.Target{}
		fresh := map[table.PartID]*table.Partition{}
		for id, pt := range node.Parts {
			np := table.NewPartition(id, pt.Schema, pt.Scheme, pt.Low, pt.High, node.Deps())
			recovered[uint64(id)] = np
			fresh[id] = np
		}
		redone, undone, err := wal.Recover(p, node.Log.Iter(), recovered)
		if err != nil {
			t.Fatal(err)
		}
		if redone == 0 {
			t.Fatal("recovery redid nothing")
		}
		t.Logf("recovery: %d redone, %d undone", redone, undone)

		// Verify the recovered partitions against the committed state.
		r := master.Oracle.Begin(cc.SnapshotIsolation)
		defer master.Oracle.Abort(r)
		for k, want := range expected {
			var got string
			found := false
			for _, np := range fresh {
				raw, ok, err := np.Get(p, r, ik(k))
				if err != nil {
					if _, no := err.(table.ErrNotOwned); no {
						continue
					}
					t.Fatal(err)
				}
				if ok {
					row, _ := kvSchema().DecodeRow(raw)
					got = row[1].(string)
					found = true
					break
				}
			}
			if !found || got != want {
				t.Fatalf("key %d after recovery = %q (found=%v), want %q", k, got, found, want)
			}
		}
		// The loser's write must not have survived.
		for _, np := range fresh {
			raw, ok, err := np.Get(p, r, ik(7))
			if err != nil {
				continue
			}
			if ok {
				row, _ := kvSchema().DecodeRow(raw)
				if row[1].(string) == "UNCOMMITTED" {
					t.Fatal("uncommitted write survived recovery")
				}
			}
		}
	})
}

// TestCrashRestartNode exercises the first-class power-fail APIs: after
// CrashNode, the node's partitions reject access; after RestartNode, every
// bulk-loaded record and every acknowledged commit is readable again and
// the in-flight transaction's write is gone.
func TestCrashRestartNode(t *testing.T) {
	const n = 400
	tc := newTestCluster(t, table.Physiological, 2, n)
	defer tc.env.Close()
	node := tc.c.Nodes[0]
	master := tc.c.Master

	expected := map[int64]string{}
	for i := 0; i < n; i++ {
		expected[int64(i)] = fmt.Sprintf("val-%06d", i)
	}
	tc.run(t, func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			k := int64(i * 3 % 200) // keys on node 0's half
			s := master.Begin(p, cc.SnapshotIsolation, node)
			val := fmt.Sprintf("committed-%d", i)
			payload, _ := kvSchema().EncodeRow(table.Row{k, val})
			if err := s.Put(p, "kv", ik(k), payload); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(p); err != nil {
				t.Fatal(err)
			}
			expected[k] = val
		}
		// An in-flight transaction whose staged write must not survive.
		loser := master.Begin(p, cc.SnapshotIsolation, node)
		payload, _ := kvSchema().EncodeRow(table.Row{int64(7), "UNCOMMITTED"})
		if err := loser.Put(p, "kv", ik(7), payload); err != nil {
			t.Fatal(err)
		}

		tc.c.CrashNode(node)
		if !node.Down() {
			t.Fatal("node not down after CrashNode")
		}
		// The crashed half is unavailable; the surviving half still serves.
		probe := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
		if _, _, err := probe.Get(p, "kv", ik(10)); err == nil {
			t.Fatal("read of crashed node's range succeeded")
		}
		if _, ok, err := probe.Get(p, "kv", ik(300)); err != nil || !ok {
			t.Fatalf("read of surviving node's range failed: %v %v", ok, err)
		}
		probe.Abort(p)

		redone, _, err := tc.c.RestartNode(p, node)
		if err != nil {
			t.Fatal(err)
		}
		if redone == 0 {
			t.Fatal("recovery redid nothing")
		}

		r := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
		for k, want := range expected {
			v, ok, err := r.Get(p, "kv", ik(k))
			if err != nil || !ok {
				t.Fatalf("key %d after restart: ok=%v err=%v", k, ok, err)
			}
			row, _ := kvSchema().DecodeRow(v)
			if row[1].(string) != want {
				t.Fatalf("key %d after restart = %q, want %q", k, row[1], want)
			}
		}
		count := 0
		if err := r.Scan(p, "kv", nil, nil, func(_, _ []byte) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("scan after restart saw %d records, want %d", count, n)
		}
		r.Abort(p)
	})
}

// TestRecoveredPartitionFencesOldSnapshots pins the history-floor contract
// the KV chaos oracle enforced the hard way: recovery rebuilds only the
// newest committed image of every key (version chains die with DRAM), so a
// snapshot taken before a crash must NOT read a recovered partition — it
// could silently miss the superseded version it is entitled to. It gets a
// retryable ErrSnapshotTooOld instead, and a fresh snapshot reads normally.
func TestRecoveredPartitionFencesOldSnapshots(t *testing.T) {
	tc := newTestCluster(t, table.Physiological, 2, 400)
	defer tc.env.Close()
	node := tc.c.Nodes[0]
	master := tc.c.Master

	tc.run(t, func(p *sim.Proc) {
		write := func(k int64, val string) {
			s := master.Begin(p, cc.SnapshotIsolation, node)
			payload, _ := kvSchema().EncodeRow(table.Row{k, val})
			if err := s.Put(p, "kv", ik(k), payload); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(p); err != nil {
				t.Fatal(err)
			}
		}
		write(10, "v1")
		// The old reader's snapshot covers v1 but not the overwrite below.
		old := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
		write(10, "v2")

		tc.c.CrashNode(node)
		if _, _, err := tc.c.RestartNode(p, node); err != nil {
			t.Fatal(err)
		}
		// Recovery installed only v2; the version holding v1 is gone. The
		// old snapshot must be refused — returning v2 would be a wrong
		// read, returning "absent" a phantom delete.
		_, _, err := old.Get(p, "kv", ik(10))
		var tooOld table.ErrSnapshotTooOld
		if !errors.As(err, &tooOld) {
			t.Fatalf("pre-crash snapshot read of recovered partition: err=%v, want ErrSnapshotTooOld", err)
		}
		if serr := old.Scan(p, "kv", ik(0), ik(20), func(_, _ []byte) bool { return true }); !errors.As(serr, &tooOld) {
			t.Fatalf("pre-crash snapshot scan of recovered partition: err=%v, want ErrSnapshotTooOld", serr)
		}
		old.Abort(p)

		// A fresh snapshot is above the floor and reads the recovered state.
		fresh := master.Begin(p, cc.SnapshotIsolation, tc.c.Nodes[1])
		v, ok, err := fresh.Get(p, "kv", ik(10))
		if err != nil || !ok {
			t.Fatalf("fresh read after restart: ok=%v err=%v", ok, err)
		}
		row, _ := kvSchema().DecodeRow(v)
		if row[1].(string) != "v2" {
			t.Fatalf("fresh read = %q, want %q", row[1], "v2")
		}
		fresh.Abort(p)
	})
}

var _ = keycodec.Int64Key

package exec

import (
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Remote is an exchange edge between a child operator running on node
// ChildNode and a consumer on ConsumerNode. Every Next crosses the network
// twice: a small request and a response sized by the batch. With Vector=1
// children this reproduces the paper's collapse to under 1 k records/s;
// with vectorised children the per-record cost amortises (Fig. 1).
type Remote struct {
	Child        Operator
	Net          *hw.Network
	ChildNode    int
	ConsumerNode int
}

// Open opens the child (the open handshake also crosses the network).
func (o *Remote) Open(p *sim.Proc) error {
	o.Net.Transfer(p, o.ConsumerNode, o.ChildNode, 64)
	return o.Child.Open(p)
}

// Next fetches the child's next batch across the network.
func (o *Remote) Next(p *sim.Proc) ([]table.Row, error) {
	o.Net.Transfer(p, o.ConsumerNode, o.ChildNode, 32) // next() request
	batch, err := o.Child.Next(p)
	if err != nil || batch == nil {
		o.Net.Transfer(p, o.ChildNode, o.ConsumerNode, 32) // EOF / error frame
		return nil, err
	}
	var bytes int64
	for _, r := range batch {
		bytes += RowBytes(r)
	}
	o.Net.Transfer(p, o.ChildNode, o.ConsumerNode, bytes)
	return batch, nil
}

// Close closes the child.
func (o *Remote) Close(p *sim.Proc) {
	o.Net.Transfer(p, o.ConsumerNode, o.ChildNode, 32)
	o.Child.Close(p)
}

// Buffer is the paper's buffering operator: a proxy that asynchronously
// prefetches batches from its child into a bounded queue, so the consumer's
// Next usually returns without waiting on the (possibly remote) child.
// "While the projection operator is still processing a set of records, the
// buffer operator can asynchronously prefetch new records" (Sect. 3.3).
type Buffer struct {
	Child Operator
	Env   *sim.Env
	Depth int

	ch        *sim.Chan[fetchResult]
	cancelled *bool
}

type fetchResult struct {
	batch []table.Row
	err   error
}

// Open opens the child and starts the prefetcher process.
func (o *Buffer) Open(p *sim.Proc) error {
	if o.Depth <= 0 {
		o.Depth = 4
	}
	if err := o.Child.Open(p); err != nil {
		return err
	}
	o.ch = sim.NewChan[fetchResult](o.Env, o.Depth)
	cancelled := false
	o.cancelled = &cancelled
	ch := o.ch
	child := o.Child
	o.Env.Spawn("prefetch", func(pp *sim.Proc) {
		for !cancelled {
			batch, err := child.Next(pp)
			if cancelled {
				return
			}
			if batch != nil {
				// The child reuses its batch slice across Next calls
				// (Operator contract), but the queue holds several batches
				// at once: copy the headers we enqueue.
				batch = append([]table.Row(nil), batch...)
			}
			if !ch.Put(pp, fetchResult{batch, err}) {
				return // consumer closed early
			}
			if batch == nil || err != nil {
				return
			}
		}
	})
	return nil
}

// Next returns the next prefetched batch, waiting only when the prefetcher
// has fallen behind.
func (o *Buffer) Next(p *sim.Proc) ([]table.Row, error) {
	res, ok := o.ch.Get(p)
	if !ok {
		return nil, nil
	}
	return res.batch, res.err
}

// Close stops the prefetcher and closes the child.
func (o *Buffer) Close(p *sim.Proc) {
	*o.cancelled = true
	// Drain so a producer blocked on Put can finish and observe the flag.
	for o.ch.Len() > 0 {
		o.ch.Get(p)
	}
	o.ch.Close()
	o.Child.Close(p)
}

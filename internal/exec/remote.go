package exec

import (
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Remote is an exchange edge between a child operator running on node
// ChildNode and a consumer on ConsumerNode. Every Next crosses the network
// twice: a small request and a response sized by the batch. With Vector=1
// children this reproduces the paper's collapse to under 1 k records/s;
// with vectorised children the per-record cost amortises (Fig. 1).
type Remote struct {
	Child        Operator
	Net          *hw.Network
	ChildNode    int
	ConsumerNode int
}

// Open opens the child (the open handshake also crosses the network).
func (o *Remote) Open(p *sim.Proc) error {
	o.Net.Transfer(p, o.ConsumerNode, o.ChildNode, 64)
	return o.Child.Open(p)
}

// Next fetches the child's next batch across the network. The response size
// comes from the batch's column widths (Batch.WireBytes), not a per-row
// walk over boxed values.
func (o *Remote) Next(p *sim.Proc) (*table.Batch, error) {
	o.Net.Transfer(p, o.ConsumerNode, o.ChildNode, 32) // next() request
	batch, err := o.Child.Next(p)
	if err != nil || batch == nil {
		o.Net.Transfer(p, o.ChildNode, o.ConsumerNode, 32) // EOF / error frame
		return nil, err
	}
	o.Net.Transfer(p, o.ChildNode, o.ConsumerNode, batch.WireBytes())
	return batch, nil
}

// Close closes the child.
func (o *Remote) Close(p *sim.Proc) {
	o.Net.Transfer(p, o.ConsumerNode, o.ChildNode, 32)
	o.Child.Close(p)
}

// Buffer is the paper's buffering operator: a proxy that asynchronously
// prefetches batches from its child into a bounded queue, so the consumer's
// Next usually returns without waiting on the (possibly remote) child.
// "While the projection operator is still processing a set of records, the
// buffer operator can asynchronously prefetch new records" (Sect. 3.3).
type Buffer struct {
	Child Operator
	Env   *sim.Env
	Depth int

	ch        *sim.Chan[fetchResult]
	cancelled *bool
	// free recycles the deep copies circulating through the queue: the
	// prefetcher copies the child's batch into a recycled one (column-vector
	// copies, Batch.CopyFrom) and the consumer returns the batch it finished
	// with on its following Next. Steady state allocates nothing. The slice
	// is shared by the two simulation processes; the kernel is cooperative,
	// so unsynchronised access is safe.
	free *[]*table.Batch
	last *table.Batch
}

type fetchResult struct {
	batch *table.Batch
	err   error
}

// Open opens the child and starts the prefetcher process.
func (o *Buffer) Open(p *sim.Proc) error {
	if o.Depth <= 0 {
		o.Depth = 4
	}
	if err := o.Child.Open(p); err != nil {
		return err
	}
	o.ch = sim.NewChan[fetchResult](o.Env, o.Depth)
	cancelled := false
	o.cancelled = &cancelled
	if o.free == nil {
		free := make([]*table.Batch, 0, o.Depth+2)
		o.free = &free
	}
	o.last = nil
	ch := o.ch
	child := o.Child
	free := o.free
	o.Env.Spawn("prefetch", func(pp *sim.Proc) {
		for !cancelled {
			batch, err := child.Next(pp)
			if cancelled {
				return
			}
			if batch != nil {
				// The child reuses its batch across Next calls (Operator
				// contract), but the queue holds several batches at once:
				// deep-copy into a recycled batch before enqueueing.
				var cp *table.Batch
				if n := len(*free); n > 0 {
					cp = (*free)[n-1]
					*free = (*free)[:n-1]
				} else {
					cp = &table.Batch{}
				}
				cp.CopyFrom(batch)
				batch = cp
			}
			if !ch.Put(pp, fetchResult{batch, err}) {
				return // consumer closed early
			}
			if batch == nil || err != nil {
				return
			}
		}
	})
	return nil
}

// Next returns the next prefetched batch, waiting only when the prefetcher
// has fallen behind.
func (o *Buffer) Next(p *sim.Proc) (*table.Batch, error) {
	if o.last != nil {
		*o.free = append(*o.free, o.last)
		o.last = nil
	}
	res, ok := o.ch.Get(p)
	if !ok {
		return nil, nil
	}
	o.last = res.batch
	return res.batch, res.err
}

// Close stops the prefetcher and closes the child. Safe when Open failed
// before the prefetcher was started (Drain/Collect close the plan
// unconditionally).
func (o *Buffer) Close(p *sim.Proc) {
	if o.cancelled != nil {
		*o.cancelled = true
	}
	if o.ch != nil {
		// Drain so a producer blocked on Put can finish and observe the
		// flag; queued deep copies go back to the free list, not the GC.
		for o.ch.Len() > 0 {
			if res, ok := o.ch.Get(p); ok && res.batch != nil {
				*o.free = append(*o.free, res.batch)
			}
		}
		o.ch.Close()
		o.ch = nil
	}
	if o.last != nil {
		*o.free = append(*o.free, o.last)
		o.last = nil
	}
	o.Child.Close(p)
}

package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// memSource serves a pre-built batch in vector-sized reused slices — the
// minimal Operator for driving joins and exchanges without a partition
// underneath. ord declares its output ordering (nil = unordered).
type memSource struct {
	data   *table.Batch
	vector int
	ord    []int
	// errAfter, when > 0, fails the source after that many Next calls.
	errAfter int

	out   *table.Batch
	pos   int
	calls int
}

func (s *memSource) Open(*sim.Proc) error {
	s.pos, s.calls = 0, 0
	if s.out == nil {
		s.out = table.NewBatch(s.data.Schema)
	}
	return nil
}

func (s *memSource) Next(*sim.Proc) (*table.Batch, error) {
	s.calls++
	if s.errAfter > 0 && s.calls > s.errAfter {
		return nil, fmt.Errorf("memSource: induced failure")
	}
	if s.pos >= s.data.Len() {
		return nil, nil
	}
	end := s.pos + s.vector
	if end > s.data.Len() {
		end = s.data.Len()
	}
	s.out.Reset()
	for i := s.pos; i < end; i++ {
		s.out.AppendFrom(s.data, i)
	}
	s.pos = end
	return s.out, nil
}

func (s *memSource) Close(*sim.Proc) {}

func (s *memSource) Ordering() []int { return s.ord }

// joinEnv is a one-node harness for operator tests that need CPU accounting
// but no storage.
func joinEnv(t testing.TB) (*sim.Env, *hw.Node) {
	t.Helper()
	env := sim.NewEnv(1)
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	node := hw.NewNode(env, 1, cal, net)
	node.ForceActive()
	return env, node
}

func runJoin(t testing.TB, env *sim.Env, fn func(p *sim.Proc)) {
	t.Helper()
	env.Spawn("test", fn)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// fuzzBatch fills a batch with rows whose key columns are drawn from a small
// space (forcing duplicates) and include the type's zero value (the codebase's
// null stand-in: 0, 0.0, "").
func fuzzBatch(rng *rand.Rand, schema *table.Schema, rows, keySpace int) *table.Batch {
	b := table.NewBatch(schema)
	for i := 0; i < rows; i++ {
		row := make(table.Row, len(schema.Columns))
		for c, col := range schema.Columns {
			switch col.Type {
			case table.ColInt64:
				row[c] = int64(rng.Intn(keySpace))
			case table.ColFloat64:
				row[c] = float64(rng.Intn(keySpace)) / 2
			case table.ColString:
				if rng.Intn(keySpace) == 0 {
					row[c] = ""
				} else {
					row[c] = fmt.Sprintf("s%02d", rng.Intn(keySpace))
				}
			}
		}
		if err := b.AppendRow(row); err != nil {
			panic(err)
		}
	}
	return b
}

// nestedLoopExpected is the reference join: every (l, r) row pair agreeing on
// the key columns, rendered as the boxed concatenated row.
func nestedLoopExpected(l, r *table.Batch, lk, rk []int) []string {
	var out []string
	for li := 0; li < l.Len(); li++ {
		for ri := 0; ri < r.Len(); ri++ {
			match := true
			for k := range lk {
				if l.Value(lk[k], li) != r.Value(rk[k], ri) {
					match = false
					break
				}
			}
			if match {
				row := append(l.Row(li), r.Row(ri)...)
				out = append(out, fmt.Sprint(row))
			}
		}
	}
	sort.Strings(out)
	return out
}

func collectJoined(t testing.TB, env *sim.Env, op Operator) []string {
	var got []string
	runJoin(t, env, func(p *sim.Proc) {
		rows, err := Collect(p, op)
		if err != nil {
			t.Errorf("join failed: %v", err)
			return
		}
		for _, r := range rows {
			got = append(got, fmt.Sprint(r))
		}
	})
	sort.Strings(got)
	return got
}

func requireSameRows(t *testing.T, got, want []string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d mismatch:\n got  %s\n want %s", label, i, got[i], want[i])
		}
	}
}

var (
	joinIntSchemaL = &table.Schema{ID: 101, Name: "L", KeyCols: 1, Columns: []table.Column{
		{Name: "k", Type: table.ColInt64}, {Name: "lv", Type: table.ColFloat64}}}
	joinIntSchemaR = &table.Schema{ID: 102, Name: "R", KeyCols: 1, Columns: []table.Column{
		{Name: "k", Type: table.ColInt64}, {Name: "rv", Type: table.ColString}}}
	joinMixSchemaL = &table.Schema{ID: 103, Name: "ML", KeyCols: 2, Columns: []table.Column{
		{Name: "k1", Type: table.ColInt64}, {Name: "k2", Type: table.ColString}, {Name: "lv", Type: table.ColInt64}}}
	joinMixSchemaR = &table.Schema{ID: 104, Name: "MR", KeyCols: 2, Columns: []table.Column{
		{Name: "j1", Type: table.ColInt64}, {Name: "j2", Type: table.ColString}, {Name: "rv", Type: table.ColFloat64}}}
)

// TestHashJoinMatchesNestedLoop fuzzes the hash join against the nested-loop
// reference: single int keys and composite int+string keys, duplicate keys,
// zero-value keys, empty sides, vector sizes that do and do not divide the
// row counts.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, tc := range []struct {
			name   string
			ls, rs *table.Schema
			lk, rk []int
		}{
			{"int", joinIntSchemaL, joinIntSchemaR, []int{0}, []int{0}},
			{"composite", joinMixSchemaL, joinMixSchemaR, []int{0, 1}, []int{0, 1}},
			{"string", joinMixSchemaL, joinMixSchemaR, []int{1}, []int{1}},
		} {
			lRows, rRows := rng.Intn(80), rng.Intn(80)
			if seed == 1 {
				lRows = 0 // empty build side
			}
			if seed == 2 {
				rRows = 0 // empty probe side
			}
			l := fuzzBatch(rng, tc.ls, lRows, 7)
			r := fuzzBatch(rng, tc.rs, rRows, 7)
			env, node := joinEnv(t)
			join := &HashJoin{
				Build:     &memSource{data: l, vector: 13},
				Probe:     &memSource{data: r, vector: 9},
				Node:      node,
				BuildKeys: tc.lk,
				ProbeKeys: tc.rk,
				CPUPerRow: time.Microsecond,
				Vector:    16,
			}
			got := collectJoined(t, env, join)
			want := nestedLoopExpected(l, r, tc.lk, tc.rk)
			requireSameRows(t, got, want, fmt.Sprintf("hash/%s seed=%d", tc.name, seed))
			env.Close()
		}
	}
}

// sortBatchByKeys returns a copy of b sorted ascending on the given columns
// (key-codec order, matching MergeJoin's comparator).
func sortBatchByKeys(b *table.Batch, keys []int) *table.Batch {
	perm := make([]int, b.Len())
	for i := range perm {
		perm[i] = i
	}
	var ka, kb []byte
	sort.SliceStable(perm, func(i, j int) bool {
		ka = b.AppendColsKey(ka[:0], keys, perm[i])
		kb = b.AppendColsKey(kb[:0], keys, perm[j])
		return string(ka) < string(kb)
	})
	out := table.NewBatch(b.Schema)
	for _, i := range perm {
		out.AppendFrom(b, i)
	}
	return out
}

// TestMergeJoinMatchesNestedLoop fuzzes the merge join (inputs pre-sorted on
// the join keys, as the Ordered metadata requires) against the nested-loop
// reference, covering duplicate-key runs on both sides.
func TestMergeJoinMatchesNestedLoop(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		for _, tc := range []struct {
			name   string
			ls, rs *table.Schema
			lk, rk []int
		}{
			{"int", joinIntSchemaL, joinIntSchemaR, []int{0}, []int{0}},
			{"composite", joinMixSchemaL, joinMixSchemaR, []int{0, 1}, []int{0, 1}},
		} {
			lRows, rRows := rng.Intn(80), rng.Intn(80)
			if seed == 1 {
				lRows = 0
			}
			if seed == 2 {
				rRows = 0
			}
			l := sortBatchByKeys(fuzzBatch(rng, tc.ls, lRows, 6), tc.lk)
			r := sortBatchByKeys(fuzzBatch(rng, tc.rs, rRows, 6), tc.rk)
			env, node := joinEnv(t)
			join := &MergeJoin{
				Left:      &memSource{data: l, vector: 11, ord: tc.lk},
				Right:     &memSource{data: r, vector: 5, ord: tc.rk},
				Node:      node,
				LeftKeys:  tc.lk,
				RightKeys: tc.rk,
				CPUPerRow: time.Microsecond,
				Vector:    16,
			}
			got := collectJoined(t, env, join)
			want := nestedLoopExpected(l, r, tc.lk, tc.rk)
			requireSameRows(t, got, want, fmt.Sprintf("merge/%s seed=%d", tc.name, seed))
			env.Close()
		}
	}
}

// TestMergeJoinAssertsOrdering verifies the satellite fix: a merge join over
// an input that does not declare the join keys as an ordering prefix is
// rejected at Open, instead of silently producing garbage.
func TestMergeJoinAssertsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := fuzzBatch(rng, joinIntSchemaL, 10, 5)
	r := fuzzBatch(rng, joinIntSchemaR, 10, 5)
	env, node := joinEnv(t)
	defer env.Close()
	cases := []struct {
		name     string
		lo, ro   []int
		wantOpen bool
	}{
		{"both declared", []int{0}, []int{0}, true},
		{"left unordered", nil, []int{0}, false},
		{"right wrong column", []int{0}, []int{1}, false},
	}
	runJoin(t, env, func(p *sim.Proc) {
		for _, tc := range cases {
			join := &MergeJoin{
				Left:      &memSource{data: sortBatchByKeys(l, []int{0}), vector: 4, ord: tc.lo},
				Right:     &memSource{data: sortBatchByKeys(r, []int{0}), vector: 4, ord: tc.ro},
				Node:      node,
				LeftKeys:  []int{0},
				RightKeys: []int{0},
				Vector:    8,
			}
			err := join.Open(p)
			join.Close(p)
			if tc.wantOpen && err != nil {
				t.Errorf("%s: Open failed: %v", tc.name, err)
			}
			if !tc.wantOpen && err == nil {
				t.Errorf("%s: Open accepted unordered input", tc.name)
			}
		}
	})
}

// TestSortDeclaresOrdering verifies Sort's OrderBy metadata flows through
// OrderingOf and feeds a MergeJoin whose inputs are sorted by explicit Sort
// operators rather than index order.
func TestSortDeclaresOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := fuzzBatch(rng, joinIntSchemaL, 40, 5)
	r := fuzzBatch(rng, joinIntSchemaR, 40, 5)
	env, node := joinEnv(t)
	defer env.Close()
	mkSort := func(src *table.Batch) *Sort {
		return &Sort{
			Child:     &memSource{data: src, vector: 8},
			Node:      node,
			Less:      func(b *table.Batch, i, j int) bool { return b.Int(0, i) < b.Int(0, j) },
			OrderBy:   []int{0},
			CPUPerRow: time.Microsecond,
			Vector:    8,
		}
	}
	join := &MergeJoin{
		Left: mkSort(l), Right: mkSort(r),
		Node: node, LeftKeys: []int{0}, RightKeys: []int{0},
		CPUPerRow: time.Microsecond, Vector: 16,
	}
	if got := OrderingOf(join); len(got) != 1 || got[0] != 0 {
		t.Fatalf("merge join ordering = %v, want [0]", got)
	}
	got := collectJoined(t, env, join)
	want := nestedLoopExpected(l, r, []int{0}, []int{0})
	requireSameRows(t, got, want, "sorted-input merge join")
}

// TestDrainClosesPlanOnOpenError verifies the satellite fix: when Open fails
// partway through the tree, Drain still closes the plan so partially opened
// operators (a Buffer whose child opened, a Sort holding its accumulation)
// release their state. Close must be a no-op on the unopened part.
func TestDrainClosesPlanOnOpenError(t *testing.T) {
	env, node := joinEnv(t)
	defer env.Close()
	rng := rand.New(rand.NewSource(3))
	data := fuzzBatch(rng, joinIntSchemaL, 20, 5)
	runJoin(t, env, func(p *sim.Proc) {
		// MergeJoin.Open fails (unordered input) above an opened Buffer:
		// Drain must still close the tree, stopping the prefetcher.
		join := &MergeJoin{
			Left:      &Buffer{Child: &memSource{data: data, vector: 4}, Env: env},
			Right:     &memSource{data: data, vector: 4},
			Node:      node,
			LeftKeys:  []int{0},
			RightKeys: []int{0},
		}
		if _, err := Drain(p, join); err == nil {
			t.Error("Drain accepted a merge join over unordered input")
		}
		// The buffer was never opened; its Close must tolerate that.

		// HashJoin.Open fails while draining its build side, with the probe
		// side (a Buffer) already opened and prefetching: Drain's close must
		// stop the prefetcher, or it would sit parked on the queue forever.
		join2 := &HashJoin{
			Build:     &memSource{data: data, vector: 4, errAfter: 2},
			Probe:     &Buffer{Child: &memSource{data: data, vector: 4}, Env: env, Depth: 2},
			Node:      node,
			BuildKeys: []int{0},
			ProbeKeys: []int{0},
			Vector:    8,
		}
		if _, err := Drain(p, join2); err == nil {
			t.Error("Drain swallowed the build-side failure")
		}
	})
}

// TestHashJoinProbeZeroAlloc pins the steady-state allocation count of the
// full hash-join cycle — rebuild from a warm build side, probe, emit — at
// zero, for both the int64 fast path and the byte-encoded composite path.
func TestHashJoinProbeZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name   string
		ls, rs *table.Schema
		lk, rk []int
	}{
		{"int", joinIntSchemaL, joinIntSchemaR, []int{0}, []int{0}},
		{"composite", joinMixSchemaL, joinMixSchemaR, []int{0, 1}, []int{0, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			l := fuzzBatch(rng, tc.ls, 64, 8)
			r := fuzzBatch(rng, tc.rs, 256, 8)
			env, node := joinEnv(t)
			defer env.Close()
			join := &HashJoin{
				Build:     &memSource{data: l, vector: 16},
				Probe:     &memSource{data: r, vector: 16},
				Node:      node,
				BuildKeys: tc.lk,
				ProbeKeys: tc.rk,
				CPUPerRow: time.Microsecond,
				Vector:    32,
			}
			runJoin(t, env, func(p *sim.Proc) {
				drain := func() {
					if _, err := Drain(p, join); err != nil {
						t.Error(err)
					}
				}
				drain() // warm: build accumulation, hash maps, output batch
				drain()
				if allocs := testing.AllocsPerRun(10, drain); allocs != 0 {
					t.Errorf("hash join (%s keys) allocates %.1f times per drain, want 0", tc.name, allocs)
				}
			})
		})
	}
}

// TestMergeJoinZeroAlloc pins the warm merge-join cycle at zero allocations:
// group-run copies, comparisons, and emission all reuse their storage.
func TestMergeJoinZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := sortBatchByKeys(fuzzBatch(rng, joinIntSchemaL, 128, 16), []int{0})
	r := sortBatchByKeys(fuzzBatch(rng, joinIntSchemaR, 128, 16), []int{0})
	env, node := joinEnv(t)
	defer env.Close()
	join := &MergeJoin{
		Left:      &memSource{data: l, vector: 16, ord: []int{0}},
		Right:     &memSource{data: r, vector: 16, ord: []int{0}},
		Node:      node,
		LeftKeys:  []int{0},
		RightKeys: []int{0},
		CPUPerRow: time.Microsecond,
		Vector:    32,
	}
	runJoin(t, env, func(p *sim.Proc) {
		drain := func() {
			if _, err := Drain(p, join); err != nil {
				t.Error(err)
			}
		}
		drain()
		drain()
		if allocs := testing.AllocsPerRun(10, drain); allocs != 0 {
			t.Errorf("merge join allocates %.1f times per drain, want 0", allocs)
		}
	})
}

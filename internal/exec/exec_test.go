package exec

import (
	"testing"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

type memFactory struct {
	nextID   storage.SegID
	pageSize int
	segPages int
}

func (f *memFactory) NewSegment(*sim.Proc) (*storage.Segment, error) {
	f.nextID++
	return storage.NewSegment(f.nextID, f.pageSize, f.segPages), nil
}
func (f *memFactory) Pager(seg *storage.Segment) btree.Pager { return btree.MemPager{Seg: seg} }
func (f *memFactory) DropSegment(*sim.Proc, storage.SegID)   {}

type nullDevice struct{}

func (nullDevice) Append(*sim.Proc, int64) {}

type world struct {
	env    *sim.Env
	oracle *cc.Oracle
	net    *hw.Network
	nodes  map[int]*hw.Node
	part   *table.Partition
	schema *table.Schema
}

// newWorld builds two active nodes and a partition with n rows owned by
// node 1.
func newWorld(t *testing.T, n int) *world {
	t.Helper()
	env := sim.NewEnv(1)
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	n1 := hw.NewNode(env, 1, cal, net)
	n2 := hw.NewNode(env, 2, cal, net)
	n1.ForceActive()
	n2.ForceActive()
	oracle := cc.NewOracle()
	schema := &table.Schema{
		ID: 1, Name: "t", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColString}},
	}
	deps := table.Deps{
		Env:         env,
		Oracle:      oracle,
		Locks:       cc.NewLockManager(env),
		Log:         wal.NewLog(env, nullDevice{}),
		Factory:     &memFactory{pageSize: 4096, segPages: 64},
		LockTimeout: time.Second,
		PageSize:    4096,
		Compute:     n1.Compute, // partition owned by node 1
		CPUPerOp:    cal.CPUBTreeOp,
		CPUPerTuple: cal.CPUTupleScan,
	}
	part := table.NewPartition(1, schema, table.Physiological, nil, nil, deps)
	w := &world{env: env, oracle: oracle, net: net,
		nodes: map[int]*hw.Node{1: n1, 2: n2}, part: part, schema: schema}
	env.Spawn("load", func(p *sim.Proc) {
		txn := oracle.Begin(cc.SnapshotIsolation)
		for i := 0; i < n; i++ {
			key, _ := schema.Key(table.Row{int64(i), "payload"})
			payload, _ := schema.EncodeRow(table.Row{int64(i), "payload"})
			if err := part.Put(p, txn, key, payload); err != nil {
				t.Error(err)
				return
			}
		}
		if err := table.CommitTxn(p, txn, part); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) scan(vector int) *TableScan {
	return &TableScan{
		Part:   w.part,
		Txn:    w.oracle.Begin(cc.SnapshotIsolation),
		Vector: vector,
	}
}

func (w *world) run(t *testing.T, fn func(p *sim.Proc)) time.Duration {
	t.Helper()
	start := w.env.Now()
	w.env.Spawn("query", fn)
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
	return w.env.Now() - start
}

func TestTableScanReturnsAllRowsInOrder(t *testing.T) {
	w := newWorld(t, 100)
	defer w.env.Close()
	w.run(t, func(p *sim.Proc) {
		rows, err := Collect(p, w.scan(7))
		if err != nil {
			t.Error(err)
			return
		}
		if len(rows) != 100 {
			t.Errorf("rows = %d", len(rows))
			return
		}
		for i, r := range rows {
			if r[0].(int64) != int64(i) {
				t.Errorf("row %d key = %v", i, r[0])
				return
			}
		}
	})
}

func TestProjectSelectsColumns(t *testing.T) {
	w := newWorld(t, 10)
	defer w.env.Close()
	w.run(t, func(p *sim.Proc) {
		plan := &Project{Child: w.scan(4), Node: w.nodes[1], Cols: []int{1}, CPUPerRow: time.Microsecond}
		rows, err := Collect(p, plan)
		if err != nil || len(rows) != 10 {
			t.Errorf("rows = %d, err %v", len(rows), err)
			return
		}
		if len(rows[0]) != 1 || rows[0][0].(string) != "payload" {
			t.Errorf("projected row = %v", rows[0])
		}
	})
}

func TestFilterAndLimit(t *testing.T) {
	w := newWorld(t, 50)
	defer w.env.Close()
	w.run(t, func(p *sim.Proc) {
		plan := &Limit{
			N: 5,
			Child: &Filter{
				Child: w.scan(8),
				Node:  w.nodes[1],
				Pred:  func(b *table.Batch, i int) bool { return b.Int(0, i)%2 == 0 },
			},
		}
		rows, err := Collect(p, plan)
		if err != nil || len(rows) != 5 {
			t.Errorf("rows = %d, err %v", len(rows), err)
			return
		}
		for _, r := range rows {
			if r[0].(int64)%2 != 0 {
				t.Errorf("filter leaked %v", r[0])
			}
		}
	})
}

func TestSortOrdersDescending(t *testing.T) {
	w := newWorld(t, 30)
	defer w.env.Close()
	w.run(t, func(p *sim.Proc) {
		plan := &Sort{
			Child:     w.scan(8),
			Node:      w.nodes[1],
			Less:      func(b *table.Batch, i, j int) bool { return b.Int(0, i) > b.Int(0, j) },
			CPUPerRow: time.Microsecond,
			Vector:    8,
		}
		rows, err := Collect(p, plan)
		if err != nil || len(rows) != 30 {
			t.Errorf("rows = %d err %v", len(rows), err)
			return
		}
		for i := 1; i < len(rows); i++ {
			if rows[i-1][0].(int64) < rows[i][0].(int64) {
				t.Error("not sorted descending")
				return
			}
		}
	})
}

func TestGroupAggCountsAndSums(t *testing.T) {
	w := newWorld(t, 40)
	defer w.env.Close()
	w.run(t, func(p *sim.Proc) {
		// Group by k%4 via a projection trick: group on column computed by
		// filter-free mapping is not supported, so group on the string
		// column (one group) and sum keys.
		plan := &GroupAgg{
			Child:     w.scan(8),
			Node:      w.nodes[1],
			GroupCol:  1,
			SumCol:    0,
			CPUPerRow: time.Microsecond,
			Vector:    4,
		}
		rows, err := Collect(p, plan)
		if err != nil || len(rows) != 1 {
			t.Errorf("groups = %d err %v", len(rows), err)
			return
		}
		if rows[0][1].(int64) != 40 {
			t.Errorf("count = %v", rows[0][1])
		}
		if rows[0][2].(float64) != float64(39*40/2) {
			t.Errorf("sum = %v", rows[0][2])
		}
	})
}

func TestRemoteSingleRecordMuchSlowerThanVectorized(t *testing.T) {
	w := newWorld(t, 300)
	defer w.env.Close()
	single := w.run(t, func(p *sim.Proc) {
		plan := &Remote{Child: w.scan(1), Net: w.net, ChildNode: 1, ConsumerNode: 2}
		if n, err := Drain(p, plan); n != 300 || err != nil {
			t.Errorf("n=%d err=%v", n, err)
		}
	})
	vectorized := w.run(t, func(p *sim.Proc) {
		plan := &Remote{Child: w.scan(128), Net: w.net, ChildNode: 1, ConsumerNode: 2}
		if n, err := Drain(p, plan); n != 300 || err != nil {
			t.Errorf("n=%d err=%v", n, err)
		}
	})
	if single < 10*vectorized {
		t.Fatalf("single-record remote (%v) should be >10x slower than vectorised (%v)", single, vectorized)
	}
}

func TestBufferHidesChildLatency(t *testing.T) {
	w := newWorld(t, 200)
	defer w.env.Close()
	consumerWork := 200 * time.Microsecond

	slowConsume := func(p *sim.Proc, op Operator) {
		if err := op.Open(p); err != nil {
			t.Error(err)
			return
		}
		defer op.Close(p)
		for {
			batch, err := op.Next(p)
			if err != nil {
				t.Error(err)
				return
			}
			if batch == nil {
				return
			}
			p.Sleep(consumerWork) // simulated downstream processing
		}
	}
	plain := w.run(t, func(p *sim.Proc) {
		plan := &Remote{Child: w.scan(16), Net: w.net, ChildNode: 1, ConsumerNode: 2}
		slowConsume(p, plan)
	})
	buffered := w.run(t, func(p *sim.Proc) {
		plan := &Buffer{
			Child: &Remote{Child: w.scan(16), Net: w.net, ChildNode: 1, ConsumerNode: 2},
			Env:   w.env,
			Depth: 4,
		}
		slowConsume(p, plan)
	})
	if buffered >= plain {
		t.Fatalf("buffered (%v) should beat plain remote (%v): prefetch overlaps network with processing", buffered, plain)
	}
}

func TestBufferEarlyCloseStopsPrefetcher(t *testing.T) {
	w := newWorld(t, 500)
	defer w.env.Close()
	w.run(t, func(p *sim.Proc) {
		plan := &Limit{N: 5, Child: &Buffer{Child: w.scan(2), Env: w.env, Depth: 2}}
		n, err := Drain(p, plan)
		if n != 5 || err != nil {
			t.Errorf("n=%d err=%v", n, err)
		}
	})
	// Let any lingering prefetcher run out; the environment must drain.
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSortOffloadRelievesLoadedNode(t *testing.T) {
	// Miniature Fig. 2: with many concurrent scan+sort queries on one
	// 2-core node, offloading the sort to a second node raises throughput.
	runQueries := func(offload bool, concurrent int) time.Duration {
		w := newWorld(t, 400)
		defer w.env.Close()
		done := 0
		for q := 0; q < concurrent; q++ {
			w.env.Spawn("q", func(p *sim.Proc) {
				var child Operator = w.scan(64)
				node := w.nodes[1]
				if offload {
					child = &Remote{Child: child, Net: w.net, ChildNode: 1, ConsumerNode: 2}
					node = w.nodes[2]
				}
				plan := &Sort{
					Child:     child,
					Node:      node,
					Less:      func(b *table.Batch, i, j int) bool { return b.Int(0, i) < b.Int(0, j) },
					CPUPerRow: 40 * time.Microsecond,
					Vector:    64,
				}
				if _, err := Drain(p, plan); err != nil {
					t.Error(err)
				}
				done++
			})
		}
		if err := w.env.Run(); err != nil {
			t.Fatal(err)
		}
		if done != concurrent {
			t.Fatalf("done = %d", done)
		}
		return w.env.Now()
	}
	local := runQueries(false, 16)
	remote := runQueries(true, 16)
	if remote >= local {
		t.Fatalf("offloaded sorts (%v) should finish before all-local (%v) at high concurrency", remote, local)
	}
}

package exec

import (
	"bytes"
	"fmt"
	"time"

	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// HashJoin is a vectorised equi-join: Open drains the Build side into one
// accumulated batch and indexes it with a typed hash table (the GroupAgg
// approach — no interface-keyed map on the hot path), Next streams the Probe
// side and emits matches into a reused output batch over the concatenated
// schema (left = build columns, right = probe columns).
//
// The index is a chained layout over row numbers: next[i] links row i to the
// previous build row with the same key (+1, 0 terminates), so duplicate keys
// cost no extra allocation and matches for one probe row emit in reverse
// build order (deterministic). Single int64 keys take a map[int64] fast
// path; composite and string keys are encoded with the order-preserving key
// codec (injective, self-delimiting) into a scratch buffer and looked up via
// a persistent bytes→slot map — probing a warm operator allocates nothing,
// string keys included, because map reads through string(buf) do not copy.
type HashJoin struct {
	Build     Operator
	Probe     Operator
	Node      *hw.Node
	BuildKeys []int // key columns in the build schema
	ProbeKeys []int // key columns in the probe schema, position-matched
	CPUPerRow time.Duration
	Vector    int

	built  *table.Batch
	out    *table.Batch
	outL   *table.Schema // schemas out was derived from
	outR   *table.Schema
	next   []int32
	intKey bool
	// Single-int64 fast path: key -> 1 + last build row with that key.
	intHead map[int64]int32
	// Composite/string path: encoded key bytes -> slot. The map persists
	// across Opens (so warm rebuilds never re-allocate its string keys);
	// heads carries the per-Open chain heads and is zeroed each Open, so a
	// stale slot simply reads 0 = no match.
	bytSlot map[string]int32
	heads   []int32
	keyBuf  []byte

	pb    *table.Batch // current probe batch (valid until its next Next)
	pi    int
	match int32 // pending chain position for probe row pi (1+row, 0 = none)
}

// Open opens both children and builds the hash index from the build side.
func (o *HashJoin) Open(p *sim.Proc) error {
	if len(o.BuildKeys) == 0 || len(o.BuildKeys) != len(o.ProbeKeys) {
		return fmt.Errorf("exec: hash join needs matching non-empty key lists, got build=%v probe=%v", o.BuildKeys, o.ProbeKeys)
	}
	if o.Vector <= 0 {
		o.Vector = 1
	}
	o.pb, o.pi, o.match = nil, 0, 0
	o.next = o.next[:0]
	if o.built != nil {
		o.built.Reset()
	}
	if err := o.Build.Open(p); err != nil {
		return err
	}
	if err := o.Probe.Open(p); err != nil {
		return err
	}
	for {
		batch, err := o.Build.Next(p)
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		o.Node.Compute(p, time.Duration(batch.Len())*o.CPUPerRow)
		if o.built == nil {
			o.built = table.NewBatch(batch.Schema)
		} else if o.built.Schema != batch.Schema {
			o.built.Init(batch.Schema)
		}
		if o.built.Len() == 0 {
			for _, c := range o.BuildKeys {
				if c < 0 || c >= len(batch.Schema.Columns) {
					return fmt.Errorf("exec: hash join build key %d out of range for %s", c, batch.Schema.Name)
				}
			}
			o.intKey = len(o.BuildKeys) == 1 && batch.Schema.Columns[o.BuildKeys[0]].Type == table.ColInt64
		}
		o.built.AppendBatch(batch)
	}
	if o.built == nil || o.built.Len() == 0 {
		return nil
	}
	n := o.built.Len()
	if o.intKey {
		if o.intHead == nil {
			o.intHead = make(map[int64]int32, n)
		} else {
			clear(o.intHead)
		}
		c := o.BuildKeys[0]
		for i := 0; i < n; i++ {
			k := o.built.Int(c, i)
			o.next = append(o.next, o.intHead[k])
			o.intHead[k] = int32(i) + 1
		}
		return nil
	}
	if o.bytSlot == nil {
		o.bytSlot = make(map[string]int32, n)
	}
	for i := range o.heads {
		o.heads[i] = 0
	}
	for i := 0; i < n; i++ {
		o.keyBuf = o.built.AppendColsKey(o.keyBuf[:0], o.BuildKeys, i)
		slot, ok := o.bytSlot[string(o.keyBuf)]
		if !ok {
			slot = int32(len(o.bytSlot))
			o.bytSlot[string(o.keyBuf)] = slot
		}
		for int(slot) >= len(o.heads) {
			o.heads = append(o.heads, 0)
		}
		o.next = append(o.next, o.heads[slot])
		o.heads[slot] = int32(i) + 1
	}
	return nil
}

// ensureOut lazily derives the joined output schema from the first probe
// batch, type-checking the key columns once; the output batch is reused as
// long as both child schemas stay the same pointers.
func (o *HashJoin) ensureOut(probe *table.Schema) error {
	if o.out != nil && o.outL == o.built.Schema && o.outR == probe {
		return nil
	}
	for k, c := range o.ProbeKeys {
		if c < 0 || c >= len(probe.Columns) {
			return fmt.Errorf("exec: hash join probe key %d out of range for %s", c, probe.Name)
		}
		bt, pt := o.built.Schema.Columns[o.BuildKeys[k]].Type, probe.Columns[c].Type
		if bt != pt {
			return fmt.Errorf("exec: hash join key %d type mismatch: build %s col %d vs probe %s col %d",
				k, o.built.Schema.Name, o.BuildKeys[k], probe.Name, c)
		}
	}
	schema := table.JoinSchemas(o.built.Schema.Name+"⋈"+probe.Name, o.built.Schema, probe)
	if o.out == nil {
		o.out = table.NewBatch(schema)
	} else {
		o.out.Init(schema)
	}
	o.outL, o.outR = o.built.Schema, probe
	return nil
}

// lookup returns the chain head for probe row i (1+row, 0 = no match).
func (o *HashJoin) lookup(pb *table.Batch, i int) int32 {
	if o.intKey {
		return o.intHead[pb.Int(o.ProbeKeys[0], i)]
	}
	o.keyBuf = pb.AppendColsKey(o.keyBuf[:0], o.ProbeKeys, i)
	slot, ok := o.bytSlot[string(o.keyBuf)]
	if !ok {
		return 0
	}
	return o.heads[slot]
}

// Next returns the next batch of joined rows (up to Vector).
func (o *HashJoin) Next(p *sim.Proc) (*table.Batch, error) {
	if o.built == nil || o.built.Len() == 0 {
		return nil, nil
	}
	if o.out != nil {
		o.out.Reset()
	}
	for {
		// Drain the pending match chain for the current probe row. The
		// probe batch stays valid: its child's Next is not called again
		// until the chain is exhausted.
		for o.match != 0 {
			row := int(o.match - 1)
			o.out.AppendJoined(o.built, row, o.pb, o.pi)
			o.match = o.next[row]
			if o.out.Len() >= o.Vector {
				return o.out, nil
			}
		}
		o.pi++
		for o.pb == nil || o.pi >= o.pb.Len() {
			pb, err := o.Probe.Next(p)
			if err != nil {
				return nil, err
			}
			if pb == nil {
				o.pb = nil
				if o.out != nil && o.out.Len() > 0 {
					return o.out, nil
				}
				return nil, nil
			}
			if pb.Len() == 0 {
				continue
			}
			o.Node.Compute(p, time.Duration(pb.Len())*o.CPUPerRow)
			if err := o.ensureOut(pb.Schema); err != nil {
				return nil, err
			}
			o.pb, o.pi = pb, 0
		}
		o.match = o.lookup(o.pb, o.pi)
	}
}

// Close releases the build state and closes both children (safe when Open
// failed partway).
func (o *HashJoin) Close(p *sim.Proc) {
	o.pb, o.match = nil, 0
	if o.built != nil {
		o.built.Reset()
	}
	o.Build.Close(p)
	o.Probe.Close(p)
}

// MergeJoin is a streaming equi-join over two inputs sorted on the join
// keys. Open asserts — via the Ordered plan metadata — that both children
// actually declare an ordering with the join keys as prefix; a plan that
// merely hopes its inputs are sorted is rejected. Matching right-side runs
// of equal keys are deep-copied into a small group batch so duplicate left
// keys can replay the run after the right child has moved on; everything
// else streams, so memory stays O(vector + largest duplicate-key run).
type MergeJoin struct {
	Left      Operator
	Right     Operator
	Node      *hw.Node
	LeftKeys  []int
	RightKeys []int
	CPUPerRow time.Duration
	Vector    int

	out     *table.Batch
	grp     *table.Batch // current equal-key right run (deep copy)
	grpLive bool
	gi      int
	lb      *table.Batch
	li      int
	rb      *table.Batch
	ri      int
	done    bool
	checked bool
}

// Open validates orderings and opens both children.
func (o *MergeJoin) Open(p *sim.Proc) error {
	if len(o.LeftKeys) == 0 || len(o.LeftKeys) != len(o.RightKeys) {
		return fmt.Errorf("exec: merge join needs matching non-empty key lists, got left=%v right=%v", o.LeftKeys, o.RightKeys)
	}
	if lo := OrderingOf(o.Left); !orderedPrefix(lo, o.LeftKeys) {
		return fmt.Errorf("exec: merge join left input not ordered by join keys %v (declares %v)", o.LeftKeys, lo)
	}
	if ro := OrderingOf(o.Right); !orderedPrefix(ro, o.RightKeys) {
		return fmt.Errorf("exec: merge join right input not ordered by join keys %v (declares %v)", o.RightKeys, ro)
	}
	if o.Vector <= 0 {
		o.Vector = 1
	}
	o.lb, o.rb, o.li, o.ri, o.gi = nil, nil, 0, 0, 0
	o.grpLive, o.done, o.checked = false, false, false
	if o.grp != nil {
		o.grp.Reset()
	}
	if err := o.Left.Open(p); err != nil {
		return err
	}
	return o.Right.Open(p)
}

// cmpKeys compares the join keys of row li of lb against row ri of rb
// (rb carries the right schema, so RightKeys index it).
func (o *MergeJoin) cmpKeys(lb *table.Batch, li int, rb *table.Batch, ri int) int {
	for k := range o.LeftKeys {
		lc, rc := o.LeftKeys[k], o.RightKeys[k]
		switch lb.Schema.Columns[lc].Type {
		case table.ColInt64:
			a, b := lb.Int(lc, li), rb.Int(rc, ri)
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
		case table.ColFloat64:
			a, b := lb.Float(lc, li), rb.Float(rc, ri)
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
		case table.ColString:
			if c := bytes.Compare(lb.Bytes(lc, li), rb.Bytes(rc, ri)); c != 0 {
				return c
			}
		}
	}
	return 0
}

// checkSchemas type-checks the key columns once per Open, when both sides'
// schemas are first known.
func (o *MergeJoin) checkSchemas(l, r *table.Schema) error {
	for k := range o.LeftKeys {
		lc, rc := o.LeftKeys[k], o.RightKeys[k]
		if lc < 0 || lc >= len(l.Columns) {
			return fmt.Errorf("exec: merge join left key %d out of range for %s", lc, l.Name)
		}
		if rc < 0 || rc >= len(r.Columns) {
			return fmt.Errorf("exec: merge join right key %d out of range for %s", rc, r.Name)
		}
		if l.Columns[lc].Type != r.Columns[rc].Type {
			return fmt.Errorf("exec: merge join key %d type mismatch: %s col %d vs %s col %d", k, l.Name, lc, r.Name, rc)
		}
	}
	o.checked = true
	return nil
}

// flush returns the partial output batch if it holds rows, else EOF.
func (o *MergeJoin) flush() (*table.Batch, error) {
	o.done = true
	if o.out != nil && o.out.Len() > 0 {
		return o.out, nil
	}
	return nil, nil
}

// Next returns the next batch of joined rows (up to Vector).
func (o *MergeJoin) Next(p *sim.Proc) (*table.Batch, error) {
	if o.done {
		return nil, nil
	}
	if o.out != nil {
		o.out.Reset()
	}
	for {
		// Ensure a current left row.
		for o.lb == nil || o.li >= o.lb.Len() {
			lb, err := o.Left.Next(p)
			if err != nil {
				return nil, err
			}
			if lb == nil {
				return o.flush()
			}
			o.Node.Compute(p, time.Duration(lb.Len())*o.CPUPerRow)
			o.lb, o.li = lb, 0
		}
		if o.grpLive {
			switch c := o.cmpKeys(o.lb, o.li, o.grp, 0); {
			case c == 0:
				o.out.AppendJoined(o.lb, o.li, o.grp, o.gi)
				o.gi++
				if o.gi >= o.grp.Len() {
					// Run replayed in full; duplicate left keys restart it.
					o.gi = 0
					o.li++
				}
				if o.out.Len() >= o.Vector {
					return o.out, nil
				}
				continue
			case c < 0:
				o.li, o.gi = o.li+1, 0
				continue
			default:
				o.grpLive = false
			}
		}
		// Advance the right side to the current left key and collect its
		// equal-key run.
		for {
			for o.rb == nil || o.ri >= o.rb.Len() {
				rb, err := o.Right.Next(p)
				if err != nil {
					return nil, err
				}
				if rb == nil {
					return o.flush()
				}
				o.Node.Compute(p, time.Duration(rb.Len())*o.CPUPerRow)
				o.rb, o.ri = rb, 0
			}
			if !o.checked {
				if err := o.checkSchemas(o.lb.Schema, o.rb.Schema); err != nil {
					return nil, err
				}
			}
			c := o.cmpKeys(o.lb, o.li, o.rb, o.ri)
			if c > 0 { // right is behind: skip
				o.ri++
				continue
			}
			if c < 0 { // right is ahead: left row has no match
				o.li++
				break
			}
			// Equal: collect the run. The right child reuses its batch, so
			// the run is deep-copied row by row into the group batch (which
			// keeps its storage across runs — warm steady state allocates
			// nothing).
			if o.grp == nil {
				o.grp = table.NewBatch(o.rb.Schema)
			} else {
				o.grp.Init(o.rb.Schema)
			}
			if o.out == nil {
				o.out = table.NewBatch(table.JoinSchemas(o.lb.Schema.Name+"⋈"+o.rb.Schema.Name, o.lb.Schema, o.rb.Schema))
			}
			for {
				o.grp.AppendFrom(o.rb, o.ri)
				o.ri++
				for o.ri >= o.rb.Len() {
					rb, err := o.Right.Next(p)
					if err != nil {
						return nil, err
					}
					if rb == nil {
						o.rb = nil
						break
					}
					o.Node.Compute(p, time.Duration(rb.Len())*o.CPUPerRow)
					o.rb, o.ri = rb, 0
				}
				if o.rb == nil || o.cmpKeys(o.lb, o.li, o.rb, o.ri) != 0 {
					break
				}
			}
			o.grpLive, o.gi = true, 0
			break
		}
	}
}

// Close releases buffered state and closes both children (safe when Open
// failed partway).
func (o *MergeJoin) Close(p *sim.Proc) {
	o.lb, o.rb = nil, nil
	o.grpLive = false
	if o.grp != nil {
		o.grp.Reset()
	}
	o.Left.Close(p)
	o.Right.Close(p)
}

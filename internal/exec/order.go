package exec

// Ordered is implemented by operators whose output is sorted. Ordering
// returns the ascending column indexes (in the operator's *output* schema)
// that the emitted rows are ordered by, most significant first; nil means
// unordered. Order-sensitive consumers (MergeJoin) use OrderingOf to assert
// — not assume — that their inputs arrive sorted on the join keys.
type Ordered interface {
	Ordering() []int
}

// OrderingOf reports op's declared output ordering, nil if op declares none.
func OrderingOf(op Operator) []int {
	if o, ok := op.(Ordered); ok {
		return o.Ordering()
	}
	return nil
}

// orderedPrefix reports whether keys is a prefix of ordering: rows sorted by
// ordering are grouped (and sorted) by any prefix of it.
func orderedPrefix(ordering, keys []int) bool {
	if len(keys) > len(ordering) {
		return false
	}
	for i, k := range keys {
		if ordering[i] != k {
			return false
		}
	}
	return true
}

// Ordering: a table scan emits rows in key order, and the order-preserving
// key codec makes byte order equal column order, so the output is sorted by
// the schema's key columns.
func (s *TableScan) Ordering() []int {
	ord := make([]int, s.Part.Schema.KeyCols)
	for i := range ord {
		ord[i] = i
	}
	return ord
}

// Ordering: Sort's output follows its declared OrderBy metadata.
func (o *Sort) Ordering() []int { return o.OrderBy }

// Ordering: projection preserves the child's ordering for the prefix of
// ordering columns it keeps, remapped to output positions. The prefix stops
// at the first ordering column the projection drops — later ordering columns
// only tie-break within groups of the dropped one, so they no longer
// describe a global order.
func (o *Project) Ordering() []int {
	child := OrderingOf(o.Child)
	var out []int
	for _, oc := range child {
		pos := -1
		for j, c := range o.Cols {
			if c == oc {
				pos = j
				break
			}
		}
		if pos < 0 {
			break
		}
		out = append(out, pos)
	}
	return out
}

// Ordering: filtering drops rows but never reorders them.
func (o *Filter) Ordering() []int { return OrderingOf(o.Child) }

// Ordering: a limit keeps a prefix of the child's stream.
func (o *Limit) Ordering() []int { return OrderingOf(o.Child) }

// Ordering: the remote edge ships batches in order.
func (o *Remote) Ordering() []int { return OrderingOf(o.Child) }

// Ordering: the buffer prefetches but delivers in child order.
func (o *Buffer) Ordering() []int { return OrderingOf(o.Child) }

// Ordering: a merge join consumes both inputs in left-key order and emits
// matches as the left side advances, so the output stays sorted by the left
// join keys (which are left-schema positions, i.e. output positions).
func (o *MergeJoin) Ordering() []int { return o.LeftKeys }

package exec

import (
	"math/rand"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// exchWorld holds a table split across nparts partitions, each owned by its
// own node so partition-parallel scans genuinely overlap in virtual time.
type exchWorld struct {
	env    *sim.Env
	oracle *cc.Oracle
	nodes  []*hw.Node
	parts  []*table.Partition
	schema *table.Schema
	rows   int // total rows across all partitions
}

func newExchWorld(t testing.TB, nparts, rowsPerPart int) *exchWorld {
	t.Helper()
	env := sim.NewEnv(1)
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	oracle := cc.NewOracle()
	schema := &table.Schema{
		ID: 7, Name: "sharded", KeyCols: 1,
		Columns: []table.Column{{Name: "k", Type: table.ColInt64}, {Name: "v", Type: table.ColInt64}},
	}
	w := &exchWorld{env: env, oracle: oracle, schema: schema, rows: nparts * rowsPerPart}
	for i := 0; i < nparts; i++ {
		node := hw.NewNode(env, i+1, cal, net)
		node.ForceActive()
		deps := table.Deps{
			Env:         env,
			Oracle:      oracle,
			Locks:       cc.NewLockManager(env),
			Log:         wal.NewLog(env, nullDevice{}),
			Factory:     &memFactory{pageSize: 4096, segPages: 256},
			LockTimeout: time.Second,
			PageSize:    4096,
			Compute:     node.Compute,
			CPUPerOp:    cal.CPUBTreeOp,
			CPUPerTuple: cal.CPUTupleScan,
		}
		part := table.NewPartition(table.PartID(i+1), schema, table.Physiological, nil, nil, deps)
		w.nodes = append(w.nodes, node)
		w.parts = append(w.parts, part)
	}
	env.Spawn("load", func(p *sim.Proc) {
		for i, part := range w.parts {
			txn := oracle.Begin(cc.SnapshotIsolation)
			for j := 0; j < rowsPerPart; j++ {
				k := int64(i*rowsPerPart + j)
				row := table.Row{k, k * 2}
				key, _ := schema.Key(row)
				payload, _ := schema.EncodeRow(row)
				if err := part.Put(p, txn, key, payload); err != nil {
					t.Error(err)
					return
				}
			}
			if err := table.CommitTxn(p, txn, part); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *exchWorld) scans(vector int) []Operator {
	var plans []Operator
	txn := w.oracle.Begin(cc.SnapshotIsolation)
	for _, part := range w.parts {
		plans = append(plans, &TableScan{Part: part, Txn: txn, Vector: vector})
	}
	return plans
}

// TestExchangeMergesAllPartitionsDeterministically checks that a
// partition-parallel scan returns every row exactly once, and that the
// merged arrival order is reproducible run over run (the chaos state hash
// depends on it).
func TestExchangeMergesAllPartitionsDeterministically(t *testing.T) {
	w := newExchWorld(t, 4, 50)
	defer w.env.Close()
	ex := &Exchange{Plans: w.scans(16), Env: w.env}
	collect := func() []int64 {
		var keys []int64
		w.env.Spawn("drain", func(p *sim.Proc) {
			rows, err := Collect(p, ex)
			if err != nil {
				t.Error(err)
				return
			}
			for _, r := range rows {
				keys = append(keys, r[0].(int64))
			}
		})
		if err := w.env.Run(); err != nil {
			t.Fatal(err)
		}
		return keys
	}
	first := collect()
	if len(first) != w.rows {
		t.Fatalf("merged %d rows, want %d", len(first), w.rows)
	}
	seen := make(map[int64]bool, len(first))
	for _, k := range first {
		if seen[k] {
			t.Fatalf("key %d delivered twice", k)
		}
		seen[k] = true
	}
	second := collect()
	if len(second) != len(first) {
		t.Fatalf("second run merged %d rows, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("arrival order diverged at %d: %d vs %d", i, first[i], second[i])
		}
	}
}

// TestExchangeParallelScanSpeedup measures virtual time for the same
// four-partition scan single-stream vs exchange-parallel: with each
// partition on its own node, the parallel plan must be at least 2× faster
// (the acceptance bar; ideal is ~4×).
func TestExchangeParallelScanSpeedup(t *testing.T) {
	w := newExchWorld(t, 4, 200)
	defer w.env.Close()
	var sequential, parallel time.Duration
	w.env.Spawn("measure", func(p *sim.Proc) {
		start := w.env.Now()
		total := 0
		for _, plan := range w.scans(16) {
			n, err := Drain(p, plan)
			if err != nil {
				t.Error(err)
				return
			}
			total += n
		}
		sequential = w.env.Now() - start
		if total != w.rows {
			t.Errorf("sequential drained %d rows, want %d", total, w.rows)
		}

		start = w.env.Now()
		n, err := Drain(p, &Exchange{Plans: w.scans(16), Env: w.env})
		if err != nil {
			t.Error(err)
			return
		}
		parallel = w.env.Now() - start
		if n != w.rows {
			t.Errorf("parallel drained %d rows, want %d", n, w.rows)
		}
	})
	if err := w.env.Run(); err != nil {
		t.Fatal(err)
	}
	if parallel*2 > sequential {
		t.Fatalf("parallel scan %v not 2x faster than sequential %v", parallel, sequential)
	}
}

// TestExchangeWorkerErrorPropagates: a failing subplan surfaces its error
// from Next, and closing the exchange shuts the surviving workers down.
func TestExchangeWorkerErrorPropagates(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	rng := rand.New(rand.NewSource(9))
	good := fuzzBatch(rng, joinIntSchemaL, 64, 8)
	bad := fuzzBatch(rng, joinIntSchemaL, 64, 8)
	ex := &Exchange{
		Plans: []Operator{
			&memSource{data: good, vector: 8},
			&memSource{data: bad, vector: 8, errAfter: 2},
			&memSource{data: good, vector: 8},
		},
		Env: env,
	}
	env.Spawn("drain", func(p *sim.Proc) {
		if _, err := Drain(p, ex); err == nil {
			t.Error("exchange swallowed a worker error")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeEarlyClose: a Limit above the exchange abandons the workers
// mid-stream; Close must wake parked producers and recycle their copies so
// the run terminates.
func TestExchangeEarlyClose(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	rng := rand.New(rand.NewSource(10))
	data := fuzzBatch(rng, joinIntSchemaL, 500, 8)
	ex := &Exchange{
		Plans: []Operator{
			&memSource{data: data, vector: 8},
			&memSource{data: data, vector: 8},
		},
		Env:   env,
		Depth: 2,
	}
	env.Spawn("drain", func(p *sim.Proc) {
		n, err := Drain(p, &Limit{Child: ex, N: 10})
		if err != nil {
			t.Error(err)
			return
		}
		if n != 10 {
			t.Errorf("limit drained %d rows, want 10", n)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeMergeBoundedAllocs pins the exchange merge path's allocation
// budget. A drain cannot be exactly zero-alloc — every Open spawns worker
// processes — but the per-row path (copy into recycled batch, channel
// hand-off, recycle on consume) must not allocate: the budget stays O(1)
// per drain, independent of row count.
func TestExchangeMergeBoundedAllocs(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	rng := rand.New(rand.NewSource(12))
	data := fuzzBatch(rng, joinIntSchemaL, 1000, 8)
	ex := &Exchange{
		Plans: []Operator{
			&memSource{data: data, vector: 16},
			&memSource{data: data, vector: 16},
			&memSource{data: data, vector: 16},
			&memSource{data: data, vector: 16},
		},
		Env: env,
	}
	env.Spawn("measure", func(p *sim.Proc) {
		drain := func() {
			n, err := Drain(p, ex)
			if err != nil {
				t.Error(err)
			}
			if n != 4*1000 {
				t.Errorf("drained %d rows, want %d", n, 4*1000)
			}
		}
		drain() // warm the free list and worker batches
		drain()
		allocs := testing.AllocsPerRun(10, drain)
		// Per-Open fixed costs: 4 worker spawns (proc + name + closure),
		// one channel. 64 is far below the ~250 batches a drain moves.
		if allocs > 64 {
			t.Errorf("exchange drain allocates %.1f times, want O(1) per drain (<= 64)", allocs)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

package exec

import (
	"fmt"

	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Exchange is the scatter-gather operator behind partition-parallel plans:
// Open spawns one worker process per subplan (typically one per partition,
// remote legs wrapped in Remote so wire bytes are priced), each draining its
// plan into a shared bounded channel; Next merges the streams in arrival
// order. Workers deep-copy every batch into a recycled free list before it
// crosses the process boundary — a subplan's reused batch never escapes its
// producing process, and the merged stream honours the standard ownership
// contract (the returned batch is valid until the consumer's next
// Next/Close, then recycled). Steady state allocates nothing per row; the
// per-Open cost is the worker process spawns.
//
// The simulation kernel is cooperative and deterministic: workers are
// spawned in subplan order and interleave at the same virtual-time points
// for a given seed, so the merged arrival order is reproducible.
type Exchange struct {
	Plans []Operator // one subplan per partition, already node-placed
	Env   *sim.Env
	Depth int // channel capacity (default 2·len(Plans))

	ch        *sim.Chan[exchResult]
	cancelled *bool
	free      *[]*table.Batch
	last      *table.Batch
	open      int // workers that have not yet reported EOF or error
}

type exchResult struct {
	batch *table.Batch
	err   error
	eof   bool
}

// Open starts one worker per subplan.
func (o *Exchange) Open(p *sim.Proc) error {
	if len(o.Plans) == 0 {
		return fmt.Errorf("exec: exchange has no subplans")
	}
	depth := o.Depth
	if depth <= 0 {
		depth = 2 * len(o.Plans)
	}
	o.ch = sim.NewChan[exchResult](o.Env, depth)
	cancelled := false
	o.cancelled = &cancelled
	if o.free == nil {
		free := make([]*table.Batch, 0, depth+len(o.Plans))
		o.free = &free
	}
	o.last = nil
	o.open = len(o.Plans)
	ch, free := o.ch, o.free
	for i, plan := range o.Plans {
		plan := plan
		o.Env.Spawn(fmt.Sprintf("exchange-%d", i), func(pp *sim.Proc) {
			defer plan.Close(pp)
			if err := plan.Open(pp); err != nil {
				ch.Put(pp, exchResult{err: err})
				return
			}
			for !cancelled {
				b, err := plan.Next(pp)
				if err != nil {
					ch.Put(pp, exchResult{err: err})
					return
				}
				if b == nil {
					ch.Put(pp, exchResult{eof: true})
					return
				}
				var cp *table.Batch
				if n := len(*free); n > 0 {
					cp = (*free)[n-1]
					*free = (*free)[:n-1]
				} else {
					cp = &table.Batch{}
				}
				cp.CopyFrom(b)
				if !ch.Put(pp, exchResult{batch: cp}) {
					// Consumer closed early (Close wakes parked putters);
					// the copy goes back to the pool, the deferred Close
					// shuts the subplan down.
					*free = append(*free, cp)
					return
				}
			}
		})
	}
	return nil
}

// Next returns the next batch from any worker, in deterministic arrival
// order, until every worker has reported EOF. A worker error surfaces as
// soon as it is dequeued.
func (o *Exchange) Next(p *sim.Proc) (*table.Batch, error) {
	if o.last != nil {
		*o.free = append(*o.free, o.last)
		o.last = nil
	}
	for o.open > 0 {
		res, ok := o.ch.Get(p)
		if !ok {
			return nil, nil
		}
		if res.err != nil {
			o.open--
			return nil, res.err
		}
		if res.eof {
			o.open--
			continue
		}
		o.last = res.batch
		return res.batch, nil
	}
	return nil, nil
}

// Close cancels the workers, recycles in-flight copies, and shuts the
// channel. Safe when Open failed or never ran (Drain/Collect close the plan
// unconditionally); worker-side subplan Close runs in each worker's deferred
// call.
func (o *Exchange) Close(p *sim.Proc) {
	if o.cancelled != nil {
		*o.cancelled = true
	}
	if o.ch != nil {
		for o.ch.Len() > 0 {
			if res, ok := o.ch.Get(p); ok && res.batch != nil {
				*o.free = append(*o.free, res.batch)
			}
		}
		o.ch.Close()
		o.ch = nil
	}
	if o.last != nil {
		*o.free = append(*o.free, o.last)
		o.last = nil
	}
	o.open = 0
}

// Package exec implements WattDB's vectorised volcano-style query operators
// (Sect. 3.3): table scans, pipelining operators (projection, filter),
// blocking operators (sort, group/aggregate), a remote exchange that ships
// record batches between nodes, and the asynchronous buffering operator
// that hides network latency during distributed execution.
//
// Every operator runs "on" a node: its CPU work is charged there. Batches
// flow between operators as columnar *table.Batch values; when a plan edge
// crosses nodes, a Remote operator pays the network cost per next() call —
// which is exactly the effect Fig. 1 of the paper quantifies for
// single-record vs vectorised protocols.
package exec

import (
	"fmt"
	"sort"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Operator is the volcano iterator interface. Next returns a columnar batch
// of rows (nil = exhausted). Classic single-record operators use batch size
// 1; vectorised operators return up to their configured vector size.
//
// Batch ownership: the *table.Batch returned by Next is only valid until
// the following Next or Close call on that operator — every operator
// refills a privately owned batch (or reuses its child's) across calls.
// Until then the batch belongs to the consumer, which may read it through
// the typed column accessors and may also mutate it in place (Filter
// compacts passing rows to the front, Limit truncates); producers must not
// assume a returned batch comes back intact. An operator that holds batches
// across Next calls (e.g. the asynchronous Buffer) must take a deep copy
// with Batch.CopyFrom. Strings read via Batch.Bytes alias the batch's arena
// and follow the same lifetime.
//
// Parallel lifetimes: operators that run producers concurrently (Buffer,
// Exchange) deep-copy every batch into a recycled free list before it
// crosses the process boundary, so a worker's reused batch never escapes
// its producing process; the consumer-side batch stays valid until the
// merging operator's following Next, exactly like the single-stream
// contract. Close must be safe to call even when Open failed partway
// through the tree (Drain/Collect always close the plan), so operators
// guard their Close against unopened state.
type Operator interface {
	Open(p *sim.Proc) error
	Next(p *sim.Proc) (*table.Batch, error)
	Close(p *sim.Proc)
}

// RowBytes estimates the wire size of a boxed row for network cost
// accounting (compatibility helper; batch-at-a-time accounting uses
// Batch.WireBytes, which works from the schema's cached column widths).
func RowBytes(r table.Row) int64 {
	var n int64 = 8 // framing
	for _, v := range r {
		switch s := v.(type) {
		case string:
			n += int64(len(s)) + 2
		default:
			n += 8
		}
	}
	return n
}

// TableScan reads a partition's visible records in key order, decoding rows
// columnarly into a reused batch of up to Vector rows. Each batch restarts
// the range scan after the last delivered key, so the operator needs no
// long-lived cursor state across blocking points.
type TableScan struct {
	Part   *table.Partition
	Txn    *cc.Txn
	Lo, Hi []byte
	Vector int

	last      []byte
	loBuf     []byte
	batch     *table.Batch
	emit      func(k, payload []byte) bool
	decodeErr error
	started   bool
	done      bool
}

// Open resets the scan.
func (s *TableScan) Open(p *sim.Proc) error {
	if s.Vector <= 0 {
		s.Vector = 1
	}
	if s.batch == nil {
		s.batch = table.NewBatch(s.Part.Schema)
		// One closure for the operator's lifetime: Next stays allocation-free.
		s.emit = func(k, payload []byte) bool {
			if err := s.Part.Schema.AppendDecoded(s.batch, payload); err != nil {
				s.decodeErr = err
				return false
			}
			s.last = append(s.last[:0], k...)
			s.started = true
			return s.batch.Len() < s.Vector
		}
	}
	s.last, s.started, s.done = s.last[:0], false, false
	return nil
}

// Next returns the next batch. The partition scan underneath runs on the
// B*-tree's batched cursor (leaf-at-a-time fetches); the returned batch is
// reused across calls per the Operator contract.
func (s *TableScan) Next(p *sim.Proc) (*table.Batch, error) {
	if s.done {
		return nil, nil
	}
	lo := s.Lo
	if s.started {
		// Resume strictly after the last delivered key.
		s.loBuf = append(append(s.loBuf[:0], s.last...), 0)
		lo = s.loBuf
	}
	s.batch.Reset()
	s.decodeErr = nil
	err := s.Part.Scan(p, s.Txn, lo, s.Hi, s.emit)
	if err == nil {
		err = s.decodeErr
	}
	if err != nil {
		return nil, err
	}
	if s.batch.Len() == 0 {
		s.done = true
		return nil, nil
	}
	if s.batch.Len() < s.Vector {
		s.done = true
	}
	return s.batch, nil
}

// Close releases the scan.
func (s *TableScan) Close(p *sim.Proc) {}

// Project is a pipelining operator emitting a column subset of its child's
// batches; per-record CPU is charged on Node. Its output batches carry a
// derived schema holding just the projected columns.
type Project struct {
	Child     Operator
	Node      *hw.Node
	Cols      []int
	CPUPerRow time.Duration

	out *table.Batch
}

// Open opens the child.
func (o *Project) Open(p *sim.Proc) error { return o.Child.Open(p) }

// Next projects the child's next batch with column-vector copies into a
// reused output batch (Operator contract).
func (o *Project) Next(p *sim.Proc) (*table.Batch, error) {
	batch, err := o.Child.Next(p)
	if err != nil || batch == nil {
		return nil, err
	}
	o.Node.Compute(p, time.Duration(batch.Len())*o.CPUPerRow)
	if o.out == nil {
		schema, err := projectedSchema(batch.Schema, o.Cols)
		if err != nil {
			return nil, err
		}
		o.out = table.NewBatch(schema)
	}
	o.out.Reset()
	o.out.AppendColumns(batch, o.Cols)
	return o.out, nil
}

// Close closes the child.
func (o *Project) Close(p *sim.Proc) { o.Child.Close(p) }

// projectedSchema derives the output schema of a projection.
func projectedSchema(src *table.Schema, cols []int) (*table.Schema, error) {
	out := &table.Schema{Name: src.Name + ".project", KeyCols: 1}
	for _, c := range cols {
		if c < 0 || c >= len(src.Columns) {
			return nil, fmt.Errorf("exec: project column %d out of range", c)
		}
		out.Columns = append(out.Columns, src.Columns[c])
	}
	return out, nil
}

// Filter is a pipelining operator keeping rows for which Pred returns true.
// Pred receives the batch and a row index and reads columns through the
// typed accessors.
type Filter struct {
	Child     Operator
	Node      *hw.Node
	Pred      func(b *table.Batch, i int) bool
	CPUPerRow time.Duration
}

// Open opens the child.
func (o *Filter) Open(p *sim.Proc) error { return o.Child.Open(p) }

// Next returns the next non-empty filtered batch: passing rows are
// compacted to the front of the child's batch in place (the contract lets a
// consumer mutate the batch it was handed).
func (o *Filter) Next(p *sim.Proc) (*table.Batch, error) {
	for {
		batch, err := o.Child.Next(p)
		if err != nil || batch == nil {
			return nil, err
		}
		o.Node.Compute(p, time.Duration(batch.Len())*o.CPUPerRow)
		w := 0
		for i := 0; i < batch.Len(); i++ {
			if o.Pred(batch, i) {
				if w != i {
					batch.MoveRow(w, i)
				}
				w++
			}
		}
		if w > 0 {
			batch.Truncate(w)
			return batch, nil
		}
	}
}

// Close closes the child.
func (o *Filter) Close(p *sim.Proc) { o.Child.Close(p) }

// Sort is a blocking operator: Open drains the child into one accumulated
// batch, sorts a row permutation with Less, and Next streams the result in
// Vector-sized batches. Sorting costs CPUPerRow·n·ceil(log2 n) on Node —
// blocking operators "generally consume more resources and are therefore
// good candidates for offloading".
type Sort struct {
	Child     Operator
	Node      *hw.Node
	Less      func(b *table.Batch, i, j int) bool
	CPUPerRow time.Duration
	Vector    int

	// OrderBy declares the output ordering Less establishes, as ascending
	// column indexes. Less stays the authority on comparison; OrderBy is the
	// plan-level metadata order-sensitive consumers (MergeJoin) assert
	// against via OrderingOf. Leave nil when Less encodes an ordering that
	// column indexes cannot express (the output is then treated as
	// unordered).
	OrderBy []int

	// Workspace, when set, is the node's shared sort memory (in bytes).
	// A sort that cannot reserve its input size spills: it runs an
	// external merge sort on SpillDisk whose pass count grows with memory
	// oversubscription (each concurrent sort gets a smaller share, so runs
	// are shorter and more merge passes are needed). This work
	// amplification is what makes heavily concurrent sort queries degrade
	// — the paper's "queries compete for CPU and buffer" (Fig. 2).
	Workspace *sim.Resource
	SpillDisk *hw.Disk
	// Group tracks concurrently open sorts sharing the workspace.
	Group *SortGroup

	acc      *table.Batch
	perm     []int
	out      *table.Batch
	pos      int
	reserved int64
	inGroup  bool
}

// SortGroup counts concurrently active sorts on a node.
type SortGroup struct{ Active int }

// Open drains and sorts the child's output.
func (o *Sort) Open(p *sim.Proc) error {
	if o.Vector <= 0 {
		o.Vector = 1
	}
	if err := o.Child.Open(p); err != nil {
		return err
	}
	o.pos = 0
	o.perm = o.perm[:0]
	if o.acc != nil {
		o.acc.Reset()
	}
	for {
		batch, err := o.Child.Next(p)
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		if o.acc == nil {
			o.acc = table.NewBatch(batch.Schema)
			o.out = table.NewBatch(batch.Schema)
		}
		o.acc.AppendBatch(batch)
	}
	if o.acc == nil {
		return nil
	}
	n := o.acc.Len()
	for i := 0; i < n; i++ {
		o.perm = append(o.perm, i)
	}
	if n > 1 {
		if o.Group != nil {
			o.Group.Active++
			o.inGroup = true
		}
		if o.Workspace != nil {
			need := o.acc.WireBytes()
			capped := need
			if capped > o.Workspace.Capacity() {
				capped = o.Workspace.Capacity()
			}
			if o.Workspace.TryAcquire(capped) {
				o.reserved = capped
			} else if o.SpillDisk != nil {
				// External merge sort: the per-sort memory share shrinks
				// with concurrency, so the number of read+write passes
				// over the input grows with oversubscription.
				passes := int64(1)
				if o.Group != nil && o.Group.Active > 0 {
					demand := need * int64(o.Group.Active)
					passes = (demand + o.Workspace.Capacity() - 1) / o.Workspace.Capacity()
					if passes < 1 {
						passes = 1
					}
					if passes > 8 {
						passes = 8
					}
				}
				for i := int64(0); i < passes; i++ {
					o.SpillDisk.Write(p, need)
					o.SpillDisk.Read(p, need)
				}
			}
		}
		levels := 1
		for v := n; v > 1; v >>= 1 {
			levels++
		}
		o.Node.Compute(p, time.Duration(n*levels)*o.CPUPerRow)
		sort.SliceStable(o.perm, func(i, j int) bool { return o.Less(o.acc, o.perm[i], o.perm[j]) })
	}
	return nil
}

// Next streams the sorted rows in permutation order through a reused output
// batch.
func (o *Sort) Next(p *sim.Proc) (*table.Batch, error) {
	if o.acc == nil || o.pos >= len(o.perm) {
		return nil, nil
	}
	end := o.pos + o.Vector
	if end > len(o.perm) {
		end = len(o.perm)
	}
	o.out.Reset()
	for _, idx := range o.perm[o.pos:end] {
		o.out.AppendFrom(o.acc, idx)
	}
	o.pos = end
	return o.out, nil
}

// Close releases the buffered rows and any reserved workspace.
func (o *Sort) Close(p *sim.Proc) {
	if o.reserved > 0 {
		o.Workspace.Release(o.reserved)
		o.reserved = 0
	}
	if o.inGroup {
		o.Group.Active--
		o.inGroup = false
	}
	if o.acc != nil {
		o.acc.Reset()
	}
	o.perm = o.perm[:0]
	o.Child.Close(p)
}

// GroupAgg is a blocking hash aggregation: COUNT(*) and SUM(SumCol) per
// distinct GroupCol value, emitted as batches over the derived schema
// [group, count int64, sum float64]. The hash table is typed by the group
// column (no interface-keyed map on the aggregation path).
type GroupAgg struct {
	Child     Operator
	Node      *hw.Node
	GroupCol  int
	SumCol    int // -1: count only
	CPUPerRow time.Duration
	Vector    int

	groups *table.Batch
	out    *table.Batch
	pos    int
}

// Open drains the child and builds the hash table. Group rows accumulate
// directly in the output-ordered groups batch (first-seen order).
func (o *GroupAgg) Open(p *sim.Proc) error {
	if o.Vector <= 0 {
		o.Vector = 1
	}
	if err := o.Child.Open(p); err != nil {
		return err
	}
	o.groups, o.out, o.pos = nil, nil, 0
	var (
		intIdx map[int64]int
		strIdx map[string]int
		fltIdx map[float64]int
	)
	for {
		batch, err := o.Child.Next(p)
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		o.Node.Compute(p, time.Duration(batch.Len())*o.CPUPerRow)
		if o.groups == nil {
			gcol := batch.Schema.Columns[o.GroupCol]
			schema := &table.Schema{
				Name:    batch.Schema.Name + ".group",
				KeyCols: 1,
				Columns: []table.Column{
					{Name: gcol.Name, Type: gcol.Type},
					{Name: "count", Type: table.ColInt64},
					{Name: "sum", Type: table.ColFloat64},
				},
			}
			o.groups = table.NewBatch(schema)
			o.out = table.NewBatch(schema)
			switch gcol.Type {
			case table.ColInt64:
				intIdx = make(map[int64]int)
			case table.ColString:
				strIdx = make(map[string]int)
			case table.ColFloat64:
				fltIdx = make(map[float64]int)
			}
		}
		gtype := batch.Schema.Columns[o.GroupCol].Type
		for i := 0; i < batch.Len(); i++ {
			var idx int
			var seen bool
			switch gtype {
			case table.ColInt64:
				idx, seen = intIdx[batch.Int(o.GroupCol, i)]
			case table.ColString:
				idx, seen = strIdx[string(batch.Bytes(o.GroupCol, i))]
			case table.ColFloat64:
				idx, seen = fltIdx[batch.Float(o.GroupCol, i)]
			}
			if !seen {
				idx = o.groups.Len()
				switch gtype {
				case table.ColInt64:
					v := batch.Int(o.GroupCol, i)
					intIdx[v] = idx
					if err := o.groups.AppendRow(table.Row{v, int64(0), 0.0}); err != nil {
						return err
					}
				case table.ColString:
					v := batch.String(o.GroupCol, i)
					strIdx[v] = idx
					if err := o.groups.AppendRow(table.Row{v, int64(0), 0.0}); err != nil {
						return err
					}
				case table.ColFloat64:
					v := batch.Float(o.GroupCol, i)
					fltIdx[v] = idx
					if err := o.groups.AppendRow(table.Row{v, int64(0), 0.0}); err != nil {
						return err
					}
				}
			}
			o.groups.SetInt(1, idx, o.groups.Int(1, idx)+1)
			if o.SumCol >= 0 {
				switch batch.Schema.Columns[o.SumCol].Type {
				case table.ColInt64:
					o.groups.SetFloat(2, idx, o.groups.Float(2, idx)+float64(batch.Int(o.SumCol, i)))
				case table.ColFloat64:
					o.groups.SetFloat(2, idx, o.groups.Float(2, idx)+batch.Float(o.SumCol, i))
				}
			}
		}
	}
	return nil
}

// Next streams the aggregated groups.
func (o *GroupAgg) Next(p *sim.Proc) (*table.Batch, error) {
	if o.groups == nil || o.pos >= o.groups.Len() {
		return nil, nil
	}
	end := o.pos + o.Vector
	if end > o.groups.Len() {
		end = o.groups.Len()
	}
	o.out.Reset()
	for i := o.pos; i < end; i++ {
		o.out.AppendFrom(o.groups, i)
	}
	o.pos = end
	return o.out, nil
}

// Close releases state.
func (o *GroupAgg) Close(p *sim.Proc) {
	o.groups, o.out = nil, nil
	o.Child.Close(p)
}

// Limit stops after N rows.
type Limit struct {
	Child Operator
	N     int
	seen  int
}

// Open opens the child.
func (o *Limit) Open(p *sim.Proc) error { o.seen = 0; return o.Child.Open(p) }

// Next truncates the child's output at N rows (in place, per the batch
// ownership contract).
func (o *Limit) Next(p *sim.Proc) (*table.Batch, error) {
	if o.seen >= o.N {
		return nil, nil
	}
	batch, err := o.Child.Next(p)
	if err != nil || batch == nil {
		return nil, err
	}
	if o.seen+batch.Len() > o.N {
		batch.Truncate(o.N - o.seen)
	}
	o.seen += batch.Len()
	return batch, nil
}

// Close closes the child.
func (o *Limit) Close(p *sim.Proc) { o.Child.Close(p) }

// Drain runs a plan to exhaustion, returning the total row count. It is the
// query's result sink. The plan is closed even when Open fails: a partially
// opened tree may already hold pooled batches or a spawned prefetcher, and
// every operator's Close is safe on unopened state.
func Drain(p *sim.Proc, op Operator) (int, error) {
	defer op.Close(p)
	if err := op.Open(p); err != nil {
		return 0, err
	}
	n := 0
	for {
		batch, err := op.Next(p)
		if err != nil {
			return n, err
		}
		if batch == nil {
			return n, nil
		}
		n += batch.Len()
	}
}

// Collect runs a plan to exhaustion and returns all rows boxed (testing
// helper). Like Drain, it closes the plan even when Open fails.
func Collect(p *sim.Proc, op Operator) ([]table.Row, error) {
	defer op.Close(p)
	if err := op.Open(p); err != nil {
		return nil, err
	}
	var rows []table.Row
	for {
		batch, err := op.Next(p)
		if err != nil {
			return rows, err
		}
		if batch == nil {
			return rows, nil
		}
		for i := 0; i < batch.Len(); i++ {
			rows = append(rows, batch.Row(i))
		}
	}
}

// Package exec implements WattDB's vectorised volcano-style query operators
// (Sect. 3.3): table scans, pipelining operators (projection, filter),
// blocking operators (sort, group/aggregate), a remote exchange that ships
// record batches between nodes, and the asynchronous buffering operator
// that hides network latency during distributed execution.
//
// Every operator runs "on" a node: its CPU work is charged there. Batches
// flow between operators by value; when a plan edge crosses nodes, a Remote
// operator pays the network cost per next() call — which is exactly the
// effect Fig. 1 of the paper quantifies for single-record vs vectorised
// protocols.
package exec

import (
	"fmt"
	"sort"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// Operator is the volcano iterator interface. Next returns a batch of rows
// (nil = exhausted). Classic single-record operators use batch size 1;
// vectorised operators return up to their configured vector size.
//
// Batch ownership: the []table.Row slice returned by Next is only valid
// until the following Next or Close call — operators reuse the backing
// array across calls. The table.Row values inside are immutable and may be
// retained. An operator that holds batches across Next calls (e.g. the
// asynchronous Buffer) must copy the slice it keeps.
type Operator interface {
	Open(p *sim.Proc) error
	Next(p *sim.Proc) ([]table.Row, error)
	Close(p *sim.Proc)
}

// RowBytes estimates the wire size of a row for network cost accounting.
func RowBytes(r table.Row) int64 {
	var n int64 = 8 // framing
	for _, v := range r {
		switch s := v.(type) {
		case string:
			n += int64(len(s)) + 2
		default:
			n += 8
		}
	}
	return n
}

// TableScan reads a partition's visible records in key order, decoding rows
// and emitting batches of Vector rows. Each batch restarts the range scan
// after the last delivered key, so the operator needs no long-lived cursor
// state across blocking points.
type TableScan struct {
	Part   *table.Partition
	Txn    *cc.Txn
	Lo, Hi []byte
	Vector int

	last    []byte
	loBuf   []byte
	batch   []table.Row
	started bool
	done    bool
}

// Open resets the scan.
func (s *TableScan) Open(p *sim.Proc) error {
	if s.Vector <= 0 {
		s.Vector = 1
	}
	s.last, s.started, s.done = s.last[:0], false, false
	return nil
}

// Next returns the next batch. The partition scan underneath runs on the
// B*-tree's batched cursor (leaf-at-a-time fetches); the returned slice is
// reused across calls per the Operator contract.
func (s *TableScan) Next(p *sim.Proc) ([]table.Row, error) {
	if s.done {
		return nil, nil
	}
	lo := s.Lo
	if s.started {
		// Resume strictly after the last delivered key.
		s.loBuf = append(append(s.loBuf[:0], s.last...), 0)
		lo = s.loBuf
	}
	if s.batch == nil {
		s.batch = make([]table.Row, 0, s.Vector)
	}
	s.batch = s.batch[:0]
	var decodeErr error
	err := s.Part.Scan(p, s.Txn, lo, s.Hi, func(k, payload []byte) bool {
		row, err := s.Part.Schema.DecodeRow(payload)
		if err != nil {
			decodeErr = err
			return false
		}
		s.batch = append(s.batch, row)
		s.last = append(s.last[:0], k...)
		s.started = true
		return len(s.batch) < s.Vector
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return nil, err
	}
	if len(s.batch) == 0 {
		s.done = true
		return nil, nil
	}
	if len(s.batch) < s.Vector {
		s.done = true
	}
	return s.batch, nil
}

// Close releases the scan.
func (s *TableScan) Close(p *sim.Proc) {}

// Project is a pipelining operator emitting a column subset of its child's
// rows; per-record CPU is charged on Node.
type Project struct {
	Child     Operator
	Node      *hw.Node
	Cols      []int
	CPUPerRow time.Duration

	out []table.Row
}

// Open opens the child.
func (o *Project) Open(p *sim.Proc) error { return o.Child.Open(p) }

// Next projects the child's next batch. The batch header array is reused
// across calls; the projected rows themselves are carved from one flat
// allocation per batch, so consumers may retain them (Operator contract).
func (o *Project) Next(p *sim.Proc) ([]table.Row, error) {
	batch, err := o.Child.Next(p)
	if err != nil || batch == nil {
		return nil, err
	}
	o.Node.Compute(p, time.Duration(len(batch))*o.CPUPerRow)
	o.out = o.out[:0]
	vals := make(table.Row, len(batch)*len(o.Cols))
	for _, r := range batch {
		pr := vals[:len(o.Cols):len(o.Cols)]
		vals = vals[len(o.Cols):]
		for j, c := range o.Cols {
			if c < 0 || c >= len(r) {
				return nil, fmt.Errorf("exec: project column %d out of range", c)
			}
			pr[j] = r[c]
		}
		o.out = append(o.out, pr)
	}
	return o.out, nil
}

// Close closes the child.
func (o *Project) Close(p *sim.Proc) { o.Child.Close(p) }

// Filter is a pipelining operator keeping rows matching Pred.
type Filter struct {
	Child     Operator
	Node      *hw.Node
	Pred      func(table.Row) bool
	CPUPerRow time.Duration
}

// Open opens the child.
func (o *Filter) Open(p *sim.Proc) error { return o.Child.Open(p) }

// Next returns the next non-empty filtered batch.
func (o *Filter) Next(p *sim.Proc) ([]table.Row, error) {
	for {
		batch, err := o.Child.Next(p)
		if err != nil || batch == nil {
			return nil, err
		}
		o.Node.Compute(p, time.Duration(len(batch))*o.CPUPerRow)
		out := batch[:0]
		for _, r := range batch {
			if o.Pred(r) {
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

// Close closes the child.
func (o *Filter) Close(p *sim.Proc) { o.Child.Close(p) }

// Sort is a blocking operator: Open drains the child, sorts with Less, and
// Next streams the result in Vector-sized batches. Sorting costs
// CPUPerRow·n·ceil(log2 n) on Node — blocking operators "generally consume
// more resources and are therefore good candidates for offloading".
type Sort struct {
	Child     Operator
	Node      *hw.Node
	Less      func(a, b table.Row) bool
	CPUPerRow time.Duration
	Vector    int

	// Workspace, when set, is the node's shared sort memory (in bytes).
	// A sort that cannot reserve its input size spills: it runs an
	// external merge sort on SpillDisk whose pass count grows with memory
	// oversubscription (each concurrent sort gets a smaller share, so runs
	// are shorter and more merge passes are needed). This work
	// amplification is what makes heavily concurrent sort queries degrade
	// — the paper's "queries compete for CPU and buffer" (Fig. 2).
	Workspace *sim.Resource
	SpillDisk *hw.Disk
	// Group tracks concurrently open sorts sharing the workspace.
	Group *SortGroup

	rows     []table.Row
	pos      int
	reserved int64
	inGroup  bool
}

// SortGroup counts concurrently active sorts on a node.
type SortGroup struct{ Active int }

// Open drains and sorts the child's output.
func (o *Sort) Open(p *sim.Proc) error {
	if o.Vector <= 0 {
		o.Vector = 1
	}
	if err := o.Child.Open(p); err != nil {
		return err
	}
	o.rows, o.pos = nil, 0
	for {
		batch, err := o.Child.Next(p)
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		o.rows = append(o.rows, batch...)
	}
	n := len(o.rows)
	if n > 1 {
		if o.Group != nil {
			o.Group.Active++
			o.inGroup = true
		}
		if o.Workspace != nil {
			var need int64
			for _, r := range o.rows {
				need += RowBytes(r)
			}
			capped := need
			if capped > o.Workspace.Capacity() {
				capped = o.Workspace.Capacity()
			}
			if o.Workspace.TryAcquire(capped) {
				o.reserved = capped
			} else if o.SpillDisk != nil {
				// External merge sort: the per-sort memory share shrinks
				// with concurrency, so the number of read+write passes
				// over the input grows with oversubscription.
				passes := int64(1)
				if o.Group != nil && o.Group.Active > 0 {
					demand := need * int64(o.Group.Active)
					passes = (demand + o.Workspace.Capacity() - 1) / o.Workspace.Capacity()
					if passes < 1 {
						passes = 1
					}
					if passes > 8 {
						passes = 8
					}
				}
				for i := int64(0); i < passes; i++ {
					o.SpillDisk.Write(p, need)
					o.SpillDisk.Read(p, need)
				}
			}
		}
		levels := 1
		for v := n; v > 1; v >>= 1 {
			levels++
		}
		o.Node.Compute(p, time.Duration(n*levels)*o.CPUPerRow)
		sort.SliceStable(o.rows, func(i, j int) bool { return o.Less(o.rows[i], o.rows[j]) })
	}
	return nil
}

// Next streams the sorted rows.
func (o *Sort) Next(p *sim.Proc) ([]table.Row, error) {
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	end := o.pos + o.Vector
	if end > len(o.rows) {
		end = len(o.rows)
	}
	batch := o.rows[o.pos:end]
	o.pos = end
	return batch, nil
}

// Close releases the buffered rows and any reserved workspace.
func (o *Sort) Close(p *sim.Proc) {
	if o.reserved > 0 {
		o.Workspace.Release(o.reserved)
		o.reserved = 0
	}
	if o.inGroup {
		o.Group.Active--
		o.inGroup = false
	}
	o.rows = nil
	o.Child.Close(p)
}

// GroupAgg is a blocking hash aggregation: COUNT(*) and SUM(SumCol) per
// distinct GroupCol value, emitted as rows [group, count, sum].
type GroupAgg struct {
	Child     Operator
	Node      *hw.Node
	GroupCol  int
	SumCol    int // -1: count only
	CPUPerRow time.Duration
	Vector    int

	groups []table.Row
	pos    int
}

// Open drains the child and builds the hash table.
func (o *GroupAgg) Open(p *sim.Proc) error {
	if o.Vector <= 0 {
		o.Vector = 1
	}
	if err := o.Child.Open(p); err != nil {
		return err
	}
	o.groups, o.pos = nil, 0
	type agg struct {
		count int64
		sum   float64
	}
	m := make(map[any]*agg)
	var order []any
	for {
		batch, err := o.Child.Next(p)
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		o.Node.Compute(p, time.Duration(len(batch))*o.CPUPerRow)
		for _, r := range batch {
			g := r[o.GroupCol]
			a, ok := m[g]
			if !ok {
				a = &agg{}
				m[g] = a
				order = append(order, g)
			}
			a.count++
			if o.SumCol >= 0 {
				switch v := r[o.SumCol].(type) {
				case int64:
					a.sum += float64(v)
				case float64:
					a.sum += v
				}
			}
		}
	}
	for _, g := range order {
		a := m[g]
		o.groups = append(o.groups, table.Row{g, a.count, a.sum})
	}
	return nil
}

// Next streams the aggregated groups.
func (o *GroupAgg) Next(p *sim.Proc) ([]table.Row, error) {
	if o.pos >= len(o.groups) {
		return nil, nil
	}
	end := o.pos + o.Vector
	if end > len(o.groups) {
		end = len(o.groups)
	}
	batch := o.groups[o.pos:end]
	o.pos = end
	return batch, nil
}

// Close releases state.
func (o *GroupAgg) Close(p *sim.Proc) {
	o.groups = nil
	o.Child.Close(p)
}

// Limit stops after N rows.
type Limit struct {
	Child Operator
	N     int
	seen  int
}

// Open opens the child.
func (o *Limit) Open(p *sim.Proc) error { o.seen = 0; return o.Child.Open(p) }

// Next truncates the child's output at N rows.
func (o *Limit) Next(p *sim.Proc) ([]table.Row, error) {
	if o.seen >= o.N {
		return nil, nil
	}
	batch, err := o.Child.Next(p)
	if err != nil || batch == nil {
		return nil, err
	}
	if o.seen+len(batch) > o.N {
		batch = batch[:o.N-o.seen]
	}
	o.seen += len(batch)
	return batch, nil
}

// Close closes the child.
func (o *Limit) Close(p *sim.Proc) { o.Child.Close(p) }

// Drain runs a plan to exhaustion, returning the total row count. It is the
// query's result sink.
func Drain(p *sim.Proc, op Operator) (int, error) {
	if err := op.Open(p); err != nil {
		return 0, err
	}
	defer op.Close(p)
	n := 0
	for {
		batch, err := op.Next(p)
		if err != nil {
			return n, err
		}
		if batch == nil {
			return n, nil
		}
		n += len(batch)
	}
}

// Collect runs a plan to exhaustion and returns all rows (testing helper).
func Collect(p *sim.Proc, op Operator) ([]table.Row, error) {
	if err := op.Open(p); err != nil {
		return nil, err
	}
	defer op.Close(p)
	var rows []table.Row
	for {
		batch, err := op.Next(p)
		if err != nil {
			return rows, err
		}
		if batch == nil {
			return rows, nil
		}
		rows = append(rows, batch...)
	}
}

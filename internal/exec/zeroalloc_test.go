package exec

import (
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
	"wattdb/internal/table"
	"wattdb/internal/wal"
)

// newFixedWidthWorld builds one active node and a partition over a
// fixed-width (int64, int64, float64) schema with n rows.
func newFixedWidthWorld(t *testing.T, n int) (*sim.Env, *cc.Oracle, *table.Partition, *hw.Node) {
	t.Helper()
	env := sim.NewEnv(1)
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	n1 := hw.NewNode(env, 1, cal, net)
	n1.ForceActive()
	oracle := cc.NewOracle()
	schema := &table.Schema{
		ID: 1, Name: "fixed", KeyCols: 1,
		Columns: []table.Column{
			{Name: "k", Type: table.ColInt64},
			{Name: "grp", Type: table.ColInt64},
			{Name: "val", Type: table.ColFloat64},
		},
	}
	deps := table.Deps{
		Env:         env,
		Oracle:      oracle,
		Locks:       cc.NewLockManager(env),
		Log:         wal.NewLog(env, nullDevice{}),
		Factory:     &memFactory{pageSize: 4096, segPages: 256},
		LockTimeout: time.Second,
		PageSize:    4096,
		Compute:     n1.Compute,
		CPUPerOp:    cal.CPUBTreeOp,
		CPUPerTuple: cal.CPUTupleScan,
	}
	part := table.NewPartition(1, schema, table.Physiological, nil, nil, deps)
	env.Spawn("load", func(p *sim.Proc) {
		txn := oracle.Begin(cc.SnapshotIsolation)
		for i := 0; i < n; i++ {
			row := table.Row{int64(i), int64(i % 7), float64(i) * 1.5}
			key, _ := schema.Key(row)
			payload, _ := schema.EncodeRow(row)
			if err := part.Put(p, txn, key, payload); err != nil {
				t.Error(err)
				return
			}
		}
		if err := table.CommitTxn(p, txn, part); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return env, oracle, part, n1
}

// TestScanPipelineZeroAlloc proves the columnar acceptance criterion: a
// warm TableScan -> Project -> Filter pipeline over a fixed-width schema
// drains with 0 allocations per run — i.e. 0 allocs/row, where PR 1 still
// paid ~3 (the boxed table.Row decode). Vectors, the string arena, and the
// scan cursor machinery are all reused; a run includes Open, so first-Open
// lazy setup is warmed with one throwaway drain.
func TestScanPipelineZeroAlloc(t *testing.T) {
	const rows = 2000
	env, oracle, part, node := newFixedWidthWorld(t, rows)
	defer env.Close()
	env.Spawn("measure", func(p *sim.Proc) {
		txn := oracle.Begin(cc.SnapshotIsolation)
		plan := &Filter{
			Child: &Project{
				Child:     &TableScan{Part: part, Txn: txn, Vector: 64},
				Node:      node,
				Cols:      []int{1, 2},
				CPUPerRow: time.Microsecond,
			},
			Node:      node,
			Pred:      func(b *table.Batch, i int) bool { return b.Int(0, i)%2 == 0 },
			CPUPerRow: time.Microsecond,
		}
		want := 0
		for i := 0; i < rows; i++ {
			if i%7%2 == 0 {
				want++
			}
		}
		drain := func() {
			n, err := Drain(p, plan)
			if err != nil {
				t.Error(err)
				return
			}
			if n != want {
				t.Errorf("drained %d rows, want %d", n, want)
			}
		}
		drain() // warm batch vectors and lazily built operator state
		allocs := testing.AllocsPerRun(10, drain)
		if allocs != 0 {
			t.Fatalf("warm scan pipeline allocates %v objects per %d-row drain, want 0 (0 allocs/row)", allocs, rows)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTableScanAloneZeroAlloc pins the scan operator by itself, mirroring
// the PR 1 micro-benchmark that reported 3 allocs/row for the boxed decode.
func TestTableScanAloneZeroAlloc(t *testing.T) {
	const rows = 1500
	env, oracle, part, _ := newFixedWidthWorld(t, rows)
	defer env.Close()
	env.Spawn("measure", func(p *sim.Proc) {
		txn := oracle.Begin(cc.SnapshotIsolation)
		scan := &TableScan{Part: part, Txn: txn, Vector: 64}
		drain := func() {
			n, err := Drain(p, scan)
			if err != nil || n != rows {
				t.Errorf("n=%d err=%v", n, err)
			}
		}
		drain()
		if allocs := testing.AllocsPerRun(10, drain); allocs != 0 {
			t.Fatalf("warm TableScan allocates %v objects per %d-row drain, want 0", allocs, rows)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

package wal

import (
	"bytes"
	"testing"

	"wattdb/internal/cc"
)

// FuzzRecordRoundTrip checks the log record wire codec: every record —
// including the prepare-time DML images and coordinator decision records of
// in-doubt 2PC recovery — must round-trip exactly, preserving the
// nil-versus-empty distinction of its image fields (a nil Before means "key
// did not exist", which recovery must never confuse with an empty value),
// and Size() must equal the encoded length.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint64(0), uint64(3), byte(RecUpdate),
		[]byte("key"), true, []byte("old"), true, []byte("new"))
	f.Add(uint64(2), uint64(7), uint64(0), uint64(3), byte(RecInsert),
		[]byte("key"), false, []byte(nil), true, []byte("new"))
	f.Add(uint64(3), uint64(9), uint64(0), uint64(0), byte(RecCommit),
		[]byte(nil), false, []byte(nil), false, []byte(nil))
	f.Add(uint64(4), uint64(9), uint64(0), uint64(2), byte(RecPrepDML),
		[]byte("k"), false, []byte(nil), true, []byte("raw-payload"))
	f.Add(uint64(5), uint64(9), uint64(0), uint64(2), byte(RecPrepDel),
		[]byte("k"), false, []byte(nil), false, []byte(nil))
	f.Add(uint64(6), uint64(9), uint64(123), uint64(0), byte(RecDecision),
		[]byte(nil), false, []byte(nil), false, []byte(nil))
	f.Add(uint64(7), uint64(1), uint64(0), uint64(5), byte(RecUpdate),
		[]byte{}, true, []byte{}, true, []byte{})

	f.Fuzz(func(t *testing.T, lsn, txn, ts, part uint64, typ byte,
		key []byte, hasBefore bool, before []byte, hasAfter bool, after []byte) {
		r := Record{
			LSN:  lsn,
			Txn:  cc.TxnID(txn),
			TS:   cc.Timestamp(ts),
			Part: part,
			Type: RecType(typ),
			Key:  key,
		}
		if hasBefore {
			if before == nil {
				before = []byte{}
			}
			r.Before = before
		}
		if hasAfter {
			if after == nil {
				after = []byte{}
			}
			r.After = after
		}
		enc := EncodeRecord(nil, &r)
		if int64(len(enc)) != r.Size() {
			t.Fatalf("encoded length %d != Size() %d", len(enc), r.Size())
		}
		// Trailing bytes must be left untouched.
		dec, rest, err := DecodeRecord(append(enc, 0xAB, 0xCD))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 2 || rest[0] != 0xAB || rest[1] != 0xCD {
			t.Fatalf("rest = %x, want ab cd", rest)
		}
		if dec.LSN != r.LSN || dec.Txn != r.Txn || dec.TS != r.TS || dec.Part != r.Part || dec.Type != r.Type {
			t.Fatalf("header mismatch: %+v vs %+v", dec, r)
		}
		for _, fld := range []struct {
			name string
			a, b []byte
		}{{"key", dec.Key, r.Key}, {"before", dec.Before, r.Before}, {"after", dec.After, r.After}} {
			if (fld.a == nil) != (fld.b == nil) {
				t.Fatalf("%s nil-ness lost: decoded nil=%v, original nil=%v", fld.name, fld.a == nil, fld.b == nil)
			}
			if !bytes.Equal(fld.a, fld.b) {
				t.Fatalf("%s = %x, want %x", fld.name, fld.a, fld.b)
			}
		}
	})
}

// FuzzTornTailRecovery feeds the frame scanner the physical crash states
// recovery must survive: a run of valid frames followed by an arbitrary tail
// — a torn prefix of the next frame, garbage, or a bit-flipped copy of a
// complete frame. ValidPrefix (the truncation point Restart uses) must never
// panic, must keep every intact leading frame, and must consume nothing but
// whole frames.
func FuzzTornTailRecovery(f *testing.F) {
	frame := func(recs ...Record) []byte {
		var buf []byte
		for i := range recs {
			buf = appendFrame(buf, &recs[i])
		}
		return buf
	}
	r1 := Record{LSN: 1, Type: RecInsert, Txn: 1, Part: 2, Key: []byte("k"), After: []byte("v")}
	r2 := Record{LSN: 2, Type: RecCommit, Txn: 1}
	// A fuzzy-checkpoint pair: the crash states around its end record are
	// exactly the torn-pair fallback LastCheckpoint must survive.
	cb := Record{LSN: 3, Type: RecCkptBegin}
	ce := Record{LSN: 4, Type: RecCkptEnd, Part: 3,
		After: EncodeCheckpoint(nil, &Checkpoint{Begin: 3, Redo: 1, Parts: []CkptPart{{ID: 2, Redo: 1}}})}
	f.Add(frame(r1, r2), []byte{}, -1)
	f.Add(frame(r1, r2), frame(r2)[:5], -1)       // torn final record
	f.Add(frame(r1), frame(r2), 12)               // bit-flipped complete frame
	f.Add([]byte{}, []byte{0xFF, 0x00, 0xAB}, -1) // garbage-only log
	f.Add(frame(r1, r2), bytes.Repeat([]byte{0}, 64), -1)
	f.Add(frame(r1, r2, cb, ce), frame(ce)[:9], -1) // torn checkpoint-end record
	f.Add(frame(r1, r2, cb), frame(ce), 40)         // bit-flipped checkpoint end

	f.Fuzz(func(t *testing.T, valid []byte, tail []byte, flip int) {
		// Only a frame-aligned valid part models a durable prefix.
		valid = valid[:ValidPrefix(valid)]
		if flip >= 0 && len(tail) > 0 {
			tail = bytes.Clone(tail)
			bit := flip % (len(tail) * 8)
			tail[bit/8] ^= 1 << (bit % 8)
		}
		buf := append(bytes.Clone(valid), tail...)
		vp := ValidPrefix(buf)
		if vp < len(valid) {
			t.Fatalf("truncation lost intact frames: valid prefix %d < %d", vp, len(valid))
		}
		if vp > len(buf) {
			t.Fatalf("valid prefix %d over-reads %d-byte log", vp, len(buf))
		}
		// The accepted prefix must decode as whole frames, exactly to vp.
		off := 0
		for off < vp {
			_, n, err := decodeFrame(buf[off:])
			if err != nil {
				t.Fatalf("accepted prefix fails to decode at %d: %v", off, err)
			}
			off += n
		}
		if off != vp {
			t.Fatalf("frames consume %d bytes, valid prefix says %d", off, vp)
		}
		// Maximality: the truncation point must actually be damage.
		if vp < len(buf) {
			if _, _, err := decodeFrame(buf[vp:]); err == nil {
				t.Fatalf("valid frame at %d beyond the reported prefix %d", vp, vp)
			}
		}
	})
}

// FuzzCheckpointCodec checks the checkpoint payload codec both ways: an
// encoded Checkpoint must round-trip exactly, and arbitrary bytes must be
// rejected with an error — never a panic or a giant allocation — since
// restart feeds LastCheckpoint whatever a crash left in a RecCkptEnd record.
func FuzzCheckpointCodec(f *testing.F) {
	f.Add(uint64(3), uint64(1), uint64(2), uint64(1), uint64(9), uint64(4), []byte{})
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), []byte{})
	f.Add(uint64(7), uint64(5), uint64(1), uint64(5), uint64(2), uint64(6),
		EncodeCheckpoint(nil, &Checkpoint{Begin: 7, Redo: 5}))
	f.Add(uint64(1), uint64(1), uint64(1), uint64(1), uint64(1), uint64(1),
		bytes.Repeat([]byte{0xFF}, ckptHeaderSize)) // implausible entry counts
	f.Fuzz(func(t *testing.T, begin, redo, partID, partRedo, txn, first uint64, raw []byte) {
		ck := Checkpoint{
			Begin: begin,
			Redo:  redo,
			Parts: []CkptPart{{ID: partID, Redo: partRedo}},
			Txns:  []CkptTxn{{Txn: cc.TxnID(txn), First: first}},
		}
		enc := EncodeCheckpoint(nil, &ck)
		dec, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if dec.Begin != ck.Begin || dec.Redo != ck.Redo ||
			len(dec.Parts) != 1 || dec.Parts[0] != ck.Parts[0] ||
			len(dec.Txns) != 1 || dec.Txns[0] != ck.Txns[0] {
			t.Fatalf("round trip mismatch: %+v vs %+v", dec, ck)
		}
		if dec.PartRedo(partID) != partRedo {
			t.Fatalf("PartRedo(%d) = %d, want %d", partID, dec.PartRedo(partID), partRedo)
		}
		// Decoding is canonical: any trailing or missing byte is corruption.
		if _, err := DecodeCheckpoint(enc[:len(enc)-1]); err == nil {
			t.Fatal("truncated payload accepted")
		}
		if _, err := DecodeCheckpoint(append(bytes.Clone(enc), 0)); err == nil {
			t.Fatal("oversized payload accepted")
		}
		// Arbitrary bytes: error or a structurally sound checkpoint.
		if ck2, err := DecodeCheckpoint(raw); err == nil {
			if len(ck2.Parts) > maxCkptEntries || len(ck2.Txns) > maxCkptEntries {
				t.Fatalf("decoder accepted implausible entry counts: %d parts, %d txns",
					len(ck2.Parts), len(ck2.Txns))
			}
		}
	})
}

// FuzzDecodeRecordNoPanic feeds arbitrary bytes to the decoder: it must
// reject garbage with an error, never panic or over-read.
func FuzzDecodeRecordNoPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, recHeaderSize))
	f.Add(EncodeRecord(nil, &Record{Type: RecPrepDML, Txn: 1, Key: []byte("k"), After: []byte("v")}))
	// Fuzz-found: non-canonical flag bits must be rejected, or decode(encode)
	// stops being the identity on the consumed prefix.
	f.Add(append(bytes.Repeat([]byte{0x30}, 34), make([]byte, recHeaderSize-34)...))
	f.Fuzz(func(t *testing.T, buf []byte) {
		rec, rest, err := DecodeRecord(buf)
		if err != nil {
			return
		}
		if len(rest) > len(buf) {
			t.Fatalf("rest longer than input")
		}
		// A successful decode must re-encode to the consumed prefix.
		enc := EncodeRecord(nil, &rec)
		if !bytes.Equal(enc, buf[:len(buf)-len(rest)]) {
			t.Fatalf("re-encode differs from consumed bytes:\n  in:  %x\n  out: %x", buf[:len(buf)-len(rest)], enc)
		}
	})
}

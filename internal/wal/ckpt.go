package wal

import (
	"encoding/binary"
	"fmt"

	"wattdb/internal/cc"
)

// Fuzzy-checkpoint payload. The checkpointer flushes dirty buffer frames
// behind foreground traffic, refreshes the partition recovery bases with
// every committed image whose log record falls below the new redo point,
// and then appends a RecCkptBegin/RecCkptEnd pair; the end record's After
// field carries this payload. On the next restart, replay of each hosted
// partition starts at that partition's redo low-water mark instead of the
// log head — the refreshed bases stand in for everything older — and
// TruncateBefore may recycle all segments below the global redo point
// (subject to the ship pin and the master/wrapper retention floors).
//
// Wire format (all little-endian):
//
//	[0:8]   Begin (LSN of the matching RecCkptBegin record)
//	[8:16]  Redo (global redo point: min over parts and in-flight txns)
//	[16:20] len(Parts)
//	[20:24] len(Txns)
//	then len(Parts) × { [0:8] ID, [8:16] Redo }
//	then len(Txns)  × { [0:8] Txn, [8:16] First }
//
// Decoding is canonical: a short or oversized buffer fails, and entry
// counts are bounded so a corrupt length cannot demand a giant read.

// CkptPart is one hosted partition's redo low-water mark: replay for the
// partition may start at Redo because the recovery base holds every
// committed image below it.
type CkptPart struct {
	ID   uint64
	Redo uint64
}

// CkptTxn is one transaction in flight at the checkpoint (records in the
// log, no commit or abort yet): its first LSN pins the redo point, since
// redo of a late commit — or undo of a loser — needs all of its records.
type CkptTxn struct {
	Txn   cc.TxnID
	First uint64
}

// Checkpoint is the decoded RecCkptEnd payload.
type Checkpoint struct {
	Begin uint64
	Redo  uint64
	Parts []CkptPart
	Txns  []CkptTxn
}

const ckptHeaderSize = 24

// maxCkptEntries bounds the per-payload entry counts; anything beyond it is
// treated as corruption rather than attempting a giant allocation.
const maxCkptEntries = 1 << 20

// EncodeCheckpoint appends c's wire encoding to dst and returns the
// extended slice.
func EncodeCheckpoint(dst []byte, c *Checkpoint) []byte {
	var hdr [ckptHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], c.Begin)
	binary.LittleEndian.PutUint64(hdr[8:16], c.Redo)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(c.Parts)))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(c.Txns)))
	dst = append(dst, hdr[:]...)
	var ent [16]byte
	for i := range c.Parts {
		binary.LittleEndian.PutUint64(ent[0:8], c.Parts[i].ID)
		binary.LittleEndian.PutUint64(ent[8:16], c.Parts[i].Redo)
		dst = append(dst, ent[:]...)
	}
	for i := range c.Txns {
		binary.LittleEndian.PutUint64(ent[0:8], uint64(c.Txns[i].Txn))
		binary.LittleEndian.PutUint64(ent[8:16], c.Txns[i].First)
		dst = append(dst, ent[:]...)
	}
	return dst
}

// DecodeCheckpoint parses one checkpoint payload occupying the whole of
// buf. Decoded slices are copies, not aliases.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	if len(buf) < ckptHeaderSize {
		return nil, fmt.Errorf("wal: checkpoint payload truncated (%d bytes)", len(buf))
	}
	c := &Checkpoint{
		Begin: binary.LittleEndian.Uint64(buf[0:8]),
		Redo:  binary.LittleEndian.Uint64(buf[8:16]),
	}
	nParts := int(binary.LittleEndian.Uint32(buf[16:20]))
	nTxns := int(binary.LittleEndian.Uint32(buf[20:24]))
	if nParts > maxCkptEntries || nTxns > maxCkptEntries {
		return nil, fmt.Errorf("wal: implausible checkpoint entry counts (%d parts, %d txns)", nParts, nTxns)
	}
	body := buf[ckptHeaderSize:]
	if want := 16 * (nParts + nTxns); len(body) != want {
		return nil, fmt.Errorf("wal: checkpoint body length %d, want %d", len(body), want)
	}
	if nParts > 0 {
		c.Parts = make([]CkptPart, nParts)
		for i := range c.Parts {
			c.Parts[i].ID = binary.LittleEndian.Uint64(body[16*i:])
			c.Parts[i].Redo = binary.LittleEndian.Uint64(body[16*i+8:])
		}
		body = body[16*nParts:]
	}
	if nTxns > 0 {
		c.Txns = make([]CkptTxn, nTxns)
		for i := range c.Txns {
			c.Txns[i].Txn = cc.TxnID(binary.LittleEndian.Uint64(body[16*i:]))
			c.Txns[i].First = binary.LittleEndian.Uint64(body[16*i+8:])
		}
	}
	return c, nil
}

// PartRedo returns the redo low-water mark recorded for partition id, or 0
// (replay from the log head) when the payload does not mention it — a
// partition adopted after the checkpoint has all of its records above the
// checkpoint anyway.
func (c *Checkpoint) PartRedo(id uint64) uint64 {
	for i := range c.Parts {
		if c.Parts[i].ID == id {
			return c.Parts[i].Redo
		}
	}
	return 0
}

// LastCheckpoint returns the newest complete, durable checkpoint: the
// RecCkptEnd record with the highest LSN whose payload decodes and whose
// matching RecCkptBegin record is still retained. A checkpoint whose end
// record was torn off by a crash (or has not been flushed) is invisible
// here, so restart falls back to the previous complete pair — or to a full
// replay when none exists. Nil when the log holds no complete checkpoint.
func (l *Log) LastCheckpoint() *Checkpoint {
	var (
		best      *Checkpoint
		begins    = map[uint64]bool{}
		pendBegin uint64
	)
	l.VisitFrames(func(rec *Record, frame []byte) bool {
		if rec.LSN > l.flushedLSN {
			return false // the unflushed tail would not survive a crash
		}
		switch rec.Type {
		case RecCkptBegin:
			begins[rec.LSN] = true
			pendBegin = rec.LSN
		case RecCkptEnd:
			ck, err := DecodeCheckpoint(rec.After)
			if err != nil || !begins[ck.Begin] || ck.Begin != pendBegin {
				return true // torn/corrupt payload or unmatched pair: ignore
			}
			best = ck
		}
		return true
	})
	return best
}

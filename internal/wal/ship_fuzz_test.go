package wal

import (
	"bytes"
	"testing"
)

// FuzzShipRoundTrip checks the replication-stream codec: a ship payload must
// survive encode/decode exactly — origin, LSN, generation, the reset flag,
// and the frame bytes including the nil-versus-empty distinction (a nil
// frame is only legal on a reset marker; an empty non-nil frame is a real,
// zero-payload frame the follower must still store).
func FuzzShipRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint64(42), uint64(0), false, []byte("frame-bytes"))
	f.Add(uint32(3), uint64(0), uint64(2), true, []byte(nil))
	f.Add(uint32(0), uint64(1), uint64(1), false, []byte{})
	f.Fuzz(func(t *testing.T, origin uint32, lsn, gen uint64, reset bool, frame []byte) {
		in := &ShipFrame{Origin: origin, LSN: lsn, Gen: gen, Reset: reset, Frame: frame}
		if reset {
			// A reset marker carries neither frame nor LSN by construction;
			// the decoder rejects anything else, which the no-panic fuzzer
			// covers. Round-trip only well-formed inputs here.
			in.LSN, in.Frame = 0, nil
		} else if in.Frame == nil {
			in.Frame = []byte{}
		}
		out, err := DecodeShipFrame(EncodeShipFrame(nil, in))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Origin != in.Origin || out.LSN != in.LSN || out.Gen != in.Gen || out.Reset != in.Reset {
			t.Fatalf("header mismatch: %+v vs %+v", out, in)
		}
		if (out.Frame == nil) != (in.Frame == nil) {
			t.Fatalf("frame nil-ness lost: %+v vs %+v", out, in)
		}
		if !bytes.Equal(out.Frame, in.Frame) {
			t.Fatalf("frame bytes = %x, want %x", out.Frame, in.Frame)
		}
		if len(in.Frame) > 0 {
			// Decoded slices must be copies: scribbling over the encoding
			// must not reach through to the decoded frame (followers retain
			// decoded frames long after the wire buffer is reused).
			enc := EncodeShipFrame(nil, in)
			out2, err := DecodeShipFrame(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			for i := range enc {
				enc[i] = ^enc[i]
			}
			if !bytes.Equal(out2.Frame, in.Frame) {
				t.Fatal("decoded frame aliases the wire buffer")
			}
		}
	})
}

// FuzzShipDecodeNoPanic feeds arbitrary bytes to the ship decoder: garbage
// must come back as an error, never a panic or an over-read, and anything
// accepted must re-encode to exactly the input — the codec is canonical, so
// a follower handing a frame back to the scrubber reproduces the bytes the
// origin shipped.
func FuzzShipDecodeNoPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeShipFrame(nil, &ShipFrame{Origin: 2, LSN: 7, Gen: 1, Frame: []byte("payload")}))
	f.Add(EncodeShipFrame(nil, &ShipFrame{Origin: 9, Gen: 3, Reset: true}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		sf, err := DecodeShipFrame(buf)
		if err != nil {
			return
		}
		if sf.Reset && (sf.Frame != nil || sf.LSN != 0) {
			t.Fatalf("decoder accepted a reset marker with payload: %+v", sf)
		}
		if !sf.Reset && sf.Frame == nil {
			t.Fatalf("decoder accepted a data payload with no frame: %+v", sf)
		}
		if enc := EncodeShipFrame(nil, sf); !bytes.Equal(enc, buf) {
			t.Fatalf("re-encode differs:\n  in:  %x\n  out: %x", buf, enc)
		}
	})
}

// FuzzShipTornTailRecovery is the replication sibling of
// FuzzMasterTornTailRecovery: a follower's log holds RecShip wrappers around
// origin frames, the origin dies mid-ship, and the follower's recovery scan
// must keep every intact wrapper, reject the damaged tail, and — because the
// wrapper's CRC vouches for the payload — successfully decode the ship
// payload and the origin frame inside every wrapper it kept.
func FuzzShipTornTailRecovery(f *testing.F) {
	originFrame := func(lsn uint64, key, val string) []byte {
		return appendFrame(nil, &Record{LSN: lsn, Type: RecInsert, Txn: 5,
			Part: 11, Key: []byte(key), After: []byte(val)})
	}
	wrap := func(wrapLSN uint64, sf *ShipFrame) []byte {
		return appendFrame(nil, &Record{LSN: wrapLSN, Type: RecShip,
			Part: uint64(sf.Origin), After: EncodeShipFrame(nil, sf)})
	}
	w1 := wrap(1, &ShipFrame{Origin: 2, LSN: 31, Gen: 0, Frame: originFrame(31, "a", "v1")})
	w2 := wrap(2, &ShipFrame{Origin: 2, Gen: 1, Reset: true})
	w3 := wrap(3, &ShipFrame{Origin: 2, LSN: 1, Gen: 1, Frame: originFrame(1, "b", "v2")})

	f.Add(append(append(bytes.Clone(w1), w2...), w3...), []byte{}, -1)
	f.Add(bytes.Clone(w1), w3[:9], -1) // torn mid-wrapper
	f.Add(bytes.Clone(w2), w3, 51)     // bit-flipped shipped frame
	f.Add([]byte{}, w1, 3)

	f.Fuzz(func(t *testing.T, valid []byte, tail []byte, flip int) {
		valid = valid[:ValidPrefix(valid)]
		if flip >= 0 && len(tail) > 0 {
			tail = bytes.Clone(tail)
			bit := flip % (len(tail) * 8)
			tail[bit/8] ^= 1 << (bit % 8)
		}
		buf := append(bytes.Clone(valid), tail...)
		vp := ValidPrefix(buf)
		if vp < len(valid) {
			t.Fatalf("truncation lost intact wrappers: valid prefix %d < %d", vp, len(valid))
		}
		if vp > len(buf) {
			t.Fatalf("valid prefix %d over-reads %d-byte log", vp, len(buf))
		}
		off := 0
		for off < vp {
			rec, n, err := decodeFrame(buf[off:])
			if err != nil {
				t.Fatalf("accepted prefix fails to decode at %d: %v", off, err)
			}
			if rec.Type == RecShip {
				sf, err := DecodeShipFrame(rec.After)
				if err != nil {
					t.Fatalf("intact RecShip payload rejected: %v", err)
				}
				if !sf.Reset {
					// The shipped bytes are a whole origin frame: CRC-framed
					// themselves, so they must decode standalone.
					inner, in, err := decodeFrame(sf.Frame)
					if err != nil || in != len(sf.Frame) {
						t.Fatalf("shipped origin frame rejected (n=%d of %d): %v",
							in, len(sf.Frame), err)
					}
					if inner.LSN != sf.LSN {
						t.Fatalf("wrapper says LSN %d, shipped frame says %d", sf.LSN, inner.LSN)
					}
				}
			}
			off += n
		}
		if off != vp {
			t.Fatalf("frames consume %d bytes, valid prefix says %d", off, vp)
		}
	})
}

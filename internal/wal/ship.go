package wal

import (
	"encoding/binary"
	"fmt"
)

// Data-replication ship payloads. A follower's log interleaves its own data
// records with RecShip wrappers whose After field carries one of these
// payloads: a single raw frame of some origin node's log, tagged with the
// origin's ID, the frame's origin LSN, and the origin's rebuild generation,
// or a reset marker opening a wholesale resync (the follower clears its
// state for that origin before applying what follows). The wrapped frame is
// shipped byte-identical to what the origin appended, so a replica can both
// rebuild the origin's partitions (decode + apply) and hand the exact bytes
// back to the scrubber when the origin's copy bit-rots.
//
// The generation disambiguates origin log numberings: a rebuild after total
// durable loss renumbers the origin's log from LSN 1, so frames of different
// generations at the same LSN are unrelated records. Followers retain
// whatever generations they were shipped; readers keep only the newest
// generation present (see the rebuild and scrub paths in cluster/datarep.go).
//
// Wire format (all little-endian):
//
//	[0:4]   Origin node ID
//	[4:12]  LSN (the frame's LSN in the origin's log; 0 on a reset marker)
//	[12:20] Gen (the origin's rebuild generation)
//	[20]    flags (bit 0: reset marker, bit 1: frame present)
//	[21:25] len(Frame)
//	[25:]   Frame
//
// A reset marker carries no frame and no LSN; a data payload carries both.
// Decoding is canonical: unknown flags, contradictory flag/length pairs, or
// stray trailing bytes all fail.

// ShipFrame is one unit of the replicated data stream.
type ShipFrame struct {
	Origin uint32 // origin node ID
	LSN    uint64 // origin log LSN of Frame (0 on a reset marker)
	Gen    uint64 // origin rebuild generation (renumbering epoch)
	Reset  bool   // wholesale resync: clear follower state for Origin first
	Frame  []byte // raw origin frame bytes (nil on a reset marker)
}

const shipHeaderSize = 25

const (
	shipFlagReset = 1 << 0
	shipFlagFrame = 1 << 1
)

// EncodeShipFrame appends f's wire encoding to dst and returns the extended
// slice.
func EncodeShipFrame(dst []byte, f *ShipFrame) []byte {
	var hdr [shipHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], f.Origin)
	binary.LittleEndian.PutUint64(hdr[4:12], f.LSN)
	binary.LittleEndian.PutUint64(hdr[12:20], f.Gen)
	if f.Reset {
		hdr[20] |= shipFlagReset
	}
	if f.Frame != nil {
		hdr[20] |= shipFlagFrame
	}
	binary.LittleEndian.PutUint32(hdr[21:25], uint32(len(f.Frame)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Frame...)
	return dst
}

// DecodeShipFrame parses one ship payload occupying the whole of buf.
// Decoded slices are copies, not aliases.
func DecodeShipFrame(buf []byte) (*ShipFrame, error) {
	if len(buf) < shipHeaderSize {
		return nil, fmt.Errorf("wal: ship payload truncated (%d bytes)", len(buf))
	}
	f := &ShipFrame{
		Origin: binary.LittleEndian.Uint32(buf[0:4]),
		LSN:    binary.LittleEndian.Uint64(buf[4:12]),
		Gen:    binary.LittleEndian.Uint64(buf[12:20]),
	}
	flags := buf[20]
	if flags&^(shipFlagReset|shipFlagFrame) != 0 {
		return nil, fmt.Errorf("wal: unknown ship flags %#x", flags)
	}
	f.Reset = flags&shipFlagReset != 0
	n := int(binary.LittleEndian.Uint32(buf[21:25]))
	body := buf[shipHeaderSize:]
	if n < 0 || len(body) != n {
		return nil, fmt.Errorf("wal: ship frame length %d over %d body bytes", n, len(body))
	}
	if flags&shipFlagFrame != 0 {
		f.Frame = append([]byte{}, body...)
	} else if n != 0 {
		return nil, fmt.Errorf("wal: %d frame bytes on a payload flagged frame=nil", n)
	}
	if f.Reset {
		if f.Frame != nil || f.LSN != 0 {
			return nil, fmt.Errorf("wal: reset marker carrying a frame or LSN")
		}
	} else if f.Frame == nil {
		return nil, fmt.Errorf("wal: ship payload with neither frame nor reset")
	}
	return f, nil
}

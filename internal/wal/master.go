package wal

import (
	"encoding/binary"
	"fmt"
)

// Master-state payload codecs. The coordinator's catalog and partition table
// are replicated as RecMState records whose After payload is one
// MasterTable: a full snapshot of a single table's routing state. Snapshots
// (rather than deltas) keep replay trivial — the highest-sequence record for
// a table wins — at a wire cost of a few hundred bytes per mutation, which
// the simulated network charges like any other transfer.
//
// MasterTable wire format (all integers little-endian):
//
//	[0:2]  len(name), then name bytes
//	[+0]   scheme byte
//	[+1]   flags (bit 0: replicated table)
//	[+2:+10] next partition ID
//	[+10:+12] entry count
//	per entry:
//	  [0:8]  partition ID
//	  [8:12] owner node ID
//	  [12]   flags (bit 0: old pointer present, bit 1: Low set,
//	         bit 2: High set, bit 3: MovedBelow set)
//	  [old partition ID u64 + old owner u32]  if bit 0
//	  [u16 len + bytes]                       for each set key bound
//
// Nil and empty key bounds are distinct (the flag bits), exactly like
// Before/After images in the record codec: a nil MovedBelow means "no
// migration in progress", which replay must not confuse with a zero-length
// boundary key.

// MasterEntry is one partition-table range (or one replica placement) inside
// a MasterTable snapshot.
type MasterEntry struct {
	PartID     uint64
	OwnerID    uint32
	HasOld     bool
	OldPartID  uint64
	OldOwnerID uint32
	Low        []byte
	High       []byte
	MovedBelow []byte
}

// MasterTable is the replicated snapshot of one table's coordinator state.
type MasterTable struct {
	Name       string
	Scheme     byte
	Replicated bool
	NextPartID uint64
	Entries    []MasterEntry
}

const (
	mtFlagReplicated = 1 << 0

	meFlagOld   = 1 << 0
	meFlagLow   = 1 << 1
	meFlagHigh  = 1 << 2
	meFlagMoved = 1 << 3
)

func appendBound(dst []byte, b []byte) []byte {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(b)))
	dst = append(dst, n[:]...)
	return append(dst, b...)
}

func takeBound(buf []byte) ([]byte, []byte, error) {
	if len(buf) < 2 {
		return nil, nil, fmt.Errorf("wal: master bound length truncated")
	}
	n := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) < n {
		return nil, nil, fmt.Errorf("wal: master bound truncated (want %d, have %d)", n, len(buf))
	}
	return append([]byte{}, buf[:n]...), buf[n:], nil
}

// EncodeMasterTable appends t's wire encoding to dst.
func EncodeMasterTable(dst []byte, t *MasterTable) []byte {
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(t.Name)))
	dst = append(dst, u16[:]...)
	dst = append(dst, t.Name...)
	dst = append(dst, t.Scheme)
	var flags byte
	if t.Replicated {
		flags |= mtFlagReplicated
	}
	dst = append(dst, flags)
	binary.LittleEndian.PutUint64(u64[:], t.NextPartID)
	dst = append(dst, u64[:]...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(t.Entries)))
	dst = append(dst, u16[:]...)
	for i := range t.Entries {
		e := &t.Entries[i]
		binary.LittleEndian.PutUint64(u64[:], e.PartID)
		dst = append(dst, u64[:]...)
		binary.LittleEndian.PutUint32(u32[:], e.OwnerID)
		dst = append(dst, u32[:]...)
		var ef byte
		if e.HasOld {
			ef |= meFlagOld
		}
		if e.Low != nil {
			ef |= meFlagLow
		}
		if e.High != nil {
			ef |= meFlagHigh
		}
		if e.MovedBelow != nil {
			ef |= meFlagMoved
		}
		dst = append(dst, ef)
		if e.HasOld {
			binary.LittleEndian.PutUint64(u64[:], e.OldPartID)
			dst = append(dst, u64[:]...)
			binary.LittleEndian.PutUint32(u32[:], e.OldOwnerID)
			dst = append(dst, u32[:]...)
		}
		if e.Low != nil {
			dst = appendBound(dst, e.Low)
		}
		if e.High != nil {
			dst = appendBound(dst, e.High)
		}
		if e.MovedBelow != nil {
			dst = appendBound(dst, e.MovedBelow)
		}
	}
	return dst
}

// DecodeMasterTable parses a MasterTable snapshot from buf. The whole buffer
// must be consumed: stray trailing bytes are an encoding error.
func DecodeMasterTable(buf []byte) (*MasterTable, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("wal: master table name length truncated")
	}
	nameLen := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) < nameLen+12 {
		return nil, fmt.Errorf("wal: master table header truncated")
	}
	t := &MasterTable{Name: string(buf[:nameLen])}
	buf = buf[nameLen:]
	t.Scheme = buf[0]
	flags := buf[1]
	if flags&^byte(mtFlagReplicated) != 0 {
		return nil, fmt.Errorf("wal: unknown master table flags %#x", flags)
	}
	t.Replicated = flags&mtFlagReplicated != 0
	t.NextPartID = binary.LittleEndian.Uint64(buf[2:10])
	count := int(binary.LittleEndian.Uint16(buf[10:12]))
	buf = buf[12:]
	t.Entries = make([]MasterEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(buf) < 13 {
			return nil, fmt.Errorf("wal: master entry %d truncated", i)
		}
		var e MasterEntry
		e.PartID = binary.LittleEndian.Uint64(buf[0:8])
		e.OwnerID = binary.LittleEndian.Uint32(buf[8:12])
		ef := buf[12]
		buf = buf[13:]
		if ef&^byte(meFlagOld|meFlagLow|meFlagHigh|meFlagMoved) != 0 {
			return nil, fmt.Errorf("wal: unknown master entry flags %#x", ef)
		}
		if ef&meFlagOld != 0 {
			if len(buf) < 12 {
				return nil, fmt.Errorf("wal: master entry %d old pointer truncated", i)
			}
			e.HasOld = true
			e.OldPartID = binary.LittleEndian.Uint64(buf[0:8])
			e.OldOwnerID = binary.LittleEndian.Uint32(buf[8:12])
			buf = buf[12:]
		}
		var err error
		if ef&meFlagLow != 0 {
			if e.Low, buf, err = takeBound(buf); err != nil {
				return nil, err
			}
		}
		if ef&meFlagHigh != 0 {
			if e.High, buf, err = takeBound(buf); err != nil {
				return nil, err
			}
		}
		if ef&meFlagMoved != 0 {
			if e.MovedBelow, buf, err = takeBound(buf); err != nil {
				return nil, err
			}
		}
		t.Entries = append(t.Entries, e)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("wal: %d stray bytes after master table", len(buf))
	}
	return t, nil
}

// EncodeMasterParticipants appends a RecDecision participant list (node IDs
// of the prepared branches, the set a new leader must still collect acks
// from) to dst.
func EncodeMasterParticipants(dst []byte, nodes []int) []byte {
	var u16 [2]byte
	var u32 [4]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(nodes)))
	dst = append(dst, u16[:]...)
	for _, n := range nodes {
		binary.LittleEndian.PutUint32(u32[:], uint32(n))
		dst = append(dst, u32[:]...)
	}
	return dst
}

// DecodeMasterParticipants parses a RecDecision participant list.
func DecodeMasterParticipants(buf []byte) ([]int, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("wal: participant count truncated")
	}
	count := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) != 4*count {
		return nil, fmt.Errorf("wal: participant list length %d != 4*%d", len(buf), count)
	}
	nodes := make([]int, 0, count)
	for i := 0; i < count; i++ {
		nodes = append(nodes, int(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return nodes, nil
}

// EncodeMasterAck appends a RecMAck payload — the participant node whose
// branch of the decision's transaction is resolved — to dst.
func EncodeMasterAck(dst []byte, node int) []byte {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(node))
	return append(dst, u32[:]...)
}

// DecodeMasterAck parses a RecMAck payload.
func DecodeMasterAck(buf []byte) (int, error) {
	if len(buf) != 4 {
		return 0, fmt.Errorf("wal: ack payload length %d", len(buf))
	}
	return int(binary.LittleEndian.Uint32(buf)), nil
}

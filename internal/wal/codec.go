package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"wattdb/internal/cc"
)

// Wire format of one log record. The log stores exactly these bytes: Append
// frames each encoded record with a length + CRC32 header into the active
// segment, recovery decodes them back, and the round-trip is fuzz-checked.
//
//	[0:8]   LSN
//	[8:16]  Txn
//	[16:24] TS (decision records: coordinator commit timestamp)
//	[24:32] Part
//	[32]    Type
//	[33]    flags (bit 0: Before present, bit 1: After present, bit 2: Key present)
//	[34:38] len(Key)
//	[38:42] len(Before)
//	[42:46] len(After)
//	[46:]   Key | Before | After
//
// Nil and empty byte slices are distinct on the wire (the flag bits): a nil
// Before means "key did not exist", which recovery must not confuse with an
// existing zero-length value.
const recHeaderSize = 46

const (
	recFlagBefore = 1 << 0
	recFlagAfter  = 1 << 1
	recFlagKey    = 1 << 2
)

// EncodeRecord appends r's wire encoding to dst and returns the extended
// slice.
func EncodeRecord(dst []byte, r *Record) []byte {
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], r.LSN)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(r.Txn))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(r.TS))
	binary.LittleEndian.PutUint64(hdr[24:32], r.Part)
	hdr[32] = byte(r.Type)
	if r.Before != nil {
		hdr[33] |= recFlagBefore
	}
	if r.After != nil {
		hdr[33] |= recFlagAfter
	}
	if r.Key != nil {
		hdr[33] |= recFlagKey
	}
	binary.LittleEndian.PutUint32(hdr[34:38], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[38:42], uint32(len(r.Before)))
	binary.LittleEndian.PutUint32(hdr[42:46], uint32(len(r.After)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Key...)
	dst = append(dst, r.Before...)
	dst = append(dst, r.After...)
	return dst
}

// DecodeRecord parses one record from the front of buf, returning the
// record and the remaining bytes. Decoded slices are copies, not aliases.
func DecodeRecord(buf []byte) (Record, []byte, error) {
	if len(buf) < recHeaderSize {
		return Record{}, nil, fmt.Errorf("wal: record header truncated (%d bytes)", len(buf))
	}
	r := Record{
		LSN:  binary.LittleEndian.Uint64(buf[0:8]),
		Txn:  cc.TxnID(binary.LittleEndian.Uint64(buf[8:16])),
		TS:   cc.Timestamp(binary.LittleEndian.Uint64(buf[16:24])),
		Part: binary.LittleEndian.Uint64(buf[24:32]),
		Type: RecType(buf[32]),
	}
	if r.Type > RecCkptEnd {
		return Record{}, nil, fmt.Errorf("wal: unknown record type %d", buf[32])
	}
	flags := buf[33]
	if flags&^(recFlagBefore|recFlagAfter|recFlagKey) != 0 {
		return Record{}, nil, fmt.Errorf("wal: unknown record flags %#x", flags)
	}
	kLen := int(binary.LittleEndian.Uint32(buf[34:38]))
	bLen := int(binary.LittleEndian.Uint32(buf[38:42]))
	aLen := int(binary.LittleEndian.Uint32(buf[42:46]))
	body := buf[recHeaderSize:]
	total := kLen + bLen + aLen
	if total < 0 || len(body) < total {
		return Record{}, nil, fmt.Errorf("wal: record body truncated (want %d, have %d)", total, len(body))
	}
	if flags&recFlagKey != 0 {
		r.Key = append([]byte{}, body[:kLen]...)
	} else if kLen != 0 {
		return Record{}, nil, fmt.Errorf("wal: %d key bytes on a record flagged key=nil", kLen)
	}
	if flags&recFlagBefore != 0 {
		r.Before = append([]byte{}, body[kLen:kLen+bLen]...)
	} else if bLen != 0 {
		return Record{}, nil, fmt.Errorf("wal: %d before bytes on a record flagged before=nil", bLen)
	}
	if flags&recFlagAfter != 0 {
		r.After = append([]byte{}, body[kLen+bLen:total]...)
	} else if aLen != 0 {
		return Record{}, nil, fmt.Errorf("wal: %d after bytes on a record flagged after=nil", aLen)
	}
	return r, body[total:], nil
}

// Frame format: every record in a log segment is preceded by an 8-byte
// header guarding its physical integrity, so recovery can detect a torn or
// bit-rotted final frame and truncate the log at the last valid boundary.
//
//	[0:4] payload length (EncodeRecord bytes)
//	[4:8] CRC32 (IEEE) of the payload
//	[8:]  payload
const frameHeaderSize = 8

// maxFramePayload bounds a single record frame; a length field beyond it is
// treated as tail corruption rather than attempting a giant read.
const maxFramePayload = 1 << 28

// appendFrame appends r's framed wire encoding to dst and returns the
// extended slice.
func appendFrame(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize)...)
	dst = EncodeRecord(dst, r)
	payload := dst[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc32.ChecksumIEEE(payload))
	return dst
}

// decodeFrame parses one framed record from the front of buf, returning the
// record and the number of bytes consumed. A truncated header or payload, a
// CRC mismatch, or a payload that does not decode to exactly one record all
// fail — the caller treats the failure point as the end of the valid log.
func decodeFrame(buf []byte) (Record, int, error) {
	if len(buf) < frameHeaderSize {
		return Record{}, 0, fmt.Errorf("wal: frame header torn (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	if n < recHeaderSize || n > maxFramePayload {
		return Record{}, 0, fmt.Errorf("wal: implausible frame length %d", n)
	}
	if len(buf)-frameHeaderSize < n {
		return Record{}, 0, fmt.Errorf("wal: frame payload torn (want %d, have %d)", n, len(buf)-frameHeaderSize)
	}
	payload := buf[frameHeaderSize : frameHeaderSize+n]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("wal: frame CRC mismatch (%#x != %#x)", got, want)
	}
	rec, rest, err := DecodeRecord(payload)
	if err != nil {
		return Record{}, 0, err
	}
	if len(rest) != 0 {
		return Record{}, 0, fmt.Errorf("wal: %d stray bytes inside frame", len(rest))
	}
	return rec, frameHeaderSize + n, nil
}

// DecodeFrame parses exactly one framed record occupying the whole of buf —
// the replication layer's entry point for decoding a shipped frame copy.
func DecodeFrame(buf []byte) (Record, error) {
	rec, n, err := decodeFrame(buf)
	if err != nil {
		return Record{}, err
	}
	if n != len(buf) {
		return Record{}, fmt.Errorf("wal: %d stray bytes after frame", len(buf)-n)
	}
	return rec, nil
}

// ValidPrefix returns the byte length of the longest prefix of buf that
// parses as whole, CRC-valid record frames — the truncation point recovery
// uses when a power failure leaves a torn or corrupt log tail. Exposed for
// the torn-tail fuzzer.
func ValidPrefix(buf []byte) int {
	off := 0
	for off < len(buf) {
		_, n, err := decodeFrame(buf[off:])
		if err != nil {
			break
		}
		off += n
	}
	return off
}

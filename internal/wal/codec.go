package wal

import (
	"encoding/binary"
	"fmt"

	"wattdb/internal/cc"
)

// Wire format of one log record. The simulator keeps records as structs and
// only charges Size() to the log device, but the format is authoritative:
// Size() is the encoded length, and the round-trip is fuzz-checked so the
// day the log writes real bytes nothing shifts.
//
//	[0:8]   LSN
//	[8:16]  Txn
//	[16:24] TS (decision records: coordinator commit timestamp)
//	[24:32] Part
//	[32]    Type
//	[33]    flags (bit 0: Before present, bit 1: After present, bit 2: Key present)
//	[34:38] len(Key)
//	[38:42] len(Before)
//	[42:46] len(After)
//	[46:]   Key | Before | After
//
// Nil and empty byte slices are distinct on the wire (the flag bits): a nil
// Before means "key did not exist", which recovery must not confuse with an
// existing zero-length value.
const recHeaderSize = 46

const (
	recFlagBefore = 1 << 0
	recFlagAfter  = 1 << 1
	recFlagKey    = 1 << 2
)

// EncodeRecord appends r's wire encoding to dst and returns the extended
// slice.
func EncodeRecord(dst []byte, r *Record) []byte {
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], r.LSN)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(r.Txn))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(r.TS))
	binary.LittleEndian.PutUint64(hdr[24:32], r.Part)
	hdr[32] = byte(r.Type)
	if r.Before != nil {
		hdr[33] |= recFlagBefore
	}
	if r.After != nil {
		hdr[33] |= recFlagAfter
	}
	if r.Key != nil {
		hdr[33] |= recFlagKey
	}
	binary.LittleEndian.PutUint32(hdr[34:38], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[38:42], uint32(len(r.Before)))
	binary.LittleEndian.PutUint32(hdr[42:46], uint32(len(r.After)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Key...)
	dst = append(dst, r.Before...)
	dst = append(dst, r.After...)
	return dst
}

// DecodeRecord parses one record from the front of buf, returning the
// record and the remaining bytes. Decoded slices are copies, not aliases.
func DecodeRecord(buf []byte) (Record, []byte, error) {
	if len(buf) < recHeaderSize {
		return Record{}, nil, fmt.Errorf("wal: record header truncated (%d bytes)", len(buf))
	}
	r := Record{
		LSN:  binary.LittleEndian.Uint64(buf[0:8]),
		Txn:  cc.TxnID(binary.LittleEndian.Uint64(buf[8:16])),
		TS:   cc.Timestamp(binary.LittleEndian.Uint64(buf[16:24])),
		Part: binary.LittleEndian.Uint64(buf[24:32]),
		Type: RecType(buf[32]),
	}
	if r.Type > RecDecision {
		return Record{}, nil, fmt.Errorf("wal: unknown record type %d", buf[32])
	}
	flags := buf[33]
	if flags&^(recFlagBefore|recFlagAfter|recFlagKey) != 0 {
		return Record{}, nil, fmt.Errorf("wal: unknown record flags %#x", flags)
	}
	kLen := int(binary.LittleEndian.Uint32(buf[34:38]))
	bLen := int(binary.LittleEndian.Uint32(buf[38:42]))
	aLen := int(binary.LittleEndian.Uint32(buf[42:46]))
	body := buf[recHeaderSize:]
	total := kLen + bLen + aLen
	if total < 0 || len(body) < total {
		return Record{}, nil, fmt.Errorf("wal: record body truncated (want %d, have %d)", total, len(body))
	}
	if flags&recFlagKey != 0 {
		r.Key = append([]byte{}, body[:kLen]...)
	} else if kLen != 0 {
		return Record{}, nil, fmt.Errorf("wal: %d key bytes on a record flagged key=nil", kLen)
	}
	if flags&recFlagBefore != 0 {
		r.Before = append([]byte{}, body[kLen:kLen+bLen]...)
	} else if bLen != 0 {
		return Record{}, nil, fmt.Errorf("wal: %d before bytes on a record flagged before=nil", bLen)
	}
	if flags&recFlagAfter != 0 {
		r.After = append([]byte{}, body[kLen+bLen:total]...)
	} else if aLen != 0 {
		return Record{}, nil, fmt.Errorf("wal: %d after bytes on a record flagged after=nil", aLen)
	}
	return r, body[total:], nil
}

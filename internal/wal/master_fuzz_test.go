package wal

import (
	"bytes"
	"testing"
)

// FuzzMasterTableRoundTrip checks the replicated coordinator-state codec: a
// MasterTable snapshot must survive encode/decode exactly, preserving the
// nil-versus-empty distinction of every key bound (a nil MovedBelow means
// "no migration in progress"; a nil Low means the range is unbounded — both
// are routing decisions a follower replays after the leader is gone).
func FuzzMasterTableRoundTrip(f *testing.F) {
	f.Add("kv", byte(2), true, uint64(7), uint64(3), uint32(1),
		true, uint64(1), uint32(2), []byte("a"), []byte("m"), []byte(nil), true, true, false)
	f.Add("order_line", byte(2), false, uint64(40), uint64(27), uint32(3),
		false, uint64(0), uint32(0), []byte{}, []byte(nil), []byte{0x80, 0, 4}, true, false, true)
	f.Add("", byte(0), false, uint64(0), uint64(0), uint32(0),
		false, uint64(0), uint32(0), []byte(nil), []byte(nil), []byte(nil), false, false, false)

	f.Fuzz(func(t *testing.T, name string, scheme byte, replicated bool,
		nextPart, partID uint64, owner uint32,
		hasOld bool, oldPart uint64, oldOwner uint32,
		low, high, moved []byte, hasLow, hasHigh, hasMoved bool) {
		if len(name) > 1<<15 || len(low) > 1<<15 || len(high) > 1<<15 || len(moved) > 1<<15 {
			return // u16 length prefixes on the wire
		}
		e := MasterEntry{PartID: partID, OwnerID: owner}
		if hasOld {
			e.HasOld, e.OldPartID, e.OldOwnerID = true, oldPart, oldOwner
		}
		// The flag bits carry nil-ness; a set flag with nil bytes means an
		// empty (zero-length) bound.
		if hasLow {
			e.Low = low
			if e.Low == nil {
				e.Low = []byte{}
			}
		}
		if hasHigh {
			e.High = high
			if e.High == nil {
				e.High = []byte{}
			}
		}
		if hasMoved {
			e.MovedBelow = moved
			if e.MovedBelow == nil {
				e.MovedBelow = []byte{}
			}
		}
		// A second entry with inverted optional fields widens coverage of
		// flag combinations within one snapshot.
		e2 := MasterEntry{PartID: partID + 1, OwnerID: owner + 1}
		if !hasLow {
			e2.Low = low
			if e2.Low == nil {
				e2.Low = []byte{}
			}
		}
		if !hasOld {
			e2.HasOld, e2.OldPartID, e2.OldOwnerID = true, oldPart, oldOwner
		}
		in := &MasterTable{Name: name, Scheme: scheme, Replicated: replicated,
			NextPartID: nextPart, Entries: []MasterEntry{e, e2}}

		out, err := DecodeMasterTable(EncodeMasterTable(nil, in))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Name != in.Name || out.Scheme != in.Scheme || out.Replicated != in.Replicated || out.NextPartID != in.NextPartID {
			t.Fatalf("header mismatch: %+v vs %+v", out, in)
		}
		if len(out.Entries) != len(in.Entries) {
			t.Fatalf("entry count %d, want %d", len(out.Entries), len(in.Entries))
		}
		for i := range in.Entries {
			a, b := &out.Entries[i], &in.Entries[i]
			if a.PartID != b.PartID || a.OwnerID != b.OwnerID ||
				a.HasOld != b.HasOld || a.OldPartID != b.OldPartID || a.OldOwnerID != b.OldOwnerID {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, a, b)
			}
			for _, fld := range []struct {
				name string
				x, y []byte
			}{{"low", a.Low, b.Low}, {"high", a.High, b.High}, {"moved", a.MovedBelow, b.MovedBelow}} {
				if (fld.x == nil) != (fld.y == nil) {
					t.Fatalf("entry %d %s nil-ness lost", i, fld.name)
				}
				if !bytes.Equal(fld.x, fld.y) {
					t.Fatalf("entry %d %s = %x, want %x", i, fld.name, fld.x, fld.y)
				}
			}
		}
	})
}

// FuzzMasterDecodeNoPanic feeds arbitrary bytes to the three master payload
// decoders: garbage must come back as an error, never a panic or an
// over-read, and anything accepted must re-encode to exactly the input
// (the codecs are canonical — a follower re-shipping replayed state must
// produce the bytes it received).
func FuzzMasterDecodeNoPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeMasterTable(nil, &MasterTable{Name: "kv", Entries: []MasterEntry{{PartID: 1}}}))
	f.Add(EncodeMasterParticipants(nil, []int{1, 2, 3}))
	f.Add(EncodeMasterAck(nil, 2))
	f.Fuzz(func(t *testing.T, buf []byte) {
		if tab, err := DecodeMasterTable(buf); err == nil {
			if enc := EncodeMasterTable(nil, tab); !bytes.Equal(enc, buf) {
				t.Fatalf("master table re-encode differs:\n  in:  %x\n  out: %x", buf, enc)
			}
		}
		if nodes, err := DecodeMasterParticipants(buf); err == nil {
			if enc := EncodeMasterParticipants(nil, nodes); !bytes.Equal(enc, buf) {
				t.Fatalf("participants re-encode differs:\n  in:  %x\n  out: %x", buf, enc)
			}
		}
		if node, err := DecodeMasterAck(buf); err == nil {
			if enc := EncodeMasterAck(nil, node); !bytes.Equal(enc, buf) {
				t.Fatalf("ack re-encode differs:\n  in:  %x\n  out: %x", buf, enc)
			}
		}
	})
}

// FuzzMasterTornTailRecovery is the master-WAL sibling of
// FuzzTornTailRecovery: a follower's log holds RecMState / RecMLease /
// RecDecision / RecMAck frames, the leader dies mid-ship, and the follower's
// election-time scan must keep every intact frame, reject the damaged tail,
// and — because the frame CRC vouches for the payload — successfully decode
// the master payload of every frame it kept.
func FuzzMasterTornTailRecovery(f *testing.F) {
	state := EncodeMasterTable(nil, &MasterTable{Name: "kv", Scheme: 2, NextPartID: 9,
		Entries: []MasterEntry{
			{PartID: 3, OwnerID: 1, Low: nil, High: []byte("m")},
			{PartID: 4, OwnerID: 2, HasOld: true, OldPartID: 3, OldOwnerID: 1, Low: []byte("m")},
		}})
	frame := func(recs ...Record) []byte {
		var buf []byte
		for i := range recs {
			buf = appendFrame(buf, &recs[i])
		}
		return buf
	}
	rState := Record{LSN: 1, Type: RecMState, Part: 17, After: state}
	rLease := Record{LSN: 2, Type: RecMLease, Part: 18, TS: 8192}
	rDec := Record{LSN: 3, Type: RecDecision, Part: 19, Txn: 42, TS: 7001,
		After: EncodeMasterParticipants(nil, []int{1, 3})}
	rAck := Record{LSN: 4, Type: RecMAck, Part: 20, Txn: 42, After: EncodeMasterAck(nil, 3)}

	f.Add(frame(rState, rLease, rDec, rAck), []byte{}, -1)
	f.Add(frame(rState, rDec), frame(rAck)[:7], -1) // torn mid-ship ack
	f.Add(frame(rLease), frame(rState), 40)         // bit-flipped state snapshot
	f.Add([]byte{}, frame(rDec), 3)

	f.Fuzz(func(t *testing.T, valid []byte, tail []byte, flip int) {
		valid = valid[:ValidPrefix(valid)]
		if flip >= 0 && len(tail) > 0 {
			tail = bytes.Clone(tail)
			bit := flip % (len(tail) * 8)
			tail[bit/8] ^= 1 << (bit % 8)
		}
		buf := append(bytes.Clone(valid), tail...)
		vp := ValidPrefix(buf)
		if vp < len(valid) {
			t.Fatalf("truncation lost intact frames: valid prefix %d < %d", vp, len(valid))
		}
		if vp > len(buf) {
			t.Fatalf("valid prefix %d over-reads %d-byte log", vp, len(buf))
		}
		off := 0
		for off < vp {
			rec, n, err := decodeFrame(buf[off:])
			if err != nil {
				t.Fatalf("accepted prefix fails to decode at %d: %v", off, err)
			}
			// Every surviving master payload must parse: the CRC accepted
			// the frame, so the payload is byte-identical to what the
			// leader shipped.
			switch rec.Type {
			case RecMState:
				if _, err := DecodeMasterTable(rec.After); err != nil {
					t.Fatalf("intact RecMState payload rejected: %v", err)
				}
			case RecDecision:
				if rec.After != nil {
					if _, err := DecodeMasterParticipants(rec.After); err != nil {
						t.Fatalf("intact RecDecision payload rejected: %v", err)
					}
				}
			case RecMAck:
				if _, err := DecodeMasterAck(rec.After); err != nil {
					t.Fatalf("intact RecMAck payload rejected: %v", err)
				}
			case RecMLease:
				if rec.TS == 0 && rec.LSN == 2 {
					t.Fatal("lease ceiling lost from intact frame")
				}
			}
			off += n
		}
		if off != vp {
			t.Fatalf("frames consume %d bytes, valid prefix says %d", off, vp)
		}
	})
}

package wal

import (
	"testing"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// countingDevice records appends without timing.
type countingDevice struct {
	appends int
	bytes   int64
	delay   time.Duration
}

func (d *countingDevice) Append(p *sim.Proc, bytes int64) {
	if d.delay > 0 {
		p.Sleep(d.delay)
	}
	d.appends++
	d.bytes += bytes
}

// logOf materialises recs as a physically encoded log (LSNs assigned by
// Append), so replay tests consume decoded segment bytes like real recovery.
func logOf(env *sim.Env, recs []Record) *Log {
	l := NewLog(env, &countingDevice{})
	for i := range recs {
		l.Append(recs[i])
	}
	return l
}

func TestAppendAssignsLSNs(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	l1 := l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("a")})
	l2 := l.Append(Record{Type: RecCommit, Txn: 1})
	if l1 != 1 || l2 != 2 {
		t.Fatalf("lsns = %d, %d", l1, l2)
	}
	if l.FlushedLSN() != 0 {
		t.Fatal("nothing should be durable yet")
	}
}

func TestFlushMakesDurable(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	dev := &countingDevice{}
	l := NewLog(env, dev)
	rec := Record{Type: RecInsert, Txn: 1, Key: []byte("k"), After: []byte("v")}
	lsn := l.Append(rec)
	env.Spawn("committer", func(p *sim.Proc) {
		l.Flush(p, lsn)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() != lsn {
		t.Fatalf("flushed = %d, want %d", l.FlushedLSN(), lsn)
	}
	if dev.appends != 1 || dev.bytes != rec.FrameSize() {
		t.Fatalf("device: %d appends, %d bytes (want %d)", dev.appends, dev.bytes, rec.FrameSize())
	}
}

// TestPhysicalRoundTrip checks that the log stores only encoded bytes and
// that the iterator decodes them back exactly, across a segment seal.
func TestPhysicalRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	l.SetSegmentBytes(128) // force several segments
	want := []Record{
		{Type: RecInsert, Txn: 1, Part: 3, Key: []byte("a"), After: []byte("one")},
		{Type: RecUpdate, Txn: 1, Part: 3, Key: []byte("b"), Before: []byte("x"), After: []byte("two")},
		{Type: RecPrepDML, Txn: 2, Part: 4, Key: []byte("c"), After: []byte("raw")},
		{Type: RecPrepare, Txn: 2},
		{Type: RecDecision, Txn: 2, TS: 42},
		{Type: RecCommit, Txn: 1},
		{Type: RecDelete, Txn: 5, Part: 3, Key: []byte("a"), Before: []byte("one")},
	}
	for i := range want {
		want[i].LSN = l.Append(want[i])
	}
	if len(l.segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(l.segs))
	}
	got, err := l.Iter().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.LSN != w.LSN || g.Txn != w.Txn || g.Type != w.Type || g.Part != w.Part || g.TS != w.TS ||
			string(g.Key) != string(w.Key) || string(g.Before) != string(w.Before) || string(g.After) != string(w.After) {
			t.Fatalf("record %d round-trip mismatch: %+v vs %+v", i, g, w)
		}
	}
}

func TestGroupCommitBatches(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	dev := &countingDevice{delay: 10 * time.Millisecond}
	l := NewLog(env, dev)
	const n = 20
	done := 0
	for i := 0; i < n; i++ {
		i := i
		env.Spawn("txn", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond)
			lsn := l.Append(Record{Type: RecCommit, Txn: cc.TxnID(i)})
			l.Flush(p, lsn)
			done++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d", done)
	}
	// All 20 commits arrive within 20µs; the first flush takes 10ms, so
	// the rest must batch into (at most) one more device write.
	if dev.appends > 2 {
		t.Fatalf("appends = %d, want <= 2 (group commit)", dev.appends)
	}
}

func TestCheckpointAndTruncateRecyclesSegments(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("a"), After: []byte("1")})
	l.Append(Record{Type: RecCommit, Txn: 1})
	var ck uint64
	env.Spawn("ck", func(p *sim.Proc) { ck = l.Checkpoint(p) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() != ck {
		t.Fatal("checkpoint did not flush")
	}
	before := l.RetainedBytes()
	l.TruncateBefore(ck)
	if l.RetainedBytes() >= before {
		t.Fatal("truncate kept old segments")
	}
	recs, err := l.Iter().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecCheckpoint {
		t.Fatalf("records after truncate: %d", len(recs))
	}
	// RetainedBytes is exact: the surviving segment holds one framed record.
	if l.RetainedBytes() != recs[0].FrameSize() {
		t.Fatalf("retained %d bytes, want exactly %d", l.RetainedBytes(), recs[0].FrameSize())
	}
}

// TestPinBeforeFencesTruncation pins the replication contract on checkpoint
// truncation: history the shipper has not replicated yet (LSN >= the pin)
// must survive a checkpoint's TruncateBefore, or a disk loss on the replica
// that was still waiting for those frames would lose acked commits. Once the
// shipper advances the pin past the old segments, the same truncation
// reclaims them.
func TestPinBeforeFencesTruncation(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	l.SetSegmentBytes(1) // seal after every record: one segment per LSN
	for i := 0; i < 6; i++ {
		l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte{byte('a' + i)}, After: []byte("v")})
	}
	var ck uint64
	env.Spawn("ck", func(p *sim.Proc) { ck = l.Checkpoint(p) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Frames 3..6 are flushed but unshipped: fence them.
	l.PinBefore(3)
	l.TruncateBefore(ck)
	recs, err := l.Iter().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].LSN > 3 {
		t.Fatalf("truncation dropped unshipped history: first retained LSN %v", recs)
	}
	for _, r := range recs[:len(recs)-1] {
		if r.LSN >= 3 && r.Type != RecInsert {
			t.Fatalf("fenced record %d lost its payload: %+v", r.LSN, r)
		}
	}
	// Shipping catches up: the pin advances past the old segments and the
	// pending truncation work becomes reclaimable.
	l.PinBefore(ck)
	l.TruncateBefore(ck)
	recs, err = l.Iter().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecCheckpoint {
		t.Fatalf("records after pin release + truncate: %d", len(recs))
	}
}

// TestLastCheckpointTornPairFallback pins the crash contract of fuzzy
// checkpoints: only a complete, durable RecCkptBegin/RecCkptEnd pair counts.
// A crash between begin and end — or one that tears or fails to flush the
// end record — must fall back to the previous complete checkpoint, never to
// the half-written one.
func TestLastCheckpointTornPairFallback(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	force := func(lsn uint64) {
		env.Spawn("flush", func(p *sim.Proc) { l.Flush(p, lsn) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if l.LastCheckpoint() != nil {
		t.Fatal("empty log reported a checkpoint")
	}
	l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("a"), After: []byte("1")})

	// First complete pair.
	b1 := l.Append(Record{Type: RecCkptBegin})
	e1 := l.Append(Record{Type: RecCkptEnd, Part: b1,
		After: EncodeCheckpoint(nil, &Checkpoint{Begin: b1, Redo: b1, Parts: []CkptPart{{ID: 7, Redo: b1}}})})
	force(e1)
	ck := l.LastCheckpoint()
	if ck == nil || ck.Begin != b1 || ck.PartRedo(7) != b1 {
		t.Fatalf("complete pair not found: %+v", ck)
	}

	// A dangling begin (crash before the end record) must not advance it.
	b2 := l.Append(Record{Type: RecCkptBegin})
	force(b2)
	if ck := l.LastCheckpoint(); ck == nil || ck.Begin != b1 {
		t.Fatalf("dangling begin advanced the checkpoint: %+v", ck)
	}

	// An end record with a torn (undecodable) payload is ignored.
	bad := l.Append(Record{Type: RecCkptEnd, Part: b2, After: []byte{1, 2, 3}})
	force(bad)
	if ck := l.LastCheckpoint(); ck == nil || ck.Begin != b1 {
		t.Fatalf("torn end payload advanced the checkpoint: %+v", ck)
	}

	// An end record claiming an older begin (a later begin intervened) does
	// not pair up either: the scan between b2 and this end is incomplete.
	stale := l.Append(Record{Type: RecCkptEnd, Part: b1,
		After: EncodeCheckpoint(nil, &Checkpoint{Begin: b1, Redo: b1})})
	force(stale)
	if ck := l.LastCheckpoint(); ck == nil || ck.Begin != b1 {
		t.Fatalf("stale end advanced the checkpoint: %+v", ck)
	}

	// A complete second pair is invisible while its end record sits in the
	// unflushed tail (a crash now would tear it off the platter)...
	e2 := l.Append(Record{Type: RecCkptEnd, Part: b2,
		After: EncodeCheckpoint(nil, &Checkpoint{Begin: b2, Redo: b2, Parts: []CkptPart{{ID: 7, Redo: b2}}})})
	if ck := l.LastCheckpoint(); ck == nil || ck.Begin != b1 {
		t.Fatalf("unflushed end already visible: %+v", ck)
	}
	// ...and wins once durable.
	force(e2)
	if ck := l.LastCheckpoint(); ck == nil || ck.Begin != b2 || ck.PartRedo(7) != b2 {
		t.Fatalf("durable second pair not selected: %+v", ck)
	}
}

// TestTruncateBeforeExactPinBoundary pins the off-by-one contract between
// the shipper's fence and checkpoint truncation: PinBefore(p) means "LSNs
// >= p are not replicated yet", so a segment ending exactly at p-1 is
// reclaimable while one ending exactly at p must survive.
func TestTruncateBeforeExactPinBoundary(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	l.SetSegmentBytes(1) // seal after every record: one segment per LSN
	var last uint64
	for i := 0; i < 6; i++ {
		last = l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte{byte('a' + i)}, After: []byte("v")})
	}
	env.Spawn("flush", func(p *sim.Proc) { l.Flush(p, last) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	const pin = 4
	l.PinBefore(pin)
	l.TruncateBefore(last) // checkpoint wants everything below `last` gone
	recs, err := l.Iter().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("truncation emptied the log")
	}
	// LSN pin-1 = 3 sits in a segment wholly below the fence: reclaimed.
	if first := recs[0].LSN; first != pin {
		t.Fatalf("first retained LSN = %d, want exactly the pin %d (pin-1 reclaimable, pin fenced)", first, pin)
	}
}

// TestCrashDiscardsUnflushedBytes pins the crash fence on the byte log: the
// unflushed tail is gone, the durable prefix decodes, and LSNs continue
// above the durable boundary after restart.
func TestCrashDiscardsUnflushedBytes(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	durable := l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("a"), After: []byte("1")})
	env.Spawn("flush", func(p *sim.Proc) { l.Flush(p, durable) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Type: RecInsert, Txn: 2, Key: []byte("b"), After: []byte("2")})
	l.Append(Record{Type: RecCommit, Txn: 2})
	if lost := l.Crash(); lost != 2 {
		t.Fatalf("lost = %d, want 2", lost)
	}
	if discarded := l.Restart(); discarded != 0 {
		t.Fatalf("clean crash discarded %d bytes on restart", discarded)
	}
	recs, err := l.Iter().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != durable {
		t.Fatalf("recovered %d records", len(recs))
	}
	if next := l.Append(Record{Type: RecAbort, Txn: 2}); next != durable+1 {
		t.Fatalf("post-restart LSN = %d, want %d", next, durable+1)
	}
}

// TestTornTailTruncated crashes with a partially persisted final frame: the
// restart scan must CRC-detect the torn record, truncate at the last valid
// boundary, and leave a fully decodable log.
func TestTornTailTruncated(t *testing.T) {
	for _, keep := range []int{1, 7, 31, 1 << 20} {
		env := sim.NewEnv(1)
		l := NewLog(env, &countingDevice{})
		durable := l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("a"), After: []byte("acked")})
		env.Spawn("flush", func(p *sim.Proc) { l.Flush(p, durable) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		unflushed := Record{Type: RecInsert, Txn: 2, Key: []byte("b"), After: []byte("never-acked")}
		l.Append(unflushed)
		_, torn := l.CrashTorn(keep, -1)
		if torn < 1 || int64(torn) >= unflushed.FrameSize() {
			t.Fatalf("keep=%d: torn = %d bytes, want a strictly partial frame (< %d)", keep, torn, unflushed.FrameSize())
		}
		if discarded := l.Restart(); discarded != torn {
			t.Fatalf("keep=%d: restart discarded %d bytes, want %d", keep, discarded, torn)
		}
		recs, err := l.Iter().All()
		if err != nil {
			t.Fatalf("keep=%d: log not clean after torn-tail truncation: %v", keep, err)
		}
		if len(recs) != 1 || string(recs[0].After) != "acked" {
			t.Fatalf("keep=%d: recovered %d records", keep, len(recs))
		}
		if l.FlushedLSN() != durable || l.TailLSN() != durable+1 {
			t.Fatalf("keep=%d: flushed=%d tail=%d after truncation", keep, l.FlushedLSN(), l.TailLSN())
		}
		env.Close()
	}
}

// TestBitFlipTailTruncated crashes leaving a byte-complete final frame with
// one flipped bit — only the CRC can tell it from a valid record — and
// checks recovery truncates it without touching the acked prefix.
func TestBitFlipTailTruncated(t *testing.T) {
	unflushed := Record{Type: RecInsert, Txn: 2, Key: []byte("b"), After: []byte("never-acked")}
	frameLen := int(unflushed.FrameSize())
	for flip := 0; flip < frameLen*8; flip += 13 {
		env := sim.NewEnv(1)
		l := NewLog(env, &countingDevice{})
		durable := l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("a"), After: []byte("acked")})
		env.Spawn("flush", func(p *sim.Proc) { l.Flush(p, durable) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		l.Append(unflushed)
		_, torn := l.CrashTorn(frameLen, flip)
		if torn != frameLen {
			t.Fatalf("flip=%d: torn = %d, want the complete frame (%d)", flip, torn, frameLen)
		}
		if discarded := l.Restart(); discarded != frameLen {
			t.Fatalf("flip=%d: restart discarded %d bytes, want %d (CRC must reject the flipped frame)",
				flip, discarded, frameLen)
		}
		recs, err := l.Iter().All()
		if err != nil {
			t.Fatalf("flip=%d: log not clean after bit-flip truncation: %v", flip, err)
		}
		if len(recs) != 1 || string(recs[0].After) != "acked" {
			t.Fatalf("flip=%d: acked record lost (%d records survive)", flip, len(recs))
		}
		env.Close()
	}
}

func TestShippedDeviceUsesNetworkAndHelperDisk(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	net.AddNode(1)
	net.AddNode(2)
	helper := hw.NewDisk(env, hw.HDD, cal)
	dev := ShippedDevice{Net: net, From: 1, To: 2, Disk: helper}
	l := NewLog(env, dev)
	lsn := l.Append(Record{Type: RecCommit, Txn: 1})
	var took time.Duration
	env.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		l.Flush(p, lsn)
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if took < cal.NetLatency {
		t.Fatalf("shipped flush took %v, want >= net latency %v", took, cal.NetLatency)
	}
	if _, w := helper.Ops(); w != 1 {
		t.Fatalf("helper disk writes = %d", w)
	}
	if net.BytesSent(1) == 0 {
		t.Fatal("no bytes shipped")
	}
}

// treeTarget adapts a B*-tree to the recovery Target interface.
type treeTarget struct{ tr *btree.Tree }

func (tt treeTarget) RecoveryPut(p *sim.Proc, key, val []byte) error {
	_, err := tt.tr.Put(p, key, val, 0)
	return err
}

func (tt treeTarget) RecoveryDelete(p *sim.Proc, key []byte) error {
	_, err := tt.tr.Delete(p, key, 0)
	return err
}

func (tt treeTarget) RecoveryInstall(p *sim.Proc, key, val []byte, ts cc.Timestamp, deleted bool) error {
	if deleted {
		_, err := tt.tr.Delete(p, key, 0)
		return err
	}
	// Tests install the raw payload; the timestamp stamping is exercised
	// through the partition implementation.
	_, err := tt.tr.Put(p, key, val, 0)
	return err
}

func TestRecoveryRedoesWinnersUndoesLosers(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 512, 64)
	tr := btree.New(btree.MemPager{Seg: seg}, 0, nil)

	k := func(i int64) []byte { return keycodec.Int64Key(i) }
	l := logOf(env, []Record{
		// txn 1 commits: insert k1=one, update k2 old->two.
		{Type: RecInsert, Txn: 1, Part: 9, Key: k(1), After: []byte("one")},
		{Type: RecUpdate, Txn: 1, Part: 9, Key: k(2), Before: []byte("old"), After: []byte("two")},
		{Type: RecCommit, Txn: 1},
		// txn 2 never commits: its insert must be undone, its delete of
		// k2 restored.
		{Type: RecInsert, Txn: 2, Part: 9, Key: k(3), After: []byte("ghost")},
		{Type: RecDelete, Txn: 2, Part: 9, Key: k(2), Before: []byte("two")},
	})
	env.Spawn("recover", func(p *sim.Proc) {
		// Simulate a partially applied crash state: txn 2's effects hit
		// the "disk" image.
		tr.Put(p, k(2), []byte("old"), 0)
		tr.Put(p, k(3), []byte("ghost"), 0)

		redone, undone, err := Recover(p, l.Iter(), map[uint64]Target{9: treeTarget{tr}})
		if err != nil {
			t.Error(err)
			return
		}
		if redone != 2 || undone != 2 {
			t.Errorf("redone=%d undone=%d, want 2,2", redone, undone)
		}
		if v, ok, _ := tr.Get(p, k(1)); !ok || string(v) != "one" {
			t.Errorf("k1 = %q, %v", v, ok)
		}
		if v, ok, _ := tr.Get(p, k(2)); !ok || string(v) != "two" {
			t.Errorf("k2 = %q, %v (loser delete must be rolled back)", v, ok)
		}
		if _, ok, _ := tr.Get(p, k(3)); ok {
			t.Error("loser insert survived recovery")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 512, 64)
	tr := btree.New(btree.MemPager{Seg: seg}, 0, nil)
	k := keycodec.Int64Key(7)
	l := logOf(env, []Record{
		{Type: RecInsert, Txn: 1, Part: 1, Key: k, After: []byte("v")},
		{Type: RecCommit, Txn: 1},
	})
	env.Spawn("recover-twice", func(p *sim.Proc) {
		targets := map[uint64]Target{1: treeTarget{tr}}
		if _, _, err := Recover(p, l.Iter(), targets); err != nil {
			t.Error(err)
		}
		if _, _, err := Recover(p, l.Iter(), targets); err != nil {
			t.Error(err)
		}
		if n, _ := tr.Count(p); n != 1 {
			t.Errorf("count = %d after double recovery", n)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverPartialInDoubtBothDirections replays a log holding two
// prepared-but-undecided transactions: one decided committed by the
// coordinator (rolled forward from its prepare-time images at the decided
// timestamp), one unknown (presumed aborted: its images are ignored and its
// partially installed phase-two record is undone).
func TestRecoverPartialInDoubtBothDirections(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 512, 64)
	tr := btree.New(btree.MemPager{Seg: seg}, 0, nil)
	k := func(i int64) []byte { return keycodec.Int64Key(i) }
	l := logOf(env, []Record{
		// txn 5: prepared, decided commit at the coordinator. Its branch
		// never installed locally — only the prepare images are durable.
		{Type: RecPrepDML, Txn: 5, Part: 1, Key: k(1), After: []byte("fwd")},
		{Type: RecPrepDel, Txn: 5, Part: 1, Key: k(2)},
		{Type: RecPrepare, Txn: 5},
		// txn 6: prepared, unknown at the coordinator. One phase-two record
		// made it to disk (page-flush coupling) before the crash.
		{Type: RecPrepDML, Txn: 6, Part: 1, Key: k(3), After: []byte("ghost")},
		{Type: RecPrepare, Txn: 6},
		{Type: RecUpdate, Txn: 6, Part: 1, Key: k(4), Before: []byte("orig"), After: []byte("scribble")},
	})
	env.Spawn("recover", func(p *sim.Proc) {
		// Crash-state disk image: txn 6's partial install is present.
		tr.Put(p, k(2), []byte("doomed"), 0)
		tr.Put(p, k(4), []byte("scribble"), 0)
		decisions := map[cc.TxnID]Decision{5: {TS: 77}}
		redone, undone, skipped, err := RecoverPartial(p, l.Iter(), map[uint64]Target{1: treeTarget{tr}}, decisions)
		if err != nil {
			t.Error(err)
			return
		}
		if redone != 2 || undone != 1 || skipped != 0 {
			t.Errorf("redone=%d undone=%d skipped=%d, want 2,1,0", redone, undone, skipped)
		}
		if v, ok, _ := tr.Get(p, k(1)); !ok || string(v) != "fwd" {
			t.Errorf("k1 = %q, %v (decided commit must roll forward)", v, ok)
		}
		if _, ok, _ := tr.Get(p, k(2)); ok {
			t.Error("k2 survived a rolled-forward prepare-time delete")
		}
		if _, ok, _ := tr.Get(p, k(3)); ok {
			t.Error("k3 installed from an undecided prepare image (presumed abort violated)")
		}
		if v, ok, _ := tr.Get(p, k(4)); !ok || string(v) != "orig" {
			t.Errorf("k4 = %q, %v (presumed abort must undo the partial install)", v, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryUnknownPartitionFails(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := logOf(env, []Record{
		{Type: RecInsert, Txn: 1, Part: 42, Key: []byte("k"), After: []byte("v")},
		{Type: RecCommit, Txn: 1},
	})
	env.Spawn("recover", func(p *sim.Proc) {
		if _, _, err := Recover(p, l.Iter(), map[uint64]Target{}); err == nil {
			t.Error("recovery with missing partition should fail")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

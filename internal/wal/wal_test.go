package wal

import (
	"testing"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// countingDevice records appends without timing.
type countingDevice struct {
	appends int
	bytes   int64
	delay   time.Duration
}

func (d *countingDevice) Append(p *sim.Proc, bytes int64) {
	if d.delay > 0 {
		p.Sleep(d.delay)
	}
	d.appends++
	d.bytes += bytes
}

func TestAppendAssignsLSNs(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	l1 := l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("a")})
	l2 := l.Append(Record{Type: RecCommit, Txn: 1})
	if l1 != 1 || l2 != 2 {
		t.Fatalf("lsns = %d, %d", l1, l2)
	}
	if l.FlushedLSN() != 0 {
		t.Fatal("nothing should be durable yet")
	}
}

func TestFlushMakesDurable(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	dev := &countingDevice{}
	l := NewLog(env, dev)
	lsn := l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("k"), After: []byte("v")})
	env.Spawn("committer", func(p *sim.Proc) {
		l.Flush(p, lsn)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() != lsn {
		t.Fatalf("flushed = %d, want %d", l.FlushedLSN(), lsn)
	}
	if dev.appends != 1 || dev.bytes == 0 {
		t.Fatalf("device: %d appends, %d bytes", dev.appends, dev.bytes)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	dev := &countingDevice{delay: 10 * time.Millisecond}
	l := NewLog(env, dev)
	const n = 20
	done := 0
	for i := 0; i < n; i++ {
		i := i
		env.Spawn("txn", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond)
			lsn := l.Append(Record{Type: RecCommit, Txn: cc.TxnID(i)})
			l.Flush(p, lsn)
			done++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d", done)
	}
	// All 20 commits arrive within 20µs; the first flush takes 10ms, so
	// the rest must batch into (at most) one more device write.
	if dev.appends > 2 {
		t.Fatalf("appends = %d, want <= 2 (group commit)", dev.appends)
	}
}

func TestCheckpointAndTruncate(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	l := NewLog(env, &countingDevice{})
	l.Append(Record{Type: RecInsert, Txn: 1, Key: []byte("a"), After: []byte("1")})
	l.Append(Record{Type: RecCommit, Txn: 1})
	var ck uint64
	env.Spawn("ck", func(p *sim.Proc) { ck = l.Checkpoint(p) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() != ck {
		t.Fatal("checkpoint did not flush")
	}
	before := l.RetainedBytes()
	l.TruncateBefore(ck)
	if l.RetainedBytes() >= before {
		t.Fatal("truncate kept old records")
	}
	if len(l.Records()) != 1 || l.Records()[0].Type != RecCheckpoint {
		t.Fatalf("records after truncate: %d", len(l.Records()))
	}
}

func TestShippedDeviceUsesNetworkAndHelperDisk(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	cal := hw.TestCalibration()
	net := hw.NewNetwork(env, cal)
	net.AddNode(1)
	net.AddNode(2)
	helper := hw.NewDisk(env, hw.HDD, cal)
	dev := ShippedDevice{Net: net, From: 1, To: 2, Disk: helper}
	l := NewLog(env, dev)
	lsn := l.Append(Record{Type: RecCommit, Txn: 1})
	var took time.Duration
	env.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		l.Flush(p, lsn)
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if took < cal.NetLatency {
		t.Fatalf("shipped flush took %v, want >= net latency %v", took, cal.NetLatency)
	}
	if _, w := helper.Ops(); w != 1 {
		t.Fatalf("helper disk writes = %d", w)
	}
	if net.BytesSent(1) == 0 {
		t.Fatal("no bytes shipped")
	}
}

// treeTarget adapts a B*-tree to the recovery Target interface.
type treeTarget struct{ tr *btree.Tree }

func (tt treeTarget) RecoveryPut(p *sim.Proc, key, val []byte) error {
	_, err := tt.tr.Put(p, key, val, 0)
	return err
}

func (tt treeTarget) RecoveryDelete(p *sim.Proc, key []byte) error {
	_, err := tt.tr.Delete(p, key, 0)
	return err
}

func (tt treeTarget) RecoveryInstall(p *sim.Proc, key, val []byte, ts cc.Timestamp, deleted bool) error {
	if deleted {
		_, err := tt.tr.Delete(p, key, 0)
		return err
	}
	// Tests install the raw payload; the timestamp stamping is exercised
	// through the partition implementation.
	_, err := tt.tr.Put(p, key, val, 0)
	return err
}

func TestRecoveryRedoesWinnersUndoesLosers(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 512, 64)
	tr := btree.New(btree.MemPager{Seg: seg}, 0, nil)

	k := func(i int64) []byte { return keycodec.Int64Key(i) }
	recs := []Record{
		// txn 1 commits: insert k1=one, update k2 old->two.
		{Type: RecInsert, Txn: 1, Part: 9, Key: k(1), After: []byte("one")},
		{Type: RecUpdate, Txn: 1, Part: 9, Key: k(2), Before: []byte("old"), After: []byte("two")},
		{Type: RecCommit, Txn: 1},
		// txn 2 never commits: its insert must be undone, its delete of
		// k2 restored.
		{Type: RecInsert, Txn: 2, Part: 9, Key: k(3), After: []byte("ghost")},
		{Type: RecDelete, Txn: 2, Part: 9, Key: k(2), Before: []byte("two")},
	}
	env.Spawn("recover", func(p *sim.Proc) {
		// Simulate a partially applied crash state: txn 2's effects hit
		// the "disk" image.
		tr.Put(p, k(2), []byte("old"), 0)
		tr.Put(p, k(3), []byte("ghost"), 0)

		redone, undone, err := Recover(p, recs, map[uint64]Target{9: treeTarget{tr}})
		if err != nil {
			t.Error(err)
			return
		}
		if redone != 2 || undone != 2 {
			t.Errorf("redone=%d undone=%d, want 2,2", redone, undone)
		}
		if v, ok, _ := tr.Get(p, k(1)); !ok || string(v) != "one" {
			t.Errorf("k1 = %q, %v", v, ok)
		}
		if v, ok, _ := tr.Get(p, k(2)); !ok || string(v) != "two" {
			t.Errorf("k2 = %q, %v (loser delete must be rolled back)", v, ok)
		}
		if _, ok, _ := tr.Get(p, k(3)); ok {
			t.Error("loser insert survived recovery")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 512, 64)
	tr := btree.New(btree.MemPager{Seg: seg}, 0, nil)
	k := keycodec.Int64Key(7)
	recs := []Record{
		{Type: RecInsert, Txn: 1, Part: 1, Key: k, After: []byte("v")},
		{Type: RecCommit, Txn: 1},
	}
	env.Spawn("recover-twice", func(p *sim.Proc) {
		targets := map[uint64]Target{1: treeTarget{tr}}
		if _, _, err := Recover(p, recs, targets); err != nil {
			t.Error(err)
		}
		if _, _, err := Recover(p, recs, targets); err != nil {
			t.Error(err)
		}
		if n, _ := tr.Count(p); n != 1 {
			t.Errorf("count = %d after double recovery", n)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverPartialInDoubtBothDirections replays a log holding two
// prepared-but-undecided transactions: one decided committed by the
// coordinator (rolled forward from its prepare-time images at the decided
// timestamp), one unknown (presumed aborted: its images are ignored and its
// partially installed phase-two record is undone).
func TestRecoverPartialInDoubtBothDirections(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	seg := storage.NewSegment(1, 512, 64)
	tr := btree.New(btree.MemPager{Seg: seg}, 0, nil)
	k := func(i int64) []byte { return keycodec.Int64Key(i) }
	recs := []Record{
		// txn 5: prepared, decided commit at the coordinator. Its branch
		// never installed locally — only the prepare images are durable.
		{Type: RecPrepDML, Txn: 5, Part: 1, Key: k(1), After: []byte("fwd")},
		{Type: RecPrepDel, Txn: 5, Part: 1, Key: k(2)},
		{Type: RecPrepare, Txn: 5},
		// txn 6: prepared, unknown at the coordinator. One phase-two record
		// made it to disk (page-flush coupling) before the crash.
		{Type: RecPrepDML, Txn: 6, Part: 1, Key: k(3), After: []byte("ghost")},
		{Type: RecPrepare, Txn: 6},
		{Type: RecUpdate, Txn: 6, Part: 1, Key: k(4), Before: []byte("orig"), After: []byte("scribble")},
	}
	env.Spawn("recover", func(p *sim.Proc) {
		// Crash-state disk image: txn 6's partial install is present.
		tr.Put(p, k(2), []byte("doomed"), 0)
		tr.Put(p, k(4), []byte("scribble"), 0)
		decisions := map[cc.TxnID]Decision{5: {TS: 77}}
		redone, undone, skipped, err := RecoverPartial(p, recs, map[uint64]Target{1: treeTarget{tr}}, decisions)
		if err != nil {
			t.Error(err)
			return
		}
		if redone != 2 || undone != 1 || skipped != 0 {
			t.Errorf("redone=%d undone=%d skipped=%d, want 2,1,0", redone, undone, skipped)
		}
		if v, ok, _ := tr.Get(p, k(1)); !ok || string(v) != "fwd" {
			t.Errorf("k1 = %q, %v (decided commit must roll forward)", v, ok)
		}
		if _, ok, _ := tr.Get(p, k(2)); ok {
			t.Error("k2 survived a rolled-forward prepare-time delete")
		}
		if _, ok, _ := tr.Get(p, k(3)); ok {
			t.Error("k3 installed from an undecided prepare image (presumed abort violated)")
		}
		if v, ok, _ := tr.Get(p, k(4)); !ok || string(v) != "orig" {
			t.Errorf("k4 = %q, %v (presumed abort must undo the partial install)", v, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryUnknownPartitionFails(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	recs := []Record{
		{Type: RecInsert, Txn: 1, Part: 42, Key: []byte("k"), After: []byte("v")},
		{Type: RecCommit, Txn: 1},
	}
	env.Spawn("recover", func(p *sim.Proc) {
		if _, _, err := Recover(p, recs, map[uint64]Target{}); err == nil {
			t.Error("recovery with missing partition should fail")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// Package wal implements per-node write-ahead logging (Sect. 4.3 Logging):
// logical log records with before/after images, group commit against the
// node's log device, checkpoints taken when segments move, and log shipping
// to helper nodes during rebalancing (Sect. 5.2). Restart recovery replays
// committed work and rolls back losers.
package wal

import (
	"fmt"

	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
)

// RecType tags a log record.
type RecType byte

const (
	RecUpdate RecType = iota
	RecInsert
	RecDelete
	RecCommit
	RecAbort
	RecCheckpoint
	RecSegMove  // segment ownership transferred (movement checkpoint)
	RecPrepare  // two-phase commit prepare vote
	RecPrepDML  // prepare-time redo image of a staged write (After = raw payload)
	RecPrepDel  // prepare-time redo image of a staged delete
	RecDecision // coordinator commit decision (TS = commit timestamp)
)

// String returns the type's display name.
func (t RecType) String() string {
	return [...]string{"update", "insert", "delete", "commit", "abort", "checkpoint",
		"segmove", "prepare", "prepdml", "prepdel", "decision"}[t]
}

// Record is one logical log record. For ordinary DML, Before and After carry
// fully encoded tree values (opaque to the log), so redo/undo are simple
// Put/Delete calls. Prepare-time DML records (RecPrepDML/RecPrepDel) instead
// carry the raw staged payload: the commit timestamp is unknown until the
// coordinator decides, so recovery stamps it while rolling the branch
// forward.
type Record struct {
	LSN    uint64
	Txn    cc.TxnID
	Type   RecType
	Part   uint64       // partition the operation applied to
	TS     cc.Timestamp // decision records: the coordinator's commit timestamp
	Key    []byte
	Before []byte // nil: key did not exist
	After  []byte // nil: key removed
}

// Size returns the record's on-disk footprint in bytes: exactly the length
// EncodeRecord produces.
func (r *Record) Size() int64 {
	return int64(recHeaderSize + len(r.Key) + len(r.Before) + len(r.After))
}

// Device is where flushed log bytes go: the local log disk, or a helper
// node reached over the network when log shipping is active.
type Device interface {
	Append(p *sim.Proc, bytes int64)
}

// DiskDevice appends to a local disk.
type DiskDevice struct{ Disk *hw.Disk }

// Append writes bytes to the local log disk.
func (d DiskDevice) Append(p *sim.Proc, bytes int64) { d.Disk.AppendLog(p, bytes) }

// ShippedDevice sends log bytes to a helper node's disk over the network,
// relieving the local storage subsystem during rebalancing.
type ShippedDevice struct {
	Net      *hw.Network
	From, To int
	Disk     *hw.Disk // the helper's log disk
}

// Append ships bytes to the helper and appends there.
func (d ShippedDevice) Append(p *sim.Proc, bytes int64) {
	d.Net.Transfer(p, d.From, d.To, bytes)
	d.Disk.AppendLog(p, bytes)
}

// Log is one node's write-ahead log.
type Log struct {
	env     *sim.Env
	device  Device
	records []Record
	nextLSN uint64

	flushedLSN   uint64
	pendingBytes int64
	flushing     bool
	flushedSig   *sim.Signal

	// down marks the owning node power-failed: appends are dropped and
	// flushes return immediately (there is no device to write to). epoch
	// increments on every crash so an in-flight flush that resumes after the
	// failure knows its device write never completed.
	down  bool
	epoch uint64

	// Stats.
	Flushes      int64
	BytesFlushed int64
}

// NewLog creates a log writing to device.
func NewLog(env *sim.Env, device Device) *Log {
	return &Log{env: env, device: device, nextLSN: 1, flushedSig: sim.NewSignal(env)}
}

// SetDevice swaps the log device (e.g. to start or stop log shipping). The
// caller should Flush first so no pending bytes straddle devices.
func (l *Log) SetDevice(d Device) { l.device = d }

// Append adds rec to the log tail and returns its LSN. The record is not
// durable until a Flush covers it. Appends against a crashed node's log are
// dropped (the node has no power; whoever issued them is a process that was
// already in flight when the failure hit).
func (l *Log) Append(rec Record) uint64 {
	if l.down {
		return l.flushedLSN
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, rec)
	l.pendingBytes += rec.Size()
	return rec.LSN
}

// FlushedLSN returns the highest durable LSN.
func (l *Log) FlushedLSN() uint64 { return l.flushedLSN }

// TailLSN returns the LSN the next Append will get.
func (l *Log) TailLSN() uint64 { return l.nextLSN }

// Flush makes all records with LSN <= upTo durable. Concurrent callers are
// group-committed: whoever finds the flusher busy waits for its batch and
// re-checks, so one device write covers many commits.
func (l *Log) Flush(p *sim.Proc, upTo uint64) {
	if upTo >= l.nextLSN {
		upTo = l.nextLSN - 1
	}
	for !l.down && l.flushedLSN < upTo {
		if l.flushing {
			stop := p.Meter(sim.CatLogging)
			l.flushedSig.Wait(p)
			stop()
			continue
		}
		l.flushing = true
		epoch := l.epoch
		target := l.nextLSN - 1
		bytes := l.pendingBytes
		l.pendingBytes = 0
		l.device.Append(p, bytes) // metered as CatLogging by the device
		if l.epoch != epoch {
			// The node power-failed while this write was in flight: the
			// records never reached the platter. Crash() already discarded
			// them and reset the flusher state.
			return
		}
		l.flushing = false
		l.flushedLSN = target
		l.Flushes++
		l.BytesFlushed += bytes
		l.flushedSig.Fire()
	}
}

// Records returns the retained log records (recovery input). The slice is
// owned by the log.
func (l *Log) Records() []Record { return l.records }

// Crash models the owning node's power failure: the volatile log buffer —
// every record beyond the flushed LSN — is lost, in-flight flushes are
// fenced off, and the log stops accepting work until Restart. It returns
// the number of records discarded.
func (l *Log) Crash() int {
	l.epoch++
	l.down = true
	l.flushing = false
	cut := len(l.records)
	for cut > 0 && l.records[cut-1].LSN > l.flushedLSN {
		cut--
	}
	lost := len(l.records) - cut
	l.records = l.records[:cut:cut]
	l.pendingBytes = 0
	// The durable tail is now the log tail: future LSNs continue above it.
	l.nextLSN = l.flushedLSN + 1
	l.flushedSig.Fire() // waiters re-check and see the log is down
	return lost
}

// Restart brings a crashed log back into service (the durable records
// survive; only the volatile tail was lost).
func (l *Log) Restart() { l.down = false }

// Down reports whether the log's node is power-failed.
func (l *Log) Down() bool { return l.down }

// Checkpoint appends a checkpoint record and flushes through it. It returns
// the checkpoint LSN.
func (l *Log) Checkpoint(p *sim.Proc) uint64 {
	lsn := l.Append(Record{Type: RecCheckpoint})
	l.Flush(p, lsn)
	return lsn
}

// TruncateBefore discards records with LSN < lsn (after a checkpoint made
// them obsolete, e.g. when a moved segment's history is no longer needed).
func (l *Log) TruncateBefore(lsn uint64) {
	cut := 0
	for cut < len(l.records) && l.records[cut].LSN < lsn {
		cut++
	}
	l.records = l.records[cut:]
}

// RetainedBytes returns the size of retained log records (storage metric).
func (l *Log) RetainedBytes() int64 {
	var total int64
	for i := range l.records {
		total += l.records[i].Size()
	}
	return total
}

// Target is the recovery interface to a partition: raw Put/Delete of
// encoded tree values, bypassing concurrency control. RecoveryInstall
// additionally rolls forward a prepare-time redo image, whose raw payload
// must be stamped with the coordinator-decided commit timestamp before it
// becomes a tree value.
type Target interface {
	RecoveryPut(p *sim.Proc, key, val []byte) error
	RecoveryDelete(p *sim.Proc, key []byte) error
	RecoveryInstall(p *sim.Proc, key, val []byte, ts cc.Timestamp, deleted bool) error
}

// Decision is a coordinator's verdict for a prepared (in-doubt)
// transaction: roll forward at TS, or — when no decision exists at the
// coordinator — presumed abort (the transaction simply has no entry).
type Decision struct {
	TS cc.Timestamp
}

// Recover replays the log against targets (keyed by partition ID): redo all
// operations of committed transactions in LSN order, then undo losers in
// reverse order using before images. Both passes are idempotent, matching
// the paper's requirement that "the log file is needed to reconstruct
// partitions and to perform appropriate UNDO and REDO operations".
// A record for a partition absent from targets is an error.
func Recover(p *sim.Proc, recs []Record, targets map[uint64]Target) (redone, undone int, err error) {
	redone, undone, _, err = replay(p, recs, targets, false, nil)
	return redone, undone, err
}

// RecoverPartial is Recover for a node restart where some logged partitions
// no longer exist (fully migrated away, dropped replicas): their records are
// skipped instead of failing recovery, and the skip count is reported.
// decisions carries the coordinator's verdicts for this node's in-doubt
// transactions (prepared, but with no local commit or abort record): a
// transaction with an entry is rolled forward — its ordinary DML redone and
// its prepare-time images installed at the decided timestamp — and one
// without is presumed aborted and rolled back.
func RecoverPartial(p *sim.Proc, recs []Record, targets map[uint64]Target, decisions map[cc.TxnID]Decision) (redone, undone, skipped int, err error) {
	return replay(p, recs, targets, true, decisions)
}

func replay(p *sim.Proc, recs []Record, targets map[uint64]Target, skipUnknown bool, decisions map[cc.TxnID]Decision) (redone, undone, skipped int, err error) {
	committed := make(map[cc.TxnID]bool)
	for i := range recs {
		if recs[i].Type == RecCommit {
			committed[recs[i].Txn] = true
		}
	}
	winner := func(id cc.TxnID) bool {
		if committed[id] {
			return true
		}
		_, decided := decisions[id]
		return decided
	}
	isDML := func(t RecType) bool { return t == RecUpdate || t == RecInsert || t == RecDelete }
	isPrep := func(t RecType) bool { return t == RecPrepDML || t == RecPrepDel }
	resolve := func(part uint64) (Target, bool, error) {
		tgt, ok := targets[part]
		if !ok {
			if skipUnknown {
				skipped++
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("wal: recovery for unknown partition %d", part)
		}
		return tgt, true, nil
	}

	// Redo winners forward. A decided-commit transaction without a local
	// commit record (a rolled-forward in-doubt branch) installs its
	// prepare-time images at the decided timestamp; when the commit record
	// is durable the preceding phase-two records already carry the final
	// values, so the prepare images are redundant and skipped.
	for i := range recs {
		r := &recs[i]
		if isPrep(r.Type) {
			d, decided := decisions[r.Txn]
			if !decided || committed[r.Txn] {
				continue
			}
			tgt, ok, rerr := resolve(r.Part)
			if rerr != nil {
				return redone, undone, skipped, rerr
			}
			if !ok {
				continue
			}
			if err = tgt.RecoveryInstall(p, r.Key, r.After, d.TS, r.Type == RecPrepDel); err != nil {
				return redone, undone, skipped, err
			}
			redone++
			continue
		}
		if !isDML(r.Type) || !winner(r.Txn) {
			continue
		}
		tgt, ok, rerr := resolve(r.Part)
		if rerr != nil {
			return redone, undone, skipped, rerr
		}
		if !ok {
			continue
		}
		if r.After != nil {
			err = tgt.RecoveryPut(p, r.Key, r.After)
		} else {
			err = tgt.RecoveryDelete(p, r.Key)
		}
		if err != nil {
			return redone, undone, skipped, err
		}
		redone++
	}
	// Undo losers backward (anything neither committed locally nor decided
	// committed by the coordinator). Prepare-time images are never undone:
	// nothing was installed before the commit point, so there is nothing to
	// compensate.
	for i := len(recs) - 1; i >= 0; i-- {
		r := &recs[i]
		if !isDML(r.Type) || winner(r.Txn) {
			continue
		}
		tgt, ok, rerr := resolve(r.Part)
		if rerr != nil {
			return redone, undone, skipped, rerr
		}
		if !ok {
			continue
		}
		if r.Before != nil {
			err = tgt.RecoveryPut(p, r.Key, r.Before)
		} else {
			err = tgt.RecoveryDelete(p, r.Key)
		}
		if err != nil {
			return redone, undone, skipped, err
		}
		undone++
	}
	return redone, undone, skipped, nil
}

// Package wal implements per-node write-ahead logging (Sect. 4.3 Logging):
// logical log records with before/after images, group commit against the
// node's log device, checkpoints taken when segments move, and log shipping
// to helper nodes during rebalancing (Sect. 5.2). Restart recovery replays
// committed work and rolls back losers.
//
// The log is physical: Append encodes each record into the active segment's
// byte buffer (per-record frame with length + CRC32, see codec.go), Flush
// persists the byte tail to the device, and recovery decodes segments back
// into records — so replay reads exactly what was written, and a power
// failure can leave a torn or bit-rotted final frame that Restart must
// CRC-detect and truncate at the last valid record boundary.
package wal

import (
	"fmt"

	"wattdb/internal/cc"
	"wattdb/internal/hw"
	"wattdb/internal/sim"
)

// RecType tags a log record.
type RecType byte

const (
	RecUpdate RecType = iota
	RecInsert
	RecDelete
	RecCommit
	RecAbort
	RecCheckpoint
	RecSegMove  // segment ownership transferred (movement checkpoint)
	RecPrepare  // two-phase commit prepare vote
	RecPrepDML  // prepare-time redo image of a staged write (After = raw payload)
	RecPrepDel  // prepare-time redo image of a staged delete
	RecDecision // coordinator commit decision (TS = commit timestamp)

	// Master-state records: the coordinator's catalog, partition table,
	// timestamp leases, and decision bookkeeping encoded as ordinary log
	// records, so the master is a WAL-backed state machine whose log can be
	// shipped to follower replicas and replayed after a leader failure. In
	// all of them Part carries the master-state sequence number (the
	// replicated apply order, independent of each replica's local LSNs).
	RecMState // full catalog + partition-table snapshot of one table (After = EncodeMasterTable)
	RecMLease // timestamp-oracle lease grant (TS = first timestamp NOT covered)
	RecMAck   // decision participant resolved (Txn = txn, After = EncodeMasterAck)

	// RecBase is a recovery-base image: one record of a bulk-loaded or
	// adopted-segment partition image, logged so the base rides the same
	// shipped stream as ordinary DML and a replica can rebuild the partition
	// from log frames alone. Replay applies it unconditionally (Txn = 0, no
	// commit record guards it); correctness relies on bases being logged
	// before any DML on their keys, which append order guarantees.
	RecBase // Part = partition, Key/After = the loaded image
	// RecShip is a data-replication wrapper on a FOLLOWER's log: After holds
	// an EncodeShipFrame payload carrying one raw frame of some origin node's
	// log. Replay ignores it (the wrapped record belongs to the origin's
	// partitions); the follower's in-memory replica store is rebuilt from
	// these wrappers on restart.
	RecShip

	// Fuzzy-checkpoint records. A checkpoint is a begin/end pair:
	// RecCkptBegin marks the instant the checkpointer scanned the log and
	// refreshed the partition recovery bases, and RecCkptEnd carries the
	// EncodeCheckpoint payload (per-partition redo low-water marks) that
	// lets the next restart start replay at the redo point instead of the
	// log head. A checkpoint counts only once its end record is durable: a
	// restart that finds the end missing or torn falls back to the previous
	// complete pair. Both are node-local bookkeeping: a rebuilt log replays
	// full history from the replicas' wrappers, so neither ships (and a
	// shipped payload's LSNs would dangle after rebuild renumbering).
	RecCkptBegin // begin marker (no payload)
	RecCkptEnd   // After = EncodeCheckpoint payload; Part = begin LSN
)

// String returns the type's display name.
func (t RecType) String() string {
	return [...]string{"update", "insert", "delete", "commit", "abort", "checkpoint",
		"segmove", "prepare", "prepdml", "prepdel", "decision",
		"mstate", "mlease", "mack", "base", "ship",
		"ckptbegin", "ckptend"}[t]
}

// Record is one logical log record. For ordinary DML, Before and After carry
// fully encoded tree values (opaque to the log), so redo/undo are simple
// Put/Delete calls. Prepare-time DML records (RecPrepDML/RecPrepDel) instead
// carry the raw staged payload: the commit timestamp is unknown until the
// coordinator decides, so recovery stamps it while rolling the branch
// forward.
//
// Append encodes the record immediately, so callers may pass slices they
// keep mutating afterwards — the log never aliases caller memory.
type Record struct {
	LSN    uint64
	Txn    cc.TxnID
	Type   RecType
	Part   uint64       // partition the operation applied to
	TS     cc.Timestamp // decision records: the coordinator's commit timestamp
	Key    []byte
	Before []byte // nil: key did not exist
	After  []byte // nil: key removed
}

// Size returns the record's encoded payload length in bytes: exactly what
// EncodeRecord produces. The on-disk footprint adds the frame header
// (FrameSize).
func (r *Record) Size() int64 {
	return int64(recHeaderSize + len(r.Key) + len(r.Before) + len(r.After))
}

// FrameSize returns the record's on-disk footprint: the framed encoded
// length the log charges its device for.
func (r *Record) FrameSize() int64 { return r.Size() + frameHeaderSize }

// Device is where flushed log bytes go: the local log disk, or a helper
// node reached over the network when log shipping is active.
type Device interface {
	Append(p *sim.Proc, bytes int64)
}

// DiskDevice appends to a local disk.
type DiskDevice struct{ Disk *hw.Disk }

// Append writes bytes to the local log disk.
func (d DiskDevice) Append(p *sim.Proc, bytes int64) { d.Disk.AppendLog(p, bytes) }

// ShippedDevice sends log bytes to a helper node's disk over the network,
// relieving the local storage subsystem during rebalancing.
type ShippedDevice struct {
	Net      *hw.Network
	From, To int
	Disk     *hw.Disk // the helper's log disk
}

// Append ships bytes to the helper and appends there.
func (d ShippedDevice) Append(p *sim.Proc, bytes int64) {
	d.Net.Transfer(p, d.From, d.To, bytes)
	d.Disk.AppendLog(p, bytes)
}

// DefaultSegmentBytes is the target byte length of one log segment. The
// active segment seals once it reaches this size and a new one starts;
// TruncateBefore recycles whole sealed segments.
const DefaultSegmentBytes = 32 << 10

// logSegment is one contiguous run of encoded record frames. firstLSN and
// ends form the LSN-to-offset mapping: record firstLSN+i occupies
// buf[ends[i-1]:ends[i]] (ends[-1] = 0). buf may additionally hold torn
// trailing bytes past ends[len(ends)-1] after a power failure interrupted a
// device write; Restart's CRC scan truncates them.
type logSegment struct {
	firstLSN uint64
	buf      []byte
	ends     []int
}

// lastLSN returns the LSN of the segment's final record (firstLSN-1 when
// the segment holds none).
func (s *logSegment) lastLSN() uint64 { return s.firstLSN + uint64(len(s.ends)) - 1 }

// Log is one node's write-ahead log: a sequence of byte-encoded segments,
// the last of which is the active append tail.
type Log struct {
	env      *sim.Env
	device   Device
	segs     []*logSegment
	segBytes int
	forceNew bool // seal the active segment before the next append
	nextLSN  uint64

	flushedLSN   uint64
	pendingBytes int64 // appended frame bytes not yet durable
	flushing     bool
	flushedSig   *sim.Signal

	// down marks the owning node power-failed: appends are dropped and
	// flushes return immediately (there is no device to write to). epoch
	// increments on every crash so an in-flight flush that resumes after the
	// failure knows its device write never completed.
	down  bool
	epoch uint64

	// pin is the truncation fence set by PinBefore: records with LSN >= pin
	// are retained regardless of what TruncateBefore asks for (0 = no fence).
	// The data-replication layer pins its shipped watermark here so
	// acked-but-unshipped history is never recycled.
	pin uint64

	// onAppend, when set, observes every record the moment Append frames it.
	// The frame slice aliases the segment buffer — the hook must copy if it
	// retains the bytes (a later FlipFlushedBit would corrupt a live alias).
	onAppend func(rec *Record, frame []byte)

	// lostDurable is set by Restart when the CRC scan truncated below the
	// pre-crash flushed boundary (bit rot inside acked history, or a wiped
	// disk): durable bytes this log once acknowledged are gone, and the owner
	// must rebuild from replicas. Sticky until ClearLostDurable.
	lostDurable bool

	// Stats.
	Flushes      int64
	BytesFlushed int64
	TornDiscards int64 // torn/corrupt tail bytes truncated by Restart
}

// NewLog creates a log writing to device.
func NewLog(env *sim.Env, device Device) *Log {
	return &Log{env: env, device: device, segBytes: DefaultSegmentBytes,
		nextLSN: 1, flushedSig: sim.NewSignal(env)}
}

// SetSegmentBytes overrides the segment seal threshold (tests and tight
// storage budgets).
func (l *Log) SetSegmentBytes(n int) {
	if n > 0 {
		l.segBytes = n
	}
}

// SetDevice swaps the log device (e.g. to start or stop log shipping). The
// caller should Flush first so no pending bytes straddle devices.
func (l *Log) SetDevice(d Device) { l.device = d }

// Append encodes rec into the active segment and returns its LSN. The bytes
// are not durable until a Flush covers them. Appends against a crashed
// node's log are dropped (the node has no power; whoever issued them is a
// process that was already in flight when the failure hit).
func (l *Log) Append(rec Record) uint64 {
	if l.down {
		return l.flushedLSN
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	var s *logSegment
	if n := len(l.segs); n > 0 && !l.forceNew && len(l.segs[n-1].buf) < l.segBytes {
		s = l.segs[n-1]
	} else {
		s = &logSegment{firstLSN: rec.LSN}
		l.segs = append(l.segs, s)
		l.forceNew = false
	}
	start := len(s.buf)
	s.buf = appendFrame(s.buf, &rec)
	s.ends = append(s.ends, len(s.buf))
	l.pendingBytes += int64(len(s.buf) - start)
	if l.onAppend != nil {
		l.onAppend(&rec, s.buf[start:])
	}
	return rec.LSN
}

// SetAppendHook installs a callback observing every framed append (the
// data-replication ship queue). The frame slice passed to the hook aliases
// the segment buffer; the hook must copy it if retained.
func (l *Log) SetAppendHook(fn func(rec *Record, frame []byte)) { l.onAppend = fn }

// PinBefore sets the truncation fence: every record with LSN >= lsn is
// retained no matter what TruncateBefore asks for. The replication layer
// advances the fence as history ships to followers, so a checkpoint can
// never recycle acked-but-unshipped frames. lsn = 0 clears the fence.
func (l *Log) PinBefore(lsn uint64) { l.pin = lsn }

// FlushedLSN returns the highest durable LSN.
func (l *Log) FlushedLSN() uint64 { return l.flushedLSN }

// TailLSN returns the LSN the next Append will get.
func (l *Log) TailLSN() uint64 { return l.nextLSN }

// Flush makes all records with LSN <= upTo durable. Concurrent callers are
// group-committed: one flusher writes the whole byte tail in a single
// device append, and everyone who arrives while that write is in flight
// waits for its batch and re-checks — so one forced write covers many
// commits, and a committer whose records were already covered never issues
// a second write.
func (l *Log) Flush(p *sim.Proc, upTo uint64) {
	if upTo >= l.nextLSN {
		upTo = l.nextLSN - 1
	}
	for !l.down && l.flushedLSN < upTo {
		if l.flushing {
			stop := p.Meter(sim.CatLogging)
			l.flushedSig.Wait(p)
			stop()
			continue
		}
		l.flushing = true
		epoch := l.epoch
		target := l.nextLSN - 1
		bytes := l.pendingBytes
		l.pendingBytes = 0
		l.device.Append(p, bytes) // metered as CatLogging by the device
		if l.epoch != epoch {
			// The node power-failed while this write was in flight: the
			// bytes never (fully) reached the platter. Crash() already
			// discarded them and reset the flusher state.
			return
		}
		l.flushing = false
		l.flushedLSN = target
		l.Flushes++
		l.BytesFlushed += bytes
		l.flushedSig.Fire()
	}
}

// SetupFlush marks the appended tail durable without charging device time.
// Setup-only: cluster construction and table creation happen outside the
// simulation (like BulkLoad, which charges nothing), yet the bootstrap
// master-state records they emit must be durable before the clock starts.
func (l *Log) SetupFlush() {
	if l.down {
		return
	}
	l.flushedLSN = l.nextLSN - 1
	l.pendingBytes = 0
}

// Crash models the owning node's power failure: the volatile byte tail —
// everything beyond the flushed boundary — is lost, in-flight flushes are
// fenced off, and the log stops accepting work until Restart. It returns
// the number of records discarded.
func (l *Log) Crash() int {
	lost, _ := l.crash(0, -1)
	return lost
}

// CrashTorn is Crash with medium-level tail damage: up to keep bytes of the
// frame the device was writing when power cut survive on the platter (a
// torn final record), and flip >= 0 additionally flips one bit within those
// surviving bytes. Without a flip the torn frame is always partial (the
// write never completed); with a flip it may be byte-complete but corrupt —
// either way Restart's CRC scan must truncate it. It returns the records
// discarded and the torn bytes left behind.
func (l *Log) CrashTorn(keep, flip int) (lost, torn int) {
	if keep < 1 {
		keep = 1
	}
	return l.crash(keep, flip)
}

func (l *Log) crash(keep, flip int) (lost, torn int) {
	l.epoch++
	l.down = true
	l.flushing = false
	lost = int(l.nextLSN - 1 - l.flushedLSN)
	// Locate the durable boundary, capture the frame the device was writing
	// when power cut, and drop every byte past the boundary.
	var frame []byte
	cut := len(l.segs)
	for i, s := range l.segs {
		durable := 0
		if l.flushedLSN >= s.firstLSN {
			durable = int(l.flushedLSN - s.firstLSN + 1)
			if durable > len(s.ends) {
				durable = len(s.ends)
			}
		}
		if durable == len(s.ends) {
			continue // fully durable (a live log has no bytes past its last frame)
		}
		off := 0
		if durable > 0 {
			off = s.ends[durable-1]
		}
		if durable < len(s.ends) {
			frame = s.buf[off:s.ends[durable]]
		}
		// Cap-limit the cut so the torn append below cannot scribble over
		// the bytes frame still aliases.
		s.buf = s.buf[:off:off]
		s.ends = s.ends[:durable]
		cut = i
		break
	}
	if cut < len(l.segs) {
		boundary := l.segs[cut]
		l.segs = l.segs[:cut+1]
		if keep > 0 && len(frame) > 0 {
			maxKeep := len(frame) - 1 // an interrupted write never completes its frame...
			if flip >= 0 {
				maxKeep = len(frame) // ...unless the damage is bit rot in a completed one
			}
			if keep > maxKeep {
				keep = maxKeep
			}
			if keep > 0 {
				at := len(boundary.buf)
				boundary.buf = append(boundary.buf, frame[:keep]...)
				if flip >= 0 {
					bit := flip % (keep * 8)
					boundary.buf[at+bit/8] ^= 1 << (bit % 8)
				}
				torn = keep
			}
		}
		if len(boundary.buf) == 0 && len(boundary.ends) == 0 {
			l.segs = l.segs[:cut]
		}
	}
	l.pendingBytes = 0
	// The durable tail is now the log tail: future LSNs continue above it.
	l.nextLSN = l.flushedLSN + 1
	l.flushedSig.Fire() // waiters re-check and see the log is down
	return lost, torn
}

// Restart brings a crashed log back into service by re-deriving its state
// from the durable bytes: every segment is scanned frame by frame, the
// LSN-to-offset mapping is rebuilt, and the scan stops at the first torn or
// CRC-corrupt frame — the damaged tail (an interrupted or bit-rotted device
// write, never acknowledged) is truncated at the last valid record
// boundary. It returns the number of tail bytes discarded.
func (l *Log) Restart() int {
	if !l.down {
		// Restarting a live log would promote its appended-but-unflushed
		// tail to durable without a single device write.
		return 0
	}
	l.down = false
	prevFlushed := l.flushedLSN
	discarded := 0
	lastValid := uint64(0)
	keep := 0
scan:
	for i, s := range l.segs {
		off := 0
		s.ends = s.ends[:0]
		first := true
		for off < len(s.buf) {
			rec, n, err := decodeFrame(s.buf[off:])
			if err == nil && lastValid > 0 && rec.LSN <= lastValid {
				err = fmt.Errorf("wal: LSN %d not above %d", rec.LSN, lastValid)
			}
			if err != nil {
				// Torn/corrupt tail: truncate here and drop everything after.
				discarded += len(s.buf) - off
				s.buf = s.buf[:off]
				for _, t := range l.segs[i+1:] {
					discarded += len(t.buf)
				}
				keep = i + 1
				break scan
			}
			if first {
				s.firstLSN = rec.LSN
				first = false
			}
			off += n
			s.ends = append(s.ends, off)
			lastValid = rec.LSN
		}
		keep = i + 1
	}
	l.segs = l.segs[:keep]
	// Drop segments the truncation emptied entirely.
	for len(l.segs) > 0 {
		if s := l.segs[len(l.segs)-1]; len(s.ends) == 0 && len(s.buf) == 0 {
			l.segs = l.segs[:len(l.segs)-1]
			continue
		}
		break
	}
	if lastValid > 0 {
		l.flushedLSN = lastValid
	}
	if lastValid < prevFlushed {
		// The scan truncated below the pre-crash durable boundary: bytes this
		// log acknowledged as flushed are gone (bit rot inside acked history).
		// An ordinary torn tail never trips this — crash() already dropped
		// everything above flushedLSN before the scan ran.
		l.lostDurable = true
		l.flushedLSN = lastValid
	}
	l.nextLSN = l.flushedLSN + 1
	l.pendingBytes = 0
	l.TornDiscards += int64(discarded)
	return discarded
}

// LostDurable reports whether a Restart (or WipeDisk) detected the loss of
// bytes this log had acknowledged as durable — the owner's partitions cannot
// be recovered locally and must be rebuilt from replicas.
func (l *Log) LostDurable() bool { return l.lostDurable }

// ClearLostDurable acknowledges a durability loss after the owner rebuilt
// its state from replicas.
func (l *Log) ClearLostDurable() { l.lostDurable = false }

// WipeDisk models total loss of the log medium: every segment — including
// acked history — is gone, and LSNs restart from 1 (the rebuilt log is
// renumbered; replicas re-sync from scratch afterwards). Two callers: the
// chaos DestroyDisk fault wipes a crashed node's disk under it, and the
// restart rebuild path wipes a live-again log whose Restart scan found acked
// history rotted beyond local repair, before re-appending the replica's copy.
// LostDurable is set so the restart path knows local recovery is impossible.
func (l *Log) WipeDisk() {
	l.epoch++ // fence any in-flight flush: its device write hit a dead medium
	l.segs = nil
	l.forceNew = false
	l.flushing = false
	l.flushedLSN = 0
	l.nextLSN = 1
	l.pendingBytes = 0
	l.pin = 0
	l.lostDurable = true
	l.flushedSig.Fire()
}

// CheckFlushed CRC-scans the durable portion of every retained segment and
// returns the LSNs of frames that no longer decode — bit rot inside acked
// history. The walk uses the in-memory LSN-to-offset mapping, so damage to
// one frame never hides the frames behind it (unlike Restart's byte scan,
// which must truncate at the first bad frame).
func (l *Log) CheckFlushed() []uint64 {
	var bad []uint64
	for _, s := range l.segs {
		start := 0
		for i, end := range s.ends {
			lsn := s.firstLSN + uint64(i)
			frame := s.buf[start:end]
			start = end
			if lsn > l.flushedLSN {
				break
			}
			rec, n, err := decodeFrame(frame)
			if err != nil || n != len(frame) || rec.LSN != lsn {
				bad = append(bad, lsn)
			}
		}
	}
	return bad
}

// FrameBytes returns a copy of the raw frame stored at lsn (nil when the
// record is not retained). The replication layer ships exactly these bytes.
func (l *Log) FrameBytes(lsn uint64) []byte {
	s, idx := l.locate(lsn)
	if s == nil {
		return nil
	}
	start := 0
	if idx > 0 {
		start = s.ends[idx-1]
	}
	return append([]byte{}, s.buf[start:s.ends[idx]]...)
}

// PatchFrame overwrites the frame stored at lsn with frame — the scrubber's
// repair path, fed with the replica's copy of the original bytes. The patch
// is refused unless frame is exactly the right length and decodes to a valid
// record carrying lsn.
func (l *Log) PatchFrame(lsn uint64, frame []byte) bool {
	s, idx := l.locate(lsn)
	if s == nil {
		return false
	}
	start := 0
	if idx > 0 {
		start = s.ends[idx-1]
	}
	if len(frame) != s.ends[idx]-start {
		return false
	}
	rec, n, err := decodeFrame(frame)
	if err != nil || n != len(frame) || rec.LSN != lsn {
		return false
	}
	copy(s.buf[start:s.ends[idx]], frame)
	return true
}

// FlipFlushedBit flips one bit inside the payload of a durable, shippable
// frame (chaos fault injection: bit rot in acked history, not the unflushed
// tail Crash already damages). pick deterministically selects the victim
// frame and the bit. Master-state and ship-wrapper frames are skipped — rot
// there is equivalent to rot on a replica's copy of data history, which the
// data-frame case already exercises. A non-nil eligible predicate further
// restricts the candidates (the chaos harness limits rot to frames with a
// surviving replica copy, since rotting the last copy models unrecoverable
// media loss beyond the redundancy budget, not scrubber-repairable decay).
// Returns the damaged LSN, or 0 when the log holds no candidate.
func (l *Log) FlipFlushedBit(pick int, eligible func(lsn uint64) bool) uint64 {
	type cand struct {
		s     *logSegment
		start int
		end   int
		lsn   uint64
	}
	var cands []cand
	for _, s := range l.segs {
		start := 0
		for i, end := range s.ends {
			lsn := s.firstLSN + uint64(i)
			frame := s.buf[start:end]
			st := start
			start = end
			if lsn > l.flushedLSN {
				break
			}
			rec, _, err := decodeFrame(frame)
			if err != nil || !Shippable(rec.Type) {
				continue // already damaged, or a frame no replica holds
			}
			if eligible != nil && !eligible(lsn) {
				continue
			}
			cands = append(cands, cand{s, st, end, lsn})
		}
	}
	if len(cands) == 0 {
		return 0
	}
	if pick < 0 {
		pick = -pick
	}
	c := cands[pick%len(cands)]
	payload := c.end - c.start - frameHeaderSize
	bit := pick % (payload * 8)
	c.s.buf[c.start+frameHeaderSize+bit/8] ^= 1 << (bit % 8)
	return c.lsn
}

// VisitFrames walks every retained frame in LSN order, passing the decoded
// record and its raw frame bytes to fn; fn returning false stops the walk.
// The record's slices are copies, but the frame slice aliases the segment
// buffer — fn must copy it if retained. Frames that no longer decode (bit rot
// awaiting the scrubber) are skipped: the resync and rebuild paths that use
// this walk must not propagate damage.
func (l *Log) VisitFrames(fn func(rec *Record, frame []byte) bool) {
	for _, s := range l.segs {
		start := 0
		for i, end := range s.ends {
			lsn := s.firstLSN + uint64(i)
			frame := s.buf[start:end]
			start = end
			rec, n, err := decodeFrame(frame)
			if err != nil || n != len(frame) || rec.LSN != lsn {
				continue
			}
			if !fn(&rec, frame) {
				return
			}
		}
	}
}

// locate finds the segment and in-segment index holding lsn.
func (l *Log) locate(lsn uint64) (*logSegment, int) {
	for _, s := range l.segs {
		if len(s.ends) == 0 || lsn < s.firstLSN || lsn > s.lastLSN() {
			continue
		}
		return s, int(lsn - s.firstLSN)
	}
	return nil, 0
}

// Shippable reports whether a record type belongs to the node's replicated
// data stream. Master-state records replicate through the coordinator's own
// protocol, ship wrappers are follower-local bookkeeping — forwarding either
// would nest the streams — and checkpoint records (begin/end) describe this
// log's local truncation state: a replica rebuilds from the full shipped
// history and never needs them, and shipping them would let a rebuilt log
// carry checkpoint payloads whose LSNs dangle after renumbering.
func Shippable(t RecType) bool {
	switch t {
	case RecMState, RecMLease, RecMAck, RecDecision, RecShip,
		RecCkptBegin, RecCkptEnd:
		return false
	}
	return true
}

// Down reports whether the log's node is power-failed.
func (l *Log) Down() bool { return l.down }

// Checkpoint seals the active segment, appends a checkpoint record (opening
// a fresh segment), and flushes through it — so a following TruncateBefore
// can recycle every segment written before the checkpoint. It returns the
// checkpoint LSN.
func (l *Log) Checkpoint(p *sim.Proc) uint64 {
	l.forceNew = true
	lsn := l.Append(Record{Type: RecCheckpoint})
	l.Flush(p, lsn)
	return lsn
}

// TruncateBefore recycles whole segments whose records all have LSN < lsn
// and are durable (after a checkpoint made them obsolete, e.g. when a moved
// segment's history is no longer needed). Reclamation is segment-at-a-time:
// a segment holding any record >= lsn is kept entirely, so RetainedBytes
// stays the exact byte length of the surviving segments.
func (l *Log) TruncateBefore(lsn uint64) {
	cut := 0
	for cut < len(l.segs) {
		s := l.segs[cut]
		if len(s.ends) == 0 || s.lastLSN() >= lsn || s.lastLSN() > l.flushedLSN {
			break
		}
		if l.pin > 0 && s.lastLSN() >= l.pin {
			break // unshipped history: fenced by PinBefore
		}
		cut++
	}
	l.segs = l.segs[cut:]
}

// RetainedBytes returns the exact byte length of the retained log segments
// (storage metric).
func (l *Log) RetainedBytes() int64 {
	var total int64
	for _, s := range l.segs {
		total += int64(len(s.buf))
	}
	return total
}

// Iterator walks the log's encoded segments, decoding one record per Next.
// It covers every retained byte — durable frames and, on a live log, the
// appended-but-unflushed tail. Iteration stops at a torn or corrupt frame
// (possible only on a crashed log that has not been through Restart); Err
// reports whether the walk ended at damage rather than the clean end.
type Iterator struct {
	segs []*logSegment
	si   int
	off  int
	err  error
}

// Iter returns an iterator over the log's records, decoded from the
// segment bytes in LSN order.
func (l *Log) Iter() *Iterator { return &Iterator{segs: l.segs} }

// Next decodes and returns the next record. Decoded slices are copies, not
// aliases of the log's buffers.
func (it *Iterator) Next() (Record, bool) {
	if it.err != nil {
		return Record{}, false
	}
	for it.si < len(it.segs) {
		s := it.segs[it.si]
		if it.off >= len(s.buf) {
			it.si++
			it.off = 0
			continue
		}
		rec, n, err := decodeFrame(s.buf[it.off:])
		if err != nil {
			it.err = fmt.Errorf("wal: segment %d offset %d: %w", it.si, it.off, err)
			return Record{}, false
		}
		it.off += n
		return rec, true
	}
	return Record{}, false
}

// Err returns the decode error that stopped iteration, if any.
func (it *Iterator) Err() error { return it.err }

// All drains the iterator into a slice (recovery's analysis input).
func (it *Iterator) All() ([]Record, error) {
	var recs []Record
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs, it.err
}

// Target is the recovery interface to a partition: raw Put/Delete of
// encoded tree values, bypassing concurrency control. RecoveryInstall
// additionally rolls forward a prepare-time redo image, whose raw payload
// must be stamped with the coordinator-decided commit timestamp before it
// becomes a tree value.
type Target interface {
	RecoveryPut(p *sim.Proc, key, val []byte) error
	RecoveryDelete(p *sim.Proc, key []byte) error
	RecoveryInstall(p *sim.Proc, key, val []byte, ts cc.Timestamp, deleted bool) error
}

// Decision is a coordinator's verdict for a prepared (in-doubt)
// transaction: roll forward at TS, or — when no decision exists at the
// coordinator — presumed abort (the transaction simply has no entry).
type Decision struct {
	TS cc.Timestamp
}

// Recover replays the log against targets (keyed by partition ID): redo all
// operations of committed transactions in LSN order, then undo losers in
// reverse order using before images. Both passes are idempotent, matching
// the paper's requirement that "the log file is needed to reconstruct
// partitions and to perform appropriate UNDO and REDO operations".
// The records are decoded from the iterator's segment bytes; a decode
// failure (torn tail not yet truncated by Restart) fails recovery, as does
// a record for a partition absent from targets.
func Recover(p *sim.Proc, it *Iterator, targets map[uint64]Target) (redone, undone int, err error) {
	recs, err := it.All()
	if err != nil {
		return 0, 0, err
	}
	a := NewAnalysis(recs, nil)
	st, err := a.apply(p, func(part uint64) (Target, bool, error) {
		tgt, ok := targets[part]
		if !ok {
			return nil, false, fmt.Errorf("wal: recovery for unknown partition %d", part)
		}
		return tgt, true, nil
	}, func(uint64) uint64 { return 0 })
	return st.Redone, st.Undone, err
}

// RecoverPartial is Recover for a node restart where some logged partitions
// no longer exist (fully migrated away, dropped replicas): their records are
// skipped instead of failing recovery, and the skip count is reported.
// decisions carries the coordinator's verdicts for this node's in-doubt
// transactions (prepared, but with no local commit or abort record): a
// transaction with an entry is rolled forward — its ordinary DML redone and
// its prepare-time images installed at the decided timestamp — and one
// without is presumed aborted and rolled back.
func RecoverPartial(p *sim.Proc, it *Iterator, targets map[uint64]Target, decisions map[cc.TxnID]Decision) (redone, undone, skipped int, err error) {
	recs, err := it.All()
	if err != nil {
		return 0, 0, 0, err
	}
	a := NewAnalysis(recs, decisions)
	st, err := a.apply(p, func(part uint64) (Target, bool, error) {
		tgt, ok := targets[part]
		if !ok {
			skipped++
			return nil, false, nil
		}
		return tgt, true, nil
	}, func(uint64) uint64 { return 0 })
	return st.Redone, st.Undone, skipped, err
}

// Analysis is the shared analysis pass over a restart log: the records and
// the commit set plus coordinator decisions that classify every transaction
// as winner or loser. One Analysis feeds every per-partition replay of a
// restart, so concurrent partition replays (one sim proc each) never repeat
// the scan.
type Analysis struct {
	recs      []Record
	committed map[cc.TxnID]bool
	decisions map[cc.TxnID]Decision
}

// NewAnalysis scans recs once and returns the shared replay classification.
func NewAnalysis(recs []Record, decisions map[cc.TxnID]Decision) *Analysis {
	a := &Analysis{recs: recs, committed: make(map[cc.TxnID]bool), decisions: decisions}
	for i := range recs {
		if recs[i].Type == RecCommit {
			a.committed[recs[i].Txn] = true
		}
	}
	return a
}

func (a *Analysis) winner(id cc.TxnID) bool {
	if a.committed[id] {
		return true
	}
	_, decided := a.decisions[id]
	return decided
}

// ReplayStats reports one replay's work, so restart paths can expose how
// much log a recovery actually touched (the chaos RTO oracle asserts it is
// bounded by the delta since the last checkpoint).
type ReplayStats struct {
	Redone, Undone int
	Bytes          int64  // framed bytes of every record applied
	MinApplied     uint64 // lowest LSN applied (0 = nothing applied)
}

func (s *ReplayStats) count(r *Record, redo bool) {
	if redo {
		s.Redone++
	} else {
		s.Undone++
	}
	s.Bytes += r.FrameSize()
	if s.MinApplied == 0 || r.LSN < s.MinApplied {
		s.MinApplied = r.LSN
	}
}

// ReplayPartition replays one partition's records from its checkpoint redo
// low-water mark: every record below from is covered by the refreshed
// recovery base and skipped, so replay work is bounded by the delta since
// the checkpoint instead of the full retained history. from = 0 replays
// everything (no checkpoint, or a partition the checkpoint never saw).
func (a *Analysis) ReplayPartition(p *sim.Proc, part, from uint64, tgt Target) (ReplayStats, error) {
	return a.apply(p, func(pt uint64) (Target, bool, error) {
		if pt != part {
			return nil, false, nil
		}
		return tgt, true, nil
	}, func(uint64) uint64 { return from })
}

// apply is the replay engine shared by Recover, RecoverPartial, and the
// per-partition restart path. resolve maps a partition to its target (or
// skips it); from gives each partition's redo start point.
//
// The redo filter is sound because a checkpoint lets nothing fall below
// the redo point uncovered: a key whose latest committed image (DML or
// base record) sits below was absorbed into the in-memory recovery base
// the restart pre-applies, and a transaction unresolved at checkpoint time
// pins the redo point at its first LSN, so every record a restart could
// need to roll forward — or undo — sits at or above from.
func (a *Analysis) apply(p *sim.Proc, resolve func(part uint64) (Target, bool, error), from func(part uint64) uint64) (st ReplayStats, err error) {
	isDML := func(t RecType) bool { return t == RecUpdate || t == RecInsert || t == RecDelete }
	isPrep := func(t RecType) bool { return t == RecPrepDML || t == RecPrepDel }

	// Redo winners forward. Base images redo unconditionally (Txn = 0; a
	// bulk-load base precedes any DML on its keys, and a segment-adoption
	// base — which may supersede older DML — lands at its append position,
	// so pure LSN order converges every key to its latest committed value).
	// A decided-commit transaction without a local commit record (a
	// rolled-forward in-doubt branch) installs its prepare-time images at
	// the decided timestamp; when the commit record is durable the
	// preceding phase-two records already carry the final values, so the
	// prepare images are redundant and skipped.
	for i := range a.recs {
		r := &a.recs[i]
		if r.LSN < from(r.Part) {
			continue
		}
		if r.Type == RecBase {
			tgt, ok, rerr := resolve(r.Part)
			if rerr != nil {
				return st, rerr
			}
			if !ok {
				continue
			}
			if err = tgt.RecoveryPut(p, r.Key, r.After); err != nil {
				return st, err
			}
			st.count(r, true)
			continue
		}
		if isPrep(r.Type) {
			d, decided := a.decisions[r.Txn]
			if !decided || a.committed[r.Txn] {
				continue
			}
			tgt, ok, rerr := resolve(r.Part)
			if rerr != nil {
				return st, rerr
			}
			if !ok {
				continue
			}
			if err = tgt.RecoveryInstall(p, r.Key, r.After, d.TS, r.Type == RecPrepDel); err != nil {
				return st, err
			}
			st.count(r, true)
			continue
		}
		if !isDML(r.Type) || !a.winner(r.Txn) {
			continue
		}
		tgt, ok, rerr := resolve(r.Part)
		if rerr != nil {
			return st, rerr
		}
		if !ok {
			continue
		}
		if r.After != nil {
			err = tgt.RecoveryPut(p, r.Key, r.After)
		} else {
			err = tgt.RecoveryDelete(p, r.Key)
		}
		if err != nil {
			return st, err
		}
		st.count(r, true)
	}
	// Undo losers backward (anything neither committed locally nor decided
	// committed by the coordinator). Prepare-time images are never undone:
	// nothing was installed before the commit point, so there is nothing to
	// compensate. A loser below the redo filter is a dead one from before
	// an earlier restart — its effects were never replayed into the fresh
	// partition, so there is nothing to undo there either.
	for i := len(a.recs) - 1; i >= 0; i-- {
		r := &a.recs[i]
		if !isDML(r.Type) || a.winner(r.Txn) || r.LSN < from(r.Part) {
			continue
		}
		tgt, ok, rerr := resolve(r.Part)
		if rerr != nil {
			return st, rerr
		}
		if !ok {
			continue
		}
		if r.Before != nil {
			err = tgt.RecoveryPut(p, r.Key, r.Before)
		} else {
			err = tgt.RecoveryDelete(p, r.Key)
		}
		if err != nil {
			return st, err
		}
		st.count(r, false)
	}
	return st, nil
}

// Package table implements WattDB's logical layer (Fig. 4 of the paper):
// tables split into horizontal partitions, each index-organised by primary
// key and owned by one node. The three partitioning schemes of Sect. 4 are
// all implemented here over the same storage substrate:
//
//   - Physical: one partition-spanning B*-tree whose pages live in segments
//     that may be relocated to other nodes' disks (ownership fixed).
//   - Logical: the same spanning tree, but rebalancing moves records
//     between partitions with delete/insert transactions.
//   - Physiological: per-segment B*-trees (mini-partitions) plus a small
//     top index; rebalancing ships whole segments and transfers ownership.
package table

import (
	"encoding/binary"
	"fmt"
	"math"

	"wattdb/internal/keycodec"
)

// ColType enumerates supported column types.
type ColType int

const (
	ColInt64 ColType = iota
	ColString
	ColFloat64
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: metadata held on the master node. The first
// KeyCols columns form the primary key (all int64 in TPC-C-style keys, but
// strings are supported).
type Schema struct {
	ID      uint32
	Name    string
	Columns []Column
	KeyCols int
}

// Row is one record's values, position-matched to Schema.Columns. Values
// are int64, string, or float64.
type Row []any

// Validate checks the schema's internal consistency.
func (s *Schema) Validate() error {
	if s.KeyCols < 1 || s.KeyCols > len(s.Columns) {
		return fmt.Errorf("table %s: %d key columns of %d", s.Name, s.KeyCols, len(s.Columns))
	}
	return nil
}

// Key encodes row's primary key in order-preserving form.
func (s *Schema) Key(row Row) ([]byte, error) {
	if len(row) != len(s.Columns) {
		return nil, fmt.Errorf("table %s: row has %d values, want %d", s.Name, len(row), len(s.Columns))
	}
	return s.EncodeKeyPrefix(row[:s.KeyCols]...)
}

// EncodeKeyPrefix encodes a (possibly partial) key prefix: useful for range
// bounds like "all orders of warehouse 3".
func (s *Schema) EncodeKeyPrefix(vals ...any) ([]byte, error) {
	if len(vals) > s.KeyCols {
		return nil, fmt.Errorf("table %s: %d key values, max %d", s.Name, len(vals), s.KeyCols)
	}
	var key []byte
	for i, v := range vals {
		switch s.Columns[i].Type {
		case ColInt64:
			iv, ok := v.(int64)
			if !ok {
				return nil, fmt.Errorf("table %s: key col %d: want int64, got %T", s.Name, i, v)
			}
			key = keycodec.AppendInt64(key, iv)
		case ColString:
			sv, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("table %s: key col %d: want string, got %T", s.Name, i, v)
			}
			key = keycodec.AppendString(key, sv)
		case ColFloat64:
			fv, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("table %s: key col %d: want float64, got %T", s.Name, i, v)
			}
			key = keycodec.AppendFloat64(key, fv)
		}
	}
	return key, nil
}

// EncodeRow serialises all column values (including key columns, so rows
// are self-contained when shipped between nodes).
func (s *Schema) EncodeRow(row Row) ([]byte, error) {
	if len(row) != len(s.Columns) {
		return nil, fmt.Errorf("table %s: row has %d values, want %d", s.Name, len(row), len(s.Columns))
	}
	var buf []byte
	for i, col := range s.Columns {
		switch col.Type {
		case ColInt64:
			iv, ok := row[i].(int64)
			if !ok {
				return nil, fmt.Errorf("table %s: col %s: want int64, got %T", s.Name, col.Name, row[i])
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(iv))
			buf = append(buf, b[:]...)
		case ColFloat64:
			fv, ok := row[i].(float64)
			if !ok {
				return nil, fmt.Errorf("table %s: col %s: want float64, got %T", s.Name, col.Name, row[i])
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(fv))
			buf = append(buf, b[:]...)
		case ColString:
			sv, ok := row[i].(string)
			if !ok {
				return nil, fmt.Errorf("table %s: col %s: want string, got %T", s.Name, col.Name, row[i])
			}
			if len(sv) > 0xFFFF {
				return nil, fmt.Errorf("table %s: col %s: string too long", s.Name, col.Name)
			}
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(len(sv)))
			buf = append(buf, b[:]...)
			buf = append(buf, sv...)
		}
	}
	return buf, nil
}

// DecodeRow parses bytes produced by EncodeRow.
func (s *Schema) DecodeRow(buf []byte) (Row, error) {
	row := make(Row, len(s.Columns))
	for i, col := range s.Columns {
		switch col.Type {
		case ColInt64:
			if len(buf) < 8 {
				return nil, fmt.Errorf("table %s: truncated row at col %s", s.Name, col.Name)
			}
			row[i] = int64(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		case ColFloat64:
			if len(buf) < 8 {
				return nil, fmt.Errorf("table %s: truncated row at col %s", s.Name, col.Name)
			}
			row[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		case ColString:
			if len(buf) < 2 {
				return nil, fmt.Errorf("table %s: truncated row at col %s", s.Name, col.Name)
			}
			n := int(binary.LittleEndian.Uint16(buf))
			buf = buf[2:]
			if len(buf) < n {
				return nil, fmt.Errorf("table %s: truncated string at col %s", s.Name, col.Name)
			}
			row[i] = string(buf[:n])
			buf = buf[n:]
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("table %s: %d trailing bytes", s.Name, len(buf))
	}
	return row, nil
}

// Col returns the index of the named column, or -1.
func (s *Schema) Col(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Package table implements WattDB's logical layer (Fig. 4 of the paper):
// tables split into horizontal partitions, each index-organised by primary
// key and owned by one node. The three partitioning schemes of Sect. 4 are
// all implemented here over the same storage substrate:
//
//   - Physical: one partition-spanning B*-tree whose pages live in segments
//     that may be relocated to other nodes' disks (ownership fixed).
//   - Logical: the same spanning tree, but rebalancing moves records
//     between partitions with delete/insert transactions.
//   - Physiological: per-segment B*-trees (mini-partitions) plus a small
//     top index; rebalancing ships whole segments and transfers ownership.
package table

import (
	"encoding/binary"
	"fmt"
	"math"

	"wattdb/internal/keycodec"
)

// ColType enumerates supported column types.
type ColType int

const (
	ColInt64 ColType = iota
	ColString
	ColFloat64
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: metadata held on the master node. The first
// KeyCols columns form the primary key (all int64 in TPC-C-style keys, but
// strings are supported).
type Schema struct {
	ID      uint32
	Name    string
	Columns []Column
	KeyCols int

	// wireFixed caches the fixed-width wire footprint of one row (framing
	// plus per-column fixed bytes), so wire-cost accounting never re-walks
	// column values. Computed lazily by FixedWireBytes.
	wireFixed int64
}

// Row is one record's values, position-matched to Schema.Columns. Values
// are int64, string, or float64.
type Row []any

// Validate checks the schema's internal consistency.
func (s *Schema) Validate() error {
	if s.KeyCols < 1 || s.KeyCols > len(s.Columns) {
		return fmt.Errorf("table %s: %d key columns of %d", s.Name, s.KeyCols, len(s.Columns))
	}
	return nil
}

// Key encodes row's primary key in order-preserving form.
func (s *Schema) Key(row Row) ([]byte, error) {
	if len(row) != len(s.Columns) {
		return nil, fmt.Errorf("table %s: row has %d values, want %d", s.Name, len(row), len(s.Columns))
	}
	return s.EncodeKeyPrefix(row[:s.KeyCols]...)
}

// EncodeKeyPrefix encodes a (possibly partial) key prefix: useful for range
// bounds like "all orders of warehouse 3".
func (s *Schema) EncodeKeyPrefix(vals ...any) ([]byte, error) {
	return s.AppendKeyPrefix(nil, vals...)
}

// AppendKeyPrefix is EncodeKeyPrefix appending into a reusable buffer. On
// error the buffer (possibly extended by already-encoded columns) is
// returned so callers keep their scratch capacity.
func (s *Schema) AppendKeyPrefix(key []byte, vals ...any) ([]byte, error) {
	if len(vals) > s.KeyCols {
		return key, fmt.Errorf("table %s: %d key values, max %d", s.Name, len(vals), s.KeyCols)
	}
	for i, v := range vals {
		switch s.Columns[i].Type {
		case ColInt64:
			iv, ok := v.(int64)
			if !ok {
				return key, fmt.Errorf("table %s: key col %d: want int64, got %T", s.Name, i, v)
			}
			key = keycodec.AppendInt64(key, iv)
		case ColString:
			sv, ok := v.(string)
			if !ok {
				return key, fmt.Errorf("table %s: key col %d: want string, got %T", s.Name, i, v)
			}
			key = keycodec.AppendString(key, sv)
		case ColFloat64:
			fv, ok := v.(float64)
			if !ok {
				return key, fmt.Errorf("table %s: key col %d: want float64, got %T", s.Name, i, v)
			}
			key = keycodec.AppendFloat64(key, fv)
		}
	}
	return key, nil
}

// AppendKeyPrefix1 is the one-column fast path of AppendKeyPrefix for
// int64-keyed tables: the variadic form boxes every argument into an
// interface (one heap allocation per non-constant int64) plus the []any
// backing array, which the TPC-C range-bound hot paths pay per scan. The
// typed form allocates nothing beyond the key bytes.
func (s *Schema) AppendKeyPrefix1(key []byte, v0 int64) ([]byte, error) {
	if s.KeyCols < 1 {
		return key, fmt.Errorf("table %s: 1 key value, max %d", s.Name, s.KeyCols)
	}
	if s.Columns[0].Type != ColInt64 {
		return key, fmt.Errorf("table %s: key col 0: want %v, got int64", s.Name, s.Columns[0].Type)
	}
	return keycodec.AppendInt64(key, v0), nil
}

// AppendKeyPrefix2 is the two-column int64 fast path of AppendKeyPrefix
// (see AppendKeyPrefix1).
func (s *Schema) AppendKeyPrefix2(key []byte, v0, v1 int64) ([]byte, error) {
	if s.KeyCols < 2 {
		return key, fmt.Errorf("table %s: 2 key values, max %d", s.Name, s.KeyCols)
	}
	if s.Columns[0].Type != ColInt64 || s.Columns[1].Type != ColInt64 {
		return key, fmt.Errorf("table %s: key cols 0,1 must be int64", s.Name)
	}
	return keycodec.AppendInt64(keycodec.AppendInt64(key, v0), v1), nil
}

// EncodeKeyPrefix1 is AppendKeyPrefix1 into a fresh buffer.
func (s *Schema) EncodeKeyPrefix1(v0 int64) ([]byte, error) {
	return s.AppendKeyPrefix1(make([]byte, 0, 8), v0)
}

// EncodeKeyPrefix2 is AppendKeyPrefix2 into a fresh buffer.
func (s *Schema) EncodeKeyPrefix2(v0, v1 int64) ([]byte, error) {
	return s.AppendKeyPrefix2(make([]byte, 0, 16), v0, v1)
}

// EncodeRow serialises all column values (including key columns, so rows
// are self-contained when shipped between nodes).
func (s *Schema) EncodeRow(row Row) ([]byte, error) {
	return s.AppendEncodedRow(nil, row)
}

// AppendEncodedRow is EncodeRow appending into a reusable buffer: encode
// paths that ship one record at a time (TPC-C writes, data generators) use
// it to stop allocating a fresh buffer per record.
func (s *Schema) AppendEncodedRow(dst []byte, row Row) ([]byte, error) {
	if len(row) != len(s.Columns) {
		return dst, fmt.Errorf("table %s: row has %d values, want %d", s.Name, len(row), len(s.Columns))
	}
	for i := range s.Columns {
		col := &s.Columns[i]
		switch col.Type {
		case ColInt64:
			iv, ok := row[i].(int64)
			if !ok {
				return dst, fmt.Errorf("table %s: col %s: want int64, got %T", s.Name, col.Name, row[i])
			}
			dst = binary.LittleEndian.AppendUint64(dst, uint64(iv))
		case ColFloat64:
			fv, ok := row[i].(float64)
			if !ok {
				return dst, fmt.Errorf("table %s: col %s: want float64, got %T", s.Name, col.Name, row[i])
			}
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(fv))
		case ColString:
			sv, ok := row[i].(string)
			if !ok {
				return dst, fmt.Errorf("table %s: col %s: want string, got %T", s.Name, col.Name, row[i])
			}
			if len(sv) > 0xFFFF {
				return dst, fmt.Errorf("table %s: col %s: string too long", s.Name, col.Name)
			}
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(sv)))
			dst = append(dst, sv...)
		}
	}
	return dst, nil
}

// DecodeRow parses bytes produced by EncodeRow into a boxed Row. It is a
// compatibility wrapper over a one-row Batch; decode hot paths should use
// AppendDecoded into a reused Batch instead.
func (s *Schema) DecodeRow(buf []byte) (Row, error) {
	var b Batch
	b.Init(s)
	if err := s.AppendDecoded(&b, buf); err != nil {
		return nil, err
	}
	return b.Row(0), nil
}

// FixedWireBytes returns the fixed-width wire footprint of one encoded row:
// 8 bytes framing, 8 per numeric column, and 2 (the length header) per
// string column. String payload bytes are accounted separately by
// Batch.WireBytes.
func (s *Schema) FixedWireBytes() int64 {
	if s.wireFixed == 0 {
		var n int64 = 8 // framing
		for i := range s.Columns {
			if s.Columns[i].Type == ColString {
				n += 2
			} else {
				n += 8
			}
		}
		s.wireFixed = n
	}
	return s.wireFixed
}

// Col returns the index of the named column, or -1.
func (s *Schema) Col(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

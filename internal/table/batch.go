package table

import (
	"encoding/binary"
	"fmt"
	"math"

	"wattdb/internal/keycodec"
)

// Batch is a columnar batch of rows: one typed vector per schema column
// (int64 and float64 columns are plain slices; string columns store
// [start, end) offset pairs into a byte arena shared by all string columns
// of the batch). The representation exists so the executor can decode,
// filter, project, and ship records without boxing column values into
// interfaces — a warm Batch is refilled with zero allocations.
//
// A Batch is bound to its Schema by Init (or the first AppendDecoded /
// AppendRow through NewBatch). All accessors take (column, row) positions;
// they do not bounds-check beyond what slice indexing provides.
type Batch struct {
	Schema *Schema

	n     int
	cols  []colVec
	arena []byte
}

// colVec is one column's storage; exactly one field is used, selected by
// the column's type. Strings store 2 offsets per row: arena[off[2i]:off[2i+1]].
type colVec struct {
	ints   []int64
	floats []float64
	off    []uint32
}

// NewBatch returns an empty batch bound to s.
func NewBatch(s *Schema) *Batch {
	b := &Batch{}
	b.Init(s)
	return b
}

// Init binds b to s, resetting any previous contents. Rebinding to the same
// schema keeps the column vectors' capacity.
func (b *Batch) Init(s *Schema) {
	if b.Schema == s && b.cols != nil {
		b.Reset()
		return
	}
	b.Schema = s
	if cap(b.cols) >= len(s.Columns) {
		b.cols = b.cols[:len(s.Columns)]
		for i := range b.cols {
			b.cols[i] = colVec{}
		}
	} else {
		b.cols = make([]colVec, len(s.Columns))
	}
	b.n = 0
	b.arena = b.arena[:0]
}

// Reset empties the batch, keeping all backing storage for reuse.
func (b *Batch) Reset() {
	for i := range b.cols {
		c := &b.cols[i]
		c.ints = c.ints[:0]
		c.floats = c.floats[:0]
		c.off = c.off[:0]
	}
	b.n = 0
	b.arena = b.arena[:0]
}

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// Int returns column col of row i (column type must be ColInt64).
func (b *Batch) Int(col, i int) int64 { return b.cols[col].ints[i] }

// SetInt overwrites column col of row i.
func (b *Batch) SetInt(col, i int, v int64) { b.cols[col].ints[i] = v }

// Float returns column col of row i (column type must be ColFloat64).
func (b *Batch) Float(col, i int) float64 { return b.cols[col].floats[i] }

// SetFloat overwrites column col of row i.
func (b *Batch) SetFloat(col, i int, v float64) { b.cols[col].floats[i] = v }

// Bytes returns the string bytes of column col, row i, aliasing the batch's
// arena: valid until the batch is reset or reused.
func (b *Batch) Bytes(col, i int) []byte {
	off := b.cols[col].off
	return b.arena[off[2*i]:off[2*i+1]]
}

// String returns column col of row i as a string (copies the bytes).
func (b *Batch) String(col, i int) string { return string(b.Bytes(col, i)) }

// Value returns column col of row i boxed into an interface (allocates for
// most values; columnar consumers should prefer the typed accessors).
func (b *Batch) Value(col, i int) any {
	switch b.Schema.Columns[col].Type {
	case ColInt64:
		return b.Int(col, i)
	case ColFloat64:
		return b.Float(col, i)
	default:
		return b.String(col, i)
	}
}

// Row materialises row i as a boxed Row (compatibility path; allocates).
func (b *Batch) Row(i int) Row {
	row := make(Row, len(b.Schema.Columns))
	for c := range b.Schema.Columns {
		row[c] = b.Value(c, i)
	}
	return row
}

// AppendRow appends a boxed Row, type-checking each value against the
// schema.
func (b *Batch) AppendRow(row Row) error {
	s := b.Schema
	if len(row) != len(s.Columns) {
		return fmt.Errorf("table %s: row has %d values, want %d", s.Name, len(row), len(s.Columns))
	}
	arenaLen := len(b.arena)
	for c := range s.Columns {
		col := &s.Columns[c]
		v := &b.cols[c]
		switch col.Type {
		case ColInt64:
			iv, ok := row[c].(int64)
			if !ok {
				b.rollback(arenaLen)
				return fmt.Errorf("table %s: col %s: want int64, got %T", s.Name, col.Name, row[c])
			}
			v.ints = append(v.ints, iv)
		case ColFloat64:
			fv, ok := row[c].(float64)
			if !ok {
				b.rollback(arenaLen)
				return fmt.Errorf("table %s: col %s: want float64, got %T", s.Name, col.Name, row[c])
			}
			v.floats = append(v.floats, fv)
		case ColString:
			sv, ok := row[c].(string)
			if !ok {
				b.rollback(arenaLen)
				return fmt.Errorf("table %s: col %s: want string, got %T", s.Name, col.Name, row[c])
			}
			start := uint32(len(b.arena))
			b.arena = append(b.arena, sv...)
			v.off = append(v.off, start, uint32(len(b.arena)))
		}
	}
	b.n++
	return nil
}

// rollback truncates partially appended column vectors back to the batch's
// committed row count after a failed append.
func (b *Batch) rollback(arenaLen int) {
	for c := range b.cols {
		v := &b.cols[c]
		if len(v.ints) > b.n {
			v.ints = v.ints[:b.n]
		}
		if len(v.floats) > b.n {
			v.floats = v.floats[:b.n]
		}
		if len(v.off) > 2*b.n {
			v.off = v.off[:2*b.n]
		}
	}
	b.arena = b.arena[:arenaLen]
}

// AppendFrom appends row i of src (same schema) to b.
func (b *Batch) AppendFrom(src *Batch, i int) {
	for c := range b.Schema.Columns {
		dv, sv := &b.cols[c], &src.cols[c]
		switch b.Schema.Columns[c].Type {
		case ColInt64:
			dv.ints = append(dv.ints, sv.ints[i])
		case ColFloat64:
			dv.floats = append(dv.floats, sv.floats[i])
		case ColString:
			start := uint32(len(b.arena))
			b.arena = append(b.arena, src.Bytes(c, i)...)
			dv.off = append(dv.off, start, uint32(len(b.arena)))
		}
	}
	b.n++
}

// AppendBatch appends all rows of src (same schema) to b with column-wise
// copies.
func (b *Batch) AppendBatch(src *Batch) {
	for c := range b.Schema.Columns {
		dv, sv := &b.cols[c], &src.cols[c]
		switch b.Schema.Columns[c].Type {
		case ColInt64:
			dv.ints = append(dv.ints, sv.ints[:src.n]...)
		case ColFloat64:
			dv.floats = append(dv.floats, sv.floats[:src.n]...)
		case ColString:
			for i := 0; i < src.n; i++ {
				start := uint32(len(b.arena))
				b.arena = append(b.arena, src.Bytes(c, i)...)
				dv.off = append(dv.off, start, uint32(len(b.arena)))
			}
		}
	}
	b.n += src.n
}

// AppendColumns appends all rows of src, keeping only the columns listed in
// cols (position-matched to b's schema, which must have the same column
// types as the selected src columns).
func (b *Batch) AppendColumns(src *Batch, cols []int) {
	for j, c := range cols {
		dv, sv := &b.cols[j], &src.cols[c]
		switch b.Schema.Columns[j].Type {
		case ColInt64:
			dv.ints = append(dv.ints, sv.ints[:src.n]...)
		case ColFloat64:
			dv.floats = append(dv.floats, sv.floats[:src.n]...)
		case ColString:
			for i := 0; i < src.n; i++ {
				start := uint32(len(b.arena))
				b.arena = append(b.arena, src.Bytes(c, i)...)
				dv.off = append(dv.off, start, uint32(len(b.arena)))
			}
		}
	}
	b.n += src.n
}

// MoveRow copies row src over row dst in place (dst <= src). String bytes
// stay where they are in the arena; only the offset pair moves. Used for
// in-place filter compaction.
func (b *Batch) MoveRow(dst, src int) {
	for c := range b.Schema.Columns {
		v := &b.cols[c]
		switch b.Schema.Columns[c].Type {
		case ColInt64:
			v.ints[dst] = v.ints[src]
		case ColFloat64:
			v.floats[dst] = v.floats[src]
		case ColString:
			v.off[2*dst], v.off[2*dst+1] = v.off[2*src], v.off[2*src+1]
		}
	}
}

// Truncate drops all rows past n (arena bytes of dropped rows are reclaimed
// at the next Reset).
func (b *Batch) Truncate(n int) {
	if n >= b.n {
		return
	}
	for c := range b.cols {
		v := &b.cols[c]
		if len(v.ints) > n {
			v.ints = v.ints[:n]
		}
		if len(v.floats) > n {
			v.floats = v.floats[:n]
		}
		if len(v.off) > 2*n {
			v.off = v.off[:2*n]
		}
	}
	b.n = n
}

// CopyFrom makes b a deep copy of src, reusing b's backing storage. It is
// how operators that hold batches across Next calls (e.g. the asynchronous
// Buffer) take ownership of a batch they did not produce.
func (b *Batch) CopyFrom(src *Batch) {
	b.Init(src.Schema)
	b.arena = append(b.arena[:0], src.arena...)
	for c := range b.cols {
		dv, sv := &b.cols[c], &src.cols[c]
		dv.ints = append(dv.ints[:0], sv.ints...)
		dv.floats = append(dv.floats[:0], sv.floats...)
		dv.off = append(dv.off[:0], sv.off...)
	}
	b.n = src.n
}

// WireBytes estimates the batch's wire size for network cost accounting:
// the schema's cached fixed-width footprint per row plus the live string
// bytes — no per-value interface walk.
func (b *Batch) WireBytes() int64 {
	total := int64(b.n) * b.Schema.FixedWireBytes()
	for c := range b.Schema.Columns {
		if b.Schema.Columns[c].Type != ColString {
			continue
		}
		off := b.cols[c].off
		for i := 0; i < b.n; i++ {
			total += int64(off[2*i+1] - off[2*i])
		}
	}
	return total
}

// AppendDecoded parses one row produced by EncodeRow / AppendEncoded and
// appends it to b. It is the executor's decode-into path: refilling a warm
// batch allocates nothing.
func (s *Schema) AppendDecoded(b *Batch, buf []byte) error {
	if b.Schema == nil {
		b.Init(s)
	}
	arenaLen := len(b.arena)
	for c := range s.Columns {
		col := &s.Columns[c]
		v := &b.cols[c]
		switch col.Type {
		case ColInt64:
			if len(buf) < 8 {
				b.rollback(arenaLen)
				return fmt.Errorf("table %s: truncated row at col %s", s.Name, col.Name)
			}
			v.ints = append(v.ints, int64(binary.LittleEndian.Uint64(buf)))
			buf = buf[8:]
		case ColFloat64:
			if len(buf) < 8 {
				b.rollback(arenaLen)
				return fmt.Errorf("table %s: truncated row at col %s", s.Name, col.Name)
			}
			v.floats = append(v.floats, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
			buf = buf[8:]
		case ColString:
			if len(buf) < 2 {
				b.rollback(arenaLen)
				return fmt.Errorf("table %s: truncated row at col %s", s.Name, col.Name)
			}
			n := int(binary.LittleEndian.Uint16(buf))
			buf = buf[2:]
			if len(buf) < n {
				b.rollback(arenaLen)
				return fmt.Errorf("table %s: truncated string at col %s", s.Name, col.Name)
			}
			start := uint32(len(b.arena))
			b.arena = append(b.arena, buf[:n]...)
			v.off = append(v.off, start, uint32(len(b.arena)))
			buf = buf[n:]
		}
	}
	if len(buf) != 0 {
		b.rollback(arenaLen)
		return fmt.Errorf("table %s: %d trailing bytes", s.Name, len(buf))
	}
	b.n++
	return nil
}

// AppendEncoded serialises row i of b in EncodeRow's format, appending to
// dst (which may be nil or a reused buffer) and returning the extended
// slice.
func (s *Schema) AppendEncoded(dst []byte, b *Batch, i int) ([]byte, error) {
	for c := range s.Columns {
		col := &s.Columns[c]
		switch col.Type {
		case ColInt64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(b.Int(c, i)))
		case ColFloat64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Float(c, i)))
		case ColString:
			sv := b.Bytes(c, i)
			if len(sv) > 0xFFFF {
				return dst, fmt.Errorf("table %s: col %s: string too long", s.Name, col.Name)
			}
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(sv)))
			dst = append(dst, sv...)
		}
	}
	return dst, nil
}

// AppendKey encodes row i's primary key in order-preserving form, appending
// to dst.
func (s *Schema) AppendKey(dst []byte, b *Batch, i int) ([]byte, error) {
	for c := 0; c < s.KeyCols; c++ {
		switch s.Columns[c].Type {
		case ColInt64:
			dst = keycodec.AppendInt64(dst, b.Int(c, i))
		case ColString:
			dst = keycodec.AppendBytes(dst, b.Bytes(c, i))
		case ColFloat64:
			dst = keycodec.AppendFloat64(dst, b.Float(c, i))
		}
	}
	return dst, nil
}

// AppendColsKey encodes the listed columns of row i into dst using the
// order-preserving key codec. Each column encoding is self-delimiting, so the
// concatenation is injective: two rows produce the same bytes iff they agree
// on every listed column. The executor's hash and merge joins use it as the
// composite join key for multi-column and string-typed equality.
func (b *Batch) AppendColsKey(dst []byte, cols []int, i int) []byte {
	for _, c := range cols {
		switch b.Schema.Columns[c].Type {
		case ColInt64:
			dst = keycodec.AppendInt64(dst, b.Int(c, i))
		case ColString:
			dst = keycodec.AppendBytes(dst, b.Bytes(c, i))
		case ColFloat64:
			dst = keycodec.AppendFloat64(dst, b.Float(c, i))
		}
	}
	return dst
}

// JoinSchemas derives the output schema of a join: left columns followed by
// right columns. The result is an executor-internal schema (never stored);
// KeyCols is nominal.
func JoinSchemas(name string, l, r *Schema) *Schema {
	out := &Schema{Name: name, KeyCols: 1}
	out.Columns = append(out.Columns, l.Columns...)
	out.Columns = append(out.Columns, r.Columns...)
	return out
}

// AppendJoined appends the concatenation of row li of l and row ri of r to b,
// whose schema must be JoinSchemas(l.Schema, r.Schema). Column-typed copies;
// refilling a warm batch allocates nothing.
func (b *Batch) AppendJoined(l *Batch, li int, r *Batch, ri int) {
	nl := len(l.Schema.Columns)
	for c := range b.Schema.Columns {
		src, si, sc := l, li, c
		if c >= nl {
			src, si, sc = r, ri, c-nl
		}
		dv, sv := &b.cols[c], &src.cols[sc]
		switch b.Schema.Columns[c].Type {
		case ColInt64:
			dv.ints = append(dv.ints, sv.ints[si])
		case ColFloat64:
			dv.floats = append(dv.floats, sv.floats[si])
		case ColString:
			start := uint32(len(b.arena))
			b.arena = append(b.arena, src.Bytes(sc, si)...)
			dv.off = append(dv.off, start, uint32(len(b.arena)))
		}
	}
	b.n++
}

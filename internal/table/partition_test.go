package table

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/wal"
)

// memFactory is a zero-cost in-memory PagerFactory for table-layer tests.
type memFactory struct {
	nextID   storage.SegID
	pageSize int
	segPages int
	dropped  []storage.SegID
}

func (f *memFactory) NewSegment(*sim.Proc) (*storage.Segment, error) {
	f.nextID++
	return storage.NewSegment(f.nextID, f.pageSize, f.segPages), nil
}

func (f *memFactory) Pager(seg *storage.Segment) btree.Pager { return btree.MemPager{Seg: seg} }

func (f *memFactory) DropSegment(_ *sim.Proc, id storage.SegID) { f.dropped = append(f.dropped, id) }

type nullDevice struct{}

func (nullDevice) Append(*sim.Proc, int64) {}

type fixture struct {
	env    *sim.Env
	oracle *cc.Oracle
	deps   Deps
}

func newFixture(segPages int) *fixture {
	env := sim.NewEnv(1)
	oracle := cc.NewOracle()
	deps := Deps{
		Env:         env,
		Oracle:      oracle,
		Locks:       cc.NewLockManager(env),
		Log:         wal.NewLog(env, nullDevice{}),
		Factory:     &memFactory{pageSize: 512, segPages: segPages},
		LockTimeout: time.Second,
		PageSize:    512,
	}
	return &fixture{env: env, oracle: oracle, deps: deps}
}

func (fx *fixture) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	fx.env.Spawn("test", fn)
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func intKey(v int64) []byte { return keycodec.Int64Key(v) }

func simpleSchema() *Schema {
	return &Schema{ID: 1, Name: "t", Columns: []Column{{"k", ColInt64}, {"v", ColString}}, KeyCols: 1}
}

func newPart(fx *fixture, scheme Scheme) *Partition {
	return NewPartition(1, simpleSchema(), scheme, nil, nil, fx.deps)
}

func TestMVCCPutGetCommit(t *testing.T) {
	for _, scheme := range []Scheme{Physical, Logical, Physiological} {
		t.Run(scheme.String(), func(t *testing.T) {
			fx := newFixture(64)
			defer fx.env.Close()
			pt := newPart(fx, scheme)
			fx.run(t, func(p *sim.Proc) {
				w := fx.oracle.Begin(cc.SnapshotIsolation)
				if err := pt.Put(p, w, intKey(1), []byte("hello")); err != nil {
					t.Fatal(err)
				}
				// Own uncommitted write visible to self.
				if v, ok, _ := pt.Get(p, w, intKey(1)); !ok || string(v) != "hello" {
					t.Fatalf("self-read = %q %v", v, ok)
				}
				// Invisible to others.
				r := fx.oracle.Begin(cc.SnapshotIsolation)
				if _, ok, _ := pt.Get(p, r, intKey(1)); ok {
					t.Fatal("uncommitted write visible")
				}
				if err := CommitTxn(p, w, pt); err != nil {
					t.Fatal(err)
				}
				// Still invisible to the old snapshot.
				if _, ok, _ := pt.Get(p, r, intKey(1)); ok {
					t.Fatal("commit leaked into older snapshot")
				}
				// Visible to a new one.
				r2 := fx.oracle.Begin(cc.SnapshotIsolation)
				if v, ok, _ := pt.Get(p, r2, intKey(1)); !ok || string(v) != "hello" {
					t.Fatalf("post-commit read = %q %v", v, ok)
				}
			})
		})
	}
}

func TestMVCCUpdatePreservesOldVersionForReader(t *testing.T) {
	fx := newFixture(64)
	defer fx.env.Close()
	pt := newPart(fx, Physiological)
	fx.run(t, func(p *sim.Proc) {
		w := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Put(p, w, intKey(7), []byte("v1"))
		CommitTxn(p, w, pt)

		reader := fx.oracle.Begin(cc.SnapshotIsolation)
		w2 := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Put(p, w2, intKey(7), []byte("v2"))
		CommitTxn(p, w2, pt)

		if v, ok, _ := pt.Get(p, reader, intKey(7)); !ok || string(v) != "v1" {
			t.Fatalf("reader = %q %v, want v1", v, ok)
		}
		late := fx.oracle.Begin(cc.SnapshotIsolation)
		if v, ok, _ := pt.Get(p, late, intKey(7)); !ok || string(v) != "v2" {
			t.Fatalf("late = %q %v, want v2", v, ok)
		}
	})
}

func TestMVCCAbortDiscards(t *testing.T) {
	fx := newFixture(64)
	defer fx.env.Close()
	pt := newPart(fx, Physiological)
	fx.run(t, func(p *sim.Proc) {
		w := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Put(p, w, intKey(1), []byte("x"))
		AbortTxn(p, w, pt)
		r := fx.oracle.Begin(cc.SnapshotIsolation)
		if _, ok, _ := pt.Get(p, r, intKey(1)); ok {
			t.Fatal("aborted write visible")
		}
		if n, _ := pt.RecordCount(p); n != 0 {
			t.Fatalf("count = %d", n)
		}
	})
}

func TestMVCCDeleteAndVacuum(t *testing.T) {
	fx := newFixture(64)
	defer fx.env.Close()
	pt := newPart(fx, Physiological)
	fx.run(t, func(p *sim.Proc) {
		w := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Put(p, w, intKey(1), []byte("x"))
		CommitTxn(p, w, pt)

		oldReader := fx.oracle.Begin(cc.SnapshotIsolation)
		d := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Delete(p, d, intKey(1))
		CommitTxn(p, d, pt)

		// Old reader still sees the record; new one does not.
		if v, ok, _ := pt.Get(p, oldReader, intKey(1)); !ok || string(v) != "x" {
			t.Fatalf("old reader = %q %v", v, ok)
		}
		late := fx.oracle.Begin(cc.SnapshotIsolation)
		if _, ok, _ := pt.Get(p, late, intKey(1)); ok {
			t.Fatal("deleted record visible to new txn")
		}
		// Vacuum with the old reader active keeps the tombstone.
		if n, _ := pt.Vacuum(p, fx.oracle.Watermark()); n != 0 {
			t.Fatal("vacuum removed a tombstone an active snapshot may need")
		}
		fx.oracle.Abort(oldReader)
		fx.oracle.Abort(late)
		if n, _ := pt.Vacuum(p, fx.oracle.Watermark()); n != 1 {
			t.Fatalf("vacuum removed %d tombstones, want 1", n)
		}
	})
}

func TestMVCCWriteConflict(t *testing.T) {
	fx := newFixture(64)
	defer fx.env.Close()
	pt := newPart(fx, Physiological)
	fx.run(t, func(p *sim.Proc) {
		w := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Put(p, w, intKey(1), []byte("v0"))
		CommitTxn(p, w, pt)

		t1 := fx.oracle.Begin(cc.SnapshotIsolation)
		t2 := fx.oracle.Begin(cc.SnapshotIsolation)
		if err := pt.Put(p, t1, intKey(1), []byte("t1")); err != nil {
			t.Fatal(err)
		}
		if err := CommitTxn(p, t1, pt); err != nil {
			t.Fatal(err)
		}
		err := pt.Put(p, t2, intKey(1), []byte("t2"))
		if err != cc.ErrWriteConflict {
			t.Fatalf("err = %v, want write conflict", err)
		}
		AbortTxn(p, t2, pt)
	})
}

func TestScanVisibilityAndOrder(t *testing.T) {
	for _, scheme := range []Scheme{Logical, Physiological} {
		t.Run(scheme.String(), func(t *testing.T) {
			fx := newFixture(64)
			defer fx.env.Close()
			pt := newPart(fx, scheme)
			fx.run(t, func(p *sim.Proc) {
				w := fx.oracle.Begin(cc.SnapshotIsolation)
				for i := 0; i < 50; i++ {
					pt.Put(p, w, intKey(int64(i)), []byte(fmt.Sprintf("v%d", i)))
				}
				CommitTxn(p, w, pt)
				// Delete evens; update some odds; leave both uncommitted.
				u := fx.oracle.Begin(cc.SnapshotIsolation)
				pt.Delete(p, u, intKey(4))
				pt.Put(p, u, intKey(5), []byte("changed"))

				r := fx.oracle.Begin(cc.SnapshotIsolation)
				var keys []int64
				err := pt.Scan(p, r, intKey(0), intKey(10), func(k, v []byte) bool {
					d, _, _ := keycodec.DecodeInt64(k)
					keys = append(keys, d)
					if d == 5 && string(v) != "v5" {
						t.Errorf("key 5 = %q, want v5 (uncommitted change leaked)", v)
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(keys) != 10 {
					t.Fatalf("scan saw %d keys, want 10: %v", len(keys), keys)
				}
				for i, k := range keys {
					if k != int64(i) {
						t.Fatalf("scan order wrong: %v", keys)
					}
				}
				AbortTxn(p, u, pt)
			})
		})
	}
}

func TestLockingModeBlocksConflictingWrite(t *testing.T) {
	fx := newFixture(64)
	defer fx.env.Close()
	pt := newPart(fx, Logical)
	var secondDone time.Duration
	fx.env.Spawn("t1", func(p *sim.Proc) {
		txn := fx.oracle.Begin(cc.Locking)
		if err := pt.Put(p, txn, intKey(1), []byte("a")); err != nil {
			t.Error(err)
		}
		p.Sleep(3 * time.Second)
		if err := CommitTxn(p, txn, pt); err != nil {
			t.Error(err)
		}
	})
	fx.env.Spawn("t2", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		txn := fx.oracle.Begin(cc.Locking)
		fx.deps.LockTimeout = time.Minute
		txn2deps := pt.deps
		txn2deps.LockTimeout = time.Minute
		pt.deps = txn2deps
		if err := pt.Put(p, txn, intKey(1), []byte("b")); err != nil {
			t.Error(err)
		}
		secondDone = p.Now()
		CommitTxn(p, txn, pt)
	})
	if err := fx.env.Run(); err != nil {
		t.Fatal(err)
	}
	if secondDone < 3*time.Second {
		t.Fatalf("conflicting write finished at %v, want >= 3s", secondDone)
	}
	// Final value is t2's.
	fx.env.Spawn("check", func(p *sim.Proc) {
		r := fx.oracle.Begin(cc.Locking)
		if v, ok, _ := pt.Get(p, r, intKey(1)); !ok || string(v) != "b" {
			t.Errorf("final = %q %v", v, ok)
		}
		fx.deps.Locks.ReleaseAll(r)
		fx.oracle.Abort(r)
	})
	fx.env.Run()
}

func TestLockingAbortRestoresOldValue(t *testing.T) {
	fx := newFixture(64)
	defer fx.env.Close()
	pt := newPart(fx, Logical)
	fx.run(t, func(p *sim.Proc) {
		w := fx.oracle.Begin(cc.Locking)
		pt.Put(p, w, intKey(1), []byte("orig"))
		CommitTxn(p, w, pt)

		bad := fx.oracle.Begin(cc.Locking)
		pt.Put(p, bad, intKey(1), []byte("scribble"))
		pt.Delete(p, bad, intKey(1))
		AbortTxn(p, bad, pt)

		r := fx.oracle.Begin(cc.Locking)
		if v, ok, _ := pt.Get(p, r, intKey(1)); !ok || string(v) != "orig" {
			t.Fatalf("after abort = %q %v, want orig", v, ok)
		}
		fx.deps.Locks.ReleaseAll(r)
	})
}

func TestPhysiologicalSegmentSplitOnOverflow(t *testing.T) {
	fx := newFixture(16) // tiny segments: 16 pages of 512 B
	defer fx.env.Close()
	pt := newPart(fx, Physiological)
	fx.run(t, func(p *sim.Proc) {
		const n = 300
		for i := 0; i < n; i++ {
			w := fx.oracle.Begin(cc.SnapshotIsolation)
			if err := pt.Put(p, w, intKey(int64(i)), bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
				t.Fatal(err)
			}
			if err := CommitTxn(p, w, pt); err != nil {
				t.Fatal(err)
			}
		}
		if len(pt.Segments()) < 2 {
			t.Fatalf("expected splits, have %d segments", len(pt.Segments()))
		}
		// Ranges must tile the key space without overlap.
		segs := pt.Segments()
		for i := 1; i < len(segs); i++ {
			if !bytes.Equal(segs[i-1].High, segs[i].Low) {
				t.Fatalf("segment ranges not contiguous at %d", i)
			}
		}
		if got, _ := pt.RecordCount(p); got != n {
			t.Fatalf("count = %d, want %d", got, n)
		}
		// Every record still readable.
		r := fx.oracle.Begin(cc.SnapshotIsolation)
		for i := 0; i < n; i += 17 {
			if _, ok, err := pt.Get(p, r, intKey(int64(i))); !ok || err != nil {
				t.Fatalf("get %d after splits: %v %v", i, ok, err)
			}
		}
	})
}

func TestSpanningPartitionGrowsSegments(t *testing.T) {
	fx := newFixture(16)
	defer fx.env.Close()
	pt := newPart(fx, Logical)
	fx.run(t, func(p *sim.Proc) {
		const n = 400
		w := fx.oracle.Begin(cc.SnapshotIsolation)
		for i := 0; i < n; i++ {
			if err := pt.Put(p, w, intKey(int64(i)), bytes.Repeat([]byte{1}, 40)); err != nil {
				t.Fatal(err)
			}
		}
		if err := CommitTxn(p, w, pt); err != nil {
			t.Fatal(err)
		}
		if len(pt.Segments()) < 2 {
			t.Fatalf("spanning partition did not grow: %d segments", len(pt.Segments()))
		}
		if got, _ := pt.RecordCount(p); got != n {
			t.Fatalf("count = %d", got)
		}
	})
}

func TestDetachAdoptMovesMiniPartition(t *testing.T) {
	fx := newFixture(16)
	defer fx.env.Close()
	schema := simpleSchema()
	src := NewPartition(1, schema, Physiological, nil, intKey(100), fx.deps)
	dst := NewPartition(2, schema, Physiological, intKey(100), nil, fx.deps)
	fx.run(t, func(p *sim.Proc) {
		// Load keys 0..99 into src (it will split into multiple segments).
		for i := 0; i < 100; i++ {
			w := fx.oracle.Begin(cc.SnapshotIsolation)
			pt := src
			if err := pt.Put(p, w, intKey(int64(i)), bytes.Repeat([]byte{2}, 120)); err != nil {
				t.Fatal(err)
			}
			CommitTxn(p, w, pt)
		}
		if len(src.Segments()) < 2 {
			t.Fatalf("need >= 2 segments, have %d", len(src.Segments()))
		}
		oldReader := fx.oracle.Begin(cc.SnapshotIsolation)

		// Move the last mini-partition to dst (clone = shipped copy).
		h := src.Segments()[len(src.Segments())-1]
		movedLow := h.Low
		moveTS := fx.oracle.Watermark() // any ts >= oldReader.Begin works
		clone := h.Seg.Clone(h.Seg.ID + 1000)
		if err := src.DetachSegment(h, fx.deps.Oracle.Begin(cc.SnapshotIsolation).Begin); err != nil {
			t.Fatal(err)
		}
		_ = moveTS
		if _, err := dst.AdoptSegment(clone); err != nil {
			t.Fatal(err)
		}

		// New transactions read the moved keys at dst.
		probe, _, _ := keycodec.DecodeInt64(movedLow)
		r := fx.oracle.Begin(cc.SnapshotIsolation)
		if _, ok, err := dst.Get(p, r, intKey(probe)); !ok || err != nil {
			t.Fatalf("dst get = %v %v", ok, err)
		}
		// ...and writes at dst succeed.
		w := fx.oracle.Begin(cc.SnapshotIsolation)
		if err := dst.Put(p, w, intKey(probe), []byte("updated-at-dst")); err != nil {
			t.Fatal(err)
		}
		CommitTxn(p, w, dst)

		// Writes of moved keys at src are refused.
		w2 := fx.oracle.Begin(cc.SnapshotIsolation)
		err := src.Put(p, w2, intKey(probe), []byte("stale"))
		if _, ok := err.(ErrNotOwned); !ok {
			t.Fatalf("src write err = %v, want ErrNotOwned", err)
		}
		AbortTxn(p, w2, src)

		// The pre-move reader still reads the key at src (ghost).
		if v, ok, err := src.Get(p, oldReader, intKey(probe)); !ok || err != nil || string(v) == "updated-at-dst" {
			t.Fatalf("ghost read = %q %v %v", v, ok, err)
		}
		// Full scan at src for the old reader still sees all 100 records.
		n := 0
		if err := src.Scan(p, oldReader, nil, nil, func(_, _ []byte) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 100 {
			t.Fatalf("old reader scan saw %d records, want 100", n)
		}

		// Drop the ghost once the old reader is done.
		fx.oracle.Abort(oldReader)
		if err := src.DropGhost(p, h.Seg.ID); err != nil {
			t.Fatal(err)
		}
		if src.Ghosts() != 0 {
			t.Fatal("ghost not dropped")
		}
	})
}

func TestRecoveryRoundTripThroughPartition(t *testing.T) {
	fx := newFixture(64)
	defer fx.env.Close()
	pt := newPart(fx, Physiological)
	fx.run(t, func(p *sim.Proc) {
		w := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Put(p, w, intKey(1), []byte("v1"))
		pt.Put(p, w, intKey(2), []byte("v2"))
		CommitTxn(p, w, pt)
		d := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Delete(p, d, intKey(2))
		CommitTxn(p, d, pt)

		// Rebuild a fresh partition from the log.
		fresh := NewPartition(1, simpleSchema(), Physiological, nil, nil, fx.deps)
		_, _, err := wal.Recover(p, fx.deps.Log.Iter(), map[uint64]wal.Target{1: fresh})
		if err != nil {
			t.Fatal(err)
		}
		r := fx.oracle.Begin(cc.SnapshotIsolation)
		if v, ok, _ := fresh.Get(p, r, intKey(1)); !ok || string(v) != "v1" {
			t.Fatalf("recovered k1 = %q %v", v, ok)
		}
		if _, ok, _ := fresh.Get(p, r, intKey(2)); ok {
			t.Fatal("recovered partition resurrected deleted key")
		}
	})
}

func TestStorageBytesGrowWithVersions(t *testing.T) {
	fx := newFixture(64)
	defer fx.env.Close()
	pt := newPart(fx, Physiological)
	fx.run(t, func(p *sim.Proc) {
		w := fx.oracle.Begin(cc.SnapshotIsolation)
		pt.Put(p, w, intKey(1), bytes.Repeat([]byte{1}, 100))
		CommitTxn(p, w, pt)
		base := pt.StorageBytes()
		// Hold a reader so versions are retained, then update repeatedly.
		reader := fx.oracle.Begin(cc.SnapshotIsolation)
		for i := 0; i < 10; i++ {
			u := fx.oracle.Begin(cc.SnapshotIsolation)
			pt.Put(p, u, intKey(1), bytes.Repeat([]byte{byte(i)}, 100))
			CommitTxn(p, u, pt)
		}
		if pt.StorageBytes() <= base {
			t.Fatalf("storage did not grow with retained versions: %d <= %d", pt.StorageBytes(), base)
		}
		fx.oracle.Abort(reader)
		pt.Vacuum(p, fx.oracle.Watermark())
		if pt.Store.VersionBytes() != 0 {
			t.Fatalf("version bytes after vacuum = %d", pt.Store.VersionBytes())
		}
	})
}

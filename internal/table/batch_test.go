package table

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestBatchDecodeMatchesDecodeRow round-trips random rows through both
// representations: AppendEncodedRow must equal EncodeRow's bytes,
// AppendDecoded into a batch must reconstruct the same values the boxed
// DecodeRow sees, and AppendEncoded from the batch must reproduce the
// original encoding byte-for-byte.
func TestBatchDecodeMatchesDecodeRow(t *testing.T) {
	s := testSchema()
	b := NewBatch(s)
	var encBuf []byte
	f := func(id, branch int64, name string, balance float64) bool {
		if math.IsNaN(balance) {
			return true
		}
		row := Row{id, branch, name, balance}
		enc, err := s.EncodeRow(row)
		if err != nil {
			return false
		}
		encBuf, err = s.AppendEncodedRow(encBuf[:0], row)
		if err != nil || !bytes.Equal(encBuf, enc) {
			return false
		}
		b.Reset()
		if err := s.AppendDecoded(b, enc); err != nil || b.Len() != 1 {
			return false
		}
		if b.Int(0, 0) != id || b.Int(1, 0) != branch ||
			b.String(2, 0) != name || b.Float(3, 0) != balance {
			return false
		}
		reenc, err := s.AppendEncoded(nil, b, 0)
		if err != nil || !bytes.Equal(reenc, enc) {
			return false
		}
		got := b.Row(0)
		want, err := s.DecodeRow(enc)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchKeyMatchesSchemaKey checks AppendKey against the Row-based key
// encoder.
func TestBatchKeyMatchesSchemaKey(t *testing.T) {
	s := testSchema()
	b := NewBatch(s)
	f := func(id, branch int64, name string, balance float64) bool {
		if math.IsNaN(balance) {
			return true
		}
		row := Row{id, branch, name, balance}
		want, err := s.Key(row)
		if err != nil {
			return false
		}
		b.Reset()
		if err := b.AppendRow(row); err != nil {
			return false
		}
		got, err := s.AppendKey(nil, b, 0)
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchMultiRowOps exercises the batch manipulation primitives the
// executor relies on: append, move-compaction, truncation, column
// projection, whole-batch append, and deep copy.
func TestBatchMultiRowOps(t *testing.T) {
	s := testSchema()
	b := NewBatch(s)
	const n = 37
	for i := 0; i < n; i++ {
		row := Row{int64(i), int64(i % 5), string(rune('a' + i%26)), float64(i) / 2}
		if err := b.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != n {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.WireBytes(); got <= 0 {
		t.Fatalf("WireBytes = %d", got)
	}

	// Deep copy, then mutate the copy: the original must not change.
	cp := &Batch{}
	cp.CopyFrom(b)
	cp.SetInt(0, 3, -99)
	if b.Int(0, 3) != 3 {
		t.Fatal("CopyFrom aliases the source")
	}
	if cp.Len() != n || cp.String(2, 7) != b.String(2, 7) {
		t.Fatal("CopyFrom mismatch")
	}

	// In-place compaction: keep even ids.
	w := 0
	for i := 0; i < b.Len(); i++ {
		if b.Int(0, i)%2 == 0 {
			if w != i {
				b.MoveRow(w, i)
			}
			w++
		}
	}
	b.Truncate(w)
	if b.Len() != (n+1)/2 {
		t.Fatalf("after filter Len = %d", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		if b.Int(0, i) != int64(2*i) {
			t.Fatalf("row %d id = %d", i, b.Int(0, i))
		}
		if b.String(2, i) != string(rune('a'+(2*i)%26)) {
			t.Fatalf("row %d name = %q", i, b.String(2, i))
		}
	}

	// Projection: name + balance only.
	ps := &Schema{Name: "proj", KeyCols: 1, Columns: []Column{s.Columns[2], s.Columns[3]}}
	pb := NewBatch(ps)
	pb.AppendColumns(b, []int{2, 3})
	if pb.Len() != b.Len() || pb.String(0, 1) != b.String(2, 1) || pb.Float(1, 2) != b.Float(3, 2) {
		t.Fatal("AppendColumns mismatch")
	}

	// Whole-batch append doubles the row count.
	before := cp.Len()
	cp.AppendBatch(cp2(t, b))
	if cp.Len() != before+b.Len() {
		t.Fatalf("AppendBatch Len = %d", cp.Len())
	}
	if cp.String(2, before) != b.String(2, 0) {
		t.Fatal("AppendBatch row content mismatch")
	}
}

func cp2(t *testing.T, b *Batch) *Batch {
	t.Helper()
	out := &Batch{}
	out.CopyFrom(b)
	return out
}

// TestBatchDecodeErrors mirrors the DecodeRow error cases and checks a
// failed append leaves the batch unchanged.
func TestBatchDecodeErrors(t *testing.T) {
	s := testSchema()
	b := NewBatch(s)
	good, _ := s.EncodeRow(Row{int64(1), int64(2), "abc", 3.5})
	if err := s.AppendDecoded(b, good); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDecoded(b, []byte{1, 2, 3}); err == nil {
		t.Fatal("truncated row accepted")
	}
	if err := s.AppendDecoded(b, append(bytes.Clone(good), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if b.Len() != 1 || b.Int(0, 0) != 1 || b.String(2, 0) != "abc" {
		t.Fatal("failed decode corrupted the batch")
	}
	if err := b.AppendRow(Row{"nope", int64(0), "x", 0.0}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if b.Len() != 1 {
		t.Fatal("failed AppendRow changed row count")
	}
}

// TestBatchRefillZeroAlloc pins the decode-into contract: refilling a warm
// batch (including a string column, whose bytes land in the reused arena)
// allocates nothing.
func TestBatchRefillZeroAlloc(t *testing.T) {
	s := testSchema()
	b := NewBatch(s)
	var payloads [][]byte
	for i := 0; i < 64; i++ {
		enc, err := s.EncodeRow(Row{int64(i), int64(i % 3), "some-name-bytes", float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, enc)
	}
	refill := func() {
		b.Reset()
		for _, enc := range payloads {
			if err := s.AppendDecoded(b, enc); err != nil {
				t.Error(err)
				return
			}
		}
	}
	refill() // warm vectors and arena
	if allocs := testing.AllocsPerRun(100, refill); allocs != 0 {
		t.Fatalf("warm batch refill allocates %v objects/run, want 0", allocs)
	}
}

package table

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/wal"
)

// Scheme selects the partitioning technique (Sect. 4).
type Scheme int

const (
	// Physical: spanning tree, segments relocatable to remote disks,
	// ownership fixed (Sect. 4.1).
	Physical Scheme = iota
	// Logical: spanning tree, rebalancing moves records transactionally
	// (Sect. 4.2).
	Logical
	// Physiological: per-segment trees plus top index, rebalancing ships
	// segments and transfers ownership (Sect. 4.3).
	Physiological
)

// String returns the scheme's display name.
func (s Scheme) String() string {
	return [...]string{"physical", "logical", "physiological"}[s]
}

// PartID identifies a partition cluster-wide.
type PartID uint64

// PagerFactory supplies a partition with segments and buffered page access;
// implemented by the owning data node (and by plain in-memory fakes in
// tests).
type PagerFactory interface {
	// NewSegment allocates a fresh segment on one of the node's disks.
	NewSegment(p *sim.Proc) (*storage.Segment, error)
	// Pager returns buffered page access to seg.
	Pager(seg *storage.Segment) btree.Pager
	// DropSegment releases seg's storage.
	DropSegment(p *sim.Proc, id storage.SegID)
}

// Deps bundles the node services a partition operates with.
type Deps struct {
	Env     *sim.Env
	Oracle  *cc.Oracle
	Locks   *cc.LockManager
	Log     *wal.Log
	Factory PagerFactory
	// Compute charges CPU time on the owning node (nil: free).
	Compute func(p *sim.Proc, d time.Duration)
	// CPUPerOp is the CPU cost charged per index operation.
	CPUPerOp time.Duration
	// CPUPerTuple is the CPU cost charged per scanned record.
	CPUPerTuple time.Duration
	// LockTimeout bounds lock and write-intent waits (deadlock defence).
	LockTimeout time.Duration
	// PageSize is the page size segments will use (needed before the
	// first segment exists).
	PageSize int
}

func (d *Deps) compute(p *sim.Proc, t time.Duration) {
	if d.Compute != nil && t > 0 {
		d.Compute(p, t)
	}
}

// SegHandle is one segment serving a partition. Under physiological
// partitioning it is a mini-partition: Tree indexes exactly the records in
// [Low, High). Under the spanning schemes Tree is nil and the key bounds are
// unused.
type SegHandle struct {
	Seg   *storage.Segment
	Pager btree.Pager
	Tree  *btree.Tree
	Low   []byte
	High  []byte // exclusive; nil = unbounded
}

// Contains reports whether key falls in the handle's range.
func (h *SegHandle) Contains(key []byte) bool {
	if bytes.Compare(key, h.Low) < 0 {
		return false
	}
	return h.High == nil || bytes.Compare(key, h.High) < 0
}

type ghost struct {
	handle *SegHandle
	moveTS cc.Timestamp
}

// Stats counts partition activity (the per-partition monitoring data of
// Sect. 3.4).
type Stats struct {
	Reads, Writes, ScannedTuples int64
	Commits, Aborts              int64
}

// ErrNotOwned is returned when a key is outside the partition's current
// responsibility (e.g. its segment moved away); the router must retry at the
// new owner.
type ErrNotOwned struct {
	Part PartID
	Key  []byte
}

func (e ErrNotOwned) Error() string {
	return fmt.Sprintf("table: partition %d does not own key %x", e.Part, e.Key)
}

// ErrPartitionDown is returned when the partition's node has power-failed:
// every access fails until the node restarts and the partition is rebuilt
// from its recovery base and the write-ahead log.
type ErrPartitionDown struct {
	Part PartID
}

func (e ErrPartitionDown) Error() string {
	return fmt.Sprintf("table: partition %d is down (node power-failed)", e.Part)
}

// ErrSnapshotTooOld is returned for snapshot reads below the partition's
// recovery horizon. Version chains are volatile — they die with the node's
// DRAM — so a recovered partition holds only the newest committed image of
// each key as of recovery; a snapshot older than that could need a superseded
// version that no longer exists, and answering "absent" would be a silent
// consistency violation. Callers treat this like any transient fault: abort
// and retry with a fresh snapshot.
type ErrSnapshotTooOld struct {
	Part  PartID
	Snap  cc.Timestamp
	Floor cc.Timestamp
}

func (e ErrSnapshotTooOld) Error() string {
	return fmt.Sprintf("table: partition %d snapshot %d below recovery horizon %d", e.Part, e.Snap, e.Floor)
}

// Partition is one horizontal slice of a table, living on a single node.
type Partition struct {
	ID     PartID
	Schema *Schema
	Scheme Scheme
	// Low/High bound the partition's key responsibility (High exclusive,
	// nil = unbounded).
	Low, High []byte

	deps  Deps
	Store *cc.VersionStore

	segs   []*SegHandle // physiological: sorted by Low
	ghosts []ghost
	span   *btree.Tree // spanning schemes

	pending map[cc.TxnID][]string
	tombs   map[string]struct{}
	stats   Stats

	// Replica marks a read-only replicated copy (e.g. TPC-C ITEM): it can
	// be dropped when its node quiesces and rebuilt on wake-up.
	Replica bool

	// AdoptOnly marks a physiological partition that acquires segments
	// exclusively via AdoptSegment (a migration target): writes to ranges
	// not yet adopted return ErrNotOwned instead of creating a fresh
	// mini-partition, so they retry at the old location until the shipped
	// segment arrives.
	AdoptOnly bool

	// failed marks the partition's volatile state lost to a node power
	// failure: all operations return ErrPartitionDown until the node
	// restarts and swaps in a recovered replacement partition.
	failed bool

	// histFloor is the snapshot-serving horizon: recovery installs only the
	// newest committed image per key, so snapshot reads below the floor get
	// ErrSnapshotTooOld instead of a potentially wrong "absent".
	histFloor cc.Timestamp
}

// NewPartition creates an empty partition.
func NewPartition(id PartID, schema *Schema, scheme Scheme, low, high []byte, deps Deps) *Partition {
	pt := &Partition{
		ID:      id,
		Schema:  schema,
		Scheme:  scheme,
		Low:     low,
		High:    high,
		deps:    deps,
		Store:   cc.NewVersionStore(deps.Env),
		pending: make(map[cc.TxnID][]string),
		tombs:   make(map[string]struct{}),
	}
	if scheme != Physiological {
		pt.span = btree.New(&spanningPager{pt: pt}, 0, nil)
		pt.span.Serialize(deps.Env)
	}
	return pt
}

// Deps returns the partition's dependency bundle.
func (pt *Partition) Deps() *Deps { return &pt.deps }

// Fail marks the partition dead after its node power-failed, wiping the
// volatile transaction state (staged writes; version chains and the buffer
// contents die with the node's DRAM). The partition object stays routable so
// in-flight work gets a clean ErrPartitionDown instead of corrupt reads.
func (pt *Partition) Fail() {
	pt.failed = true
	pt.pending = make(map[cc.TxnID][]string)
}

// Failed reports whether the partition was lost to a node power failure.
func (pt *Partition) Failed() bool { return pt.failed }

// down returns the failure error if the partition is dead.
func (pt *Partition) down() error {
	if pt.failed {
		return ErrPartitionDown{pt.ID}
	}
	return nil
}

// RaiseHistoryFloor lifts the snapshot-serving horizon to ts (never lowers
// it). Recovery calls it after rebuilding the partition from its base and the
// log: everything at or above ts reads the newest image of every key and
// resolves correctly; anything below might need pre-crash history that died
// with the DRAM.
func (pt *Partition) RaiseHistoryFloor(ts cc.Timestamp) {
	if ts > pt.histFloor {
		pt.histFloor = ts
	}
}

// HistoryFloor returns the snapshot-serving horizon (0: full history).
func (pt *Partition) HistoryFloor() cc.Timestamp { return pt.histFloor }

// tooOld rejects snapshot reads below the recovery horizon. Locking-mode
// readers are exempt: they read the current committed state straight from the
// leaf, which recovery reconstructs exactly.
func (pt *Partition) tooOld(txn *cc.Txn) error {
	if txn.Mode == cc.SnapshotIsolation && txn.Begin < pt.histFloor {
		return ErrSnapshotTooOld{Part: pt.ID, Snap: txn.Begin, Floor: pt.histFloor}
	}
	return nil
}

// Stats returns a snapshot of activity counters.
func (pt *Partition) Stats() Stats { return pt.stats }

// Segments returns the live segment handles (physiological: mini-partitions
// in key order).
func (pt *Partition) Segments() []*SegHandle { return pt.segs }

// lock names for the MGL hierarchy.
func (pt *Partition) lockName() string { return fmt.Sprintf("P%d", pt.ID) }
func (pt *Partition) segLockName(seg storage.SegID) string {
	return fmt.Sprintf("P%d/S%d", pt.ID, seg)
}
func (pt *Partition) keyLockName(key []byte) string {
	return fmt.Sprintf("P%d/K%s", pt.ID, key)
}

// addSegmentSorted inserts h keeping segs ordered by Low.
func (pt *Partition) addSegmentSorted(h *SegHandle) {
	i := sort.Search(len(pt.segs), func(i int) bool {
		return bytes.Compare(pt.segs[i].Low, h.Low) > 0
	})
	pt.segs = append(pt.segs, nil)
	copy(pt.segs[i+1:], pt.segs[i:])
	pt.segs[i] = h
}

// routeWrite returns the live segment responsible for key, creating the
// first segment lazily. Physiological only.
func (pt *Partition) routeWrite(p *sim.Proc, key []byte) (*SegHandle, error) {
	if len(pt.segs) == 0 && pt.AdoptOnly {
		return nil, ErrNotOwned{pt.ID, bytes.Clone(key)}
	}
	if len(pt.segs) == 0 {
		seg, err := pt.deps.Factory.NewSegment(p)
		if err != nil {
			return nil, err
		}
		h := &SegHandle{
			Seg:   seg,
			Pager: pt.deps.Factory.Pager(seg),
			Low:   bytes.Clone(pt.Low),
			High:  bytes.Clone(pt.High),
		}
		h.Tree = btree.New(h.Pager, 0, func(no storage.PageNo) { seg.TreeRoot = no })
		h.Tree.Serialize(pt.deps.Env)
		seg.LowKey, seg.HighKey = h.Low, h.High
		pt.segs = append(pt.segs, h)
	}
	for _, h := range pt.segs {
		if h.Contains(key) {
			return h, nil
		}
	}
	return nil, ErrNotOwned{pt.ID, bytes.Clone(key)}
}

// routeRead returns a tree that can serve reads of key for txn: a live
// segment, or a ghost (recently moved-away segment) if the transaction's
// snapshot predates the move.
func (pt *Partition) routeRead(txn *cc.Txn, key []byte) (*btree.Tree, error) {
	for _, h := range pt.segs {
		if h.Contains(key) {
			return h.Tree, nil
		}
	}
	for _, g := range pt.ghosts {
		if g.handle.Contains(key) && txn.Begin <= g.moveTS {
			return g.handle.Tree, nil
		}
	}
	return nil, ErrNotOwned{pt.ID, bytes.Clone(key)}
}

// tree returns the tree responsible for key on the read path.
func (pt *Partition) readTree(txn *cc.Txn, key []byte) (*btree.Tree, error) {
	if pt.Scheme != Physiological {
		return pt.span, nil
	}
	return pt.routeRead(txn, key)
}

// writeTree returns the tree responsible for key on the write path.
func (pt *Partition) writeTree(p *sim.Proc, key []byte) (*btree.Tree, storage.SegID, error) {
	if pt.Scheme != Physiological {
		return pt.span, 0, nil
	}
	h, err := pt.routeWrite(p, key)
	if err != nil {
		return nil, 0, err
	}
	return h.Tree, h.Seg.ID, nil
}

// readLeaf fetches the current committed tree version of key (nil if the
// key is absent).
func readLeaf(p *sim.Proc, tr *btree.Tree, key []byte) (*cc.Version, error) {
	raw, ok, err := tr.Get(p, key)
	if err != nil || !ok {
		return nil, err
	}
	v, err := DecodeValue(raw)
	if err != nil {
		return nil, err
	}
	return &v, nil
}

// StorageBytes reports the partition's physical footprint: live pages plus
// retained versions and log (the Fig. 3 storage metric numerator).
func (pt *Partition) StorageBytes() int64 {
	var total int64
	for _, h := range pt.segs {
		total += h.Seg.Bytes()
	}
	for _, g := range pt.ghosts {
		total += g.handle.Seg.Bytes()
	}
	total += pt.Store.VersionBytes()
	return total
}

// RecordCount counts records visible to a fresh snapshot (test/diagnostic
// helper).
func (pt *Partition) RecordCount(p *sim.Proc) (int, error) {
	txn := pt.deps.Oracle.Begin(cc.SnapshotIsolation)
	defer pt.deps.Oracle.Abort(txn)
	n := 0
	err := pt.Scan(p, txn, nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// spanningPager exposes all of a spanning partition's segments as one page
// space: virtual page number = segIndex*capacity + local page number. The
// cross-segment references this creates are exactly why physical and
// logical partitions cannot ship individual segments with their indexes —
// the contrast the paper draws with physiological partitioning.
type spanningPager struct {
	pt *Partition
}

func (sp *spanningPager) capacity() int {
	if len(sp.pt.segs) > 0 {
		return sp.pt.segs[0].Seg.Capacity()
	}
	return 0
}

func (sp *spanningPager) resolve(no storage.PageNo) (*SegHandle, storage.PageNo, error) {
	cap := sp.capacity()
	if cap == 0 {
		return nil, 0, fmt.Errorf("table: spanning pager has no segments")
	}
	idx := int(no) / cap
	if idx >= len(sp.pt.segs) {
		return nil, 0, fmt.Errorf("table: virtual page %d beyond %d segments", no, len(sp.pt.segs))
	}
	return sp.pt.segs[idx], storage.PageNo(int(no) % cap), nil
}

// Read pins a page for reading.
func (sp *spanningPager) Read(p *sim.Proc, no storage.PageNo) (storage.Page, btree.Release, error) {
	h, local, err := sp.resolve(no)
	if err != nil {
		return nil, nil, err
	}
	return h.Pager.Read(p, local)
}

// Write pins a page for modification.
func (sp *spanningPager) Write(p *sim.Proc, no storage.PageNo) (storage.Page, btree.Release, error) {
	h, local, err := sp.resolve(no)
	if err != nil {
		return nil, nil, err
	}
	return h.Pager.Write(p, local)
}

// Alloc allocates from the newest segment, growing the partition with a
// fresh segment when full.
func (sp *spanningPager) Alloc(p *sim.Proc) (storage.PageNo, storage.Page, btree.Release, error) {
	pt := sp.pt
	if len(pt.segs) == 0 {
		if err := sp.grow(p); err != nil {
			return 0, nil, nil, err
		}
	}
	last := len(pt.segs) - 1
	no, pg, rel, err := pt.segs[last].Pager.Alloc(p)
	if err == btree.ErrSegmentFull {
		if err := sp.grow(p); err != nil {
			return 0, nil, nil, err
		}
		last = len(pt.segs) - 1
		no, pg, rel, err = pt.segs[last].Pager.Alloc(p)
	}
	if err != nil {
		return 0, nil, nil, err
	}
	return storage.PageNo(last*sp.capacity()) + no, pg, rel, nil
}

func (sp *spanningPager) grow(p *sim.Proc) error {
	seg, err := sp.pt.deps.Factory.NewSegment(p)
	if err != nil {
		return err
	}
	sp.pt.segs = append(sp.pt.segs, &SegHandle{
		Seg:   seg,
		Pager: sp.pt.deps.Factory.Pager(seg),
	})
	return nil
}

// Free returns a page to its segment.
func (sp *spanningPager) Free(p *sim.Proc, no storage.PageNo) error {
	h, local, err := sp.resolve(no)
	if err != nil {
		return err
	}
	return h.Pager.Free(p, local)
}

// PageSize returns the underlying page size.
func (sp *spanningPager) PageSize() int {
	if len(sp.pt.segs) > 0 {
		return sp.pt.segs[0].Pager.PageSize()
	}
	if sp.pt.deps.PageSize > 0 {
		return sp.pt.deps.PageSize
	}
	return 8192
}
